// Package sphenergy is the public facade of the library: instrumented
// SPH-EXA-style astrophysics simulations with application-level energy
// measurement (PMT / Cray pm_counters / Slurm accounting) and static or
// dynamic GPU frequency scaling, reproducing Simsek, Piccinali & Ciorba,
// "Increasing Energy Efficiency of Astrophysics Simulations Through GPU
// Frequency Scaling" (SC 2024).
//
// # Quick start
//
//	cfg := sphenergy.Config{
//		System:           sphenergy.MiniHPC(),
//		Ranks:            1,
//		Sim:              sphenergy.Turbulence,
//		ParticlesPerRank: 450 * 450 * 450,
//		Steps:            20,
//	}
//	res, err := sphenergy.Run(cfg)
//	// res.Report: per-rank, per-function time and energy
//	// res.WallTimeS, res.GPUEnergyJ(): headline metrics
//
// # Frequency strategies
//
// The four policies the paper compares are freqctl strategies:
//
//	sphenergy.Baseline()        // application clocks locked at max
//	sphenergy.StaticMHz(1005)   // static down-scaling
//	sphenergy.DVFS()            // hardware governor
//	sphenergy.ManDyn(table)     // per-function clocks (the contribution)
//
// A tuned per-function table comes from the KernelTuner-style search in
// TuneFrequencies.
//
// Everything underneath — the GPU device model, NVML/ROCm-SMI/RAPL/
// pm_counters interfaces, the MPI-style rank runtime, the real SPH solver —
// lives in internal/ packages; this package re-exports the surface a
// downstream user needs.
package sphenergy

import (
	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/events"
	"sphenergy/internal/experiments"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/instr"
	"sphenergy/internal/recovery"
	"sphenergy/internal/telemetry"
	"sphenergy/internal/tuner"
)

// Config aliases the runner configuration.
type Config = core.Config

// Result aliases the runner result.
type Result = core.Result

// Report aliases the instrumentation report.
type Report = instr.Report

// SimKind selects the workload.
type SimKind = core.SimKind

// Workloads.
const (
	Turbulence = core.Turbulence
	Evrard     = core.Evrard
)

// NodeSpec aliases the node architecture description.
type NodeSpec = cluster.NodeSpec

// Strategy aliases the frequency-control strategy interface.
type Strategy = freqctl.Strategy

// Run executes an instrumented simulation run.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// RecoveryConfig aliases the supervision configuration: durable
// checkpoint cadence and retention, bounded restarts with seeded backoff,
// wall-clock/energy budgets, and the hung-step watchdog.
type RecoveryConfig = recovery.Config

// RecoveryOutcome aliases the supervised-run summary (status, attempts,
// restarts, watchdog stalls, resume point).
type RecoveryOutcome = recovery.Outcome

// RunSupervised executes a run under crash supervision: it restores the
// newest valid checkpoint from RecoveryConfig.Dir, runs, and on a crash,
// panic, or watchdog stall restarts from disk up to MaxRestarts times.
// A resumed run's model results are bit-identical to an uninterrupted one.
func RunSupervised(cfg Config, rcfg RecoveryConfig) (*Result, *RecoveryOutcome, error) {
	return core.RunSupervised(cfg, rcfg)
}

// Tracer aliases the telemetry span tracer: set Config.Tracer to record the
// run's timeline and export it as Chrome trace_event JSON.
type Tracer = telemetry.Tracer

// Metrics aliases the telemetry metrics registry: set Config.Metrics to
// collect counters/gauges/histograms with Prometheus or JSON exposition.
type Metrics = telemetry.Registry

// NewTracer creates a span tracer with one track per rank.
func NewTracer(ranks int) *Tracer { return telemetry.NewTracer(ranks) }

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return telemetry.NewRegistry() }

// ServeMetrics starts a /metrics HTTP listener exposing a registry for live
// scraping during long runs; close the returned server when done. Extra
// mounts attach additional handlers — typically the event ledger's SSE
// stream and live status:
//
//	led := sphenergy.NewEventLedger(0)
//	sphenergy.ServeMetrics(":9090", reg,
//		sphenergy.Mount{Pattern: "/events", Handler: led.SSEHandler()},
//		sphenergy.Mount{Pattern: "/status", Handler: led.StatusHandler()})
func ServeMetrics(addr string, m *Metrics, extra ...Mount) (*telemetry.MetricsServer, error) {
	return telemetry.ServeMetrics(addr, m, extra...)
}

// Mount aliases an extra HTTP route on the metrics server.
type Mount = telemetry.Mount

// EventLedger aliases the structured decision ledger: set Config.Events to
// record every consequential runtime decision (frequency changes, tuner
// picks, sampler failovers, rank failures, neighbor rebuilds) in a bounded
// ring with JSONL export and SSE streaming.
type EventLedger = events.Ledger

// EventSummary aliases the ledger's emit summary carried on Result.Events.
type EventSummary = events.Summary

// NewEventLedger creates a decision ledger; capacity <= 0 selects the
// default ring size.
func NewEventLedger(capacity int) *EventLedger { return events.NewLedger(capacity) }

// LUMIG returns the LUMI-G node architecture of Table I.
func LUMIG() NodeSpec { return cluster.LUMIG() }

// CSCSA100 returns the CSCS-A100 node architecture of Table I.
func CSCSA100() NodeSpec { return cluster.CSCSA100() }

// MiniHPC returns the miniHPC node architecture of Table I.
func MiniHPC() NodeSpec { return cluster.MiniHPC() }

// SystemByName resolves a Table I system by name ("lumi-g", "cscs-a100",
// "minihpc").
func SystemByName(name string) (NodeSpec, error) { return cluster.SystemByName(name) }

// Baseline returns a strategy factory locking clocks at the maximum
// application clock.
func Baseline() func() Strategy {
	return func() Strategy { return freqctl.Baseline{} }
}

// StaticMHz returns a strategy factory locking clocks at a fixed value.
func StaticMHz(mhz int) func() Strategy {
	return func() Strategy { return freqctl.Static{MHz: mhz} }
}

// DVFS returns a strategy factory leaving the hardware governor in control.
func DVFS() func() Strategy {
	return func() Strategy { return freqctl.DVFS{} }
}

// ManDyn returns a strategy factory that switches application clocks per
// instrumented function using the given function→MHz table — the paper's
// dynamic approach.
func ManDyn(table map[string]int) func() Strategy {
	return func() Strategy { return &freqctl.ManDyn{Table: table} }
}

// TuneFrequencies runs the KernelTuner-style per-function frequency search
// (EDP objective, 1005 MHz up to the device maximum) for a simulation's
// pipeline on a system's GPU, returning the ManDyn table.
func TuneFrequencies(system NodeSpec, sim SimKind, particlesPerRank float64, ng int) (map[string]int, error) {
	return TuneFrequenciesObserved(system, sim, particlesPerRank, ng, nil)
}

// TuneFrequenciesObserved is TuneFrequencies with the search recorded into
// a decision ledger: every sweep measurement and winning pick is emitted as
// a tuner event, and the full predicted time/power/EDP table is installed
// on the ledger so subsequent frequency decisions in a Run using the same
// ledger carry the model's prediction (the join cmd/declog audits). A nil
// ledger degrades to the unobserved search.
func TuneFrequenciesObserved(system NodeSpec, sim SimKind, particlesPerRank float64, ng int, led *EventLedger) (map[string]int, error) {
	if ng <= 0 {
		ng = 150
	}
	pipeline, err := core.Pipeline(sim)
	if err != nil {
		return nil, err
	}
	kernels := make(map[string]gpusim.KernelDesc, len(pipeline))
	for _, fn := range pipeline {
		kernels[fn.Name] = fn.Kernel(particlesPerRank, ng, system.GPUSpec.Vendor)
	}
	table, results, err := tuner.TuneTable(kernels, tuner.Config{
		Spec:      system.GPUSpec,
		Params:    tuner.Params{MinMHz: 1005, MaxMHz: system.GPUSpec.MaxSMClockMHz},
		Objective: tuner.EDP,
		Events:    led,
	})
	if err == nil && led != nil {
		led.SetPredictions(tuner.PredictionTable(results))
	}
	return table, err
}

// RunExperiment regenerates one of the paper's tables/figures by id
// ("table1", "fig1".."fig9"); scale 1.0 reproduces the paper's step counts.
func RunExperiment(id string, scale float64) (interface{ Render() string }, error) {
	return experiments.Run(id, scale)
}

// ExperimentNames lists the available experiment ids.
func ExperimentNames() []string { return experiments.Names() }
