module sphenergy

go 1.22
