// Measurement plumbing tour: the validation workflow of §IV-A. A
// turbulence job runs through the simulated Slurm manager on CSCS-A100
// with the async power sampler polling every GPU at 100 Hz and every
// node BMC at 10 Hz; the example then compares Slurm's ConsumedEnergy
// against the PMT instrumentation, runs the three-way cross-source
// validation and the per-kernel energy attribution, reads the Cray
// pm_counters sysfs view of node zero, and materializes the
// /sys/cray/pm_counters files on disk.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/pmcounters"
	"sphenergy/internal/report"
	"sphenergy/internal/sampler"
	"sphenergy/internal/slurm"
	"sphenergy/internal/telemetry"
)

func main() {
	mgr := slurm.NewManager()
	ranks := 8
	job, err := mgr.Submit(core.Config{
		System:           cluster.CSCSA100(),
		Ranks:            ranks,
		Sim:              core.Turbulence,
		ParticlesPerRank: 150e6,
		Steps:            25,
		// The attribution layer joins the sampled power series against the
		// tracer's kernel spans, so both are enabled for the job.
		Tracer:   telemetry.NewTracer(ranks),
		Sampling: sampler.Config{GPUHz: 100, NodeHz: 10},
	}, slurm.SubmitOptions{
		JobName:       "turb-validate",
		SetupS:        45,
		TRES:          slurm.ParseTRES("billing,cpu,energy,gres/gpu"),
		EnergyBackend: "pm_counters",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== sacct view (what a user normally gets) ==")
	fmt.Print(mgr.Sacct(nil))

	fmt.Println("\n== PMT vs Slurm (the Fig. 3 validation) ==")
	fmt.Printf("Slurm ConsumedEnergy: %12.0f J (from job submission)\n", job.ConsumedEnergyJ)
	fmt.Printf("PMT instrumented:     %12.0f J (from the time-stepping loop)\n", job.LoopEnergyJ)
	gap := 100 * (job.ConsumedEnergyJ - job.LoopEnergyJ) / job.ConsumedEnergyJ
	fmt.Printf("gap: %.2f%% — the job setup phase PMT does not observe\n", gap)

	fmt.Println("\n== three-way cross-source validation ==")
	v, err := slurm.ThreeWay(job, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.RenderValidation(v))

	fmt.Println("\n== per-kernel energy attribution (async sampler + spans) ==")
	fmt.Print(report.RenderAttribution(job.Result.Report.Attribution, 8))

	fmt.Println("\n== sampler staleness/jitter statistics ==")
	for _, st := range job.Result.Sampler.Stats()[:3] {
		fmt.Printf("  %-22s %6.4g Hz  %6d ticks  %5d dropped  max gap %.4f s\n",
			st.Name, st.RateHz, st.Ticks, st.Dropped, st.MaxPollGapS)
	}

	fmt.Println("\n== Cray pm_counters view of node 0 ==")
	node := job.Result.System.Nodes[0]
	pc := pmcounters.New(node)
	for name, content := range pc.Files() {
		fmt.Printf("  /sys/cray/pm_counters/%-16s %s\n", name, content)
	}
	fmt.Printf("derived auxiliary (\"other\") energy: %.0f J\n", pc.AuxiliaryEnergy())

	dir := filepath.Join(os.TempDir(), "pm_counters_demo")
	os.RemoveAll(dir)
	files, err := pc.WriteSysfs(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaterialized %d sysfs files under %s\n", len(files), dir)
}
