// Distributed SPH: the DomainDecompAndSync step on real data. Four ranks
// share a turbulent box through cornerstone SFC decomposition; each step
// re-sorts, migrates strays, exchanges halos, and runs the density pass on
// the extended (own + halo) particle set — the communication structure the
// energy model's CommDomainSync/CommHalo costs represent.
package main

import (
	"fmt"
	"log"

	"sphenergy/internal/domain"
	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
)

func main() {
	const numRanks = 4

	// One global particle set, split round-robin (i.e., badly) across
	// ranks; the first Sync will fix the placement.
	global, opt := initcond.Turbulence(initcond.DefaultTurbulence(20))
	opt.NgTarget = 48
	ranks := make([]*sph.Particles, numRanks)
	for r := 0; r < numRanks; r++ {
		count := 0
		for i := r; i < global.N; i += numRanks {
			count++
			_ = i
		}
		ranks[r] = sph.NewParticles(count)
	}
	idx := make([]int, numRanks)
	for i := 0; i < global.N; i++ {
		r := i % numRanks
		dst := ranks[r]
		j := idx[r]
		dst.X[j], dst.Y[j], dst.Z[j] = global.X[i], global.Y[i], global.Z[i]
		dst.VX[j], dst.VY[j], dst.VZ[j] = global.VX[i], global.VY[i], global.VZ[i]
		dst.M[j], dst.H[j], dst.U[j] = global.M[i], global.H[i], global.U[i]
		dst.Rho[j], dst.Alpha[j] = global.Rho[i], global.Alpha[i]
		idx[r]++
	}

	d := domain.New(opt.Box, numRanks, 64)
	fmt.Printf("initial distribution: %d ranks x ~%d particles, imbalance %.3f\n",
		numRanks, ranks[0].N, domain.LoadImbalance(ranks))

	for step := 0; step < 3; step++ {
		// DomainDecompAndSync.
		var moved int
		var err error
		ranks, moved, err = d.Sync(ranks)
		if err != nil {
			log.Fatal(err)
		}

		// Per-rank: halo exchange + density pass on the extended set.
		totalHalo := 0
		for r := 0; r < numRanks; r++ {
			radius := 2 * ranks[r].MaxH() * 1.3
			ext, nHalo, err := d.HaloExchange(ranks, r, radius)
			if err != nil {
				log.Fatal(err)
			}
			totalHalo += nHalo
			st := sph.NewState(ext, opt)
			st.FindNeighbors()
			st.XMass()
			st.EquationOfState()
			// Copy updated fields back for the rank's own particles.
			own := ranks[r]
			copy(own.Rho, ext.Rho[:own.N])
			copy(own.H, ext.H[:own.N])
			copy(own.P, ext.P[:own.N])
			copy(own.C, ext.C[:own.N])
		}

		fmt.Printf("step %d: migrated %5d particles, halo copies %5d, imbalance %.3f\n",
			step, moved, totalHalo, domain.LoadImbalance(ranks))
	}

	// Density sanity across the distributed set.
	var min, max float64 = 1e30, 0
	for _, p := range ranks {
		for i := 0; i < p.N; i++ {
			if p.Rho[i] < min {
				min = p.Rho[i]
			}
			if p.Rho[i] > max {
				max = p.Rho[i]
			}
		}
	}
	fmt.Printf("density across ranks: [%.3f, %.3f] (uniform box, want ~1)\n", min, max)
	fmt.Println("\nper-rank key ranges (SFC-contiguous domains):")
	for r, kr := range d.Ranges {
		fmt.Printf("  rank %d: %v, %d particles\n", r, kr, ranks[r].N)
	}
}
