// DVFS deep dive (§IV-E): record the frequencies the hardware governor
// sets during 10 time-steps of the turbulence simulation on a single A100,
// render the Fig. 9-style trace, and show why ManDyn beats the governor —
// lightweight kernel launches boost clocks the kernels cannot use.
package main

import (
	"fmt"
	"log"

	"sphenergy"
	"sphenergy/internal/core"
	"sphenergy/internal/textplot"
)

func main() {
	res, err := sphenergy.Run(sphenergy.Config{
		System:           sphenergy.MiniHPC(),
		Ranks:            1,
		Sim:              sphenergy.Turbulence,
		ParticlesPerRank: 450 * 450 * 450,
		Steps:            10,
		NewStrategy:      sphenergy.DVFS(),
		Trace:            true,
	})
	if err != nil {
		log.Fatal(err)
	}

	pts := res.Trace.Points()
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.TimeS
		ys[i] = float64(p.ClockMHz)
	}
	fmt.Print(textplot.LinePlot("DVFS-set SM clock (MHz) over 10 time-steps", xs, ys, 100, 16))

	fmt.Println("\nmean governor clock per kernel:")
	for _, fn := range core.PipelineFunctionNames(core.Turbulence) {
		if m, ok := res.Trace.ClockOfKernel(fn); ok {
			fmt.Printf("  %-22s %6.0f MHz\n", fn, m)
		}
	}
	lo, hi := res.Trace.MinMaxClock()
	fmt.Printf("\nclock range seen: %d-%d MHz\n", lo, hi)
	fmt.Println("note the pattern of the paper's Fig. 9: compute kernels boost to the")
	fmt.Println("maximum, DomainDecompAndSync's many lightweight launches hold mid-range")
	fmt.Println("clocks they cannot exploit, and step-boundary collectives let clocks dip.")
}
