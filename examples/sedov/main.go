// Sedov–Taylor blast wave: a point explosion in a uniform medium drives a
// spherical shock. The real Go SPH solver integrates it and tracks the
// shock radius against the self-similar r ∝ t^(2/5) law — an extra
// validation workload beyond the paper's two (its §V future work proposes
// applying the method to more codes).
package main

import (
	"fmt"
	"math"

	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
)

// shockRadius estimates the blast radius as the RMS radius of particles
// weighted by their kinetic energy.
func shockRadius(p *sph.Particles) float64 {
	var wsum, rsum float64
	for i := 0; i < p.N; i++ {
		v2 := p.VX[i]*p.VX[i] + p.VY[i]*p.VY[i] + p.VZ[i]*p.VZ[i]
		dx, dy, dz := p.X[i]-0.5, p.Y[i]-0.5, p.Z[i]-0.5
		r := math.Sqrt(dx*dx + dy*dy + dz*dz)
		rsum += v2 * r
		wsum += v2
	}
	if wsum == 0 {
		return 0
	}
	return rsum / wsum
}

func main() {
	p, opt := initcond.Sedov(initcond.SedovSpec{NSide: 20, E0: 1, Rho0: 1, Seed: 3})
	opt.NgTarget = 40
	st := sph.NewState(p, opt)
	fmt.Printf("Sedov blast: %d particles, E0 = 1 deposited at the center\n\n", p.N)
	fmt.Printf("%8s %10s %12s %14s\n", "step", "time", "shock r", "r / t^(2/5)")

	for i := 0; i < 60; i++ {
		st.FindNeighbors()
		st.XMass()
		st.NormalizationGradh()
		st.EquationOfState()
		st.IADVelocityDivCurl()
		st.AVSwitches(st.Dt)
		st.MomentumEnergy()
		dt := st.Timestep()
		st.UpdateQuantities(dt)
		if (i+1)%10 == 0 {
			r := shockRadius(p)
			selfSim := r / math.Pow(st.Time, 0.4)
			fmt.Printf("%8d %10.5f %12.4f %14.3f\n", i+1, st.Time, r, selfSim)
		}
	}

	e := st.ComputeEnergies(nil)
	fmt.Printf("\nenergy budget: kinetic %.3f + internal %.3f = %.3f (injected 1.0)\n",
		e.Kinetic, e.Internal, e.Total())
	fmt.Println("the r/t^(2/5) column approaching a constant is the Sedov-Taylor")
	fmt.Println("self-similar solution.")
}
