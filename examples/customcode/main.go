// Applying the method to another simulation code (the paper's §V future
// work): a finite-difference stencil solver — not SPH at all — adopts the
// same instrumentation and per-kernel frequency scaling. The user describes
// their kernels as FuncModels, tunes a per-kernel frequency table, and runs
// with ManDyn through the unmodified core machinery.
package main

import (
	"fmt"
	"log"

	"sphenergy"
	"sphenergy/internal/core"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/tuner"
)

// stencilPipeline characterizes one time-step of a 7-point stencil CFD
// solver with a pressure-Poisson multigrid phase: two memory-bound sweeps,
// one compute-heavy smoother, one tiny reduction.
func stencilPipeline() []core.FuncModel {
	return []core.FuncModel{
		{
			Name:         "AdvectScalar",
			FlopsPerPart: 48, BytesPerPart: 180, // 7-point gather, low intensity
			Launches: 1, ItemFraction: 1,
			EffNvidia: 0.6, EffAMD: 0.4,
			CPUUtil: 0.05, MemUtil: 0.4,
		},
		{
			Name:         "DiffuseVelocity",
			FlopsPerPart: 90, BytesPerPart: 230,
			Launches: 3, ItemFraction: 1,
			EffNvidia: 0.55, EffAMD: 0.4,
			CPUUtil: 0.05, MemUtil: 0.4,
		},
		{
			Name:         "MultigridSmoother",
			FlopsPerPart: 2400, BytesPerPart: 260, // compute-heavy
			Launches: 12, ItemFraction: 1,
			EffNvidia: 0.45, EffAMD: 0.3,
			CPUUtil: 0.08, MemUtil: 0.25,
			Comm: core.CommHalo, CommBytesPerPart: 1.0,
		},
		{
			Name:         "ResidualNorm",
			FlopsPerPart: 8, BytesPerPart: 24,
			Launches: 1, ItemFraction: 1,
			EffNvidia: 0.6, EffAMD: 0.45,
			CPUUtil: 0.1, MemUtil: 0.1,
			Comm: core.CommAllreduce,
		},
	}
}

func main() {
	system := sphenergy.MiniHPC()
	const cells = 512 * 512 * 512 / 4 // grid cells per GPU

	// Tune each kernel exactly as the paper tunes the SPH functions.
	table := map[string]int{}
	fmt.Println("per-kernel EDP tuning (1005-1410 MHz):")
	for _, fn := range stencilPipeline() {
		res, err := tuner.TuneKernel(fn.Name, fn.Kernel(cells, 0, gpusim.Nvidia), tuner.Config{
			Spec:   system.GPUSpec,
			Params: tuner.Params{MinMHz: 1005, MaxMHz: 1410},
		})
		if err != nil {
			log.Fatal(err)
		}
		table[fn.Name] = res.Best.MHz
		fmt.Printf("  %-18s -> %4d MHz\n", fn.Name, res.Best.MHz)
	}

	run := func(name string, mk func() sphenergy.Strategy) *sphenergy.Result {
		res, err := sphenergy.Run(sphenergy.Config{
			System:           system,
			Ranks:            2,
			Sim:              core.Custom,
			CustomPipeline:   stencilPipeline(),
			ParticlesPerRank: cells,
			Steps:            50,
			NewStrategy:      mk,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run("baseline", sphenergy.Baseline())
	md := run("mandyn", sphenergy.ManDyn(table))
	fmt.Printf("\nstencil code, 2 GPUs, 50 steps:\n")
	fmt.Printf("  baseline: %.1f s, %.0f J GPU\n", base.WallTimeS, base.GPUEnergyJ())
	fmt.Printf("  mandyn:   %.1f s, %.0f J GPU\n", md.WallTimeS, md.GPUEnergyJ())
	fmt.Printf("  -> %+.2f%% time, %+.2f%% GPU energy, %+.2f%% EDP\n",
		100*(md.WallTimeS/base.WallTimeS-1),
		100*(md.GPUEnergyJ()/base.GPUEnergyJ()-1),
		100*(md.GPUEDP()/base.GPUEDP()-1))
	fmt.Println("\nthe instrumentation and frequency machinery are workload-agnostic:")
	fmt.Println("only the FuncModel table is application-specific.")
}
