// Evrard collapse, end to end: first the *real* SPH solver (octree
// neighbor search, IAD, volume elements, Barnes–Hut gravity) integrates a
// small Evrard sphere and reports physics diagnostics; then the same
// pipeline runs instrumented at paper scale (80 M particles per GPU, 32
// ranks) on the simulated LUMI-G system with per-device energy attribution.
package main

import (
	"fmt"
	"log"

	"sphenergy"
	"sphenergy/internal/gravity"
	"sphenergy/internal/initcond"
	"sphenergy/internal/report"
	"sphenergy/internal/sph"
)

func main() {
	physicsDemo()
	energyRun()
}

// physicsDemo integrates the classic Evrard collapse at laptop scale with
// the actual Go SPH implementation: the cold gas sphere converts
// gravitational potential energy into kinetic and internal energy.
func physicsDemo() {
	fmt.Println("== Evrard collapse, real SPH solver (small scale) ==")
	p, opt := initcond.Evrard(initcond.DefaultEvrard(14))
	opt.NgTarget = 32
	st := sph.NewState(p, opt)

	pot := make([]float64, p.N)
	step := func() {
		st.FindNeighbors()
		st.XMass()
		st.NormalizationGradh()
		st.EquationOfState()
		st.IADVelocityDivCurl()
		st.AVSwitches(st.Dt)
		st.MomentumEnergy()
		// Self-gravity via Barnes-Hut quadrupole tree.
		tree := gravity.Build(p.X, p.Y, p.Z, p.M, opt.GravTheta, opt.GravEps, opt.GravG)
		tree.AccelerationsInto(p.AX, p.AY, p.AZ, pot)
		dt := st.Timestep()
		st.UpdateQuantities(dt)
	}

	e0 := st.ComputeEnergies(pot)
	fmt.Printf("particles: %d\n", p.N)
	for i := 0; i < 30; i++ {
		step()
		if (i+1)%10 == 0 {
			e := st.ComputeEnergies(pot)
			fmt.Printf("step %3d  t=%.4f  Ekin=%8.4f  Eint=%8.4f  Epot=%8.4f  Etot=%8.4f\n",
				i+1, st.Time, e.Kinetic, e.Internal, e.Potential, e.Total())
		}
	}
	e := st.ComputeEnergies(pot)
	fmt.Printf("kinetic energy gained: %.4f (collapse converts potential -> kinetic+internal)\n\n",
		e.Kinetic-e0.Kinetic)
}

// energyRun executes the instrumented paper-scale Evrard run on LUMI-G.
func energyRun() {
	fmt.Println("== Evrard collapse, instrumented at paper scale (LUMI-G, 32 ranks) ==")
	res, err := sphenergy.Run(sphenergy.Config{
		System:           sphenergy.LUMIG(),
		Ranks:            32,
		Sim:              sphenergy.Evrard,
		ParticlesPerRank: 80e6,
		Steps:            100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-to-solution: %.0f s, total energy: %.2f MJ\n",
		res.WallTimeS, res.EnergyJ()/1e6)
	db := report.NewDeviceBreakdown(res.Report, sphenergy.LUMIG(), "Evrard")
	fmt.Print(db.Render())
	fb := report.NewFunctionBreakdown(res.Report, "Evrard")
	fmt.Print(fb.Render())
	fmt.Println("note: Gravity appears in the pipeline — the reason the paper pairs")
	fmt.Println("Evrard with Turbulence is exactly this extra computational kernel.")
}
