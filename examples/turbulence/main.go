// Subsonic turbulence, end to end: the real SPH solver drives a small
// periodic turbulent box (isothermal gas, solenoidal velocity field) and
// reports the RMS Mach number; then the instrumented paper-scale run
// compares all four frequency strategies on a single A100, reproducing the
// Fig. 7 comparison.
package main

import (
	"fmt"
	"log"

	"sphenergy"
	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
)

func main() {
	physicsDemo()
	strategyComparison()
}

// physicsDemo integrates a small subsonic turbulent box with the actual Go
// SPH implementation.
func physicsDemo() {
	fmt.Println("== Subsonic Turbulence, real SPH solver (small scale) ==")
	spec := initcond.DefaultTurbulence(16)
	spec.Mach = 0.3
	p, opt := initcond.Turbulence(spec)
	opt.NgTarget = 32
	st := sph.NewState(p, opt)

	fmt.Printf("particles: %d, target Mach: %.2f\n", p.N, spec.Mach)
	for i := 0; i < 20; i++ {
		st.FindNeighbors()
		st.XMass()
		st.NormalizationGradh()
		st.EquationOfState()
		st.IADVelocityDivCurl()
		st.AVSwitches(st.Dt)
		st.MomentumEnergy()
		dt := st.Timestep()
		st.UpdateQuantities(dt)
		if (i+1)%5 == 0 {
			fmt.Printf("step %3d  t=%.5f  Mach_rms=%.3f  dt=%.2e\n",
				i+1, st.Time, st.MachRMS(), dt)
		}
	}
	e := st.ComputeEnergies(nil)
	fmt.Printf("kinetic %.4g, internal %.4g (subsonic: kinetic << internal)\n\n",
		e.Kinetic, e.Internal)
}

// strategyComparison is the paper's Fig. 7 workflow through the public API.
func strategyComparison() {
	fmt.Println("== Frequency strategies at paper scale (450^3 on a single A100) ==")
	system := sphenergy.MiniHPC()
	table, err := sphenergy.TuneFrequencies(system, sphenergy.Turbulence, 450*450*450, 150)
	if err != nil {
		log.Fatal(err)
	}

	strategies := []struct {
		name string
		mk   func() sphenergy.Strategy
	}{
		{"baseline-1410", sphenergy.Baseline()},
		{"static-1005", sphenergy.StaticMHz(1005)},
		{"dvfs", sphenergy.DVFS()},
		{"mandyn", sphenergy.ManDyn(table)},
	}

	var baseT, baseE float64
	fmt.Printf("%-15s %10s %12s %10s %10s %10s\n",
		"strategy", "time(s)", "GPU E (J)", "time*", "energy*", "EDP*")
	for _, s := range strategies {
		res, err := sphenergy.Run(sphenergy.Config{
			System:           system,
			Ranks:            1,
			Sim:              sphenergy.Turbulence,
			ParticlesPerRank: 450 * 450 * 450,
			Steps:            50,
			NewStrategy:      s.mk,
		})
		if err != nil {
			log.Fatal(err)
		}
		if s.name == "baseline-1410" {
			baseT, baseE = res.WallTimeS, res.GPUEnergyJ()
		}
		tn := res.WallTimeS / baseT
		en := res.GPUEnergyJ() / baseE
		fmt.Printf("%-15s %10.1f %12.0f %10.4f %10.4f %10.4f\n",
			s.name, res.WallTimeS, res.GPUEnergyJ(), tn, en, tn*en)
	}
	fmt.Println("(* normalized to baseline — the paper's Fig. 7 axes)")
}
