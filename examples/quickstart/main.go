// Quickstart: run an instrumented Subsonic Turbulence simulation on the
// simulated miniHPC A100 node, measure per-function energy, and compare the
// baseline against the paper's ManDyn dynamic frequency scaling.
package main

import (
	"fmt"
	"log"

	"sphenergy"
)

func main() {
	system := sphenergy.MiniHPC()

	// Tune per-function frequencies once (the KernelTuner/Fig. 2 pass)...
	table, err := sphenergy.TuneFrequencies(system, sphenergy.Turbulence, 450*450*450, 150)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tuned per-function application clocks:")
	for fn, mhz := range table {
		fmt.Printf("  %-22s %4d MHz\n", fn, mhz)
	}

	// ...then run the same workload under both policies.
	run := func(name string, strategy func() sphenergy.Strategy) *sphenergy.Result {
		res, err := sphenergy.Run(sphenergy.Config{
			System:           system,
			Ranks:            1,
			Sim:              sphenergy.Turbulence,
			ParticlesPerRank: 450 * 450 * 450, // the paper's 450^3 tuning size
			Steps:            20,
			NewStrategy:      strategy,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s time %7.1f s   GPU energy %8.0f J   EDP %.4g J*s\n",
			name, res.WallTimeS, res.GPUEnergyJ(), res.GPUEDP())
		return res
	}

	fmt.Println("\nbaseline (locked 1410 MHz) vs ManDyn (per-function clocks):")
	base := run("baseline", sphenergy.Baseline())
	md := run("mandyn", sphenergy.ManDyn(table))

	fmt.Printf("\nManDyn vs baseline: %+.2f%% time, %+.2f%% GPU energy, %+.2f%% EDP\n",
		100*(md.WallTimeS/base.WallTimeS-1),
		100*(md.GPUEnergyJ()/base.GPUEnergyJ()-1),
		100*(md.GPUEDP()/base.GPUEDP()-1))

	// The report gives the per-function detail system monitoring cannot.
	fmt.Println("\nper-function breakdown (ManDyn run):")
	for _, fn := range md.Report.FunctionNames() {
		st := md.Report.FunctionTotal(fn)
		fmt.Printf("  %-22s %8.2f s  %9.1f J GPU\n", fn, st.TimeS, st.GPUJ)
	}
}
