package main

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Output must come out in input order even when workers finish shuffled.
func TestRunExperimentsPreservesOrder(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var mu sync.Mutex
	started := map[string]chan struct{}{}
	for _, n := range names {
		started[n] = make(chan struct{})
	}
	run := func(name string) (string, error) {
		mu.Lock()
		ch := started[name]
		mu.Unlock()
		close(ch)
		if name == "a" {
			// Make the first experiment finish last: it only returns once
			// the final experiment has been started, which requires the
			// pool to actually run work concurrently.
			<-started[names[len(names)-1]]
		}
		return "out:" + name, nil
	}
	var got []string
	emit := func(name, out string) error {
		if out != "out:"+name {
			t.Errorf("emit(%q) got %q", name, out)
		}
		got = append(got, name)
		return nil
	}
	if err := runExperiments(names, 4, run, emit); err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != strings.Join(names, ",") {
		t.Errorf("emitted order %v, want %v", got, names)
	}
}

// A failing experiment must surface its error (wrapped with its name) and
// stop further work from being launched.
func TestRunExperimentsFirstErrorFatal(t *testing.T) {
	boom := errors.New("boom")
	var launchedAfter atomic.Int64
	gate := make(chan struct{})
	names := []string{"ok1", "bad", "late1", "late2", "late3", "late4", "late5", "late6"}
	run := func(name string) (string, error) {
		switch {
		case name == "bad":
			return "", boom
		case strings.HasPrefix(name, "late"):
			// Block so the single worker slot stays occupied: the launcher
			// cannot start another late experiment before the consumer sees
			// bad's error and stops launching. Released after the error
			// returns.
			launchedAfter.Add(1)
			<-gate
		}
		return name, nil
	}
	err := runExperiments(names, 1, run, func(string, string) error { return nil })
	close(gate)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error %q does not name the failing experiment", err)
	}
	// At most one late experiment can have been launched (the one holding
	// the worker slot when the failure surfaced); a launcher that ignored
	// the failure would have run all six.
	if n := launchedAfter.Load(); n > 1 {
		t.Errorf("launched %d experiments after the failure, want <= 1", n)
	}
}

// An emit failure (e.g. -out write error) is fatal too.
func TestRunExperimentsEmitErrorFatal(t *testing.T) {
	werr := errors.New("disk full")
	names := []string{"a", "b", "c"}
	var emitted int
	err := runExperiments(names, 2,
		func(name string) (string, error) { return name, nil },
		func(name, out string) error {
			emitted++
			if name == "b" {
				return werr
			}
			return nil
		})
	if !errors.Is(err, werr) {
		t.Fatalf("err = %v, want disk-full", err)
	}
	if emitted != 2 {
		t.Errorf("emit called %d times, want 2 (a then failing b)", emitted)
	}
}

func TestRunExperimentsClampsWorkers(t *testing.T) {
	for _, workers := range []int{-3, 0, 1, 100} {
		var got []string
		err := runExperiments([]string{"x", "y"}, workers,
			func(name string) (string, error) { return name, nil },
			func(name, out string) error { got = append(got, name); return nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if fmt.Sprint(got) != "[x y]" {
			t.Errorf("workers=%d: got %v", workers, got)
		}
	}
}
