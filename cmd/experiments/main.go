// Command experiments regenerates the paper's tables and figures on the
// simulated systems.
//
// Usage:
//
//	experiments -list
//	experiments -run fig7
//	experiments -run all -scale 0.2 -j 4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"sphenergy/internal/experiments"
)

// outcome carries one experiment's rendered output (or its failure) from a
// worker to the in-order emitter.
type outcome struct {
	out string
	err error
}

// runExperiments executes run for every name on a bounded worker pool and
// calls emit with the results strictly in the order of names, regardless of
// which worker finishes first. The first failure — from a run or from emit —
// stops new work from being launched and is returned; in-flight workers are
// left to drain. workers is clamped to [1, len(names)].
func runExperiments(names []string, workers int, run func(name string) (string, error), emit func(name, out string) error) error {
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}
	results := make([]chan outcome, len(names))
	for i := range results {
		results[i] = make(chan outcome, 1)
	}
	done := make(chan struct{})
	sem := make(chan struct{}, workers)
	go func() {
		for i, name := range names {
			select {
			case <-done:
				return
			case sem <- struct{}{}:
			}
			go func(i int, name string) {
				defer func() { <-sem }()
				out, err := run(name)
				results[i] <- outcome{out: out, err: err}
			}(i, name)
		}
	}()
	for i, name := range names {
		oc := <-results[i]
		if oc.err != nil {
			close(done)
			return fmt.Errorf("%s: %w", name, oc.err)
		}
		if err := emit(name, oc.out); err != nil {
			close(done)
			return err
		}
	}
	return nil
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "all", "experiment id to run (table1, fig1..fig9, ext-*, all)")
	scale := flag.Float64("scale", 1.0, "step-count scale factor (1.0 = the paper's 100 steps)")
	outDir := flag.String("out", "", "also write each experiment's output to <out>/<id>.txt")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max experiments to run concurrently")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	names := []string{*run}
	if *run == "all" {
		names = experiments.Names()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	err := runExperiments(names, *jobs,
		func(name string) (string, error) {
			res, err := experiments.Run(name, *scale)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		},
		func(name, out string) error {
			fmt.Println("=================================================================")
			fmt.Println(out)
			if *outDir != "" {
				path := filepath.Join(*outDir, name+".txt")
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
