// Command experiments regenerates the paper's tables and figures on the
// simulated systems.
//
// Usage:
//
//	experiments -list
//	experiments -run fig7
//	experiments -run all -scale 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sphenergy/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "all", "experiment id to run (table1, fig1..fig9, ext-*, all)")
	scale := flag.Float64("scale", 1.0, "step-count scale factor (1.0 = the paper's 100 steps)")
	outDir := flag.String("out", "", "also write each experiment's output to <out>/<id>.txt")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	names := []string{*run}
	if *run == "all" {
		names = experiments.Names()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	for _, name := range names {
		res, err := experiments.Run(name, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		out := res.Render()
		fmt.Println("=================================================================")
		fmt.Println(out)
		if *outDir != "" {
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
}
