// Command sphbench measures the real SPH compute layer pass by pass — the
// per-function decomposition the paper attributes energy to — and writes
// the results as machine-readable JSON for regression tracking. Each
// problem size is run three times: with the legacy closure-walk pipeline,
// with the persistent neighbor list rebuilt every step, and with the
// Verlet-skin list that amortizes rebuilds across steps — so the file
// records its own before/after comparisons and future PRs diff against a
// stable schema.
//
// Example:
//
//	sphbench -sizes 20,30 -steps 4 -out BENCH_sph.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
)

// passNames fixes the order and JSON keys of the timed pipeline passes.
var passNames = []string{
	"find_neighbors",
	"xmass",
	"gradh",
	"eos",
	"iad",
	"av_switches",
	"momentum_energy",
	"timestep",
	"update",
}

// modeResult is one pipeline variant's timing at one problem size.
type modeResult struct {
	// NsPerParticleStep maps each pass (plus "total") to nanoseconds per
	// particle per step, averaged over the measured steps. For the skin
	// mode find_neighbors is the amortized cost across rebuild and refresh
	// steps.
	NsPerParticleStep map[string]float64 `json:"ns_per_particle_step"`
	StepMs            float64            `json:"step_ms"`
	// Skin-mode extras: how often the candidate list was rebuilt over the
	// measured steps, the mean steps between rebuilds, and the
	// find_neighbors cost split by step kind.
	Skin                 float64 `json:"skin,omitempty"`
	Rebuilds             int     `json:"rebuilds,omitempty"`
	Refreshes            int     `json:"refreshes,omitempty"`
	RebuildIntervalSteps float64 `json:"rebuild_interval_steps,omitempty"`
	RebuildNsPerParticle float64 `json:"find_neighbors_rebuild_ns_per_particle,omitempty"`
	RefreshNsPerParticle float64 `json:"find_neighbors_refresh_ns_per_particle,omitempty"`
}

// sizeResult is one problem size's before/after measurement.
type sizeResult struct {
	NSide    int                   `json:"n_side"`
	N        int                   `json:"n"`
	NgTarget int                   `json:"ng_target"`
	Warmup   int                   `json:"warmup_steps"`
	Steps    int                   `json:"measured_steps"`
	Modes    map[string]modeResult `json:"modes"`
	// SpeedupTotal is closure_walk step time over neighbor_list step time.
	SpeedupTotal float64 `json:"speedup_total"`
	// SpeedupSkin is neighbor_list step time over neighbor_list_skin step
	// time, and SpeedupFindNeighborsSkin the same ratio for the
	// find_neighbors pass alone (the amortization the skin buys).
	SpeedupSkin              float64 `json:"speedup_skin"`
	SpeedupFindNeighborsSkin float64 `json:"speedup_find_neighbors_skin"`
}

type output struct {
	Benchmark  string       `json:"benchmark"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Sizes      []sizeResult `json:"sizes"`
}

// runMode times every pipeline pass over the given number of steps on a
// fresh Turbulence state. SFC reordering is disabled so all modes advance
// identical trajectories and the comparison is pure pipeline cost. skin < 0
// keeps the default Verlet skin; skin == 0 pins the rebuild-every-step list.
func runMode(nSide, warmup, steps int, closureWalk bool, skin float64) (modeResult, int) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(nSide))
	opt.ClosureWalk = closureWalk
	opt.ReorderEvery = 0
	if skin >= 0 {
		opt.Skin = skin
	}
	st := sph.NewState(p, opt)

	acc := make(map[string]time.Duration, len(passNames))
	timed := func(name string, fn func()) time.Duration {
		t0 := time.Now()
		fn()
		d := time.Since(t0)
		acc[name] += d
		return d
	}
	var rebuildNs, refreshNs time.Duration
	statsBase := st.NbrStats
	for s := 0; s < warmup+steps; s++ {
		if s == warmup {
			for k := range acc {
				delete(acc, k)
			}
			rebuildNs, refreshNs = 0, 0
			statsBase = st.NbrStats
		}
		preRebuilds := st.NbrStats.Rebuilds
		dFind := timed("find_neighbors", st.FindNeighbors)
		if st.NbrStats.Rebuilds > preRebuilds {
			rebuildNs += dFind
		} else {
			refreshNs += dFind
		}
		timed("xmass", st.XMass)
		timed("gradh", st.NormalizationGradh)
		timed("eos", st.EquationOfState)
		timed("iad", st.IADVelocityDivCurl)
		timed("av_switches", func() { st.AVSwitches(st.Dt) })
		timed("momentum_energy", st.MomentumEnergy)
		var dt float64
		timed("timestep", func() { dt = st.Timestep() })
		timed("update", func() { st.UpdateQuantities(dt) })
	}

	res := modeResult{NsPerParticleStep: make(map[string]float64, len(passNames)+1)}
	denom := float64(p.N) * float64(steps)
	var total time.Duration
	for _, name := range passNames {
		d := acc[name]
		total += d
		res.NsPerParticleStep[name] = float64(d.Nanoseconds()) / denom
	}
	res.NsPerParticleStep["total"] = float64(total.Nanoseconds()) / denom
	res.StepMs = float64(total.Nanoseconds()) / float64(steps) / 1e6

	if opt.Skin > 0 && !closureWalk {
		rebuilds := st.NbrStats.Rebuilds - statsBase.Rebuilds
		refreshes := st.NbrStats.Refreshes - statsBase.Refreshes
		res.Skin = opt.Skin
		res.Rebuilds = rebuilds
		res.Refreshes = refreshes
		if rebuilds > 0 {
			res.RebuildIntervalSteps = float64(rebuilds+refreshes) / float64(rebuilds)
			res.RebuildNsPerParticle = float64(rebuildNs.Nanoseconds()) / (float64(p.N) * float64(rebuilds))
		}
		if refreshes > 0 {
			res.RefreshNsPerParticle = float64(refreshNs.Nanoseconds()) / (float64(p.N) * float64(refreshes))
		}
	}
	return res, opt.NgTarget
}

func main() {
	sizes := flag.String("sizes", "20,30", "comma-separated lattice side lengths (n_side³ particles each)")
	steps := flag.Int("steps", 4, "measured steps per run")
	warmup := flag.Int("warmup", 1, "warmup steps excluded from timing")
	out := flag.String("out", "BENCH_sph.json", "output path for the JSON results")
	flag.Parse()

	o := output{Benchmark: "sph_pipeline", GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, tok := range strings.Split(*sizes, ",") {
		nSide, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || nSide < 2 {
			fmt.Fprintf(os.Stderr, "sphbench: bad size %q\n", tok)
			os.Exit(1)
		}
		fmt.Printf("size %d³ (%d particles): closure walk...", nSide, nSide*nSide*nSide)
		walk, ngTarget := runMode(nSide, *warmup, *steps, true, 0)
		fmt.Printf(" %.1f ms/step; neighbor list...", walk.StepMs)
		list, _ := runMode(nSide, *warmup, *steps, false, 0)
		fmt.Printf(" %.1f ms/step; verlet skin...", list.StepMs)
		skin, _ := runMode(nSide, *warmup, *steps, false, -1)
		sr := sizeResult{
			NSide:    nSide,
			N:        nSide * nSide * nSide,
			NgTarget: ngTarget,
			Warmup:   *warmup,
			Steps:    *steps,
			Modes: map[string]modeResult{
				"closure_walk":       walk,
				"neighbor_list":      list,
				"neighbor_list_skin": skin,
			},
			SpeedupTotal:             walk.StepMs / list.StepMs,
			SpeedupSkin:              list.StepMs / skin.StepMs,
			SpeedupFindNeighborsSkin: list.NsPerParticleStep["find_neighbors"] / skin.NsPerParticleStep["find_neighbors"],
		}
		fmt.Printf(" %.1f ms/step (list %.2fx walk, skin %.2fx list, find_neighbors %.2fx)\n",
			skin.StepMs, sr.SpeedupTotal, sr.SpeedupSkin, sr.SpeedupFindNeighborsSkin)
		o.Sizes = append(o.Sizes, sr)
	}

	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sphbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sphbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
