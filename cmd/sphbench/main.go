// Command sphbench measures the real SPH compute layer pass by pass — the
// per-function decomposition the paper attributes energy to — and writes
// the results as machine-readable JSON for regression tracking. Each
// problem size is run five times: with the legacy closure-walk pipeline,
// with the persistent neighbor list rebuilt every step, with the
// Verlet-skin list that amortizes rebuilds across steps, with the
// symmetric folded pair list that visits each interaction once, and with
// the cell-slab gather sweeping candidates cell by cell on top of the
// symmetric skin mode — so the
// file records its own before/after comparisons and future PRs diff
// against a stable schema (internal/benchfmt; cmd/perfgate is the
// consumer).
//
// Passes are timed through the pipeline's own Options.PassHook, so the
// benchmark exercises the exact RunStep the simulator runs, and
// -cpuprofile attaches per-pass pprof labels through Options.WrapPass.
//
// Examples:
//
//	sphbench -sizes 20,30 -steps 4 -out BENCH_sph.json
//	sphbench -sizes 20 -gomaxprocs 1,2,4,8       # parallel-efficiency sweep
//	sphbench -sizes 30 -cpuprofile cpu.pprof -memprofile heap.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"sphenergy/internal/benchfmt"
	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
	"sphenergy/internal/telemetry"
)

// profiling is set when -cpuprofile is active; it gates the per-pass pprof
// labels (pprof.Do allocates, so the labels stay off the unprofiled path).
var profiling bool

// passMetrics, when non-nil (-metrics-out), collects pass_seconds
// histograms (p50/p95/p99 per pass) across every mode and size.
var passMetrics *telemetry.Registry

// runMode times every pipeline pass over the given number of steps on a
// fresh Turbulence state, through the pipeline's own PassHook so the timed
// code path is RunStep itself. SFC reordering is disabled so all modes
// advance identical trajectories and the comparison is pure pipeline cost.
// skin < 0 keeps the default Verlet skin; skin == 0 pins the
// rebuild-every-step list. symmetric enables the folded pair-interaction
// path on top of the list; cellSlab the cell-slab candidate gather on top
// of that.
func runMode(nSide, warmup, steps int, closureWalk, symmetric, cellSlab bool, skin float64) (benchfmt.ModeResult, int) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(nSide))
	opt.ClosureWalk = closureWalk
	opt.SymmetricPairs = symmetric
	opt.CellSlab = cellSlab
	opt.ReorderEvery = 0
	if skin >= 0 {
		opt.Skin = skin
	}

	acc := make(map[string]float64, len(benchfmt.PassNames))
	var rebuildS, refreshS float64
	var st *sph.State
	lastRebuilds := 0
	histHook := telemetry.PassHistogramHook(passMetrics, "pass_seconds",
		"wall-clock latency per SPH pipeline pass")
	opt.PassHook = func(pass string, seconds float64) {
		acc[pass] += seconds
		if histHook != nil {
			histHook(pass, seconds)
		}
		if pass == sph.PassFindNeighbors {
			if st.NbrStats.Rebuilds > lastRebuilds {
				rebuildS += seconds
			} else {
				refreshS += seconds
			}
			lastRebuilds = st.NbrStats.Rebuilds
		}
	}
	if profiling {
		opt.WrapPass = func(pass string, run func()) {
			telemetry.DoLabeled(true, "pass", pass, run)
		}
	}
	st = sph.NewState(p, opt)
	lastRebuilds = st.NbrStats.Rebuilds // NewState builds the initial list

	var ms runtime.MemStats
	var mallocsBase uint64
	statsBase := st.NbrStats
	for s := 0; s < warmup+steps; s++ {
		if s == warmup {
			for k := range acc {
				delete(acc, k)
			}
			rebuildS, refreshS = 0, 0
			statsBase = st.NbrStats
			runtime.ReadMemStats(&ms)
			mallocsBase = ms.Mallocs
		}
		st.RunStep(nil)
	}
	runtime.ReadMemStats(&ms)

	res := benchfmt.ModeResult{
		NsPerParticleStep: make(map[string]float64, len(benchfmt.PassNames)+1),
		AllocsPerStep:     float64(ms.Mallocs-mallocsBase) / float64(steps),
	}
	denom := float64(p.N) * float64(steps)
	var totalS float64
	for _, name := range benchfmt.PassNames {
		d := acc[name]
		totalS += d
		res.NsPerParticleStep[name] = d * 1e9 / denom
	}
	res.NsPerParticleStep[benchfmt.TotalKey] = totalS * 1e9 / denom
	res.StepMs = totalS * 1e3 / float64(steps)

	if opt.Skin > 0 && !closureWalk {
		rebuilds := st.NbrStats.Rebuilds - statsBase.Rebuilds
		refreshes := st.NbrStats.Refreshes - statsBase.Refreshes
		res.Skin = opt.Skin
		res.Rebuilds = rebuilds
		res.Refreshes = refreshes
		if rebuilds > 0 {
			res.RebuildIntervalSteps = float64(rebuilds+refreshes) / float64(rebuilds)
			res.RebuildNsPerParticle = rebuildS * 1e9 / (float64(p.N) * float64(rebuilds))
		}
		if refreshes > 0 {
			res.RefreshNsPerParticle = refreshS * 1e9 / (float64(p.N) * float64(refreshes))
		}
		if cellSlab && rebuilds > 0 {
			gatherS := st.NbrStats.GatherSeconds - statsBase.GatherSeconds
			filterS := st.NbrStats.FilterSeconds - statsBase.FilterSeconds
			res.GatherNsPerParticle = gatherS * 1e9 / (float64(p.N) * float64(rebuilds))
			res.FilterNsPerParticle = filterS * 1e9 / (float64(p.N) * float64(rebuilds))
		}
	}
	return res, opt.NgTarget
}

// runSweep measures the symmetric skin-mode pipeline at each GOMAXPROCS
// setting and derives per-pass parallel efficiency t1/(P·tP) against the
// sweep's lowest-proc measured point (exact t1 when the list includes 1).
// Points whose worker count exceeds the machine's logical CPUs are
// recorded as skipped rather than measured: oversubscribed workers time
// scheduler contention, not scaling, and would poison the efficiency
// fields. GOMAXPROCS is restored afterwards.
func runSweep(nSide, warmup, steps int, procs []int) []benchfmt.SweepPoint {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	points := make([]benchfmt.SweepPoint, 0, len(procs))
	for _, p := range procs {
		if p > runtime.NumCPU() {
			points = append(points, benchfmt.SweepPoint{Procs: p, Skipped: true})
			fmt.Printf("  gomaxprocs %d: skipped (only %d CPUs)\n", p, runtime.NumCPU())
			continue
		}
		runtime.GOMAXPROCS(p)
		mode, _ := runMode(nSide, warmup, steps, false, true, false, -1)
		points = append(points, benchfmt.SweepPoint{
			Procs:             p,
			NsPerParticleStep: mode.NsPerParticleStep,
			StepMs:            mode.StepMs,
		})
		fmt.Printf("  gomaxprocs %d: %.1f ms/step\n", p, mode.StepMs)
	}

	var base *benchfmt.SweepPoint
	for i := range points {
		if !points[i].Skipped {
			base = &points[i]
			break
		}
	}
	if base == nil {
		return points
	}
	for i := range points {
		pt := &points[i]
		if pt.Skipped {
			continue
		}
		pt.SpeedupVs1 = base.StepMs / pt.StepMs
		pt.Efficiency = make(map[string]float64, len(pt.NsPerParticleStep))
		scale := float64(base.Procs) / float64(pt.Procs)
		for pass, ns := range pt.NsPerParticleStep {
			if ns > 0 {
				pt.Efficiency[pass] = base.NsPerParticleStep[pass] / ns * scale
			}
		}
	}
	return points
}

func parseInts(csv, what string) []int {
	var out []int
	for _, tok := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "sphbench: bad %s %q\n", what, tok)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	sizes := flag.String("sizes", "20,30", "comma-separated lattice side lengths (n_side³ particles each)")
	steps := flag.Int("steps", 4, "measured steps per run")
	warmup := flag.Int("warmup", 1, "warmup steps excluded from timing")
	out := flag.String("out", "BENCH_sph.json", "output path for the JSON results")
	gomaxprocs := flag.String("gomaxprocs", "", "comma-separated GOMAXPROCS sweep (e.g. 1,2,4,8); adds per-pass parallel-efficiency fields")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile with per-pass pprof labels to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	metricsOut := flag.String("metrics-out", "", "write per-pass latency histograms (JSON snapshot with quantiles) to this path")
	flag.Parse()

	if *metricsOut != "" {
		passMetrics = telemetry.NewRegistry()
	}

	if *cpuProfile != "" || *memProfile != "" {
		prof, err := telemetry.StartProfiler(*cpuProfile, *memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sphbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := prof.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "sphbench: %v\n", err)
			}
		}()
		profiling = *cpuProfile != ""
	}

	var sweepProcs []int
	if *gomaxprocs != "" {
		sweepProcs = parseInts(*gomaxprocs, "gomaxprocs")
	}

	o := benchfmt.Output{
		Benchmark:  "sph_pipeline",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, nSide := range parseInts(*sizes, "size") {
		if nSide < 2 {
			fmt.Fprintf(os.Stderr, "sphbench: size %d too small\n", nSide)
			os.Exit(1)
		}
		fmt.Printf("size %d³ (%d particles): closure walk...", nSide, nSide*nSide*nSide)
		walk, ngTarget := runMode(nSide, *warmup, *steps, true, false, false, 0)
		fmt.Printf(" %.1f ms/step; neighbor list...", walk.StepMs)
		list, _ := runMode(nSide, *warmup, *steps, false, false, false, 0)
		fmt.Printf(" %.1f ms/step; verlet skin...", list.StepMs)
		skin, _ := runMode(nSide, *warmup, *steps, false, false, false, -1)
		fmt.Printf(" %.1f ms/step; symmetric pairs...", skin.StepMs)
		symm, _ := runMode(nSide, *warmup, *steps, false, true, false, -1)
		fmt.Printf(" %.1f ms/step; cell slab...", symm.StepMs)
		slab, _ := runMode(nSide, *warmup, *steps, false, true, true, -1)
		sr := benchfmt.SizeResult{
			NSide:    nSide,
			N:        nSide * nSide * nSide,
			NgTarget: ngTarget,
			Warmup:   *warmup,
			Steps:    *steps,
			Modes: map[string]benchfmt.ModeResult{
				"closure_walk":            walk,
				"neighbor_list":           list,
				"neighbor_list_skin":      skin,
				"neighbor_list_symmetric": symm,
				"neighbor_list_cellslab":  slab,
			},
			SpeedupTotal:             walk.StepMs / list.StepMs,
			SpeedupSkin:              list.StepMs / skin.StepMs,
			SpeedupFindNeighborsSkin: list.NsPerParticleStep[sph.PassFindNeighbors] / skin.NsPerParticleStep[sph.PassFindNeighbors],
			SpeedupSymFolded:         benchfmt.FoldedNs(skin.NsPerParticleStep) / benchfmt.FoldedNs(symm.NsPerParticleStep),
			SpeedupSymTotal:          skin.StepMs / symm.StepMs,
		}
		if slab.RebuildNsPerParticle > 0 {
			sr.SpeedupCellSlabRebuild = symm.RebuildNsPerParticle / slab.RebuildNsPerParticle
		}
		fmt.Printf(" %.1f ms/step (list %.2fx walk, skin %.2fx list, find_neighbors %.2fx, sym folded %.2fx, sym total %.2fx, slab rebuild %.2fx)\n",
			slab.StepMs, sr.SpeedupTotal, sr.SpeedupSkin, sr.SpeedupFindNeighborsSkin,
			sr.SpeedupSymFolded, sr.SpeedupSymTotal, sr.SpeedupCellSlabRebuild)
		if len(sweepProcs) > 0 {
			fmt.Printf("  gomaxprocs sweep %v on symmetric skin mode:\n", sweepProcs)
			sr.Sweep = runSweep(nSide, *warmup, *steps, sweepProcs)
			sr.SweepMode = "neighbor_list_symmetric"
		}
		o.Sizes = append(o.Sizes, sr)
	}

	if err := o.WriteFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "sphbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	if passMetrics != nil {
		if err := passMetrics.WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "sphbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("pass latency histograms written to %s\n", *metricsOut)
	}
}
