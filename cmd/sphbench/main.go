// Command sphbench measures the real SPH compute layer pass by pass — the
// per-function decomposition the paper attributes energy to — and writes
// the results as machine-readable JSON for regression tracking. Each
// problem size is run twice, once with the legacy closure-walk pipeline
// and once with the persistent neighbor-list pipeline, so the file records
// its own before/after comparison and future PRs diff against a stable
// schema.
//
// Example:
//
//	sphbench -sizes 20,30 -steps 4 -out BENCH_sph.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
)

// passNames fixes the order and JSON keys of the timed pipeline passes.
var passNames = []string{
	"find_neighbors",
	"xmass",
	"gradh",
	"eos",
	"iad",
	"av_switches",
	"momentum_energy",
	"timestep",
	"update",
}

// modeResult is one pipeline variant's timing at one problem size.
type modeResult struct {
	// NsPerParticleStep maps each pass (plus "total") to nanoseconds per
	// particle per step, averaged over the measured steps.
	NsPerParticleStep map[string]float64 `json:"ns_per_particle_step"`
	StepMs            float64            `json:"step_ms"`
}

// sizeResult is one problem size's before/after measurement.
type sizeResult struct {
	NSide    int                   `json:"n_side"`
	N        int                   `json:"n"`
	NgTarget int                   `json:"ng_target"`
	Warmup   int                   `json:"warmup_steps"`
	Steps    int                   `json:"measured_steps"`
	Modes    map[string]modeResult `json:"modes"`
	// SpeedupTotal is closure_walk step time over neighbor_list step time.
	SpeedupTotal float64 `json:"speedup_total"`
}

type output struct {
	Benchmark  string       `json:"benchmark"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Sizes      []sizeResult `json:"sizes"`
}

// runMode times every pipeline pass over the given number of steps on a
// fresh Turbulence state. SFC reordering is disabled so both modes advance
// identical trajectories and the comparison is pure pipeline cost.
func runMode(nSide, warmup, steps int, closureWalk bool) (modeResult, int) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(nSide))
	opt.ClosureWalk = closureWalk
	opt.ReorderEvery = 0
	st := sph.NewState(p, opt)

	acc := make(map[string]time.Duration, len(passNames))
	timed := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		acc[name] += time.Since(t0)
	}
	for s := 0; s < warmup+steps; s++ {
		if s == warmup {
			for k := range acc {
				delete(acc, k)
			}
		}
		timed("find_neighbors", st.FindNeighbors)
		timed("xmass", st.XMass)
		timed("gradh", st.NormalizationGradh)
		timed("eos", st.EquationOfState)
		timed("iad", st.IADVelocityDivCurl)
		timed("av_switches", func() { st.AVSwitches(st.Dt) })
		timed("momentum_energy", st.MomentumEnergy)
		var dt float64
		timed("timestep", func() { dt = st.Timestep() })
		timed("update", func() { st.UpdateQuantities(dt) })
	}

	res := modeResult{NsPerParticleStep: make(map[string]float64, len(passNames)+1)}
	denom := float64(p.N) * float64(steps)
	var total time.Duration
	for _, name := range passNames {
		d := acc[name]
		total += d
		res.NsPerParticleStep[name] = float64(d.Nanoseconds()) / denom
	}
	res.NsPerParticleStep["total"] = float64(total.Nanoseconds()) / denom
	res.StepMs = float64(total.Nanoseconds()) / float64(steps) / 1e6
	return res, opt.NgTarget
}

func main() {
	sizes := flag.String("sizes", "20,30", "comma-separated lattice side lengths (n_side³ particles each)")
	steps := flag.Int("steps", 4, "measured steps per run")
	warmup := flag.Int("warmup", 1, "warmup steps excluded from timing")
	out := flag.String("out", "BENCH_sph.json", "output path for the JSON results")
	flag.Parse()

	o := output{Benchmark: "sph_pipeline", GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, tok := range strings.Split(*sizes, ",") {
		nSide, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || nSide < 2 {
			fmt.Fprintf(os.Stderr, "sphbench: bad size %q\n", tok)
			os.Exit(1)
		}
		fmt.Printf("size %d³ (%d particles): closure walk...", nSide, nSide*nSide*nSide)
		walk, ngTarget := runMode(nSide, *warmup, *steps, true)
		fmt.Printf(" %.1f ms/step; neighbor list...", walk.StepMs)
		list, _ := runMode(nSide, *warmup, *steps, false)
		sr := sizeResult{
			NSide:    nSide,
			N:        nSide * nSide * nSide,
			NgTarget: ngTarget,
			Warmup:   *warmup,
			Steps:    *steps,
			Modes: map[string]modeResult{
				"closure_walk":  walk,
				"neighbor_list": list,
			},
			SpeedupTotal: walk.StepMs / list.StepMs,
		}
		fmt.Printf(" %.1f ms/step (%.2fx)\n", list.StepMs, sr.SpeedupTotal)
		o.Sizes = append(o.Sizes, sr)
	}

	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sphbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sphbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
