// Command energyreport analyzes a JSON energy report written by sphexa
// (or by the library's instr package): per-device and per-function
// breakdowns, rank statistics, and optional comparison against a baseline
// report — the post-hoc analysis step of the paper's workflow (§III-B).
//
// Examples:
//
//	energyreport run.json
//	energyreport -baseline base.json mandyn.json
//	energyreport -json run.json | jq .attribution.kernels
package main

import (
	"flag"
	"fmt"
	"os"

	"sphenergy/internal/cluster"
	"sphenergy/internal/instr"
	"sphenergy/internal/report"
)

func main() {
	baseline := flag.String("baseline", "", "baseline report to normalize against")
	jsonOut := flag.Bool("json", false, "re-emit the parsed report as JSON on stdout (for jq-style pipelines)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: energyreport [-baseline base.json] [-json] <report.json>")
		os.Exit(2)
	}

	r, err := instr.ReadReportFile(flag.Arg(0))
	fatalIf(err)

	if *jsonOut {
		fatalIf(r.WriteJSON(os.Stdout))
		return
	}

	fmt.Printf("simulation: %s on %s (%d ranks, strategy %s)\n",
		r.Simulation, r.System, len(r.Ranks), r.Strategy)
	fmt.Printf("wall time: %.1f s, total energy: %.3f MJ, EDP: %.4g J*s\n\n",
		r.WallTimeS, r.TotalEnergyJ/1e6, r.EDP())

	spec, err := cluster.SystemByName(r.System)
	if err != nil {
		// Unknown system names still get a breakdown without memory split.
		spec = cluster.NodeSpec{Name: r.System}
	}
	fmt.Print(report.NewDeviceBreakdown(r, spec, r.Simulation).Render())
	fmt.Println()
	fmt.Print(report.NewFunctionBreakdown(r, r.Simulation).Render())

	// Per-rank imbalance summary.
	if len(r.Ranks) > 1 {
		minT, maxT := -1.0, 0.0
		for _, rp := range r.Ranks {
			t := rp.TotalGPUJ()
			if minT < 0 || t < minT {
				minT = t
			}
			if t > maxT {
				maxT = t
			}
		}
		if maxT > 0 {
			fmt.Printf("\nper-rank GPU energy spread: min %.1f J, max %.1f J (%.2f%% imbalance)\n",
				minT, maxT, 100*(maxT-minT)/maxT)
		} else {
			// All ranks reported zero GPU energy (e.g. a CPU-only or empty
			// report) — there is no imbalance to quantify.
			fmt.Printf("\nper-rank GPU energy spread: all ranks 0 J\n")
		}
	}

	if r.Attribution != nil {
		fmt.Println()
		fmt.Print(report.RenderAttribution(r.Attribution, 12))
	}
	if r.Validation != nil {
		fmt.Println()
		fmt.Print(report.RenderValidation(r.Validation))
	}
	if r.Faults != nil {
		fmt.Println()
		fmt.Print(report.RenderFaults(r.Faults))
	}

	if *baseline != "" {
		b, err := instr.ReadReportFile(*baseline)
		fatalIf(err)
		n := report.Normalize(r.Strategy, r.WallTimeS, r.TotalEnergyJ, b.WallTimeS, b.TotalEnergyJ)
		fmt.Println()
		fmt.Print(report.RenderNormalizedTable(
			fmt.Sprintf("normalized to %s (%s)", b.Strategy, *baseline),
			[]report.Normalized{n}))
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "energyreport:", err)
		os.Exit(1)
	}
}
