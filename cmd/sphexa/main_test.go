package main

import (
	"testing"

	"sphenergy/internal/core"
)

func TestResolvePPRDefaults(t *testing.T) {
	turb, err := resolvePPR("", core.Turbulence)
	if err != nil || turb != 150e6 {
		t.Errorf("turbulence default = %v, %v", turb, err)
	}
	evr, err := resolvePPR("", core.Evrard)
	if err != nil || evr != 80e6 {
		t.Errorf("evrard default = %v, %v", evr, err)
	}
}

func TestResolvePPRLatticeNotation(t *testing.T) {
	v, err := resolvePPR("450^3", core.Turbulence)
	if err != nil || v != 450*450*450 {
		t.Errorf("450^3 = %v, %v", v, err)
	}
	if _, err := resolvePPR("x^3", core.Turbulence); err == nil {
		t.Error("bad lattice accepted")
	}
}

func TestResolvePPRScientific(t *testing.T) {
	v, err := resolvePPR("1.5e7", core.Turbulence)
	if err != nil || v != 1.5e7 {
		t.Errorf("1.5e7 = %v, %v", v, err)
	}
	if _, err := resolvePPR("lots", core.Turbulence); err == nil {
		t.Error("garbage accepted")
	}
}
