// Command sphexa runs an instrumented simulation at paper scale on a
// simulated Table I system and writes the per-function energy report.
//
// The flag names follow the SPH-EXA conventions of Table I: -n selects the
// total particle count (in billions when >= 0.1, otherwise interpreted as a
// lattice side), -s the step count.
//
// Examples:
//
//	sphexa -sim turbulence -system cscs-a100 -ranks 32 -s 100
//	sphexa -sim evrard -system lumi-g -ranks 32 -s 100 -report evrard.json
//	sphexa -sim turbulence -system minihpc -ranks 1 -strategy mandyn
//	sphexa -sim turbulence -ranks 4 -strategy mandyn -trace-out run.trace.json \
//	    -metrics-out metrics.json -metrics-addr :9090
//	sphexa -sim turbulence -ranks 2 -s 3 -ppr 10e6 -energy-validate
//	sphexa -sim turbulence -ranks 2 -s 3 -ppr 10e6 -energy-validate \
//	    -fault-plan plan.json -degradation drop-rank
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"sphenergy"
	"sphenergy/internal/core"
	"sphenergy/internal/faults"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/recovery"
	"sphenergy/internal/report"
	"sphenergy/internal/sampler"
	"sphenergy/internal/slurm"
	"sphenergy/internal/telemetry"
	"sphenergy/internal/units"
)

func main() {
	var (
		simName   = flag.String("sim", "turbulence", "simulation: turbulence or evrard")
		system    = flag.String("system", "minihpc", "system: lumi-g, cscs-a100 or minihpc")
		ranks     = flag.Int("ranks", 1, "MPI ranks (one per GPU die)")
		steps     = flag.Int("s", 100, "time-steps")
		pprFlag   = flag.String("ppr", "", "particles per rank (e.g. 150e6 or 450^3); default per simulation")
		strategy  = flag.String("strategy", "baseline", "frequency strategy: baseline, static:<mhz>, dvfs, mandyn, powercap:<watts>")
		ng        = flag.Int("ng", 150, "SPH neighbor count")
		reportOut = flag.String("report", "", "write the JSON energy report to this path")
		csvOut    = flag.String("csv", "", "write the per-function CSV export to this path")
		carbon    = flag.String("carbon", "", "report CO2e for a grid: hydro, swiss, eu, coal")
		quiet     = flag.Bool("q", false, "suppress breakdown output")

		traceOut    = flag.String("trace-out", "", "write the run timeline as Chrome trace_event JSON (open in Perfetto or chrome://tracing)")
		metricsOut  = flag.String("metrics-out", "", "write the metrics JSON snapshot to this path")
		eventsOut   = flag.String("events-out", "", "write the decision ledger as JSONL to this path (audit with cmd/declog)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus text format on this address at /metrics during the run (e.g. :9090); also mounts /metrics.json, /healthz, /debug/pprof/ and — when the decision ledger is on — /events (SSE) and /status")
		cpuProfile  = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this path (per-pass samples carry a pass= pprof label)")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this path at exit")

		sampleHz     = flag.Float64("sample-hz", 0, "async per-GPU power sampling rate in Hz (0 disables sampling)")
		sampleNodeHz = flag.Float64("sample-node-hz", sampler.DefaultNodeHz, "async node-sensor (BMC/pm_counters) sampling rate in Hz")
		validate     = flag.Bool("energy-validate", false, "run as a Slurm job with async sampling and print the per-kernel attribution and three-way cross-source energy validation")

		faultPlan   = flag.String("fault-plan", "", "fault-injection plan: a JSON file path or inline JSON (see internal/faults)")
		degradation = flag.String("degradation", "", "rank-failure degradation policy: abort, drop-rank or redistribute (default abort)")

		ckptDir      = flag.String("checkpoint-dir", "", "durable checkpoint directory; enables supervised crash recovery")
		autosave     = flag.Int("autosave-every", 10, "checkpoint every N completed steps (0 = final checkpoint only)")
		keepCkpts    = flag.Int("keep-checkpoints", 0, "checkpoint retention depth (0 = default)")
		maxRestarts  = flag.Int("max-restarts", 2, "bounded supervisor restarts after a crash or watchdog stall")
		wallBudget   = flag.Float64("walltime-budget", 0, "stop gracefully once the simulated wall clock passes this many seconds (0 = unlimited)")
		energyBudget = flag.Float64("energy-budget", 0, "stop gracefully once total allocation energy passes this many joules (0 = unlimited)")
	)
	flag.Parse()

	var prof *telemetry.Profiler
	if *cpuProfile != "" || *memProfile != "" {
		var err error
		prof, err = telemetry.StartProfiler(*cpuProfile, *memProfile)
		fatalIf(err)
		defer func() { fatalIf(prof.Close()) }()
	}

	spec, err := sphenergy.SystemByName(*system)
	fatalIf(err)

	sim := core.SimKind(*simName)
	ppr, err := resolvePPR(*pprFlag, sim)
	fatalIf(err)

	cfg := sphenergy.Config{
		System:           spec,
		Ranks:            *ranks,
		Sim:              sim,
		ParticlesPerRank: ppr,
		Steps:            *steps,
		Ng:               *ng,
	}

	if *traceOut != "" {
		cfg.Tracer = telemetry.NewTracer(*ranks)
		// Mirror rank 0's frequency/power trajectory into the timeline.
		cfg.Trace, cfg.TraceRank = true, 0
	}
	if *validate && *sampleHz <= 0 {
		*sampleHz = sampler.DefaultGPUHz
	}
	if *sampleHz > 0 {
		cfg.Sampling = sampler.Config{GPUHz: *sampleHz, NodeHz: *sampleNodeHz}
	}
	if *validate && cfg.Tracer == nil {
		// Attribution joins sampled power against kernel spans, so the
		// validation mode needs a tracer even without -trace-out.
		cfg.Tracer = telemetry.NewTracer(*ranks)
	}
	if *metricsOut != "" || *metricsAddr != "" {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if *eventsOut != "" || *metricsAddr != "" {
		// The decision ledger: exported as JSONL for cmd/declog, and served
		// live (SSE + status) when an HTTP listener is up anyway.
		cfg.Events = sphenergy.NewEventLedger(0)
	}
	if *faultPlan != "" {
		plan, err := faults.LoadPlan(*faultPlan)
		fatalIf(err)
		cfg.Faults = plan
	}
	cfg.Degradation = *degradation
	cfg.ProfileLabels = *cpuProfile != ""
	if *metricsAddr != "" {
		var mounts []sphenergy.Mount
		if cfg.Events != nil {
			mounts = append(mounts,
				sphenergy.Mount{Pattern: "/events", Handler: cfg.Events.SSEHandler()},
				sphenergy.Mount{Pattern: "/status", Handler: cfg.Events.StatusHandler()})
		}
		srv, err := telemetry.ServeMetrics(*metricsAddr, cfg.Metrics, mounts...)
		fatalIf(err)
		defer srv.Close()
		fmt.Printf("serving metrics on http://%s/metrics\n", srv.Addr)
	}

	// On SIGINT/SIGTERM, flush the streaming outputs before dying so a
	// cancelled job still leaves an analyzable partial trace, metrics
	// snapshot and decision ledger on disk. The writers snapshot under
	// their own locks, so flushing mid-step is safe; declog and tracetool
	// both tolerate the truncated tail.
	flushOutputs := func(w *os.File) {
		if *traceOut != "" && cfg.Tracer != nil {
			if err := cfg.Tracer.WriteFile(*traceOut); err == nil {
				fmt.Fprintf(w, "trace written to %s (%d events)\n", *traceOut, cfg.Tracer.Len())
			}
		}
		if *metricsOut != "" && cfg.Metrics != nil {
			if err := cfg.Metrics.WriteFile(*metricsOut); err == nil {
				fmt.Fprintf(w, "metrics written to %s\n", *metricsOut)
			}
		}
		if *eventsOut != "" && cfg.Events != nil {
			if err := cfg.Events.WriteFile(*eventsOut); err == nil {
				fmt.Fprintf(w, "events written to %s (%d emitted)\n", *eventsOut, cfg.Events.Emitted())
			}
		}
	}
	// With recovery on, the first signal requests a graceful stop: the run
	// writes a final checkpoint at the next step boundary and sphexa exits
	// 128+sig after flushing its outputs; a second signal (or any signal
	// with recovery off) forces the old immediate flush-and-die path.
	recoveryOn := *ckptDir != "" || *wallBudget > 0 || *energyBudget > 0
	if recoveryOn && *validate {
		fatalIf(fmt.Errorf("-energy-validate cannot be combined with -checkpoint-dir or budgets"))
	}
	var curCtl atomic.Pointer[recovery.Controller]
	var sigCode atomic.Int32
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		for sig := range sigc {
			code := 128 + int(syscall.SIGTERM)
			if s, ok := sig.(syscall.Signal); ok {
				code = 128 + int(s)
			}
			if ctl := curCtl.Load(); ctl != nil && sigCode.Swap(int32(code)) == 0 {
				fmt.Fprintf(os.Stderr,
					"sphexa: %v: stopping gracefully with a final checkpoint (repeat to force quit)\n", sig)
				ctl.RequestStop("signal:" + sig.String())
				continue
			}
			fmt.Fprintf(os.Stderr, "sphexa: %v: flushing partial outputs\n", sig)
			flushOutputs(os.Stderr)
			os.Exit(code)
		}
	}()

	switch {
	case *strategy == "baseline":
		cfg.NewStrategy = sphenergy.Baseline()
	case *strategy == "dvfs":
		cfg.NewStrategy = sphenergy.DVFS()
	case strings.HasPrefix(*strategy, "static:"):
		mhz, err := strconv.Atoi(strings.TrimPrefix(*strategy, "static:"))
		fatalIf(err)
		cfg.NewStrategy = sphenergy.StaticMHz(mhz)
	case strings.HasPrefix(*strategy, "powercap:"):
		w, err := strconv.ParseFloat(strings.TrimPrefix(*strategy, "powercap:"), 64)
		fatalIf(err)
		cfg.NewStrategy = func() sphenergy.Strategy { return freqctl.PowerCap{Watts: w} }
	case *strategy == "mandyn":
		// Observe the search through the ledger: sweep measurements become
		// tuner events and the predicted time/power/EDP table rides on every
		// frequency decision the run makes (cmd/declog joins the two).
		table, err := sphenergy.TuneFrequenciesObserved(spec, sim, ppr, *ng, cfg.Events)
		fatalIf(err)
		fmt.Println("tuned per-function frequencies (MHz):")
		for _, fn := range core.PipelineFunctionNames(sim) {
			fmt.Printf("  %-22s %d\n", fn, table[fn])
		}
		cfg.NewStrategy = sphenergy.ManDyn(table)
	default:
		fatalIf(fmt.Errorf("unknown strategy %q", *strategy))
	}

	// exitWith flushes the profiler (os.Exit skips defers) before leaving
	// with a contract code: 0 clean, 1 error, 3 budget-stop, 4 restarts
	// exhausted, 128+sig signal stop.
	exitWith := func(code int) {
		if prof != nil {
			prof.Close()
		}
		os.Exit(code)
	}

	var res *sphenergy.Result
	var outcome *sphenergy.RecoveryOutcome
	if recoveryOn {
		rcfg := sphenergy.RecoveryConfig{
			Dir:             *ckptDir,
			AutosaveEvery:   *autosave,
			Keep:            *keepCkpts,
			MaxRestarts:     *maxRestarts,
			Seed:            cfg.Seed,
			WalltimeBudgetS: *wallBudget,
			EnergyBudgetJ:   *energyBudget,
			Events:          cfg.Events,
			Metrics:         cfg.Metrics,
			OnAttempt:       func(ctl *recovery.Controller) { curCtl.Store(ctl) },
		}
		var err error
		res, outcome, err = sphenergy.RunSupervised(cfg, rcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sphexa:", err)
			if outcome != nil && outcome.Status == recovery.StatusRestartsExhausted {
				flushOutputs(os.Stderr)
				exitWith(4)
			}
			exitWith(1)
		}
		if outcome.Resumed {
			fmt.Printf("recovery: resumed from step %d (%d attempt(s), %d restart(s))\n",
				outcome.ResumeStep, outcome.Attempts, outcome.Restarts)
		}
	} else if *validate {
		// Run as a Slurm job so the three-way validation can compare the
		// sampled sensors and pm_counters against ConsumedEnergy accounting.
		mgr := slurm.NewManager()
		job, err := mgr.Submit(cfg, slurm.SubmitOptions{
			JobName: string(sim),
			TRES:    slurm.ParseTRES("billing,cpu,energy,gres/gpu"),
		})
		fatalIf(err)
		_, err = slurm.ThreeWay(job, 0)
		fatalIf(err)
		res = job.Result
	} else {
		var err error
		res, err = sphenergy.Run(cfg)
		fatalIf(err)
	}

	fmt.Printf("simulation %s on %s: %d ranks, %d steps, %.3g particles/rank\n",
		sim, spec.Name, *ranks, *steps, ppr)
	fmt.Printf("time-to-solution: %.1f s\n", res.WallTimeS)
	fmt.Printf("total energy:     %.3f MJ (GPU %.3f MJ)\n",
		res.EnergyJ()/1e6, res.GPUEnergyJ()/1e6)
	fmt.Printf("EDP:              %.4g J*s\n", res.EDP())

	if res.Report.Attribution != nil {
		fmt.Println()
		fmt.Print(report.RenderAttribution(res.Report.Attribution, 12))
	}
	if res.Report.Validation != nil {
		fmt.Println()
		fmt.Print(report.RenderValidation(res.Report.Validation))
	}
	if res.Report.Faults != nil {
		fmt.Println()
		fmt.Print(report.RenderFaults(res.Report.Faults))
	}

	if !*quiet {
		db := report.NewDeviceBreakdown(res.Report, spec, string(sim))
		fmt.Println()
		fmt.Print(db.Render())
		fb := report.NewFunctionBreakdown(res.Report, string(sim))
		fmt.Println()
		fmt.Print(fb.Render())
	}

	if *carbon != "" {
		var g units.CarbonIntensity
		switch *carbon {
		case "hydro":
			g = units.GridHydro
		case "swiss":
			g = units.GridSwiss
		case "eu":
			g = units.GridEUAverage
		case "coal":
			g = units.GridCoalHeavy
		default:
			fatalIf(fmt.Errorf("unknown grid %q (want hydro, swiss, eu or coal)", *carbon))
		}
		fmt.Println("\ncarbon footprint:", units.NewCarbonReport(units.Energy(res.EnergyJ()), g))
	}

	if *reportOut != "" {
		fatalIf(res.Report.WriteFile(*reportOut))
		fmt.Printf("\nreport written to %s\n", *reportOut)
	}
	if *csvOut != "" {
		fatalIf(res.Report.WriteCSVFile(*csvOut))
		fmt.Printf("CSV written to %s\n", *csvOut)
	}
	if *traceOut != "" {
		fatalIf(cfg.Tracer.WriteFile(*traceOut))
		fmt.Printf("trace written to %s (%d events)\n", *traceOut, cfg.Tracer.Len())
	}
	if *metricsOut != "" {
		fatalIf(cfg.Metrics.WriteFile(*metricsOut))
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if *eventsOut != "" {
		fatalIf(cfg.Events.WriteFile(*eventsOut))
		fmt.Printf("events written to %s (%d emitted)\n", *eventsOut, cfg.Events.Emitted())
	}

	if outcome != nil {
		if rc := res.Recovery; rc != nil && rc.Checkpoints > 0 {
			fmt.Printf("recovery: %d checkpoint(s) in %s (last %s)\n",
				rc.Checkpoints, *ckptDir, rc.LastCheckpoint)
		}
		if outcome.Status == recovery.StatusStopped {
			fmt.Printf("recovery: stopped early (%s) after %d step(s); resume by re-running with the same flags\n",
				outcome.StopCause, len(res.StepBoundariesS))
			if code := sigCode.Load(); code != 0 {
				exitWith(int(code))
			}
			exitWith(3)
		}
	}
}

// resolvePPR parses the particles-per-rank flag: "450^3" lattice notation,
// scientific notation, or the per-simulation defaults of Table I.
func resolvePPR(s string, sim core.SimKind) (float64, error) {
	if s == "" {
		if sim == core.Evrard {
			return 80e6, nil
		}
		return 150e6, nil
	}
	if strings.HasSuffix(s, "^3") {
		side, err := strconv.Atoi(strings.TrimSuffix(s, "^3"))
		if err != nil {
			return 0, fmt.Errorf("invalid lattice notation %q", s)
		}
		return float64(side) * float64(side) * float64(side), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid particles-per-rank %q", s)
	}
	return v, nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sphexa:", err)
		os.Exit(1)
	}
}
