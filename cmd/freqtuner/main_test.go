package main

import "testing"

func TestParsePPR(t *testing.T) {
	v, err := parsePPR("200^3")
	if err != nil || v != 200*200*200 {
		t.Errorf("200^3 = %v, %v", v, err)
	}
	v, err = parsePPR("8e6")
	if err != nil || v != 8e6 {
		t.Errorf("8e6 = %v, %v", v, err)
	}
	if _, err := parsePPR("abc"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parsePPR("a^3"); err == nil {
		t.Error("bad lattice accepted")
	}
}
