// Command freqtuner runs the KernelTuner-style per-kernel GPU frequency
// search (§III-C) and prints the best frequency per SPH-EXA function — the
// workflow behind Fig. 2 and the input table for ManDyn.
//
// Example:
//
//	freqtuner -system minihpc -sim turbulence -ppr 450^3 -objective edp
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/tuner"
)

func main() {
	var (
		system    = flag.String("system", "minihpc", "system: lumi-g, cscs-a100 or minihpc")
		simName   = flag.String("sim", "turbulence", "simulation: turbulence or evrard")
		pprFlag   = flag.String("ppr", "450^3", "particles per rank")
		ng        = flag.Int("ng", 150, "SPH neighbor count")
		minMHz    = flag.Int("min", 1005, "lowest candidate frequency (MHz)")
		maxMHz    = flag.Int("max", 0, "highest candidate frequency (MHz, 0 = device max)")
		objective = flag.String("objective", "edp", "objective: time, energy, edp, ed2p")
		strategy  = flag.String("strategy", "brute_force", "search: brute_force, random_sample, greedy_ils")
		verbose   = flag.Bool("v", false, "print the full sweep per kernel")
	)
	flag.Parse()

	spec, err := cluster.SystemByName(*system)
	fatalIf(err)
	pipeline, err := core.Pipeline(core.SimKind(*simName))
	fatalIf(err)
	ppr, err := parsePPR(*pprFlag)
	fatalIf(err)

	var obj tuner.Objective
	switch *objective {
	case "time":
		obj = tuner.TimeToSolution
	case "energy":
		obj = tuner.EnergyToSolution
	case "edp":
		obj = tuner.EDP
	case "ed2p":
		obj = tuner.ED2P
	default:
		fatalIf(fmt.Errorf("unknown objective %q", *objective))
	}

	cfg := tuner.Config{
		Spec:      spec.GPUSpec,
		Params:    tuner.Params{MinMHz: *minMHz, MaxMHz: *maxMHz},
		Objective: obj,
		Strategy:  tuner.StrategyKind(*strategy),
	}

	fmt.Printf("tuning %s kernels on %s (%s), objective %s, %s\n\n",
		*simName, spec.Name, spec.GPUSpec.Name, *objective, *strategy)
	fmt.Printf("%-22s %10s %12s %12s %8s\n", "function", "best MHz", "time(s)", "energy(J)", "evals")
	for _, fn := range pipeline {
		kernel := fn.Kernel(ppr, *ng, spec.GPUSpec.Vendor)
		res, err := tuner.TuneKernel(fn.Name, kernel, cfg)
		fatalIf(err)
		fmt.Printf("%-22s %10d %12.4f %12.1f %8d\n",
			fn.Name, res.Best.MHz, res.Best.TimeS, res.Best.EnergyJ, res.Evaluations)
		if *verbose {
			for _, m := range res.All {
				fmt.Printf("    %5d MHz  t=%.4fs  E=%.1fJ  score=%.4g\n", m.MHz, m.TimeS, m.EnergyJ, m.Score)
			}
		}
	}
}

func parsePPR(s string) (float64, error) {
	if strings.HasSuffix(s, "^3") {
		side, err := strconv.Atoi(strings.TrimSuffix(s, "^3"))
		if err != nil {
			return 0, err
		}
		return float64(side) * float64(side) * float64(side), nil
	}
	return strconv.ParseFloat(s, 64)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "freqtuner:", err)
		os.Exit(1)
	}
}
