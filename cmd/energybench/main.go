// Command energybench measures the async power sampler's overhead on a
// fixed reference run (miniHPC Turbulence, 2 ranks, 100 steps) at the
// rates the real measurement back-ends use — off, 10 Hz (BMC/pm_counters)
// and 100 Hz (NVML) — and writes the results as machine-readable JSON for
// regression tracking. It is the scriptable face of the
// BenchmarkSamplerOverhead benchmark in internal/core.
//
// Example:
//
//	energybench -out BENCH_energy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"sphenergy/internal/atomicio"
	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/sampler"
)

// result is one scenario's measurement in the output file.
type result struct {
	Name        string  `json:"name"`
	RateHz      float64 `json:"rate_hz"`
	Runs        int     `json:"runs"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// OverheadPct is ns/op relative to the sampling-off baseline.
	OverheadPct float64 `json:"overhead_pct"`
}

func main() {
	out := flag.String("out", "BENCH_energy.json", "output path for the JSON results")
	steps := flag.Int("s", 100, "time-steps per run")
	flag.Parse()

	base := core.Config{
		System:           cluster.MiniHPC(),
		Ranks:            2,
		Sim:              core.Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            *steps,
	}
	scenarios := []struct {
		name string
		cfg  sampler.Config
	}{
		{"off", sampler.Config{}},
		{"10Hz", sampler.Config{GPUHz: 10, NodeHz: 10}},
		{"100Hz", sampler.Config{GPUHz: 100, NodeHz: 10}},
	}

	var results []result
	for _, sc := range scenarios {
		cfg := base
		cfg.Sampling = sc.cfg
		// testing.Benchmark self-calibrates to ~1 s of measured run time
		// per scenario, the same loop `go test -bench` uses.
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		results = append(results, result{
			Name:        sc.name,
			RateHz:      sc.cfg.GPUHz,
			Runs:        br.N,
			NsPerOp:     br.NsPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		})
	}
	baseline := results[0].NsPerOp
	for i := range results {
		if baseline > 0 {
			results[i].OverheadPct = 100 * float64(results[i].NsPerOp-baseline) / float64(baseline)
		}
		fmt.Printf("%-6s %12d ns/op %10d B/op %8d allocs/op %+7.2f%%\n",
			results[i].Name, results[i].NsPerOp, results[i].BytesPerOp,
			results[i].AllocsPerOp, results[i].OverheadPct)
	}

	fatalIf(atomicio.WriteFile(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}))
	fmt.Printf("results written to %s\n", *out)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "energybench:", err)
		os.Exit(1)
	}
}
