// Command faultbench is the chaos harness for the fault-injection and
// graceful-degradation layer: it sweeps seeded fault plans (transient
// sensor faults, a clamped-clock window, a straggler rank, optionally a
// rank crash) over short instrumented runs and asserts the measurement
// contract the paper's workflow depends on:
//
//  1. the run completes without panic and every degradation is surfaced
//     (sampler flags, clamped-set counters, rank-failure records);
//  2. the two-gate attribution contract holds on clean rows — intervals
//     that rest on estimated sensor data are classified (degraded or
//     unresolvable), never silently gated;
//  3. the whole run is bit-identical across two same-seed executions
//     (compared on the serialized result summary).
//
// Any violation exits non-zero, which makes `make chaos-smoke` a CI
// gate. Examples:
//
//	faultbench -seeds 5
//	faultbench -seeds 20 -ranks 4 -steps 4 -crash -out chaos.json
//
// The -soak mode is the recovery chaos harness instead: it kills a
// supervised run with a pinned rank crash at seeded random steps and
// asserts every run restarts from its on-disk checkpoint and converges to
// a final state bit-identical to the uninterrupted reference, then proves
// the preemption path (walltime-budget stop, resume, same final state):
//
//	faultbench -soak -kills 10 -s 8
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"sphenergy"
	"sphenergy/internal/atomicio"
	"sphenergy/internal/attrib"
	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/events"
	"sphenergy/internal/faults"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/recovery"
	"sphenergy/internal/rng"
	"sphenergy/internal/sampler"
	"sphenergy/internal/telemetry"
)

// seedResult is the per-seed record written to -out; it is also the
// payload the determinism check byte-compares between the two runs.
type seedResult struct {
	Seed       uint64             `json:"seed"`
	WallTimeS  float64            `json:"wall_time_s"`
	EnergyJ    float64            `json:"energy_j"`
	AttribPass bool               `json:"attrib_pass"`
	AggErrPct  float64            `json:"agg_err_pct"`
	Degraded   int                `json:"degraded_rows"`
	Faults     *faults.Report     `json:"faults"`
	Kernels    []attrib.Row       `json:"kernels,omitempty"`
	Failures   []core.RankFailure `json:"failures,omitempty"`
}

func main() {
	var (
		seeds  = flag.Int("seeds", 3, "number of seeded plans to sweep")
		seed0  = flag.Uint64("seed0", 1, "first seed of the sweep")
		system = flag.String("system", "minihpc", "system: lumi-g, cscs-a100 or minihpc")
		ranks  = flag.Int("ranks", 2, "MPI ranks")
		steps  = flag.Int("s", 3, "time-steps per run")
		ppr    = flag.Float64("ppr", 10e6, "particles per rank")
		crash  = flag.Bool("crash", false, "also crash one rank mid-run (degradation policy drop-rank)")
		out    = flag.String("out", "", "write the per-seed JSON records to this path")
		quiet  = flag.Bool("q", false, "only print the final verdict")
		soak   = flag.Bool("soak", false, "run the recovery soak instead: seeded kill-and-recover sweep with bit-identity checks")
		kills  = flag.Int("kills", 10, "kill points per seed in -soak mode")
	)
	flag.Parse()

	spec, err := sphenergy.SystemByName(*system)
	fatalIf(err)

	if *soak {
		failed := false
		for i := 0; i < *seeds; i++ {
			seed := *seed0 + uint64(i)
			if err := runSoak(spec, seed, *ranks, *steps, *ppr, *kills, *quiet); err != nil {
				fmt.Fprintf(os.Stderr, "faultbench: soak seed %d: %v\n", seed, err)
				failed = true
			}
		}
		if failed {
			fmt.Println("recovery soak: FAIL")
			os.Exit(1)
		}
		fmt.Printf("recovery soak: PASS (%d seeds x %d kill points + preemption, every recovery bit-identical)\n",
			*seeds, *kills)
		return
	}

	var results []seedResult
	failed := false
	for i := 0; i < *seeds; i++ {
		seed := *seed0 + uint64(i)
		a, err := runChaos(spec, seed, *ranks, *steps, *ppr, *crash)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultbench: seed %d: %v\n", seed, err)
			failed = true
			continue
		}
		b, err := runChaos(spec, seed, *ranks, *steps, *ppr, *crash)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultbench: seed %d (replay): %v\n", seed, err)
			failed = true
			continue
		}
		ja, jb := mustJSON(a), mustJSON(b)
		if !bytes.Equal(ja, jb) {
			fmt.Fprintf(os.Stderr, "faultbench: seed %d NOT deterministic:\n%s\nvs\n%s\n", seed, ja, jb)
			failed = true
			continue
		}
		if !a.AttribPass {
			fmt.Fprintf(os.Stderr,
				"faultbench: seed %d violated the two-gate contract: agg err %.3f%% with %d degraded rows classified\n",
				seed, a.AggErrPct, a.Degraded)
			failed = true
		}
		if !*quiet {
			fmt.Printf("seed %-4d wall %8.2f s  energy %12.1f J  degraded rows %2d  injections %s\n",
				seed, a.WallTimeS, a.EnergyJ, a.Degraded, injectionSummary(a.Faults))
		}
		results = append(results, a)
	}

	if *out != "" {
		fatalIf(atomicio.WriteFile(*out, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(results)
		}))
	}
	if failed {
		fmt.Println("chaos sweep: FAIL")
		os.Exit(1)
	}
	fmt.Printf("chaos sweep: PASS (%d seeds, bit-identical replays, contract held)\n", len(results))
}

// runChaos executes one seeded chaos run and folds the result into the
// comparable summary. The plan stacks every fault family the framework
// supports on top of a ManDyn-driven run so the sensor, clock-control
// and rank layers all see injections.
func runChaos(spec cluster.NodeSpec, seed uint64, ranks, steps int, ppr float64, crash bool) (seedResult, error) {
	max := spec.GPUSpec.MaxSMClockMHz
	plan := &faults.Plan{Name: fmt.Sprintf("chaos-%d", seed), Seed: seed, Rules: []faults.Rule{
		{Kind: faults.Transient, Target: faults.TargetSensor, Probability: 0.15},
		{Kind: faults.Stuck, Target: faults.TargetNodeSensor, Probability: 0.05, Burst: 3},
		{Kind: faults.ClampedClock, Target: faults.TargetClock, MHz: max * 2 / 3, StartS: 5},
		{Kind: faults.Straggler, Target: faults.TargetRank, Ranks: []int{0}, Probability: 0.1, Factor: 2},
	}}
	policy := ""
	if crash && ranks > 1 {
		plan.Rules = append(plan.Rules, faults.Rule{
			Kind: faults.RankCrash, Target: faults.TargetRank, Ranks: []int{ranks - 1}, Step: steps / 2,
		})
		policy = core.DegradeDropRank
	}
	cfg := sphenergy.Config{
		System:           spec,
		Ranks:            ranks,
		Sim:              core.Turbulence,
		ParticlesPerRank: ppr,
		Steps:            steps,
		Seed:             seed,
		Tracer:           telemetry.NewTracer(ranks),
		Metrics:          telemetry.NewRegistry(),
		Sampling:         sampler.Config{GPUHz: 100, NodeHz: 10},
		Faults:           plan,
		Degradation:      policy,
		NewStrategy: func() freqctl.Strategy {
			return &freqctl.ManDyn{Table: map[string]int{
				core.FnMomentum: max, core.FnIAD: max,
			}, Default: max * 3 / 4}
		},
	}
	res, err := sphenergy.Run(cfg)
	if err != nil {
		return seedResult{}, err
	}
	if res.Attribution == nil {
		return seedResult{}, fmt.Errorf("no attribution produced")
	}
	return seedResult{
		Seed:       seed,
		WallTimeS:  res.WallTimeS,
		EnergyJ:    res.EnergyJ(),
		AttribPass: res.Attribution.Pass,
		AggErrPct:  res.Attribution.AggErrPct,
		Degraded:   res.Attribution.DegradedRows,
		Faults:     res.Faults,
		Kernels:    res.Attribution.Kernels,
		Failures:   res.Failures,
	}, nil
}

// soakConfig is the supervised run under chaos: model-only (no sampler or
// tracer, whose ring buffers document attempts rather than model truth),
// with a setup phase, ManDyn elision state, and the Verlet-skin rebuild
// cadence so every checkpointed state surface is exercised.
func soakConfig(spec cluster.NodeSpec, seed uint64, ranks, steps int, ppr float64) sphenergy.Config {
	max := spec.GPUSpec.MaxSMClockMHz
	return sphenergy.Config{
		System:               spec,
		Ranks:                ranks,
		Sim:                  core.Turbulence,
		ParticlesPerRank:     ppr,
		Steps:                steps,
		Seed:                 seed,
		SetupS:               1,
		NeighborRebuildEvery: 3,
		NewStrategy: func() freqctl.Strategy {
			return &freqctl.ManDyn{Table: map[string]int{
				core.FnMomentum: max, core.FnIAD: max,
			}, Default: max * 3 / 4}
		},
	}
}

// soakRecord flattens a run's model truth into comparable bytes — the same
// surface the recovery tests compare (wall time, energies, step boundaries,
// per-rank profiles); observability is excluded by design.
func soakRecord(res *sphenergy.Result) []byte {
	return mustJSON(map[string]any{
		"wall":     res.WallTimeS,
		"setup_j":  res.SetupEnergyJ,
		"bounds":   res.StepBoundariesS,
		"strategy": res.Report.Strategy,
		"gpu_j":    res.Report.GPUEnergyJ,
		"cpu_j":    res.Report.CPUEnergyJ,
		"mem_j":    res.Report.MemEnergyJ,
		"other_j":  res.Report.OtherEnergyJ,
		"total_j":  res.Report.TotalEnergyJ,
		"ranks":    res.Report.Ranks,
	})
}

// runSoak proves the recovery contract for one seed: an uninterrupted
// reference run, then kills kill-points at seeded random steps (pinned rank
// crash under the default abort policy) and requires the supervisor to
// restart each from disk and converge bit-identically; finally a
// walltime-budget preemption plus resume must land on the same state.
func runSoak(spec cluster.NodeSpec, seed uint64, ranks, steps int, ppr float64, kills int, quiet bool) error {
	if steps < 2 {
		return fmt.Errorf("soak needs at least 2 steps, have %d", steps)
	}
	base := soakConfig(spec, seed, ranks, steps, ppr)
	ref, err := sphenergy.Run(base)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	want := soakRecord(ref)

	r := rng.New(seed ^ 0x50AC50AC)
	for i := 0; i < kills; i++ {
		// Kill at step >= 1 so at least one autosave precedes the crash;
		// a step-0 crash has no snapshot and would exhaust restarts.
		killStep := 1 + r.Intn(steps-1)
		killRank := r.Intn(ranks)
		dir, err := os.MkdirTemp("", "sphenergy-soak-*")
		if err != nil {
			return err
		}
		cfg := base
		cfg.Faults = &faults.Plan{Name: "soak-kill", Seed: seed, Rules: []faults.Rule{
			{Kind: faults.RankCrash, Target: faults.TargetRank, Ranks: []int{killRank}, Step: killStep},
		}}
		led := sphenergy.NewEventLedger(0)
		res, outcome, err := sphenergy.RunSupervised(cfg, sphenergy.RecoveryConfig{
			Dir: dir, AutosaveEvery: 1, MaxRestarts: 2, BackoffS: 0.001, Seed: seed, Events: led,
		})
		os.RemoveAll(dir)
		if err != nil {
			return fmt.Errorf("kill at step %d rank %d: %w", killStep, killRank, err)
		}
		if outcome.Restarts < 1 || !outcome.Resumed {
			return fmt.Errorf("kill at step %d rank %d: no restart happened (%+v)", killStep, killRank, outcome)
		}
		sum := led.Summary()
		if sum.ByType[events.Restart] < 1 || sum.ByType[events.CheckpointRestore] < 1 {
			return fmt.Errorf("kill at step %d: restart not visible in ledger: %v", killStep, sum.ByType)
		}
		if got := soakRecord(res); !bytes.Equal(got, want) {
			return fmt.Errorf("kill at step %d rank %d: recovered state NOT bit-identical:\n%s\nvs\n%s",
				killStep, killRank, got, want)
		}
		if !quiet {
			fmt.Printf("soak seed %-4d kill %2d/%d: step %2d rank %d -> recovered from step %d, bit-identical\n",
				seed, i+1, kills, killStep, killRank, outcome.ResumeStep)
		}
	}

	// Preemption path: budget-stop halfway, then resume to completion.
	dir, err := os.MkdirTemp("", "sphenergy-soak-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rcfg := sphenergy.RecoveryConfig{
		Dir: dir, AutosaveEvery: 1, MaxRestarts: 2, BackoffS: 0.001, Seed: seed,
		WalltimeBudgetS: ref.WallTimeS * 0.5,
	}
	_, outcome, err := sphenergy.RunSupervised(base, rcfg)
	if err != nil {
		return fmt.Errorf("preemption run: %w", err)
	}
	if outcome.Status != recovery.StatusStopped || outcome.StopCause != recovery.StopWalltimeBudget {
		return fmt.Errorf("preemption run did not budget-stop: %+v", outcome)
	}
	rcfg.WalltimeBudgetS = 0
	res, outcome, err := sphenergy.RunSupervised(base, rcfg)
	if err != nil {
		return fmt.Errorf("resume after preemption: %w", err)
	}
	if !outcome.Resumed {
		return fmt.Errorf("resume after preemption started fresh: %+v", outcome)
	}
	if got := soakRecord(res); !bytes.Equal(got, want) {
		return fmt.Errorf("preempt+resume NOT bit-identical:\n%s\nvs\n%s", got, want)
	}
	if !quiet {
		fmt.Printf("soak seed %-4d preemption: stopped at %.1fs budget, resumed from step %d, bit-identical\n",
			seed, ref.WallTimeS*0.5, outcome.ResumeStep)
	}
	return nil
}

func injectionSummary(f *faults.Report) string {
	if f == nil || len(f.Injected) == 0 {
		return "none"
	}
	total := uint64(0)
	for _, ic := range f.Injected {
		total += ic.Count
	}
	return fmt.Sprintf("%d across %d streams", total, len(f.Injected))
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultbench:", err)
		os.Exit(1)
	}
}
