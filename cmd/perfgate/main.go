// Command perfgate is the bench regression sentinel: it diffs a fresh
// sphbench run against the committed BENCH_sph.json baseline and fails
// (exit 1) when the pipeline got slower beyond noise. It is wired into
// `make check` in smoke mode so perf regressions fail CI like test
// regressions do.
//
// The checks are deliberately noise-aware and machine-portable:
//
//   - Per-pass share of total time is the primary check — shares are
//     ratios, so they survive moving to a faster or slower machine, and a
//     pass whose share jumps is exactly what a perf regression looks like.
//   - Total ns/particle and per-pass ns/particle carry generous relative
//     tolerances plus absolute floors (cheap passes are timer noise).
//   - The rebuild/refresh split of the Verlet-skin mode is deterministic
//     for identical trajectories, so counts must match within ±slack; when
//     step counts differ (smoke runs are shorter) the rebuild interval is
//     compared instead.
//   - Allocation counts per step get a relative tolerance plus an absolute
//     slack so GC-timing jitter does not flake the gate.
//   - The symmetric folded pair path carries an absolute speedup floor
//     (speedup_symmetric_folded), and the GOMAXPROCS sweep an absolute
//     parallel-efficiency floor on the folded passes — both skipped
//     gracefully when the fresh run did not measure them, and the
//     efficiency floor also when the machine has too few CPUs (the fresh
//     run records num_cpu for exactly this reason).
//
// Examples:
//
//	sphbench -out /tmp/fresh.json && perfgate -baseline BENCH_sph.json /tmp/fresh.json
//	perfgate -smoke -baseline BENCH_sph.json /tmp/fresh.json   # CI tolerances
//
// Refreshing the baseline after an intentional perf change:
//
//	go run ./cmd/sphbench -sizes 20,30 -steps 4 -out BENCH_sph.json
//	git add BENCH_sph.json   # commit alongside the change that caused it
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"sphenergy/internal/benchfmt"
)

// Tolerances bound how far a fresh run may drift from the baseline before
// the gate fails.
type Tolerances struct {
	// TotalFrac is the allowed relative increase of total ns/particle.
	TotalFrac float64
	// ShareAbs is the allowed absolute drift of a pass's share of total
	// time (0.10 = ten percentage points); passes below ShareMin of the
	// baseline total are ignored as noise.
	ShareAbs, ShareMin float64
	// PassFrac is the allowed relative increase of a single pass's
	// ns/particle; passes cheaper than PassMinNs in the baseline are
	// skipped. PassFrac <= 0 disables the per-pass check (smoke mode).
	PassFrac, PassMinNs float64
	// SpeedupFrac is the floor on fresh speedups relative to baseline:
	// fresh >= base * SpeedupFrac.
	SpeedupFrac float64
	// AllocFrac/AllocAbs bound allocs per step: fresh <= base*(1+AllocFrac)+AllocAbs.
	AllocFrac, AllocAbs float64
	// CountSlack is the tolerance on rebuild/refresh counts when the step
	// counts match; IntervalFrac bounds the rebuild-interval drift when
	// they do not.
	CountSlack   int
	IntervalFrac float64
	// SymFoldedMin is the absolute floor on the fresh run's
	// speedup_symmetric_folded — the tracked win of the folded pair path
	// over the asymmetric skin list on the pair-interaction passes.
	// Checked only when the fresh run measured it; <= 0 disables.
	SymFoldedMin float64
	// CellSlabMin is the absolute floor on the fresh run's
	// speedup_cellslab_rebuild — the tracked win of the cell-slab folded
	// gather over the walk-gathered symmetric rebuild. The contract is
	// defined in the dense regime, so it is asserted at the largest
	// measured size only; smaller sizes (fixed per-rebuild overheads on a
	// cheaper gather) are still guarded by the baseline-relative
	// SpeedupFrac check. Checked only when the fresh run measured it;
	// <= 0 disables.
	CellSlabMin float64
	// EffProcs/EffFloor assert the folded passes' parallel efficiency
	// t1/(P·tP) at P = EffProcs from the fresh run's GOMAXPROCS sweep.
	// Skipped when the sweep is absent, lacks the needed points, or the
	// fresh machine has fewer than EffProcs CPUs (a 1-core container
	// cannot exhibit parallel speedup); <= 0 disables.
	EffProcs int
	EffFloor float64
}

// Default is tuned for same-machine, same-config comparisons (the normal
// `make perfgate` flow).
func Default() Tolerances {
	return Tolerances{
		TotalFrac: 0.35,
		ShareAbs:  0.10, ShareMin: 0.05,
		PassFrac: 0.60, PassMinNs: 25,
		SpeedupFrac: 0.60,
		AllocFrac:   0.25, AllocAbs: 64,
		CountSlack: 1, IntervalFrac: 0.5,
		SymFoldedMin: 1.4,
		CellSlabMin:  1.4,
		EffProcs:     4, EffFloor: 0.65,
	}
}

// Smoke relaxes everything for short CI runs (fewer steps, colder caches,
// shared machines): only gross regressions fail.
func Smoke() Tolerances {
	return Tolerances{
		TotalFrac: 1.0,
		ShareAbs:  0.25, ShareMin: 0.10,
		PassFrac:    0, // per-pass ns too noisy at smoke step counts
		SpeedupFrac: 0.35,
		AllocFrac:   1.0, AllocAbs: 256,
		CountSlack: 2, IntervalFrac: 1.0,
		SymFoldedMin: 1.15,
		CellSlabMin:  1.15,
		EffProcs:     4, EffFloor: 0.5,
	}
}

// Gate compares fresh against base and returns one message per violated
// tolerance; empty means the gate passes.
func Gate(base, fresh *benchfmt.Output, tol Tolerances) []string {
	var fails []string
	failf := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}

	maxSide := 0
	for i := range base.Sizes {
		if s := base.Sizes[i].NSide; s > maxSide {
			maxSide = s
		}
	}
	for i := range base.Sizes {
		bs := &base.Sizes[i]
		fs := fresh.Size(bs.NSide)
		if fs == nil {
			failf("size %d³: missing from fresh run", bs.NSide)
			continue
		}
		// Stable mode order so failure output is diffable.
		modes := make([]string, 0, len(bs.Modes))
		for m := range bs.Modes {
			modes = append(modes, m)
		}
		sort.Strings(modes)
		for _, mode := range modes {
			bm := bs.Modes[mode]
			fm, ok := fs.Modes[mode]
			if !ok {
				failf("size %d³ %s: missing from fresh run", bs.NSide, mode)
				continue
			}
			gateMode(bs, fs, mode, bm, fm, tol, failf)
		}
		// Speedups are the tracked wins of the neighbor-list PRs; losing
		// them is a regression even if absolute times moved together.
		checkSpeedup := func(what string, b, f float64) {
			if b > 0 && f < b*tol.SpeedupFrac {
				failf("size %d³: %s %.2fx fell below %.2fx (baseline %.2fx × %.2f floor)",
					bs.NSide, what, f, b*tol.SpeedupFrac, b, tol.SpeedupFrac)
			}
		}
		checkSpeedup("speedup_total", bs.SpeedupTotal, fs.SpeedupTotal)
		checkSpeedup("speedup_skin", bs.SpeedupSkin, fs.SpeedupSkin)
		checkSpeedup("speedup_find_neighbors_skin", bs.SpeedupFindNeighborsSkin, fs.SpeedupFindNeighborsSkin)
		checkSpeedup("speedup_symmetric_folded", bs.SpeedupSymFolded, fs.SpeedupSymFolded)
		checkSpeedup("speedup_symmetric_total", bs.SpeedupSymTotal, fs.SpeedupSymTotal)
		// The rebuild-split speedup is only defined when the fresh run's
		// measured window contained a rebuild step (a short run whose
		// rebuilds all fell in warm-up reports 0 = unmeasured); the
		// missing-mode check still catches the mode disappearing entirely.
		if fs.SpeedupCellSlabRebuild > 0 {
			checkSpeedup("speedup_cellslab_rebuild", bs.SpeedupCellSlabRebuild, fs.SpeedupCellSlabRebuild)
		}
		// The folded pair path and the cell-slab gather carry absolute
		// performance contracts on top of the baseline-relative drift
		// checks.
		if tol.SymFoldedMin > 0 && fs.SpeedupSymFolded > 0 && fs.SpeedupSymFolded < tol.SymFoldedMin {
			failf("size %d³: speedup_symmetric_folded %.2fx below the %.2fx floor",
				bs.NSide, fs.SpeedupSymFolded, tol.SymFoldedMin)
		}
		if tol.CellSlabMin > 0 && bs.NSide == maxSide &&
			fs.SpeedupCellSlabRebuild > 0 && fs.SpeedupCellSlabRebuild < tol.CellSlabMin {
			failf("size %d³: speedup_cellslab_rebuild %.2fx below the %.2fx floor",
				bs.NSide, fs.SpeedupCellSlabRebuild, tol.CellSlabMin)
		}
		checkEfficiency(fresh, fs, tol, failf)
	}
	return fails
}

// checkEfficiency asserts the folded passes' parallel efficiency
// t1/(P·tP) at P = tol.EffProcs from the fresh run's GOMAXPROCS sweep.
// The check only runs when the fresh machine actually has EffProcs CPUs —
// GOMAXPROCS can exceed the core count, but the sweep then measures
// oversubscription, not scaling — and when the sweep includes both the
// 1-proc anchor and the target point.
func checkEfficiency(fresh *benchfmt.Output, fs *benchfmt.SizeResult,
	tol Tolerances, failf func(string, ...any)) {

	if tol.EffProcs <= 0 || tol.EffFloor <= 0 || fresh.NumCPU < tol.EffProcs {
		return
	}
	var t1, tp float64
	for i := range fs.Sweep {
		if fs.Sweep[i].Skipped {
			continue
		}
		switch fs.Sweep[i].Procs {
		case 1:
			t1 = benchfmt.FoldedNs(fs.Sweep[i].NsPerParticleStep)
		case tol.EffProcs:
			tp = benchfmt.FoldedNs(fs.Sweep[i].NsPerParticleStep)
		}
	}
	if t1 <= 0 || tp <= 0 {
		return
	}
	eff := t1 / (float64(tol.EffProcs) * tp)
	if eff < tol.EffFloor {
		failf("size %d³: folded-pass parallel efficiency %.2f at %d procs below the %.2f floor (t1 %.0f, tP %.0f ns/particle)",
			fs.NSide, eff, tol.EffProcs, tol.EffFloor, t1, tp)
	}
}

func gateMode(bs, fs *benchfmt.SizeResult, mode string, bm, fm benchfmt.ModeResult,
	tol Tolerances, failf func(string, ...any)) {

	id := fmt.Sprintf("size %d³ %s", bs.NSide, mode)
	bTotal := bm.NsPerParticleStep[benchfmt.TotalKey]
	fTotal := fm.NsPerParticleStep[benchfmt.TotalKey]
	if bTotal <= 0 || fTotal <= 0 {
		failf("%s: missing total ns/particle (base %g, fresh %g)", id, bTotal, fTotal)
		return
	}
	if fTotal > bTotal*(1+tol.TotalFrac) {
		failf("%s: total %.0f ns/particle exceeds %.0f (baseline %.0f +%.0f%%)",
			id, fTotal, bTotal*(1+tol.TotalFrac), bTotal, 100*tol.TotalFrac)
	}

	for _, pass := range benchfmt.PassNames {
		bNs, fNs := bm.NsPerParticleStep[pass], fm.NsPerParticleStep[pass]
		bShare, fShare := bNs/bTotal, fNs/fTotal
		if bShare >= tol.ShareMin && fShare-bShare > tol.ShareAbs {
			failf("%s: pass %s grew from %.0f%% to %.0f%% of step time (max drift %.0f points)",
				id, pass, 100*bShare, 100*fShare, 100*tol.ShareAbs)
		}
		if tol.PassFrac > 0 && bNs >= tol.PassMinNs && fNs > bNs*(1+tol.PassFrac) {
			failf("%s: pass %s %.0f ns/particle exceeds %.0f (baseline %.0f +%.0f%%)",
				id, pass, fNs, bNs*(1+tol.PassFrac), bNs, 100*tol.PassFrac)
		}
	}

	if bm.AllocsPerStep > 0 && fm.AllocsPerStep > bm.AllocsPerStep*(1+tol.AllocFrac)+tol.AllocAbs {
		failf("%s: %.0f allocs/step exceeds %.0f (baseline %.0f)",
			id, fm.AllocsPerStep, bm.AllocsPerStep*(1+tol.AllocFrac)+tol.AllocAbs, bm.AllocsPerStep)
	}

	if bm.Rebuilds > 0 || bm.Refreshes > 0 {
		if bs.Steps == fs.Steps && bs.Warmup == fs.Warmup {
			if d := abs(fm.Rebuilds - bm.Rebuilds); d > tol.CountSlack {
				failf("%s: rebuilds %d vs baseline %d (±%d allowed) — skin reuse broke",
					id, fm.Rebuilds, bm.Rebuilds, tol.CountSlack)
			}
			if d := abs(fm.Refreshes - bm.Refreshes); d > tol.CountSlack {
				failf("%s: refreshes %d vs baseline %d (±%d allowed)",
					id, fm.Refreshes, bm.Refreshes, tol.CountSlack)
			}
		} else if bm.RebuildIntervalSteps > 0 && fm.RebuildIntervalSteps > 0 {
			if math.Abs(fm.RebuildIntervalSteps-bm.RebuildIntervalSteps) > bm.RebuildIntervalSteps*tol.IntervalFrac {
				failf("%s: rebuild interval %.1f steps vs baseline %.1f (±%.0f%% allowed)",
					id, fm.RebuildIntervalSteps, bm.RebuildIntervalSteps, 100*tol.IntervalFrac)
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("perfgate", flag.ContinueOnError)
	baseline := fs.String("baseline", "BENCH_sph.json", "committed baseline benchmark file")
	smoke := fs.Bool("smoke", false, "relaxed CI tolerances for short runs")
	totalFrac := fs.Float64("tol-total", -1, "override: allowed relative total-time increase (e.g. 0.35)")
	shareAbs := fs.Float64("tol-share", -1, "override: allowed pass share-of-total drift (e.g. 0.10)")
	ckptFrac := fs.Float64("ckpt-overhead", 0, "instead of the baseline diff, self-measure checkpoint overhead: fail when a supervised run (autosave-every 10) costs more than this fraction over an autosave-off run")
	ckptReps := fs.Int("ckpt-reps", 3, "repetitions for the -ckpt-overhead measurement (min is taken)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ckptFrac > 0 {
		return ckptGate(*ckptFrac, *ckptReps, out)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: perfgate [-smoke] [-baseline BENCH_sph.json] fresh.json")
		return 2
	}

	tol := Default()
	if *smoke {
		tol = Smoke()
	}
	if *totalFrac >= 0 {
		tol.TotalFrac = *totalFrac
	}
	if *shareAbs >= 0 {
		tol.ShareAbs = *shareAbs
	}

	base, err := benchfmt.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		return 1
	}
	fresh, err := benchfmt.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		return 1
	}

	fails := Gate(base, fresh, tol)
	if len(fails) > 0 {
		fmt.Fprintf(out, "perfgate: FAIL — %d regression(s) vs %s:\n", len(fails), *baseline)
		for _, f := range fails {
			fmt.Fprintln(out, "  ", f)
		}
		fmt.Fprintln(out, "if intentional, refresh the baseline: go run ./cmd/sphbench -sizes 20,30 -steps 4 -out BENCH_sph.json")
		return 1
	}
	fmt.Fprintf(out, "perfgate: OK — %d size(s) within tolerance of %s\n", len(base.Sizes), *baseline)
	return 0
}
