package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"sphenergy/internal/benchfmt"
)

// sampleBench builds a plausible baseline with all checked fields set.
func sampleBench() *benchfmt.Output {
	mode := func(allocs float64, over map[string]float64) benchfmt.ModeResult {
		ns := map[string]float64{
			"find_neighbors":  6000,
			"xmass":           400,
			"gradh":           800,
			"eos":             6,
			"iad":             1800,
			"av_switches":     10,
			"momentum_energy": 2400,
			"timestep":        8,
			"update":          20,
		}
		for k, v := range over {
			ns[k] = v
		}
		total := 0.0
		for _, v := range ns {
			total += v
		}
		ns[benchfmt.TotalKey] = total
		return benchfmt.ModeResult{
			NsPerParticleStep: ns,
			StepMs:            total * 8000 / 1e6,
			AllocsPerStep:     allocs,
		}
	}
	walk := mode(13000, map[string]float64{"find_neighbors": 4400, "momentum_energy": 7200})
	list := mode(600, map[string]float64{"find_neighbors": 7500, "momentum_energy": 2250})
	skin := mode(80, nil)
	skin.Skin = 0.3
	skin.Rebuilds = 1
	skin.Refreshes = 3
	skin.RebuildIntervalSteps = 4
	skin.RebuildNsPerParticle = 9000
	skin.RefreshNsPerParticle = 4000
	sym := mode(90, map[string]float64{
		"find_neighbors": 6100, "xmass": 950, "gradh": 25,
		"iad": 1300, "momentum_energy": 1150,
	})
	sym.Skin = 0.3
	sym.Rebuilds = 1
	sym.Refreshes = 3
	sym.RebuildIntervalSteps = 4
	symAt4 := mode(140, map[string]float64{
		"find_neighbors": 1900, "xmass": 300, "gradh": 9,
		"iad": 420, "momentum_energy": 370,
	})
	return &benchfmt.Output{
		Benchmark:  "sph_pipeline",
		GoMaxProcs: 1,
		NumCPU:     8,
		Sizes: []benchfmt.SizeResult{{
			NSide: 20, N: 8000, NgTarget: 64, Warmup: 1, Steps: 4,
			Modes: map[string]benchfmt.ModeResult{
				"closure_walk":            walk,
				"neighbor_list":           list,
				"neighbor_list_skin":      skin,
				"neighbor_list_symmetric": sym,
			},
			SpeedupTotal:             walk.StepMs / list.StepMs,
			SpeedupSkin:              list.StepMs / skin.StepMs,
			SpeedupFindNeighborsSkin: list.NsPerParticleStep["find_neighbors"] / skin.NsPerParticleStep["find_neighbors"],
			SpeedupSymFolded:         benchfmt.FoldedNs(skin.NsPerParticleStep) / benchfmt.FoldedNs(sym.NsPerParticleStep),
			SpeedupSymTotal:          skin.StepMs / sym.StepMs,
			SweepMode:                "neighbor_list_symmetric",
			Sweep: []benchfmt.SweepPoint{
				{Procs: 1, NsPerParticleStep: sym.NsPerParticleStep, StepMs: sym.StepMs, SpeedupVs1: 1},
				{Procs: 4, NsPerParticleStep: symAt4.NsPerParticleStep, StepMs: symAt4.StepMs,
					SpeedupVs1: sym.StepMs / symAt4.StepMs},
			},
		}},
	}
}

// clone deep-copies through the JSON round trip the real tool performs.
func clone(t *testing.T, o *benchfmt.Output) *benchfmt.Output {
	t.Helper()
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var c benchfmt.Output
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestGateIdenticalRunsPass(t *testing.T) {
	base := sampleBench()
	for _, tol := range []Tolerances{Default(), Smoke()} {
		if fails := Gate(base, clone(t, base), tol); len(fails) != 0 {
			t.Errorf("identical runs failed the gate: %v", fails)
		}
	}
}

// inflate slows one pass by factor in every mode, keeping totals honest.
func inflate(t *testing.T, o *benchfmt.Output, pass string, factor float64) *benchfmt.Output {
	t.Helper()
	c := clone(t, o)
	for _, sz := range c.Sizes {
		for name, m := range sz.Modes {
			old := m.NsPerParticleStep[pass]
			m.NsPerParticleStep[pass] = old * factor
			m.NsPerParticleStep[benchfmt.TotalKey] += old * (factor - 1)
			m.StepMs *= m.NsPerParticleStep[benchfmt.TotalKey] / (m.NsPerParticleStep[benchfmt.TotalKey] - old*(factor-1))
			sz.Modes[name] = m
		}
	}
	return c
}

func TestGateSlowedPassFails(t *testing.T) {
	base := sampleBench()
	slowed := inflate(t, base, "momentum_energy", 3)
	fails := Gate(base, slowed, Default())
	if len(fails) == 0 {
		t.Fatal("3x-slower momentum_energy passed the gate")
	}
	joined := strings.Join(fails, "\n")
	if !strings.Contains(joined, "momentum_energy") {
		t.Errorf("failures do not name the slowed pass:\n%s", joined)
	}
	// A gross slowdown must also trip the relaxed smoke gate — that is
	// exactly what CI exists to catch.
	if fails := Gate(base, inflate(t, base, "momentum_energy", 4), Smoke()); len(fails) == 0 {
		t.Error("4x-slower momentum_energy passed the smoke gate")
	}
}

func TestGateNoiseWithinTolerancePasses(t *testing.T) {
	base := sampleBench()
	noisy := inflate(t, base, "momentum_energy", 1.15) // 15% — timer noise
	if fails := Gate(base, noisy, Default()); len(fails) != 0 {
		t.Errorf("15%% pass drift failed the gate: %v", fails)
	}
}

func TestGateAllocRegressionFails(t *testing.T) {
	base := sampleBench()
	c := clone(t, base)
	m := c.Sizes[0].Modes["neighbor_list_skin"]
	m.AllocsPerStep = base.Sizes[0].Modes["neighbor_list_skin"].AllocsPerStep*2 + 1000
	c.Sizes[0].Modes["neighbor_list_skin"] = m
	fails := Gate(base, c, Default())
	if len(fails) == 0 {
		t.Fatal("doubled allocs/step passed the gate")
	}
	if !strings.Contains(strings.Join(fails, "\n"), "allocs/step") {
		t.Errorf("failures do not mention allocs: %v", fails)
	}
}

func TestGateRebuildSplitDrift(t *testing.T) {
	base := sampleBench()
	c := clone(t, base)
	m := c.Sizes[0].Modes["neighbor_list_skin"]
	m.Rebuilds, m.Refreshes = 4, 0 // skin reuse broke: rebuilding every step
	c.Sizes[0].Modes["neighbor_list_skin"] = m
	if fails := Gate(base, c, Default()); len(fails) == 0 {
		t.Fatal("rebuild-every-step drift passed the gate")
	}
	// With differing step counts the absolute counts are incomparable and
	// the interval check takes over.
	c2 := clone(t, base)
	c2.Sizes[0].Steps = 8
	m2 := c2.Sizes[0].Modes["neighbor_list_skin"]
	m2.Rebuilds, m2.Refreshes, m2.RebuildIntervalSteps = 2, 6, 4
	c2.Sizes[0].Modes["neighbor_list_skin"] = m2
	if fails := Gate(base, c2, Default()); len(fails) != 0 {
		t.Errorf("same interval at different step count failed: %v", fails)
	}
}

func TestGateMissingSizeAndMode(t *testing.T) {
	base := sampleBench()
	c := clone(t, base)
	c.Sizes[0].NSide = 999
	if fails := Gate(base, c, Default()); len(fails) == 0 {
		t.Error("missing size passed the gate")
	}
	c2 := clone(t, base)
	delete(c2.Sizes[0].Modes, "neighbor_list_skin")
	if fails := Gate(base, c2, Default()); len(fails) == 0 {
		t.Error("missing mode passed the gate")
	}
}

func TestGateSpeedupFloor(t *testing.T) {
	base := sampleBench()
	c := clone(t, base)
	c.Sizes[0].SpeedupTotal = base.Sizes[0].SpeedupTotal * 0.3
	fails := Gate(base, c, Default())
	if len(fails) == 0 {
		t.Fatal("collapsed speedup_total passed the gate")
	}
	if !strings.Contains(strings.Join(fails, "\n"), "speedup_total") {
		t.Errorf("failures do not mention speedup_total: %v", fails)
	}
}

func TestGateSymmetricFoldedFloor(t *testing.T) {
	base := sampleBench()
	c := clone(t, base)
	c.Sizes[0].SpeedupSymFolded = 1.2 // above the 0.6 relative floor, below the 1.4 absolute one
	fails := Gate(base, c, Default())
	if len(fails) == 0 {
		t.Fatal("1.2x folded speedup passed the 1.4x absolute floor")
	}
	if !strings.Contains(strings.Join(fails, "\n"), "speedup_symmetric_folded") {
		t.Errorf("failures do not mention the folded floor: %v", fails)
	}
	// A fresh run that never measured the symmetric mode (e.g. a historical
	// file) must not trip the absolute floor — only the missing-mode check.
	c2 := clone(t, base)
	c2.Sizes[0].SpeedupSymFolded = 0
	for _, f := range Gate(base, c2, Default()) {
		if strings.Contains(f, "below the") {
			t.Errorf("unmeasured folded speedup tripped the absolute floor: %s", f)
		}
	}
}

func TestGateCellSlabFloor(t *testing.T) {
	base := sampleBench()
	s30 := base.Sizes[0]
	s30.NSide = 30
	s30.N = 27000
	base.Sizes = append(base.Sizes, s30)
	base.Sizes[0].SpeedupCellSlabRebuild = 1.25
	base.Sizes[1].SpeedupCellSlabRebuild = 1.55

	// The absolute floor is a dense-regime contract, asserted at the
	// largest measured size only: a smaller size under 1.4x passes as long
	// as the largest size holds.
	c := clone(t, base)
	c.Sizes[0].SpeedupCellSlabRebuild = 1.2
	if fails := Gate(base, c, Default()); len(fails) != 0 {
		t.Fatalf("small-size 1.2x tripped the largest-size floor: %v", fails)
	}

	c2 := clone(t, base)
	c2.Sizes[1].SpeedupCellSlabRebuild = 1.2
	fails := Gate(base, c2, Default())
	if len(fails) == 0 {
		t.Fatal("1.2x cell-slab speedup at the largest size passed the 1.4x floor")
	}
	if !strings.Contains(strings.Join(fails, "\n"), "speedup_cellslab_rebuild") {
		t.Errorf("failures do not mention the cell-slab floor: %v", fails)
	}
}

func TestGateParallelEfficiencyFloor(t *testing.T) {
	base := sampleBench()
	degrade := func(o *benchfmt.Output) {
		pt := &o.Sizes[0].Sweep[1] // the 4-proc point
		for _, pass := range benchfmt.FoldedPasses {
			pt.NsPerParticleStep[pass] *= 2 // efficiency ~0.39, below the 0.65 floor
		}
	}
	c := clone(t, base)
	degrade(c)
	fails := Gate(base, c, Default())
	if len(fails) == 0 {
		t.Fatal("collapsed 4-proc efficiency passed the gate")
	}
	if !strings.Contains(strings.Join(fails, "\n"), "parallel efficiency") {
		t.Errorf("failures do not mention parallel efficiency: %v", fails)
	}
	// On a machine without enough CPUs the sweep measures oversubscription,
	// not scaling — the check must skip, not fail.
	c2 := clone(t, base)
	degrade(c2)
	c2.NumCPU = 1
	for _, f := range Gate(base, c2, Default()) {
		if strings.Contains(f, "parallel efficiency") {
			t.Errorf("efficiency floor asserted on a 1-CPU machine: %s", f)
		}
	}
	// Without a sweep (plain smoke runs) the check also skips.
	c3 := clone(t, base)
	c3.Sizes[0].Sweep = nil
	for _, f := range Gate(base, c3, Default()) {
		if strings.Contains(f, "parallel efficiency") {
			t.Errorf("efficiency floor asserted without a sweep: %s", f)
		}
	}
}

// TestRunEndToEnd drives the real CLI: identical files pass twice in a row,
// a slowed pass fails with exit 1, bad input exits 2.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	base := sampleBench()
	if err := base.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	freshPath := filepath.Join(dir, "fresh.json")
	if err := clone(t, base).WriteFile(freshPath); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ { // acceptance: run twice on identical benches
		var out strings.Builder
		if code := run([]string{"-baseline", basePath, freshPath}, &out); code != 0 {
			t.Fatalf("run %d: identical benches exit %d:\n%s", i, code, out.String())
		}
		if !strings.Contains(out.String(), "OK") {
			t.Errorf("run %d output: %s", i, out.String())
		}
	}

	slowPath := filepath.Join(dir, "slow.json")
	if err := inflate(t, base, "iad", 3).WriteFile(slowPath); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run([]string{"-baseline", basePath, slowPath}, &out); code != 1 {
		t.Fatalf("slowed bench exit %d, want 1:\n%s", code, out.String())
	}
	for _, want := range []string{"FAIL", "iad", "refresh the baseline"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("failure output missing %q:\n%s", want, out.String())
		}
	}

	if code := run([]string{"-baseline", basePath}, &out); code != 2 {
		t.Errorf("no fresh arg exit %d, want 2", code)
	}
	if code := run([]string{"-baseline", filepath.Join(dir, "nope.json"), freshPath}, &out); code != 1 {
		t.Errorf("missing baseline exit %d, want 1", code)
	}
}
