package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"sphenergy/internal/benchfmt"
)

// sampleBench builds a plausible baseline with all checked fields set.
func sampleBench() *benchfmt.Output {
	mode := func(findNs, momNs float64, allocs float64) benchfmt.ModeResult {
		ns := map[string]float64{
			"find_neighbors":  findNs,
			"xmass":           400,
			"gradh":           800,
			"eos":             6,
			"iad":             1800,
			"av_switches":     10,
			"momentum_energy": momNs,
			"timestep":        8,
			"update":          20,
		}
		total := 0.0
		for _, v := range ns {
			total += v
		}
		ns[benchfmt.TotalKey] = total
		return benchfmt.ModeResult{
			NsPerParticleStep: ns,
			StepMs:            total * 8000 / 1e6,
			AllocsPerStep:     allocs,
		}
	}
	walk := mode(4400, 7200, 13000)
	list := mode(7500, 2250, 600)
	skin := mode(6000, 2400, 80)
	skin.Skin = 0.3
	skin.Rebuilds = 1
	skin.Refreshes = 3
	skin.RebuildIntervalSteps = 4
	skin.RebuildNsPerParticle = 9000
	skin.RefreshNsPerParticle = 4000
	return &benchfmt.Output{
		Benchmark:  "sph_pipeline",
		GoMaxProcs: 1,
		Sizes: []benchfmt.SizeResult{{
			NSide: 20, N: 8000, NgTarget: 64, Warmup: 1, Steps: 4,
			Modes: map[string]benchfmt.ModeResult{
				"closure_walk":       walk,
				"neighbor_list":      list,
				"neighbor_list_skin": skin,
			},
			SpeedupTotal:             walk.StepMs / list.StepMs,
			SpeedupSkin:              list.StepMs / skin.StepMs,
			SpeedupFindNeighborsSkin: list.NsPerParticleStep["find_neighbors"] / skin.NsPerParticleStep["find_neighbors"],
		}},
	}
}

// clone deep-copies through the JSON round trip the real tool performs.
func clone(t *testing.T, o *benchfmt.Output) *benchfmt.Output {
	t.Helper()
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var c benchfmt.Output
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	return &c
}

func TestGateIdenticalRunsPass(t *testing.T) {
	base := sampleBench()
	for _, tol := range []Tolerances{Default(), Smoke()} {
		if fails := Gate(base, clone(t, base), tol); len(fails) != 0 {
			t.Errorf("identical runs failed the gate: %v", fails)
		}
	}
}

// inflate slows one pass by factor in every mode, keeping totals honest.
func inflate(t *testing.T, o *benchfmt.Output, pass string, factor float64) *benchfmt.Output {
	t.Helper()
	c := clone(t, o)
	for _, sz := range c.Sizes {
		for name, m := range sz.Modes {
			old := m.NsPerParticleStep[pass]
			m.NsPerParticleStep[pass] = old * factor
			m.NsPerParticleStep[benchfmt.TotalKey] += old * (factor - 1)
			m.StepMs *= m.NsPerParticleStep[benchfmt.TotalKey] / (m.NsPerParticleStep[benchfmt.TotalKey] - old*(factor-1))
			sz.Modes[name] = m
		}
	}
	return c
}

func TestGateSlowedPassFails(t *testing.T) {
	base := sampleBench()
	slowed := inflate(t, base, "momentum_energy", 3)
	fails := Gate(base, slowed, Default())
	if len(fails) == 0 {
		t.Fatal("3x-slower momentum_energy passed the gate")
	}
	joined := strings.Join(fails, "\n")
	if !strings.Contains(joined, "momentum_energy") {
		t.Errorf("failures do not name the slowed pass:\n%s", joined)
	}
	// A gross slowdown must also trip the relaxed smoke gate — that is
	// exactly what CI exists to catch.
	if fails := Gate(base, inflate(t, base, "momentum_energy", 4), Smoke()); len(fails) == 0 {
		t.Error("4x-slower momentum_energy passed the smoke gate")
	}
}

func TestGateNoiseWithinTolerancePasses(t *testing.T) {
	base := sampleBench()
	noisy := inflate(t, base, "momentum_energy", 1.15) // 15% — timer noise
	if fails := Gate(base, noisy, Default()); len(fails) != 0 {
		t.Errorf("15%% pass drift failed the gate: %v", fails)
	}
}

func TestGateAllocRegressionFails(t *testing.T) {
	base := sampleBench()
	c := clone(t, base)
	m := c.Sizes[0].Modes["neighbor_list_skin"]
	m.AllocsPerStep = base.Sizes[0].Modes["neighbor_list_skin"].AllocsPerStep*2 + 1000
	c.Sizes[0].Modes["neighbor_list_skin"] = m
	fails := Gate(base, c, Default())
	if len(fails) == 0 {
		t.Fatal("doubled allocs/step passed the gate")
	}
	if !strings.Contains(strings.Join(fails, "\n"), "allocs/step") {
		t.Errorf("failures do not mention allocs: %v", fails)
	}
}

func TestGateRebuildSplitDrift(t *testing.T) {
	base := sampleBench()
	c := clone(t, base)
	m := c.Sizes[0].Modes["neighbor_list_skin"]
	m.Rebuilds, m.Refreshes = 4, 0 // skin reuse broke: rebuilding every step
	c.Sizes[0].Modes["neighbor_list_skin"] = m
	if fails := Gate(base, c, Default()); len(fails) == 0 {
		t.Fatal("rebuild-every-step drift passed the gate")
	}
	// With differing step counts the absolute counts are incomparable and
	// the interval check takes over.
	c2 := clone(t, base)
	c2.Sizes[0].Steps = 8
	m2 := c2.Sizes[0].Modes["neighbor_list_skin"]
	m2.Rebuilds, m2.Refreshes, m2.RebuildIntervalSteps = 2, 6, 4
	c2.Sizes[0].Modes["neighbor_list_skin"] = m2
	if fails := Gate(base, c2, Default()); len(fails) != 0 {
		t.Errorf("same interval at different step count failed: %v", fails)
	}
}

func TestGateMissingSizeAndMode(t *testing.T) {
	base := sampleBench()
	c := clone(t, base)
	c.Sizes[0].NSide = 999
	if fails := Gate(base, c, Default()); len(fails) == 0 {
		t.Error("missing size passed the gate")
	}
	c2 := clone(t, base)
	delete(c2.Sizes[0].Modes, "neighbor_list_skin")
	if fails := Gate(base, c2, Default()); len(fails) == 0 {
		t.Error("missing mode passed the gate")
	}
}

func TestGateSpeedupFloor(t *testing.T) {
	base := sampleBench()
	c := clone(t, base)
	c.Sizes[0].SpeedupTotal = base.Sizes[0].SpeedupTotal * 0.3
	fails := Gate(base, c, Default())
	if len(fails) == 0 {
		t.Fatal("collapsed speedup_total passed the gate")
	}
	if !strings.Contains(strings.Join(fails, "\n"), "speedup_total") {
		t.Errorf("failures do not mention speedup_total: %v", fails)
	}
}

// TestRunEndToEnd drives the real CLI: identical files pass twice in a row,
// a slowed pass fails with exit 1, bad input exits 2.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	base := sampleBench()
	if err := base.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	freshPath := filepath.Join(dir, "fresh.json")
	if err := clone(t, base).WriteFile(freshPath); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ { // acceptance: run twice on identical benches
		var out strings.Builder
		if code := run([]string{"-baseline", basePath, freshPath}, &out); code != 0 {
			t.Fatalf("run %d: identical benches exit %d:\n%s", i, code, out.String())
		}
		if !strings.Contains(out.String(), "OK") {
			t.Errorf("run %d output: %s", i, out.String())
		}
	}

	slowPath := filepath.Join(dir, "slow.json")
	if err := inflate(t, base, "iad", 3).WriteFile(slowPath); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := run([]string{"-baseline", basePath, slowPath}, &out); code != 1 {
		t.Fatalf("slowed bench exit %d, want 1:\n%s", code, out.String())
	}
	for _, want := range []string{"FAIL", "iad", "refresh the baseline"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("failure output missing %q:\n%s", want, out.String())
		}
	}

	if code := run([]string{"-baseline", basePath}, &out); code != 2 {
		t.Errorf("no fresh arg exit %d, want 2", code)
	}
	if code := run([]string{"-baseline", filepath.Join(dir, "nope.json"), freshPath}, &out); code != 1 {
		t.Errorf("missing baseline exit %d, want 1", code)
	}
}
