package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/recovery"
)

// ckptGate is the self-measured checkpoint-overhead gate: it times the same
// small run with durability off and with -autosave-every 10 into a scratch
// store, and fails when the supervised run costs more than frac over the
// plain one (plus an absolute slack, since the base run is milliseconds and
// scheduler noise alone can double it). Unlike the sphbench diff above it
// needs no committed baseline — the run is its own control, so the gate is
// machine-portable and catches gross regressions in snapshot encoding or
// the store's write path.
func ckptGate(frac float64, reps int, out io.Writer) int {
	cfg := core.Config{
		System:           cluster.MiniHPC(),
		Ranks:            2,
		Sim:              core.Turbulence,
		ParticlesPerRank: 1e6,
		Steps:            80,
		Seed:             5,
	}

	plain, err := bestOf(reps, func() error {
		_, err := core.Run(cfg)
		return err
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate: plain run:", err)
		return 1
	}

	dir, err := os.MkdirTemp("", "perfgate-ckpt-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		return 1
	}
	defer os.RemoveAll(dir)
	supervised, err := bestOf(reps, func() error {
		// A fresh subdirectory per rep: resuming a finished run would be an
		// instant no-op and measure nothing.
		sub, err := os.MkdirTemp(dir, "rep-*")
		if err != nil {
			return err
		}
		_, _, err = core.RunSupervised(cfg, recovery.Config{Dir: sub, AutosaveEvery: 10})
		return err
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate: supervised run:", err)
		return 1
	}

	// Absolute slack floors the allowance: on a millisecond-scale base run
	// the ratio alone is all noise.
	const slack = 50 * time.Millisecond
	limit := time.Duration(float64(plain)*(1+frac)) + slack
	overheadPct := 100 * (float64(supervised)/float64(plain) - 1)
	if supervised > limit {
		fmt.Fprintf(out, "perfgate: FAIL — checkpoint overhead: %v supervised vs %v plain (%+.0f%%, limit %v = +%.0f%% +%v)\n",
			supervised.Round(time.Microsecond), plain.Round(time.Microsecond), overheadPct, limit.Round(time.Microsecond), 100*frac, slack)
		return 1
	}
	fmt.Fprintf(out, "perfgate: OK — checkpoint overhead %+.0f%% (%v supervised vs %v plain, autosave-every 10, limit +%.0f%% +%v)\n",
		overheadPct, supervised.Round(time.Microsecond), plain.Round(time.Microsecond), 100*frac, slack)
	return 0
}

// bestOf returns the fastest of reps timed executions of f — min-of-N is
// the standard noise filter for wall-clock micro-measurements.
func bestOf(reps int, f func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}
