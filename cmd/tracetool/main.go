// Command tracetool analyzes a Chrome trace export written by -trace-out:
// it reconstructs the run's barriers, computes per-rank critical-path and
// barrier-wait attribution, and ranks the top straggler ranks.
//
// Examples:
//
//	sphexa -sim turbulence -ranks 8 -s 20 -trace-out run.trace.json
//	tracetool run.trace.json
//	tracetool -top 5 -json run.trace.json   # machine-readable output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sphenergy/internal/traceanalysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("tracetool", flag.ContinueOnError)
	topK := fs.Int("top", 3, "straggler ranks to list")
	asJSON := fs.Bool("json", false, "emit the full analysis as JSON")
	epsUS := fs.Float64("eps-us", 1, "barrier end-time grouping tolerance in microseconds")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracetool [-top k] [-json] [-eps-us t] trace.json")
		return 2
	}
	spans, truncated, err := traceanalysis.LoadFileLenient(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		return 1
	}
	if truncated {
		fmt.Fprintln(os.Stderr, "tracetool: warning: trace is truncated; analyzing the valid prefix")
	}
	a := traceanalysis.Analyze(spans, traceanalysis.Options{
		TopK: *topK,
		EpsS: *epsUS * 1e-6,
	})
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			fmt.Fprintln(os.Stderr, "tracetool:", err)
			return 1
		}
		return 0
	}
	fmt.Fprint(out, traceanalysis.Render(a))
	return 0
}
