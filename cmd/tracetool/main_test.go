package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sphenergy/internal/telemetry"
	"sphenergy/internal/traceanalysis"
)

// writeStragglerTrace exports a 3-rank trace whose rank 2 imposes every
// barrier, through the real telemetry JSON writer.
func writeStragglerTrace(t *testing.T) string {
	t.Helper()
	tr := telemetry.NewTracer(3)
	for r := 0; r < 3; r++ {
		tr.SetTrackName(r, "rank x")
	}
	tr.SetTrackName(telemetry.GlobalTrack, "sim")
	tm := 0.0
	for phase := 0; phase < 3; phase++ {
		durs := []float64{1.0, 1.1, 2.0}
		barrier := tm + 2.0
		for r, d := range durs {
			tr.Complete(r, "kernel", "work", tm, d)
			if wait := barrier - (tm + d); wait > 0 {
				tr.Complete(r, "mpi", "barrier-wait", tm+d, wait)
			}
		}
		tm = barrier
	}
	path := filepath.Join(t.TempDir(), "run.trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func runTool(t *testing.T, args ...string) (string, int) {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	code := run(args, tmp)
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), code
}

func TestTracetoolText(t *testing.T) {
	path := writeStragglerTrace(t)
	out, code := runTool(t, path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"3 barriers", "rank 2", "100.0% attributed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTracetoolJSON(t *testing.T) {
	path := writeStragglerTrace(t)
	out, code := runTool(t, "-json", "-top", "1", path)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var a traceanalysis.Analysis
	if err := json.Unmarshal([]byte(out), &a); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(a.Stragglers) != 1 || a.Stragglers[0].Rank != 2 {
		t.Errorf("stragglers = %+v, want rank 2 only", a.Stragglers)
	}
	if a.AttributedWaitS < a.TotalWaitS-1e-9 {
		t.Errorf("attribution %g < total %g", a.AttributedWaitS, a.TotalWaitS)
	}
}

func TestTracetoolBadInput(t *testing.T) {
	if _, code := runTool(t, filepath.Join(t.TempDir(), "missing.json")); code != 1 {
		t.Errorf("missing file exit = %d, want 1", code)
	}
	if _, code := runTool(t); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
}
