// Command declog audits a run's decision ledger: it joins the frequency
// decisions recorded by the events ledger (what the ManDyn controller chose,
// and what the tuner's model predicted for that choice) against the achieved
// per-kernel energy attribution, renders a per-function decision timeline,
// flags decisions whose achieved EDP deviates from the prediction beyond a
// threshold, and compares every choice against the brute-force sweep's sweet
// spot — "this run left X% EDP on the table".
//
// Examples:
//
//	sphexa -sim turbulence -ranks 2 -s 4 -ppr 10e6 -strategy mandyn \
//	    -energy-validate -events-out run.events.jsonl -report run.json
//	declog -events run.events.jsonl -report run.json
//	declog -events run.events.jsonl -threshold 10 -json
//
// Exit status is 0 when the ledger holds at least one frequency decision,
// 1 otherwise (missing file, unparseable ledger, or a run that never
// switched clocks — nothing to audit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"sphenergy/internal/attrib"
	"sphenergy/internal/events"
	"sphenergy/internal/instr"
)

func main() {
	var (
		eventsPath = flag.String("events", "", "decision-ledger JSONL (sphexa -events-out)")
		reportPath = flag.String("report", "", "energy report JSON (sphexa -report) for the achieved-EDP join")
		threshold  = flag.Float64("threshold", 25, "flag decisions whose achieved EDP deviates from the prediction by more than this percentage")
		jsonOut    = flag.Bool("json", false, "emit the analysis as JSON instead of the rendered table")
	)
	flag.Parse()
	if *eventsPath == "" {
		fmt.Fprintln(os.Stderr, "declog: -events is required")
		flag.Usage()
		os.Exit(1)
	}

	evs, truncated, err := events.ReadFile(*eventsPath)
	fatalIf(err)
	if truncated {
		fmt.Fprintln(os.Stderr, "declog: warning: ledger file is truncated; auditing the valid prefix")
	}

	var att *attrib.Attribution
	system := ""
	if *reportPath != "" {
		rep, err := instr.ReadReportFile(*reportPath)
		fatalIf(err)
		att = rep.Attribution
		system = rep.System
	}

	a := analyze(evs, att, *threshold)
	a.Truncated = truncated
	if a.System == "" {
		a.System = system
	}
	// A recovery audit (crash/restart/budget timeline under a baseline or
	// static strategy) legitimately has no frequency decisions; only bail
	// when there are no anomalies to report either.
	if a.Decisions == 0 && len(a.Anomalies) == 0 {
		fmt.Fprintln(os.Stderr, "declog: ledger holds no frequency decisions or anomalies — nothing to audit")
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(a))
		return
	}
	fmt.Print(render(a))
}

// analysis is the joined audit: one row per instrumented function that saw
// at least one frequency decision.
type analysis struct {
	Simulation string `json:"simulation,omitempty"`
	System     string `json:"system,omitempty"`
	Strategy   string `json:"strategy,omitempty"`
	Steps      int    `json:"steps,omitempty"`
	Events     int    `json:"events"`
	Decisions  int    `json:"decisions"`
	Truncated  bool   `json:"truncated,omitempty"`
	Rows       []row  `json:"rows"`
	// AggLeftPct is the aggregate EDP left on the table versus the
	// brute-force sweet spot, over functions with sweep data.
	AggLeftPct   float64        `json:"agg_left_pct"`
	HaveSweep    bool           `json:"have_sweep"`
	HaveAchieved bool           `json:"have_achieved"`
	Flagged      int            `json:"flagged"`
	Anomalies    map[string]int `json:"anomalies,omitempty"`
	ThresholdPct float64        `json:"threshold_pct"`
}

// row is one function's decision audit.
type row struct {
	Function  string `json:"function"`
	Decisions int    `json:"decisions"`
	// ClockMHz is the modal applied clock across the function's decisions.
	ClockMHz int `json:"clock_mhz"`
	// PredEDPJs is the tuner model's per-call EDP at the chosen clock.
	PredEDPJs float64 `json:"pred_edp_js,omitempty"`
	// AchievedEDPJs is the attribution's per-call EDP (mean call time ×
	// mean call sampled energy), joined from the report.
	AchievedEDPJs float64 `json:"achieved_edp_js,omitempty"`
	// DevPct is achieved versus predicted, in percent; Flagged marks rows
	// beyond the threshold.
	DevPct  float64 `json:"dev_pct"`
	Flagged bool    `json:"flagged,omitempty"`
	// BestMHz/BestEDPJs locate the brute-force sweep's sweet spot (zero
	// when the ledger holds no tuner sweep for this function); LeftPct is
	// the predicted EDP sacrificed by not running there.
	BestMHz   int     `json:"best_mhz,omitempty"`
	BestEDPJs float64 `json:"best_edp_js,omitempty"`
	LeftPct   float64 `json:"left_pct"`
}

// anomalyTypes are the resilience event families surfaced in the audit
// footer: each one is a decision the run took under duress.
var anomalyTypes = []events.Type{
	events.FreqRetry, events.FreqAbsorb, events.FreqClamp,
	events.FreqBreakerTrip, events.FreqShortCircuit,
	events.RankFail, events.Degradation,
	events.SamplerDegraded, events.SamplerRecovered,
	events.CheckpointSave, events.CheckpointRestore, events.Restart,
	events.WatchdogStall, events.BudgetStop,
}

// analyze joins the ledger's decision stream with the tuner sweep it also
// carries and, when available, the attribution rows from the energy report.
func analyze(evs []events.Event, att *attrib.Attribution, thresholdPct float64) *analysis {
	a := &analysis{Events: len(evs), ThresholdPct: thresholdPct, Anomalies: map[string]int{}}

	// sweep[fn][mhz] is the tuner's predicted per-call EDP; clocks[fn][mhz]
	// counts applied decisions.
	sweep := map[string]map[int]float64{}
	clocks := map[string]map[int]int{}
	// predAt[fn][mhz] remembers the prediction attached to decisions, the
	// fallback when the ledger predates the sweep events.
	predAt := map[string]map[int]float64{}
	for _, ev := range evs {
		switch ev.Type {
		case events.RunStart:
			a.Simulation, a.Strategy, a.Steps = ev.Subject, ev.Detail, int(ev.Value)
		case events.TunerMeasure:
			if sweep[ev.Subject] == nil {
				sweep[ev.Subject] = map[int]float64{}
			}
			sweep[ev.Subject][ev.AppliedMHz] = ev.PredEDPJs
		case events.FreqDecision:
			if clocks[ev.Subject] == nil {
				clocks[ev.Subject] = map[int]int{}
			}
			clocks[ev.Subject][ev.AppliedMHz]++
			a.Decisions++
			if ev.PredEDPJs > 0 {
				if predAt[ev.Subject] == nil {
					predAt[ev.Subject] = map[int]float64{}
				}
				predAt[ev.Subject][ev.AppliedMHz] = ev.PredEDPJs
			}
		}
		for _, t := range anomalyTypes {
			if ev.Type == t {
				a.Anomalies[string(t)]++
			}
		}
	}

	// Achieved per-call EDP from the attribution's function rows, summed
	// across ranks: (Σ time / Σ calls) × (Σ sampled / Σ calls).
	achieved := map[string]float64{}
	if att != nil {
		type acc struct {
			timeS, sampledJ float64
			calls           int
		}
		byFn := map[string]*acc{}
		for _, r := range att.Functions {
			c := byFn[r.Name]
			if c == nil {
				c = &acc{}
				byFn[r.Name] = c
			}
			c.timeS += r.TimeS
			c.sampledJ += r.SampledJ
			c.calls += r.Calls
		}
		for name, c := range byFn {
			if c.calls > 0 {
				achieved[name] = (c.timeS / float64(c.calls)) * (c.sampledJ / float64(c.calls))
			}
		}
		a.HaveAchieved = len(achieved) > 0
	}

	var sumChosen, sumBest float64
	for fn, byClock := range clocks {
		r := row{Function: fn}
		for mhz, n := range byClock {
			r.Decisions += n
			// Modal clock; ties break toward the higher clock for
			// determinism.
			if n > byClock[r.ClockMHz] || (n == byClock[r.ClockMHz] && mhz > r.ClockMHz) {
				r.ClockMHz = mhz
			}
		}
		if sw := sweep[fn]; len(sw) > 0 {
			a.HaveSweep = true
			r.PredEDPJs = sw[r.ClockMHz]
			// Sweet spot: strict-min over descending clocks, matching the
			// tuner's first-best-wins tie-break and independent of the
			// concurrent sweep's event order.
			mhzs := make([]int, 0, len(sw))
			for mhz := range sw {
				mhzs = append(mhzs, mhz)
			}
			sort.Sort(sort.Reverse(sort.IntSlice(mhzs)))
			r.BestMHz, r.BestEDPJs = mhzs[0], sw[mhzs[0]]
			for _, mhz := range mhzs[1:] {
				if sw[mhz] < r.BestEDPJs {
					r.BestMHz, r.BestEDPJs = mhz, sw[mhz]
				}
			}
			if chosen, ok := sw[r.ClockMHz]; ok && r.BestEDPJs > 0 {
				r.LeftPct = (chosen - r.BestEDPJs) / r.BestEDPJs * 100
				sumChosen += chosen
				sumBest += r.BestEDPJs
			}
		}
		if r.PredEDPJs == 0 {
			r.PredEDPJs = predAt[fn][r.ClockMHz]
		}
		r.AchievedEDPJs = achieved[fn]
		if r.PredEDPJs > 0 && r.AchievedEDPJs > 0 {
			r.DevPct = (r.AchievedEDPJs - r.PredEDPJs) / r.PredEDPJs * 100
			if math.Abs(r.DevPct) > thresholdPct {
				r.Flagged = true
				a.Flagged++
			}
		}
		a.Rows = append(a.Rows, r)
	}
	sort.Slice(a.Rows, func(i, j int) bool { return a.Rows[i].Function < a.Rows[j].Function })
	if sumBest > 0 {
		a.AggLeftPct = (sumChosen - sumBest) / sumBest * 100
	}
	return a
}

// render formats the audit as a human-readable report.
func render(a *analysis) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "run: %s", orDash(a.Simulation))
	if a.System != "" {
		fmt.Fprintf(&sb, " on %s", a.System)
	}
	fmt.Fprintf(&sb, ", strategy %s, %d steps — %d events, %d frequency decisions",
		orDash(a.Strategy), a.Steps, a.Events, a.Decisions)
	if a.Truncated {
		sb.WriteString(" (truncated ledger)")
	}
	sb.WriteString("\n\n")

	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "function\tdecisions\tclock\tpred EDP/call\tachieved\tdev\tsweet spot\tleft")
	for _, r := range a.Rows {
		dev, flag := "-", ""
		if r.AchievedEDPJs > 0 && r.PredEDPJs > 0 {
			dev = fmt.Sprintf("%+.1f%%", r.DevPct)
			if r.Flagged {
				flag = " !"
			}
		}
		spot, left := "-", "-"
		if r.BestMHz > 0 {
			spot = fmt.Sprintf("%d MHz", r.BestMHz)
			left = fmt.Sprintf("%.1f%%", r.LeftPct)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d MHz\t%s\t%s\t%s%s\t%s\t%s\n",
			r.Function, r.Decisions, r.ClockMHz,
			edp(r.PredEDPJs), edp(r.AchievedEDPJs), dev, flag, spot, left)
	}
	tw.Flush()

	if a.HaveSweep {
		fmt.Fprintf(&sb, "\naggregate: this run left %.2f%% EDP on the table vs the brute-force sweet spot\n", a.AggLeftPct)
	} else {
		sb.WriteString("\nno tuner sweep in the ledger: run the tuner through the same ledger for sweet-spot comparison\n")
	}
	if !a.HaveAchieved {
		sb.WriteString("no attribution join: pass -report from a sampled run (-energy-validate) for achieved EDP\n")
	}
	if a.Flagged > 0 {
		fmt.Fprintf(&sb, "%d decision(s) deviate from prediction beyond %.0f%% — inspect the flagged rows\n",
			a.Flagged, a.ThresholdPct)
	}
	if len(a.Anomalies) > 0 {
		keys := make([]string, 0, len(a.Anomalies))
		for k := range a.Anomalies {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%d %s", a.Anomalies[k], k))
		}
		fmt.Fprintf(&sb, "anomalies: %s\n", strings.Join(parts, ", "))
	}
	return sb.String()
}

func edp(v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.4g J·s", v)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "declog:", err)
		os.Exit(1)
	}
}
