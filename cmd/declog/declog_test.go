package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sphenergy"
	"sphenergy/internal/core"
	"sphenergy/internal/events"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/sampler"
	"sphenergy/internal/tuner"
)

// TestDeclogEndToEnd is the acceptance path: tune through a ledger, run
// ManDyn with the same ledger and sampling on, export the ledger as JSONL,
// and audit it — the per-function table must join predicted EDP against the
// attribution's achieved EDP, and the sweet spot recovered from the sweep
// events must agree with the brute-force tuner within 1%.
func TestDeclogEndToEnd(t *testing.T) {
	spec := sphenergy.MiniHPC()
	led := sphenergy.NewEventLedger(0)
	table, err := sphenergy.TuneFrequenciesObserved(spec, sphenergy.Turbulence, 10e6, 150, led)
	if err != nil {
		t.Fatal(err)
	}

	cfg := sphenergy.Config{
		System:           spec,
		Ranks:            2,
		Sim:              sphenergy.Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            3,
		Tracer:           sphenergy.NewTracer(2),
		Sampling:         sampler.Config{GPUHz: 100, NodeHz: 10},
		Events:           led,
		NewStrategy:      sphenergy.ManDyn(table),
	}
	res, err := sphenergy.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Attribution == nil {
		t.Fatal("sampled run produced no attribution")
	}

	// Round-trip through the JSONL export, as the CLI consumes it.
	var buf bytes.Buffer
	if err := led.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	evs, truncated, err := events.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil || truncated {
		t.Fatalf("clean export did not read back: truncated=%v err=%v", truncated, err)
	}

	a := analyze(evs, res.Report.Attribution, 25)
	if a.Decisions == 0 || len(a.Rows) == 0 {
		t.Fatalf("no decisions audited: %+v", a)
	}
	if a.Simulation != "turbulence" || a.Steps != cfg.Steps {
		t.Errorf("run header wrong: sim=%q steps=%d", a.Simulation, a.Steps)
	}
	if !a.HaveSweep {
		t.Fatal("tuner sweep events did not reach the audit")
	}
	if !a.HaveAchieved {
		t.Fatal("attribution join produced no achieved EDP")
	}

	// The sweet spot recovered from sweep events must agree with an
	// independent brute-force tuner pass.
	pipeline, err := core.Pipeline(core.Turbulence)
	if err != nil {
		t.Fatal(err)
	}
	kernels := make(map[string]gpusim.KernelDesc, len(pipeline))
	for _, fn := range pipeline {
		kernels[fn.Name] = fn.Kernel(10e6, 150, spec.GPUSpec.Vendor)
	}
	brute := map[string]*tuner.Result{}
	for name, k := range kernels {
		r, err := tuner.TuneKernel(name, k, tuner.Config{
			Spec:      spec.GPUSpec,
			Params:    tuner.Params{MinMHz: 1005, MaxMHz: spec.GPUSpec.MaxSMClockMHz},
			Objective: tuner.EDP,
		})
		if err != nil {
			t.Fatal(err)
		}
		brute[name] = r
	}
	joined := 0
	for _, r := range a.Rows {
		if r.BestMHz == 0 {
			continue
		}
		b := brute[r.Function]
		if b == nil {
			t.Errorf("%s: audited but unknown to the brute-force tuner", r.Function)
			continue
		}
		bestEDP := b.Best.TimeS * b.Best.EnergyJ
		if r.BestMHz != b.Best.MHz {
			t.Errorf("%s: audit sweet spot %d MHz, brute force %d MHz", r.Function, r.BestMHz, b.Best.MHz)
		}
		if bestEDP > 0 && math.Abs(r.BestEDPJs-bestEDP)/bestEDP > 0.01 {
			t.Errorf("%s: sweet-spot EDP %.4g vs brute force %.4g (>1%%)", r.Function, r.BestEDPJs, bestEDP)
		}
		// ManDyn applied the tuned table, so the modal clock is the
		// sweet spot and no EDP is left on the table.
		if r.ClockMHz != table[r.Function] {
			t.Errorf("%s: modal clock %d, tuned table says %d", r.Function, r.ClockMHz, table[r.Function])
		}
		if r.LeftPct != 0 {
			t.Errorf("%s: tuned run reports %.2f%% left on the table", r.Function, r.LeftPct)
		}
		if r.PredEDPJs > 0 && r.AchievedEDPJs > 0 {
			joined++
		}
	}
	if joined == 0 {
		t.Error("no row joined predicted against achieved EDP")
	}
	if a.AggLeftPct != 0 {
		t.Errorf("aggregate left-on-table = %.2f%%, want 0 for a tuned run", a.AggLeftPct)
	}

	out := render(a)
	for _, want := range []string{"frequency decisions", "sweet spot", "left", "aggregate"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered audit missing %q:\n%s", want, out)
		}
	}
}

// TestDeclogUntunedRunLeavesEDPOnTable pins the "left on the table" math: a
// static off-sweet-spot clock must show a positive aggregate loss.
func TestDeclogUntunedRunLeavesEDPOnTable(t *testing.T) {
	spec := sphenergy.MiniHPC()
	led := sphenergy.NewEventLedger(0)
	if _, err := sphenergy.TuneFrequenciesObserved(spec, sphenergy.Turbulence, 10e6, 150, led); err != nil {
		t.Fatal(err)
	}
	// Alternate the pipeline between the max application clock and the
	// sweep floor — deliberately off the sweet spot, and different between
	// consecutive functions so ManDyn actually switches (an all-equal table
	// elides every transition and records no decisions).
	max := spec.GPUSpec.MaxSMClockMHz
	pipeline, err := core.Pipeline(core.Turbulence)
	if err != nil {
		t.Fatal(err)
	}
	fixed := map[string]int{}
	for i, fn := range pipeline {
		if i%2 == 0 {
			fixed[fn.Name] = max
		} else {
			fixed[fn.Name] = 1005
		}
	}
	cfg := sphenergy.Config{
		System:           spec,
		Ranks:            1,
		Sim:              sphenergy.Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            2,
		Events:           led,
		NewStrategy:      sphenergy.ManDyn(fixed),
	}
	if _, err := sphenergy.Run(cfg); err != nil {
		t.Fatal(err)
	}
	a := analyze(led.Events(), nil, 25)
	if a.Decisions == 0 {
		t.Fatal("no decisions recorded")
	}
	if a.AggLeftPct <= 0 {
		t.Errorf("max-clock run reports %.2f%% EDP left on the table, want > 0", a.AggLeftPct)
	}
}

// TestAnalyzeTruncatedLedger checks the audit degrades gracefully on a
// partial JSONL file: the valid prefix is analyzed, the truncation is
// surfaced, and nothing panics.
func TestAnalyzeTruncatedLedger(t *testing.T) {
	led := events.NewLedger(0)
	led.BeginRun("turbulence", "minihpc", "mandyn", 1, 4)
	for i := 0; i < 8; i++ {
		led.FreqDecision(float64(i), i, 0, "MomentumEnergy", 1005, 1005)
	}
	var buf bytes.Buffer
	if err := led.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-20] // chop mid-line
	evs, truncated, err := events.ReadJSONL(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("chopped ledger not reported as truncated")
	}
	a := analyze(evs, nil, 25)
	if a.Decisions == 0 {
		t.Errorf("valid prefix lost its decisions: %+v", a)
	}
	a.Truncated = truncated
	if !strings.Contains(render(a), "truncated ledger") {
		t.Error("rendered audit does not surface the truncation")
	}
}

// TestAnalyzeEmptyLedgerHasNoDecisions pins the CLI's failure mode: a
// ledger without frequency decisions audits to zero rows (main exits 1).
func TestAnalyzeEmptyLedgerHasNoDecisions(t *testing.T) {
	a := analyze(nil, nil, 25)
	if a.Decisions != 0 || len(a.Rows) != 0 {
		t.Fatalf("empty ledger produced decisions: %+v", a)
	}
}
