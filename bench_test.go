package sphenergy

// Benchmark harness: one benchmark per table/figure of the paper plus
// ablation benches for the design choices called out in DESIGN.md §5.
// Custom metrics attach the headline numbers of each experiment so that
// `go test -bench . -benchmem` regenerates the paper's rows; the full
// printed tables come from `go run ./cmd/experiments`.

import (
	"fmt"
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/experiments"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/tuner"
)

// benchScale keeps benchmark iterations fast; the normalized shapes the
// metrics report are step-count invariant.
const benchScale = 0.05

func BenchmarkTableI(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.TableI().Render()
	}
	b.ReportMetric(float64(len(out)), "render_bytes")
}

func BenchmarkFig1(b *testing.B) {
	var pts int
	for i := 0; i < b.N; i++ {
		pts = len(experiments.Fig1().Points)
	}
	b.ReportMetric(float64(pts), "implementations")
}

func BenchmarkFig2(b *testing.B) {
	var d *experiments.Fig2Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.BestFor(core.FnMomentum)), "momentum_best_mhz")
	b.ReportMetric(float64(d.BestFor(core.FnXMass)), "xmass_best_mhz")
}

func BenchmarkFig3(b *testing.B) {
	var d *experiments.Fig3Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*d.Series[0].MaxRelativeGap(), "cscs_max_gap_pct")
	b.ReportMetric(100*d.Series[1].MaxRelativeGap(), "lumi_max_gap_pct")
}

func BenchmarkFig4(b *testing.B) {
	var d *experiments.Fig4Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, br := range d.Breakdowns {
		b.ReportMetric(100*br.GPUShare(), br.Label+"_gpu_pct")
	}
}

func BenchmarkFig5(b *testing.B) {
	var d *experiments.Fig5Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*d.ShareOf("LUMI-Turb", core.FnMomentum), "lumi_momentum_pct")
	b.ReportMetric(100*d.ShareOf("CSCS-A100-Turb", core.FnMomentum), "cscs_momentum_pct")
}

func BenchmarkFig6(b *testing.B) {
	var d *experiments.Fig6Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if s, ok := d.SeriesFor(200); ok {
		b.ReportMetric(float64(s.BestMHz), "best_mhz_200cubed")
		b.ReportMetric(s.Points[len(s.Points)-1].EDPNorm, "edp_200cubed_at_1005")
	}
	if s, ok := d.SeriesFor(450); ok {
		b.ReportMetric(s.Points[len(s.Points)-1].EDPNorm, "edp_450cubed_at_1005")
	}
}

func BenchmarkFig7(b *testing.B) {
	var d *experiments.Fig7Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if md, ok := d.Row("mandyn"); ok {
		b.ReportMetric(md.TimeNorm, "mandyn_time_ratio")
		b.ReportMetric(md.EnergyNorm, "mandyn_energy_ratio")
		b.ReportMetric(md.EDPNorm, "mandyn_edp_ratio")
	}
	if st, ok := d.Row("static-1005"); ok {
		b.ReportMetric(st.EDPNorm, "static1005_edp_ratio")
	}
	if dv, ok := d.Row("dvfs"); ok {
		b.ReportMetric(dv.EnergyNorm, "dvfs_energy_ratio")
	}
}

func BenchmarkFig8(b *testing.B) {
	var d *experiments.Fig8Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if c, ok := d.CellFor(core.FnMomentum, 1005); ok {
		b.ReportMetric(c.TimeNorm, "momentum_time_at_1005")
		b.ReportMetric(c.EnergyNorm, "momentum_energy_at_1005")
	}
	if c, ok := d.CellFor(core.FnXMass, 1005); ok {
		b.ReportMetric(c.EDPNorm, "xmass_edp_at_1005")
	}
}

func BenchmarkFig9(b *testing.B) {
	var d *experiments.Fig9Data
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.Fig9(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.MeanClockMHz[core.FnMomentum], "momentum_mean_mhz")
	b.ReportMetric(d.MeanClockMHz[core.FnDomainDecomp], "domaindecomp_mean_mhz")
	b.ReportMetric(float64(d.MinClockMHz), "min_mhz")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationBoostHold varies the governor's post-kernel boost-hold
// window, the parameter behind the DVFS energy penalty of Fig. 7.
func BenchmarkAblationBoostHold(b *testing.B) {
	for _, holdMS := range []float64{0, 5, 10, 20} {
		b.Run(fmt.Sprintf("hold=%gms", holdMS), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				spec := cluster.MiniHPC()
				spec.GPUSpec.BoostHoldS = holdMS / 1000
				base, err := core.Run(core.Config{
					System: spec, Ranks: 1, Sim: core.Turbulence,
					ParticlesPerRank: 450 * 450 * 450, Steps: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				dvfs, err := core.Run(core.Config{
					System: spec, Ranks: 1, Sim: core.Turbulence,
					ParticlesPerRank: 450 * 450 * 450, Steps: 5,
					NewStrategy: func() freqctl.Strategy { return freqctl.DVFS{} },
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio = dvfs.GPUEnergyJ() / base.GPUEnergyJ()
			}
			b.ReportMetric(ratio, "dvfs_energy_ratio")
		})
	}
}

// BenchmarkAblationGCD compares per-card vs per-die energy attribution on
// LUMI-G, the §III-B measurement-granularity question.
func BenchmarkAblationGCD(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{
			System: cluster.LUMIG(), Ranks: 8, Sim: core.Turbulence,
			ParticlesPerRank: 20e6, Steps: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		node := res.System.Nodes[0]
		// Max relative difference between the two GCDs of one card: the
		// information per-card counters destroy.
		spread = 0
		for card := 0; card < node.NumCards(); card++ {
			a := node.Devices[2*card].EnergyJ()
			c := node.Devices[2*card+1].EnergyJ()
			d := (a - c) / (a + c)
			if d < 0 {
				d = -d
			}
			if d > spread {
				spread = d
			}
		}
	}
	b.ReportMetric(100*spread, "gcd_energy_spread_pct")
}

// BenchmarkAblationTunerStrategy compares the search strategies'
// evaluation counts on the Fig. 2 tuning problem.
func BenchmarkAblationTunerStrategy(b *testing.B) {
	kernel := core.TurbulencePipeline()[7] // MomentumEnergy
	desc := kernel.Kernel(450*450*450, 150, gpusim.Nvidia)
	for _, strat := range []tuner.StrategyKind{tuner.BruteForce, tuner.RandomSample, tuner.HillClimb} {
		b.Run(string(strat), func(b *testing.B) {
			var res *tuner.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = tuner.TuneKernel("MomentumEnergy", desc, tuner.Config{
					Spec:     gpusim.A100PCIE40GB(),
					Params:   tuner.Params{MinMHz: 1005, MaxMHz: 1410},
					Strategy: strat,
					Seed:     7,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Evaluations), "evaluations")
			b.ReportMetric(float64(res.Best.MHz), "best_mhz")
		})
	}
}

// BenchmarkAblationHostOverhead varies the host-side serial overheads that
// control how much small problems benefit from down-scaling (Fig. 6).
func BenchmarkAblationHostOverhead(b *testing.B) {
	for _, scale := range []float64{0.5, 1, 2} {
		b.Run(fmt.Sprintf("scale=%g", scale), func(b *testing.B) {
			var edp float64
			for i := 0; i < b.N; i++ {
				run := func(mhz int) *core.Result {
					res, err := core.Run(core.Config{
						System: cluster.MiniHPC(), Ranks: 1, Sim: core.Turbulence,
						ParticlesPerRank: 200 * 200 * 200, Steps: 5,
						HostOverheadScale: scale,
						NewStrategy:       func() freqctl.Strategy { return freqctl.Static{MHz: mhz} },
					})
					if err != nil {
						b.Fatal(err)
					}
					return res
				}
				base := run(1410)
				low := run(1005)
				edp = low.GPUEDP() / base.GPUEDP()
			}
			b.ReportMetric(edp, "edp_1005_ratio_200cubed")
		})
	}
}

// BenchmarkSPHStep measures the real Go SPH solver's step throughput — the
// computational substrate itself, not the virtual-time model.
func BenchmarkSPHStep(b *testing.B) {
	benchmarkSPHStep(b, 16)
}

func BenchmarkSPHStepLarge(b *testing.B) {
	benchmarkSPHStep(b, 24)
}

// BenchmarkGPUSimExecute measures the simulator's kernel-execution
// overhead (the cost of one virtual kernel launch).
func BenchmarkGPUSimExecute(b *testing.B) {
	dev := gpusim.NewDevice(gpusim.A100SXM480GB(), 0)
	dev.SetApplicationClocks(0, 1410)
	k := gpusim.KernelDesc{Name: "bench", Items: 91e6, FlopsPerItem: 25000, BytesPerItem: 5000, EffFactor: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Execute(k)
	}
}

// BenchmarkRunnerStep measures the full instrumented pipeline cost per
// simulated time-step (all functions, one rank).
func BenchmarkRunnerStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := core.Run(core.Config{
			System: cluster.MiniHPC(), Ranks: 1, Sim: core.Turbulence,
			ParticlesPerRank: 450 * 450 * 450, Steps: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtAMD reports the §V future-work experiment: ManDyn on AMD.
func BenchmarkExtAMD(b *testing.B) {
	var d *experiments.ExtAMDData
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.ExtAMD(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if md, ok := d.Row("mandyn"); ok {
		b.ReportMetric(md.TimeNorm, "mandyn_time_ratio")
		b.ReportMetric(md.EnergyNorm, "mandyn_energy_ratio")
	}
}

// BenchmarkExtPowerCap reports the frequency-vs-power-cap comparison.
func BenchmarkExtPowerCap(b *testing.B) {
	var d *experiments.ExtPowerCapData
	for i := 0; i < b.N; i++ {
		var err error
		d, err = experiments.ExtPowerCap(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if md, ok := d.Row("mandyn"); ok {
		b.ReportMetric(md.EDPNorm, "mandyn_edp_ratio")
	}
	if pc, ok := d.Row("powercap-190"); ok {
		b.ReportMetric(pc.EDPNorm, "powercap190_edp_ratio")
	}
}

// BenchmarkAblationTimingModel compares the additive (partial-overlap)
// kernel timing model against the ideal roofline max(tc, tm): the additive
// model yields the paper's smooth per-kernel frequency sensitivity, the
// pure roofline makes sensitivity all-or-nothing and shifts the Fig. 7
// outcome.
func BenchmarkAblationTimingModel(b *testing.B) {
	for _, roofline := range []bool{false, true} {
		name := "additive"
		if roofline {
			name = "roofline"
		}
		b.Run(name, func(b *testing.B) {
			var time, energy float64
			for i := 0; i < b.N; i++ {
				spec := cluster.MiniHPC()
				spec.GPUSpec.PureRooflineOverlap = roofline
				base, err := core.Run(core.Config{
					System: spec, Ranks: 1, Sim: core.Turbulence,
					ParticlesPerRank: 450 * 450 * 450, Steps: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				low, err := core.Run(core.Config{
					System: spec, Ranks: 1, Sim: core.Turbulence,
					ParticlesPerRank: 450 * 450 * 450, Steps: 5,
					NewStrategy: func() freqctl.Strategy { return freqctl.Static{MHz: 1005} },
				})
				if err != nil {
					b.Fatal(err)
				}
				time = low.WallTimeS / base.WallTimeS
				energy = low.GPUEnergyJ() / base.GPUEnergyJ()
			}
			b.ReportMetric(time, "static1005_time_ratio")
			b.ReportMetric(energy, "static1005_energy_ratio")
		})
	}
}
