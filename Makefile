# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build vet test race bench bench-telemetry check experiments examples clean

all: build vet test

# check is the CI gate: static vetting plus the full suite under the race
# detector (includes the telemetry concurrency tests).
check: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Telemetry cost: per-primitive ns/op and the end-to-end off/live/trace
# comparison. Wall clock is noisy on shared machines — compare minimums
# across the -count runs.
bench-telemetry:
	$(GO) test -bench 'SpanRecord|CounterInc|HistogramObserve' -benchmem ./internal/telemetry/
	$(GO) test -bench TelemetryOverhead -benchtime 300x -count 3 ./internal/core/

# Regenerate every table/figure at the paper's step counts.
experiments:
	$(GO) run ./cmd/experiments -run all -scale 1 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/turbulence
	$(GO) run ./examples/evrard
	$(GO) run ./examples/sedov
	$(GO) run ./examples/dvfstrace
	$(GO) run ./examples/measurement
	$(GO) run ./examples/distributed
	$(GO) run ./examples/customcode

clean:
	rm -rf results
