# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build vet test race bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate every table/figure at the paper's step counts.
experiments:
	$(GO) run ./cmd/experiments -run all -scale 1 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/turbulence
	$(GO) run ./examples/evrard
	$(GO) run ./examples/sedov
	$(GO) run ./examples/dvfstrace
	$(GO) run ./examples/measurement
	$(GO) run ./examples/distributed
	$(GO) run ./examples/customcode

clean:
	rm -rf results
