# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build vet test race race-energy bench bench-telemetry bench-json bench-sph bench-sph-smoke check experiments examples clean

all: build vet test

# check is the CI gate: static vetting plus the full suite under the race
# detector (includes the telemetry concurrency tests), with a focused
# re-run of the energy attribution/validation path so a regression there
# is named in the failure output rather than buried in ./..., and a short
# SPH perf-harness smoke + pipeline-equivalence gate so the neighbor-list
# fast path can't silently drift from the closure-walk reference.
check: vet race race-energy bench-sph-smoke

# The sampler/attribution/three-way-validation stack exercised under the
# race detector: per-rank channels polled from rank goroutines while the
# coordinator polls node sensors and the registry serves scrapes.
race-energy:
	$(GO) test -race -run 'Sampler|Sampling|Attrib|Build|Validation|ThreeWay' \
		./internal/sampler/ ./internal/attrib/ ./internal/core/ ./internal/slurm/ ./internal/report/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Telemetry cost: per-primitive ns/op and the end-to-end off/live/trace
# comparison. Wall clock is noisy on shared machines — compare minimums
# across the -count runs.
bench-telemetry:
	$(GO) test -bench 'SpanRecord|CounterInc|HistogramObserve' -benchmem ./internal/telemetry/
	$(GO) test -bench TelemetryOverhead -benchtime 300x -count 3 ./internal/core/

# Sampler overhead (off / 10 Hz / 100 Hz) as machine-readable JSON for
# regression tracking; the human-readable twin is
# `go test -bench SamplerOverhead ./internal/core/`.
bench-json:
	$(GO) run ./cmd/energybench -out BENCH_energy.json

# Per-pass SPH pipeline timing (closure walk vs neighbor list) at the
# tracked problem sizes, as machine-readable JSON. Every perf-relevant PR
# should regenerate this and report the deltas.
bench-sph:
	$(GO) run ./cmd/sphbench -sizes 20,30 -steps 4 -warmup 1 -out BENCH_sph.json

# Fast correctness/liveness gate for `check`: a tiny sphbench run (exercises
# both pipelines end to end), the walk-vs-list equivalence tests, and a
# one-shot pass over the SPH micro-benchmarks.
bench-sph-smoke:
	$(GO) run ./cmd/sphbench -sizes 8 -steps 1 -warmup 1 -out /dev/null
	$(GO) test -run 'NeighborListMatchesWalk|NgmaxOverflow|TabulatedKernelPipeline' -count=1 ./internal/sph/
	$(GO) test -run xxx -bench 'SPHStep$$' -benchtime 1x ./...

# Regenerate every table/figure at the paper's step counts.
experiments:
	$(GO) run ./cmd/experiments -run all -scale 1 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/turbulence
	$(GO) run ./examples/evrard
	$(GO) run ./examples/sedov
	$(GO) run ./examples/dvfstrace
	$(GO) run ./examples/measurement
	$(GO) run ./examples/distributed
	$(GO) run ./examples/customcode

clean:
	rm -rf results
