# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build lint vet fmt-check test race race-energy race-faults race-recovery bench bench-telemetry bench-json bench-sph bench-sph-smoke bench-gomaxprocs perfgate perfgate-smoke perfgate-ckpt chaos chaos-smoke events-smoke soak soak-smoke check experiments examples clean

all: build lint test

# check is the CI gate: static vetting plus the full suite under the race
# detector (includes the telemetry concurrency tests), with a focused
# re-run of the energy attribution/validation path so a regression there
# is named in the failure output rather than buried in ./..., a short
# SPH perf-harness smoke + pipeline-equivalence gate so the neighbor-list
# fast path can't silently drift from the closure-walk reference, a
# seeded chaos smoke proving the fault/degradation layer keeps the
# measurement contract and stays bit-identical per seed, the perf
# regression sentinel (perfgate-smoke) diffing a short bench run against
# the committed BENCH_sph.json baseline, the decision-ledger smoke
# (events-smoke) proving a tuned run exports an auditable ledger, and the
# recovery soak smoke (soak-smoke) proving seeded kill-and-recover runs
# converge bit-identically plus the checkpoint-overhead self-gate.
check: lint race race-energy race-faults bench-sph-smoke chaos-smoke perfgate-smoke events-smoke soak-smoke

# lint is the static gate: go vet plus a gofmt cleanliness check.
lint: vet fmt-check

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The fault-injection and graceful-degradation stack under the race
# detector: injector streams evaluated from rank goroutines, the mediated
# resilient setter, sampler failover, and straggler/crash handling.
race-faults:
	$(GO) test -race ./internal/faults/ ./internal/freqctl/ ./internal/mpisim/ \
		./internal/sampler/ ./internal/core/

# Full chaos sweep: many seeds, larger runs, with rank crashes.
chaos:
	$(GO) run ./cmd/faultbench -seeds 10 -ranks 4 -s 4 -crash
	$(GO) run ./cmd/faultbench -seeds 10

# Fast chaos gate for `check`: a few seeds through the full fault stack
# (sensor transients, stuck node sensor, clamped-clock window, straggler,
# one rank crash under drop-rank), each run twice and byte-compared.
chaos-smoke:
	$(GO) run ./cmd/faultbench -seeds 2 -q
	$(GO) run ./cmd/faultbench -seeds 2 -ranks 3 -s 4 -crash -q

# Full recovery soak: many seeds, >= 10 kill points each, every killed run
# must restart from its on-disk checkpoint and converge bit-identically to
# the uninterrupted reference, plus a budget preemption + resume per seed.
soak:
	$(GO) run ./cmd/faultbench -soak -seeds 5 -kills 10 -ranks 4 -s 8 -q
	$(GO) run ./cmd/perfgate -ckpt-overhead 1.0

# Fast recovery gate for `check`: a short seeded kill-and-recover sweep and
# the self-measured checkpoint-overhead gate (autosave-every 10 vs off).
soak-smoke:
	$(GO) run ./cmd/faultbench -soak -seeds 2 -kills 4 -ranks 2 -s 6 -q
	$(GO) run ./cmd/perfgate -ckpt-overhead 1.0

# The checkpoint/supervisor stack under the race detector: store
# corruption/truncation handling, atomic writer, controller + watchdog +
# supervisor, and the end-to-end crash/budget/stall recovery tests in core.
race-recovery:
	$(GO) test -race ./internal/recovery/ ./internal/atomicio/ ./internal/core/

# Checkpoint-overhead self-gate at the default tolerance.
perfgate-ckpt:
	$(GO) run ./cmd/perfgate -ckpt-overhead 1.0

# The sampler/attribution/three-way-validation stack exercised under the
# race detector: per-rank channels polled from rank goroutines while the
# coordinator polls node sensors and the registry serves scrapes.
race-energy:
	$(GO) test -race -run 'Sampler|Sampling|Attrib|Build|Validation|ThreeWay' \
		./internal/sampler/ ./internal/attrib/ ./internal/core/ ./internal/slurm/ ./internal/report/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Telemetry cost: per-primitive ns/op and the end-to-end off/live/trace
# comparison. Wall clock is noisy on shared machines — compare minimums
# across the -count runs.
bench-telemetry:
	$(GO) test -bench 'SpanRecord|CounterInc|HistogramObserve' -benchmem ./internal/telemetry/
	$(GO) test -bench TelemetryOverhead -benchtime 300x -count 3 ./internal/core/

# Sampler overhead (off / 10 Hz / 100 Hz) as machine-readable JSON for
# regression tracking; the human-readable twin is
# `go test -bench SamplerOverhead ./internal/core/`.
bench-json:
	$(GO) run ./cmd/energybench -out BENCH_energy.json

# Per-pass SPH pipeline timing (closure walk vs neighbor list vs Verlet
# skin vs symmetric folded pairs) at the tracked problem sizes, as
# machine-readable JSON. This IS the
# perfgate baseline refresh: after an intentional perf change, run
# `make bench-sph` (with the 1,2,4,8 sweep so the parallel-efficiency
# fields stay populated) and commit the regenerated BENCH_sph.json
# alongside the change that caused it.
bench-sph:
	$(GO) run ./cmd/sphbench -sizes 20,30 -steps 4 -warmup 1 -gomaxprocs 1,2,4,8 -out BENCH_sph.json

# GOMAXPROCS scaling sweep on the Verlet-skin pipeline: per-pass
# parallel-efficiency fields (t1/(P·tP)) land in gomaxprocs_sweep of the
# output. Writes to a scratch file so it never clobbers the baseline.
bench-gomaxprocs:
	$(GO) run ./cmd/sphbench -sizes 20,30 -steps 4 -warmup 1 -gomaxprocs 1,2,4,8 -out /tmp/BENCH_sph_sweep.json

# Perf regression sentinel at full fidelity: rerun the tracked bench and
# diff it against the committed baseline with the default tolerances.
perfgate:
	$(GO) run ./cmd/sphbench -sizes 20,30 -steps 4 -warmup 1 -out /tmp/BENCH_sph_fresh.json
	$(GO) run ./cmd/perfgate -baseline BENCH_sph.json /tmp/BENCH_sph_fresh.json

# Fast sentinel for `check`: relaxed -smoke tolerances — only gross
# regressions (a pass's share of step time jumping, allocs blowing up,
# skin reuse breaking, the cell-slab rebuild win collapsing) fail the
# gate. 4 measured steps so the ~4-step rebuild cadence lands one rebuild
# inside the measured window — fewer steps leave the rebuild-split floors
# unmeasured and silently skipped.
perfgate-smoke:
	$(GO) run ./cmd/sphbench -sizes 20,30 -steps 4 -warmup 1 -out /tmp/BENCH_sph_smoke.json
	$(GO) run ./cmd/perfgate -smoke -baseline BENCH_sph.json /tmp/BENCH_sph_smoke.json

# Fast correctness/liveness gate for `check`: a tiny sphbench run (exercises
# all five pipelines end to end — closure walk, rebuilt list, Verlet skin,
# the symmetric folded pair path and the cell-slab sweep; the multi-step
# run gives the skin real refresh steps), the walk-vs-list,
# skin-vs-rebuild, symmetric-vs-asymmetric and cell-slab bit-identity
# equivalence tests plus the skin and fold edge cases (drift threshold,
# overflow/ngmax fallback, mid-interval restart, bit-identical opt-out,
# float32-kernel verdict), the zero-allocation regressions on the reusable
# grid build, the folded passes and the slab gather, and a one-shot pass
# over the SPH micro-benchmarks.
bench-sph-smoke:
	$(GO) run ./cmd/sphbench -sizes 8 -steps 1 -warmup 1 -out /dev/null
	$(GO) run ./cmd/sphbench -sizes 10 -steps 4 -warmup 1 -out /dev/null
	$(GO) test -run 'NeighborListMatchesWalk|NgmaxOverflow|TabulatedKernelPipeline|Skin|Symmetric|Float32|CellSlab' -count=1 ./internal/sph/
	$(GO) test -run 'ZeroSteadyStateAllocs|QueryZeroAllocs|IntoMatchesBuildGrid|SlabGather' -count=1 ./internal/neighbors/
	$(GO) test -run xxx -bench 'SPHStep$$' -benchtime 1x ./...

# Decision-observability gate for `check`: a tiny tuned run with the event
# ledger on, exported as JSONL, then audited — declog must exit 0 with at
# least one per-function decision row (it exits 1 on a decision-free
# ledger, failing the target).
events-smoke:
	$(GO) run ./cmd/sphexa -sim turbulence -ranks 2 -s 3 -ppr 10e6 \
		-strategy mandyn -sample-hz 100 -q \
		-events-out /tmp/events_smoke.jsonl -report /tmp/events_smoke.json \
		-trace-out /tmp/events_smoke.trace.json > /dev/null
	$(GO) run ./cmd/declog -events /tmp/events_smoke.jsonl -report /tmp/events_smoke.json

# Regenerate every table/figure at the paper's step counts.
experiments:
	$(GO) run ./cmd/experiments -run all -scale 1 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/turbulence
	$(GO) run ./examples/evrard
	$(GO) run ./examples/sedov
	$(GO) run ./examples/dvfstrace
	$(GO) run ./examples/measurement
	$(GO) run ./examples/distributed
	$(GO) run ./examples/customcode

clean:
	rm -rf results
