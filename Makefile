# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build vet test race race-energy bench bench-telemetry bench-json check experiments examples clean

all: build vet test

# check is the CI gate: static vetting plus the full suite under the race
# detector (includes the telemetry concurrency tests), with a focused
# re-run of the energy attribution/validation path so a regression there
# is named in the failure output rather than buried in ./...
check: vet race race-energy

# The sampler/attribution/three-way-validation stack exercised under the
# race detector: per-rank channels polled from rank goroutines while the
# coordinator polls node sensors and the registry serves scrapes.
race-energy:
	$(GO) test -race -run 'Sampler|Sampling|Attrib|Build|Validation|ThreeWay' \
		./internal/sampler/ ./internal/attrib/ ./internal/core/ ./internal/slurm/ ./internal/report/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Telemetry cost: per-primitive ns/op and the end-to-end off/live/trace
# comparison. Wall clock is noisy on shared machines — compare minimums
# across the -count runs.
bench-telemetry:
	$(GO) test -bench 'SpanRecord|CounterInc|HistogramObserve' -benchmem ./internal/telemetry/
	$(GO) test -bench TelemetryOverhead -benchtime 300x -count 3 ./internal/core/

# Sampler overhead (off / 10 Hz / 100 Hz) as machine-readable JSON for
# regression tracking; the human-readable twin is
# `go test -bench SamplerOverhead ./internal/core/`.
bench-json:
	$(GO) run ./cmd/energybench -out BENCH_energy.json

# Regenerate every table/figure at the paper's step counts.
experiments:
	$(GO) run ./cmd/experiments -run all -scale 1 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/turbulence
	$(GO) run ./examples/evrard
	$(GO) run ./examples/sedov
	$(GO) run ./examples/dvfstrace
	$(GO) run ./examples/measurement
	$(GO) run ./examples/distributed
	$(GO) run ./examples/customcode

clean:
	rm -rf results
