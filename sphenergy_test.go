package sphenergy

import (
	"strings"
	"testing"
)

func TestRunThroughFacade(t *testing.T) {
	res, err := Run(Config{
		System:           MiniHPC(),
		Ranks:            1,
		Sim:              Turbulence,
		ParticlesPerRank: 8e6,
		Steps:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTimeS <= 0 || res.GPUEnergyJ() <= 0 {
		t.Error("empty result")
	}
}

func TestSystemByName(t *testing.T) {
	spec, err := SystemByName("lumi-g")
	if err != nil || spec.Name != "LUMI-G" {
		t.Errorf("SystemByName: %v %v", spec.Name, err)
	}
	if _, err := SystemByName("frontier"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestStrategyFactories(t *testing.T) {
	for name, mk := range map[string]func() Strategy{
		"baseline":    Baseline(),
		"static-1005": StaticMHz(1005),
		"dvfs":        DVFS(),
		"mandyn":      ManDyn(map[string]int{"XMass": 1005}),
	} {
		s := mk()
		if s == nil {
			t.Fatalf("%s factory returned nil", name)
		}
		if s.Name() != name {
			t.Errorf("strategy name %q, want %q", s.Name(), name)
		}
	}
}

func TestTuneFrequencies(t *testing.T) {
	table, err := TuneFrequencies(MiniHPC(), Turbulence, 450*450*450, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 10 {
		t.Fatalf("table has %d entries", len(table))
	}
	if table["MomentumEnergy"] < table["XMass"] {
		t.Error("compute-bound kernel tuned below memory-bound kernel")
	}
	// The table plugs straight into ManDyn.
	res, err := Run(Config{
		System:           MiniHPC(),
		Ranks:            1,
		Sim:              Turbulence,
		ParticlesPerRank: 8e6,
		Steps:            2,
		NewStrategy:      ManDyn(table),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Strategy != "mandyn" {
		t.Errorf("strategy %q", res.Report.Strategy)
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 12 {
		t.Fatalf("%d experiments registered", len(names))
	}
	r, err := RunExperiment("table1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Render(), "TABLE I") {
		t.Error("table1 render")
	}
	if _, err := RunExperiment("fig0", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}
