package sphenergy

import (
	"testing"

	"sphenergy/internal/gravity"
	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
)

// benchmarkSPHStep drives the real Go SPH solver for b.N full pipeline
// steps on an nSide³ turbulent box, using the default neighbor-list
// pipeline.
func benchmarkSPHStep(b *testing.B, nSide int) {
	benchmarkSPHStepMode(b, nSide, false)
}

func benchmarkSPHStepMode(b *testing.B, nSide int, closureWalk bool) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(nSide))
	opt.NgTarget = 48
	opt.ClosureWalk = closureWalk
	st := sph.NewState(p, opt)
	// Warm-up: settle smoothing lengths.
	st.FindNeighbors()
	st.XMass()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.FindNeighbors()
		st.XMass()
		st.NormalizationGradh()
		st.EquationOfState()
		st.IADVelocityDivCurl()
		st.AVSwitches(st.Dt)
		st.MomentumEnergy()
		dt := st.Timestep()
		st.UpdateQuantities(dt)
	}
	b.ReportMetric(float64(p.N), "particles")
}

// BenchmarkSPHStepWalk measures the legacy closure-walk pipeline at
// BenchmarkSPHStep's size; the ratio of the two is the tracked
// neighbor-list speedup (BENCH_sph.json records the same comparison with
// per-pass resolution).
func BenchmarkSPHStepWalk(b *testing.B) {
	benchmarkSPHStepMode(b, 16, true)
}

// BenchmarkGravityTree measures Barnes-Hut tree build + traversal.
func BenchmarkGravityTree(b *testing.B) {
	p, opt := initcond.Evrard(initcond.DefaultEvrard(20))
	pot := make([]float64, p.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := gravity.Build(p.X, p.Y, p.Z, p.M, opt.GravTheta, opt.GravEps, opt.GravG)
		tree.AccelerationsInto(p.AX, p.AY, p.AZ, pot)
	}
	b.ReportMetric(float64(p.N), "particles")
}
