package attrib

import (
	"math"
	"strings"
	"testing"

	"sphenergy/internal/sampler"
	"sphenergy/internal/telemetry"
)

// grid builds a tick series sampling a piecewise-constant power profile
// exactly: segs are (duration, watts) pairs starting at t=0.
func grid(hz float64, segs ...[2]float64) []sampler.Sample {
	period := 1 / hz
	var end float64
	for _, s := range segs {
		end += s[0]
	}
	energyAt := func(t float64) float64 {
		e, t0 := 0.0, 0.0
		for _, s := range segs {
			t1 := t0 + s[0]
			if t <= t0 {
				break
			}
			upto := math.Min(t, t1)
			e += (upto - t0) * s[1]
			t0 = t1
		}
		return e
	}
	var out []sampler.Sample
	for i := 0; ; i++ {
		t := float64(i) * period
		if t > end+1e-9 {
			break
		}
		out = append(out, sampler.Sample{TimeS: t, EnergyJ: energyAt(t)})
	}
	return out
}

func TestBuildExactWhenSpansAlignWithTicks(t *testing.T) {
	// 200 W for 1 s (kernel A), 50 W for 1 s (idle), 300 W for 1 s
	// (kernel B) — span boundaries on whole seconds align with the 10 Hz
	// grid, so lerp attribution is exact.
	series := map[int][]sampler.Sample{
		0: grid(10, [2]float64{1, 200}, [2]float64{1, 50}, [2]float64{1, 300}),
	}
	tr := telemetry.NewTracer(1)
	kA := tr.Intern("kernel", "A", "clock_mhz", "energy_j")
	kB := tr.Intern("kernel", "B", "clock_mhz", "energy_j")
	tr.CompleteRef(0, kA, 0, 1, 1410, 200)
	tr.CompleteRef(0, kB, 2, 1, 1410, 300)

	a := Build(tr.Spans(), series, Options{RateHz: 10})
	if len(a.Kernels) != 2 {
		t.Fatalf("kernels = %d, want 2", len(a.Kernels))
	}
	// Sorted by descending model energy: B (300) then A (200).
	if a.Kernels[0].Name != "B" || a.Kernels[1].Name != "A" {
		t.Fatalf("order = %s, %s", a.Kernels[0].Name, a.Kernels[1].Name)
	}
	for _, r := range a.Kernels {
		if math.Abs(r.ErrPct) > 1e-9 {
			t.Fatalf("kernel %s err = %g%%, want 0", r.Name, r.ErrPct)
		}
		if !r.Resolvable {
			t.Fatalf("kernel %s should be resolvable (1 s at 10 Hz)", r.Name)
		}
	}
	if b := a.Kernels[0]; math.Abs(b.EDPJs-300) > 1e-9 {
		t.Fatalf("B EDP = %g, want 300 J·s", b.EDPJs)
	}
	if !a.Pass {
		t.Fatalf("attribution should pass: agg=%g max=%g", a.AggErrPct, a.MaxResolvableErrPct)
	}
	if len(a.Ranks) != 1 || math.Abs(a.Ranks[0].ErrPct) > 1e-9 {
		t.Fatalf("rank summary = %+v", a.Ranks)
	}
}

func TestBuildMisalignedSpanHasBoundedError(t *testing.T) {
	// A short 250 W burst (0.95 s..1.05 s) straddles one 1 Hz tick:
	// per-row error is large, but it is unresolvable at 1 Hz and the
	// energy-weighted aggregate stays bounded by one period's energy.
	series := map[int][]sampler.Sample{
		0: grid(1, [2]float64{0.95, 100}, [2]float64{0.1, 250}, [2]float64{0.95, 100}),
	}
	tr := telemetry.NewTracer(1)
	long := tr.Intern("kernel", "long", "clock_mhz", "energy_j")
	burst := tr.Intern("kernel", "burst", "clock_mhz", "energy_j")
	tr.CompleteRef(0, long, 0, 0.95, 1410, 95)
	tr.CompleteRef(0, burst, 0.95, 0.1, 1410, 25)

	a := Build(tr.Spans(), series, Options{RateHz: 1})
	var b Row
	for _, r := range a.Kernels {
		if r.Name == "burst" {
			b = r
		}
	}
	if b.Resolvable {
		t.Fatal("0.1 s kernel at 1 Hz must be unresolvable")
	}
	if b.ErrPct == 0 {
		t.Fatal("misaligned burst should carry attribution error")
	}
	// Unresolvable rows are excluded from the per-row gate.
	if a.MaxResolvableErrPct > DefaultTolerancePct+1e-9 {
		lr := a.Kernels
		t.Fatalf("resolvable max err = %g%% rows=%+v", a.MaxResolvableErrPct, lr)
	}
}

func TestBuildIgnoresOtherSpans(t *testing.T) {
	series := map[int][]sampler.Sample{0: grid(10, [2]float64{1, 100})}
	tr := telemetry.NewTracer(1)
	tr.Complete(0, "mpi", "barrier", 0, 0.5)
	tr.Complete(telemetry.GlobalTrack, "step", "step 0", 0, 1)
	tr.Instant(0, "kernel", "phantom", 0.5)
	a := Build(tr.Spans(), series, Options{RateHz: 10})
	if len(a.Kernels) != 0 || len(a.Functions) != 0 {
		t.Fatalf("unexpected rows: %+v %+v", a.Kernels, a.Functions)
	}
	if a.Pass {
		t.Fatal("empty attribution must not pass")
	}
}

func TestBuildFunctions(t *testing.T) {
	series := map[int][]sampler.Sample{
		0: grid(10, [2]float64{2, 150}),
	}
	tr := telemetry.NewTracer(1)
	fn := tr.Intern("function", "MomentumEnergyIAD", "gpu_j", "comm_s")
	tr.CompleteRef(0, fn, 0, 1, 150, 0.1)
	tr.CompleteRef(0, fn, 1, 1, 150, 0.1)
	a := Build(tr.Spans(), series, Options{RateHz: 10})
	if len(a.Functions) != 1 {
		t.Fatalf("functions = %d, want 1", len(a.Functions))
	}
	f := a.Functions[0]
	if f.Calls != 2 || math.Abs(f.ModelJ-300) > 1e-9 || math.Abs(f.ErrPct) > 1e-9 {
		t.Fatalf("function row = %+v", f)
	}
}

func TestTopKernelsAggregatesRanks(t *testing.T) {
	series := map[int][]sampler.Sample{
		0: grid(10, [2]float64{1, 100}),
		1: grid(10, [2]float64{1, 200}),
	}
	tr := telemetry.NewTracer(2)
	k := tr.Intern("kernel", "density", "clock_mhz", "energy_j")
	tr.CompleteRef(0, k, 0, 1, 1410, 100)
	tr.CompleteRef(1, k, 0, 1, 1410, 200)
	a := Build(tr.Spans(), series, Options{RateHz: 10})
	top := a.TopKernels(5)
	if len(top) != 1 {
		t.Fatalf("top = %d, want 1", len(top))
	}
	if top[0].Calls != 2 || math.Abs(top[0].ModelJ-300) > 1e-9 {
		t.Fatalf("aggregated row = %+v", top[0])
	}
}

func TestRelErrPct(t *testing.T) {
	if e := relErrPct(102, 100); math.Abs(e-2) > 1e-12 {
		t.Fatalf("err = %g", e)
	}
	if e := relErrPct(0, 0); e != 0 {
		t.Fatalf("0/0 err = %g", e)
	}
	if e := relErrPct(5, 0); e != 100 {
		t.Fatalf("x/0 err = %g", e)
	}
	if e := relErrPct(-5, 0); e != -100 {
		t.Fatalf("-x/0 err = %g", e)
	}
}

func TestValidationThreeWay(t *testing.T) {
	v := NewValidation(1000, 2)
	v.Add("sampled-sensors", 1005, false)
	v.Add("pm_counters", 995, false)
	v.Add("slurm-consumed", 1000, false)
	v.Add("pmt-loop-only", 900, true) // Fig. 3 gap: informational
	if !v.Pass {
		t.Fatalf("validation should pass: %+v", v.Sources)
	}
	s, ok := v.Get("pmt-loop-only")
	if !ok || !s.Pass || !s.Informational {
		t.Fatalf("informational source = %+v", s)
	}
	if got := v.Summary(); !strings.Contains(got, "PASS: 3/3") {
		t.Fatalf("summary = %q", got)
	}

	v2 := NewValidation(1000, 2)
	v2.Add("sampled-sensors", 1050, false) // 5% off
	if v2.Pass {
		t.Fatal("5% deviation must fail a 2% threshold")
	}
	if got := v2.Summary(); !strings.Contains(got, "FAIL: 0/1") {
		t.Fatalf("summary = %q", got)
	}
}

func TestValidationZeroReference(t *testing.T) {
	v := NewValidation(0, 0)
	if v.ThresholdPct != DefaultTolerancePct {
		t.Fatalf("threshold = %g", v.ThresholdPct)
	}
	v.Add("sampled-sensors", 5, false)
	if v.Pass {
		t.Fatal("nonzero reading against zero reference must fail")
	}
}
