// Package attrib joins the async sampler's power series against the
// telemetry tracer's kernel and function spans to produce per-kernel and
// per-function energy and EDP attribution, per rank and per device — the
// application-level accounting of the companion measurement paper
// (Simsek et al., arXiv:2312.05102).
//
// Because the repository's devices are simulated, every span also carries
// the model's exactly-integrated energy. That turns attribution into a
// controlled experiment: the sampled estimate (integrating a fixed-rate
// cumulative-energy series across span boundaries) is compared row by row
// against ground truth, quantifying the discretization error a real
// fixed-rate sampler incurs.
//
// # Tolerance contract
//
// A sampler at rate f cannot resolve work much shorter than its period
// 1/f: a 1 ms kernel observed at 100 Hz lands entirely between two ticks,
// and its energy is smeared across the surrounding 10 ms interval. The
// package therefore gates its accuracy check in two documented steps:
//
//   - per-row: every *resolvable* row — mean call duration of at least
//     MinResolvablePeriods sampling periods (default 5) — must attribute
//     within TolerancePct (default 2%) of ground truth;
//   - aggregate: the energy-weighted mean absolute error across all rows,
//     resolvable or not, must also stay within TolerancePct. Short kernels
//     mis-attribute individually but their errors are bounded by the
//     energy in one period, so the weighted aggregate stays small.
//
// Pass reflects both gates. Unresolvable rows keep their raw error in the
// tables (marked Resolvable=false) so the rate-versus-resolution trade-off
// stays visible instead of being filtered away.
//
// # Degraded intervals
//
// When the sampler ran through sensor faults, ticks covering the outages
// carry sampler.Sample.Degraded — their energy is estimated, not
// observed. Attribution rows whose spans overlap such ticks are flagged
// (Row.Degraded, with the overlapping share in Row.DegradedPct) and
// excluded from both tolerance gates, the same treatment unresolvable
// rows get: an estimate must not fail — or pass — an accuracy contract
// about observed data. The flags propagate so reports can show exactly
// which table entries rest on estimated energy.
package attrib

import (
	"fmt"
	"math"
	"sort"

	"sphenergy/internal/sampler"
	"sphenergy/internal/telemetry"
)

// Defaults for the tolerance contract.
const (
	DefaultTolerancePct         = 2.0
	DefaultMinResolvablePeriods = 5.0
)

// Options configures an attribution build.
type Options struct {
	// RateHz is the per-rank sampling rate the series were collected at;
	// it sets the resolvability threshold. 0 disables the resolvable
	// classification (every row is treated as resolvable).
	RateHz float64 `json:"rate_hz"`
	// TolerancePct is the relative-error gate (DefaultTolerancePct if 0).
	TolerancePct float64 `json:"tolerance_pct"`
	// MinResolvablePeriods is the resolvability threshold in sampling
	// periods (DefaultMinResolvablePeriods if 0).
	MinResolvablePeriods float64 `json:"min_resolvable_periods"`
}

func (o Options) defaulted() Options {
	if o.TolerancePct <= 0 {
		o.TolerancePct = DefaultTolerancePct
	}
	if o.MinResolvablePeriods <= 0 {
		o.MinResolvablePeriods = DefaultMinResolvablePeriods
	}
	return o
}

// Row is one attribution table entry: a kernel or function on one rank.
type Row struct {
	Rank  int    `json:"rank"`
	Name  string `json:"name"`
	Calls int    `json:"calls"`
	// TimeS is the summed span duration.
	TimeS float64 `json:"time_s"`
	// MeanCallS is TimeS/Calls — what resolvability is judged on.
	MeanCallS float64 `json:"mean_call_s"`
	// ModelJ is the simulator's exactly-integrated energy (ground truth).
	ModelJ float64 `json:"model_j"`
	// SampledJ is the energy attributed from the sampled series.
	SampledJ float64 `json:"sampled_j"`
	// ErrPct is the relative attribution error vs ground truth.
	ErrPct float64 `json:"err_pct"`
	// EDPJs is the row's energy-delay product (sampled energy × time).
	EDPJs float64 `json:"edp_js"`
	// Resolvable marks rows whose mean call outlasts the resolvability
	// threshold; only these are individually gated.
	Resolvable bool `json:"resolvable"`
	// ClockMHz is the span-time-weighted achieved SM clock (kernel rows
	// only; from the tracer's clock_mhz arg, i.e. the clock the device
	// actually ran, not the one the strategy requested). 0 when unknown.
	ClockMHz float64 `json:"clock_mhz,omitempty"`
	// Degraded marks rows whose spans overlap sampler ticks flagged as
	// estimated; such rows are excluded from the tolerance gates.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedPct is the share of the row's span time covered by degraded
	// sampler intervals.
	DegradedPct float64 `json:"degraded_pct,omitempty"`

	// accumulation scratch (not serialized)
	clockWeight float64
	degradedS   float64
}

// RankSummary aggregates one rank's attribution.
type RankSummary struct {
	Rank int `json:"rank"`
	// ModelJ / SampledJ total the rank's kernel rows.
	ModelJ   float64 `json:"model_j"`
	SampledJ float64 `json:"sampled_j"`
	// ErrPct is the rank's total attribution error.
	ErrPct float64 `json:"err_pct"`
	// Samples is the number of retained samples for the rank.
	Samples int `json:"samples"`
}

// Attribution is the full result of a build.
type Attribution struct {
	Opts Options `json:"options"`
	// Kernels and Functions are sorted by rank, then descending energy.
	Kernels   []Row         `json:"kernels"`
	Functions []Row         `json:"functions"`
	Ranks     []RankSummary `json:"ranks"`
	// AggErrPct is the energy-weighted mean absolute kernel error.
	AggErrPct float64 `json:"agg_err_pct"`
	// MaxResolvableErrPct is the worst per-row error among resolvable
	// kernel rows.
	MaxResolvableErrPct float64 `json:"max_resolvable_err_pct"`
	// Pass reports the two-gate tolerance contract (package comment),
	// evaluated over clean rows only — degraded rows are classified, not
	// gated.
	Pass bool `json:"pass"`
	// Degraded reports whether any kernel row overlapped estimated
	// sampler intervals; DegradedRows/DegradedEnergyJ size the exclusion.
	Degraded        bool    `json:"degraded,omitempty"`
	DegradedRows    int     `json:"degraded_rows,omitempty"`
	DegradedEnergyJ float64 `json:"degraded_energy_j,omitempty"`
}

// energySeries evaluates cumulative sampled energy at arbitrary times by
// linear interpolation over one rank's tick samples.
type energySeries struct {
	times    []float64
	energies []float64
	// Degraded-interval index: degSeg[i] flags the interval ending at
	// times[i] (a degraded tick covers the window since the previous
	// tick); degPrefix[i] is the cumulative degraded time up to times[i],
	// making span overlap an O(log n) query.
	degSeg    []bool
	degPrefix []float64
	degAny    bool
}

func newEnergySeries(samples []sampler.Sample) *energySeries {
	es := &energySeries{
		times:    make([]float64, len(samples)),
		energies: make([]float64, len(samples)),
	}
	for i, s := range samples {
		es.times[i] = s.TimeS
		es.energies[i] = s.EnergyJ
		if s.Degraded {
			es.degAny = true
		}
	}
	if es.degAny {
		es.degSeg = make([]bool, len(samples))
		es.degPrefix = make([]float64, len(samples))
		for i := 1; i < len(samples); i++ {
			es.degSeg[i] = samples[i].Degraded
			es.degPrefix[i] = es.degPrefix[i-1]
			if es.degSeg[i] {
				es.degPrefix[i] += es.times[i] - es.times[i-1]
			}
		}
	}
	return es
}

// degAt returns the cumulative degraded time up to t.
func (es *energySeries) degAt(t float64) float64 {
	n := len(es.times)
	if !es.degAny || n == 0 || t <= es.times[0] {
		return 0
	}
	if t >= es.times[n-1] {
		return es.degPrefix[n-1]
	}
	i := sort.SearchFloat64s(es.times, t) // first index with times[i] >= t
	if es.times[i] == t {
		return es.degPrefix[i]
	}
	p := es.degPrefix[i-1]
	if es.degSeg[i] {
		p += t - es.times[i-1]
	}
	return p
}

// degradedOverlap returns the degraded time inside [startS, endS].
// Spans too short to contain an interior sample interval are estimated
// from their *neighbor* intervals (atStart extends the preceding one,
// atEnd the following one), so for those the query widens to the
// borrowed intervals: such a span rests on estimated data even when its
// own time window is clean. The result is capped at the span duration
// so DegradedPct stays a fraction of the span.
func (es *energySeries) degradedOverlap(startS, endS float64) float64 {
	if !es.degAny || endS <= startS {
		return 0
	}
	n := len(es.times)
	lo := sort.SearchFloat64s(es.times, startS)
	hi := sort.Search(n, func(i int) bool { return es.times[i] > endS }) - 1
	if lo < n && hi >= 0 && hi > lo {
		// Interior-interval spans (integrate's exact path) draw only on
		// samples inside their window; strict overlap is the whole story.
		return es.degAt(endS) - es.degAt(startS)
	}
	padLo, padHi := startS, endS
	if i := es.locate(startS); i > 0 {
		padLo = es.times[i-1]
	}
	if i := es.locate(endS); i >= 0 && i+2 < n {
		padHi = es.times[i+2]
	}
	return math.Min(es.degAt(padHi)-es.degAt(padLo), endS-startS)
}

// locate returns the interval index i with times[i] <= t < times[i+1],
// or -1 when t is outside the series (including the exact last point).
func (es *energySeries) locate(t float64) int {
	n := len(es.times)
	if n < 2 || t < es.times[0] || t >= es.times[n-1] {
		return -1
	}
	// First index with time > t, so the interval starts one before it.
	i := sort.SearchFloat64s(es.times, t)
	if i < n && es.times[i] == t {
		return i
	}
	return i - 1
}

// powerOf returns the mean power across interval i.
func (es *energySeries) powerOf(i int) float64 {
	dt := es.times[i+1] - es.times[i]
	if dt <= 0 {
		return 0
	}
	return (es.energies[i+1] - es.energies[i]) / dt
}

// clamp bounds an energy estimate inside interval i — the sampled series
// is monotone (the sampler clamps negative deltas), so the true value
// cannot leave the interval's energy range.
func (es *energySeries) clamp(e float64, i int) float64 {
	return math.Min(math.Max(e, es.energies[i]), es.energies[i+1])
}

// atStart estimates cumulative energy at a span's start time. A plain
// lerp across the containing sample interval systematically smears span
// energy into the preceding idle (the cumulative-energy curve is convex
// at a low→high power transition), biasing every attribution low. The
// span boundary time is known exactly from the tracer, so the estimator
// assumes the power transition happens there and extends the *preceding*
// interval's observed power up to it — Score-P-style timestamp-aligned
// attribution. Out-of-window times clamp to the series' ends, surfacing
// sampler coverage gaps as attribution error instead of hiding them by
// extrapolation.
func (es *energySeries) atStart(t float64) float64 {
	n := len(es.times)
	if n == 0 {
		return 0
	}
	i := es.locate(t)
	if i < 0 {
		if t < es.times[0] {
			return es.energies[0]
		}
		return es.energies[n-1]
	}
	before := i
	if i > 0 {
		before = i - 1
	}
	return es.clamp(es.energies[i]+es.powerOf(before)*(t-es.times[i]), i)
}

// atEnd estimates cumulative energy at a span's end time, mirroring
// atStart: the *following* interval's power is extended backwards to the
// boundary.
func (es *energySeries) atEnd(t float64) float64 {
	n := len(es.times)
	if n == 0 {
		return 0
	}
	i := es.locate(t)
	if i < 0 {
		if t < es.times[0] {
			return es.energies[0]
		}
		return es.energies[n-1]
	}
	after := i
	if i+2 < n {
		after = i + 1
	}
	return es.clamp(es.energies[i+1]-es.powerOf(after)*(es.times[i+1]-t), i)
}

// integrate returns the sampled energy across [startS, endS]. When the
// span contains at least one full sample interval, its interior energy is
// taken verbatim and the partial edge intervals are filled by extending
// the nearest *interior* interval's power outward — within the span the
// power regime is the span's own, so this is exact for constant-power
// kernels however short the surrounding idle gaps are. Spans too short to
// contain an interior interval fall back to the neighbor-interval
// boundary estimate of atStart/atEnd.
func (es *energySeries) integrate(startS, endS float64) float64 {
	if endS <= startS {
		return 0
	}
	n := len(es.times)
	// lo: first tick at or after startS; hi: last tick at or before endS.
	lo := sort.SearchFloat64s(es.times, startS)
	hi := sort.Search(n, func(i int) bool { return es.times[i] > endS }) - 1
	if lo < n && hi >= 0 && hi > lo {
		interior := es.energies[hi] - es.energies[lo]
		startEdge := 0.0
		if lo > 0 {
			startEdge = es.powerOf(lo) * (es.times[lo] - startS)
			startEdge = math.Min(startEdge, es.energies[lo]-es.energies[lo-1])
		}
		endEdge := 0.0
		if hi+1 < n {
			endEdge = es.powerOf(hi-1) * (endS - es.times[hi])
			endEdge = math.Min(endEdge, es.energies[hi+1]-es.energies[hi])
		}
		return interior + startEdge + endEdge
	}
	return math.Max(0, es.atEnd(endS)-es.atStart(startS))
}

// rowKey groups spans into table rows.
type rowKey struct {
	rank int
	name string
}

// Build joins spans against sampled series. Only spans in the categories
// "kernel" (ground truth in the "energy_j" arg) and "function" (ground
// truth in the "gpu_j" arg) on rank tracks participate; everything else is
// ignored.
func Build(spans []telemetry.SpanEvent, series map[int][]sampler.Sample, opts Options) *Attribution {
	opts = opts.defaulted()
	a := &Attribution{Opts: opts}

	es := map[int]*energySeries{}
	for rank, ss := range series {
		es[rank] = newEnergySeries(ss)
	}

	kernels := map[rowKey]*Row{}
	functions := map[rowKey]*Row{}
	for _, sp := range spans {
		if sp.Track < 0 || sp.Instant {
			continue
		}
		var table map[rowKey]*Row
		var truthKey string
		switch sp.Category {
		case "kernel":
			table, truthKey = kernels, "energy_j"
		case "function":
			table, truthKey = functions, "gpu_j"
		default:
			continue
		}
		s := es[sp.Track]
		if s == nil {
			continue
		}
		key := rowKey{rank: sp.Track, name: sp.Name}
		row, ok := table[key]
		if !ok {
			row = &Row{Rank: sp.Track, Name: sp.Name}
			table[key] = row
		}
		row.Calls++
		row.TimeS += sp.DurS
		truth, _ := sp.Arg(truthKey)
		row.ModelJ += truth
		row.SampledJ += s.integrate(sp.StartS, sp.EndS())
		row.degradedS += s.degradedOverlap(sp.StartS, sp.EndS())
		if clock, ok := sp.Arg("clock_mhz"); ok {
			row.clockWeight += clock * sp.DurS
		}
	}

	minDur := 0.0
	if opts.RateHz > 0 {
		minDur = opts.MinResolvablePeriods / opts.RateHz
	}
	finish := func(table map[rowKey]*Row) []Row {
		out := make([]Row, 0, len(table))
		for _, r := range table {
			if r.Calls > 0 {
				r.MeanCallS = r.TimeS / float64(r.Calls)
			}
			r.ErrPct = relErrPct(r.SampledJ, r.ModelJ)
			r.EDPJs = r.SampledJ * r.TimeS
			r.Resolvable = minDur == 0 || r.MeanCallS >= minDur
			if r.TimeS > 0 {
				if r.clockWeight > 0 {
					r.ClockMHz = r.clockWeight / r.TimeS
				}
				r.DegradedPct = 100 * r.degradedS / r.TimeS
			}
			r.Degraded = r.degradedS > 0
			out = append(out, *r)
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].Rank != out[b].Rank {
				return out[a].Rank < out[b].Rank
			}
			if out[a].ModelJ != out[b].ModelJ {
				return out[a].ModelJ > out[b].ModelJ
			}
			return out[a].Name < out[b].Name
		})
		return out
	}
	a.Kernels = finish(kernels)
	a.Functions = finish(functions)

	// Rank summaries over kernel rows.
	perRank := map[int]*RankSummary{}
	for _, r := range a.Kernels {
		rs, ok := perRank[r.Rank]
		if !ok {
			rs = &RankSummary{Rank: r.Rank, Samples: len(series[r.Rank])}
			perRank[r.Rank] = rs
		}
		rs.ModelJ += r.ModelJ
		rs.SampledJ += r.SampledJ
	}
	for _, rs := range perRank {
		rs.ErrPct = relErrPct(rs.SampledJ, rs.ModelJ)
		a.Ranks = append(a.Ranks, *rs)
	}
	sort.Slice(a.Ranks, func(i, j int) bool { return a.Ranks[i].Rank < a.Ranks[j].Rank })

	// The two tolerance gates, over clean rows only: degraded rows carry
	// estimated energy and are classified instead of gated.
	var wErr, wSum float64
	pass := true
	for _, r := range a.Kernels {
		if r.Degraded {
			a.Degraded = true
			a.DegradedRows++
			a.DegradedEnergyJ += r.ModelJ
			continue
		}
		wErr += math.Abs(r.ErrPct) * r.ModelJ
		wSum += r.ModelJ
		if r.Resolvable {
			if e := math.Abs(r.ErrPct); e > a.MaxResolvableErrPct {
				a.MaxResolvableErrPct = e
			}
		}
	}
	if wSum > 0 {
		a.AggErrPct = wErr / wSum
	}
	if a.MaxResolvableErrPct > opts.TolerancePct {
		pass = false
	}
	if a.AggErrPct > opts.TolerancePct {
		pass = false
	}
	a.Pass = pass && len(a.Kernels) > 0
	return a
}

// relErrPct returns 100*(got-want)/want, 0 when want is 0 and got is 0,
// and ±100 when want is 0 but got is not.
func relErrPct(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Copysign(100, got)
	}
	return 100 * (got - want) / want
}

// TopKernels returns the n highest-energy kernel rows summed across ranks
// (n <= 0 returns all), for compact report rendering.
func (a *Attribution) TopKernels(n int) []Row {
	byName := map[string]*Row{}
	for _, r := range a.Kernels {
		agg, ok := byName[r.Name]
		if !ok {
			agg = &Row{Rank: -1, Name: r.Name, Resolvable: true}
			byName[r.Name] = agg
		}
		agg.Calls += r.Calls
		agg.TimeS += r.TimeS
		agg.ModelJ += r.ModelJ
		agg.SampledJ += r.SampledJ
		agg.Resolvable = agg.Resolvable && r.Resolvable
		agg.Degraded = agg.Degraded || r.Degraded
		// The scratch accumulators don't survive a JSON round trip
		// (energyreport re-aggregates rows read from disk), so rebuild
		// them from the exported per-row values when they're empty.
		if r.clockWeight == 0 && r.ClockMHz > 0 {
			r.clockWeight = r.ClockMHz * r.TimeS
		}
		if r.degradedS == 0 && r.DegradedPct > 0 {
			r.degradedS = r.DegradedPct / 100 * r.TimeS
		}
		agg.clockWeight += r.clockWeight
		agg.degradedS += r.degradedS
	}
	out := make([]Row, 0, len(byName))
	for _, r := range byName {
		if r.Calls > 0 {
			r.MeanCallS = r.TimeS / float64(r.Calls)
		}
		r.ErrPct = relErrPct(r.SampledJ, r.ModelJ)
		r.EDPJs = r.SampledJ * r.TimeS
		if r.TimeS > 0 {
			if r.clockWeight > 0 {
				r.ClockMHz = r.clockWeight / r.TimeS
			}
			r.DegradedPct = 100 * r.degradedS / r.TimeS
		}
		r.Degraded = r.Degraded || r.degradedS > 0
		out = append(out, *r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].ModelJ != out[b].ModelJ {
			return out[a].ModelJ > out[b].ModelJ
		}
		return out[a].Name < out[b].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Source is one energy reading in a cross-source validation.
type Source struct {
	// Name identifies the measurement path ("sampled-sensors",
	// "pm_counters", "slurm-consumed", ...).
	Name    string  `json:"name"`
	EnergyJ float64 `json:"energy_j"`
	// RelErrPct is the deviation from the validation reference.
	RelErrPct float64 `json:"rel_err_pct"`
	// Informational sources render in the report but do not gate Pass
	// (e.g. the loop-only PMT reading, which legitimately excludes job
	// setup energy — the Fig. 3 gap).
	Informational bool `json:"informational,omitempty"`
	// Degraded marks sources whose reading rests on estimated data (a
	// sensor path that failed over during the run). Degraded sources are
	// reported but excluded from the gate, like Informational ones, and
	// their disagreement is classified as unresolvable rather than a
	// failure.
	Degraded bool `json:"degraded,omitempty"`
	// Pass is |RelErrPct| <= threshold (true for informational and
	// degraded rows).
	Pass bool `json:"pass"`
}

// Validation reproduces the paper's cross-source energy check (§IV-A,
// Fig. 3): independent measurement paths — sampled node sensors, direct
// pm_counters reads, Slurm's ConsumedEnergy accounting — are compared
// against the model-integrated reference with a relative-error threshold.
type Validation struct {
	// ReferenceJ is the model's exactly-integrated job energy
	// (setup + stepping loop), the scope all gating sources share.
	ReferenceJ float64 `json:"reference_j"`
	// ThresholdPct is the relative-error gate per source.
	ThresholdPct float64  `json:"threshold_pct"`
	Sources      []Source `json:"sources"`
	// Pass is true when every non-informational source is within the
	// threshold.
	Pass bool `json:"pass"`
}

// NewValidation starts a validation against a reference energy.
// thresholdPct <= 0 selects DefaultTolerancePct.
func NewValidation(referenceJ, thresholdPct float64) *Validation {
	if thresholdPct <= 0 {
		thresholdPct = DefaultTolerancePct
	}
	return &Validation{ReferenceJ: referenceJ, ThresholdPct: thresholdPct, Pass: true}
}

// Add records one source reading and updates the verdict.
func (v *Validation) Add(name string, energyJ float64, informational bool) *Validation {
	s := Source{Name: name, EnergyJ: energyJ, Informational: informational}
	s.RelErrPct = relErrPct(energyJ, v.ReferenceJ)
	s.Pass = informational || math.Abs(s.RelErrPct) <= v.ThresholdPct
	if !s.Pass {
		v.Pass = false
	}
	v.Sources = append(v.Sources, s)
	return v
}

// MarkDegraded flags the named source as degraded: it stops gating Pass
// and its disagreement with the reference is classified as unresolvable
// (the reading rests on failed-over or estimated sensor data, so neither
// agreement nor disagreement is evidence). The overall verdict is
// recomputed from the remaining gating sources.
func (v *Validation) MarkDegraded(name string) *Validation {
	for i := range v.Sources {
		if v.Sources[i].Name == name {
			v.Sources[i].Degraded = true
			v.Sources[i].Pass = true
		}
	}
	v.Pass = true
	for _, s := range v.Sources {
		if !s.Informational && !s.Degraded &&
			math.Abs(s.RelErrPct) > v.ThresholdPct {
			v.Pass = false
		}
	}
	return v
}

// Get returns the named source reading.
func (v *Validation) Get(name string) (Source, bool) {
	for _, s := range v.Sources {
		if s.Name == name {
			return s, true
		}
	}
	return Source{}, false
}

// Summary renders a one-line verdict ("PASS: 3/3 sources within 2%"),
// noting degraded sources excluded from the gate.
func (v *Validation) Summary() string {
	gated, ok, degraded := 0, 0, 0
	for _, s := range v.Sources {
		if s.Degraded {
			degraded++
			continue
		}
		if s.Informational {
			continue
		}
		gated++
		if s.Pass {
			ok++
		}
	}
	verdict := "PASS"
	if !v.Pass {
		verdict = "FAIL"
	}
	out := fmt.Sprintf("%s: %d/%d sources within %.3g%% of model reference",
		verdict, ok, gated, v.ThresholdPct)
	if degraded > 0 {
		out += fmt.Sprintf(" (%d degraded, unresolvable)", degraded)
	}
	return out
}
