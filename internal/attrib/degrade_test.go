package attrib

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"sphenergy/internal/sampler"
	"sphenergy/internal/telemetry"
)

// degrade marks the tick intervals ending at the given sample indices as
// degraded, mirroring what the sampler's failover path emits.
func degrade(s []sampler.Sample, idx ...int) []sampler.Sample {
	for _, i := range idx {
		s[i].Degraded = true
	}
	return s
}

func TestBuildExcludesDegradedRowsFromGates(t *testing.T) {
	// Three 1 s kernels at 10 Hz; the middle second is served by failover
	// estimates (ticks 11..20 degraded). Kernel B overlaps the degraded
	// window, so it must be classified — flagged and excluded from both
	// gates — rather than allowed to fail the run.
	samples := grid(10, [2]float64{1, 200}, [2]float64{1, 50}, [2]float64{1, 300})
	series := map[int][]sampler.Sample{0: degrade(samples, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20)}
	tr := telemetry.NewTracer(1)
	kA := tr.Intern("kernel", "A", "clock_mhz", "energy_j")
	kB := tr.Intern("kernel", "B", "clock_mhz", "energy_j")
	kC := tr.Intern("kernel", "C", "clock_mhz", "energy_j")
	tr.CompleteRef(0, kA, 0, 1, 1410, 200)
	tr.CompleteRef(0, kB, 1, 1, 1410, 50)
	tr.CompleteRef(0, kC, 2, 1, 1410, 300)

	a := Build(tr.Spans(), series, Options{RateHz: 10})
	byName := map[string]Row{}
	for _, r := range a.Kernels {
		byName[r.Name] = r
	}
	if !byName["B"].Degraded || byName["B"].DegradedPct < 99 {
		t.Fatalf("B = %+v, want fully degraded", byName["B"])
	}
	if byName["A"].Degraded || byName["C"].Degraded {
		t.Fatalf("clean kernels flagged: A=%+v C=%+v", byName["A"], byName["C"])
	}
	if !a.Degraded || a.DegradedRows != 1 {
		t.Fatalf("attribution degradation = (%v, %d), want (true, 1)", a.Degraded, a.DegradedRows)
	}
	if math.Abs(a.DegradedEnergyJ-byName["B"].ModelJ) > 1e-9 {
		t.Fatalf("DegradedEnergyJ = %g, want B's %g", a.DegradedEnergyJ, byName["B"].ModelJ)
	}
	// The clean kernels align with the grid, so the run still passes.
	if !a.Pass {
		t.Fatalf("clean rows should still gate to pass: agg=%g max=%g",
			a.AggErrPct, a.MaxResolvableErrPct)
	}
}

func TestBuildDegradedRowCannotFailGate(t *testing.T) {
	// The degraded interval's estimated energy is badly wrong (constant
	// extrapolation over a power step). A non-degraded build fails the
	// per-row gate; the degraded build classifies the row instead.
	mk := func(deg bool) *Attribution {
		samples := grid(10, [2]float64{1, 100}, [2]float64{1, 400})
		if deg {
			degrade(samples, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20)
		}
		tr := telemetry.NewTracer(1)
		kA := tr.Intern("kernel", "A", "clock_mhz", "energy_j")
		kB := tr.Intern("kernel", "B", "clock_mhz", "energy_j")
		tr.CompleteRef(0, kA, 0, 1, 1410, 100)
		// B claims 700 J but the sensors saw 400 J: 75% row error.
		tr.CompleteRef(0, kB, 1, 1, 1410, 700)
		return Build(tr.Spans(), map[int][]sampler.Sample{0: samples}, Options{RateHz: 10})
	}
	if clean := mk(false); clean.Pass {
		t.Fatalf("control run should fail its gates: %+v", clean)
	}
	a := mk(true)
	if !a.Pass || !a.Degraded {
		t.Fatalf("degraded run = (pass=%v, degraded=%v), want (true, true)", a.Pass, a.Degraded)
	}
}

func TestBuildFlagsSubIntervalSpansNearDegradedTicks(t *testing.T) {
	// A span too short to contain a sample interval is estimated from its
	// neighbor intervals' power. When a neighbor is degraded — e.g. the
	// recovery tick carrying a failover reconciliation backlog — the span
	// rests on estimated data and must be classified even though its own
	// time window is clean. (Found by the faultbench chaos harness: tiny
	// Timestep rows next to recovery ticks showed >1000% error unflagged.)
	samples := grid(10, [2]float64{1, 100}, [2]float64{1, 100}, [2]float64{1, 100})
	series := map[int][]sampler.Sample{0: degrade(samples, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20)}
	tr := telemetry.NewTracer(1)
	k := tr.Intern("kernel", "tiny", "clock_mhz", "energy_j")
	// Entirely inside the clean interval (2.02, 2.08) but adjacent work
	// would borrow interval powers around it; the preceding degraded
	// window sits one interval away from its start estimate at t=2.02
	// (locate -> interval [2.0,2.1), preceding interval (1.9,2.0] is
	// degraded).
	tr.CompleteRef(0, k, 2.02, 0.06, 1410, 6)

	a := Build(tr.Spans(), series, Options{RateHz: 10})
	if len(a.Kernels) != 1 {
		t.Fatalf("kernels = %+v", a.Kernels)
	}
	r := a.Kernels[0]
	if !r.Degraded {
		t.Fatalf("sub-interval span next to a degraded tick not classified: %+v", r)
	}
	if r.DegradedPct > 100+1e-9 {
		t.Fatalf("DegradedPct = %g, must stay a fraction of the span", r.DegradedPct)
	}
	// A span with interior samples well clear of the degraded window
	// stays clean (the padding must not over-flag the exact path).
	tr2 := telemetry.NewTracer(1)
	k2 := tr2.Intern("kernel", "wide", "clock_mhz", "energy_j")
	tr2.CompleteRef(0, k2, 2.3, 0.5, 1410, 50)
	samples2 := grid(10, [2]float64{1, 100}, [2]float64{1, 100}, [2]float64{1, 100})
	series2 := map[int][]sampler.Sample{0: degrade(samples2, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20)}
	b := Build(tr2.Spans(), series2, Options{RateHz: 10})
	if len(b.Kernels) != 1 || b.Kernels[0].Degraded {
		t.Fatalf("interior-interval span over clean ticks flagged: %+v", b.Kernels)
	}
}

func TestBuildReportsAchievedClock(t *testing.T) {
	// Two spans of one kernel at different achieved clocks: ClockMHz must
	// be the span-time-weighted mean, and TopKernels must preserve it
	// across aggregation.
	series := map[int][]sampler.Sample{0: grid(10, [2]float64{2, 100})}
	tr := telemetry.NewTracer(1)
	k := tr.Intern("kernel", "momentum", "clock_mhz", "energy_j")
	tr.CompleteRef(0, k, 0, 1.5, 801, 150) // clamped window
	tr.CompleteRef(0, k, 1.5, 0.5, 1410, 50)

	a := Build(tr.Spans(), series, Options{RateHz: 10})
	want := (801*1.5 + 1410*0.5) / 2.0
	if len(a.Kernels) != 1 || math.Abs(a.Kernels[0].ClockMHz-want) > 1e-9 {
		t.Fatalf("ClockMHz = %+v, want %g", a.Kernels, want)
	}
	top := a.TopKernels(5)
	if len(top) != 1 || math.Abs(top[0].ClockMHz-want) > 1e-9 {
		t.Fatalf("TopKernels ClockMHz = %+v, want %g", top, want)
	}
}

func TestTopKernelsSurvivesJSONRoundTrip(t *testing.T) {
	// energyreport re-aggregates rows parsed from disk, where the scratch
	// accumulators are gone: Degraded, DegradedPct and ClockMHz must be
	// rebuilt from the exported fields.
	samples := grid(10, [2]float64{1, 200}, [2]float64{1, 50})
	series := map[int][]sampler.Sample{0: degrade(samples, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20)}
	tr := telemetry.NewTracer(1)
	k := tr.Intern("kernel", "A", "clock_mhz", "energy_j")
	tr.CompleteRef(0, k, 0, 1, 1005, 200)
	tr.CompleteRef(0, k, 1, 1, 1005, 50)
	a := Build(tr.Spans(), series, Options{RateHz: 10})

	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Attribution
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	orig, loaded := a.TopKernels(0), back.TopKernels(0)
	if len(orig) != 1 || len(loaded) != 1 {
		t.Fatalf("rows: %d vs %d", len(orig), len(loaded))
	}
	o, l := orig[0], loaded[0]
	if !l.Degraded || math.Abs(l.DegradedPct-o.DegradedPct) > 1e-9 {
		t.Fatalf("degradation lost in round trip: %+v vs %+v", l, o)
	}
	if math.Abs(l.ClockMHz-o.ClockMHz) > 1e-9 {
		t.Fatalf("achieved clock lost in round trip: %g vs %g", l.ClockMHz, o.ClockMHz)
	}
}

func TestValidationMarkDegraded(t *testing.T) {
	v := NewValidation(1000, 2)
	v.Add("sampled-sensors", 1100, false) // 10% off: would fail
	v.Add("slurm-consumed", 1005, false)  // fine
	if v.Pass {
		t.Fatal("10% source should fail the gate")
	}
	v.MarkDegraded("sampled-sensors")
	if !v.Pass {
		t.Fatal("degraded source must stop gating")
	}
	s, ok := v.Get("sampled-sensors")
	if !ok || !s.Degraded || !s.Pass {
		t.Fatalf("source = %+v", s)
	}
	sum := v.Summary()
	if !strings.Contains(sum, "PASS") || !strings.Contains(sum, "1 degraded") {
		t.Fatalf("summary = %q", sum)
	}
	if !strings.Contains(sum, "1/1") {
		t.Fatalf("summary should count only the remaining gating source: %q", sum)
	}
}

func TestValidationMarkDegradedKeepsRealFailures(t *testing.T) {
	v := NewValidation(1000, 2)
	v.Add("sampled-sensors", 1100, false)
	v.Add("slurm-consumed", 1300, false)
	v.MarkDegraded("sampled-sensors")
	if v.Pass {
		t.Fatal("non-degraded failing source must still fail the gate")
	}
}
