// Package sfc implements the space-filling-curve machinery that underlies
// cornerstone-style octrees: 63-bit Morton (Z-order) keys over a cubic
// bounding box, with 21 bits of resolution per dimension.
//
// Keys order particles along the Z-curve; contiguous key ranges correspond to
// octree nodes, which is what makes SFC-based domain decomposition cheap.
package sfc

import (
	"fmt"
	"math"
)

// BitsPerDim is the per-dimension key resolution. 3*21 = 63 bits fit a
// non-negative int64/uint64 key with one spare bit.
const BitsPerDim = 21

// MaxCoord is the largest integer coordinate representable per dimension.
const MaxCoord = (1 << BitsPerDim) - 1

// MaxLevel is the deepest octree subdivision level a key can address.
const MaxLevel = BitsPerDim

// Key is a 63-bit Morton code.
type Key uint64

// KeyEnd is one past the largest valid key; [0, KeyEnd) spans the whole box.
const KeyEnd Key = 1 << (3 * BitsPerDim)

// Box is an axis-aligned cuboid domain. SFC keys are computed after
// normalizing positions into the unit cube spanned by the box, so slightly
// anisotropic domains are supported (each dimension is scaled independently).
type Box struct {
	Xmin, Ymin, Zmin float64
	Xmax, Ymax, Zmax float64
	// PBC enables periodic boundary conditions per dimension.
	PBCx, PBCy, PBCz bool
}

// NewCube returns a cubic box [lo, hi]^3 without periodicity.
func NewCube(lo, hi float64) Box {
	return Box{Xmin: lo, Ymin: lo, Zmin: lo, Xmax: hi, Ymax: hi, Zmax: hi}
}

// NewPeriodicCube returns a cubic box [lo, hi]^3 periodic in all dimensions.
func NewPeriodicCube(lo, hi float64) Box {
	b := NewCube(lo, hi)
	b.PBCx, b.PBCy, b.PBCz = true, true, true
	return b
}

// Lx returns the box extent in x.
func (b Box) Lx() float64 { return b.Xmax - b.Xmin }

// Ly returns the box extent in y.
func (b Box) Ly() float64 { return b.Ymax - b.Ymin }

// Lz returns the box extent in z.
func (b Box) Lz() float64 { return b.Zmax - b.Zmin }

// Volume returns the box volume.
func (b Box) Volume() float64 { return b.Lx() * b.Ly() * b.Lz() }

// MinExtent returns the smallest box dimension.
func (b Box) MinExtent() float64 {
	return math.Min(b.Lx(), math.Min(b.Ly(), b.Lz()))
}

// Wrap maps a coordinate into the box under periodic boundaries, leaving
// non-periodic dimensions clamped to the box.
func (b Box) Wrap(x, y, z float64) (float64, float64, float64) {
	x = wrap1(x, b.Xmin, b.Xmax, b.PBCx)
	y = wrap1(y, b.Ymin, b.Ymax, b.PBCy)
	z = wrap1(z, b.Zmin, b.Zmax, b.PBCz)
	return x, y, z
}

func wrap1(v, lo, hi float64, periodic bool) float64 {
	l := hi - lo
	if periodic {
		for v < lo {
			v += l
		}
		for v >= hi {
			v -= l
		}
		return v
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// spreadBits inserts two zero bits between each of the low 21 bits of x.
func spreadBits(x uint64) uint64 {
	x &= 0x1FFFFF // 21 bits
	x = (x | x<<32) & 0x1F00000000FFFF
	x = (x | x<<16) & 0x1F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compactBits is the inverse of spreadBits.
func compactBits(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10C30C30C30C30C3
	x = (x ^ x>>4) & 0x100F00F00F00F00F
	x = (x ^ x>>8) & 0x1F0000FF0000FF
	x = (x ^ x>>16) & 0x1F00000000FFFF
	x = (x ^ x>>32) & 0x1FFFFF
	return x
}

// Encode3D interleaves three 21-bit integer coordinates into a Morton key.
func Encode3D(ix, iy, iz uint32) Key {
	return Key(spreadBits(uint64(ix))<<2 | spreadBits(uint64(iy))<<1 | spreadBits(uint64(iz)))
}

// Decode3D recovers the integer coordinates from a Morton key.
func Decode3D(k Key) (ix, iy, iz uint32) {
	ix = uint32(compactBits(uint64(k) >> 2))
	iy = uint32(compactBits(uint64(k) >> 1))
	iz = uint32(compactBits(uint64(k)))
	return
}

// Coord quantizes a position in the box to integer grid coordinates.
func (b Box) Coord(x, y, z float64) (uint32, uint32, uint32) {
	return quantize(x, b.Xmin, b.Xmax),
		quantize(y, b.Ymin, b.Ymax),
		quantize(z, b.Zmin, b.Zmax)
}

func quantize(v, lo, hi float64) uint32 {
	t := (v - lo) / (hi - lo)
	if t < 0 {
		t = 0
	}
	i := int64(t * (MaxCoord + 1))
	if i > MaxCoord {
		i = MaxCoord
	}
	return uint32(i)
}

// KeyOf computes the Morton key of a position in the box.
func (b Box) KeyOf(x, y, z float64) Key {
	ix, iy, iz := b.Coord(x, y, z)
	return Encode3D(ix, iy, iz)
}

// CenterOf returns the position of a key's grid cell center within the box.
func (b Box) CenterOf(k Key) (x, y, z float64) {
	ix, iy, iz := Decode3D(k)
	cell := 1.0 / (MaxCoord + 1)
	x = b.Xmin + (float64(ix)+0.5)*cell*b.Lx()
	y = b.Ymin + (float64(iy)+0.5)*cell*b.Ly()
	z = b.Zmin + (float64(iz)+0.5)*cell*b.Lz()
	return
}

// NodeRange returns the half-open key range [start, end) covered by the
// octree node at the given level that contains key k. Level 0 is the root.
func NodeRange(k Key, level int) (Key, Key) {
	if level < 0 || level > MaxLevel {
		panic(fmt.Sprintf("sfc: invalid level %d", level))
	}
	shift := uint(3 * (MaxLevel - level))
	start := k >> shift << shift
	return start, start + 1<<shift
}

// NodeSize returns the number of leaf-resolution keys inside one node at the
// given level.
func NodeSize(level int) Key {
	return 1 << uint(3*(MaxLevel-level))
}

// TreeLevel returns the octree level of a node whose key range length is
// count, or -1 if count is not a power-of-eight node size.
func TreeLevel(count Key) int {
	for l := 0; l <= MaxLevel; l++ {
		if NodeSize(l) == count {
			return l
		}
	}
	return -1
}

// CommonPrefixLevel returns the deepest level at which a and b fall into the
// same octree node.
func CommonPrefixLevel(a, b Key) int {
	x := uint64(a ^ b)
	if x == 0 {
		return MaxLevel
	}
	// Highest differing bit index (0..62).
	hi := 62
	for hi >= 0 && x>>uint(hi)&1 == 0 {
		hi--
	}
	return MaxLevel - hi/3 - 1
}
