package sfc

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundtrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		ix, iy, iz := x&MaxCoord, y&MaxCoord, z&MaxCoord
		gx, gy, gz := Decode3D(Encode3D(ix, iy, iz))
		return gx == ix && gy == iy && gz == iz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeCorners(t *testing.T) {
	if Encode3D(0, 0, 0) != 0 {
		t.Error("origin key not 0")
	}
	k := Encode3D(MaxCoord, MaxCoord, MaxCoord)
	if k != KeyEnd-1 {
		t.Errorf("max corner key = %d, want %d", k, KeyEnd-1)
	}
}

func TestKeyOfWithinBounds(t *testing.T) {
	b := NewCube(0, 1)
	f := func(x, y, z float64) bool {
		// Wrap arbitrary floats into [0, 1).
		wx, wy, wz := b.Wrap(x, y, z)
		k := b.KeyOf(wx, wy, wz)
		return k < KeyEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeEdges(t *testing.T) {
	b := NewCube(0, 1)
	ix, iy, iz := b.Coord(0, 0.5, 1.0)
	if ix != 0 {
		t.Errorf("coord at 0 = %d", ix)
	}
	if iz != MaxCoord {
		t.Errorf("coord at max edge = %d, want %d", iz, MaxCoord)
	}
	if iy != MaxCoord/2 && iy != MaxCoord/2+1 {
		t.Errorf("coord at middle = %d", iy)
	}
	// Out-of-box coordinates clamp rather than wrap at quantization.
	ox, _, _ := b.Coord(-5, 0, 0)
	if ox != 0 {
		t.Errorf("below-box coord = %d, want 0", ox)
	}
}

func TestCenterOfRoundtrip(t *testing.T) {
	b := NewCube(-1, 3)
	x, y, z := 0.123, 1.9, 2.5
	k := b.KeyOf(x, y, z)
	cx, cy, cz := b.CenterOf(k)
	cell := 4.0 / (1 << BitsPerDim)
	if dx := cx - x; dx > cell || dx < -cell {
		t.Errorf("center x %v too far from %v", cx, x)
	}
	if dy := cy - y; dy > cell || dy < -cell {
		t.Errorf("center y %v too far from %v", cy, y)
	}
	if dz := cz - z; dz > cell || dz < -cell {
		t.Errorf("center z %v too far from %v", cz, z)
	}
}

func TestSpatialLocality(t *testing.T) {
	// Points in the same octant share the top key bits.
	b := NewCube(0, 1)
	k1 := b.KeyOf(0.1, 0.1, 0.1)
	k2 := b.KeyOf(0.2, 0.2, 0.2)
	k3 := b.KeyOf(0.9, 0.9, 0.9)
	if CommonPrefixLevel(k1, k2) < 1 {
		t.Error("nearby points should share at least level 1")
	}
	if CommonPrefixLevel(k1, k3) != 0 {
		t.Error("opposite corners should only share the root")
	}
}

func TestNodeRange(t *testing.T) {
	b := NewCube(0, 1)
	k := b.KeyOf(0.3, 0.7, 0.2)
	for level := 0; level <= 4; level++ {
		start, end := NodeRange(k, level)
		if k < start || k >= end {
			t.Errorf("level %d: key outside its node range", level)
		}
		if end-start != NodeSize(level) {
			t.Errorf("level %d: size %d, want %d", level, end-start, NodeSize(level))
		}
		if start%(end-start) != 0 {
			t.Errorf("level %d: misaligned node start", level)
		}
	}
	s, e := NodeRange(k, 0)
	if s != 0 || e != KeyEnd {
		t.Error("level-0 node should cover the whole space")
	}
}

func TestNodeRangePanicsOnBadLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NodeRange with level -1 did not panic")
		}
	}()
	NodeRange(0, -1)
}

func TestTreeLevel(t *testing.T) {
	for l := 0; l <= MaxLevel; l++ {
		if got := TreeLevel(NodeSize(l)); got != l {
			t.Errorf("TreeLevel(NodeSize(%d)) = %d", l, got)
		}
	}
	if TreeLevel(3) != -1 {
		t.Error("non-power-of-eight size should give -1")
	}
}

func TestCommonPrefixLevelProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		ka := Key(a) % KeyEnd
		kb := Key(b) % KeyEnd
		l := CommonPrefixLevel(ka, kb)
		if l < 0 || l > MaxLevel {
			return false
		}
		// Both keys must be inside the same node at level l.
		sa, ea := NodeRange(ka, l)
		return kb >= sa && kb < ea
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPeriodicWrap(t *testing.T) {
	b := NewPeriodicCube(0, 1)
	x, y, z := b.Wrap(1.25, -0.25, 0.5)
	if x != 0.25 || y != 0.75 || z != 0.5 {
		t.Errorf("Wrap = (%v, %v, %v)", x, y, z)
	}
	// Non-periodic boxes clamp.
	nb := NewCube(0, 1)
	cx, _, _ := nb.Wrap(1.25, 0.5, 0.5)
	if cx != 1 {
		t.Errorf("clamp = %v, want 1", cx)
	}
}

func TestBoxGeometry(t *testing.T) {
	b := Box{Xmin: 0, Xmax: 2, Ymin: -1, Ymax: 1, Zmin: 0, Zmax: 0.5}
	if b.Lx() != 2 || b.Ly() != 2 || b.Lz() != 0.5 {
		t.Error("extent mismatch")
	}
	if b.Volume() != 2 {
		t.Errorf("Volume = %v", b.Volume())
	}
	if b.MinExtent() != 0.5 {
		t.Errorf("MinExtent = %v", b.MinExtent())
	}
}
