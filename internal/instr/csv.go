package instr

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"sphenergy/internal/atomicio"
)

// csvHeader is the column set of the per-function CSV export, the format
// the paper's post-hoc analysis scripts consume.
var csvHeader = []string{
	"rank", "function", "calls", "time_s", "gpu_j", "cpu_j", "mem_j", "other_j", "comm_s",
}

// WriteCSV exports every rank's per-function measurements as CSV rows.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("instr: %w", err)
	}
	for _, rp := range r.Ranks {
		for _, fn := range rp.FunctionNames() {
			st := rp.Get(fn)
			row := []string{
				strconv.Itoa(rp.Rank),
				st.Name,
				strconv.Itoa(st.Calls),
				formatF(st.TimeS),
				formatF(st.GPUJ),
				formatF(st.CPUJ),
				formatF(st.MemJ),
				formatF(st.OtherJ),
				formatF(st.CommS),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("instr: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', 12, 64) }

// WriteCSVFile writes the CSV export to path, atomically.
func (r *Report) WriteCSVFile(path string) error {
	if err := atomicio.WriteFile(path, r.WriteCSV); err != nil {
		return fmt.Errorf("instr: %w", err)
	}
	return nil
}

// ReadCSV parses rows written by WriteCSV back into per-rank profiles.
// Report metadata (system, wall time, device totals) is not part of the
// CSV format; callers needing it should use the JSON report.
func ReadCSV(rd io.Reader) (*Report, error) {
	cr := csv.NewReader(rd)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("instr: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("instr: csv: empty input")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != "rank" {
		return nil, fmt.Errorf("instr: csv: unexpected header %v", rows[0])
	}
	byRank := map[int]*RankProfile{}
	var order []int
	for i, row := range rows[1:] {
		rank, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("instr: csv row %d: bad rank %q", i+1, row[0])
		}
		vals := make([]float64, 6)
		for j := range vals {
			v, err := strconv.ParseFloat(row[3+j], 64)
			if err != nil {
				return nil, fmt.Errorf("instr: csv row %d col %d: %w", i+1, 3+j, err)
			}
			vals[j] = v
		}
		calls, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("instr: csv row %d: bad calls %q", i+1, row[2])
		}
		rp, ok := byRank[rank]
		if !ok {
			rp = NewRankProfile(rank)
			byRank[rank] = rp
			order = append(order, rank)
		}
		rp.Record(row[1], vals[0], vals[1], vals[2], vals[3], vals[4], vals[5])
		// Record counts one call; fix up to the serialized count.
		rp.Get(row[1]).Calls = calls
	}
	out := &Report{}
	for _, rank := range order {
		out.Ranks = append(out.Ranks, byRank[rank])
	}
	return out, nil
}
