package instr

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := &Report{Simulation: "turbulence", System: "CSCS-A100", WallTimeS: 100, Strategy: "baseline"}
	for rank := 0; rank < 2; rank++ {
		p := NewRankProfile(rank)
		p.Record("MomentumEnergy", 40, 8000, 500, 100, 200, 0.5)
		p.Record("XMass", 10, 1500, 120, 30, 60, 0.1)
		p.Record("MomentumEnergy", 42, 8100, 510, 110, 210, 0.6)
		r.Ranks = append(r.Ranks, p)
	}
	r.GPUEnergyJ = 2 * (8000 + 1500 + 8100)
	r.CPUEnergyJ = 2 * (500 + 120 + 510)
	r.MemEnergyJ = 2 * (100 + 30 + 110)
	r.OtherEnergyJ = 2 * (200 + 60 + 210)
	r.TotalEnergyJ = r.GPUEnergyJ + r.CPUEnergyJ + r.MemEnergyJ + r.OtherEnergyJ
	return r
}

func TestRecordAccumulates(t *testing.T) {
	p := NewRankProfile(0)
	p.Record("fn", 1, 10, 1, 0.5, 0.2, 0.1)
	p.Record("fn", 2, 20, 2, 1.0, 0.4, 0.2)
	st := p.Get("fn")
	if st.Calls != 2 {
		t.Errorf("calls = %d", st.Calls)
	}
	if st.TimeS != 3 || st.GPUJ != 30 || st.CPUJ != 3 {
		t.Errorf("accumulation wrong: %+v", st)
	}
	if math.Abs(st.TotalJ()-(30+3+1.5+0.6)) > 1e-12 {
		t.Errorf("TotalJ = %v", st.TotalJ())
	}
}

func TestFunctionOrderPreserved(t *testing.T) {
	p := NewRankProfile(0)
	for _, fn := range []string{"c", "a", "b"} {
		p.Record(fn, 1, 0, 0, 0, 0, 0)
	}
	names := p.FunctionNames()
	if names[0] != "c" || names[1] != "a" || names[2] != "b" {
		t.Errorf("order = %v, want recording order", names)
	}
}

func TestRankTotals(t *testing.T) {
	p := NewRankProfile(0)
	p.Record("a", 1, 10, 0, 0, 0, 0)
	p.Record("b", 4, 30, 0, 0, 0, 0)
	if p.TotalTimeS() != 5 {
		t.Errorf("TotalTimeS = %v", p.TotalTimeS())
	}
	if p.TotalGPUJ() != 40 {
		t.Errorf("TotalGPUJ = %v", p.TotalGPUJ())
	}
}

func TestReportFunctionTotal(t *testing.T) {
	r := sampleReport()
	me := r.FunctionTotal("MomentumEnergy")
	if me.Calls != 4 {
		t.Errorf("calls = %d, want 4 (2 per rank)", me.Calls)
	}
	if math.Abs(me.GPUJ-2*(8000+8100)) > 1e-9 {
		t.Errorf("GPUJ = %v", me.GPUJ)
	}
	missing := r.FunctionTotal("nope")
	if missing.Calls != 0 {
		t.Error("missing function should aggregate to zero")
	}
}

func TestReportFunctionNamesUnion(t *testing.T) {
	r := sampleReport()
	r.Ranks[1].Record("Gravity", 1, 5, 0, 0, 0, 0)
	names := r.FunctionNames()
	if names[0] != "MomentumEnergy" || names[1] != "XMass" {
		t.Errorf("order = %v", names)
	}
	found := false
	for _, n := range names {
		if n == "Gravity" {
			found = true
		}
	}
	if !found {
		t.Error("rank-1-only function missing from union")
	}
}

func TestEDP(t *testing.T) {
	r := sampleReport()
	if got := r.EDP(); math.Abs(got-r.TotalEnergyJ*100) > 1e-9 {
		t.Errorf("EDP = %v", got)
	}
}

func TestJSONRoundtrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Simulation != r.Simulation || back.System != r.System {
		t.Error("metadata lost")
	}
	if len(back.Ranks) != 2 {
		t.Fatalf("ranks lost: %d", len(back.Ranks))
	}
	me := back.FunctionTotal("MomentumEnergy")
	if math.Abs(me.GPUJ-2*(8000+8100)) > 1e-9 {
		t.Errorf("roundtrip GPUJ = %v", me.GPUJ)
	}
	if math.Abs(back.TotalEnergyJ-r.TotalEnergyJ) > 1e-9 {
		t.Error("total energy lost")
	}
}

func TestFileRoundtrip(t *testing.T) {
	r := sampleReport()
	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.WallTimeS != 100 {
		t.Errorf("wall time = %v", back.WallTimeS)
	}
}

func TestConcurrentRecording(t *testing.T) {
	p := NewRankProfile(0)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				p.Record("fn", 1, 1, 0, 0, 0, 0)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := p.Get("fn"); st.Calls != 8000 {
		t.Errorf("concurrent calls = %d, want 8000", st.Calls)
	}
}

func TestSeriesRecording(t *testing.T) {
	p := NewRankProfile(0)
	p.SeriesEnabled = true
	for _, v := range []float64{1, 2, 3, 2} {
		p.Record("fn", v, 0, 0, 0, 0, 0)
	}
	n, mean, relStd, ok := p.SeriesStats("fn")
	if !ok || n != 4 {
		t.Fatalf("series n=%d ok=%v", n, ok)
	}
	if math.Abs(mean-2) > 1e-12 {
		t.Errorf("mean %v", mean)
	}
	if relStd <= 0 || relStd > 1 {
		t.Errorf("relStd %v", relStd)
	}
	// Disabled profiles record no series.
	q := NewRankProfile(1)
	q.Record("fn", 1, 0, 0, 0, 0, 0)
	if _, _, _, ok := q.SeriesStats("fn"); ok {
		t.Error("series recorded while disabled")
	}
}

func TestSeriesSurvivesJSON(t *testing.T) {
	p := NewRankProfile(0)
	p.SeriesEnabled = true
	p.Record("fn", 1.5, 0, 0, 0, 0, 0)
	r := &Report{Ranks: []*RankProfile{p}}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Ranks[0].Series["fn"]; len(got) != 1 || got[0] != 1.5 {
		t.Errorf("series lost: %v", got)
	}
}

func TestRoundtripPreservesFunctionOrder(t *testing.T) {
	// Deliberately non-alphabetical recording order: sorting map keys on
	// load would come back as [density, iad, momentumEnergy].
	p := NewRankProfile(0)
	for _, fn := range []string{"momentumEnergy", "density", "iad"} {
		p.Record(fn, 1, 10, 1, 1, 1, 0.1)
	}
	r := &Report{Simulation: "turbulence", Ranks: []*RankProfile{p}}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"function_order"`)) {
		t.Error("serialized report has no function_order field")
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Ranks[0].FunctionNames()
	want := []string{"momentumEnergy", "density", "iad"}
	if len(got) != len(want) {
		t.Fatalf("FunctionNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FunctionNames = %v, want %v (first-recorded order lost)", got, want)
		}
	}

	// A second round trip must be stable.
	buf.Reset()
	if err := back.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Ranks[0].FunctionNames(); got[0] != "momentumEnergy" || got[2] != "iad" {
		t.Errorf("second round trip reordered: %v", got)
	}
}

func TestReadReportWithoutOrderFallsBackSorted(t *testing.T) {
	// Reports from before function_order existed (or hand-edited ones)
	// carry only the map; names come back sorted, and stale order entries
	// are dropped.
	raw := `{"ranks":[{"rank":0,
		"function_order":["iad","ghost"],
		"functions":{
			"iad":{"name":"iad","calls":1,"time_s":1},
			"density":{"name":"density","calls":1,"time_s":2},
			"momentumEnergy":{"name":"momentumEnergy","calls":1,"time_s":3}}}]}`
	back, err := ReadReport(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got := back.Ranks[0].FunctionNames()
	want := []string{"iad", "density", "momentumEnergy"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FunctionNames = %v, want %v (listed first, unlisted sorted, stale dropped)", got, want)
		}
	}
}
