// Package instr implements SPH-EXA's low-overhead profiling hooks: named
// regions wrapping each simulation function, accumulating per-rank,
// per-function time and per-device energy. Measurements are kept in memory
// during the run and serialized to a report file at the end — the paper's
// design for avoiding perturbation of the simulation (§III-B).
package instr

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"sphenergy/internal/atomicio"
	"sphenergy/internal/attrib"
	"sphenergy/internal/faults"
)

// FunctionStats accumulates measurements for one instrumented function on
// one rank.
type FunctionStats struct {
	Name   string  `json:"name"`
	Calls  int     `json:"calls"`
	TimeS  float64 `json:"time_s"`
	GPUJ   float64 `json:"gpu_j"`
	CPUJ   float64 `json:"cpu_j"`
	MemJ   float64 `json:"mem_j"`
	OtherJ float64 `json:"other_j"`
	CommS  float64 `json:"comm_s"`
}

// TotalJ returns the function's total energy across devices.
func (f FunctionStats) TotalJ() float64 { return f.GPUJ + f.CPUJ + f.MemJ + f.OtherJ }

// RankProfile holds all function stats of one MPI rank. Serialization goes
// through MarshalJSON/UnmarshalJSON, which carry the first-recorded
// function order explicitly so it survives a write/read round trip.
type RankProfile struct {
	Rank      int
	Functions map[string]*FunctionStats
	// Series, when enabled, records the per-call time of every function in
	// call order — the per-step timeline behind variability analysis and
	// trace alignment.
	Series map[string][]float64
	// SeriesEnabled turns on per-call recording.
	SeriesEnabled bool
	order         []string
	mu            sync.Mutex
}

// rankProfileJSON is the wire form of RankProfile: the same data plus the
// recording order, which a Go map cannot preserve on its own.
type rankProfileJSON struct {
	Rank          int                       `json:"rank"`
	FunctionOrder []string                  `json:"function_order,omitempty"`
	Functions     map[string]*FunctionStats `json:"functions"`
	Series        map[string][]float64      `json:"series,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p *RankProfile) MarshalJSON() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return json.Marshal(rankProfileJSON{
		Rank:          p.Rank,
		FunctionOrder: p.order,
		Functions:     p.Functions,
		Series:        p.Series,
	})
}

// UnmarshalJSON implements json.Unmarshaler, restoring the recording order
// from the function_order field. Functions missing from the list (older or
// hand-edited reports) sort after the listed ones; listed names without
// stats are dropped.
func (p *RankProfile) UnmarshalJSON(data []byte) error {
	var aux rankProfileJSON
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Rank = aux.Rank
	p.Functions = aux.Functions
	if p.Functions == nil {
		p.Functions = map[string]*FunctionStats{}
	}
	p.Series = aux.Series
	p.order = p.order[:0]
	seen := map[string]bool{}
	for _, n := range aux.FunctionOrder {
		if _, ok := p.Functions[n]; ok && !seen[n] {
			p.order = append(p.order, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range p.Functions {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	p.order = append(p.order, extra...)
	return nil
}

// NewRankProfile creates an empty profile for a rank.
func NewRankProfile(rank int) *RankProfile {
	return &RankProfile{Rank: rank, Functions: map[string]*FunctionStats{}}
}

// Record adds one region measurement to the profile.
func (p *RankProfile) Record(fn string, timeS, gpuJ, cpuJ, memJ, otherJ, commS float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.Functions[fn]
	if !ok {
		st = &FunctionStats{Name: fn}
		p.Functions[fn] = st
		p.order = append(p.order, fn)
	}
	st.Calls++
	st.TimeS += timeS
	st.GPUJ += gpuJ
	st.CPUJ += cpuJ
	st.MemJ += memJ
	st.OtherJ += otherJ
	st.CommS += commS
	if p.SeriesEnabled {
		if p.Series == nil {
			p.Series = map[string][]float64{}
		}
		p.Series[fn] = append(p.Series[fn], timeS)
	}
}

// SeriesStats summarizes a function's per-call time series: call count,
// mean and relative standard deviation. ok is false when no series was
// recorded.
func (p *RankProfile) SeriesStats(fn string) (n int, mean, relStd float64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.Series[fn]
	if len(s) == 0 {
		return 0, 0, 0, false
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean = sum / float64(len(s))
	var varSum float64
	for _, v := range s {
		d := v - mean
		varSum += d * d
	}
	std := 0.0
	if len(s) > 1 {
		std = varSum / float64(len(s)-1)
	}
	if mean > 0 {
		relStd = math.Sqrt(std) / mean
	}
	return len(s), mean, relStd, true
}

// FunctionNames returns function names in first-recorded order.
func (p *RankProfile) FunctionNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// Get returns the stats of a function (nil if never recorded).
func (p *RankProfile) Get(fn string) *FunctionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Functions[fn]
}

// TotalTimeS sums region time across functions.
func (p *RankProfile) TotalTimeS() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := 0.0
	for _, st := range p.Functions {
		t += st.TimeS
	}
	return t
}

// TotalGPUJ sums GPU energy across functions.
func (p *RankProfile) TotalGPUJ() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := 0.0
	for _, st := range p.Functions {
		t += st.GPUJ
	}
	return t
}

// Report is the gathered result of all ranks — what rank 0 writes to disk
// after the final MPI gather in the paper's workflow.
type Report struct {
	Simulation string         `json:"simulation"`
	System     string         `json:"system"`
	Ranks      []*RankProfile `json:"ranks"`
	// WallTimeS is the job's time-to-solution (max rank clock).
	WallTimeS float64 `json:"wall_time_s"`
	// Strategy names the frequency strategy used for the run.
	Strategy string `json:"strategy"`
	// TotalEnergyJ is whole-allocation energy including idle components.
	TotalEnergyJ float64 `json:"total_energy_j"`
	// Breakdown of allocation energy by device class.
	GPUEnergyJ   float64 `json:"gpu_energy_j"`
	CPUEnergyJ   float64 `json:"cpu_energy_j"`
	MemEnergyJ   float64 `json:"mem_energy_j"`
	OtherEnergyJ float64 `json:"other_energy_j"`
	// Attribution carries the async sampler's span-joined per-kernel and
	// per-function energy/EDP tables when the run sampled power.
	Attribution *attrib.Attribution `json:"attribution,omitempty"`
	// Validation carries the cross-source energy check (model reference vs
	// sampled sensors vs pm_counters vs Slurm accounting) when one was run.
	Validation *attrib.Validation `json:"validation,omitempty"`
	// Faults carries the fault-injection/resilience summary when the run
	// executed under a fault plan.
	Faults *faults.Report `json:"faults,omitempty"`
}

// EDP returns the energy-delay product of the run in J·s.
func (r *Report) EDP() float64 { return r.TotalEnergyJ * r.WallTimeS }

// FunctionTotal aggregates one function's stats across ranks.
func (r *Report) FunctionTotal(fn string) FunctionStats {
	out := FunctionStats{Name: fn}
	for _, rp := range r.Ranks {
		if st := rp.Get(fn); st != nil {
			out.Calls += st.Calls
			out.TimeS += st.TimeS
			out.GPUJ += st.GPUJ
			out.CPUJ += st.CPUJ
			out.MemJ += st.MemJ
			out.OtherJ += st.OtherJ
			out.CommS += st.CommS
		}
	}
	return out
}

// FunctionNames returns the union of function names across ranks, in rank
// 0's recording order with any extras sorted after.
func (r *Report) FunctionNames() []string {
	if len(r.Ranks) == 0 {
		return nil
	}
	names := r.Ranks[0].FunctionNames()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	var extra []string
	for _, rp := range r.Ranks[1:] {
		for _, n := range rp.FunctionNames() {
			if !seen[n] {
				seen[n] = true
				extra = append(extra, n)
			}
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// WriteJSON serializes the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path, atomically (write-temp-then-rename).
func (r *Report) WriteFile(path string) error {
	if err := atomicio.WriteFile(path, r.WriteJSON); err != nil {
		return fmt.Errorf("instr: %w", err)
	}
	return nil
}

// ReadReport parses a report written by WriteFile. Each rank's function
// order is restored by RankProfile.UnmarshalJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("instr: decode report: %w", err)
	}
	return &r, nil
}

// ReadReportFile loads a report from disk.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("instr: %w", err)
	}
	defer f.Close()
	return ReadReport(f)
}
