package instr

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundtrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "rank,function,calls") {
		t.Errorf("header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ranks) != len(r.Ranks) {
		t.Fatalf("ranks %d, want %d", len(back.Ranks), len(r.Ranks))
	}
	for _, fn := range []string{"MomentumEnergy", "XMass"} {
		a := r.FunctionTotal(fn)
		b := back.FunctionTotal(fn)
		if a.Calls != b.Calls {
			t.Errorf("%s calls %d vs %d", fn, a.Calls, b.Calls)
		}
		if math.Abs(a.GPUJ-b.GPUJ) > 1e-9 || math.Abs(a.TimeS-b.TimeS) > 1e-9 {
			t.Errorf("%s values drifted: %+v vs %+v", fn, a, b)
		}
	}
}

func TestCSVFile(t *testing.T) {
	r := sampleReport()
	path := filepath.Join(t.TempDir(), "report.csv")
	if err := r.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("wrong header accepted")
	}
	bad := "rank,function,calls,time_s,gpu_j,cpu_j,mem_j,other_j,comm_s\nx,fn,1,1,1,1,1,1,1\n"
	if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric rank accepted")
	}
}

func TestCSVRowCount(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	r.WriteCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 2 ranks x 2 functions
	if len(lines) != 1+4 {
		t.Errorf("%d lines", len(lines))
	}
}
