package mpisim

import "testing"

type spanLog struct {
	ranks  []int
	names  []string
	starts []float64
	durs   []float64
}

func (s *spanLog) RecordSpan(rank int, category, name string, startS, durS float64) {
	if category != "mpi" {
		panic("unexpected category " + category)
	}
	s.ranks = append(s.ranks, rank)
	s.names = append(s.names, name)
	s.starts = append(s.starts, startS)
	s.durs = append(s.durs, durS)
}

func TestSynchronizeEmitsBarrierWaitSpans(t *testing.T) {
	w := NewWorld(3, DefaultNetwork(3), 1)
	log := &spanLog{}
	w.SetRecorder(log)

	waits := w.Synchronize([]float64{1.0, 3.0, 2.0})
	// The slowest rank (1) waits zero and emits no span; ranks 0 and 2 do.
	if len(log.ranks) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(log.ranks), log)
	}
	for i, r := range log.ranks {
		if log.names[i] != "barrier-wait" {
			t.Errorf("span name %q", log.names[i])
		}
		if log.durs[i] != waits[r] {
			t.Errorf("rank %d span dur %v, want wait %v", r, log.durs[i], waits[r])
		}
		// The wait starts when the rank finished its own work.
		if want := map[int]float64{0: 1.0, 2: 2.0}[r]; log.starts[i] != want {
			t.Errorf("rank %d span start %v, want %v", r, log.starts[i], want)
		}
	}

	w.SetRecorder(nil)
	w.Synchronize([]float64{1, 2, 3})
	if len(log.ranks) != 2 {
		t.Error("removed recorder still called")
	}
}
