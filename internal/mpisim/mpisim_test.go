package mpisim

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestPointToPointCost(t *testing.T) {
	n := DefaultNetwork(4)
	small := n.PointToPointS(8, false)
	big := n.PointToPointS(8e9, false)
	if small <= n.LatencyS/2 {
		t.Error("latency floor missing")
	}
	if big <= small {
		t.Error("bandwidth term missing")
	}
	// Intra-node is faster.
	if n.PointToPointS(1e9, true) >= n.PointToPointS(1e9, false) {
		t.Error("intra-node transfer not faster")
	}
}

func TestAllreduceLogScaling(t *testing.T) {
	n := DefaultNetwork(4)
	if n.AllreduceS(8, 1) != 0 {
		t.Error("single-rank allreduce should be free")
	}
	t2 := n.AllreduceS(8, 2)
	t64 := n.AllreduceS(8, 64)
	if math.Abs(t64/t2-6) > 1e-9 {
		t.Errorf("log2 scaling: 64-rank/2-rank = %v, want 6", t64/t2)
	}
}

func TestAllgatherRingScaling(t *testing.T) {
	n := DefaultNetwork(4)
	t4 := n.AllgatherS(100, 4)
	t8 := n.AllgatherS(100, 8)
	if math.Abs(t8/t4-7.0/3.0) > 1e-9 {
		t.Errorf("ring scaling: %v, want %v", t8/t4, 7.0/3.0)
	}
}

func TestBroadcastLogScaling(t *testing.T) {
	n := DefaultNetwork(4)
	if n.BroadcastS(100, 1) != 0 {
		t.Error("single-rank broadcast should be free")
	}
	if n.BroadcastS(100, 64)/n.BroadcastS(100, 2) != 6 {
		t.Error("broadcast not log2-scaled")
	}
}

func TestReduceScatter(t *testing.T) {
	n := DefaultNetwork(4)
	if n.ReduceScatterS(100, 1) != 0 {
		t.Error("single-rank reduce-scatter should be free")
	}
	if n.ReduceScatterS(1e6, 8) <= n.ReduceScatterS(1e3, 8) {
		t.Error("reduce-scatter not increasing in volume")
	}
	// For the same total payload, reduce-scatter beats allgather+reduce
	// style full exchange: it is at most the allgather cost.
	if n.ReduceScatterS(1e6, 8) > n.AllgatherS(1e6, 8)+1e-12 {
		t.Error("reduce-scatter slower than allgather for the same block size")
	}
}

func TestHaloExchange(t *testing.T) {
	n := DefaultNetwork(4)
	if n.HaloExchangeS(1e6, 1) != 0 {
		t.Error("single rank needs no halo exchange")
	}
	if n.HaloExchangeS(1e8, 16) <= n.HaloExchangeS(1e6, 16) {
		t.Error("halo cost not increasing in volume")
	}
}

func TestWorldClocksAndBarrier(t *testing.T) {
	w := NewWorld(4, DefaultNetwork(4), 1)
	durs := []float64{1.0, 2.0, 0.5, 1.5}
	waits := w.Synchronize(durs)
	// All clocks align to the slowest rank (2.0).
	for r := 0; r < 4; r++ {
		if math.Abs(w.Clock(r)-2.0) > 1e-12 {
			t.Errorf("rank %d clock %v, want 2.0", r, w.Clock(r))
		}
	}
	if math.Abs(waits[1]) > 1e-12 {
		t.Error("slowest rank should not wait")
	}
	if math.Abs(waits[2]-1.5) > 1e-12 {
		t.Errorf("rank 2 wait %v, want 1.5", waits[2])
	}
	if w.MaxClock() != 2.0 {
		t.Errorf("MaxClock = %v", w.MaxClock())
	}
}

func TestAdvanceSingleRank(t *testing.T) {
	w := NewWorld(2, DefaultNetwork(2), 1)
	w.Advance(0, 3)
	if w.Clock(0) != 3 || w.Clock(1) != 0 {
		t.Error("Advance leaked between ranks")
	}
}

func TestExecuteRunsAllRanks(t *testing.T) {
	w := NewWorld(8, DefaultNetwork(4), 1)
	var count int64
	durs := w.Execute(func(rank int) float64 {
		atomic.AddInt64(&count, 1)
		return float64(rank)
	})
	if count != 8 {
		t.Errorf("executed %d ranks", count)
	}
	for r, d := range durs {
		if d != float64(r) {
			t.Errorf("rank %d duration %v", r, d)
		}
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	w1 := NewWorld(4, DefaultNetwork(4), 7)
	w2 := NewWorld(4, DefaultNetwork(4), 7)
	for i := 0; i < 100; i++ {
		for r := 0; r < 4; r++ {
			j1 := w1.Jitter(r, 0.02)
			j2 := w2.Jitter(r, 0.02)
			if j1 != j2 {
				t.Fatal("jitter not deterministic for equal seeds")
			}
			if j1 < 0.98 || j1 > 1.02 {
				t.Fatalf("jitter %v outside ±2%%", j1)
			}
		}
	}
}

func TestJitterDiffersAcrossRanks(t *testing.T) {
	w := NewWorld(2, DefaultNetwork(2), 3)
	same := 0
	for i := 0; i < 50; i++ {
		if w.Jitter(0, 0.05) == w.Jitter(1, 0.05) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("rank jitter streams identical in %d/50 draws", same)
	}
}

func TestSameNode(t *testing.T) {
	w := NewWorld(16, DefaultNetwork(8), 1)
	if !w.SameNode(0, 7) {
		t.Error("ranks 0 and 7 share node 0 with 8 ranks/node")
	}
	if w.SameNode(7, 8) {
		t.Error("ranks 7 and 8 are on different nodes")
	}
}

func TestSynchronizeAccumulates(t *testing.T) {
	w := NewWorld(2, DefaultNetwork(2), 1)
	w.Synchronize([]float64{1, 2})
	w.Synchronize([]float64{3, 1})
	// After two phases: max(1,2)=2, then 2+max(3,1)... clocks advance
	// individually then align: rank0 2+3=5, rank1 2+1=3 -> aligned to 5.
	if w.MaxClock() != 5 {
		t.Errorf("MaxClock = %v, want 5", w.MaxClock())
	}
}
