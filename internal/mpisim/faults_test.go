package mpisim

import (
	"sync"
	"testing"
)

func TestStragglerStretchesPhaseAndNotifies(t *testing.T) {
	w := NewWorld(4, DefaultNetwork(4), 1)
	defer w.Close()
	var mu sync.Mutex
	extras := map[int]float64{}
	w.SetStragglerObserver(func(r int, extraS float64) {
		mu.Lock()
		extras[r] += extraS
		mu.Unlock()
	})
	w.SetRankFaultHook(func(r int, nowS float64) RankFault {
		if r == 2 {
			return RankFault{SlowFactor: 3}
		}
		return RankFault{}
	})
	durs := w.Execute(func(r int) float64 { return 1.0 })
	for r, d := range durs {
		want := 1.0
		if r == 2 {
			want = 3.0
		}
		if d != want {
			t.Fatalf("rank %d dur = %g, want %g", r, d, want)
		}
	}
	if extras[2] != 2.0 || len(extras) != 1 {
		t.Fatalf("observer extras = %v, want rank 2 → 2.0 only", extras)
	}
	waits := w.Synchronize(durs)
	// The straggler pulls the barrier: everyone else waits 2 s.
	for r, wt := range waits {
		want := 2.0
		if r == 2 {
			want = 0.0
		}
		if wt != want {
			t.Fatalf("rank %d wait = %g, want %g", r, wt, want)
		}
	}
}

func TestCrashKillsRankAndFreezesClock(t *testing.T) {
	w := NewWorld(3, DefaultNetwork(3), 1)
	defer w.Close()
	phase := 0
	w.SetRankFaultHook(func(r int, nowS float64) RankFault {
		return RankFault{Crash: r == 1 && phase == 0}
	})
	durs := w.Execute(func(r int) float64 { return 2.0 })
	w.Synchronize(durs)
	if w.Alive(1) || w.AliveCount() != 2 {
		t.Fatalf("rank 1 should be dead (alive=%d)", w.AliveCount())
	}
	fails := w.Failures()
	if len(fails) != 1 || fails[0].Rank != 1 || fails[0].TimeS != 2.0 {
		t.Fatalf("failures = %+v", fails)
	}
	// The dying rank's work still counted toward this phase's barrier.
	if c := w.Clock(0); c != 2.0 {
		t.Fatalf("survivor clock = %g, want 2", c)
	}

	phase = 1
	ran := make([]bool, 3)
	var mu sync.Mutex
	durs = w.Execute(func(r int) float64 {
		mu.Lock()
		ran[r] = true
		mu.Unlock()
		return 1.0
	})
	if ran[1] {
		t.Fatal("dead rank executed a phase")
	}
	if durs[1] != 0 {
		t.Fatalf("dead rank dur = %g, want 0", durs[1])
	}
	w.Synchronize(durs)
	w.Advance(1, 5)
	if c := w.Clock(1); c != 2.0 {
		t.Fatalf("dead rank clock = %g, want frozen at 2", c)
	}
	if c := w.Clock(0); c != 3.0 {
		t.Fatalf("survivor clock = %g, want 3", c)
	}
}

func TestCrashAtBarrierDoesNotPullSurvivors(t *testing.T) {
	// A rank that dies while reporting a long duration still banks its
	// time, but survivors do not wait for it.
	w := NewWorld(2, DefaultNetwork(2), 1)
	defer w.Close()
	w.SetRankFaultHook(func(r int, nowS float64) RankFault {
		if r == 1 {
			return RankFault{SlowFactor: 10, Crash: true}
		}
		return RankFault{}
	})
	durs := w.Execute(func(r int) float64 { return 1.0 })
	waits := w.Synchronize(durs)
	if waits[0] != 0 {
		t.Fatalf("survivor waited %g s for a dead rank", waits[0])
	}
	if c := w.Clock(0); c != 1.0 {
		t.Fatalf("survivor clock = %g, want 1", c)
	}
	if c := w.Clock(1); c != 10.0 {
		t.Fatalf("dead rank clock = %g, want 10 (banked then frozen)", c)
	}
}
