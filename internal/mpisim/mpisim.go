// Package mpisim models the MPI layer of an SPH-EXA run at the fidelity the
// energy accounting needs: a set of ranks bound one-to-one to GPU dies,
// bulk-synchronous execution of the instrumented functions, and an
// analytic communication cost model (latency/bandwidth with log-scaling
// collectives) for the halo exchanges and reductions between them.
//
// Rank work executes concurrently on goroutines (wall-clock parallelism),
// while simulated durations live on each rank's virtual clock; barriers
// synchronize the virtual clocks exactly like MPI collectives synchronize
// real ranks — slower ranks make faster ones wait.
package mpisim

import (
	"fmt"
	"math"
	"sync"

	"sphenergy/internal/rng"
)

// Network is a latency/bandwidth communication cost model, the familiar
// alpha-beta (Hockney) model with logarithmic collective scaling.
type Network struct {
	// LatencyS is the per-message software+wire latency (alpha).
	LatencyS float64
	// BandwidthBs is the per-link bandwidth in bytes/second (1/beta).
	BandwidthBs float64
	// RanksPerNode lets intra-node transfers use the faster fabric.
	RanksPerNode int
	// IntraNodeFactor scales bandwidth up (and latency down) within a node.
	IntraNodeFactor float64
}

// DefaultNetwork returns a Slingshot-class fabric model: 2 µs latency,
// 24 GB/s effective per-rank bandwidth, 8 ranks per node.
func DefaultNetwork(ranksPerNode int) Network {
	return Network{
		LatencyS:        2e-6,
		BandwidthBs:     24e9,
		RanksPerNode:    ranksPerNode,
		IntraNodeFactor: 4,
	}
}

// PointToPointS returns the time to move `bytes` between two ranks.
func (n Network) PointToPointS(bytes float64, sameNode bool) float64 {
	lat, bw := n.LatencyS, n.BandwidthBs
	if sameNode && n.IntraNodeFactor > 1 {
		lat /= n.IntraNodeFactor
		bw *= n.IntraNodeFactor
	}
	return lat + bytes/bw
}

// AllreduceS returns the time for an allreduce of `bytes` across `ranks`
// ranks (recursive doubling: ceil(log2 P) rounds).
func (n Network) AllreduceS(bytes float64, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(ranks)))
	return rounds * (n.LatencyS + bytes/n.BandwidthBs)
}

// AllgatherS returns the time for an allgather where each rank contributes
// `bytesPerRank` (ring algorithm: P-1 rounds of neighbor exchange).
func (n Network) AllgatherS(bytesPerRank float64, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	return float64(ranks-1) * (n.LatencyS + bytesPerRank/n.BandwidthBs)
}

// BroadcastS returns the time for a broadcast of `bytes` from one rank
// (binomial tree: ceil(log2 P) rounds).
func (n Network) BroadcastS(bytes float64, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(ranks)))
	return rounds * (n.LatencyS + bytes/n.BandwidthBs)
}

// ReduceScatterS returns the time for a reduce-scatter where each rank
// ends with `bytesPerRank` of the reduced result (ring: P-1 rounds over
// shrinking blocks ≈ total payload once over the wire).
func (n Network) ReduceScatterS(bytesPerRank float64, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	return float64(ranks-1)*n.LatencyS + bytesPerRank*float64(ranks-1)/n.BandwidthBs
}

// HaloExchangeS returns the time for the nearest-neighbor halo exchange of
// an SPH domain: each rank exchanges `haloBytes` with ~6 SFC-neighbor ranks
// concurrently (bandwidth shared).
func (n Network) HaloExchangeS(haloBytes float64, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	const neighbors = 6
	return n.LatencyS*neighbors + haloBytes*neighbors/n.BandwidthBs
}

// SpanRecorder receives per-rank synchronization spans from the world —
// the collective-wait timeline of the run. telemetry.Tracer implements it;
// keeping the interface local leaves mpisim dependency-free.
type SpanRecorder interface {
	RecordSpan(rank int, category, name string, startS, durS float64)
}

// RankFault describes one injected rank misbehaviour for a phase, the
// local hook shape that keeps mpisim free of a faults dependency (the
// same pattern the sensor back-ends use).
type RankFault struct {
	// SlowFactor > 1 stretches the rank's phase duration (a straggler:
	// thermal throttling, a congested NIC, a noisy neighbour).
	SlowFactor float64
	// Crash kills the rank at the end of the phase; it stops executing
	// and stops participating in barriers.
	Crash bool
}

// RankFaultHook is consulted once per alive rank per Execute phase with
// the rank's virtual clock at phase end.
type RankFaultHook func(rank int, nowS float64) RankFault

// StragglerObserver is notified when injection stretches a rank's phase
// by extra seconds, so callers can keep co-simulated clocks (the rank's
// GPU) aligned with the rank clock.
type StragglerObserver func(rank int, extraS float64)

// RankFailure records one rank death.
type RankFailure struct {
	Rank  int     `json:"rank"`
	TimeS float64 `json:"time_s"`
}

// World is a set of ranks executing in lockstep phases.
type World struct {
	Size    int
	Network Network

	clocks   []float64 // virtual time per rank
	alive    []bool
	failures []RankFailure
	jitter   []*rng.Rand
	recorder SpanRecorder
	fhook    RankFaultHook
	stragObs StragglerObserver
	mu       sync.Mutex

	workers sync.Once
	work    []chan workItem
}

// workItem is one phase dispatched to a rank worker.
type workItem struct {
	fn   func(rank int) float64
	durs []float64
	wg   *sync.WaitGroup
}

// NewWorld creates a world of `size` ranks with per-rank deterministic
// jitter streams derived from seed.
func NewWorld(size int, net Network, seed uint64) *World {
	w := &World{Size: size, Network: net}
	w.clocks = make([]float64, size)
	w.alive = make([]bool, size)
	for i := range w.alive {
		w.alive[i] = true
	}
	root := rng.New(seed)
	for i := 0; i < size; i++ {
		w.jitter = append(w.jitter, root.Split())
	}
	return w
}

// Clock returns rank r's virtual time.
func (w *World) Clock(r int) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.clocks[r]
}

// Advance moves rank r's clock forward by dt seconds. Dead ranks do not
// advance.
func (w *World) Advance(r int, dt float64) {
	w.mu.Lock()
	if w.alive[r] {
		w.clocks[r] += dt
	}
	w.mu.Unlock()
}

// Alive reports whether rank r is still executing.
func (w *World) Alive(r int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive[r]
}

// AliveCount returns the number of surviving ranks.
func (w *World) AliveCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, a := range w.alive {
		if a {
			n++
		}
	}
	return n
}

// Fail kills rank r at virtual time atS: it stops executing phases and
// stops participating in barriers; its clock freezes. Killing a dead
// rank is a no-op.
func (w *World) Fail(r int, atS float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.alive[r] {
		return
	}
	w.alive[r] = false
	w.failures = append(w.failures, RankFailure{Rank: r, TimeS: atS})
}

// Failures returns the rank deaths so far, in order of occurrence.
func (w *World) Failures() []RankFailure {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]RankFailure, len(w.failures))
	copy(out, w.failures)
	return out
}

// SetRankFaultHook installs the per-phase fault hook; nil removes it.
func (w *World) SetRankFaultHook(h RankFaultHook) {
	w.mu.Lock()
	w.fhook = h
	w.mu.Unlock()
}

// SetStragglerObserver installs the straggler observer; nil removes it.
func (w *World) SetStragglerObserver(o StragglerObserver) {
	w.mu.Lock()
	w.stragObs = o
	w.mu.Unlock()
}

// Jitter returns a deterministic multiplicative load-imbalance factor for
// rank r around 1.0 with the given relative spread (e.g. 0.02 for ±2%).
func (w *World) Jitter(r int, spread float64) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return 1 + spread*(2*w.jitter[r].Float64()-1)
}

// Execute runs fn(rank) concurrently on all ranks and returns each rank's
// reported duration. Dead ranks are skipped (duration 0, fn not called).
// With a fault hook installed, each rank's result passes through it:
// stragglers stretch the duration (notifying the observer), crashes kill
// the rank at phase end. It does not touch the virtual clocks; callers
// combine the durations with Synchronize.
//
// Ranks run on persistent worker goroutines (one per rank, started on first
// use), mirroring how MPI ranks are long-lived processes. Reusing workers
// keeps per-phase cost at two channel operations instead of a goroutine
// spawn, and lets each rank's stack grow once and stay grown — fresh
// goroutines would re-pay the stack copy every phase once instrumentation
// deepens the call path. Call Close when done with the world.
func (w *World) Execute(fn func(rank int) float64) []float64 {
	w.workers.Do(w.startWorkers)
	durs := make([]float64, w.Size)
	var wg sync.WaitGroup
	wg.Add(w.Size)
	for r := 0; r < w.Size; r++ {
		w.work[r] <- workItem{fn: fn, durs: durs, wg: &wg}
	}
	wg.Wait()
	return durs
}

// startWorkers launches the per-rank worker goroutines.
func (w *World) startWorkers() {
	w.work = make([]chan workItem, w.Size)
	for r := 0; r < w.Size; r++ {
		ch := make(chan workItem, 1)
		w.work[r] = ch
		go func(r int, ch chan workItem) {
			for it := range ch {
				it.durs[r] = w.phase(r, it.fn)
				it.wg.Done()
			}
		}(r, ch)
	}
}

// phase runs one rank's share of an Execute call, applying injected rank
// faults. It runs on the rank's own worker goroutine, so straggler
// observers may safely touch rank-owned state (its GPU device).
func (w *World) phase(r int, fn func(rank int) float64) float64 {
	w.mu.Lock()
	alive, hook, obs := w.alive[r], w.fhook, w.stragObs
	w.mu.Unlock()
	if !alive {
		return 0
	}
	dur := fn(r)
	if hook == nil {
		return dur
	}
	f := hook(r, w.Clock(r)+dur)
	if f.SlowFactor > 1 {
		extra := dur * (f.SlowFactor - 1)
		dur += extra
		if obs != nil {
			obs(r, extra)
		}
	}
	if f.Crash {
		w.Fail(r, w.Clock(r)+dur)
	}
	return dur
}

// Close stops the rank workers. The world must not Execute afterwards;
// closing a world that never executed is a no-op.
func (w *World) Close() {
	w.workers.Do(func() {}) // never start workers after Close
	for _, ch := range w.work {
		close(ch)
	}
	w.work = nil
}

// SetRecorder installs the synchronization span recorder; nil removes it.
func (w *World) SetRecorder(r SpanRecorder) {
	w.mu.Lock()
	w.recorder = r
	w.mu.Unlock()
}

// Synchronize applies per-rank durations, then aligns all clocks to the
// maximum (a barrier/collective): it returns, per rank, the wait time the
// barrier imposed on it. With a recorder installed, each rank's barrier
// wait is emitted as an "mpi" span starting when the rank finished its own
// work; the recorder runs after the world lock is released.
func (w *World) Synchronize(durs []float64) []float64 {
	w.mu.Lock()
	maxT := 0.0
	for r, d := range durs {
		// A rank that died this phase still banks its duration (it did
		// the work before dying) but no longer pulls the barrier, and
		// dead ranks are not aligned — their clocks stay frozen.
		w.clocks[r] += d
		if w.alive[r] && w.clocks[r] > maxT {
			maxT = w.clocks[r]
		}
	}
	waits := make([]float64, w.Size)
	for r := range w.clocks {
		if !w.alive[r] {
			continue
		}
		waits[r] = maxT - w.clocks[r]
		w.clocks[r] = maxT
	}
	rec := w.recorder
	w.mu.Unlock()
	if rec != nil {
		for r, wt := range waits {
			if wt > 0 {
				// The wait starts when the rank finished its own work.
				rec.RecordSpan(r, "mpi", "barrier-wait", maxT-wt, wt)
			}
		}
	}
	return waits
}

// WorldState is a World's checkpointable state: the virtual clocks,
// liveness, failure history, and the exact position of every per-rank
// jitter stream. A restored world continues the same deterministic
// trajectory the original would have.
type WorldState struct {
	Clocks   []float64
	Alive    []bool
	Failures []RankFailure
	Jitter   [][4]uint64
}

// State captures the world's checkpointable state.
func (w *World) State() WorldState {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WorldState{
		Clocks:   append([]float64(nil), w.clocks...),
		Alive:    append([]bool(nil), w.alive...),
		Failures: append([]RankFailure(nil), w.failures...),
	}
	for _, j := range w.jitter {
		st.Jitter = append(st.Jitter, j.State())
	}
	return st
}

// Restore installs a state captured by State on a world of the same size.
func (w *World) Restore(st WorldState) error {
	if len(st.Clocks) != w.Size || len(st.Alive) != w.Size || len(st.Jitter) != w.Size {
		return fmt.Errorf("mpisim: restore size mismatch: world has %d ranks, state has %d/%d/%d",
			w.Size, len(st.Clocks), len(st.Alive), len(st.Jitter))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	copy(w.clocks, st.Clocks)
	copy(w.alive, st.Alive)
	w.failures = append(w.failures[:0], st.Failures...)
	for i, s := range st.Jitter {
		w.jitter[i].SetState(s)
	}
	return nil
}

// MaxClock returns the furthest-advanced rank clock (the job's wall time).
func (w *World) MaxClock() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := 0.0
	for _, c := range w.clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// SameNode reports whether two ranks share a node under block placement.
func (w *World) SameNode(a, b int) bool {
	rpn := w.Network.RanksPerNode
	if rpn <= 0 {
		return false
	}
	return a/rpn == b/rpn
}
