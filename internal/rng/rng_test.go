package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds matched %d/64 draws", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range(-2,5) = %v", v)
		}
	}
}

func TestIntn(t *testing.T) {
	r := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(21)
	const n = 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(5)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams matched %d/64 draws", same)
	}
}

func TestShuffle(t *testing.T) {
	r := New(8)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 28 {
		t.Errorf("shuffle lost elements: %v", s)
	}
	allSame := true
	for i := range s {
		if s[i] != orig[i] {
			allSame = false
		}
	}
	if allSame {
		t.Error("shuffle left sequence unchanged (astronomically unlikely)")
	}
}
