// Package rng provides a deterministic, splittable pseudo-random number
// generator used for reproducible initial conditions, workload jitter and
// tuner search strategies.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by the xoshiro authors. Unlike math/rand's global state it is
// safe to create one generator per goroutine (ranks, workers) from a root
// seed so that simulations are bitwise reproducible regardless of
// parallelism.
package rng

import "math"

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New creates a generator from a 64-bit seed. Distinct seeds yield
// independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm = splitmix64(&sm)
		r.s[i] = sm
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child generator. The parent advances by one
// draw; the child is seeded from that draw, so repeated Split calls produce
// distinct streams.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// State returns the generator's internal state, for checkpointing. A
// generator restored with SetState continues the exact same stream.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a state captured by State. The all-zero state is
// invalid for xoshiro and is replaced by the same fallback New uses.
func (r *Rand) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9E3779B97F4A7C15
	}
	r.s = s
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate using the Box–Muller transform.
func (r *Rand) Norm() float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the n elements addressed by swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
