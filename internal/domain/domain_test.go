package domain

import (
	"math"
	"testing"

	"sphenergy/internal/rng"
	"sphenergy/internal/sfc"
	"sphenergy/internal/sph"
)

// scatter builds numRanks particle sets with positions initially assigned
// round-robin (i.e., in the wrong domains).
func scatter(numRanks, perRank int, seed uint64) (sfc.Box, []*sph.Particles) {
	box := sfc.NewPeriodicCube(0, 1)
	r := rng.New(seed)
	ranks := make([]*sph.Particles, numRanks)
	for i := range ranks {
		p := sph.NewParticles(perRank)
		for j := 0; j < perRank; j++ {
			p.X[j] = r.Float64()
			p.Y[j] = r.Float64()
			p.Z[j] = r.Float64()
			p.M[j] = 1
			p.H[j] = 0.05
			p.U[j] = 1
		}
		ranks[i] = p
	}
	return box, ranks
}

func TestSortByKeyOrdersKeys(t *testing.T) {
	box, ranks := scatter(1, 500, 1)
	d := New(box, 1, 32)
	d.SortByKey(ranks[0])
	p := ranks[0]
	for i := 1; i < p.N; i++ {
		if p.Keys[i] < p.Keys[i-1] {
			t.Fatalf("keys not sorted at %d", i)
		}
	}
	// Keys match recomputed keys from positions (fields moved together).
	for i := 0; i < p.N; i++ {
		if p.Keys[i] != box.KeyOf(p.X[i], p.Y[i], p.Z[i]) {
			t.Fatalf("key/position mismatch at %d (Reorder broke field consistency)", i)
		}
	}
}

func TestSyncConservesParticles(t *testing.T) {
	box, ranks := scatter(4, 300, 2)
	d := New(box, 4, 32)
	out, moved, err := d.Sync(ranks)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range out {
		total += p.N
	}
	if total != 4*300 {
		t.Fatalf("particle count changed: %d", total)
	}
	if moved == 0 {
		t.Error("round-robin placement should force migration")
	}
	// Total mass conserved.
	mass := 0.0
	for _, p := range out {
		for i := 0; i < p.N; i++ {
			mass += p.M[i]
		}
	}
	if math.Abs(mass-1200) > 1e-9 {
		t.Errorf("mass %v, want 1200", mass)
	}
}

func TestSyncPlacesParticlesInOwnedRanges(t *testing.T) {
	box, ranks := scatter(4, 300, 3)
	d := New(box, 4, 32)
	out, _, err := d.Sync(ranks)
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range out {
		for i := 0; i < p.N; i++ {
			if !d.Ranges[r].Contains(p.Keys[i]) {
				t.Fatalf("rank %d holds foreign particle with key %d", r, p.Keys[i])
			}
		}
	}
}

func TestSyncBalancesLoad(t *testing.T) {
	box, ranks := scatter(8, 500, 4)
	d := New(box, 8, 32)
	out, _, err := d.Sync(ranks)
	if err != nil {
		t.Fatal(err)
	}
	if imb := LoadImbalance(out); imb > 1.5 {
		t.Errorf("load imbalance %v after sync, want < 1.5", imb)
	}
}

func TestSecondSyncMovesNothing(t *testing.T) {
	box, ranks := scatter(4, 300, 5)
	d := New(box, 4, 32)
	out, _, err := d.Sync(ranks)
	if err != nil {
		t.Fatal(err)
	}
	// Particles have not moved, so a second sync migrates few-to-none
	// (repartitioning may shift a boundary leaf).
	_, moved, err := d.Sync(out)
	if err != nil {
		t.Fatal(err)
	}
	if moved > 30 {
		t.Errorf("idempotent sync moved %d particles", moved)
	}
}

func TestHaloExchange(t *testing.T) {
	box, ranks := scatter(4, 500, 6)
	d := New(box, 4, 64)
	out, _, err := d.Sync(ranks)
	if err != nil {
		t.Fatal(err)
	}
	const radius = 0.1
	ext, nHalo, err := d.HaloExchange(out, 1, radius)
	if err != nil {
		t.Fatal(err)
	}
	if nHalo == 0 {
		t.Fatal("no halo particles for an interior rank")
	}
	if ext.N != out[1].N+nHalo {
		t.Errorf("extended set size %d, want %d", ext.N, out[1].N+nHalo)
	}
	// Halo copies are foreign.
	for i := out[1].N; i < ext.N; i++ {
		if d.Ranges[1].Contains(ext.Keys[i]) {
			t.Fatalf("halo particle %d belongs to the rank itself", i)
		}
	}
	// Every foreign particle near the rank's own particles appears in the
	// halo: cross-check against a brute-force distance test.
	missing := 0
	for or, p := range out {
		if or == 1 {
			continue
		}
		for i := 0; i < p.N; i++ {
			// Distance from any own particle.
			near := false
			for j := 0; j < out[1].N && !near; j++ {
				dx := wrapDist(p.X[i]-out[1].X[j], 1)
				dy := wrapDist(p.Y[i]-out[1].Y[j], 1)
				dz := wrapDist(p.Z[i]-out[1].Z[j], 1)
				if dx*dx+dy*dy+dz*dz < radius*radius {
					near = true
				}
			}
			if !near {
				continue
			}
			found := false
			for k := out[1].N; k < ext.N; k++ {
				if ext.Keys[k] == p.Keys[i] && ext.X[k] == p.X[i] {
					found = true
					break
				}
			}
			if !found {
				missing++
			}
		}
	}
	if missing > 0 {
		t.Errorf("%d nearby foreign particles missing from the halo", missing)
	}
}

func wrapDist(d, l float64) float64 {
	if d > l/2 {
		return d - l
	}
	if d < -l/2 {
		return d + l
	}
	return d
}

func TestErrorsBeforeDecompose(t *testing.T) {
	box, ranks := scatter(2, 10, 7)
	d := New(box, 2, 32)
	if _, _, err := d.Migrate(ranks); err == nil {
		t.Error("Migrate before Decompose accepted")
	}
	if _, _, err := d.HaloExchange(ranks, 0, 0.1); err == nil {
		t.Error("HaloExchange before Decompose accepted")
	}
}

func TestMigrateRankCountMismatch(t *testing.T) {
	box, ranks := scatter(2, 10, 8)
	d := New(box, 3, 32)
	for _, p := range ranks {
		d.SortByKey(p)
	}
	d.Decompose(ranks)
	if _, _, err := d.Migrate(ranks); err == nil {
		t.Error("mismatched rank count accepted")
	}
}

func TestLoadImbalanceMetric(t *testing.T) {
	if LoadImbalance(nil) != 1 {
		t.Error("empty imbalance")
	}
	a := sph.NewParticles(100)
	b := sph.NewParticles(300)
	if got := LoadImbalance([]*sph.Particles{a, b}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("imbalance %v, want 1.5", got)
	}
}
