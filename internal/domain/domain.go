// Package domain implements the distributed-domain layer of the SPH solver:
// the DomainDecompAndSync step that the paper instruments. It combines the
// cornerstone octree with SFC partitioning to (1) keep every rank's
// particles sorted along the space-filling curve, (2) migrate particles
// whose keys left the rank's assignment, and (3) assemble halo copies of
// remote particles within the interaction radius.
//
// The implementation is an in-process multi-rank driver (ranks exchange
// slices directly); the communication volumes it produces are what the
// energy model's CommDomainSync/CommHalo costs represent.
package domain

import (
	"fmt"
	"sort"

	"sphenergy/internal/cornerstone"
	"sphenergy/internal/sfc"
	"sphenergy/internal/sph"
)

// Domain is the decomposition state shared by all ranks of a run.
type Domain struct {
	Box        sfc.Box
	NumRanks   int
	BucketSize int

	Tree   cornerstone.Tree
	Counts []int
	Ranges []cornerstone.KeyRange
}

// New creates a domain decomposition driver.
func New(box sfc.Box, numRanks, bucketSize int) *Domain {
	if numRanks < 1 {
		panic("domain: numRanks must be >= 1")
	}
	if bucketSize < 1 {
		bucketSize = 64
	}
	return &Domain{Box: box, NumRanks: numRanks, BucketSize: bucketSize}
}

// computeKeys fills p.Keys from current positions.
func (d *Domain) computeKeys(p *sph.Particles) {
	for i := 0; i < p.N; i++ {
		p.Keys[i] = d.Box.KeyOf(p.X[i], p.Y[i], p.Z[i])
	}
}

// SortByKey orders a rank's particles along the SFC — the data layout both
// the GPU kernels and the tree build rely on.
func (d *Domain) SortByKey(p *sph.Particles) {
	d.computeKeys(p)
	perm := make([]int, p.N)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return p.Keys[perm[a]] < p.Keys[perm[b]] })
	p.Reorder(perm)
}

// Decompose rebuilds the global tree and rank assignment from all ranks'
// (sorted) keys. In a real MPI run the counts come from an allreduce; here
// the per-rank key slices are combined directly.
func (d *Domain) Decompose(ranks []*sph.Particles) {
	var all []sfc.Key
	for _, p := range ranks {
		all = append(all, p.Keys[:p.N]...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	d.Tree = cornerstone.Build(all, d.BucketSize)
	d.Counts = d.Tree.NodeCounts(all)
	d.Ranges = cornerstone.Partition(d.Tree, d.Counts, d.NumRanks)
}

// Migrate moves particles to the ranks that own their keys, returning the
// new per-rank particle sets and the number of particles that moved (the
// CommDomainSync volume).
func (d *Domain) Migrate(ranks []*sph.Particles) ([]*sph.Particles, int, error) {
	if len(ranks) != d.NumRanks {
		return nil, 0, fmt.Errorf("domain: %d particle sets for %d ranks", len(ranks), d.NumRanks)
	}
	if d.Ranges == nil {
		return nil, 0, fmt.Errorf("domain: Decompose must run before Migrate")
	}
	// Collect per-destination index lists.
	type src struct {
		rank, idx int
	}
	dest := make([][]src, d.NumRanks)
	moved := 0
	for r, p := range ranks {
		for i := 0; i < p.N; i++ {
			to := cornerstone.RankOf(d.Ranges, p.Keys[i])
			dest[to] = append(dest[to], src{r, i})
			if to != r {
				moved++
			}
		}
	}
	out := make([]*sph.Particles, d.NumRanks)
	for r := range out {
		np := sph.NewParticles(len(dest[r]))
		for j, s := range dest[r] {
			copyParticle(np, j, ranks[s.rank], s.idx)
		}
		out[r] = np
	}
	return out, moved, nil
}

// HaloExchange assembles, for rank r, a particle set extended with halo
// copies of remote particles within `radius` of r's domain. Returned halo
// indices start at ranks[r].N.
func (d *Domain) HaloExchange(ranks []*sph.Particles, r int, radius float64) (*sph.Particles, int, error) {
	if d.Ranges == nil {
		return nil, 0, fmt.Errorf("domain: Decompose must run before HaloExchange")
	}
	haloLeaves := cornerstone.Halos(d.Tree, d.Box, d.Ranges[r], radius)
	// Key ranges of halo leaves, merged for binary search.
	type kr struct{ lo, hi sfc.Key }
	var wanted []kr
	for _, leaf := range haloLeaves {
		lo, hi := d.Tree.Leaf(leaf)
		wanted = append(wanted, kr{lo, hi})
	}
	inHalo := func(k sfc.Key) bool {
		i := sort.Search(len(wanted), func(j int) bool { return wanted[j].hi > k })
		return i < len(wanted) && k >= wanted[i].lo
	}
	// Count halo particles on other ranks.
	var haloSrc []struct{ rank, idx int }
	for or, p := range ranks {
		if or == r {
			continue
		}
		for i := 0; i < p.N; i++ {
			if inHalo(p.Keys[i]) {
				haloSrc = append(haloSrc, struct{ rank, idx int }{or, i})
			}
		}
	}
	own := ranks[r]
	ext := sph.NewParticles(own.N + len(haloSrc))
	for i := 0; i < own.N; i++ {
		copyParticle(ext, i, own, i)
	}
	for j, s := range haloSrc {
		copyParticle(ext, own.N+j, ranks[s.rank], s.idx)
	}
	return ext, len(haloSrc), nil
}

// Sync is the full DomainDecompAndSync step: sort every rank by key,
// rebuild the decomposition, and migrate particles. It returns the new
// particle sets and migration count.
func (d *Domain) Sync(ranks []*sph.Particles) ([]*sph.Particles, int, error) {
	for _, p := range ranks {
		d.SortByKey(p)
	}
	d.Decompose(ranks)
	out, moved, err := d.Migrate(ranks)
	if err != nil {
		return nil, 0, err
	}
	// Keep each rank's set sorted after migration.
	for _, p := range out {
		d.SortByKey(p)
	}
	return out, moved, nil
}

// LoadImbalance returns max/mean particle count across ranks (1.0 is
// perfect balance).
func LoadImbalance(ranks []*sph.Particles) float64 {
	if len(ranks) == 0 {
		return 1
	}
	total, max := 0, 0
	for _, p := range ranks {
		total += p.N
		if p.N > max {
			max = p.N
		}
	}
	mean := float64(total) / float64(len(ranks))
	if mean == 0 {
		return 1
	}
	return float64(max) / mean
}

// copyParticle copies every per-particle field from src[j] to dst[i].
func copyParticle(dst *sph.Particles, i int, src *sph.Particles, j int) {
	dst.X[i], dst.Y[i], dst.Z[i] = src.X[j], src.Y[j], src.Z[j]
	dst.VX[i], dst.VY[i], dst.VZ[i] = src.VX[j], src.VY[j], src.VZ[j]
	dst.AX[i], dst.AY[i], dst.AZ[i] = src.AX[j], src.AY[j], src.AZ[j]
	dst.M[i], dst.H[i] = src.M[j], src.H[j]
	dst.Rho[i], dst.P[i], dst.C[i] = src.Rho[j], src.P[j], src.C[j]
	dst.U[i], dst.DU[i] = src.U[j], src.DU[j]
	dst.XM[i], dst.Kx[i], dst.Gradh[i] = src.XM[j], src.Kx[j], src.Gradh[j]
	dst.C11[i], dst.C12[i], dst.C13[i] = src.C11[j], src.C12[j], src.C13[j]
	dst.C22[i], dst.C23[i], dst.C33[i] = src.C22[j], src.C23[j], src.C33[j]
	dst.DivV[i], dst.CurlV[i] = src.DivV[j], src.CurlV[j]
	dst.Alpha[i] = src.Alpha[j]
	dst.NC[i] = src.NC[j]
	dst.Keys[i] = src.Keys[j]
}
