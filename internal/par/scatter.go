package par

import "sync"

// Scatter is a reusable scatter-add reduction for pair-interaction loops
// that write to both endpoints of every pair. A plain parallel-for cannot
// run such loops — the scatter to the far endpoint races with the worker
// that owns it — so Run gives every worker a private dense accumulator
// (targets × stride float64s) and the caller merges the per-worker buffers
// afterwards, typically with ForChunked over the targets so the merge
// parallelizes over disjoint output ranges and needs no atomics.
//
// Each buffer is a separately allocated slice, so no two workers ever
// write the same cache line. Buffers are owned by the Scatter value and
// reused across calls: a steady-state call allocates nothing beyond the
// goroutines the rest of the par package also spawns (none at one worker).
type Scatter struct {
	bufs [][]float64
}

// Run partitions [0, n) into one contiguous cache-line-aligned chunk per
// worker and invokes body(lo, hi, acc) concurrently, where acc is that
// worker's private zeroed accumulator: the slot of target t is
// acc[t*stride : (t+1)*stride]. It returns the live buffers in ascending
// chunk order, so a fixed-order merge is deterministic for a given worker
// count. The returned slices alias the Scatter's storage and are valid
// until the next Run.
func (sc *Scatter) Run(n, targets, stride int, body func(lo, hi int, acc []float64)) [][]float64 {
	if n <= 0 || targets <= 0 || stride <= 0 {
		return nil
	}
	workers := workersFor(n)
	chunk := chunkSize(n, workers)
	live := (n + chunk - 1) / chunk
	if len(sc.bufs) < live {
		grown := make([][]float64, live)
		copy(grown, sc.bufs)
		sc.bufs = grown
	}
	size := targets * stride
	for w := 0; w < live; w++ {
		if cap(sc.bufs[w]) < size {
			sc.bufs[w] = make([]float64, size)
		} else {
			sc.bufs[w] = sc.bufs[w][:size]
		}
	}
	if live == 1 {
		clear(sc.bufs[0])
		body(0, n, sc.bufs[0])
		return sc.bufs[:1]
	}
	var wg sync.WaitGroup
	for w := 0; w < live; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		buf := sc.bufs[w]
		wg.Add(1)
		go func(lo, hi int, buf []float64) {
			defer wg.Done()
			clear(buf)
			body(lo, hi, buf)
		}(lo, hi, buf)
	}
	wg.Wait()
	return sc.bufs[:live]
}
