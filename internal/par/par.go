// Package par provides the data-parallel loop primitives used by the SPH
// pipeline: chunked parallel-for over index ranges and parallel reductions,
// implemented with plain goroutines and sync.WaitGroup.
//
// Work is split into contiguous chunks (one per worker) rather than
// fine-grained tasks: SPH loops are regular, so static chunking avoids
// scheduling overhead and keeps memory access streaming.
package par

import (
	"runtime"
	"sync"
)

// MaxWorkers returns the degree of parallelism used by For and Reduce.
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// SerialGrain is the minimum number of iterations per worker before a loop
// is worth spawning goroutines for: below it, the goroutine spawn and
// WaitGroup synchronization cost more than the loop body (measured on the
// cheap passes — EOS, AVSwitches — at small particle counts).
const SerialGrain = 2048

// workersFor sizes the worker pool so each worker gets at least SerialGrain
// iterations; tiny loops collapse to a single inline worker.
func workersFor(n int) int {
	w := MaxWorkers()
	if g := (n + SerialGrain - 1) / SerialGrain; g < w {
		w = g
	}
	if w < 1 {
		w = 1
	}
	return w
}

// chunkAlign rounds per-worker chunk lengths up to this many elements
// (8 float64s = one 64-byte cache line), so adjacent workers writing
// contiguous ranges of a shared output slice never straddle the same line.
const chunkAlign = 8

// chunkSize returns the per-worker chunk length for n items over the given
// worker count, cache-line aligned. The partition is a pure function of
// (n, workers), so chunk boundaries — and therefore any per-chunk reduction
// order — are deterministic for a fixed GOMAXPROCS.
func chunkSize(n, workers int) int {
	c := (n + workers - 1) / workers
	if r := c % chunkAlign; r != 0 {
		c += chunkAlign - r
	}
	return c
}

// padded64 is a per-worker reduction slot padded out to a full cache line:
// workers publish partials concurrently, and unpadded adjacent float64s
// would ping-pong the shared line between cores on every store (false
// sharing — measurable on the scatter-heavy symmetric SPH passes).
type padded64 struct {
	v    float64
	used bool
	_    [55]byte
}

// For executes fn(i) for every i in [0, n) using up to MaxWorkers
// goroutines. fn must be safe to call concurrently for distinct i. Loops
// shorter than SerialGrain run inline on the calling goroutine.
func For(n int, fn func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunked splits [0, n) into contiguous chunks and executes fn(lo, hi)
// for each chunk concurrently. Useful when per-chunk setup (scratch buffers)
// amortizes across iterations. Loops shorter than SerialGrain run inline on
// the calling goroutine.
func ForChunked(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := workersFor(n)
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := chunkSize(n, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForWorkers splits [0, n) into at most workers contiguous aligned chunks
// and executes fn(w, lo, hi) for each concurrently, passing the chunk
// ordinal w. Unlike ForChunked the caller chooses the worker count, and the
// ordinal lets it keep per-worker scratch (e.g. the cell-slab sweep's spill
// buffers) without any pooling or locking. workers <= 1 runs fn(0, 0, n)
// inline on the calling goroutine, so serial callers pay no spawn cost.
// The partition is a pure function of (n, workers).
func ForWorkers(n, workers int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := chunkSize(n, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// SumFloat64 computes sum over i in [0, n) of fn(i) with a parallel
// tree-free reduction (one partial per worker, summed deterministically in
// worker order).
func SumFloat64(n int, fn func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers := workersFor(n)
	if workers == 1 {
		s := 0.0
		for i := 0; i < n; i++ {
			s += fn(i)
		}
		return s
	}
	partials := make([]padded64, workers)
	var wg sync.WaitGroup
	chunk := chunkSize(n, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := 0.0
			for i := lo; i < hi; i++ {
				s += fn(i)
			}
			partials[w].v = s
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0.0
	for w := range partials {
		total += partials[w].v
	}
	return total
}

// MinFloat64 computes the minimum of fn(i) over [0, n); it returns
// +Inf-equivalent fallback (the first value) semantics by requiring n > 0.
func MinFloat64(n int, fn func(i int) float64) float64 {
	if n <= 0 {
		panic("par: MinFloat64 requires n > 0")
	}
	workers := workersFor(n)
	if workers == 1 {
		m := fn(0)
		for i := 1; i < n; i++ {
			if v := fn(i); v < m {
				m = v
			}
		}
		return m
	}
	partials := make([]padded64, workers)
	var wg sync.WaitGroup
	chunk := chunkSize(n, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := fn(lo)
			for i := lo + 1; i < hi; i++ {
				if v := fn(i); v < m {
					m = v
				}
			}
			partials[w].v = m
			partials[w].used = true
		}(w, lo, hi)
	}
	wg.Wait()
	var m float64
	first := true
	for w := range partials {
		if !partials[w].used {
			continue
		}
		if first || partials[w].v < m {
			m = partials[w].v
			first = false
		}
	}
	return m
}

// Reduce splits [0, n) into contiguous chunks, evaluates fn(lo, hi) per
// chunk concurrently, and folds the per-chunk results with combine in
// ascending chunk order, so the result is deterministic for a fixed worker
// count. fn may carry side effects (e.g. filling per-chunk buffers) in
// addition to its reduction value. Returns 0 for n <= 0.
func Reduce(n int, fn func(lo, hi int) float64, combine func(a, b float64) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers := workersFor(n)
	if workers == 1 {
		return fn(0, n)
	}
	partials := make([]padded64, workers)
	var wg sync.WaitGroup
	chunk := chunkSize(n, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w].v = fn(lo, hi)
			partials[w].used = true
		}(w, lo, hi)
	}
	wg.Wait()
	var acc float64
	first := true
	for w := range partials {
		if !partials[w].used {
			continue
		}
		if first {
			acc = partials[w].v
			first = false
		} else {
			acc = combine(acc, partials[w].v)
		}
	}
	return acc
}
