// Package par provides the data-parallel loop primitives used by the SPH
// pipeline: chunked parallel-for over index ranges and parallel reductions,
// implemented with plain goroutines and sync.WaitGroup.
//
// Work is split into contiguous chunks (one per worker) rather than
// fine-grained tasks: SPH loops are regular, so static chunking avoids
// scheduling overhead and keeps memory access streaming.
package par

import (
	"runtime"
	"sync"
)

// MaxWorkers returns the degree of parallelism used by For and Reduce.
func MaxWorkers() int { return runtime.GOMAXPROCS(0) }

// For executes fn(i) for every i in [0, n) using up to MaxWorkers
// goroutines. fn must be safe to call concurrently for distinct i.
func For(n int, fn func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunked splits [0, n) into contiguous chunks and executes fn(lo, hi)
// for each chunk concurrently. Useful when per-chunk setup (scratch buffers)
// amortizes across iterations.
func ForChunked(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// SumFloat64 computes sum over i in [0, n) of fn(i) with a parallel
// tree-free reduction (one partial per worker, summed deterministically in
// worker order).
func SumFloat64(n int, fn func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	partials := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := 0.0
			for i := lo; i < hi; i++ {
				s += fn(i)
			}
			partials[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}

// MinFloat64 computes the minimum of fn(i) over [0, n); it returns
// +Inf-equivalent fallback (the first value) semantics by requiring n > 0.
func MinFloat64(n int, fn func(i int) float64) float64 {
	if n <= 0 {
		panic("par: MinFloat64 requires n > 0")
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	partials := make([]float64, workers)
	used := make([]bool, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := fn(lo)
			for i := lo + 1; i < hi; i++ {
				if v := fn(i); v < m {
					m = v
				}
			}
			partials[w] = m
			used[w] = true
		}(w, lo, hi)
	}
	wg.Wait()
	var m float64
	first := true
	for w := range partials {
		if !used[w] {
			continue
		}
		if first || partials[w] < m {
			m = partials[w]
			first = false
		}
	}
	return m
}
