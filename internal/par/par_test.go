package par

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000} {
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkedCoversRange(t *testing.T) {
	const n = 1003
	visited := make([]int32, n)
	ForChunked(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visited[i], 1)
		}
	})
	for i, c := range visited {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForChunkedEmpty(t *testing.T) {
	called := false
	ForChunked(0, func(lo, hi int) { called = true })
	if called {
		t.Error("chunk callback invoked for empty range")
	}
}

func TestSumMatchesSerial(t *testing.T) {
	const n = 54321
	got := SumFloat64(n, func(i int) float64 { return float64(i) * 0.5 })
	want := 0.0
	for i := 0; i < n; i++ {
		want += float64(i) * 0.5
	}
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Errorf("SumFloat64 = %v, want %v", got, want)
	}
}

func TestSumDeterministic(t *testing.T) {
	// Partial sums combine in worker order, so repeated runs agree exactly.
	const n = 100000
	f := func(i int) float64 { return math.Sin(float64(i)) }
	a := SumFloat64(n, f)
	b := SumFloat64(n, f)
	if a != b {
		t.Errorf("non-deterministic sum: %v vs %v", a, b)
	}
}

func TestSumEmpty(t *testing.T) {
	if got := SumFloat64(0, func(int) float64 { return 1 }); got != 0 {
		t.Errorf("empty sum = %v", got)
	}
}

func TestMinMatchesSerial(t *testing.T) {
	const n = 9999
	f := func(i int) float64 { return math.Cos(float64(i)) * float64((i%17)+1) }
	got := MinFloat64(n, f)
	want := f(0)
	for i := 1; i < n; i++ {
		if v := f(i); v < want {
			want = v
		}
	}
	if got != want {
		t.Errorf("MinFloat64 = %v, want %v", got, want)
	}
}

func TestMinSingleElement(t *testing.T) {
	if got := MinFloat64(1, func(int) float64 { return 42 }); got != 42 {
		t.Errorf("MinFloat64(1) = %v", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MinFloat64(0, ...) did not panic")
		}
	}()
	MinFloat64(0, func(int) float64 { return 0 })
}

func TestMaxWorkersPositive(t *testing.T) {
	if MaxWorkers() < 1 {
		t.Errorf("MaxWorkers = %d", MaxWorkers())
	}
}
