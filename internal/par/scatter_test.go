package par

import (
	"runtime"
	"testing"
	"unsafe"
)

// scatterSum runs a pair-style scatter over a ring graph (each i adds 1 to
// itself and to (i+1) mod n, in slot 0 of stride slots) and returns the
// merged per-target totals.
func scatterSum(sc *Scatter, n, stride int) []float64 {
	bufs := sc.Run(n, n, stride, func(lo, hi int, acc []float64) {
		for i := lo; i < hi; i++ {
			acc[i*stride]++
			acc[((i+1)%n)*stride]++
		}
	})
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		for _, b := range bufs {
			out[i] += b[i*stride]
		}
	}
	return out
}

func TestScatterRingTotals(t *testing.T) {
	var sc Scatter
	for _, n := range []int{1, 7, 100, 30000} {
		for _, stride := range []int{1, 4, 6} {
			got := scatterSum(&sc, n, stride)
			for i, v := range got {
				if v != 2 {
					t.Fatalf("n=%d stride=%d: target %d accumulated %v, want 2", n, stride, i, v)
				}
			}
		}
	}
}

func TestScatterBuffersReusedAndZeroed(t *testing.T) {
	var sc Scatter
	// First call dirties the buffers; the second must see them zeroed and
	// must not allocate new backing arrays.
	first := sc.Run(100, 100, 2, func(lo, hi int, acc []float64) {
		for i := range acc {
			acc[i] = 99
		}
	})
	firstPtr := &first[0][0]
	second := sc.Run(100, 100, 2, func(lo, hi int, acc []float64) {
		for _, v := range acc {
			if v != 0 {
				t.Errorf("buffer not zeroed: %v", v)
				return
			}
		}
	})
	if &second[0][0] != firstPtr {
		t.Error("steady-state Run reallocated its buffer")
	}
}

func TestScatterChunkOrderDeterministic(t *testing.T) {
	// The returned buffer order must follow ascending chunks, so a
	// fixed-order merge of non-associative float sums is reproducible.
	var sc Scatter
	const n = 50000
	run := func() []float64 {
		bufs := sc.Run(n, 1, 1, func(lo, hi int, acc []float64) {
			for i := lo; i < hi; i++ {
				acc[0] += 1.0 / float64(i+1)
			}
		})
		out := make([]float64, len(bufs))
		for w, b := range bufs {
			out[w] = b[0]
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("buffer count changed between runs: %d vs %d", len(a), len(b))
	}
	for w := range a {
		if a[w] != b[w] {
			t.Errorf("chunk %d partial differs between identical runs: %v vs %v", w, a[w], b[w])
		}
	}
}

func TestScatterEmptyAndDegenerate(t *testing.T) {
	var sc Scatter
	if bufs := sc.Run(0, 10, 1, func(lo, hi int, acc []float64) { t.Error("body called") }); bufs != nil {
		t.Error("n=0 returned buffers")
	}
	if bufs := sc.Run(10, 0, 1, func(lo, hi int, acc []float64) { t.Error("body called") }); bufs != nil {
		t.Error("targets=0 returned buffers")
	}
}

func TestChunkSizeAlignedAndCovering(t *testing.T) {
	for _, n := range []int{1, 7, 8, 1000, 54321} {
		for workers := 1; workers <= 16; workers++ {
			c := chunkSize(n, workers)
			if c%chunkAlign != 0 && c < n {
				t.Errorf("chunkSize(%d, %d) = %d not aligned", n, workers, c)
			}
			if c*workers < n {
				t.Errorf("chunkSize(%d, %d) = %d does not cover the range", n, workers, c)
			}
		}
	}
}

func TestPadded64FillsCacheLine(t *testing.T) {
	// The padding math is easy to silently break when adding a field.
	if s := unsafe.Sizeof(padded64{}); s != 64 {
		t.Errorf("padded64 is %d bytes, want 64", s)
	}
}

func TestScatterUnderContention(t *testing.T) {
	// Exercise the multi-worker path even on 1-CPU machines.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	var sc Scatter
	got := scatterSum(&sc, 40000, 3)
	for i, v := range got {
		if v != 2 {
			t.Fatalf("target %d accumulated %v, want 2", i, v)
		}
	}
}
