package gpusim

import "testing"

func TestPowerLimitDefaults(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	if d.PowerLimitW() != d.Spec().TDPW {
		t.Errorf("default limit %v, want TDP %v", d.PowerLimitW(), d.Spec().TDPW)
	}
}

func TestSetPowerLimitRange(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	if err := d.SetPowerLimit(250); err != nil {
		t.Fatal(err)
	}
	if d.PowerLimitW() != 250 {
		t.Errorf("limit %v", d.PowerLimitW())
	}
	if err := d.SetPowerLimit(10); err == nil {
		t.Error("below-idle limit accepted")
	}
	if err := d.SetPowerLimit(9999); err == nil {
		t.Error("above-TDP limit accepted")
	}
	d.ResetPowerLimit()
	if d.PowerLimitW() != d.Spec().TDPW {
		t.Error("reset did not restore TDP")
	}
}

func TestPowerCapDeratesClockAndPower(t *testing.T) {
	k := computeKernel()
	// Uncapped reference at locked max clocks.
	ref := NewDevice(A100SXM480GB(), 0)
	ref.SetApplicationClocks(0, 1410)
	refDur := ref.Execute(k)
	refPower := ref.PowerW()

	capped := NewDevice(A100SXM480GB(), 0)
	capped.SetApplicationClocks(0, 1410)
	limit := refPower * 0.75
	if err := capped.SetPowerLimit(limit); err != nil {
		t.Fatal(err)
	}
	dur := capped.Execute(k)
	if p := capped.PowerW(); p > limit+1e-9 {
		t.Errorf("capped power %v exceeds limit %v", p, limit)
	}
	if dur <= refDur {
		t.Error("capped kernel should run longer (derated clock)")
	}
}

func TestPowerCapNoEffectWhenHeadroom(t *testing.T) {
	k := memKernel() // draws far below TDP
	free := NewDevice(A100SXM480GB(), 0)
	free.SetApplicationClocks(0, 1410)
	freeDur := free.Execute(k)

	capped := NewDevice(A100SXM480GB(), 0)
	capped.SetApplicationClocks(0, 1410)
	capped.SetPowerLimit(350) // above this kernel's draw
	if dur := capped.Execute(k); dur != freeDur {
		t.Errorf("cap with headroom changed duration: %v vs %v", dur, freeDur)
	}
}

func TestPowerCapUnderGovernor(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0) // auto mode
	if err := d.SetPowerLimit(150); err != nil {
		t.Fatal(err)
	}
	d.Execute(computeKernel())
	d.Execute(computeKernel())
	// Under a tight cap the governor cannot hold max clocks.
	if got := d.SMClockMHz(); got >= 1410 {
		t.Errorf("governor clock %d under a 150 W cap, want derated", got)
	}
	if p := d.PowerW(); p > 150+1e-9 {
		t.Errorf("governor power %v exceeds the cap", p)
	}
}

func TestEnergyVsPowerCapTradeoff(t *testing.T) {
	// Capping power on a compute kernel saves energy like down-clocking
	// does — the knobs are two views of the same derating.
	k := computeKernel()
	run := func(limit float64) (timeS, energyJ float64) {
		d := NewDevice(A100SXM480GB(), 0)
		d.SetApplicationClocks(0, 1410)
		if limit > 0 {
			if err := d.SetPowerLimit(limit); err != nil {
				t.Fatal(err)
			}
		}
		e0 := d.EnergyJ()
		dt := d.Execute(k)
		return dt, d.EnergyJ() - e0
	}
	tFree, eFree := run(0)
	tCap, eCap := run(220)
	if eCap >= eFree {
		t.Errorf("capped energy %v not below uncapped %v", eCap, eFree)
	}
	if tCap <= tFree {
		t.Error("capped run should be slower")
	}
}

func TestThrottleReasons(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	// Auto mode at idle clock: idle throttling.
	if r := d.ThrottleReasons(); r&ThrottleIdle == 0 {
		t.Errorf("idle device reasons %v", r)
	}
	// Locked at max: none.
	d.SetApplicationClocks(0, 1410)
	if r := d.ThrottleReasons(); r != ThrottleNone {
		t.Errorf("locked-at-max reasons %v", r)
	}
	// Locked below max: app clocks.
	d.SetApplicationClocks(0, 1005)
	if r := d.ThrottleReasons(); r&ThrottleAppClocks == 0 {
		t.Errorf("down-clocked reasons %v", r)
	}
	// Add a power cap: both flags.
	d.SetPowerLimit(200)
	r := d.ThrottleReasons()
	if r&ThrottlePowerCap == 0 || r&ThrottleAppClocks == 0 {
		t.Errorf("capped+locked reasons %v", r)
	}
	if s := r.String(); s != "app-clocks|power-cap" {
		t.Errorf("String() = %q", s)
	}
	if ThrottleNone.String() != "none" {
		t.Error("none string")
	}
}
