package gpusim

import "math"

// governor models the hardware DVFS policy of the device: clocks ramp
// exponentially toward a utilization-derived target while kernels execute,
// stay boosted for a hold window after the last kernel (launch-to-launch
// hysteresis), and then decay toward the idle clock.
//
// Two properties of this model reproduce the paper's §IV-E observations:
//
//  1. Lightweight kernel launches boost clocks (and thus voltage and power)
//     even though the kernels cannot use the frequency — the
//     DomainDecompAndSync pattern of Fig. 9 — because at launch time the
//     governor has no utilization information yet.
//  2. Communication phases let the clock dip once the boost hold expires,
//     producing the sub-1000 MHz valleys at time-step boundaries.
type governor struct {
	spec      Spec
	current   float64 // current SM clock in MHz
	holdUntil float64 // virtual time until which boost is held
}

func newGovernor(s Spec) governor {
	return governor{spec: s, current: float64(s.IdleSMClockMHz)}
}

// target computes the governor's frequency target for a kernel. The
// utilization hint blends the kernel's SM activity with its occupancy: the
// governor overestimates the demand of light kernels (it sees "busy", not
// "how busy"), which is exactly the overestimation reported in the paper's
// reference [25]; the floor of 0.55 encodes that any launch boosts well
// above idle.
func (g *governor) target(t kernelTiming) float64 {
	hint := t.smActivity * (0.5 + 0.5*t.occupancy)
	u := 0.55 + 0.65*hint
	if u > 1 {
		u = 1
	}
	span := float64(g.spec.MaxSMClockMHz - g.spec.IdleSMClockMHz)
	return float64(g.spec.IdleSMClockMHz) + span*u
}

// executeKernel advances the device through one kernel batch under governor
// control; caller holds d.mu. Returns the kernel duration.
func (g *governor) executeKernel(d *Device, k KernelDesc, t kernelTiming) float64 {
	start := g.current
	tgt := g.target(t)
	// Power limits derate the governor target exactly like locked clocks.
	tgt = float64(d.derateClock(int(tgt+0.5), t))
	tau := g.spec.RampTauS

	// Duration and mean frequency are mutually dependent (slower clock =>
	// longer kernel => more ramp completed); a short fixed-point iteration
	// converges because duration is monotone in mean frequency.
	favg := tgt
	dur := t.durationAt(g.spec, int(favg+0.5))
	for iter := 0; iter < 4; iter++ {
		favg = meanRampFreq(start, tgt, tau, dur)
		if favg < float64(g.spec.IdleSMClockMHz) {
			favg = float64(g.spec.IdleSMClockMHz)
		}
		dur = t.durationAt(g.spec, int(favg+0.5))
	}

	p := d.kernelPower(int(favg+0.5), t)
	// End-of-kernel frequency after the exponential approach.
	g.current = tgt + (start-tgt)*math.Exp(-dur/tau)
	d.accountLocked(dur, p, k.Name)
	g.holdUntil = d.now + g.spec.BoostHoldS
	return dur
}

// meanRampFreq is the time average of f(t) = tgt + (start-tgt) e^{-t/tau}
// over [0, T].
func meanRampFreq(start, tgt, tau, T float64) float64 {
	if T <= 0 {
		return start
	}
	return tgt + (start-tgt)*(tau/T)*(1-math.Exp(-T/tau))
}

// idle advances the device through an idle window under governor control;
// caller holds d.mu.
func (g *governor) idle(d *Device, seconds float64) {
	remaining := seconds
	// Phase 1: boost hold — clock stays where it is.
	if hold := g.holdUntil - d.now; hold > 0 {
		h := math.Min(hold, remaining)
		p := d.power(int(g.current+0.5), 0.08, 0.02)
		d.accountLocked(h, p, "")
		remaining -= h
	}
	if remaining <= 0 {
		return
	}
	// Phase 2: exponential decay toward the idle clock, integrated in a few
	// substeps so traces capture the shape.
	idleF := float64(g.spec.IdleSMClockMHz)
	tau := g.spec.IdleDecayS
	const substeps = 4
	dt := remaining / substeps
	for i := 0; i < substeps; i++ {
		// Mean frequency over this substep.
		f0 := g.current
		f1 := idleF + (f0-idleF)*math.Exp(-dt/tau)
		favg := meanRampFreq(f0, idleF, tau, dt)
		p := d.power(int(favg+0.5), 0.03, 0.01)
		g.current = f1
		d.accountLocked(dt, p, "")
	}
}
