package gpusim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// ClockMode describes how the SM clock is being managed.
type ClockMode int

// Clock management modes.
const (
	// ModeAuto lets the simulated DVFS governor drive the clock.
	ModeAuto ClockMode = iota
	// ModeLocked pins the clock to the application-clock setting.
	ModeLocked
)

// Device is one simulated GPU. All time is virtual, in seconds since device
// creation; callers advance it by executing kernels and idling. Devices are
// safe for concurrent use (the management plane — NVML queries, pm_counters
// sampling — may run from other goroutines than the rank driving the
// device).
type Device struct {
	mu sync.Mutex

	spec  Spec
	index int

	mode        ClockMode
	lockedMHz   int
	memMHz      int
	powerLimitW float64 // 0 means the TDP default
	gov         governor
	now         float64 // virtual seconds
	energyJ     float64
	lastPowerW  float64

	// Busy/idle accounting for utilization queries.
	busyS float64
	// window utilization tracking (exponential moving average).
	utilEMA float64

	trace      *Trace
	kernelsRun int64
	obs        Observer

	// kstats accumulates ground-truth per-kernel time/energy from the
	// model's own integration — the reference the sampling-based
	// attribution layer validates against.
	kstats map[string]*KernelEnergy
}

// KernelEnergy is the model's ground-truth accounting for one kernel:
// exact integrated energy and busy time across all launches, independent
// of any sampling rate.
type KernelEnergy struct {
	Name     string
	Launches int64
	TimeS    float64
	EnergyJ  float64
}

// Observer receives device events for external telemetry: completed kernel
// launches and application-clock changes. Callbacks run on the goroutine
// driving the device, after the device releases its lock, so observers may
// query the device but must be cheap — they sit on the execution path.
type Observer interface {
	// KernelLaunched reports one completed kernel batch: its virtual start
	// time, duration, the effective SM clock it ran at, and the energy it
	// consumed.
	KernelLaunched(name string, startS, durS float64, clockMHz int, energyJ float64)
	// ClockChanged reports an application-clock operation ("set-app-clocks"
	// or "reset-app-clocks") and the clock in effect afterwards.
	ClockChanged(timeS float64, clockMHz int, cause string)
}

// SetObserver installs the telemetry observer; nil removes it.
func (d *Device) SetObserver(o Observer) {
	d.mu.Lock()
	d.obs = o
	d.mu.Unlock()
}

// NewDevice creates a device with the given spec and index (the position of
// the device within its node, mirroring CUDA device ordinals).
func NewDevice(spec Spec, index int) *Device {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	d := &Device{spec: spec, index: index, mode: ModeAuto, memMHz: spec.MemClockMHz}
	d.gov = newGovernor(spec)
	d.lastPowerW = spec.IdlePowerW
	return d
}

// Spec returns the device specification.
func (d *Device) Spec() Spec { return d.spec }

// Index returns the device ordinal within its node.
func (d *Device) Index() int { return d.index }

// Now returns the device's virtual time in seconds.
func (d *Device) Now() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.now
}

// EnergyJ returns the cumulative energy in joules since creation — the
// counter NVML's totalEnergyConsumption and pm_counters' accel files expose.
func (d *Device) EnergyJ() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.energyJ
}

// PowerW returns the most recent instantaneous board power.
func (d *Device) PowerW() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastPowerW
}

// SMClockMHz returns the current SM clock.
func (d *Device) SMClockMHz() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.currentClockLocked()
}

// MemClockMHz returns the current memory clock.
func (d *Device) MemClockMHz() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.memMHz
}

// memRatio is the current memory clock relative to the maximum; caller
// holds d.mu. It scales achievable bandwidth and memory power.
func (d *Device) memRatio() float64 {
	return float64(d.memMHz) / float64(d.spec.MemClockMHz)
}

// Utilization returns a smoothed busy fraction in [0,1], mirroring the
// coarse utilization numbers nvidia-smi/rocm-smi report (the paper and [25]
// note these overestimate true SM occupancy).
func (d *Device) Utilization() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.utilEMA
}

// KernelsRun returns the number of kernel launches executed.
func (d *Device) KernelsRun() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernelsRun
}

// EnableTrace starts recording a frequency/power trace (Fig. 9).
func (d *Device) EnableTrace() *Trace {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.trace = NewTrace()
	return d.trace
}

// SetApplicationClocks locks the SM clock to the nearest supported value and
// returns the applied clock. This is the simulated equivalent of
// nvmlDeviceSetApplicationsClocks (memory clock argument accepted for
// interface fidelity; it must match the device's fixed memory clock).
func (d *Device) SetApplicationClocks(memMHz, smMHz int) (int, error) {
	d.mu.Lock()
	if memMHz != 0 {
		snapped := d.spec.NearestMemClock(memMHz)
		if abs(snapped-memMHz) > d.spec.MemClockMHz/10 {
			d.mu.Unlock()
			return 0, fmt.Errorf("gpusim: unsupported memory clock %d MHz (supported: %v)", memMHz, d.spec.MemClocksMHz())
		}
		d.memMHz = snapped
	}
	applied := d.spec.NearestSupportedClock(smMHz)
	d.mode = ModeLocked
	d.lockedMHz = applied
	d.tracePoint("set-app-clocks")
	obs, now := d.obs, d.now
	d.mu.Unlock()
	if obs != nil {
		obs.ClockChanged(now, applied, "set-app-clocks")
	}
	return applied, nil
}

// ResetApplicationClocks returns the device to governor (DVFS) control,
// the simulated nvmlDeviceResetApplicationsClocks.
func (d *Device) ResetApplicationClocks() {
	d.mu.Lock()
	d.mode = ModeAuto
	d.gov.current = float64(d.currentClockAutoEntryLocked())
	d.tracePoint("reset-app-clocks")
	obs, now, clock := d.obs, d.now, d.currentClockLocked()
	d.mu.Unlock()
	if obs != nil {
		obs.ClockChanged(now, clock, "reset-app-clocks")
	}
}

func (d *Device) currentClockAutoEntryLocked() int {
	if d.lockedMHz > 0 {
		return d.lockedMHz
	}
	return d.spec.IdleSMClockMHz
}

// Mode returns the current clock management mode.
func (d *Device) Mode() ClockMode {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mode
}

// currentClockLocked reads the effective SM clock; caller holds d.mu.
func (d *Device) currentClockLocked() int {
	if d.mode == ModeLocked {
		return d.lockedMHz
	}
	return int(d.gov.current + 0.5)
}

// kernelPower computes board power while a kernel with profile t executes
// at the given clock; caller holds d.mu. On top of the base CMOS model it
// applies the stall-refill effect: at lower clocks, memory relatively
// speeds up, so compute-bound kernels keep their pipelines fuller per cycle
// and per-cycle activity rises. This is why compute-bound kernels save less
// energy from down-scaling than their power-vs-frequency curve alone would
// suggest (the limited 13%/19% reductions of Fig. 8b).
func (d *Device) kernelPower(mhz int, t kernelTiming) float64 {
	p := d.rawKernelPower(mhz, t)
	limit := d.spec.TDPW
	if d.powerLimitW > 0 && d.powerLimitW < limit {
		limit = d.powerLimitW
	}
	if p > limit {
		p = limit
	}
	return p
}

// rawKernelPower is kernelPower without the board cap, used by the
// power-limit derating logic; caller holds d.mu.
func (d *Device) rawKernelPower(mhz int, t kernelTiming) float64 {
	const stallRefill = 0.45
	fRel := float64(mhz) / float64(d.spec.MaxSMClockMHz)
	smAct := t.smActivity * (1 + stallRefill*(1-fRel)*t.cFrac)
	if smAct > 1 {
		smAct = 1
	}
	return d.power(mhz, smAct, t.memActivity)
}

// power computes the board power draw for the given clock and activity
// levels; caller holds d.mu.
func (d *Device) power(mhz int, smAct, memAct float64) float64 {
	s := d.spec
	v := s.VoltageAt(mhz)
	vmax := s.VoltageAt(s.MaxSMClockMHz)
	fRel := float64(mhz) / float64(s.MaxSMClockMHz)
	vRel := v / vmax
	p := s.IdlePowerW +
		s.MaxSMPowerW*vRel*vRel*fRel*smAct +
		s.MaxMemPowerW*memAct
	if d.mode == ModeAuto {
		p += s.DVFSMarginW
	}
	if p > s.TDPW {
		p = s.TDPW
	}
	return p
}

// Execute runs a kernel batch on the device, advancing virtual time and
// integrating energy. It returns the wall (virtual) duration.
func (d *Device) Execute(k KernelDesc) float64 {
	d.mu.Lock()
	t := k.timing(d.spec)
	// A down-scaled memory clock stretches the bandwidth-bound portion and
	// reduces memory-subsystem power proportionally.
	if r := d.memRatio(); r < 1 {
		t.flatS /= r
		t.memActivity *= r
	}
	startS, startJ := d.now, d.energyJ
	var dur float64
	if d.mode == ModeLocked {
		// An active power limit derates the effective clock below the
		// application-clock setting when the kernel would exceed it.
		eff := d.derateClock(d.lockedMHz, t)
		dur = t.durationAt(d.spec, eff)
		p := d.kernelPower(eff, t)
		d.accountLocked(dur, p, k.Name)
	} else {
		dur = d.gov.executeKernel(d, k, t)
	}
	d.busyS += dur
	d.updateUtilLocked(dur, 1)
	d.kernelsRun += int64(k.launches())
	if d.kstats == nil {
		d.kstats = map[string]*KernelEnergy{}
	}
	ks, ok := d.kstats[k.Name]
	if !ok {
		ks = &KernelEnergy{Name: k.Name}
		d.kstats[k.Name] = ks
	}
	ks.Launches += int64(k.launches())
	ks.TimeS += dur
	ks.EnergyJ += d.energyJ - startJ
	obs, clock, energy := d.obs, d.currentClockLocked(), d.energyJ-startJ
	d.mu.Unlock()
	if obs != nil {
		obs.KernelLaunched(k.Name, startS, dur, clock, energy)
	}
	return dur
}

// Idle advances virtual time with no kernel activity (communication phases,
// CPU sections). Under DVFS the governor decays clocks during this window.
func (d *Device) Idle(seconds float64) {
	if seconds <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.mode == ModeLocked {
		// Application clocks hold the clock setting, but with no work the
		// chip clock-gates: only the idle floor is drawn.
		d.accountLocked(seconds, d.spec.IdlePowerW, "")
	} else {
		d.gov.idle(d, seconds)
	}
	d.updateUtilLocked(seconds, 0)
}

// accountLocked advances time by dur at power p; caller holds d.mu.
func (d *Device) accountLocked(dur, p float64, kernel string) {
	d.now += dur
	d.energyJ += p * dur
	d.lastPowerW = p
	if d.trace != nil {
		d.trace.Add(TracePoint{
			TimeS:    d.now,
			ClockMHz: d.currentClockLocked(),
			PowerW:   p,
			Kernel:   kernel,
		})
	}
}

func (d *Device) tracePoint(label string) {
	if d.trace != nil {
		d.trace.Add(TracePoint{
			TimeS:    d.now,
			ClockMHz: d.currentClockLocked(),
			PowerW:   d.lastPowerW,
			Kernel:   label,
		})
	}
}

func (d *Device) updateUtilLocked(dur, busy float64) {
	if dur <= 0 {
		return
	}
	// EMA with ~100 ms time constant, matching management-API smoothing.
	const tau = 0.1
	w := math.Exp(-dur / tau)
	d.utilEMA = d.utilEMA*w + busy*(1-w)
}

// ThrottleReason explains why the effective clock sits below the maximum,
// mirroring nvmlDeviceGetCurrentClocksThrottleReasons.
type ThrottleReason int

// Throttle reasons (bit-flag style, combinable).
const (
	ThrottleNone ThrottleReason = 0
	// ThrottleIdle: clocks parked because the device is idle (auto mode).
	ThrottleIdle ThrottleReason = 1 << iota
	// ThrottleAppClocks: a user application-clock setting caps the clock.
	ThrottleAppClocks
	// ThrottlePowerCap: the power limit derates the clock.
	ThrottlePowerCap
)

// String renders the reason set.
func (r ThrottleReason) String() string {
	if r == ThrottleNone {
		return "none"
	}
	out := ""
	add := func(s string) {
		if out != "" {
			out += "|"
		}
		out += s
	}
	if r&ThrottleIdle != 0 {
		add("idle")
	}
	if r&ThrottleAppClocks != 0 {
		add("app-clocks")
	}
	if r&ThrottlePowerCap != 0 {
		add("power-cap")
	}
	return out
}

// ThrottleReasons reports why the current clock is below the maximum.
func (d *Device) ThrottleReasons() ThrottleReason {
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.currentClockLocked()
	if cur >= d.spec.MaxSMClockMHz {
		return ThrottleNone
	}
	var r ThrottleReason
	if d.mode == ModeLocked {
		if d.lockedMHz < d.spec.MaxSMClockMHz {
			r |= ThrottleAppClocks
		}
	} else {
		r |= ThrottleIdle
	}
	if d.powerLimitW > 0 && d.powerLimitW < d.spec.TDPW {
		r |= ThrottlePowerCap
	}
	return r
}

// KernelEnergies snapshots the ground-truth per-kernel accounting, sorted
// by descending energy.
func (d *Device) KernelEnergies() []KernelEnergy {
	d.mu.Lock()
	out := make([]KernelEnergy, 0, len(d.kstats))
	for _, ks := range d.kstats {
		out = append(out, *ks)
	}
	d.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].EnergyJ != out[b].EnergyJ {
			return out[a].EnergyJ > out[b].EnergyJ
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// BusySeconds returns the cumulative kernel-execution time.
func (d *Device) BusySeconds() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busyS
}

// DeviceState is a device's checkpointable state: clock management mode
// and settings, governor position, virtual time, energy/power/utilization
// accounting, and the ground-truth per-kernel counters. The trace buffer
// and observer are observability wiring, not model state, and are not
// captured. Kernel entries are sorted by name so the encoding is stable.
type DeviceState struct {
	Mode         int
	LockedMHz    int
	MemMHz       int
	PowerLimitW  float64
	GovCurrent   float64
	GovHoldUntil float64
	NowS         float64
	EnergyJ      float64
	LastPowerW   float64
	BusyS        float64
	UtilEMA      float64
	KernelsRun   int64
	Kernels      []KernelEnergy
}

// State captures the device's checkpointable state.
func (d *Device) State() DeviceState {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DeviceState{
		Mode:         int(d.mode),
		LockedMHz:    d.lockedMHz,
		MemMHz:       d.memMHz,
		PowerLimitW:  d.powerLimitW,
		GovCurrent:   d.gov.current,
		GovHoldUntil: d.gov.holdUntil,
		NowS:         d.now,
		EnergyJ:      d.energyJ,
		LastPowerW:   d.lastPowerW,
		BusyS:        d.busyS,
		UtilEMA:      d.utilEMA,
		KernelsRun:   d.kernelsRun,
	}
	for _, ks := range d.kstats {
		st.Kernels = append(st.Kernels, *ks)
	}
	sort.Slice(st.Kernels, func(a, b int) bool { return st.Kernels[a].Name < st.Kernels[b].Name })
	return st
}

// Restore installs a state captured by State, leaving the trace and
// observer wiring untouched. A restored device continues the exact
// trajectory of the original: governor position, boost hold, and energy
// integration pick up where the snapshot left off.
func (d *Device) Restore(st DeviceState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mode = ClockMode(st.Mode)
	d.lockedMHz = st.LockedMHz
	d.memMHz = st.MemMHz
	d.powerLimitW = st.PowerLimitW
	d.gov.current = st.GovCurrent
	d.gov.holdUntil = st.GovHoldUntil
	d.now = st.NowS
	d.energyJ = st.EnergyJ
	d.lastPowerW = st.LastPowerW
	d.busyS = st.BusyS
	d.utilEMA = st.UtilEMA
	d.kernelsRun = st.KernelsRun
	d.kstats = make(map[string]*KernelEnergy, len(st.Kernels))
	for _, ks := range st.Kernels {
		cp := ks
		d.kstats[ks.Name] = &cp
	}
}
