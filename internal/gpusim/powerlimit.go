package gpusim

import "fmt"

// Power-limit management: the second knob NVML exposes next to application
// clocks (nvmlDeviceSetPowerManagementLimit). The paper scales frequency
// directly; sites often cap power instead and let the governor derate
// clocks. The model implements the derating so the two knobs can be
// compared: under a cap, a kernel whose uncapped draw would exceed the
// limit runs at the highest clock whose power fits.

// PowerLimitW returns the active board power limit.
func (d *Device) PowerLimitW() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.powerLimitW > 0 {
		return d.powerLimitW
	}
	return d.spec.TDPW
}

// SetPowerLimit sets the board power cap in watts
// (nvmlDeviceSetPowerManagementLimit). The accepted range is
// [IdlePowerW + 10%, TDP], mirroring NVML's min/max constraint query.
func (d *Device) SetPowerLimit(watts float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	min := d.spec.IdlePowerW * 1.1
	if watts < min || watts > d.spec.TDPW {
		return fmt.Errorf("gpusim: power limit %.0f W outside [%.0f, %.0f]", watts, min, d.spec.TDPW)
	}
	d.powerLimitW = watts
	return nil
}

// ResetPowerLimit restores the default (TDP) limit.
func (d *Device) ResetPowerLimit() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.powerLimitW = 0
}

// derateClock returns the highest clock <= mhz whose kernel power fits the
// active limit; caller holds d.mu. If even the minimum clock exceeds the
// limit, the minimum clock is returned (real hardware behaves the same:
// hard caps are enforced over longer windows).
func (d *Device) derateClock(mhz int, t kernelTiming) int {
	limit := d.spec.TDPW
	if d.powerLimitW > 0 {
		limit = d.powerLimitW
	}
	for f := mhz; f >= d.spec.MinSMClockMHz; f -= d.spec.SMClockStepMHz {
		if d.rawKernelPower(f, t) <= limit {
			return f
		}
	}
	return d.spec.MinSMClockMHz
}
