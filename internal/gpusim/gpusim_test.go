package gpusim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func specs() []Spec {
	return []Spec{A100SXM480GB(), A100PCIE40GB(), MI250XGCD()}
}

// computeKernel is strongly frequency-sensitive; memKernel is not.
func computeKernel() KernelDesc {
	return KernelDesc{Name: "compute", Items: 50e6, FlopsPerItem: 40000, BytesPerItem: 100, EffFactor: 0.5}
}

func memKernel() KernelDesc {
	return KernelDesc{Name: "memory", Items: 50e6, FlopsPerItem: 10, BytesPerItem: 4000, EffFactor: 0.5}
}

func TestSpecValidate(t *testing.T) {
	for _, s := range specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	bad := A100SXM480GB()
	bad.MinSMClockMHz = bad.MaxSMClockMHz
	if bad.Validate() == nil {
		t.Error("min >= max accepted")
	}
	bad = A100SXM480GB()
	bad.VoltageCurve = bad.VoltageCurve[:1]
	if bad.Validate() == nil {
		t.Error("single-point voltage curve accepted")
	}
}

func TestSupportedClocks(t *testing.T) {
	s := A100SXM480GB()
	clocks := s.SupportedClocksMHz()
	if clocks[0] != 1410 {
		t.Errorf("first clock %d, want 1410 (descending order)", clocks[0])
	}
	if clocks[len(clocks)-1] != 210 {
		t.Errorf("last clock %d, want 210", clocks[len(clocks)-1])
	}
	for i := 1; i < len(clocks); i++ {
		if clocks[i-1]-clocks[i] != s.SMClockStepMHz {
			t.Fatalf("non-uniform clock step at %d", i)
		}
	}
}

func TestNearestSupportedClock(t *testing.T) {
	s := A100SXM480GB()
	cases := map[int]int{1410: 1410, 1409: 1410, 1000: 1005, 100: 210, 5000: 1410, 1012: 1005}
	for in, want := range cases {
		if got := s.NearestSupportedClock(in); got != want {
			t.Errorf("NearestSupportedClock(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestVoltageMonotonic(t *testing.T) {
	for _, s := range specs() {
		prev := 0.0
		for f := s.MinSMClockMHz; f <= s.MaxSMClockMHz; f += s.SMClockStepMHz {
			v := s.VoltageAt(f)
			if v < prev {
				t.Fatalf("%s: voltage decreases at %d MHz", s.Name, f)
			}
			prev = v
		}
		if s.VoltageAt(0) != s.VoltageCurve[0].Volts {
			t.Errorf("%s: below-curve voltage not clamped", s.Name)
		}
		if s.VoltageAt(99999) != s.VoltageCurve[len(s.VoltageCurve)-1].Volts {
			t.Errorf("%s: above-curve voltage not clamped", s.Name)
		}
	}
}

func TestEnergyCounterMonotonic(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	prev := d.EnergyJ()
	for i := 0; i < 20; i++ {
		if i%3 == 0 {
			d.Idle(0.01)
		} else {
			d.Execute(memKernel())
		}
		if e := d.EnergyJ(); e < prev {
			t.Fatalf("energy counter decreased: %v -> %v", prev, e)
		} else {
			prev = e
		}
	}
}

func TestLockedClockHonored(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	applied, err := d.SetApplicationClocks(0, 1005)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1005 {
		t.Errorf("applied %d, want 1005", applied)
	}
	if d.SMClockMHz() != 1005 {
		t.Errorf("SMClockMHz = %d", d.SMClockMHz())
	}
	if d.Mode() != ModeLocked {
		t.Error("mode not locked")
	}
	d.ResetApplicationClocks()
	if d.Mode() != ModeAuto {
		t.Error("reset did not restore auto mode")
	}
}

func TestSetApplicationClocksSnapsAndRejectsBadMem(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	applied, err := d.SetApplicationClocks(0, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1005 {
		t.Errorf("snap: %d, want 1005", applied)
	}
	if _, err := d.SetApplicationClocks(300, 1005); err == nil {
		t.Error("far-off memory clock accepted")
	}
	if _, err := d.SetApplicationClocks(d.Spec().MemClockMHz, 1005); err != nil {
		t.Errorf("matching memory clock rejected: %v", err)
	}
}

func TestMemoryClockScaling(t *testing.T) {
	// Selecting a lower memory clock stretches bandwidth-bound kernels and
	// lowers memory power; compute-bound kernels barely notice. The paper
	// keeps the memory clock at maximum; this is the control it holds fixed.
	k := memKernel()
	run := func(memMHz int) (timeS, powerW float64) {
		d := NewDevice(A100SXM480GB(), 0)
		if _, err := d.SetApplicationClocks(memMHz, 1410); err != nil {
			t.Fatal(err)
		}
		dt := d.Execute(k)
		return dt, d.PowerW()
	}
	tFull, _ := run(1593)
	tLow, _ := run(810)
	ratio := tLow / tFull
	if ratio < 1.6 || ratio > 2.2 {
		t.Errorf("memory-bound kernel at 810/1593 MHz mem clock slowed %vx, want ~1.97x", ratio)
	}
	// Compute kernel: nearly unaffected in time.
	ck := computeKernel()
	dFull := NewDevice(A100SXM480GB(), 0)
	dFull.SetApplicationClocks(1593, 1410)
	cFull := dFull.Execute(ck)
	dLow := NewDevice(A100SXM480GB(), 0)
	dLow.SetApplicationClocks(810, 1410)
	cLow := dLow.Execute(ck)
	if cLow/cFull > 1.05 {
		t.Errorf("compute kernel slowed %vx under memory down-clock", cLow/cFull)
	}
}

func TestMemClockTable(t *testing.T) {
	s := A100SXM480GB()
	clocks := s.MemClocksMHz()
	if clocks[0] != 1593 {
		t.Errorf("default mem clock %d", clocks[0])
	}
	if s.NearestMemClock(0) != 1593 {
		t.Error("0 should select the default memory clock")
	}
	if s.NearestMemClock(1400) != 1365 {
		t.Errorf("NearestMemClock(1400) = %d", s.NearestMemClock(1400))
	}
	// Specs without a table expose only the default.
	noTable := s
	noTable.SupportedMemClocksMHz = nil
	if got := noTable.MemClocksMHz(); len(got) != 1 || got[0] != 1593 {
		t.Errorf("tableless mem clocks: %v", got)
	}
}

func TestComputeKernelScalesWithFrequency(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	k := computeKernel()
	d.SetApplicationClocks(0, 1410)
	tHigh := d.Execute(k)
	d.SetApplicationClocks(0, 705)
	tLow := d.Execute(k)
	ratio := tLow / tHigh
	if ratio < 1.7 || ratio > 2.1 {
		t.Errorf("compute kernel 705/1410 time ratio %v, want ~2", ratio)
	}
}

func TestMemoryKernelFrequencyInsensitive(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	k := memKernel()
	d.SetApplicationClocks(0, 1410)
	tHigh := d.Execute(k)
	d.SetApplicationClocks(0, 705)
	tLow := d.Execute(k)
	if tLow/tHigh > 1.1 {
		t.Errorf("memory kernel slowed %vx at half clock, want < 1.1x", tLow/tHigh)
	}
}

func TestPowerWithinBounds(t *testing.T) {
	for _, s := range specs() {
		d := NewDevice(s, 0)
		d.SetApplicationClocks(0, s.MaxSMClockMHz)
		d.Execute(computeKernel())
		p := d.PowerW()
		if p < s.IdlePowerW || p > s.TDPW {
			t.Errorf("%s: power %v outside [%v, %v]", s.Name, p, s.IdlePowerW, s.TDPW)
		}
		d.Idle(0.1)
		if got := d.PowerW(); math.Abs(got-s.IdlePowerW) > 1e-9 {
			t.Errorf("%s: locked idle power %v, want %v", s.Name, got, s.IdlePowerW)
		}
	}
}

func TestPowerDropsWithFrequency(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	k := computeKernel()
	d.SetApplicationClocks(0, 1410)
	d.Execute(k)
	pHigh := d.PowerW()
	d.SetApplicationClocks(0, 1005)
	d.Execute(k)
	pLow := d.PowerW()
	if pLow >= pHigh {
		t.Errorf("power did not drop with clock: %v -> %v", pHigh, pLow)
	}
}

func TestEnergyTradeoffShape(t *testing.T) {
	// The core DVFS physics: for a compute-bound kernel, down-scaling saves
	// energy (E = P t with P dropping faster than t grows), yet EDP rises
	// or stays flat — the paper's Fig. 8 behaviour.
	k := computeKernel()
	run := func(mhz int) (timeS, energyJ float64) {
		d := NewDevice(A100SXM480GB(), 0)
		d.SetApplicationClocks(0, mhz)
		e0 := d.EnergyJ()
		dt := d.Execute(k)
		return dt, d.EnergyJ() - e0
	}
	tHigh, eHigh := run(1410)
	tLow, eLow := run(1005)
	if eLow >= eHigh {
		t.Errorf("down-scaling did not save energy: %v -> %v", eHigh, eLow)
	}
	if eLow*tLow < eHigh*tHigh*0.95 {
		t.Errorf("compute-bound EDP improved too much at 1005: %v vs %v",
			eLow*tLow, eHigh*tHigh)
	}
}

func TestIdleAccountsTimeAndEnergy(t *testing.T) {
	d := NewDevice(A100PCIE40GB(), 0)
	d.SetApplicationClocks(0, 1410)
	d.Idle(2.5)
	if math.Abs(d.Now()-2.5) > 1e-12 {
		t.Errorf("Now = %v, want 2.5", d.Now())
	}
	want := d.Spec().IdlePowerW * 2.5
	if math.Abs(d.EnergyJ()-want) > 1e-9 {
		t.Errorf("idle energy %v, want %v", d.EnergyJ(), want)
	}
	d.Idle(-1) // no-op
	if d.Now() != 2.5 {
		t.Error("negative idle advanced time")
	}
}

func TestUtilizationTracksActivity(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	for i := 0; i < 10; i++ {
		d.Execute(computeKernel())
	}
	busy := d.Utilization()
	if busy < 0.9 {
		t.Errorf("utilization after sustained kernels %v, want > 0.9", busy)
	}
	d.Idle(5)
	if d.Utilization() > 0.1 {
		t.Errorf("utilization after long idle %v, want < 0.1", d.Utilization())
	}
}

func TestKernelsRunCountsLaunches(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	d.Execute(KernelDesc{Name: "multi", Items: 1e6, FlopsPerItem: 10, BytesPerItem: 10, Launches: 64})
	d.Execute(KernelDesc{Name: "single", Items: 1e6, FlopsPerItem: 10, BytesPerItem: 10})
	if got := d.KernelsRun(); got != 65 {
		t.Errorf("KernelsRun = %d, want 65", got)
	}
}

func TestTraceRecordsKernels(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	tr := d.EnableTrace()
	d.SetApplicationClocks(0, 1410)
	d.Execute(computeKernel())
	d.Idle(0.05)
	if tr.Len() == 0 {
		t.Fatal("trace empty")
	}
	if m, ok := tr.ClockOfKernel("compute"); !ok || m != 1410 {
		t.Errorf("traced kernel clock %v ok=%v", m, ok)
	}
	lo, hi := tr.MinMaxClock()
	if lo > hi {
		t.Error("MinMaxClock inverted")
	}
}

func TestFrequencySensitivityBounds(t *testing.T) {
	s := A100SXM480GB()
	f := func(flopsRaw, bytesRaw float64) bool {
		k := KernelDesc{
			Items:        10e6,
			FlopsPerItem: math.Abs(flopsRaw),
			BytesPerItem: math.Abs(bytesRaw) + 1,
			EffFactor:    0.5,
		}
		if math.IsInf(k.FlopsPerItem, 0) || math.IsNaN(k.FlopsPerItem) ||
			k.FlopsPerItem > 1e15 || k.BytesPerItem > 1e15 {
			// Physically meaningless workloads (overflow territory).
			return true
		}
		b := k.FrequencySensitivity(s)
		return b >= 0 && b <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Ordering: more flops per byte => more sensitive.
	low := KernelDesc{Items: 10e6, FlopsPerItem: 10, BytesPerItem: 1000, EffFactor: 0.5}
	high := KernelDesc{Items: 10e6, FlopsPerItem: 10000, BytesPerItem: 10, EffFactor: 0.5}
	if low.FrequencySensitivity(s) >= high.FrequencySensitivity(s) {
		t.Error("beta ordering violated")
	}
}

func TestEstimateDurationMatchesExecution(t *testing.T) {
	s := A100PCIE40GB()
	k := computeKernel()
	d := NewDevice(s, 0)
	d.SetApplicationClocks(0, 1110)
	got := d.Execute(k)
	want := k.EstimateDuration(s, 1110)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Execute %v != EstimateDuration %v", got, want)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	k := KernelDesc{FlopsPerItem: 100, BytesPerItem: 25}
	if k.ArithmeticIntensity() != 4 {
		t.Errorf("intensity = %v", k.ArithmeticIntensity())
	}
	inf := KernelDesc{FlopsPerItem: 100}
	if !math.IsInf(inf.ArithmeticIntensity(), 1) {
		t.Error("zero-byte kernel intensity not +Inf")
	}
}

func TestVendorString(t *testing.T) {
	if Nvidia.String() != "nvidia" || AMD.String() != "amd" {
		t.Error("vendor strings")
	}
}

func TestTraceWindowAndCSV(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	tr := d.EnableTrace()
	d.SetApplicationClocks(0, 1410)
	d.Execute(computeKernel())
	mid := d.Now()
	d.Idle(0.1)
	d.Execute(memKernel())

	all := tr.Points()
	win := tr.Window(0, mid)
	if len(win) == 0 || len(win) >= len(all) {
		t.Errorf("window has %d of %d points", len(win), len(all))
	}
	for _, p := range win {
		if p.TimeS >= mid {
			t.Fatal("window leaked later samples")
		}
	}

	var buf strings.Builder
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_s,clock_mhz,power_w,kernel") {
		t.Errorf("csv header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if !strings.Contains(out, "compute") || !strings.Contains(out, "memory") {
		t.Error("csv missing kernel labels")
	}
	if rows := strings.Count(out, "\n"); rows != len(all)+1 {
		t.Errorf("csv has %d rows, want %d", rows, len(all)+1)
	}
}

func TestConcurrentManagementPlane(t *testing.T) {
	// The rank goroutine executes kernels while the management plane (NVML
	// queries, pm_counters sampling) polls concurrently — the deployment
	// pattern of the paper's out-of-band monitoring. Run with -race.
	d := NewDevice(A100SXM480GB(), 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			d.Execute(memKernel())
			d.Idle(0.001)
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			_ = d.EnergyJ()
			_ = d.PowerW()
			_ = d.SMClockMHz()
			_ = d.Utilization()
			_ = d.ThrottleReasons()
		}
	}
}

func TestPureRooflineOverlapAblation(t *testing.T) {
	// Under the ideal-overlap model a balanced kernel is faster and becomes
	// all-or-nothing in frequency sensitivity.
	// Balanced at the A100's effective flop/byte point: tc ~= tm.
	balanced := KernelDesc{Items: 50e6, FlopsPerItem: 3000, BytesPerItem: 1260, EffFactor: 0.5}
	add := A100SXM480GB()
	roof := A100SXM480GB()
	roof.PureRooflineOverlap = true
	tAdd := balanced.EstimateDuration(add, 1410)
	tRoof := balanced.EstimateDuration(roof, 1410)
	if tRoof >= tAdd {
		t.Errorf("roofline %v not faster than additive %v", tRoof, tAdd)
	}
	bAdd := balanced.FrequencySensitivity(add)
	bRoof := balanced.FrequencySensitivity(roof)
	if bAdd <= 0.2 || bAdd >= 0.8 {
		t.Errorf("additive beta %v, want interior", bAdd)
	}
	if bRoof > 0.05 && bRoof < 0.95 {
		t.Errorf("roofline beta %v, want all-or-nothing", bRoof)
	}
}

func TestKernelEnergiesGroundTruth(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	if _, err := d.SetApplicationClocks(0, 1005); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d.Execute(computeKernel())
	}
	d.Execute(memKernel())
	d.Idle(0.5)

	ks := d.KernelEnergies()
	if len(ks) != 2 {
		t.Fatalf("kernels = %d, want 2", len(ks))
	}
	byName := map[string]KernelEnergy{}
	var sumJ, sumT float64
	for _, k := range ks {
		byName[k.Name] = k
		sumJ += k.EnergyJ
		sumT += k.TimeS
	}
	if byName["compute"].Launches != 3 || byName["memory"].Launches != 1 {
		t.Fatalf("launch counts = %+v", byName)
	}
	if byName["compute"].EnergyJ <= 0 || byName["memory"].EnergyJ <= 0 {
		t.Fatal("kernel energies must be positive")
	}
	// Per-kernel accounting + idle must reconstruct the device counter.
	idleJ := 0.5 * A100SXM480GB().IdlePowerW
	total := d.EnergyJ()
	if diff := total - sumJ - idleJ; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum(kernels)+idle = %v, device counter = %v", sumJ+idleJ, total)
	}
	if bt := d.BusySeconds(); bt-sumT > 1e-12 || sumT-bt > 1e-12 {
		t.Fatalf("sum kernel time %v != busy seconds %v", sumT, bt)
	}
	// Sorted by descending energy.
	for i := 1; i < len(ks); i++ {
		if ks[i].EnergyJ > ks[i-1].EnergyJ {
			t.Fatal("KernelEnergies not sorted by energy")
		}
	}
}
