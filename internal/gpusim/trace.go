package gpusim

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
	"sync"
)

// TracePoint is one sample of the device's frequency/power trajectory.
type TracePoint struct {
	TimeS    float64
	ClockMHz int
	PowerW   float64
	Kernel   string // kernel or event label, empty for idle samples
}

// PointSink receives trace points as they are recorded — the shared-sink
// path that lets a telemetry tracer mirror the trace without a second lock
// acquisition inside the trace (the sink runs after the trace releases its
// own mutex). Sinks must not call back into the Trace.
type PointSink func(TracePoint)

// Trace records the frequency and power trajectory of a device, the data
// behind the paper's Fig. 9 DVFS measurement. Device virtual time is
// monotonic, so points arrive in nondecreasing TimeS order — Window relies
// on that invariant for its binary search.
type Trace struct {
	mu     sync.Mutex
	points []TracePoint
	sink   PointSink
}

// NewTrace creates an empty trace.
func NewTrace() *Trace { return &Trace{} }

// SetSink installs a live forwarding sink; nil removes it. Each point added
// after this call is passed to the sink outside the trace's lock.
func (t *Trace) SetSink(s PointSink) {
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
}

// Add appends a sample and forwards it to the sink, if any.
func (t *Trace) Add(p TracePoint) {
	t.mu.Lock()
	t.points = append(t.points, p)
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		sink(p)
	}
}

// AppendTo replays every recorded point into the sink, in time order. It
// snapshots under the lock and calls the sink unlocked, so a tracer
// attached mid-run can backfill history without blocking recording.
func (t *Trace) AppendTo(sink PointSink) {
	if sink == nil {
		return
	}
	for _, p := range t.Points() {
		sink(p)
	}
}

// Points returns a copy of the recorded samples in time order.
func (t *Trace) Points() []TracePoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TracePoint, len(t.points))
	copy(out, t.points)
	return out
}

// Len returns the number of samples.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.points)
}

// MinMaxClock returns the lowest and highest clocks observed, 0,0 if empty.
func (t *Trace) MinMaxClock() (min, max int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.points) == 0 {
		return 0, 0
	}
	min, max = t.points[0].ClockMHz, t.points[0].ClockMHz
	for _, p := range t.points[1:] {
		if p.ClockMHz < min {
			min = p.ClockMHz
		}
		if p.ClockMHz > max {
			max = p.ClockMHz
		}
	}
	return
}

// Window returns the samples with TimeS in [t0, t1). Points are
// time-ordered, so both window edges resolve by binary search instead of a
// scan over the full trace.
func (t *Trace) Window(t0, t1 float64) []TracePoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	lo := sort.Search(len(t.points), func(i int) bool { return t.points[i].TimeS >= t0 })
	hi := sort.Search(len(t.points), func(i int) bool { return t.points[i].TimeS >= t1 })
	if lo >= hi {
		return nil
	}
	out := make([]TracePoint, hi-lo)
	copy(out, t.points[lo:hi])
	return out
}

// WriteCSV exports the trace as time_s,clock_mhz,power_w,kernel rows — the
// raw data behind the Fig. 9 plot.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "clock_mhz", "power_w", "kernel"}); err != nil {
		return err
	}
	for _, p := range t.Points() {
		row := []string{
			strconv.FormatFloat(p.TimeS, 'g', 10, 64),
			strconv.Itoa(p.ClockMHz),
			strconv.FormatFloat(p.PowerW, 'g', 8, 64),
			p.Kernel,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ClockOfKernel returns the mean clock over samples labeled with the kernel
// name, and whether any such samples exist.
func (t *Trace) ClockOfKernel(name string) (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sum, n := 0.0, 0
	for _, p := range t.points {
		if p.Kernel == name {
			sum += float64(p.ClockMHz)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
