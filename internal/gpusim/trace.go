package gpusim

import (
	"encoding/csv"
	"io"
	"strconv"
	"sync"
)

// TracePoint is one sample of the device's frequency/power trajectory.
type TracePoint struct {
	TimeS    float64
	ClockMHz int
	PowerW   float64
	Kernel   string // kernel or event label, empty for idle samples
}

// Trace records the frequency and power trajectory of a device, the data
// behind the paper's Fig. 9 DVFS measurement.
type Trace struct {
	mu     sync.Mutex
	points []TracePoint
}

// NewTrace creates an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Add appends a sample.
func (t *Trace) Add(p TracePoint) {
	t.mu.Lock()
	t.points = append(t.points, p)
	t.mu.Unlock()
}

// Points returns a copy of the recorded samples in time order.
func (t *Trace) Points() []TracePoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TracePoint, len(t.points))
	copy(out, t.points)
	return out
}

// Len returns the number of samples.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.points)
}

// MinMaxClock returns the lowest and highest clocks observed, 0,0 if empty.
func (t *Trace) MinMaxClock() (min, max int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.points) == 0 {
		return 0, 0
	}
	min, max = t.points[0].ClockMHz, t.points[0].ClockMHz
	for _, p := range t.points[1:] {
		if p.ClockMHz < min {
			min = p.ClockMHz
		}
		if p.ClockMHz > max {
			max = p.ClockMHz
		}
	}
	return
}

// Window returns the samples with TimeS in [t0, t1).
func (t *Trace) Window(t0, t1 float64) []TracePoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TracePoint
	for _, p := range t.points {
		if p.TimeS >= t0 && p.TimeS < t1 {
			out = append(out, p)
		}
	}
	return out
}

// WriteCSV exports the trace as time_s,clock_mhz,power_w,kernel rows — the
// raw data behind the Fig. 9 plot.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "clock_mhz", "power_w", "kernel"}); err != nil {
		return err
	}
	for _, p := range t.Points() {
		row := []string{
			strconv.FormatFloat(p.TimeS, 'g', 10, 64),
			strconv.Itoa(p.ClockMHz),
			strconv.FormatFloat(p.PowerW, 'g', 8, 64),
			p.Kernel,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ClockOfKernel returns the mean clock over samples labeled with the kernel
// name, and whether any such samples exist.
func (t *Trace) ClockOfKernel(name string) (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sum, n := 0.0, 0
	for _, p := range t.points {
		if p.Kernel == name {
			sum += float64(p.ClockMHz)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
