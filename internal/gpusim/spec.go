// Package gpusim simulates a GPU device at the granularity the paper's
// instrumentation observes: clock domains with application-clock locking,
// a DVFS governor, a roofline-style kernel timing model, and a CMOS power
// model integrated over virtual time.
//
// The simulator substitutes for the A100 and MI250X hardware of the paper
// (see DESIGN.md): the phenomena under study — compute-bound kernels slowing
// down proportionally to 1/f, memory- and launch-bound kernels being
// insensitive to f, and power dropping superlinearly with frequency via the
// V(f) curve — are properties of this model, calibrated against public
// device specifications.
package gpusim

import (
	"fmt"
	"sort"
)

// Vendor distinguishes the management API family a device responds to.
type Vendor int

// Supported vendors.
const (
	Nvidia Vendor = iota
	AMD
)

// String implements fmt.Stringer.
func (v Vendor) String() string {
	if v == AMD {
		return "amd"
	}
	return "nvidia"
}

// VoltagePoint is one point of the voltage-frequency curve.
type VoltagePoint struct {
	MHz   int
	Volts float64
}

// Spec describes a GPU model. All power figures are for one addressable
// device: a full A100 card, or a single GCD of an MI250X.
type Spec struct {
	Name   string
	Vendor Vendor

	// Clock domains.
	MaxSMClockMHz  int // maximum boost/application clock
	MinSMClockMHz  int // lowest supported application clock
	SMClockStepMHz int // application clock granularity
	IdleSMClockMHz int // parked clock when idle under DVFS
	MemClockMHz    int // default/maximum memory clock
	// SupportedMemClocksMHz lists selectable memory clocks, descending;
	// empty means only MemClockMHz. The paper's instrumentation can set the
	// memory clock but keeps it at the maximum — the model scales memory
	// bandwidth and memory power with the selected clock.
	SupportedMemClocksMHz []int

	// Throughput at MaxSMClock.
	PeakGFLOPS float64 // FP64 peak, GFLOP/s
	MemBWGBs   float64 // memory bandwidth, GB/s
	MemSizeGB  float64

	// Power model.
	IdlePowerW   float64 // clock-gated idle floor
	MaxSMPowerW  float64 // dynamic SM power at fmax, Vmax, full activity
	MaxMemPowerW float64 // memory subsystem power at full bandwidth
	TDPW         float64 // board power cap
	VoltageCurve []VoltagePoint

	// Execution overheads.
	KernelLaunchOverheadS float64 // CPU+driver cost per kernel launch (wall time)
	SaturationItems       float64 // work items at which throughput reaches ~50% of peak scaling knee

	// PureRooflineOverlap switches the kernel body time from the additive
	// tc + tm model (partial overlap, the default) to the ideal roofline
	// max(tc, tm) (perfect compute/memory overlap). An ablation knob: the
	// additive model reproduces the paper's smooth frequency sensitivity,
	// the pure roofline makes kernels all-or-nothing.
	PureRooflineOverlap bool

	// Governor dynamics (DVFS mode).
	RampTauS    float64 // exponential clock ramp time constant
	BoostHoldS  float64 // time clocks stay up after a kernel completes
	IdleDecayS  float64 // decay time constant toward idle clock
	DVFSMarginW float64 // extra stability power overhead while in auto mode
}

// Validate checks internal consistency of a spec.
func (s Spec) Validate() error {
	if s.MaxSMClockMHz <= s.MinSMClockMHz {
		return fmt.Errorf("gpusim: %s: max clock %d <= min clock %d", s.Name, s.MaxSMClockMHz, s.MinSMClockMHz)
	}
	if s.SMClockStepMHz <= 0 {
		return fmt.Errorf("gpusim: %s: non-positive clock step", s.Name)
	}
	if len(s.VoltageCurve) < 2 {
		return fmt.Errorf("gpusim: %s: voltage curve needs >= 2 points", s.Name)
	}
	for i := 1; i < len(s.VoltageCurve); i++ {
		if s.VoltageCurve[i].MHz <= s.VoltageCurve[i-1].MHz {
			return fmt.Errorf("gpusim: %s: voltage curve not increasing in MHz", s.Name)
		}
		if s.VoltageCurve[i].Volts < s.VoltageCurve[i-1].Volts {
			return fmt.Errorf("gpusim: %s: voltage curve not monotone in volts", s.Name)
		}
	}
	if s.PeakGFLOPS <= 0 || s.MemBWGBs <= 0 {
		return fmt.Errorf("gpusim: %s: non-positive throughput", s.Name)
	}
	for _, m := range s.SupportedMemClocksMHz {
		if m <= 0 || m > s.MemClockMHz {
			return fmt.Errorf("gpusim: %s: memory clock %d outside (0, %d]", s.Name, m, s.MemClockMHz)
		}
	}
	return nil
}

// MemClocksMHz returns the selectable memory clocks, descending.
func (s Spec) MemClocksMHz() []int {
	if len(s.SupportedMemClocksMHz) == 0 {
		return []int{s.MemClockMHz}
	}
	return append([]int(nil), s.SupportedMemClocksMHz...)
}

// NearestMemClock snaps a requested memory clock to the closest supported
// one; 0 selects the default (maximum).
func (s Spec) NearestMemClock(mhz int) int {
	if mhz == 0 {
		return s.MemClockMHz
	}
	clocks := s.MemClocksMHz()
	best := clocks[0]
	bestD := abs(mhz - best)
	for _, c := range clocks[1:] {
		if d := abs(mhz - c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// SupportedClocksMHz lists the application clocks the device accepts, in
// descending order (the NVML convention).
func (s Spec) SupportedClocksMHz() []int {
	var out []int
	for f := s.MaxSMClockMHz; f >= s.MinSMClockMHz; f -= s.SMClockStepMHz {
		out = append(out, f)
	}
	return out
}

// NearestSupportedClock snaps a requested clock to the closest supported
// application clock.
func (s Spec) NearestSupportedClock(mhz int) int {
	clocks := s.SupportedClocksMHz()
	best := clocks[0]
	bestD := abs(mhz - best)
	for _, c := range clocks[1:] {
		if d := abs(mhz - c); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// VoltageAt interpolates the core voltage at a clock frequency, clamping to
// the curve's ends.
func (s Spec) VoltageAt(mhz int) float64 {
	c := s.VoltageCurve
	if mhz <= c[0].MHz {
		return c[0].Volts
	}
	last := c[len(c)-1]
	if mhz >= last.MHz {
		return last.Volts
	}
	i := sort.Search(len(c), func(j int) bool { return c[j].MHz >= mhz }) // first >= mhz
	lo, hi := c[i-1], c[i]
	t := float64(mhz-lo.MHz) / float64(hi.MHz-lo.MHz)
	return lo.Volts + t*(hi.Volts-lo.Volts)
}

// A100SXM480GB models the Nvidia A100-SXM4 80 GB of the CSCS-A100 system
// (Table I): 1410 MHz max SM clock, 1593 MHz memory clock.
func A100SXM480GB() Spec {
	return Spec{
		Name:                  "NVIDIA A100-SXM4-80GB",
		Vendor:                Nvidia,
		MaxSMClockMHz:         1410,
		MinSMClockMHz:         210,
		SMClockStepMHz:        15,
		IdleSMClockMHz:        210,
		MemClockMHz:           1593,
		SupportedMemClocksMHz: []int{1593, 1365, 810},
		PeakGFLOPS:            9700, // FP64 with FMA
		MemBWGBs:              2039,
		MemSizeGB:             80,
		IdlePowerW:            50,
		MaxSMPowerW:           260,
		MaxMemPowerW:          85,
		TDPW:                  400,
		VoltageCurve: []VoltagePoint{
			{210, 0.70}, {705, 0.78}, {1005, 0.88}, {1215, 1.00}, {1410, 1.05},
		},
		KernelLaunchOverheadS: 6e-6,
		SaturationItems:       2.0e6,
		RampTauS:              2e-3,
		BoostHoldS:            10e-3,
		IdleDecayS:            80e-3,
		DVFSMarginW:           16,
	}
}

// A100PCIE40GB models the Nvidia A100-PCIe 40 GB of the miniHPC system.
func A100PCIE40GB() Spec {
	s := A100SXM480GB()
	s.Name = "NVIDIA A100-PCIE-40GB"
	s.MemSizeGB = 40
	s.MemBWGBs = 1555
	s.TDPW = 250
	s.IdlePowerW = 32
	s.MaxSMPowerW = 175
	s.MaxMemPowerW = 55
	return s
}

// MI250XGCD models one Graphics Compute Die (half card) of an AMD MI250X as
// deployed in LUMI-G: 1700 MHz compute clock, 1600 MHz memory clock, 64 GB.
// Power figures are per GCD (half of the 560 W card).
func MI250XGCD() Spec {
	return Spec{
		Name:                  "AMD MI250X GCD",
		Vendor:                AMD,
		MaxSMClockMHz:         1700,
		MinSMClockMHz:         500,
		SMClockStepMHz:        50,
		IdleSMClockMHz:        500,
		MemClockMHz:           1600,
		SupportedMemClocksMHz: []int{1600, 1300, 800},
		PeakGFLOPS:            23950, // per GCD FP64 peak
		MemBWGBs:              1638,  // per GCD
		MemSizeGB:             64,
		IdlePowerW:            65,
		MaxSMPowerW:           260,
		MaxMemPowerW:          70,
		TDPW:                  300,
		VoltageCurve: []VoltagePoint{
			{500, 0.70}, {900, 0.78}, {1200, 0.88}, {1500, 1.00}, {1700, 1.05},
		},
		KernelLaunchOverheadS: 8e-6,
		SaturationItems:       2.5e6,
		RampTauS:              2.5e-3,
		BoostHoldS:            10e-3,
		IdleDecayS:            80e-3,
		DVFSMarginW:           16,
	}
}
