package gpusim

import "math"

// KernelDesc characterizes one GPU kernel launch batch: the computational
// work it performs and how that work stresses the device. The SPH layer
// produces one descriptor per instrumented function and step.
type KernelDesc struct {
	// Name labels the kernel in traces and per-function accounting.
	Name string

	// Items is the number of independent work items (typically particles).
	Items float64

	// FlopsPerItem and BytesPerItem describe the arithmetic work and memory
	// traffic per item. Their ratio against the device's FLOP/byte balance
	// point determines the kernel's frequency sensitivity.
	FlopsPerItem float64
	BytesPerItem float64

	// Launches is the number of individual kernel launches this descriptor
	// represents (lightweight multi-launch phases such as the paper's
	// DomainDecompAndSync set this high).
	Launches int

	// EffFactor scales the achieved throughput relative to device peak
	// (code-quality/implementation maturity on this architecture); 0 means 1.
	EffFactor float64
}

func (k KernelDesc) launches() int {
	if k.Launches < 1 {
		return 1
	}
	return k.Launches
}

func (k KernelDesc) eff() float64 {
	if k.EffFactor <= 0 {
		return 1
	}
	return k.EffFactor
}

// kernelTiming holds the frequency-decomposed execution profile of a kernel
// on a given device.
type kernelTiming struct {
	// freqScaledS is the portion of the kernel body (seconds at fmax) that
	// scales inversely with SM frequency (compute/issue/latency cycles).
	freqScaledS float64
	// flatS is the frequency-insensitive portion (memory bandwidth bound).
	flatS float64
	// overheadS is launch/driver overhead in wall time, paid per launch.
	overheadS float64
	// smActivity and memActivity in [0,1] drive the power model.
	smActivity, memActivity float64
	// cFrac is the compute-bound fraction tc/(tc+tm); the power model uses
	// it for the stall-refill effect (see Device.kernelPower).
	cFrac float64
	// occupancy in (0,1] is the device fill level; the governor's
	// utilization heuristic reads it.
	occupancy float64
}

// timing computes the kernel profile for a spec. The model:
//
//	t_compute(fmax) = flops / (peak · eff · occupancy)
//	t_memory        = bytes / (BW · occupancy)
//
// with occupancy = items/(items + knee) capturing the throughput loss of
// under-filled devices. The compute part scales with fmax/f at a lower
// frequency f; the memory part does not (HBM clock held constant, as in the
// paper's experiments).
func (k KernelDesc) timing(s Spec) kernelTiming {
	occ := k.Items / (k.Items + s.SaturationItems)
	if occ <= 0 {
		occ = 1e-6
	}
	flops := k.Items * k.FlopsPerItem
	bytes := k.Items * k.BytesPerItem
	tc := flops / (s.PeakGFLOPS * 1e9 * k.eff() * occ)
	tm := bytes / (s.MemBWGBs * 1e9 * occ)
	if s.PureRooflineOverlap {
		// Perfect overlap: the shorter phase hides entirely behind the
		// longer one. Attribute the hidden phase's time to the visible one
		// so the frequency decomposition stays consistent.
		if tc >= tm {
			tm = 0
		} else {
			tc = 0
		}
	}
	tot := tc + tm
	var smAct, memAct, cFrac float64
	if tot > 0 {
		cFrac = tc / tot
		smAct = 0.35 + 0.65*cFrac // even memory-bound kernels toggle SMs
		memAct = 0.15 + 0.85*tm/tot
	}
	return kernelTiming{
		freqScaledS: tc,
		flatS:       tm,
		overheadS:   float64(k.launches()) * s.KernelLaunchOverheadS,
		smActivity:  smAct,
		memActivity: memAct,
		cFrac:       cFrac,
		occupancy:   occ,
	}
}

// durationAt returns the kernel body + overhead duration when the SM clock
// runs at mhz.
func (t kernelTiming) durationAt(s Spec, mhz int) float64 {
	scale := float64(s.MaxSMClockMHz) / float64(mhz)
	return t.freqScaledS*scale + t.flatS + t.overheadS
}

// FrequencySensitivity returns the β ∈ [0,1] fraction of the kernel body
// that scales with frequency, a diagnostic used by tests and the governor's
// utilization heuristic.
func (k KernelDesc) FrequencySensitivity(s Spec) float64 {
	t := k.timing(s)
	body := t.freqScaledS + t.flatS + t.overheadS
	if body <= 0 {
		return 0
	}
	return t.freqScaledS / body
}

// EstimateDuration predicts the wall time of the kernel at a locked clock,
// without executing it on a device. Used by the tuner's dry-run mode and by
// tests.
func (k KernelDesc) EstimateDuration(s Spec, mhz int) float64 {
	return k.timing(s).durationAt(s, mhz)
}

// ArithmeticIntensity returns flops/byte for the descriptor.
func (k KernelDesc) ArithmeticIntensity() float64 {
	if k.BytesPerItem == 0 {
		return math.Inf(1)
	}
	return k.FlopsPerItem / k.BytesPerItem
}
