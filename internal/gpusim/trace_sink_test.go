package gpusim

import (
	"testing"
)

func TestWindowBinarySearch(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 100; i++ {
		tr.Add(TracePoint{TimeS: float64(i) * 0.1, ClockMHz: 1410})
	}
	// Half-open [t0, t1): 2.0 included, 5.0 excluded.
	win := tr.Window(2.0, 5.0)
	if len(win) != 30 {
		t.Fatalf("window has %d points, want 30", len(win))
	}
	if win[0].TimeS != 2.0 {
		t.Errorf("first point at %v, want 2.0", win[0].TimeS)
	}
	if last := win[len(win)-1].TimeS; last >= 5.0 {
		t.Errorf("last point at %v, want < 5.0", last)
	}
	if got := tr.Window(50, 60); got != nil {
		t.Errorf("out-of-range window = %v, want nil", got)
	}
	if got := tr.Window(3, 3); got != nil {
		t.Errorf("empty window = %v, want nil", got)
	}
	empty := NewTrace()
	if got := empty.Window(0, 1); got != nil {
		t.Errorf("empty trace window = %v, want nil", got)
	}
}

func TestWindowDuplicateTimestamps(t *testing.T) {
	tr := NewTrace()
	// Clock-change markers share the timestamp of the preceding sample.
	tr.Add(TracePoint{TimeS: 1.0, Kernel: "a"})
	tr.Add(TracePoint{TimeS: 1.0, Kernel: "set-app-clocks"})
	tr.Add(TracePoint{TimeS: 2.0, Kernel: "b"})
	if got := len(tr.Window(1.0, 2.0)); got != 2 {
		t.Errorf("window over duplicates has %d points, want 2", got)
	}
}

func TestTraceSinkForwardsLive(t *testing.T) {
	tr := NewTrace()
	tr.Add(TracePoint{TimeS: 0.5, ClockMHz: 1410, PowerW: 100})
	var got []TracePoint
	tr.SetSink(func(p TracePoint) { got = append(got, p) })
	tr.Add(TracePoint{TimeS: 1.0, ClockMHz: 1005, PowerW: 200, Kernel: "iad"})
	if len(got) != 1 || got[0].Kernel != "iad" {
		t.Fatalf("sink received %v", got)
	}
	// The point is also retained in the trace itself.
	if tr.Len() != 2 {
		t.Errorf("trace len = %d, want 2", tr.Len())
	}
	tr.SetSink(nil)
	tr.Add(TracePoint{TimeS: 2.0})
	if len(got) != 1 {
		t.Error("removed sink still called")
	}
}

func TestTraceAppendToBackfills(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 5; i++ {
		tr.Add(TracePoint{TimeS: float64(i)})
	}
	var got []TracePoint
	tr.AppendTo(func(p TracePoint) { got = append(got, p) })
	if len(got) != 5 {
		t.Fatalf("backfilled %d points, want 5", len(got))
	}
	for i, p := range got {
		if p.TimeS != float64(i) {
			t.Errorf("point %d at %v", i, p.TimeS)
		}
	}
	tr.AppendTo(nil) // must not panic
}

// observerRecorder captures device observer callbacks.
type observerRecorder struct {
	kernels []string
	clocks  []int
	causes  []string
}

func (o *observerRecorder) KernelLaunched(name string, startS, durS float64, clockMHz int, energyJ float64) {
	o.kernels = append(o.kernels, name)
	if durS <= 0 || energyJ <= 0 {
		panic("non-positive kernel duration/energy")
	}
}

func (o *observerRecorder) ClockChanged(timeS float64, clockMHz int, cause string) {
	o.clocks = append(o.clocks, clockMHz)
	o.causes = append(o.causes, cause)
}

func TestDeviceObserver(t *testing.T) {
	dev := NewDevice(A100SXM480GB(), 0)
	rec := &observerRecorder{}
	dev.SetObserver(rec)

	if _, err := dev.SetApplicationClocks(0, 1005); err != nil {
		t.Fatal(err)
	}
	dev.Execute(computeKernel())
	dev.Idle(0.01) // idle is not a kernel launch
	dev.ResetApplicationClocks()

	if len(rec.kernels) != 1 || rec.kernels[0] != "compute" {
		t.Errorf("kernel events = %v", rec.kernels)
	}
	if len(rec.clocks) != 2 || rec.clocks[0] != 1005 {
		t.Errorf("clock events = %v", rec.clocks)
	}
	if rec.causes[0] != "set-app-clocks" || rec.causes[1] != "reset-app-clocks" {
		t.Errorf("causes = %v", rec.causes)
	}

	dev.SetObserver(nil)
	dev.Execute(computeKernel())
	if len(rec.kernels) != 1 {
		t.Error("removed observer still called")
	}
}
