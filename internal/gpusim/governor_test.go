package gpusim

import (
	"math"
	"testing"
)

func TestGovernorBoostsOnKernel(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0) // starts in auto mode at idle clock
	if d.SMClockMHz() != d.Spec().IdleSMClockMHz {
		t.Fatalf("initial clock %d, want idle %d", d.SMClockMHz(), d.Spec().IdleSMClockMHz)
	}
	d.Execute(computeKernel())
	if d.SMClockMHz() < 1200 {
		t.Errorf("clock after compute kernel %d, want boosted", d.SMClockMHz())
	}
}

func TestGovernorComputeKernelReachesMax(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	// A long compute-heavy kernel must pull the clock to the maximum —
	// the MomentumEnergy pattern of Fig. 9.
	d.Execute(computeKernel())
	d.Execute(computeKernel())
	if got := d.SMClockMHz(); got < d.Spec().MaxSMClockMHz-5 {
		t.Errorf("clock %d, want ~%d", got, d.Spec().MaxSMClockMHz)
	}
}

func TestGovernorHoldThenDecay(t *testing.T) {
	s := A100SXM480GB()
	d := NewDevice(s, 0)
	d.Execute(computeKernel())
	boosted := d.SMClockMHz()
	// Within the hold window the clock stays up.
	d.Idle(s.BoostHoldS / 2)
	if got := d.SMClockMHz(); got < boosted-5 {
		t.Errorf("clock dropped during boost hold: %d -> %d", boosted, got)
	}
	// Far beyond hold + several decay constants, it parks near idle.
	d.Idle(s.BoostHoldS + 10*s.IdleDecayS)
	if got := d.SMClockMHz(); got > s.IdleSMClockMHz+60 {
		t.Errorf("clock %d did not decay toward idle %d", got, s.IdleSMClockMHz)
	}
}

func TestGovernorLightKernelsBoostAboveNeed(t *testing.T) {
	// The paper's §IV-E observation: lightweight launches boost clocks the
	// kernels cannot use. A tiny memory-bound kernel still raises the clock
	// far above idle.
	d := NewDevice(A100SXM480GB(), 0)
	light := KernelDesc{Name: "light", Items: 1e5, FlopsPerItem: 5, BytesPerItem: 200, Launches: 32, EffFactor: 0.5}
	for i := 0; i < 20; i++ {
		d.Execute(light)
	}
	got := d.SMClockMHz()
	if got < 900 {
		t.Errorf("light-kernel storm clock %d, want boosted well above idle", got)
	}
	if got > 1380 {
		t.Errorf("light-kernel storm clock %d reached near-max; governor should distinguish it from compute kernels", got)
	}
}

func TestDVFSEnergyPenaltyOnLightKernelStorm(t *testing.T) {
	// Same workload, locked max clocks vs governor: the governor's boost
	// hold and stability margin make it spend more energy on a stream of
	// light kernels separated by idle gaps.
	light := KernelDesc{Name: "light", Items: 5e5, FlopsPerItem: 10, BytesPerItem: 100, Launches: 16, EffFactor: 0.5}
	run := func(lock bool) float64 {
		d := NewDevice(A100SXM480GB(), 0)
		if lock {
			d.SetApplicationClocks(0, 1410)
		}
		for i := 0; i < 50; i++ {
			d.Execute(light)
			d.Idle(0.004) // launch gaps inside the boost-hold window
		}
		return d.EnergyJ()
	}
	locked := run(true)
	auto := run(false)
	if auto <= locked {
		t.Errorf("governor energy %v should exceed locked-clock energy %v on light-kernel storms", auto, locked)
	}
}

func TestMeanRampFreq(t *testing.T) {
	// T >> tau: mean approaches the target.
	m := meanRampFreq(200, 1400, 0.002, 10)
	if math.Abs(m-1400) > 1 {
		t.Errorf("long-kernel mean %v, want ~1400", m)
	}
	// T << tau: mean stays near the start.
	m = meanRampFreq(200, 1400, 0.1, 1e-4)
	if m > 210 {
		t.Errorf("short-kernel mean %v, want ~200", m)
	}
	// Zero duration returns the start.
	if meanRampFreq(300, 1400, 0.01, 0) != 300 {
		t.Error("zero-duration mean")
	}
}

func TestResetFromLockedKeepsClockContinuity(t *testing.T) {
	d := NewDevice(A100SXM480GB(), 0)
	d.SetApplicationClocks(0, 1110)
	d.ResetApplicationClocks()
	// Governor resumes from the previously locked clock, not from idle.
	if got := d.SMClockMHz(); got != 1110 {
		t.Errorf("clock after reset %d, want 1110", got)
	}
}

func TestGovernorTargetOrdering(t *testing.T) {
	g := newGovernor(A100SXM480GB())
	compute := computeKernel().timing(A100SXM480GB())
	memory := memKernel().timing(A100SXM480GB())
	if g.target(compute) <= g.target(memory) {
		t.Errorf("compute target %v should exceed memory target %v",
			g.target(compute), g.target(memory))
	}
}
