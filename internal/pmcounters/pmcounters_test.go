package pmcounters

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sphenergy/internal/cluster"
)

// lumiNode builds a LUMI-G node with some activity on its components.
func lumiNode(t *testing.T) *cluster.Node {
	t.Helper()
	node := cluster.NewNode(cluster.LUMIG(), 0)
	for _, d := range node.Devices {
		d.Idle(1.0)
	}
	node.AdvanceHost(1.0, 0.5, 0.5)
	return node
}

func TestPerCardAccounting(t *testing.T) {
	node := lumiNode(t)
	c := New(node)
	// LUMI-G: 8 GCDs on 4 cards; accel files exist for cards 0-3 only.
	for card := 0; card < 4; card++ {
		e, err := c.AccelEnergy(card)
		if err != nil {
			t.Fatalf("accel%d: %v", card, err)
		}
		want := node.Devices[2*card].EnergyJ() + node.Devices[2*card+1].EnergyJ()
		if math.Abs(e-want) > 1e-9 {
			t.Errorf("accel%d = %v, want sum of both GCDs %v", card, e, want)
		}
	}
	if _, err := c.AccelEnergy(4); err == nil {
		t.Error("accel4 should not exist on a 4-card node")
	}
}

func TestNodeEnergyIsSumOfComponents(t *testing.T) {
	node := lumiNode(t)
	c := New(node)
	sum := c.CPUEnergy() + c.MemoryEnergy() + c.AuxiliaryEnergy()
	for card := 0; card < node.NumCards(); card++ {
		e, _ := c.AccelEnergy(card)
		sum += e
	}
	if math.Abs(sum-c.Energy()) > 1e-6 {
		t.Errorf("component sum %v != node energy %v", sum, c.Energy())
	}
}

func TestAuxiliaryDerivation(t *testing.T) {
	node := lumiNode(t)
	c := New(node)
	// The paper derives "other" by subtraction; it must match the aux meter.
	if math.Abs(c.AuxiliaryEnergy()-node.Aux.EnergyJ()) > 1e-9 {
		t.Errorf("aux = %v, meter = %v", c.AuxiliaryEnergy(), node.Aux.EnergyJ())
	}
}

func TestCollectionRateQuantization(t *testing.T) {
	node := cluster.NewNode(cluster.LUMIG(), 0)
	node.AdvanceHost(1.0, 0.2, 0.2)
	for _, d := range node.Devices {
		d.Idle(1.0)
	}
	c := New(node)
	e1 := c.Energy()
	// Advance by less than one collection period: the reading must not move.
	for _, d := range node.Devices {
		d.Idle(0.04)
	}
	node.AdvanceHost(0.04, 0.2, 0.2)
	e2 := c.Energy()
	if e1 != e2 {
		t.Errorf("counter moved within one 10 Hz period: %v -> %v", e1, e2)
	}
	// Advance beyond a period: now it refreshes.
	for _, d := range node.Devices {
		d.Idle(0.2)
	}
	node.AdvanceHost(0.2, 0.2, 0.2)
	if c.Energy() <= e2 {
		t.Error("counter did not refresh after a collection period")
	}
}

func TestFilesFormat(t *testing.T) {
	node := lumiNode(t)
	files := New(node).Files()
	for _, name := range []string{"energy", "cpu_energy", "memory_energy", "power", "freshness", "accel0_energy", "accel3_energy"} {
		if _, ok := files[name]; !ok {
			t.Errorf("missing pm file %q", name)
		}
	}
	if !strings.HasSuffix(files["energy"], " J") {
		t.Errorf("energy file %q missing unit", files["energy"])
	}
	if !strings.HasSuffix(files["power"], " W") {
		t.Errorf("power file %q missing unit", files["power"])
	}
}

func TestA100NodeHasOneAccelPerCard(t *testing.T) {
	node := cluster.NewNode(cluster.CSCSA100(), 0)
	for _, d := range node.Devices {
		d.Idle(0.5)
	}
	node.AdvanceHost(0.5, 0.1, 0.1)
	files := New(node).Files()
	if _, ok := files["accel3_energy"]; !ok {
		t.Error("CSCS-A100 node should expose 4 accel files")
	}
	if _, ok := files["accel4_energy"]; ok {
		t.Error("CSCS-A100 node exposes too many accel files")
	}
}

func TestWriteSysfs(t *testing.T) {
	node := lumiNode(t)
	dir := filepath.Join(t.TempDir(), "pm_counters")
	names, err := New(node).WriteSysfs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 8 {
		t.Errorf("only %d files written", len(names))
	}
	data, err := os.ReadFile(filepath.Join(dir, "energy"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), " J") {
		t.Errorf("energy file content %q", data)
	}
	info, _ := os.Stat(filepath.Join(dir, "energy"))
	if info.Mode().Perm()&0o222 != 0 {
		t.Error("pm_counters files should be read-only")
	}
}

func TestPowerReflectsComponents(t *testing.T) {
	node := lumiNode(t)
	c := New(node)
	p := c.Power()
	if p <= 0 {
		t.Errorf("node power %v", p)
	}
	// At least the idle floors of all components.
	min := node.Spec.AuxW
	if p < min {
		t.Errorf("node power %v below aux floor %v", p, min)
	}
}

// TestFreshnessTimestampSemantics pins the freshness contract: the
// freshness file is the collection-tick count floor(now*CollectionHz) of
// the last refresh. When virtual time advances with no intervening reads,
// the next read jumps freshness straight to the current tick (ticks are
// not backfilled), and repeated reads at the same virtual time return the
// identical snapshot.
func TestFreshnessTimestampSemantics(t *testing.T) {
	node := cluster.NewNode(cluster.LUMIG(), 0)
	for _, d := range node.Devices {
		d.Idle(1.0)
	}
	node.AdvanceHost(1.0, 0.2, 0.2)
	c := New(node)

	f1 := New(node).Files()["freshness"]
	files := c.Files()
	if files["freshness"] != "10" {
		t.Fatalf("freshness at t=1.0 s = %q, want \"10\" (tick count at 10 Hz)", files["freshness"])
	}
	if f1 != files["freshness"] {
		t.Errorf("two views at the same time disagree: %q vs %q", f1, files["freshness"])
	}

	// Re-read with no clock movement: identical snapshot, same freshness.
	again := c.Files()
	if again["freshness"] != files["freshness"] || again["energy"] != files["energy"] {
		t.Errorf("re-read at same time changed snapshot: %v -> %v", files, again)
	}

	// Advance 0.57 s in one go (5 collection periods elapse unread): the
	// next read reports the latest tick only, floor(1.57*10) = 15.
	for _, d := range node.Devices {
		d.Idle(0.57)
	}
	node.AdvanceHost(0.57, 0.2, 0.2)
	files = c.Files()
	if files["freshness"] != "15" {
		t.Errorf("freshness after jump to t=1.57 s = %q, want \"15\"", files["freshness"])
	}

	// Advance within the current 10 Hz quantum (1.57 s -> 1.59 s stays on
	// tick 15): freshness must hold still.
	for _, d := range node.Devices {
		d.Idle(0.02)
	}
	node.AdvanceHost(0.02, 0.2, 0.2)
	if got := c.Files()["freshness"]; got != "15" {
		t.Errorf("freshness moved within one period: %q", got)
	}
}
