// Package pmcounters emulates the HPE/Cray out-of-band power management
// counters: the read-only /sys/cray/pm_counters/ sysfs files that publish
// node, CPU, memory and accelerator energy at a default 10 Hz collection
// rate (Martin, CUG 2014/2018).
//
// Two fidelity details matter for the paper's analysis:
//
//   - accelerator energy is reported per *card* (accel0..accel3), so on
//     LUMI-G each file covers the two GCDs — two MPI ranks — of one MI250X;
//   - readings update at the collection rate, so two reads within one
//     period return the same value (the quantization the paper's §IV-A
//     validation has to live with).
//
// # Sampling-rate contract
//
// Counters refresh only on collection ticks: a read at virtual time t
// reflects the hardware state at tick floor(t*CollectionHz)/CollectionHz,
// never later. The freshness file carries that tick count, so consumers
// can detect a stale read. Ticks are not backfilled — if several periods
// elapse between reads, intermediate samples simply never existed, and the
// next read jumps straight to the current tick. Consequently a consumer
// sampling the energy file at rate f sees at most min(f, CollectionHz)
// distinct values per second, and energy deltas between consecutive reads
// are quantized to whole collection periods. Cross-source validation
// against these counters must therefore tolerate up to one period's worth
// of energy (node power / CollectionHz) of skew per endpoint.
package pmcounters

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"sphenergy/internal/cluster"
)

// CollectionHz is the default Cray PM collection rate.
const CollectionHz = 10

// FaultHook intercepts collection ticks for fault injection, sharing the
// shape of nvml.FaultHook. It is consulted once per collection resample
// (op "refresh"); an error skips the resample, so readers keep seeing the
// previous tick's values and the freshness file stops advancing — exactly
// the pm_counters staleness mode documented for the real hardware.
// Production paths leave the hook nil.
type FaultHook func(op string, arg int) (int, error)

// Counters exposes the pm_counters view of one node.
type Counters struct {
	node *cluster.Node
	// freshness quantization: counters appear updated only at multiples of
	// the collection period in node virtual time.
	periodS float64
	hook    FaultHook

	// cached sample
	lastSampleTime float64
	cached         sample
}

// SetFaultHook installs (or clears, with nil) the fault-injection hook.
func (c *Counters) SetFaultHook(h FaultHook) { c.hook = h }

type sample struct {
	nodeJ, cpuJ, memJ float64
	accelJ            []float64
	nodeW             float64
}

// New creates a pm_counters view over a node with the default 10 Hz rate.
func New(node *cluster.Node) *Counters {
	return &Counters{node: node, periodS: 1.0 / CollectionHz, lastSampleTime: -1}
}

// nowS estimates node time as the maximum component time (the OOB
// controller's wall clock tracks the furthest-advanced component).
func (c *Counters) nowS() float64 {
	t := c.node.Aux.NowS()
	for _, d := range c.node.Devices {
		if dt := d.Now(); dt > t {
			t = dt
		}
	}
	return t
}

// refresh resamples the hardware if a collection period has elapsed.
func (c *Counters) refresh() {
	now := c.nowS()
	tick := float64(int(now/c.periodS)) * c.periodS
	if c.lastSampleTime >= 0 && tick <= c.lastSampleTime {
		return
	}
	if c.hook != nil {
		if _, err := c.hook("refresh", 0); err != nil {
			// Collection missed its tick: cached values stay stale and
			// lastSampleTime is not advanced, so the next read retries.
			return
		}
	}
	c.lastSampleTime = tick
	s := sample{
		cpuJ: c.node.CPUEnergyJ(),
		memJ: c.node.Mem.Meter.EnergyJ(),
	}
	for card := 0; card < c.node.NumCards(); card++ {
		s.accelJ = append(s.accelJ, c.node.CardEnergyJ(card))
	}
	s.nodeJ = c.node.TotalEnergyJ()
	s.nodeW = c.node.Aux.PowerW()
	for _, cpu := range c.node.CPUs {
		s.nodeW += cpu.Meter.PowerW()
	}
	s.nodeW += c.node.Mem.Meter.PowerW()
	for _, d := range c.node.Devices {
		s.nodeW += d.PowerW()
	}
	c.cached = s
}

// Energy returns the node-level cumulative energy in joules (the `energy`
// file).
func (c *Counters) Energy() float64 {
	c.refresh()
	return c.cached.nodeJ
}

// CPUEnergy returns the `cpu_energy` file value in joules.
func (c *Counters) CPUEnergy() float64 {
	c.refresh()
	return c.cached.cpuJ
}

// MemoryEnergy returns the `memory_energy` file value in joules.
func (c *Counters) MemoryEnergy() float64 {
	c.refresh()
	return c.cached.memJ
}

// AccelEnergy returns the `accelN_energy` file value in joules for card n.
func (c *Counters) AccelEnergy(n int) (float64, error) {
	c.refresh()
	if n < 0 || n >= len(c.cached.accelJ) {
		return 0, fmt.Errorf("pmcounters: no accel%d on node %s", n, c.node.Spec.Name)
	}
	return c.cached.accelJ[n], nil
}

// Power returns the node instantaneous power in watts (the `power` file).
func (c *Counters) Power() float64 {
	c.refresh()
	return c.cached.nodeW
}

// AuxiliaryEnergy computes the "other" energy the paper derives by
// subtracting CPU, memory and accelerator energy from node energy.
func (c *Counters) AuxiliaryEnergy() float64 {
	c.refresh()
	accel := 0.0
	for _, a := range c.cached.accelJ {
		accel += a
	}
	return c.cached.nodeJ - c.cached.cpuJ - c.cached.memJ - accel
}

// Files renders the sysfs file contents, keyed by file name relative to
// /sys/cray/pm_counters/. Formats follow the real files: "<value> <unit>".
func (c *Counters) Files() map[string]string {
	c.refresh()
	files := map[string]string{
		"energy":        fmt.Sprintf("%d J", int64(c.cached.nodeJ)),
		"cpu_energy":    fmt.Sprintf("%d J", int64(c.cached.cpuJ)),
		"memory_energy": fmt.Sprintf("%d J", int64(c.cached.memJ)),
		"power":         fmt.Sprintf("%d W", int64(c.cached.nodeW)),
		"freshness":     fmt.Sprintf("%d", int64(c.lastSampleTime*CollectionHz)),
		"generation":    "1",
		"version":       "sphenergy-sim 1",
	}
	for i, a := range c.cached.accelJ {
		files[fmt.Sprintf("accel%d_energy", i)] = fmt.Sprintf("%d J", int64(a))
	}
	return files
}

// WriteSysfs materializes the counters as real files under dir, for tools
// that expect to read a directory tree. Returns the list of files written.
func (c *Counters) WriteSysfs(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pmcounters: %w", err)
	}
	files := c.Files()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(files[name]+"\n"), 0o444); err != nil {
			return nil, fmt.Errorf("pmcounters: %w", err)
		}
	}
	return names, nil
}
