package textplot

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := BarChart("title", []Bar{
		{Label: "long-label", Value: 10, Annotation: "J"},
		{Label: "x", Value: 5, Annotation: "J"},
	}, 20)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	// The max bar is full width; the half bar is half width.
	full := strings.Count(lines[1], "#")
	half := strings.Count(lines[2], "#")
	if full != 20 {
		t.Errorf("max bar %d chars, want 20", full)
	}
	if half != 10 {
		t.Errorf("half bar %d chars, want 10", half)
	}
	if !strings.Contains(lines[1], "10 J") {
		t.Errorf("value/annotation missing: %q", lines[1])
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart("", []Bar{{Label: "a", Value: 0}}, 10)
	if strings.Contains(out, "#") {
		t.Error("zero value drew a bar")
	}
}

func TestSeriesTable(t *testing.T) {
	out := SeriesTable("tbl", "MHz", []string{"1410", "1005"}, []Series{
		{Name: "time", Values: []float64{1, 1.16}},
		{Name: "energy", Values: []float64{1}}, // short row
	})
	if !strings.Contains(out, "1410") || !strings.Contains(out, "1.1600") {
		t.Errorf("table:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("missing-value placeholder absent")
	}
}

func TestLinePlot(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 10, 5, 10}
	out := LinePlot("plot", xs, ys, 40, 8)
	if !strings.Contains(out, "plot") || !strings.Contains(out, "*") {
		t.Errorf("plot:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + height rows + axis + labels
	if len(lines) != 1+8+2 {
		t.Errorf("plot has %d lines", len(lines))
	}
}

func TestLinePlotEmpty(t *testing.T) {
	out := LinePlot("p", nil, nil, 10, 5)
	if !strings.Contains(out, "no data") {
		t.Error("empty plot should say so")
	}
}

func TestLinePlotMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched xs/ys did not panic")
		}
	}()
	LinePlot("p", []float64{1}, []float64{1, 2}, 10, 5)
}

func TestLinePlotConstantSeries(t *testing.T) {
	// Constant y must not divide by zero.
	out := LinePlot("flat", []float64{0, 1}, []float64{5, 5}, 10, 4)
	if !strings.Contains(out, "*") {
		t.Error("flat series lost its points")
	}
}

func TestPercentStack(t *testing.T) {
	out := PercentStack("stack", []Bar{
		{Label: "GPU", Value: 75, Annotation: "J"},
		{Label: "CPU", Value: 25, Annotation: "J"},
	}, 40)
	if !strings.Contains(out, "75.00%") || !strings.Contains(out, "25.00%") {
		t.Errorf("stack:\n%s", out)
	}
	// Bar line has exactly `width` glyph cells inside the brackets.
	lines := strings.Split(out, "\n")
	barLine := lines[1]
	inner := barLine[strings.Index(barLine, "[")+1 : strings.Index(barLine, "]")]
	if len(inner) != 40 {
		t.Errorf("bar width %d, want 40", len(inner))
	}
}

func TestPercentStackEmpty(t *testing.T) {
	out := PercentStack("s", nil, 10)
	if !strings.Contains(out, "empty") {
		t.Error("empty stack should say so")
	}
}
