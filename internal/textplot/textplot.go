// Package textplot renders the experiment figures as plain-text charts:
// horizontal bar charts for breakdowns (Figs. 2, 4, 5), grouped series
// tables for frequency sweeps (Figs. 6-8), and time-series line plots for
// traces (Fig. 9). Output is deterministic and columnar so tests can assert
// against it and diffs stay readable.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
	// Annotation is appended after the value (e.g. "MJ", "%").
	Annotation string
}

// BarChart renders a horizontal bar chart scaled to width characters.
func BarChart(title string, bars []Bar, width int) string {
	if width <= 0 {
		width = 50
	}
	maxV := 0.0
	maxLabel := 0
	for _, b := range bars {
		if b.Value > maxV {
			maxV = b.Value
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteString("\n")
	}
	for _, b := range bars {
		n := 0
		if maxV > 0 {
			n = int(b.Value / maxV * float64(width))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %.4g %s\n",
			maxLabel, b.Label, strings.Repeat("#", n), strings.Repeat(" ", width-n), b.Value, b.Annotation)
	}
	return sb.String()
}

// Series is one named line of a multi-series table/plot.
type Series struct {
	Name   string
	Values []float64
}

// SeriesTable renders columns (one per x value) against multiple series —
// the format used for the frequency-sweep figures.
func SeriesTable(title string, xLabel string, xs []string, series []Series) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteString("\n")
	}
	nameW := len(xLabel)
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s", nameW+2, xLabel)
	for _, x := range xs {
		fmt.Fprintf(&sb, "%10s", x)
	}
	sb.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "%-*s", nameW+2, s.Name)
		for i := range xs {
			if i < len(s.Values) {
				fmt.Fprintf(&sb, "%10.4f", s.Values[i])
			} else {
				fmt.Fprintf(&sb, "%10s", "-")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// LinePlot renders a time series as an ASCII plot with the given character
// grid dimensions; used for the Fig. 9 DVFS frequency trace.
func LinePlot(title string, xs, ys []float64, width, height int) string {
	if len(xs) != len(ys) {
		panic("textplot: xs/ys length mismatch")
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteString("\n")
	}
	if len(xs) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if width <= 0 {
		width = 80
	}
	if height <= 0 {
		height = 16
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		c := int((xs[i] - minX) / (maxX - minX) * float64(width-1))
		r := int((ys[i] - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-r][c] = '*'
	}
	for r, row := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&sb, "%9.1f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&sb, "%9s  %s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%9s  %-*.3g%*.3g\n", "", width/2, minX, width-width/2, maxX)
	return sb.String()
}

// PercentStack renders a 100% stacked bar (device breakdown style).
func PercentStack(title string, parts []Bar, width int) string {
	if width <= 0 {
		width = 60
	}
	total := 0.0
	for _, p := range parts {
		total += p.Value
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteString("\n")
	}
	if total <= 0 {
		sb.WriteString("(empty)\n")
		return sb.String()
	}
	glyphs := []byte{'#', '=', '+', '.', '~', 'o', '%', '@'}
	bar := make([]byte, 0, width)
	for i, p := range parts {
		n := int(p.Value/total*float64(width) + 0.5)
		if len(bar)+n > width {
			n = width - len(bar)
		}
		for j := 0; j < n; j++ {
			bar = append(bar, glyphs[i%len(glyphs)])
		}
	}
	for len(bar) < width {
		bar = append(bar, ' ')
	}
	fmt.Fprintf(&sb, "[%s]\n", string(bar))
	for i, p := range parts {
		fmt.Fprintf(&sb, "  %c %-14s %6.2f%% (%.4g %s)\n",
			glyphs[i%len(glyphs)], p.Label, 100*p.Value/total, p.Value, p.Annotation)
	}
	return sb.String()
}
