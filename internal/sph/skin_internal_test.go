package sph

import "testing"

// skinLatticeState is latticeState with the reorder cadence off, so the
// tests below control exactly when rebuilds may happen.
func skinLatticeState(n int, t *testing.T) *State {
	t.Helper()
	st := latticeState(n, t)
	st.Opt.ReorderEvery = 0
	return st
}

// TestSkinBoundaryExactCrossing pins the drift trigger at its exact float
// boundary: a single particle displaced just inside the analytic slack must
// leave the cached candidates valid, and a displacement just beyond it must
// force a drift rebuild. The slack is recovered from the same arrays
// skinValid reads, so the test tracks the criterion rather than a copy of
// its constants.
func TestSkinBoundaryExactCrossing(t *testing.T) {
	st := skinLatticeState(6, t)
	st.FindNeighbors()
	if got := st.NbrStats; got.Rebuilds != 1 || got.RebuildInit != 1 {
		t.Fatalf("after initial build NbrStats = %+v", got)
	}
	nl := st.List
	p := st.P

	// With every particle still on its reference position, particle i's
	// excess is 2·hGrowthCap·(h_i − (1+Skin)·RefH_i); moving particle k by
	// δ adds δ to both its excess and the global max drift, so the cache
	// stays valid exactly while base_k + 2δ <= −tol.
	sk := 1 + st.Opt.Skin
	base, k := 0.0, -1
	for i := 0; i < p.N; i++ {
		if e := 2 * hGrowthCap * (p.H[i] - sk*nl.RefH[i]); k < 0 || e > base {
			base, k = e, i
		}
	}
	if base >= 0 {
		t.Fatalf("lattice has no skin slack (base excess %g); test setup is broken", base)
	}
	tol := 1e-12 * (2 * hGrowthCap * p.MaxH())
	threshold := (-tol - base) / 2

	origX := p.X[k]
	p.X[k] = origX + threshold*(1-1e-9)
	if !st.skinValid(p.MaxH()) {
		t.Errorf("displacement just under the threshold (%.17g) invalidated the cache", threshold)
	}
	if st.rebuildDue() {
		t.Error("rebuildDue true while the cache is still valid")
	}
	p.X[k] = origX + threshold*(1+1e-9)
	if st.skinValid(p.MaxH()) {
		t.Errorf("displacement just over the threshold (%.17g) left the cache valid", threshold)
	}
	if !st.rebuildDue() {
		t.Error("rebuildDue false although drift crossed the threshold")
	}

	st.FindNeighbors()
	if got := st.NbrStats; got.RebuildDrift != 1 || got.Rebuilds != 2 || got.Refreshes != 0 {
		t.Errorf("over-threshold FindNeighbors did not drift-rebuild: %+v", got)
	}
}

// TestSkinOverflowForcesEarlyRebuild: when a refresh would overflow ngmax,
// the step must fall back to a full rebuild (the capped candidate segment
// cannot represent truncation honestly) and count it as an overflow rebuild.
func TestSkinOverflowForcesEarlyRebuild(t *testing.T) {
	st := skinLatticeState(6, t)
	st.Opt.NgMax = 16 // true neighbor counts sit near NgTarget=32

	st.FindNeighbors()
	if st.List.Overflow == 0 {
		t.Fatal("ngmax cap not exceeded; the overflow path is untested")
	}
	for i := 0; i < 3; i++ {
		st.FindNeighbors()
	}
	got := st.NbrStats
	if got.RebuildOverflow != 3 {
		t.Errorf("RebuildOverflow = %d, want 3 (every refresh overflows): %+v", got.RebuildOverflow, got)
	}
	if got.Refreshes != 0 {
		t.Errorf("Refreshes = %d, want 0: an overflowing refresh must not count as served", got.Refreshes)
	}
	ngmax := st.Opt.ngmax()
	for i := 0; i < st.P.N; i++ {
		if n := int(st.List.Offsets[i+1] - st.List.Offsets[i]); n > ngmax {
			t.Fatalf("particle %d list length %d exceeds ngmax %d after overflow rebuild", i, n, ngmax)
		}
	}
	if err := st.P.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSkinRefreshAbortRestoresState: an aborted refresh must leave H and NC
// exactly as they were, so the rebuild that follows starts from the same
// pre-step state a rebuild-only run would see.
func TestSkinRefreshAbortRestoresState(t *testing.T) {
	st := skinLatticeState(5, t)
	st.Opt.NgMax = 16
	st.FindNeighbors()

	hBefore := append([]float64(nil), st.P.H...)
	ncBefore := append([]int32(nil), st.P.NC...)
	maxH := st.P.MaxH()
	if _, ok := st.refreshSkin(maxH); ok {
		t.Fatal("refresh unexpectedly succeeded under an ngmax overflow")
	}
	for i := range hBefore {
		if st.P.H[i] != hBefore[i] {
			t.Fatalf("aborted refresh changed H[%d]: %g -> %g", i, hBefore[i], st.P.H[i])
		}
		if st.P.NC[i] != ncBefore[i] {
			t.Fatalf("aborted refresh changed NC[%d]: %d -> %d", i, ncBefore[i], st.P.NC[i])
		}
	}
}
