package sph

import (
	"math"
	"time"

	"sphenergy/internal/par"
)

// Pipeline pass names, in RunStep execution order. PassGravity only runs
// when an extraAccel closure is supplied (Evrard self-gravity).
const (
	PassFindNeighbors  = "find_neighbors"
	PassXMass          = "xmass"
	PassGradh          = "gradh"
	PassEOS            = "eos"
	PassIAD            = "iad"
	PassAVSwitches     = "av_switches"
	PassMomentumEnergy = "momentum_energy"
	PassGravity        = "gravity"
	PassTimestep       = "timestep"
	PassUpdate         = "update"
)

// PassNames lists the passes every RunStep executes, in order (excluding
// the optional PassGravity). Benchmarks and per-pass metrics key on these.
var PassNames = []string{
	PassFindNeighbors, PassXMass, PassGradh, PassEOS, PassIAD,
	PassAVSwitches, PassMomentumEnergy, PassTimestep, PassUpdate,
}

// pass runs one pipeline pass through the optional observability hooks:
// WrapPass (outermost, pprof labels) and PassHook (wall-clock timing).
// With both hooks nil it degenerates to a direct call.
func (s *State) pass(name string, fn func()) {
	run := fn
	if h := s.Opt.PassHook; h != nil {
		inner := run
		run = func() {
			t0 := time.Now()
			inner()
			h(name, time.Since(t0).Seconds())
		}
	}
	if w := s.Opt.WrapPass; w != nil {
		w(name, run)
		return
	}
	run()
}

// Timestep computes the next CFL-limited timestep:
//
//	dt = CFL * min_i h_i / (c_i + 1.2 alpha_i c_i)
//
// combined with an acceleration criterion sqrt(h_i/|a_i|). Growth relative
// to the previous step is bounded by MaxDtGrowth. This corresponds to the
// paper's Timestep function, which ends each iteration with a collective
// reduction across ranks.
func (s *State) Timestep() float64 {
	p := s.P
	dt := par.MinFloat64(p.N, func(i int) float64 {
		signal := p.C[i] * (1 + 1.2*p.Alpha[i])
		dtc := math.Inf(1)
		if signal > 0 {
			dtc = s.Opt.CFL * p.H[i] / signal
		}
		a := math.Sqrt(p.AX[i]*p.AX[i] + p.AY[i]*p.AY[i] + p.AZ[i]*p.AZ[i])
		if a > 0 {
			dta := s.Opt.CFL * math.Sqrt(p.H[i]/a)
			if dta < dtc {
				return dta
			}
		}
		return dtc
	})
	if math.IsInf(dt, 1) || dt <= 0 {
		if s.Dt > 0 {
			dt = s.Dt
		} else {
			dt = 1e-6
		}
	}
	if max := s.Dt * s.Opt.MaxDtGrowth; s.Dt > 0 && dt > max {
		dt = max
	}
	s.Dt = dt
	return dt
}

// RunStep advances the simulation by one full pipeline iteration in SPH-EXA's
// order: FindNeighbors, XMass, NormalizationGradh, EquationOfState,
// IADVelocityDivCurl, AVSwitches, MomentumEnergy, optional extra
// accelerations (self-gravity), Timestep, UpdateQuantities. extraAccel, if
// non-nil, runs after MomentumEnergy and must add into AX/AY/AZ. Returns
// the timestep taken. Once Options.ReorderEvery steps have passed since the
// last SFC reorder the particles are re-sorted along the Morton curve (see
// ReorderBySFC) on the next step whose neighbor candidates rebuild anyway
// (at the latest after 2×ReorderEvery steps); the decision depends only on
// checkpointed state, so restarts replay the same reorder steps.
func (s *State) RunStep(extraAccel func(p *Particles)) float64 {
	if k := s.Opt.ReorderEvery; k > 0 && s.Step > 0 {
		// Keyed to the rebuild trigger: reordering invalidates the cached
		// Verlet-skin candidate list, so once the cadence expires the
		// reorder piggybacks on a step that rebuilds anyway, and is forced
		// at 2K so the layout cannot go permanently stale. Without skin
		// reuse every step rebuilds and this reduces to reordering exactly
		// every K steps, as before.
		since := s.Step - s.LastReorderStep
		if since >= k && (since >= 2*k || s.rebuildDue()) {
			s.ReorderBySFC()
			s.LastReorderStep = s.Step
		}
	}
	s.pass(PassFindNeighbors, s.FindNeighbors)
	s.pass(PassXMass, s.XMass)
	s.pass(PassGradh, s.NormalizationGradh)
	s.pass(PassEOS, s.EquationOfState)
	s.pass(PassIAD, s.IADVelocityDivCurl)
	s.pass(PassAVSwitches, func() { s.AVSwitches(s.Dt) })
	s.pass(PassMomentumEnergy, s.MomentumEnergy)
	if extraAccel != nil {
		s.pass(PassGravity, func() { extraAccel(s.P) })
	}
	var dt float64
	s.pass(PassTimestep, func() { dt = s.Timestep() })
	s.pass(PassUpdate, func() { s.UpdateQuantities(dt) })
	return dt
}

// Energies summarizes the conserved quantities of the particle system:
// kinetic, internal, and (if enabled via pot) potential energy, plus the
// total linear momentum magnitude.
type Energies struct {
	Kinetic, Internal, Potential float64
	MomX, MomY, MomZ             float64
	Mass                         float64
}

// Total returns the total energy.
func (e Energies) Total() float64 { return e.Kinetic + e.Internal + e.Potential }

// ComputeEnergies evaluates the energy/momentum diagnostics. pot, if
// non-nil, supplies per-particle potential energy (from the gravity module).
func (s *State) ComputeEnergies(pot []float64) Energies {
	p := s.P
	var e Energies
	for i := 0; i < p.N; i++ {
		v2 := p.VX[i]*p.VX[i] + p.VY[i]*p.VY[i] + p.VZ[i]*p.VZ[i]
		e.Kinetic += 0.5 * p.M[i] * v2
		e.Internal += p.M[i] * p.U[i]
		if pot != nil {
			e.Potential += 0.5 * p.M[i] * pot[i] // pairwise potential counted once
		}
		e.MomX += p.M[i] * p.VX[i]
		e.MomY += p.M[i] * p.VY[i]
		e.MomZ += p.M[i] * p.VZ[i]
		e.Mass += p.M[i]
	}
	return e
}

// MachRMS returns the root-mean-square Mach number of the particle set,
// the control quantity for subsonic turbulence runs.
func (s *State) MachRMS() float64 {
	p := s.P
	sum := 0.0
	for i := 0; i < p.N; i++ {
		if p.C[i] <= 0 {
			continue
		}
		v2 := p.VX[i]*p.VX[i] + p.VY[i]*p.VY[i] + p.VZ[i]*p.VZ[i]
		m := math.Sqrt(v2) / p.C[i]
		sum += m * m
	}
	return math.Sqrt(sum / float64(p.N))
}
