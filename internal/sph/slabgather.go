package sph

import (
	"math"
	"sync"
	"time"

	"sphenergy/internal/neighbors"
	"sphenergy/internal/par"
)

// Cell-slab neighbor construction (Options.CellSlab). The walk-based build
// interleaves candidate gathering and list finishing per particle; the slab
// build splits them into two streaming phases instead:
//
//  1. Gather: neighbors.SlabSweep traverses the grid cell by cell and
//     evaluates every unordered pair once (13-cell half stencil plus the
//     intra-cell upper triangle), emitting the candidate CSR for both
//     endpoints from a single distance evaluation — bit-identical, sets
//     and order, to per-row ForEachNeighbor queries.
//  2. Filter: the candidate CSR is streamed in per-row blocks through the
//     same minimum-image recompute the Verlet-skin refresh uses, and the
//     shared finishParticle sequence produces the final list.
//
// Because the gathered candidates and the recomputed displacements match
// the walk bit for bit, every downstream guarantee — 1e-9 pipeline
// equivalence, first-ngmax truncation, checkpointed candidate
// regeneration, skin refresh/rebuild bit-identity — carries over
// unchanged. Grids the sweep cannot handle (fewer than 4 cells on an axis,
// cuts wider than a cell) fall back to the walk gather transparently.

// boxGeom caches the box quantities of the inlined minimum-image fold.
type boxGeom struct {
	lx, ly, lz    float64
	hx, hy, hz    float64
	pbx, pby, pbz bool
}

func (s *State) geom() boxGeom {
	box := s.Opt.Box
	lx, ly, lz := box.Lx(), box.Ly(), box.Lz()
	return boxGeom{lx, ly, lz, lx / 2, ly / 2, lz / 2, box.PBCx, box.PBCy, box.PBCz}
}

// candBlock is the per-worker scratch of the blocked candidate re-filter:
// one particle's whole candidate segment is streamed through the distance
// kernel into these dense buffers, then a separate compare-and-compact
// pass admits the survivors. Splitting the passes keeps the hot loop free
// of appends and lets the compiler eliminate the bounds checks.
type candBlock struct {
	dx, dy, dz, r2 []float64
}

var candBlockPool = sync.Pool{New: func() interface{} { return new(candBlock) }}

func (b *candBlock) ensure(n int) {
	if cap(b.dx) < n {
		b.dx = make([]float64, n)
		b.dy = make([]float64, n)
		b.dz = make([]float64, n)
		b.r2 = make([]float64, n)
	}
	b.dx, b.dy, b.dz, b.r2 = b.dx[:n], b.dy[:n], b.dz[:n], b.r2[:n]
}

// computeRow fills the block with the minimum-image displacements and
// squared distances from (xi, yi, zi) to every candidate. The fold is
// inlined term for term with the arithmetic of neighbors.MinImage — the
// same contract the skin refresh relies on — so the buffered values are
// bit-identical to a fresh grid gather over the same pairs.
func (b *candBlock) computeRow(px, py, pz []float64, xi, yi, zi float64, cand []int32, g boxGeom) {
	b.ensure(len(cand))
	bdx, bdy, bdz, br2 := b.dx, b.dy, b.dz, b.r2
	for k, j := range cand {
		dx := xi - px[j]
		if g.pbx {
			if dx > g.hx {
				dx -= g.lx
			} else if dx < -g.hx {
				dx += g.lx
			}
		}
		dy := yi - py[j]
		if g.pby {
			if dy > g.hy {
				dy -= g.ly
			} else if dy < -g.hy {
				dy += g.ly
			}
		}
		dz := zi - pz[j]
		if g.pbz {
			if dz > g.hz {
				dz -= g.lz
			} else if dz < -g.hz {
				dz += g.lz
			}
		}
		bdx[k] = dx
		bdy[k] = dy
		bdz[k] = dz
		br2[k] = dx*dx + dy*dy + dz*dz
	}
}

// slabGather runs the cell-slab candidate sweep at the given per-particle
// cut radii, writing the candidate CSR into the neighbor list's
// CandOffsets/CandIdx and the per-candidate squared distances into
// s.candR2. Returns false when the sweep is infeasible for the current
// search structure (octree backend or degenerate grid); the caller falls
// back to the walk gather, which produces the identical result.
func (s *State) slabGather(cuts []float64) bool {
	g, isGrid := s.Grid.(*neighbors.Grid)
	if !isGrid {
		return false
	}
	nl := s.List
	off, idx, r2, ok := s.slab.Gather(g, cuts, nl.CandOffsets, nl.CandIdx, s.candR2)
	s.candR2 = r2
	if !ok {
		return false
	}
	nl.CandOffsets, nl.CandIdx = off, idx
	return true
}

// filterSlabCandidates derives the step's neighbor list from the freshly
// gathered candidate CSR. The gather already evaluated every pair's
// squared distance, so admission needs no re-evaluation: a conservative
// r² prescreen skips clearly-out-of-bound candidates without the sqrt,
// survivors take the exact dist < bound test the walk-based build applies
// (every candidate is admitted on a plain build, whose gather radius is
// the bound), and only admitted pairs get their displacement recomputed —
// with the walk's exact minimum-image arithmetic, so the stored list is
// bit-identical. finishParticle then runs the shared
// count/update/truncate sequence. Returns the post-update maximum
// smoothing length.
func (s *State) filterSlabCandidates(maxH float64, admitAll bool) float64 {
	p := s.P
	n := p.N
	nl := s.List
	ng := float64(s.Opt.NgTarget)
	geo := s.geom()
	px, py, pz := p.X, p.Y, p.Z
	candOff, candIdx := nl.CandOffsets, nl.CandIdx
	candR2 := s.candR2

	var mu sync.Mutex
	chunks := make([]*listChunk, 0, par.MaxWorkers())
	newMax := par.Reduce(n, func(lo, hi int) float64 {
		cb := listChunkPool.Get().(*listChunk)
		cb.reset(lo)
		localMax := 0.0
		for i := lo; i < hi; i++ {
			hOld := p.H[i]
			start := len(cb.idx)
			bound := 2 * hGrowthCap * hOld
			// Conservative upper bound on bound²: r2 at or above it can
			// never pass dist < bound, so the sqrt is skipped. Candidates
			// under it still take the exact walk test — the widening only
			// keeps rounding from discarding a boundary pair.
			b2hi := bound * bound * (1 + 0x1p-40)
			xi, yi, zi := px[i], py[i], pz[i]
			cand := candIdx[candOff[i]:candOff[i+1]]
			r2row := candR2[candOff[i] : candOff[i]+int32(len(cand))]
			// Cursor writes into pre-extended buffers: at most len(cand)
			// admissions, so one capacity check covers the whole row and
			// the admit path carries no per-append length bookkeeping.
			need := start + len(cand)
			cb.extend(need)
			bidx := cb.idx[:need]
			bdx := cb.dx[:need]
			bdy := cb.dy[:need]
			bdz := cb.dz[:need]
			bdist := cb.dist[:need]
			m := start
			for k, j := range cand {
				r2 := r2row[k]
				if !admitAll && r2 >= b2hi {
					continue
				}
				dist := math.Sqrt(r2)
				if !admitAll && dist >= bound {
					continue
				}
				dx := xi - px[j]
				if geo.pbx {
					if dx > geo.hx {
						dx -= geo.lx
					} else if dx < -geo.hx {
						dx += geo.lx
					}
				}
				dy := yi - py[j]
				if geo.pby {
					if dy > geo.hy {
						dy -= geo.ly
					} else if dy < -geo.hy {
						dy += geo.ly
					}
				}
				dz := zi - pz[j]
				if geo.pbz {
					if dz > geo.hz {
						dz -= geo.lz
					} else if dz < -geo.hz {
						dz += geo.lz
					}
				}
				bidx[m] = j
				bdx[m] = dx
				bdy[m] = dy
				bdz[m] = dz
				bdist[m] = dist
				m++
			}
			cb.idx = bidx[:m]
			cb.dx = bdx[:m]
			cb.dy = bdy[:m]
			cb.dz = bdz[:m]
			cb.dist = bdist[:m]
			if h := finishParticle(p, cb, i, start, nl.Ngmax, hOld, ng, maxH); h > localMax {
				localMax = h
			}
		}
		mu.Lock()
		chunks = append(chunks, cb)
		mu.Unlock()
		return localMax
	}, math.Max)
	nl.mergeChunks(chunks, n, false)
	return newMax
}

// buildListSlab is the cell-slab twin of buildNeighborList's gather loop:
// candidates at the full post-update support 2·hGrowthCap·h_old, then the
// blocked filter admitting every candidate (the gather radius is the
// admission bound). Returns ok=false when the sweep is infeasible.
func (s *State) buildListSlab(maxH float64) (float64, bool) {
	p := s.P
	n := p.N
	t0 := time.Now()
	s.cuts = ensureF64(s.cuts, n)
	for i := 0; i < n; i++ {
		s.cuts[i] = 2 * hGrowthCap * p.H[i]
	}
	if !s.slabGather(s.cuts) {
		return 0, false
	}
	s.NbrStats.GatherSeconds += time.Since(t0).Seconds()
	t1 := time.Now()
	newMax := s.filterSlabCandidates(maxH, true)
	s.NbrStats.FilterSeconds += time.Since(t1).Seconds()
	return newMax, true
}

// rebuildSkinSlab is the cell-slab twin of rebuildSkin's gather loop:
// candidates at the inflated (1+Skin)·2·hGrowthCap·h_old radius land
// directly in the candidate CSR (no per-chunk capture/merge needed), and
// the blocked filter admits the subset within the un-inflated bound — the
// exact dist < bound test of the walk-based rebuild. Returns ok=false when
// the sweep is infeasible; the caller runs the walk gather instead.
func (s *State) rebuildSkinSlab(maxH float64) (float64, bool) {
	p := s.P
	n := p.N
	sk := 1 + s.Opt.Skin
	t0 := time.Now()
	s.cuts = ensureF64(s.cuts, n)
	for i := 0; i < n; i++ {
		bound := 2 * hGrowthCap * p.H[i]
		s.cuts[i] = sk * bound
	}
	if !s.slabGather(s.cuts) {
		return 0, false
	}
	s.NbrStats.GatherSeconds += time.Since(t0).Seconds()
	t1 := time.Now()
	newMax := s.filterSlabCandidates(maxH, false)
	s.NbrStats.FilterSeconds += time.Since(t1).Seconds()
	return newMax, true
}
