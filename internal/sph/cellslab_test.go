package sph_test

// Cell-slab neighbor construction tests: CellSlab mode must reproduce the
// walk-gathered pipeline bit for bit (same candidate CSR, same admitted
// lists, same physics), engage on realistic problems rather than silently
// falling back, and replay the same checkpoint/restart schedule.
//
// The sweep is only feasible once the grid has ≥4 cells per axis, so the
// very first build (large pre-adaptation smoothing lengths → coarse grid)
// always falls back to the walk; tests run enough steps for the adapted
// rebuilds to engage the slab path and assert via NbrStats.GatherSeconds
// that they actually did.

import (
	"bytes"
	"testing"

	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
)

// TestCellSlabBitIdenticalTurbulence pins the core contract: a CellSlab run
// is byte-identical to the default walk-gathered run — not merely within
// tolerance — because the slab sweep emits the exact candidate CSR the
// per-row walk does and the filter reuses the classic admission arithmetic.
func TestCellSlabBitIdenticalTurbulence(t *testing.T) {
	run := func(cellSlab bool) *sph.State {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(16))
		opt.NgTarget = 32
		opt.ReorderEvery = 2
		opt.SymmetricPairs = true
		opt.CellSlab = cellSlab
		st := sph.NewState(p, opt)
		for s := 0; s < 8; s++ {
			st.RunStep(nil)
		}
		return st
	}
	slab := run(true)
	walk := run(false)

	if slab.NbrStats.GatherSeconds == 0 {
		t.Fatalf("slab gather never engaged (stats %+v); the mode fell back to the walk throughout", slab.NbrStats)
	}
	if walk.NbrStats.GatherSeconds != 0 {
		t.Fatal("walk run reported slab gather time")
	}

	ps, pw := slab.P, walk.P
	fields := []struct {
		name string
		a, b []float64
	}{
		{"x", ps.X, pw.X}, {"y", ps.Y, pw.Y}, {"z", ps.Z, pw.Z},
		{"vx", ps.VX, pw.VX}, {"h", ps.H, pw.H},
		{"rho", ps.Rho, pw.Rho}, {"u", ps.U, pw.U}, {"ax", ps.AX, pw.AX},
	}
	for _, f := range fields {
		for i := range f.a {
			if f.a[i] != f.b[i] {
				t.Fatalf("%s[%d] differs between CellSlab and walk gather: %.17g vs %.17g",
					f.name, i, f.a[i], f.b[i])
			}
		}
	}
	for i := range ps.NC {
		if ps.NC[i] != pw.NC[i] {
			t.Fatalf("NC[%d] differs: %d vs %d", i, ps.NC[i], pw.NC[i])
		}
	}
	if slab.Dt != walk.Dt {
		t.Fatalf("dt differs: %.17g vs %.17g", slab.Dt, walk.Dt)
	}
	if slab.NbrStats.Rebuilds != walk.NbrStats.Rebuilds ||
		slab.NbrStats.Refreshes != walk.NbrStats.Refreshes {
		t.Fatalf("rebuild schedules diverged: slab %+v walk %+v", slab.NbrStats, walk.NbrStats)
	}
}

// TestCellSlabListIdenticalToWalkList compares the full CSR lists —
// indices, displacements, distances, the Ext transpose — element for
// element between the two gather strategies on repeated plain rebuilds
// (Skin=0 keeps every FindNeighbors a full build, and the un-inflated grid
// is fine enough for the sweep to engage from the first call).
func TestCellSlabListIdenticalToWalkList(t *testing.T) {
	build := func(cellSlab bool) *sph.State {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(16))
		opt.NgTarget = 32
		opt.Skin = 0
		opt.CellSlab = cellSlab
		st := sph.NewState(p, opt)
		st.FindNeighbors()
		st.FindNeighbors() // second build exercises warm scratch reuse
		return st
	}
	slab, walk := build(true), build(false)
	ls, lw := slab.List, walk.List
	if ls == nil || lw == nil {
		t.Fatal("a pipeline failed to build a neighbor list")
	}
	if slab.NbrStats.GatherSeconds == 0 {
		t.Fatal("slab gather never engaged on the plain builds")
	}

	i32 := []struct {
		name string
		a, b []int32
	}{
		{"Offsets", ls.Offsets, lw.Offsets}, {"Idx", ls.Idx, lw.Idx},
		{"ExtOffsets", ls.ExtOffsets, lw.ExtOffsets}, {"ExtIdx", ls.ExtIdx, lw.ExtIdx},
	}
	for _, f := range i32 {
		if len(f.a) != len(f.b) {
			t.Fatalf("%s length %d != %d", f.name, len(f.a), len(f.b))
		}
		for k := range f.a {
			if f.a[k] != f.b[k] {
				t.Fatalf("%s[%d] = %d, walk has %d", f.name, k, f.a[k], f.b[k])
			}
		}
	}
	f64 := []struct {
		name string
		a, b []float64
	}{
		{"Dx", ls.Dx, lw.Dx}, {"Dy", ls.Dy, lw.Dy}, {"Dz", ls.Dz, lw.Dz},
		{"Dist", ls.Dist, lw.Dist},
		{"ExtDist", ls.ExtDist, lw.ExtDist},
	}
	for _, f := range f64 {
		if len(f.a) != len(f.b) {
			t.Fatalf("%s length %d != %d", f.name, len(f.a), len(f.b))
		}
		for k := range f.a {
			if f.a[k] != f.b[k] {
				t.Fatalf("%s[%d] = %.17g, walk has %.17g", f.name, k, f.a[k], f.b[k])
			}
		}
	}
}

// compareCellSlabToWalk holds the slab-gathered list pipeline to the
// closure-walk reference physics over multi-step runs — the same contract
// as the existing list-vs-walk equivalence, with the slab gather asserted
// to have actually engaged.
func compareCellSlabToWalk(t *testing.T, mkState func() *sph.State, steps int, withGravity bool, tol float64) {
	t.Helper()

	walk := mkState()
	walk.Opt.ClosureWalk = true
	walk.Opt.ReorderEvery = 0
	slab := mkState()
	slab.Opt.CellSlab = true
	slab.Opt.ReorderEvery = 0

	var potW, potS []float64
	if withGravity {
		potW = make([]float64, walk.P.N)
		potS = make([]float64, slab.P.N)
	}
	for s := 0; s < steps; s++ {
		stepManual(walk, withGravity, potW)
		stepManual(slab, withGravity, potS)
	}
	if slab.NbrStats.GatherSeconds == 0 {
		t.Fatalf("slab gather never engaged in %d steps (stats %+v)", steps, slab.NbrStats)
	}

	pw, ps := walk.P, slab.P
	for i := range pw.NC {
		if pw.NC[i] != ps.NC[i] {
			t.Fatalf("particle %d: neighbor count %d (walk) != %d (cellslab)", i, pw.NC[i], ps.NC[i])
		}
	}
	fields := []struct {
		name string
		a, b []float64
	}{
		{"rho", pw.Rho, ps.Rho},
		{"u", pw.U, ps.U},
		{"h", pw.H, ps.H},
		{"ax", pw.AX, ps.AX},
		{"x", pw.X, ps.X},
		{"vx", pw.VX, ps.VX},
	}
	for _, f := range fields {
		if dev := maxRelDev(f.a, f.b); dev > tol {
			t.Errorf("%s deviates by %.3g (> %g) after %d steps", f.name, dev, tol, steps)
		}
	}
}

func TestCellSlabMatchesClosureWalkTurbulence(t *testing.T) {
	mk := func() *sph.State {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(16))
		opt.NgTarget = 32
		return sph.NewState(p, opt)
	}
	compareCellSlabToWalk(t, mk, 8, false, 1e-9)
}

func TestCellSlabMatchesClosureWalkEvrard(t *testing.T) {
	mk := func() *sph.State {
		p, opt := initcond.Evrard(initcond.DefaultEvrard(10))
		opt.NgTarget = 32
		// The slow early collapse never invalidates the skin on its own;
		// force cadence rebuilds so the adapted grids reach the slab path.
		opt.RebuildEvery = 2
		return sph.NewState(p, opt)
	}
	compareCellSlabToWalk(t, mk, 6, true, 1e-9)
}

// TestCellSlabNgmaxOverflowBitIdentical: first-ngmax truncation depends on
// candidate order, so an overflowing build is the sharpest probe of the
// slab sweep's order contract.
func TestCellSlabNgmaxOverflowBitIdentical(t *testing.T) {
	build := func(cellSlab bool) *sph.State {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(16))
		opt.NgTarget = 32
		opt.NgMax = 8
		opt.Skin = 0
		opt.CellSlab = cellSlab
		st := sph.NewState(p, opt)
		st.FindNeighbors()
		return st
	}
	slab, walk := build(true), build(false)
	if slab.NbrStats.GatherSeconds == 0 {
		t.Fatal("slab gather never engaged on the overflowing build")
	}
	if walk.List.Overflow == 0 {
		t.Fatal("expected overflow with NgMax=8; the truncation path went untested")
	}
	if slab.List.Overflow != walk.List.Overflow {
		t.Fatalf("overflow count %d (slab) != %d (walk)", slab.List.Overflow, walk.List.Overflow)
	}
	for i := range walk.List.Offsets {
		if slab.List.Offsets[i] != walk.List.Offsets[i] {
			t.Fatalf("Offsets[%d] = %d, walk has %d", i, slab.List.Offsets[i], walk.List.Offsets[i])
		}
	}
	for k := range walk.List.Idx {
		if slab.List.Idx[k] != walk.List.Idx[k] {
			t.Fatalf("truncated Idx[%d] = %d, walk has %d", k, slab.List.Idx[k], walk.List.Idx[k])
		}
	}
}

// TestCellSlabCheckpointMidIntervalResume: the skin checkpoint contract
// must survive with the slab gather on — candidates are regenerated from
// the reference snapshot by the walk, which is valid precisely because the
// two gathers are bit-identical.
func TestCellSlabCheckpointMidIntervalResume(t *testing.T) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(16))
	opt.NgTarget = 32
	opt.ReorderEvery = 3
	opt.CellSlab = true

	orig := sph.NewState(p, opt)
	const pre, post = 8, 5
	for s := 0; s < pre; s++ {
		orig.RunStep(nil)
	}
	if orig.NbrStats.GatherSeconds == 0 {
		t.Fatalf("slab gather never engaged during warm-up (stats %+v)", orig.NbrStats)
	}
	if orig.List == nil {
		t.Fatal("no neighbor list after warm-up")
	}
	if orig.List.BuildStep >= orig.Step {
		t.Fatalf("checkpoint is not mid-interval: BuildStep %d, Step %d",
			orig.List.BuildStep, orig.Step)
	}

	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := sph.ReadCheckpoint(&buf, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.List == nil || resumed.List.BuildStep != orig.List.BuildStep {
		t.Fatal("restored state lost the skin reference snapshot")
	}

	origBase, resumedBase := orig.NbrStats, resumed.NbrStats
	for s := 0; s < post; s++ {
		orig.RunStep(nil)
		resumed.RunStep(nil)
		po, pr := orig.P, resumed.P
		for i := 0; i < po.N; i++ {
			if po.X[i] != pr.X[i] || po.VX[i] != pr.VX[i] || po.H[i] != pr.H[i] || po.NC[i] != pr.NC[i] {
				t.Fatalf("step %d: particle %d diverged after resume", orig.Step, i)
			}
		}
		if orig.Dt != resumed.Dt {
			t.Fatalf("step %d: dt diverged: %.17g vs %.17g", orig.Step, orig.Dt, resumed.Dt)
		}
	}
	dOrig := orig.NbrStats.Rebuilds - origBase.Rebuilds
	dRes := resumed.NbrStats.Rebuilds - resumedBase.Rebuilds
	if dOrig != dRes {
		t.Fatalf("rebuild schedules diverged after resume: %d vs %d over %d steps", dOrig, dRes, post)
	}
}
