package sph

import (
	"math"

	"sphenergy/internal/par"
)

// This file holds the closure-walk implementations of the SPH passes: each
// pass re-traverses the neighbor search structure with a per-neighbor
// callback. They are the reference baseline for the neighbor-list pipeline
// (see neighborlist.go) and the fallback when no list has been built — e.g.
// callers that set up Grid manually, or Options.ClosureWalk runs.

func (s *State) xmassWalk() {
	p := s.P
	k := s.Opt.Kernel
	par.For(p.N, func(i int) {
		hi := p.H[i]
		sum := p.XM[i] * k.W(0, hi)
		s.Grid.ForEachNeighbor(i, 2*hi, func(j int, _, _, _, dist float64) {
			sum += p.XM[j] * k.W(dist, hi)
		})
		p.Kx[i] = sum
		p.Rho[i] = sum * p.M[i] / p.XM[i]
	})
}

func (s *State) gradhWalk() {
	p := s.P
	k := s.Opt.Kernel
	par.For(p.N, func(i int) {
		hi := p.H[i]
		// dW/dh = -(3 W + q dW/dq)/h = -(3 W(r,h) + (r/h) * h*DW(r,h))/h.
		dsum := -3 * p.XM[i] * k.W(0, hi) / hi
		s.Grid.ForEachNeighbor(i, 2*hi, func(j int, _, _, _, dist float64) {
			w := k.W(dist, hi)
			dw := k.DW(dist, hi)
			dwdh := -(3*w + dist*dw) / hi
			dsum += p.XM[j] * dwdh
		})
		omega := 1 + hi/(3*p.Kx[i])*dsum
		// Guard against pathological configurations.
		if omega < 0.2 || math.IsNaN(omega) {
			omega = 0.2
		}
		p.Gradh[i] = omega
	})
}

func (s *State) iadWalk() {
	p := s.P
	k := s.Opt.Kernel
	par.For(p.N, func(i int) {
		hi := p.H[i]
		var txx, txy, txz, tyy, tyz, tzz float64
		s.Grid.ForEachNeighbor(i, 2*hi, func(j int, dx, dy, dz, dist float64) {
			// Displacement from i to j is -(dx,dy,dz): ForEachNeighbor passes
			// xi - xj. The outer product is sign-agnostic.
			vj := p.M[j] / p.Rho[j]
			w := k.W(dist, hi) * vj
			txx += dx * dx * w
			txy += dx * dy * w
			txz += dx * dz * w
			tyy += dy * dy * w
			tyz += dy * dz * w
			tzz += dz * dz * w
		})
		s.storeIADTensor(i, txx, txy, txz, tyy, tyz, tzz)
	})

	// Velocity divergence and curl from IAD gradients:
	// dv_a/dx_b = sum_j V_j (v_j - v_i)_a * (C_i (r_j - r_i))_b W_ij.
	par.For(p.N, func(i int) {
		hi := p.H[i]
		var gxx, gxy, gxz, gyx, gyy, gyz, gzx, gzy, gzz float64
		s.Grid.ForEachNeighbor(i, 2*hi, func(j int, dx, dy, dz, dist float64) {
			// r_j - r_i = -(dx, dy, dz).
			rx, ry, rz := -dx, -dy, -dz
			vj := p.M[j] / p.Rho[j]
			w := k.W(dist, hi) * vj
			// A = C_i * r, the IAD gradient direction vector.
			ax := p.C11[i]*rx + p.C12[i]*ry + p.C13[i]*rz
			ay := p.C12[i]*rx + p.C22[i]*ry + p.C23[i]*rz
			az := p.C13[i]*rx + p.C23[i]*ry + p.C33[i]*rz
			dvx := p.VX[j] - p.VX[i]
			dvy := p.VY[j] - p.VY[i]
			dvz := p.VZ[j] - p.VZ[i]
			gxx += dvx * ax * w
			gxy += dvx * ay * w
			gxz += dvx * az * w
			gyx += dvy * ax * w
			gyy += dvy * ay * w
			gyz += dvy * az * w
			gzx += dvz * ax * w
			gzy += dvz * ay * w
			gzz += dvz * az * w
		})
		p.DivV[i] = gxx + gyy + gzz
		cx := gzy - gyz
		cy := gxz - gzx
		cz := gyx - gxy
		p.CurlV[i] = math.Sqrt(cx*cx + cy*cy + cz*cz)
	})
}

func (s *State) momentumWalk() {
	p := s.P
	k := s.Opt.Kernel
	par.For(p.N, func(i int) {
		hi := p.H[i]
		rhoi := p.Rho[i]
		prhoi := p.P[i] / (p.Gradh[i] * rhoi * rhoi)
		var ax, ay, az, du float64
		// Balsara limiter for particle i.
		fi := balsara(p.DivV[i], p.CurlV[i], p.C[i], hi)
		// Scan out to the symmetrized support 2*max(h_i, h_j); using the
		// global max h keeps the query radius valid for the built grid.
		scanR := 2 * math.Max(hi, s.MaxH)
		s.Grid.ForEachNeighbor(i, scanR, func(j int, dx, dy, dz, dist float64) {
			if dist >= 2*hi && dist >= 2*p.H[j] {
				return
			}
			dax, day, daz, ddu := s.momentumPair(k, i, j, hi, prhoi, fi, dx, dy, dz, dist)
			ax += dax
			ay += day
			az += daz
			du += ddu
		})
		p.AX[i] = ax
		p.AY[i] = ay
		p.AZ[i] = az
		p.DU[i] = du
	})
}
