package sph

import (
	"math"

	"sphenergy/internal/par"
)

// IADVelocityDivCurl computes the Integral Approach to Derivatives tensor
// (García-Senz et al. 2012) and, from it, the velocity divergence and curl
// per particle. The IAD tensor
//
//	tau_i = sum_j V_j (r_j - r_i) ⊗ (r_j - r_i) W_ij
//
// is inverted analytically (symmetric 3x3); its inverse C_i converts kernel
// sums into first derivatives without explicit kernel gradients, which
// improves accuracy on disordered particle distributions. This function is
// one of the two most compute-intensive kernels in the paper's measurements.
func (s *State) IADVelocityDivCurl() {
	if s.useSym() {
		s.iadSym()
	} else if s.useList() {
		s.iadList()
	} else {
		s.iadWalk()
	}
}

// storeIADTensor inverts the accumulated IAD tensor of particle i and
// stores C_i, falling back to an isotropic inverse for degenerate
// neighborhoods (e.g. isolated particles) to keep derivatives bounded.
func (s *State) storeIADTensor(i int, txx, txy, txz, tyy, tyz, tzz float64) {
	p := s.P
	c11, c12, c13, c22, c23, c33, ok := invertSym3(txx, txy, txz, tyy, tyz, tzz)
	if !ok {
		iso := 3 / (p.H[i] * p.H[i])
		c11, c22, c33 = iso, iso, iso
		c12, c13, c23 = 0, 0, 0
	}
	p.C11[i], p.C12[i], p.C13[i] = c11, c12, c13
	p.C22[i], p.C23[i], p.C33[i] = c22, c23, c33
}

// iadList is the neighbor-list version of the IAD pass: both the tensor
// accumulation and the gradient loop stream over the precomputed flat
// displacement slices instead of re-traversing the search grid.
func (s *State) iadList() {
	p := s.P
	k := s.Opt.Kernel
	nl := s.List
	par.For(p.N, func(i int) {
		hi := p.H[i]
		var txx, txy, txz, tyy, tyz, tzz float64
		for t := nl.Offsets[i]; t < nl.Offsets[i+1]; t++ {
			j := int(nl.Idx[t])
			dx, dy, dz, dist := nl.Dx[t], nl.Dy[t], nl.Dz[t], nl.Dist[t]
			vj := p.M[j] / p.Rho[j]
			w := k.W(dist, hi) * vj
			txx += dx * dx * w
			txy += dx * dy * w
			txz += dx * dz * w
			tyy += dy * dy * w
			tyz += dy * dz * w
			tzz += dz * dz * w
		}
		s.storeIADTensor(i, txx, txy, txz, tyy, tyz, tzz)
	})

	par.For(p.N, func(i int) {
		hi := p.H[i]
		var gxx, gxy, gxz, gyx, gyy, gyz, gzx, gzy, gzz float64
		for t := nl.Offsets[i]; t < nl.Offsets[i+1]; t++ {
			j := int(nl.Idx[t])
			dist := nl.Dist[t]
			// r_j - r_i = -(dx, dy, dz).
			rx, ry, rz := -nl.Dx[t], -nl.Dy[t], -nl.Dz[t]
			vj := p.M[j] / p.Rho[j]
			w := k.W(dist, hi) * vj
			ax := p.C11[i]*rx + p.C12[i]*ry + p.C13[i]*rz
			ay := p.C12[i]*rx + p.C22[i]*ry + p.C23[i]*rz
			az := p.C13[i]*rx + p.C23[i]*ry + p.C33[i]*rz
			dvx := p.VX[j] - p.VX[i]
			dvy := p.VY[j] - p.VY[i]
			dvz := p.VZ[j] - p.VZ[i]
			gxx += dvx * ax * w
			gxy += dvx * ay * w
			gxz += dvx * az * w
			gyx += dvy * ax * w
			gyy += dvy * ay * w
			gyz += dvy * az * w
			gzx += dvz * ax * w
			gzy += dvz * ay * w
			gzz += dvz * az * w
		}
		p.DivV[i] = gxx + gyy + gzz
		cx := gzy - gyz
		cy := gxz - gzx
		cz := gyx - gxy
		p.CurlV[i] = math.Sqrt(cx*cx + cy*cy + cz*cz)
	})
}

// invertSym3 inverts the symmetric matrix [[xx,xy,xz],[xy,yy,yz],[xz,yz,zz]].
// ok is false when the matrix is (near-)singular.
func invertSym3(xx, xy, xz, yy, yz, zz float64) (c11, c12, c13, c22, c23, c33 float64, ok bool) {
	det := xx*(yy*zz-yz*yz) - xy*(xy*zz-yz*xz) + xz*(xy*yz-yy*xz)
	scale := math.Max(math.Abs(xx), math.Max(math.Abs(yy), math.Abs(zz)))
	if scale == 0 || math.Abs(det) < 1e-12*scale*scale*scale {
		return 0, 0, 0, 0, 0, 0, false
	}
	inv := 1 / det
	c11 = (yy*zz - yz*yz) * inv
	c12 = (xz*yz - xy*zz) * inv
	c13 = (xy*yz - xz*yy) * inv
	c22 = (xx*zz - xz*xz) * inv
	c23 = (xy*xz - xx*yz) * inv
	c33 = (xx*yy - xy*xy) * inv
	return c11, c12, c13, c22, c23, c33, true
}
