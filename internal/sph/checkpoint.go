package sph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Checkpoint I/O: production SPH codes periodically dump the particle state
// so long campaigns survive job limits and failures. The format is a
// little-endian binary stream with a magic header, the integrator clock,
// all SoA fields, and a trailing CRC32 so truncated or corrupted files are
// detected on load.

const (
	checkpointMagic   = "SPHX"
	checkpointVersion = 1
)

// fieldSlices returns every float64 field in a fixed serialization order.
func (p *Particles) fieldSlices() [][]float64 {
	return [][]float64{
		p.X, p.Y, p.Z, p.VX, p.VY, p.VZ, p.AX, p.AY, p.AZ,
		p.M, p.H, p.Rho, p.P, p.C, p.U, p.DU,
		p.XM, p.Kx, p.Gradh,
		p.C11, p.C12, p.C13, p.C22, p.C23, p.C33,
		p.DivV, p.CurlV, p.Alpha,
	}
}

// WriteCheckpoint serializes the full simulation state (particles plus the
// integrator clock) to w.
func (s *State) WriteCheckpoint(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	head := []interface{}{
		uint32(checkpointVersion),
		uint64(s.P.N),
		s.Time, s.Dt,
		uint64(s.Step),
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("sph: checkpoint: %w", err)
		}
	}
	for _, f := range s.P.fieldSlices() {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return fmt.Errorf("sph: checkpoint: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, s.P.NC); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, s.P.Keys); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	// Trailing checksum over everything written so far (not itself).
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint,
// returning a fresh State carrying the restored particles and clock. opt
// supplies the (non-serialized) pipeline configuration. The whole stream is
// read into memory so the trailing CRC32 can be verified before any field
// is trusted.
func ReadCheckpoint(r io.Reader, opt Options) (*State, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	if len(raw) < len(checkpointMagic)+4+8+8+8+8+4 {
		return nil, fmt.Errorf("sph: checkpoint: file too short (%d bytes)", len(raw))
	}
	payload := raw[:len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("sph: checkpoint: checksum mismatch (corrupt or truncated file)")
	}

	br := bytes.NewReader(payload)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("sph: checkpoint: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("sph: checkpoint: unsupported version %d", version)
	}
	var n uint64
	var timeS, dt float64
	var step uint64
	for _, v := range []interface{}{&n, &timeS, &dt, &step} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("sph: checkpoint: %w", err)
		}
	}
	const maxParticles = 1 << 31
	if n == 0 || n > maxParticles {
		return nil, fmt.Errorf("sph: checkpoint: implausible particle count %d", n)
	}
	p := NewParticles(int(n))
	for _, f := range p.fieldSlices() {
		if err := binary.Read(br, binary.LittleEndian, f); err != nil {
			return nil, fmt.Errorf("sph: checkpoint: %w", err)
		}
	}
	if err := binary.Read(br, binary.LittleEndian, p.NC); err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, p.Keys); err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("sph: checkpoint: %d trailing bytes", br.Len())
	}
	st := NewState(p, opt)
	st.Time = timeS
	st.Dt = dt
	st.Step = int(step)
	return st, nil
}

// SaveCheckpointFile writes the checkpoint to a file.
func (s *State) SaveCheckpointFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	defer f.Close()
	return s.WriteCheckpoint(f)
}

// LoadCheckpointFile reads a checkpoint from a file.
func LoadCheckpointFile(path string, opt Options) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f, opt)
}
