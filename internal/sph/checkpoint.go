package sph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"sphenergy/internal/atomicio"
)

// Checkpoint I/O: production SPH codes periodically dump the particle state
// so long campaigns survive job limits and failures. The format is a
// little-endian binary stream with a magic header, the integrator clock,
// all SoA fields, and a trailing CRC32 so truncated or corrupted files are
// detected on load.

// Version history:
//
//	1 — particles + integrator clock
//	2 — appends the SFC reorder clock and the Verlet-skin reference
//	    snapshot (positions + smoothing lengths the candidate list was
//	    built from), so restarted runs replay the same rebuild/reorder
//	    steps bit-identically. The candidate indices themselves are a pure
//	    function of the snapshot and are regenerated on restore. Version-1
//	    files still load.
const (
	checkpointMagic   = "SPHX"
	checkpointVersion = 2
)

// fieldSlices returns every float64 field in a fixed serialization order.
func (p *Particles) fieldSlices() [][]float64 {
	return [][]float64{
		p.X, p.Y, p.Z, p.VX, p.VY, p.VZ, p.AX, p.AY, p.AZ,
		p.M, p.H, p.Rho, p.P, p.C, p.U, p.DU,
		p.XM, p.Kx, p.Gradh,
		p.C11, p.C12, p.C13, p.C22, p.C23, p.C33,
		p.DivV, p.CurlV, p.Alpha,
	}
}

// WriteCheckpoint serializes the full simulation state (particles plus the
// integrator clock) to w.
func (s *State) WriteCheckpoint(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	head := []interface{}{
		uint32(checkpointVersion),
		uint64(s.P.N),
		s.Time, s.Dt,
		uint64(s.Step),
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("sph: checkpoint: %w", err)
		}
	}
	for _, f := range s.P.fieldSlices() {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return fmt.Errorf("sph: checkpoint: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, s.P.NC); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, s.P.Keys); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(s.LastReorderStep)); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	hasSkin := uint8(0)
	if s.List != nil && s.List.refsOK {
		hasSkin = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hasSkin); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	if hasSkin == 1 {
		nl := s.List
		skin := []interface{}{int64(nl.BuildStep), nl.RefX, nl.RefY, nl.RefZ, nl.RefH}
		for _, v := range skin {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return fmt.Errorf("sph: checkpoint: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	// Trailing checksum over everything written so far (not itself).
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint,
// returning a fresh State carrying the restored particles and clock. opt
// supplies the (non-serialized) pipeline configuration. The whole stream is
// read into memory so the trailing CRC32 can be verified before any field
// is trusted.
func ReadCheckpoint(r io.Reader, opt Options) (*State, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	if len(raw) < len(checkpointMagic)+4+8+8+8+8+4 {
		return nil, fmt.Errorf("sph: checkpoint: file too short (%d bytes)", len(raw))
	}
	payload := raw[:len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("sph: checkpoint: checksum mismatch (corrupt or truncated file)")
	}

	br := bytes.NewReader(payload)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("sph: checkpoint: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	if version != 1 && version != checkpointVersion {
		return nil, fmt.Errorf("sph: checkpoint: unsupported version %d", version)
	}
	var n uint64
	var timeS, dt float64
	var step uint64
	for _, v := range []interface{}{&n, &timeS, &dt, &step} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("sph: checkpoint: %w", err)
		}
	}
	const maxParticles = 1 << 31
	if n == 0 || n > maxParticles {
		return nil, fmt.Errorf("sph: checkpoint: implausible particle count %d", n)
	}
	p := NewParticles(int(n))
	for _, f := range p.fieldSlices() {
		if err := binary.Read(br, binary.LittleEndian, f); err != nil {
			return nil, fmt.Errorf("sph: checkpoint: %w", err)
		}
	}
	if err := binary.Read(br, binary.LittleEndian, p.NC); err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, p.Keys); err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	st := NewState(p, opt)
	st.Time = timeS
	st.Dt = dt
	st.Step = int(step)
	if version >= 2 {
		var lastReorder int64
		if err := binary.Read(br, binary.LittleEndian, &lastReorder); err != nil {
			return nil, fmt.Errorf("sph: checkpoint: %w", err)
		}
		st.LastReorderStep = int(lastReorder)
		var hasSkin uint8
		if err := binary.Read(br, binary.LittleEndian, &hasSkin); err != nil {
			return nil, fmt.Errorf("sph: checkpoint: %w", err)
		}
		if hasSkin == 1 {
			nl := &NeighborList{Ngmax: opt.ngmax()}
			var buildStep int64
			if err := binary.Read(br, binary.LittleEndian, &buildStep); err != nil {
				return nil, fmt.Errorf("sph: checkpoint: %w", err)
			}
			nl.BuildStep = int(buildStep)
			nl.RefX = make([]float64, n)
			nl.RefY = make([]float64, n)
			nl.RefZ = make([]float64, n)
			nl.RefH = make([]float64, n)
			for _, f := range [][]float64{nl.RefX, nl.RefY, nl.RefZ, nl.RefH} {
				if err := binary.Read(br, binary.LittleEndian, f); err != nil {
					return nil, fmt.Errorf("sph: checkpoint: %w", err)
				}
			}
			// The candidate CSR is regenerated from the snapshot on the
			// next FindNeighbors; until then only the references are valid.
			nl.refsOK = true
			st.List = nl
		}
	} else if k := opt.ReorderEvery; k > 0 && st.Step > 0 {
		// Version-1 files predate the reorder clock; pre-PR runs reordered
		// at the start of every step that is a multiple of ReorderEvery,
		// which this reproduces (a resume landing exactly on a multiple
		// still has that reorder ahead of it).
		if st.Step%k == 0 {
			st.LastReorderStep = st.Step - k
		} else {
			st.LastReorderStep = st.Step - st.Step%k
		}
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("sph: checkpoint: %d trailing bytes", br.Len())
	}
	return st, nil
}

// SaveCheckpointFile writes the checkpoint to a file, atomically: a kill
// mid-write leaves any previous checkpoint at path intact.
func (s *State) SaveCheckpointFile(path string) error {
	if err := atomicio.WriteFile(path, s.WriteCheckpoint); err != nil {
		return fmt.Errorf("sph: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpointFile reads a checkpoint from a file.
func LoadCheckpointFile(path string, opt Options) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sph: checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f, opt)
}
