package sph

import (
	"math"

	"sphenergy/internal/par"
)

// Neighbor-list versions of the density-like passes: identical arithmetic
// to the walk versions in walk.go, but streaming over the flat CSR slices
// built by FindNeighbors instead of re-traversing the search grid. Entry
// order matches the grid traversal order, so floating-point sums agree with
// the walk bit for bit (up to the walk's wider candidate filtering).

func (s *State) xmassList() {
	p := s.P
	k := s.Opt.Kernel
	nl := s.List
	par.For(p.N, func(i int) {
		hi := p.H[i]
		sum := p.XM[i] * k.W(0, hi)
		for t := nl.Offsets[i]; t < nl.Offsets[i+1]; t++ {
			sum += p.XM[nl.Idx[t]] * k.W(nl.Dist[t], hi)
		}
		p.Kx[i] = sum
		p.Rho[i] = sum * p.M[i] / p.XM[i]
	})
}

func (s *State) gradhList() {
	p := s.P
	k := s.Opt.Kernel
	nl := s.List
	par.For(p.N, func(i int) {
		hi := p.H[i]
		// dW/dh = -(3 W + q dW/dq)/h = -(3 W(r,h) + (r/h) * h*DW(r,h))/h.
		dsum := -3 * p.XM[i] * k.W(0, hi) / hi
		for t := nl.Offsets[i]; t < nl.Offsets[i+1]; t++ {
			dist := nl.Dist[t]
			w := k.W(dist, hi)
			dw := k.DW(dist, hi)
			dwdh := -(3*w + dist*dw) / hi
			dsum += p.XM[nl.Idx[t]] * dwdh
		}
		omega := 1 + hi/(3*p.Kx[i])*dsum
		// Guard against pathological configurations.
		if omega < 0.2 || math.IsNaN(omega) {
			omega = 0.2
		}
		p.Gradh[i] = omega
	})
}
