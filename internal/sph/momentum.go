package sph

import (
	"math"

	"sphenergy/internal/kernel"
	"sphenergy/internal/par"
)

// AVSwitches evolves the per-particle artificial-viscosity coefficient alpha
// following the Morris & Monaghan (1997) switch: alpha rises on compression
// (negative velocity divergence) and decays toward AlphaMin on a timescale
// proportional to the sound-crossing time of the smoothing volume.
func (s *State) AVSwitches(dt float64) {
	p := s.P
	par.For(p.N, func(i int) {
		tau := p.H[i] / (s.Opt.AVDecayTime*p.C[i] + 1e-30)
		decay := (s.Opt.AlphaMin - p.Alpha[i]) / tau
		source := 0.0
		if p.DivV[i] < 0 {
			source = -p.DivV[i] * (s.Opt.AlphaMax - p.Alpha[i])
		}
		a := p.Alpha[i] + dt*(decay+source)
		if a < s.Opt.AlphaMin {
			a = s.Opt.AlphaMin
		}
		if a > s.Opt.AlphaMax {
			a = s.Opt.AlphaMax
		}
		p.Alpha[i] = a
	})
}

// MomentumEnergy computes hydrodynamic accelerations and internal-energy
// rates with the gradh-corrected, pairwise-symmetric SPH formulation plus
// Monaghan artificial viscosity with Balsara limiter. This is the most
// compute-intensive kernel of the pipeline — the paper's MomentumEnergy.
func (s *State) MomentumEnergy() {
	if s.useSym() {
		s.momentumSym()
	} else if s.useList() {
		s.momentumList()
	} else {
		s.momentumWalk()
	}
}

// momentumPair evaluates one interacting pair (i, j) of the momentum and
// energy equations, returning i's acceleration and du/dt contributions.
// (dx, dy, dz) is x_i - x_j and dist its norm; hi, prhoi and fi are i's
// smoothing length, P/(Omega rho^2) and Balsara factor, hoisted by the
// caller. Shared by the walk and list paths so both produce identical
// floating-point results pair for pair.
func (s *State) momentumPair(k kernel.Kernel, i, j int, hi, prhoi, fi, dx, dy, dz, dist float64) (ax, ay, az, du float64) {
	p := s.P
	hj := p.H[j]
	rhoi := p.Rho[i]
	rhoj := p.Rho[j]
	prhoj := p.P[j] / (p.Gradh[j] * rhoj * rhoj)
	// Symmetrized kernel gradient magnitude along r_ij.
	dwi := k.DW(dist, hi)
	dwj := k.DW(dist, hj)
	// Unit vector from j to i is (dx,dy,dz)/dist.
	invr := 1 / (dist + 1e-30)
	ex, ey, ez := dx*invr, dy*invr, dz*invr

	// Artificial viscosity (Monaghan 1992 with Balsara limiter).
	dvx := p.VX[i] - p.VX[j]
	dvy := p.VY[i] - p.VY[j]
	dvz := p.VZ[i] - p.VZ[j]
	vdotr := dvx*dx + dvy*dy + dvz*dz
	var piij float64
	if vdotr < 0 {
		hij := 0.5 * (hi + hj)
		cij := 0.5 * (p.C[i] + p.C[j])
		rhoij := 0.5 * (rhoi + rhoj)
		muij := hij * vdotr / (dist*dist + 0.01*hij*hij)
		alphaij := 0.5 * (p.Alpha[i] + p.Alpha[j])
		fj := balsara(p.DivV[j], p.CurlV[j], p.C[j], hj)
		fij := 0.5 * (fi + fj)
		// Pi_ij = f * alpha * (-c mu + beta mu^2) / rho, beta as a
		// multiple of alpha (conventionally 2).
		piij = fij * alphaij * (-cij*muij + s.Opt.AVBeta*muij*muij) / rhoij
	}

	mj := p.M[j]
	gradTermI := prhoi * dwi
	gradTermJ := prhoj * dwj
	acc := mj * (gradTermI + gradTermJ + piij*0.5*(dwi+dwj))
	ax = -acc * ex
	ay = -acc * ey
	az = -acc * ez
	// Energy equation: du/dt = P_i/(Ω_i ρ_i²) Σ m_j v_ij·∇W_i + AV heating.
	vdotgrad := (dvx*ex + dvy*ey + dvz*ez)
	du = mj * (gradTermI + 0.5*piij*0.5*(dwi+dwj)) * vdotgrad
	return ax, ay, az, du
}

// momentumList streams the momentum/energy pass over the per-step neighbor
// list: the main segment covers every pair within i's own support, and the
// Ext segment supplies the asymmetric pairs (inside j's support only), so
// no distance filtering is needed here — the pair set is exact by
// construction.
func (s *State) momentumList() {
	p := s.P
	k := s.Opt.Kernel
	nl := s.List
	par.For(p.N, func(i int) {
		hi := p.H[i]
		rhoi := p.Rho[i]
		prhoi := p.P[i] / (p.Gradh[i] * rhoi * rhoi)
		var ax, ay, az, du float64
		fi := balsara(p.DivV[i], p.CurlV[i], p.C[i], hi)
		for t := nl.Offsets[i]; t < nl.Offsets[i+1]; t++ {
			dax, day, daz, ddu := s.momentumPair(k, i, int(nl.Idx[t]), hi, prhoi, fi,
				nl.Dx[t], nl.Dy[t], nl.Dz[t], nl.Dist[t])
			ax += dax
			ay += day
			az += daz
			du += ddu
		}
		for t := nl.ExtOffsets[i]; t < nl.ExtOffsets[i+1]; t++ {
			dax, day, daz, ddu := s.momentumPair(k, i, int(nl.ExtIdx[t]), hi, prhoi, fi,
				nl.ExtDx[t], nl.ExtDy[t], nl.ExtDz[t], nl.ExtDist[t])
			ax += dax
			ay += day
			az += daz
			du += ddu
		}
		p.AX[i] = ax
		p.AY[i] = ay
		p.AZ[i] = az
		p.DU[i] = du
	})
}

// balsara computes the Balsara (1995) shear limiter f = |divv| / (|divv| +
// |curlv| + 0.0001 c/h).
func balsara(divv, curlv, c, h float64) float64 {
	ad := math.Abs(divv)
	return ad / (ad + curlv + 1e-4*c/h + 1e-30)
}
