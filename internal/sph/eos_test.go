package sph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdealGas(t *testing.T) {
	eos := IdealGas{Gamma: 5.0 / 3.0}
	p, c := eos.PressureSoundSpeed(2.0, 3.0)
	wantP := (5.0/3.0 - 1) * 2 * 3
	if math.Abs(p-wantP) > 1e-12 {
		t.Errorf("P = %v, want %v", p, wantP)
	}
	wantC := math.Sqrt(5.0 / 3.0 * wantP / 2.0)
	if math.Abs(c-wantC) > 1e-12 {
		t.Errorf("c = %v, want %v", c, wantC)
	}
}

func TestIdealGasDegenerate(t *testing.T) {
	eos := IdealGas{Gamma: 5.0 / 3.0}
	p, c := eos.PressureSoundSpeed(0, 1)
	if p != 0 || c != 0 {
		t.Errorf("zero density should give zero P and c, got %v %v", p, c)
	}
}

func TestIsothermal(t *testing.T) {
	eos := Isothermal{Cs: 2}
	p, c := eos.PressureSoundSpeed(3, 999 /* u ignored */)
	if p != 12 {
		t.Errorf("P = %v, want 12", p)
	}
	if c != 2 {
		t.Errorf("c = %v, want 2", c)
	}
}

func TestPolytropic(t *testing.T) {
	eos := Polytropic{K: 2, Gamma: 2}
	p, c := eos.PressureSoundSpeed(3, 0)
	if math.Abs(p-18) > 1e-12 {
		t.Errorf("P = %v, want 18", p)
	}
	if math.Abs(c-math.Sqrt(2*18/3.0)) > 1e-12 {
		t.Errorf("c = %v", c)
	}
}

func TestEOSPositivityProperty(t *testing.T) {
	list := []EOS{IdealGas{Gamma: 1.4}, Isothermal{Cs: 1}, Polytropic{K: 1, Gamma: 5.0 / 3.0}}
	f := func(rhoRaw, uRaw float64) bool {
		rho := math.Abs(rhoRaw)
		u := math.Abs(uRaw)
		if math.IsInf(rho, 0) || math.IsInf(u, 0) || rho == 0 {
			return true
		}
		for _, e := range list {
			p, c := e.PressureSoundSpeed(rho, u)
			if p < 0 || c < 0 || math.IsNaN(p) || math.IsNaN(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEOSNames(t *testing.T) {
	if (IdealGas{}).Name() != "ideal-gas" {
		t.Error("ideal gas name")
	}
	if (Isothermal{}).Name() != "isothermal" {
		t.Error("isothermal name")
	}
	if (Polytropic{}).Name() != "polytropic" {
		t.Error("polytropic name")
	}
}
