package sph

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundtrip(t *testing.T) {
	st := latticeState(6, t)
	// Evolve a little so every field carries non-trivial values.
	for i := 0; i < 3; i++ {
		st.RunStep(nil)
	}
	var buf bytes.Buffer
	if err := st.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), st.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if back.P.N != st.P.N || back.Time != st.Time || back.Dt != st.Dt || back.Step != st.Step {
		t.Fatalf("clock/meta mismatch: %+v vs %+v", back, st)
	}
	for i := 0; i < st.P.N; i++ {
		if back.P.X[i] != st.P.X[i] || back.P.U[i] != st.P.U[i] ||
			back.P.Rho[i] != st.P.Rho[i] || back.P.Alpha[i] != st.P.Alpha[i] ||
			back.P.NC[i] != st.P.NC[i] || back.P.Keys[i] != st.P.Keys[i] {
			t.Fatalf("particle %d fields lost", i)
		}
	}
}

func TestCheckpointResumeContinuesIdentically(t *testing.T) {
	// Running N steps straight equals running k, checkpointing, restoring
	// and running N-k: checkpoint/restart must not perturb the trajectory.
	straight := latticeState(6, t)
	for i := 0; i < 6; i++ {
		straight.RunStep(nil)
	}

	first := latticeState(6, t)
	for i := 0; i < 3; i++ {
		first.RunStep(nil)
	}
	var buf bytes.Buffer
	if err := first.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ReadCheckpoint(&buf, first.Opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resumed.RunStep(nil)
	}
	if resumed.Time != straight.Time {
		t.Fatalf("time diverged after restart: %v vs %v", resumed.Time, straight.Time)
	}
	for i := 0; i < straight.P.N; i++ {
		if resumed.P.X[i] != straight.P.X[i] || resumed.P.VX[i] != straight.P.VX[i] {
			t.Fatalf("trajectory diverged at particle %d after restart", i)
		}
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	st := latticeState(4, t)
	var buf bytes.Buffer
	if err := st.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bit flip in the middle.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := ReadCheckpoint(bytes.NewReader(corrupt), st.Opt); err == nil {
		t.Error("corrupted checkpoint accepted")
	}
	// Truncation.
	if _, err := ReadCheckpoint(bytes.NewReader(data[:len(data)-10]), st.Opt); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	// Wrong magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadCheckpoint(bytes.NewReader(bad), st.Opt); err == nil {
		t.Error("bad magic accepted")
	}
	// Empty input.
	if _, err := ReadCheckpoint(bytes.NewReader(nil), st.Opt); err == nil {
		t.Error("empty checkpoint accepted")
	}
}

func TestCheckpointFileRoundtrip(t *testing.T) {
	st := latticeState(4, t)
	st.RunStep(nil)
	path := filepath.Join(t.TempDir(), "state.sphx")
	if err := st.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpointFile(path, st.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if back.P.N != st.P.N || back.Time != st.Time {
		t.Error("file roundtrip lost state")
	}
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "missing"), st.Opt); err == nil {
		t.Error("missing file accepted")
	}
}
