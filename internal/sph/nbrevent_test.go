package sph_test

import (
	"testing"

	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
)

// TestNeighborEventMatchesStats runs a real problem with the hook installed
// and checks the event stream reconciles exactly with the NbrStats cause
// counters — every rebuild and refresh accounted for, none invented.
func TestNeighborEventMatchesStats(t *testing.T) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(8))
	opt.NgTarget = 32
	counts := map[string]int{}
	var steps []int
	opt.NeighborEvent = func(step int, kind string) {
		counts[kind]++
		steps = append(steps, step)
	}
	st := sph.NewState(p, opt)
	const n = 6
	for i := 0; i < n; i++ {
		st.RunStep(nil)
	}
	if len(steps) != n {
		t.Fatalf("hook fired %d times over %d steps, want once per step", len(steps), n)
	}
	ns := st.NbrStats
	want := map[string]int{
		"init": ns.RebuildInit, "cadence": ns.RebuildCadence,
		"drift": ns.RebuildDrift, "overflow": ns.RebuildOverflow,
		"refresh": ns.Refreshes,
	}
	for kind, w := range want {
		if counts[kind] != w {
			t.Errorf("%s events = %d, stats say %d (counts %v, stats %+v)",
				kind, counts[kind], w, counts, ns)
		}
	}
	if counts["init"] == 0 || counts["refresh"] == 0 {
		t.Errorf("expected at least one init and one refresh: %v", counts)
	}
}

// TestNeighborEventNilHookUnchanged pins that installing the hook does not
// perturb the simulation: same seed, hook on and off, bit-identical state.
func TestNeighborEventNilHookUnchanged(t *testing.T) {
	run := func(hook func(int, string)) *sph.State {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(8))
		opt.NgTarget = 32
		opt.NeighborEvent = hook
		st := sph.NewState(p, opt)
		for i := 0; i < 4; i++ {
			st.RunStep(nil)
		}
		return st
	}
	a := run(nil)
	b := run(func(int, string) {})
	pa, pb := a.P, b.P
	for i := range pa.X {
		if pa.X[i] != pb.X[i] || pa.Rho[i] != pb.Rho[i] || pa.U[i] != pb.U[i] {
			t.Fatalf("particle %d state diverged with the hook installed", i)
		}
	}
	if a.Dt != b.Dt {
		t.Fatalf("dt diverged: %g vs %g", a.Dt, b.Dt)
	}
}
