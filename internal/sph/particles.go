// Package sph implements the smoothed-particle-hydrodynamics pipeline of the
// SPH-EXA simulation framework: volume-element density (XMass), gradh
// normalization, equation of state, the integral approach to derivatives
// (IAD) with velocity divergence/curl, artificial-viscosity switches,
// momentum and energy rates, and CFL time stepping.
//
// The function decomposition deliberately mirrors the per-function
// instrumentation points of the paper (DomainDecompAndSync, FindNeighbors,
// XMass, NormalizationGradh, EquationOfState, IADVelocityDivCurl,
// AVSwitches, MomentumEnergy, Timestep, UpdateQuantities), because those are
// the units at which energy is attributed and GPU frequencies are switched.
//
// Storage is structure-of-arrays, matching both GPU-style data layout and
// cache-friendly traversal on CPUs.
package sph

import (
	"fmt"
	"math"

	"sphenergy/internal/kernel"
	"sphenergy/internal/neighbors"
	"sphenergy/internal/par"
	"sphenergy/internal/sfc"
)

// Particles holds the SoA particle state of one domain (rank).
type Particles struct {
	N int

	// Positions, velocities, accelerations.
	X, Y, Z    []float64
	VX, VY, VZ []float64
	AX, AY, AZ []float64

	// Mass, smoothing length.
	M, H []float64

	// Thermodynamics.
	Rho []float64 // density (via kx and volume elements)
	P   []float64 // pressure
	C   []float64 // sound speed
	U   []float64 // specific internal energy
	DU  []float64 // du/dt

	// Volume-element machinery.
	XM    []float64 // generalized volume element mass x_i
	Kx    []float64 // normalization kx_i = sum_j x_j W_ij (density estimate per x)
	Gradh []float64 // Omega_i gradh correction factor

	// IAD tensor (symmetric 3x3, inverse stored).
	C11, C12, C13, C22, C23, C33 []float64

	// Velocity derivatives.
	DivV  []float64
	CurlV []float64

	// Artificial viscosity switch.
	Alpha []float64

	// Per-particle neighbor count from the last FindNeighbors.
	NC []int32

	// Keys caches the SFC key per particle for domain sync.
	Keys []sfc.Key
}

// NewParticles allocates state for n particles.
func NewParticles(n int) *Particles {
	p := &Particles{N: n}
	fs := []*[]float64{
		&p.X, &p.Y, &p.Z, &p.VX, &p.VY, &p.VZ, &p.AX, &p.AY, &p.AZ,
		&p.M, &p.H, &p.Rho, &p.P, &p.C, &p.U, &p.DU,
		&p.XM, &p.Kx, &p.Gradh,
		&p.C11, &p.C12, &p.C13, &p.C22, &p.C23, &p.C33,
		&p.DivV, &p.CurlV, &p.Alpha,
	}
	for _, f := range fs {
		*f = make([]float64, n)
	}
	p.NC = make([]int32, n)
	p.Keys = make([]sfc.Key, n)
	return p
}

// Len returns the particle count.
func (p *Particles) Len() int { return p.N }

// Validate performs basic sanity checks (finite positions, positive mass and
// smoothing length).
func (p *Particles) Validate() error {
	for i := 0; i < p.N; i++ {
		if math.IsNaN(p.X[i]) || math.IsNaN(p.Y[i]) || math.IsNaN(p.Z[i]) {
			return fmt.Errorf("sph: particle %d has NaN position", i)
		}
		if p.M[i] <= 0 {
			return fmt.Errorf("sph: particle %d has non-positive mass %g", i, p.M[i])
		}
		if p.H[i] <= 0 {
			return fmt.Errorf("sph: particle %d has non-positive smoothing length %g", i, p.H[i])
		}
	}
	return nil
}

// MaxH returns the largest smoothing length, used to size the neighbor grid.
func (p *Particles) MaxH() float64 {
	m := 0.0
	for i := 0; i < p.N; i++ {
		if p.H[i] > m {
			m = p.H[i]
		}
	}
	return m
}

// Reorder permutes all particle fields by perm (newIndex -> oldIndex),
// typically an SFC sort order.
func (p *Particles) Reorder(perm []int) {
	if len(perm) != p.N {
		panic("sph: permutation length mismatch")
	}
	tmp := make([]float64, p.N) // one scratch buffer shared by all fields
	reorderF := func(f []float64) {
		for i, o := range perm {
			tmp[i] = f[o]
		}
		copy(f, tmp)
	}
	for _, f := range [][]float64{
		p.X, p.Y, p.Z, p.VX, p.VY, p.VZ, p.AX, p.AY, p.AZ,
		p.M, p.H, p.Rho, p.P, p.C, p.U, p.DU,
		p.XM, p.Kx, p.Gradh,
		p.C11, p.C12, p.C13, p.C22, p.C23, p.C33,
		p.DivV, p.CurlV, p.Alpha,
	} {
		reorderF(f)
	}
	tmpK := make([]sfc.Key, p.N)
	for i, o := range perm {
		tmpK[i] = p.Keys[o]
	}
	copy(p.Keys, tmpK)
	tmpN := make([]int32, p.N)
	for i, o := range perm {
		tmpN[i] = p.NC[o]
	}
	copy(p.NC, tmpN)
}

// Options configures the SPH pipeline.
type Options struct {
	Kernel kernel.Kernel
	Box    sfc.Box

	// NgTarget is the desired neighbor count (SPH-EXA uses ~100-150 for
	// production; smaller values keep tests fast).
	NgTarget int

	// VEExponent is the generalized volume element exponent p in
	// x_i = (m_i/rho_i)^p m_i^(1-p); 0 recovers standard SPH.
	VEExponent float64

	// EOS selects the equation of state.
	EOS EOS

	// Artificial viscosity parameters.
	AlphaMin, AlphaMax float64
	AVBeta             float64 // beta = 2*alpha convention when fixed
	AVDecayTime        float64 // tau multiplier for the alpha decay

	// TreeSearch selects the octree-based neighbor search backend instead
	// of the cell grid (both return identical neighbor sets).
	TreeSearch bool
	// TreeBucketSize is the octree leaf size when TreeSearch is on
	// (default 64).
	TreeBucketSize int

	// NgMax caps the per-particle neighbor-list length (SPH-EXA's ngmax);
	// particles whose support holds more neighbors are truncated and
	// counted in State.List.Overflow. Zero selects 4×NgTarget (at least
	// 192).
	NgMax int

	// ClosureWalk selects the legacy pipeline that re-traverses the
	// neighbor search structure with a per-neighbor callback in every
	// pass, instead of streaming over the per-step neighbor list. Kept as
	// the reference baseline for equivalence tests and benchmarks.
	//
	// The pipeline modes, from reference to fastest, and what each
	// guarantees relative to the previous one:
	//
	//   - ClosureWalk: the reference. Every pass walks the grid.
	//   - default (neighbor list): streams over the flat CSR list;
	//     physics equal to the walk within 1e-9 relative (identical pair
	//     sets, kernel arithmetic reordered).
	//   - + Skin > 0 (Verlet-skin reuse): refresh steps re-derive the list
	//     from cached candidates, bit-identical to rebuilding every step;
	//     Skin=0 or RebuildEvery=1 reproduce the plain list byte for byte.
	//   - + SymmetricPairs: pair passes visit each pair once and scatter
	//     to both endpoints; equal within 1e-9 (summation order differs),
	//     deterministic for a fixed GOMAXPROCS.
	//   - + CellSlab: the neighbor search itself switches to the cell-slab
	//     half-stencil sweep, which produces bit-identical lists (same
	//     pairs, same order) — the whole-pipeline output is unchanged down
	//     to the last bit, it is only found faster.
	//   - Float32Eval: quantizes kernel evaluation; documented as failing
	//     the 1e-9 gate (~1e-7), kept as a recorded verdict.
	ClosureWalk bool

	// CellSlab switches the neighbor-list construction (plain builds and
	// Verlet-skin candidate rebuilds) from per-particle grid walks to the
	// cell-slab sweep with a folded half-sphere gather: the grid is
	// traversed cell by cell, candidate cells stream through contiguous
	// SoA slabs, and each unordered pair is evaluated once, emitting both
	// CSR directions. The resulting lists are bit-identical to the walk's
	// (same pair sets, same order), so every equivalence and checkpoint
	// guarantee is unchanged; rebuild cost drops roughly 2x. Grids the
	// sweep cannot handle (octree backend, fewer than 4 cells per axis,
	// support radii wider than a cell) fall back to the walk per rebuild.
	// NbrStats.GatherSeconds/FilterSeconds split the rebuild cost while
	// the slab path is active.
	CellSlab bool

	// ReorderEvery makes RunStep reorder particles along the Morton SFC
	// every K steps (0 disables), so neighbor-list indices keep pointing
	// at cache-adjacent memory as particles mix. With Verlet-skin reuse
	// active the cadence is keyed to the rebuild trigger: once K steps have
	// passed, the reorder rides along with the next candidate rebuild
	// (reordering invalidates the candidate cache anyway) and is forced at
	// 2K so the memory layout cannot go permanently stale.
	ReorderEvery int

	// Skin is the Verlet-skin fraction of the neighbor search: FindNeighbors
	// gathers candidates out to (1+Skin)·2·1.3·h and reuses that candidate
	// list across steps, refreshing only the cached pair displacements,
	// until accumulated particle drift (or smoothing-length growth) could
	// let an unseen pair enter some support sphere. 0 disables reuse and is
	// bit-identical to rebuilding every step; larger skins refresh cheaper
	// lists less often but make every pass scan more candidates.
	Skin float64

	// RebuildEvery forces a candidate rebuild at least every K steps on top
	// of the drift trigger (0 = drift-triggered only). 1 disables reuse
	// entirely, reproducing the rebuild-every-step pipeline exactly.
	RebuildEvery int

	// SymmetricPairs folds the two directions of every neighbor pair into
	// one record (Newton's third law): FindNeighbors derives a folded pair
	// list from the main CSR, and the pair-interaction passes — XMass,
	// NormalizationGradh, IADVelocityDivCurl, MomentumEnergy — visit each
	// (i, j) pair once and scatter to both endpoints through per-worker
	// private accumulators (par.Scatter). Results differ from the
	// asymmetric list only in summation order (~1e-15 relative) and are
	// deterministic for a fixed GOMAXPROCS. Must be chosen before the run's
	// first FindNeighbors and left alone: the folded list replaces the Ext
	// transpose, so flipping the flag mid-run leaves the other layout stale
	// until the next FindNeighbors.
	SymmetricPairs bool

	// Float32Eval quantizes kernel evaluation on the symmetric path to
	// float32 — float32 kernel tables and interpolation, pair displacements
	// rounded through float32 — while keeping every accumulation in
	// float64. Requires SymmetricPairs and a tabulated kernel (other
	// kernels keep float64 evaluation). Verdict for the ROADMAP question:
	// the quantization alone contributes ~1e-7 relative error, so this mode
	// measurably fails the pipeline's 1e-9 equivalence gate; see
	// TestFloat32EvalFailsEquivalenceGate.
	Float32Eval bool

	// CFL is the Courant factor for the timestep.
	CFL float64

	// MaxDtGrowth bounds dt growth between steps.
	MaxDtGrowth float64

	// Gravity enables self-gravity (used by Evrard collapse).
	Gravity   bool
	GravG     float64 // gravitational constant in simulation units
	GravEps   float64 // softening length
	GravTheta float64 // Barnes-Hut opening angle

	// PassHook, when non-nil, is called by RunStep after each pipeline pass
	// with the pass name (see PassNames) and its wall-clock duration in
	// seconds. Nil skips the timing entirely — the uninstrumented step pays
	// only a nil check per pass.
	PassHook func(pass string, seconds float64)

	// WrapPass, when non-nil, wraps each pass's execution in RunStep; it
	// must invoke run exactly once. Used to attach pprof labels so CPU
	// profile samples group per pass.
	WrapPass func(pass string, run func())

	// NeighborEvent, when non-nil, observes every FindNeighbors outcome in
	// list mode with the step index and the trigger kind: "init", "cadence",
	// "drift" or "overflow" for candidate rebuilds (matching the NbrStats
	// cause counters) and "refresh" for a Verlet-skin refresh. Nil costs a
	// single check; the closure-walk pipeline never fires it.
	NeighborEvent func(step int, kind string)
}

// DefaultOptions returns the options used by the examples and tests.
func DefaultOptions(box sfc.Box) Options {
	return Options{
		Kernel:       kernel.NewCheckedTable(kernel.WendlandC2{}, kernel.DefaultTablePoints),
		Box:          box,
		NgTarget:     64,
		VEExponent:   0,
		EOS:          IdealGas{Gamma: 5.0 / 3.0},
		AlphaMin:     0.05,
		AlphaMax:     1.0,
		AVBeta:       2.0,
		AVDecayTime:  0.2,
		CFL:          0.3,
		MaxDtGrowth:  1.1,
		ReorderEvery: 32,
		Skin:         0.3,
		GravG:        1.0,
		GravEps:      1e-3,
		GravTheta:    0.5,
	}
}

// ngmax resolves the effective per-particle neighbor-list cap.
func (o Options) ngmax() int {
	if o.NgMax > 0 {
		return o.NgMax
	}
	m := 4 * o.NgTarget
	if m < 192 {
		m = 192
	}
	return m
}

// State bundles particles with the neighbor structure of the current step.
type State struct {
	P    *Particles
	Opt  Options
	Grid neighbors.Searcher

	// List is the per-step neighbor list built by FindNeighbors (nil in
	// ClosureWalk mode or before the first FindNeighbors); its buffers are
	// reused across steps.
	List *NeighborList

	// MaxH caches the largest smoothing length after FindNeighbors; kernels
	// use it to bound asymmetric-support neighbor scans.
	MaxH float64

	// Dt is the current timestep; Time the accumulated simulated physics time.
	Dt, Time float64
	Step     int

	// LastReorderStep records the step of the last SFC reorder; RunStep keys
	// the reorder cadence to it and it is checkpointed so restarted runs
	// replay the same reorder (and therefore rebuild) steps.
	LastReorderStep int

	// NbrStats counts how FindNeighbors resolved each step (diagnostic
	// only; not checkpointed).
	NbrStats NeighborStats

	gridBuf  *neighbors.Grid // reused cell-grid buffers across rebuilds
	hBackup  []float64       // refresh-abort scratch: pre-update H
	ncBackup []int32         // refresh-abort scratch: pre-update NC

	// Cell-slab sweep scratch (Options.CellSlab): the sweep's reusable
	// slab/spill buffers, the per-particle cut radii of the gather, and the
	// gathered per-candidate squared distances (CSR-aligned with the
	// candidate list; valid only within the build step that gathered them).
	slab   neighbors.SlabSweep
	cuts   []float64
	candR2 []float64

	// Symmetric-pair scratch, all reused across steps: the scatter-add
	// accumulators, the per-particle precomputations the folded passes
	// hoist out of the pair loop (volume elements, P/(Ω ρ²), Balsara
	// factors), and the per-pair kernel values W/DW at both endpoints that
	// the fused XMass sweep evaluates once per step for every downstream
	// pass (symCacheOK) along with the gradh sums it accumulates on the
	// side (symDsumOK). Both flags drop when the pair list is refolded.
	scat                  par.Scatter
	symV, symPrho, symF   []float64
	symWa, symWb          []float64
	symDwa, symDwb        []float64
	symDsum               []float64
	symCacheOK, symDsumOK bool
	kern32, kern32base    kernel.Kernel // cached Float32Eval quantization
}

// NeighborStats breaks down FindNeighbors activity since the state was
// created: how many steps rebuilt the Verlet-skin candidate list versus
// refreshing the cached pairs, and what triggered each rebuild. With skin
// reuse disabled every step counts as an init rebuild.
type NeighborStats struct {
	Rebuilds  int // candidate-list builds (sum of the cause counters)
	Refreshes int // steps served from the cached candidate list

	RebuildInit     int // no valid list: first step, post-reorder, mode switch
	RebuildCadence  int // Options.RebuildEvery interval expired
	RebuildDrift    int // accumulated drift could hide an unseen pair
	RebuildOverflow int // ngmax overflow during a refresh forced a rebuild

	// GatherSeconds/FilterSeconds split the rebuild cost of the cell-slab
	// path (Options.CellSlab): wall-clock spent in the candidate sweep
	// versus the candidate→list filter, cumulative over rebuild steps.
	// The walk-based build interleaves the two phases per particle, so
	// both stay zero outside slab mode.
	GatherSeconds float64
	FilterSeconds float64
}

// NewState creates a simulation state. The first Timestep call sets Dt
// purely from the CFL criterion; afterwards growth is bounded by
// MaxDtGrowth.
func NewState(p *Particles, opt Options) *State {
	return &State{P: p, Opt: opt}
}
