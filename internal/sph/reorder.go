package sph

import (
	"sort"

	"sphenergy/internal/par"
)

// ReorderBySFC re-sorts the particle arrays along the Morton space-filling
// curve of the simulation box. Spatially adjacent particles end up adjacent
// in memory, so the neighbor list's indexed gathers stay cache-local even
// after turbulent mixing has scrambled the initial lattice order. Ties (and
// the sort itself) break on the original index, making the permutation
// deterministic. Physics is order-independent up to floating-point
// summation order, which the equivalence tests bound.
func (s *State) ReorderBySFC() {
	p := s.P
	box := s.Opt.Box
	par.For(p.N, func(i int) {
		p.Keys[i] = box.KeyOf(p.X[i], p.Y[i], p.Z[i])
	})
	perm := make([]int, p.N)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ka, kb := p.Keys[perm[a]], p.Keys[perm[b]]
		if ka != kb {
			return ka < kb
		}
		return perm[a] < perm[b]
	})
	p.Reorder(perm)
	// Indices in any previously built neighbor structure are stale now.
	s.Grid = nil
	s.List = nil
}
