package sph_test

// Verlet-skin equivalence and restart tests: the skin path must match the
// every-step rebuild to tight tolerance on real problems, collapse to the
// legacy path bit-for-bit when disabled, and replay the same rebuild
// schedule across a checkpoint/restart.

import (
	"bytes"
	"math"
	"testing"

	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
)

// compareSkinToRebuild runs the same initial condition with the Verlet skin
// on and off and holds every physics field to tol.
func compareSkinToRebuild(t *testing.T, mkState func() *sph.State, steps int, withGravity bool, tol float64) {
	t.Helper()

	skin := mkState()
	skin.Opt.ReorderEvery = 0
	if skin.Opt.Skin <= 0 {
		t.Fatal("skin not enabled by default; the comparison is vacuous")
	}
	ref := mkState()
	ref.Opt.ReorderEvery = 0
	ref.Opt.Skin = 0

	var potS, potR []float64
	if withGravity {
		potS = make([]float64, skin.P.N)
		potR = make([]float64, ref.P.N)
	}
	for s := 0; s < steps; s++ {
		stepManual(skin, withGravity, potS)
		stepManual(ref, withGravity, potR)
	}
	if skin.NbrStats.Refreshes == 0 {
		t.Fatalf("no refresh steps in %d steps (stats %+v); the skin path went untested", steps, skin.NbrStats)
	}
	if ref.NbrStats.Rebuilds != steps {
		t.Fatalf("reference rebuilt %d times over %d steps; expected the legacy every-step build", ref.NbrStats.Rebuilds, steps)
	}

	ps, pr := skin.P, ref.P
	for i := range ps.NC {
		if ps.NC[i] != pr.NC[i] {
			t.Fatalf("particle %d: neighbor count %d (skin) != %d (rebuild)", i, ps.NC[i], pr.NC[i])
		}
	}
	fields := []struct {
		name string
		a, b []float64
	}{
		{"rho", ps.Rho, pr.Rho},
		{"u", ps.U, pr.U},
		{"h", ps.H, pr.H},
		{"ax", ps.AX, pr.AX},
		{"ay", ps.AY, pr.AY},
		{"az", ps.AZ, pr.AZ},
		{"x", ps.X, pr.X},
		{"vx", ps.VX, pr.VX},
	}
	for _, f := range fields {
		if dev := maxRelDev(f.a, f.b); dev > tol {
			t.Errorf("%s deviates by %.3g (> %g) after %d steps", f.name, dev, tol, steps)
		}
	}
	if ref.Dt != 0 && math.Abs(skin.Dt-ref.Dt)/ref.Dt > tol {
		t.Errorf("dt deviates: skin %g rebuild %g", skin.Dt, ref.Dt)
	}
}

func TestSkinMatchesRebuildTurbulence(t *testing.T) {
	mk := func() *sph.State {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(10))
		opt.NgTarget = 32
		return sph.NewState(p, opt)
	}
	compareSkinToRebuild(t, mk, 6, false, 1e-9)
}

func TestSkinMatchesRebuildEvrard(t *testing.T) {
	mk := func() *sph.State {
		p, opt := initcond.Evrard(initcond.DefaultEvrard(10))
		opt.NgTarget = 32
		return sph.NewState(p, opt)
	}
	compareSkinToRebuild(t, mk, 4, true, 1e-9)
}

// TestSkinDisabledBitIdentical pins the opt-out contract: both Skin=0 and
// RebuildEvery=1 must take the literal legacy code path, producing
// byte-identical state — not merely state within tolerance.
func TestSkinDisabledBitIdentical(t *testing.T) {
	run := func(mutate func(*sph.Options)) *sph.State {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(8))
		opt.NgTarget = 32
		opt.ReorderEvery = 2
		mutate(&opt)
		st := sph.NewState(p, opt)
		for s := 0; s < 5; s++ {
			st.RunStep(nil)
		}
		return st
	}
	zero := run(func(o *sph.Options) { o.Skin = 0 })
	every := run(func(o *sph.Options) { o.RebuildEvery = 1 })

	pz, pe := zero.P, every.P
	fields := []struct {
		name string
		a, b []float64
	}{
		{"x", pz.X, pe.X}, {"y", pz.Y, pe.Y}, {"z", pz.Z, pe.Z},
		{"vx", pz.VX, pe.VX}, {"h", pz.H, pe.H},
		{"rho", pz.Rho, pe.Rho}, {"u", pz.U, pe.U}, {"ax", pz.AX, pe.AX},
	}
	for _, f := range fields {
		for i := range f.a {
			if f.a[i] != f.b[i] {
				t.Fatalf("%s[%d] differs between Skin=0 and RebuildEvery=1: %.17g vs %.17g",
					f.name, i, f.a[i], f.b[i])
			}
		}
	}
	for i := range pz.NC {
		if pz.NC[i] != pe.NC[i] {
			t.Fatalf("NC[%d] differs: %d vs %d", i, pz.NC[i], pe.NC[i])
		}
	}
	if zero.Dt != every.Dt {
		t.Fatalf("dt differs: %.17g vs %.17g", zero.Dt, every.Dt)
	}
	if zero.NbrStats.Refreshes != 0 || every.NbrStats.Refreshes != 0 {
		t.Fatal("disabled skin still served refreshes")
	}
}

// TestSkinCheckpointMidIntervalResume: a checkpoint taken between rebuilds
// must restart bit-identically — same particle state after every subsequent
// step and the same rebuild/refresh schedule, because the candidate list is
// regenerated from the checkpointed reference snapshot.
func TestSkinCheckpointMidIntervalResume(t *testing.T) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(8))
	opt.NgTarget = 32
	opt.ReorderEvery = 3

	orig := sph.NewState(p, opt)
	const pre, post = 5, 6
	for s := 0; s < pre; s++ {
		orig.RunStep(nil)
	}
	if orig.List == nil {
		t.Fatal("no neighbor list after warm-up")
	}
	if orig.List.BuildStep >= orig.Step {
		t.Fatalf("checkpoint is not mid-interval: BuildStep %d, Step %d — shrink ReorderEvery or steps",
			orig.List.BuildStep, orig.Step)
	}

	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := sph.ReadCheckpoint(&buf, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.List == nil || resumed.List.BuildStep != orig.List.BuildStep {
		t.Fatal("restored state lost the skin reference snapshot")
	}

	origBase, resumedBase := orig.NbrStats, resumed.NbrStats
	for s := 0; s < post; s++ {
		origPrev, resumedPrev := orig.NbrStats, resumed.NbrStats
		orig.RunStep(nil)
		resumed.RunStep(nil)
		or := orig.NbrStats.Rebuilds - origPrev.Rebuilds
		rr := resumed.NbrStats.Rebuilds - resumedPrev.Rebuilds
		if or != rr {
			t.Fatalf("step %d: original %s but resumed run did not follow (deltas %d vs %d)",
				orig.Step, map[bool]string{true: "rebuilt", false: "refreshed"}[or > 0], or, rr)
		}
		po, pr := orig.P, resumed.P
		for i := 0; i < po.N; i++ {
			if po.X[i] != pr.X[i] || po.VX[i] != pr.VX[i] || po.H[i] != pr.H[i] || po.NC[i] != pr.NC[i] {
				t.Fatalf("step %d: particle %d diverged after resume", orig.Step, i)
			}
		}
		if orig.Dt != resumed.Dt {
			t.Fatalf("step %d: dt diverged: %.17g vs %.17g", orig.Step, orig.Dt, resumed.Dt)
		}
	}
	dOrig := orig.NbrStats.Refreshes - origBase.Refreshes
	dRes := resumed.NbrStats.Refreshes - resumedBase.Refreshes
	if dOrig != dRes {
		t.Fatalf("refresh schedules diverged after resume: %d vs %d over %d steps", dOrig, dRes, post)
	}
	if dRes == 0 {
		t.Fatalf("resumed run never refreshed (stats %+v); the regenerated candidates went untested", resumed.NbrStats)
	}
}
