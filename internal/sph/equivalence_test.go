package sph_test

// Equivalence tests between the neighbor-list pipeline (the default) and
// the closure-walk pipeline (the pre-list reference implementation): both
// must produce the same physics over multi-step runs, and the tabulated
// kernel must track its analytic base within the documented error bound.

import (
	"math"
	"testing"

	"sphenergy/internal/gravity"
	"sphenergy/internal/initcond"
	"sphenergy/internal/kernel"
	"sphenergy/internal/sph"
)

// stepManual advances one full pipeline iteration, optionally coupling
// self-gravity the same way integration_test.go's Evrard run does.
func stepManual(st *sph.State, withGravity bool, pot []float64) {
	st.FindNeighbors()
	st.XMass()
	st.NormalizationGradh()
	st.EquationOfState()
	st.IADVelocityDivCurl()
	st.AVSwitches(st.Dt)
	st.MomentumEnergy()
	if withGravity {
		p := st.P
		tree := gravity.Build(p.X, p.Y, p.Z, p.M, st.Opt.GravTheta, st.Opt.GravEps, st.Opt.GravG)
		tree.AccelerationsInto(p.AX, p.AY, p.AZ, pot)
	}
	st.UpdateQuantities(st.Timestep())
}

// maxRelDev returns the maximum relative deviation between two fields,
// normalized by the largest magnitude in either (so near-zero entries
// compare absolutely against the field scale).
func maxRelDev(a, b []float64) float64 {
	scale := 0.0
	for i := range a {
		if v := math.Abs(a[i]); v > scale {
			scale = v
		}
		if v := math.Abs(b[i]); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		return 0
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i]-b[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

func comparePipelines(t *testing.T, mkState func() *sph.State, steps int, withGravity bool, tol float64) {
	t.Helper()

	walk := mkState()
	walk.Opt.ClosureWalk = true
	walk.Opt.ReorderEvery = 0
	list := mkState()
	list.Opt.ClosureWalk = false
	list.Opt.ReorderEvery = 0

	var potW, potL []float64
	if withGravity {
		potW = make([]float64, walk.P.N)
		potL = make([]float64, list.P.N)
	}
	for s := 0; s < steps; s++ {
		stepManual(walk, withGravity, potW)
		stepManual(list, withGravity, potL)
	}
	if list.List == nil {
		t.Fatal("list pipeline did not build a neighbor list")
	}
	if walk.List != nil {
		t.Fatal("walk pipeline unexpectedly built a neighbor list")
	}

	pw, pl := walk.P, list.P
	for i := range pw.NC {
		if pw.NC[i] != pl.NC[i] {
			t.Fatalf("particle %d: neighbor count %d (walk) != %d (list)", i, pw.NC[i], pl.NC[i])
		}
	}
	fields := []struct {
		name string
		a, b []float64
	}{
		{"rho", pw.Rho, pl.Rho},
		{"u", pw.U, pl.U},
		{"h", pw.H, pl.H},
		{"ax", pw.AX, pl.AX},
		{"ay", pw.AY, pl.AY},
		{"az", pw.AZ, pl.AZ},
		{"x", pw.X, pl.X},
		{"vx", pw.VX, pl.VX},
	}
	for _, f := range fields {
		if dev := maxRelDev(f.a, f.b); dev > tol {
			t.Errorf("%s deviates by %.3g (> %g) after %d steps", f.name, dev, tol, steps)
		}
	}
	if walk.Dt != 0 && math.Abs(walk.Dt-list.Dt)/walk.Dt > tol {
		t.Errorf("dt deviates: walk %g list %g", walk.Dt, list.Dt)
	}
}

// TestNeighborListMatchesWalkTurbulence checks the equivalence on the
// periodic subsonic-turbulence setup over several steps. The two pipelines
// integrate the same pair sets in near-identical floating-point order, so
// the tolerance is far below any physical scale.
func TestNeighborListMatchesWalkTurbulence(t *testing.T) {
	mk := func() *sph.State {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(10))
		opt.NgTarget = 32
		return sph.NewState(p, opt)
	}
	comparePipelines(t, mk, 4, false, 1e-9)
}

// TestNeighborListMatchesWalkEvrard checks the equivalence on the
// non-periodic, gravity-coupled Evrard collapse, which has strong
// smoothing-length contrasts and therefore exercises the asymmetric-pair
// (Ext) segments of the list.
func TestNeighborListMatchesWalkEvrard(t *testing.T) {
	mk := func() *sph.State {
		p, opt := initcond.Evrard(initcond.DefaultEvrard(10))
		opt.NgTarget = 32
		return sph.NewState(p, opt)
	}
	comparePipelines(t, mk, 3, true, 1e-9)
}

// TestNgmaxOverflowTruncates pins the ngmax contract: with a cap far below
// the actual neighbor count, FindNeighbors must truncate every list at the
// cap, report the overflow, and leave the pipeline runnable.
func TestNgmaxOverflowTruncates(t *testing.T) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(8))
	opt.NgTarget = 32
	opt.NgMax = 8
	st := sph.NewState(p, opt)
	st.FindNeighbors()
	if st.List == nil {
		t.Fatal("no neighbor list built")
	}
	if st.List.Ngmax != 8 {
		t.Fatalf("Ngmax = %d, want 8", st.List.Ngmax)
	}
	if st.List.Overflow == 0 {
		t.Fatal("expected overflow with NgMax=8 and ~32 real neighbors")
	}
	for i := 0; i < p.N; i++ {
		if c := st.List.Count(i); c > 8 {
			t.Fatalf("particle %d holds %d neighbors, cap is 8", i, c)
		}
	}
	st.XMass()
	st.NormalizationGradh()
	st.EquationOfState()
	for i := 0; i < p.N; i++ {
		if math.IsNaN(st.P.Rho[i]) || st.P.Rho[i] <= 0 {
			t.Fatalf("particle %d: bad density %g after truncated list", i, st.P.Rho[i])
		}
	}
	// The default cap must be generous enough that the same setup does not
	// overflow at all.
	p2, opt2 := initcond.Turbulence(initcond.DefaultTurbulence(8))
	opt2.NgTarget = 32
	st2 := sph.NewState(p2, opt2)
	st2.FindNeighbors()
	if st2.List.Overflow != 0 {
		t.Fatalf("default ngmax (%d) overflowed on a plain lattice: %d particles",
			st2.List.Ngmax, st2.List.Overflow)
	}
}

// TestTabulatedKernelPipelineWithinBound bounds the density deviation
// between the analytic Wendland C2 kernel and its checked table at the
// default resolution: per-evaluation error is within kernel.TableRelTol of
// the kernel peak, so the summed density must stay within a small multiple
// of it.
func TestTabulatedKernelPipelineWithinBound(t *testing.T) {
	mk := func(k kernel.Kernel) *sph.State {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(8))
		opt.NgTarget = 32
		opt.Kernel = k
		st := sph.NewState(p, opt)
		st.FindNeighbors()
		st.XMass()
		return st
	}
	exact := mk(kernel.WendlandC2{})
	table := mk(kernel.NewCheckedTable(kernel.WendlandC2{}, kernel.DefaultTablePoints))
	dev := maxRelDev(exact.P.Rho, table.P.Rho)
	// ~40x the per-evaluation bound accounts for summation over the
	// neighbor set; measured deviation is well under this.
	limit := 40 * kernel.TableRelTol
	if dev > limit {
		t.Errorf("tabulated-kernel density deviates by %.3g (> %.3g)", dev, limit)
	}
	if dev == 0 {
		t.Error("analytic and tabulated kernels agree exactly; table accuracy test is vacuous")
	}
}

// TestRunStepSFCReorderKeepsPhysics runs with an aggressive reorder cadence
// and checks the reordering is transparent: the trajectory stays valid and
// deterministic, and global invariants (mass, momentum) survive the
// permutation.
func TestRunStepSFCReorderKeepsPhysics(t *testing.T) {
	run := func(reorderEvery int) (*sph.State, float64) {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(8))
		opt.NgTarget = 32
		opt.ReorderEvery = reorderEvery
		st := sph.NewState(p, opt)
		mass := 0.0
		for i := 0; i < p.N; i++ {
			mass += p.M[i]
		}
		for s := 0; s < 6; s++ {
			st.RunStep(nil)
		}
		return st, mass
	}
	a, massA := run(2) // reorders at steps 2 and 4
	b, _ := run(2)
	if err := a.P.Validate(); err != nil {
		t.Fatal(err)
	}
	massAfter := 0.0
	for i := 0; i < a.P.N; i++ {
		massAfter += a.P.M[i]
	}
	if math.Abs(massAfter-massA) > 1e-12*massA {
		t.Errorf("mass changed across reorder: %g -> %g", massA, massAfter)
	}
	// Determinism: identical runs stay bit-identical through reorders.
	for i := range a.P.X {
		if a.P.X[i] != b.P.X[i] || a.P.U[i] != b.P.U[i] {
			t.Fatalf("reordered trajectory is not deterministic at particle %d", i)
		}
	}
	// The physics must match a no-reorder run to floating-point-reordering
	// tolerance (the permutation only changes summation order).
	c, _ := run(0)
	eA := a.ComputeEnergies(nil)
	eC := c.ComputeEnergies(nil)
	if rel := math.Abs(eA.Total()-eC.Total()) / math.Abs(eC.Total()); rel > 1e-9 {
		t.Errorf("reordered run total energy deviates by %.3g", rel)
	}
}

// TestReorderBySFCSortsKeys checks the particles really are in Morton order
// after an explicit reorder and that stale neighbor structures are dropped.
func TestReorderBySFCSortsKeys(t *testing.T) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(8))
	st := sph.NewState(p, opt)
	st.RunStep(nil)
	st.ReorderBySFC()
	if st.Grid != nil || st.List != nil {
		t.Error("reorder must invalidate the neighbor structures")
	}
	for i := 1; i < p.N; i++ {
		if p.Keys[i-1] > p.Keys[i] {
			t.Fatalf("keys not sorted at %d: %v > %v", i, p.Keys[i-1], p.Keys[i])
		}
	}
	// Pipeline must come back cleanly from the permuted state.
	st.RunStep(nil)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
