package sph

import (
	"math"

	"sphenergy/internal/neighbors"
	"sphenergy/internal/par"
)

// FindNeighbors rebuilds the neighbor grid for the current particle
// positions and records per-particle neighbor counts. It also adapts
// smoothing lengths toward the target neighbor count using the standard
// n^(1/3) update, which converges in a few steps for smooth distributions.
func (s *State) FindNeighbors() {
	p := s.P
	maxH := p.MaxH()
	s.Grid = BuildGridFor(s)
	ng := float64(s.Opt.NgTarget)
	par.For(p.N, func(i int) {
		n := s.Grid.CountNeighbors(i, 2*p.H[i])
		p.NC[i] = int32(n)
		// Smoothing-length update: h <- h/2 * (1 + (Ng/(n+1))^(1/3)).
		c := math.Cbrt(ng / float64(n+1))
		h := 0.5 * p.H[i] * (1 + c)
		// Clamp the change to keep the grid valid for this step.
		if h > 1.3*p.H[i] {
			h = 1.3 * p.H[i]
		}
		if h < 0.7*p.H[i] {
			h = 0.7 * p.H[i]
		}
		if h > maxH*1.3 {
			h = maxH * 1.3
		}
		p.H[i] = h
	})
	s.MaxH = p.MaxH()
}

// BuildGridFor constructs the neighbor search structure sized for the
// current maximum interaction radius, honoring the configured backend.
func BuildGridFor(s *State) neighbors.Searcher {
	p := s.P
	if s.Opt.TreeSearch {
		bucket := s.Opt.TreeBucketSize
		if bucket <= 0 {
			bucket = 64
		}
		return neighbors.BuildTree(s.Opt.Box, p.X, p.Y, p.Z, bucket)
	}
	maxH := p.MaxH()
	radius := 2 * maxH * 1.3 // allow for the in-step h growth clamp
	if radius <= 0 {
		radius = s.Opt.Box.MinExtent() / 4
	}
	return neighbors.BuildGrid(s.Opt.Box, p.X, p.Y, p.Z, radius)
}

// XMass computes the generalized volume-element normalization
// kx_i = sum_j x_j W_ij(h_i) (including the self contribution), where
// x_i = m_i for standard SPH (VEExponent = 0). The density estimate is
// rho_i = kx_i * m_i / x_i.
//
// This is the first of the two density-like passes of SPH-EXA's pipeline
// ("computeXMass" in the original framework).
func (s *State) XMass() {
	p := s.P
	k := s.Opt.Kernel
	// Volume element mass: with exponent p>0 this uses the previous step's
	// density, which is the standard VE iteration.
	par.For(p.N, func(i int) {
		xm := p.M[i]
		if s.Opt.VEExponent > 0 && p.Rho[i] > 0 {
			xm = p.M[i] * math.Pow(p.M[i]/p.Rho[i], s.Opt.VEExponent)
		}
		p.XM[i] = xm
	})
	par.For(p.N, func(i int) {
		hi := p.H[i]
		sum := p.XM[i] * k.W(0, hi)
		s.Grid.ForEachNeighbor(i, 2*hi, func(j int, _, _, _, dist float64) {
			sum += p.XM[j] * k.W(dist, hi)
		})
		p.Kx[i] = sum
		p.Rho[i] = sum * p.M[i] / p.XM[i]
	})
}

// NormalizationGradh computes the gradh (Omega) correction factors
// Omega_i = 1 + (h_i / (3 kx_i)) * sum_j x_j dW/dh_ij, which appear in the
// momentum and energy equations of the variable-smoothing-length
// formulation. ("computeVeDefGradh" in SPH-EXA.)
func (s *State) NormalizationGradh() {
	p := s.P
	k := s.Opt.Kernel
	par.For(p.N, func(i int) {
		hi := p.H[i]
		// dW/dh = -(3 W + q dW/dq)/h = -(3 W(r,h) + (r/h) * h*DW(r,h))/h.
		dsum := -3 * p.XM[i] * k.W(0, hi) / hi
		s.Grid.ForEachNeighbor(i, 2*hi, func(j int, _, _, _, dist float64) {
			w := k.W(dist, hi)
			dw := k.DW(dist, hi)
			dwdh := -(3*w + dist*dw) / hi
			dsum += p.XM[j] * dwdh
		})
		omega := 1 + hi/(3*p.Kx[i])*dsum
		// Guard against pathological configurations.
		if omega < 0.2 || math.IsNaN(omega) {
			omega = 0.2
		}
		p.Gradh[i] = omega
	})
}

// EquationOfState evaluates pressure and sound speed from density and
// internal energy for every particle.
func (s *State) EquationOfState() {
	p := s.P
	eos := s.Opt.EOS
	par.For(p.N, func(i int) {
		p.P[i], p.C[i] = eos.PressureSoundSpeed(p.Rho[i], p.U[i])
	})
}

// UpdateQuantities advances positions, velocities and internal energy by one
// timestep using a kick-drift scheme with the freshly computed accelerations
// and du/dt, then wraps positions into the (possibly periodic) box.
// ("UpdateQuantities" in SPH-EXA's main loop.)
func (s *State) UpdateQuantities(dt float64) {
	p := s.P
	box := s.Opt.Box
	par.For(p.N, func(i int) {
		p.VX[i] += p.AX[i] * dt
		p.VY[i] += p.AY[i] * dt
		p.VZ[i] += p.AZ[i] * dt
		p.X[i] += p.VX[i] * dt
		p.Y[i] += p.VY[i] * dt
		p.Z[i] += p.VZ[i] * dt
		p.X[i], p.Y[i], p.Z[i] = box.Wrap(p.X[i], p.Y[i], p.Z[i])
		p.U[i] += p.DU[i] * dt
		if p.U[i] < 1e-12 {
			p.U[i] = 1e-12
		}
	})
	s.Time += dt
	s.Step++
}
