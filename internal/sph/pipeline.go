package sph

import (
	"math"

	"sphenergy/internal/neighbors"
	"sphenergy/internal/par"
)

// FindNeighbors rebuilds the neighbor search structure for the current
// particle positions, adapts smoothing lengths toward the target neighbor
// count using the standard n^(1/3) update, and — in the default list mode —
// builds the persistent per-step NeighborList that the subsequent passes
// stream over. With Options.ClosureWalk set, only neighbor counts and
// smoothing lengths are updated and the passes re-traverse the grid.
func (s *State) FindNeighbors() {
	p := s.P
	maxH := p.MaxH()
	if s.Opt.ClosureWalk {
		s.Grid = s.buildGrid(maxH)
		s.List = nil
		s.countAndUpdateH(maxH)
		return
	}
	if !s.skinActive() {
		s.Grid = s.buildGrid(maxH)
		s.MaxH = s.buildNeighborList(maxH)
		s.NbrStats.Rebuilds++
		s.NbrStats.RebuildInit++
		s.neighborEvent("init")
		return
	}
	// Verlet-skin path: reuse the cached candidate list when it still
	// covers every support sphere, rebuild otherwise.
	nl := s.List
	if nl == nil || !nl.refsOK {
		s.rebuildWithSkin(maxH, &s.NbrStats.RebuildInit, "init")
		return
	}
	if !nl.candsOK {
		// Restored from checkpoint: regenerate the candidate CSR from the
		// persisted reference snapshot before deciding anything.
		s.regenCandidates()
	}
	if re := s.Opt.RebuildEvery; re > 0 && s.Step-nl.BuildStep >= re {
		s.rebuildWithSkin(maxH, &s.NbrStats.RebuildCadence, "cadence")
		return
	}
	if !s.skinValid(maxH) {
		s.rebuildWithSkin(maxH, &s.NbrStats.RebuildDrift, "drift")
		return
	}
	if newMax, ok := s.refreshSkin(maxH); ok {
		s.NbrStats.Refreshes++
		s.MaxH = newMax
		s.neighborEvent("refresh")
		return
	}
	s.rebuildWithSkin(maxH, &s.NbrStats.RebuildOverflow, "overflow")
}

// rebuildWithSkin runs a candidate rebuild and charges it to the given
// cause counter.
func (s *State) rebuildWithSkin(maxH float64, cause *int, kind string) {
	s.MaxH = s.rebuildSkin(maxH)
	s.NbrStats.Rebuilds++
	*cause++
	s.neighborEvent(kind)
}

// neighborEvent forwards a FindNeighbors outcome to the configured hook.
func (s *State) neighborEvent(kind string) {
	if s.Opt.NeighborEvent != nil {
		s.Opt.NeighborEvent(s.Step, kind)
	}
}

// countAndUpdateH is the closure-walk neighbor pass: count neighbors at the
// current support, apply the smoothing-length update, and fold the
// post-update maximum into the same parallel pass (previously a second
// full MaxH scan).
func (s *State) countAndUpdateH(maxH float64) {
	p := s.P
	ng := float64(s.Opt.NgTarget)
	s.MaxH = par.Reduce(p.N, func(lo, hi int) float64 {
		localMax := 0.0
		for i := lo; i < hi; i++ {
			n := s.Grid.CountNeighbors(i, 2*p.H[i])
			p.NC[i] = int32(n)
			h := updateH(p.H[i], n, ng, maxH)
			p.H[i] = h
			if h > localMax {
				localMax = h
			}
		}
		return localMax
	}, math.Max)
}

// buildGrid constructs the neighbor search structure for the given maximum
// smoothing length, honoring the configured backend.
func (s *State) buildGrid(maxH float64) neighbors.Searcher {
	p := s.P
	return s.buildSearcher(p.X, p.Y, p.Z, 2*maxH*hGrowthCap) // allow for the in-step h growth clamp
}

// buildSearcher constructs the neighbor search structure over the given
// coordinate slices, honoring the configured backend. The cell-grid backend
// reuses the state's grid buffers, so steady-state rebuilds allocate
// nothing.
func (s *State) buildSearcher(x, y, z []float64, radius float64) neighbors.Searcher {
	if s.Opt.TreeSearch {
		bucket := s.Opt.TreeBucketSize
		if bucket <= 0 {
			bucket = 64
		}
		return neighbors.BuildTree(s.Opt.Box, x, y, z, bucket)
	}
	if radius <= 0 {
		radius = s.Opt.Box.MinExtent() / 4
	}
	s.gridBuf = neighbors.BuildGridInto(s.gridBuf, s.Opt.Box, x, y, z, radius)
	return s.gridBuf
}

// BuildGridFor constructs the neighbor search structure sized for the
// current maximum interaction radius, honoring the configured backend.
func BuildGridFor(s *State) neighbors.Searcher {
	return s.buildGrid(s.P.MaxH())
}

// useList reports whether the passes should stream over the per-step
// neighbor list. Callers that set up Grid manually (without FindNeighbors)
// fall back to the closure walk.
func (s *State) useList() bool {
	return !s.Opt.ClosureWalk && s.List != nil && len(s.List.Offsets) == s.P.N+1
}

// XMass computes the generalized volume-element normalization
// kx_i = sum_j x_j W_ij(h_i) (including the self contribution), where
// x_i = m_i for standard SPH (VEExponent = 0). The density estimate is
// rho_i = kx_i * m_i / x_i.
//
// This is the first of the two density-like passes of SPH-EXA's pipeline
// ("computeXMass" in the original framework).
func (s *State) XMass() {
	p := s.P
	// Volume element mass: with exponent p>0 this uses the previous step's
	// density, which is the standard VE iteration.
	par.For(p.N, func(i int) {
		xm := p.M[i]
		if s.Opt.VEExponent > 0 && p.Rho[i] > 0 {
			xm = p.M[i] * math.Pow(p.M[i]/p.Rho[i], s.Opt.VEExponent)
		}
		p.XM[i] = xm
	})
	if s.useSym() {
		s.xmassSym()
	} else if s.useList() {
		s.xmassList()
	} else {
		s.xmassWalk()
	}
}

// NormalizationGradh computes the gradh (Omega) correction factors
// Omega_i = 1 + (h_i / (3 kx_i)) * sum_j x_j dW/dh_ij, which appear in the
// momentum and energy equations of the variable-smoothing-length
// formulation. ("computeVeDefGradh" in SPH-EXA.)
func (s *State) NormalizationGradh() {
	if s.useSym() {
		s.gradhSym()
	} else if s.useList() {
		s.gradhList()
	} else {
		s.gradhWalk()
	}
}

// EquationOfState evaluates pressure and sound speed from density and
// internal energy for every particle.
func (s *State) EquationOfState() {
	p := s.P
	eos := s.Opt.EOS
	par.For(p.N, func(i int) {
		p.P[i], p.C[i] = eos.PressureSoundSpeed(p.Rho[i], p.U[i])
	})
}

// UpdateQuantities advances positions, velocities and internal energy by one
// timestep using a kick-drift scheme with the freshly computed accelerations
// and du/dt, then wraps positions into the (possibly periodic) box.
// ("UpdateQuantities" in SPH-EXA's main loop.)
func (s *State) UpdateQuantities(dt float64) {
	p := s.P
	box := s.Opt.Box
	par.For(p.N, func(i int) {
		p.VX[i] += p.AX[i] * dt
		p.VY[i] += p.AY[i] * dt
		p.VZ[i] += p.AZ[i] * dt
		p.X[i] += p.VX[i] * dt
		p.Y[i] += p.VY[i] * dt
		p.Z[i] += p.VZ[i] * dt
		p.X[i], p.Y[i], p.Z[i] = box.Wrap(p.X[i], p.Y[i], p.Z[i])
		p.U[i] += p.DU[i] * dt
		if p.U[i] < 1e-12 {
			p.U[i] = 1e-12
		}
	})
	s.Time += dt
	s.Step++
}
