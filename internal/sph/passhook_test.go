package sph

import "testing"

func TestRunStepPassHooks(t *testing.T) {
	s := latticeState(6, t)
	var hooked []string
	total := 0.0
	s.Opt.PassHook = func(pass string, seconds float64) {
		hooked = append(hooked, pass)
		if seconds < 0 {
			t.Errorf("pass %s has negative duration %g", pass, seconds)
		}
		total += seconds
	}
	wrapped := map[string]int{}
	s.Opt.WrapPass = func(pass string, run func()) {
		wrapped[pass]++
		run()
	}
	s.RunStep(nil)
	if len(hooked) != len(PassNames) {
		t.Fatalf("hooked %d passes %v, want %d", len(hooked), hooked, len(PassNames))
	}
	for i, want := range PassNames {
		if hooked[i] != want {
			t.Errorf("pass %d = %q, want %q", i, hooked[i], want)
		}
		if wrapped[want] != 1 {
			t.Errorf("pass %q wrapped %d times, want 1", want, wrapped[want])
		}
	}
	if total <= 0 {
		t.Error("pass durations sum to zero")
	}
}

func TestRunStepHooksDoNotPerturb(t *testing.T) {
	a := latticeState(6, t)
	b := latticeState(6, t)
	b.Opt.PassHook = func(string, float64) {}
	b.Opt.WrapPass = func(_ string, run func()) { run() }
	for i := 0; i < 3; i++ {
		da := a.RunStep(nil)
		db := b.RunStep(nil)
		if da != db {
			t.Fatalf("step %d: dt diverged with hooks: %g vs %g", i, da, db)
		}
	}
	for i := range a.P.U {
		if a.P.U[i] != b.P.U[i] {
			t.Fatalf("internal energy diverged at particle %d", i)
		}
	}
}
