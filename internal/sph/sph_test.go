package sph

import (
	"math"
	"testing"

	"sphenergy/internal/kernel"
	"sphenergy/internal/sfc"
)

// latticeState builds a uniform periodic lattice of n³ unit-density
// particles ready for pipeline calls.
func latticeState(n int, t *testing.T) *State {
	t.Helper()
	box := sfc.NewPeriodicCube(0, 1)
	N := n * n * n
	p := NewParticles(N)
	d := 1.0 / float64(n)
	idx := 0
	for iz := 0; iz < n; iz++ {
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				p.X[idx] = (float64(ix) + 0.5) * d
				p.Y[idx] = (float64(iy) + 0.5) * d
				p.Z[idx] = (float64(iz) + 0.5) * d
				idx++
			}
		}
	}
	h0 := 1.2 * math.Cbrt(3.0/(4*math.Pi)*32) / (2 * float64(n))
	for i := 0; i < N; i++ {
		p.M[i] = 1.0 / float64(N)
		p.H[i] = h0
		p.U[i] = 1.0
		p.Alpha[i] = 0.1
		p.Rho[i] = 1
	}
	opt := DefaultOptions(box)
	opt.NgTarget = 32
	st := NewState(p, opt)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return st
}

// runDensityPipeline executes the pipeline up to the density-like passes.
func runDensityPipeline(st *State) {
	st.FindNeighbors()
	st.XMass()
	st.NormalizationGradh()
	st.EquationOfState()
}

func TestDensityOnUniformLattice(t *testing.T) {
	st := latticeState(10, t)
	runDensityPipeline(st)
	p := st.P
	for i := 0; i < p.N; i++ {
		if math.Abs(p.Rho[i]-1) > 0.08 {
			t.Fatalf("particle %d: density %v, want ~1", i, p.Rho[i])
		}
	}
}

func TestNeighborCountsNearTarget(t *testing.T) {
	st := latticeState(10, t)
	// A few smoothing-length iterations converge to the target count.
	for it := 0; it < 6; it++ {
		st.FindNeighbors()
	}
	p := st.P
	var sum float64
	for i := 0; i < p.N; i++ {
		sum += float64(p.NC[i])
	}
	avg := sum / float64(p.N)
	if avg < 20 || avg > 48 {
		t.Errorf("average neighbor count %v, want near 32", avg)
	}
}

func TestGradhNearOneOnUniformField(t *testing.T) {
	st := latticeState(10, t)
	runDensityPipeline(st)
	p := st.P
	for i := 0; i < p.N; i++ {
		if p.Gradh[i] < 0.5 || p.Gradh[i] > 1.5 {
			t.Fatalf("particle %d: gradh %v far from 1", i, p.Gradh[i])
		}
	}
}

func TestMomentumConservation(t *testing.T) {
	st := latticeState(8, t)
	// Jitter positions and perturb velocities so that real pressure and
	// viscosity forces arise.
	for i := 0; i < st.P.N; i++ {
		st.P.X[i] += 0.02 * math.Sin(7*float64(i))
		st.P.Y[i] += 0.02 * math.Cos(13*float64(i))
		st.P.X[i], st.P.Y[i], st.P.Z[i] = st.Opt.Box.Wrap(st.P.X[i], st.P.Y[i], st.P.Z[i])
		st.P.VX[i] = 0.1 * math.Sin(2*math.Pi*st.P.Y[i])
		st.P.VZ[i] = 0.05 * math.Cos(2*math.Pi*st.P.X[i])
		st.P.U[i] = 1 + 0.2*math.Sin(2*math.Pi*st.P.X[i])
	}
	runDensityPipeline(st)
	st.IADVelocityDivCurl()
	st.AVSwitches(1e-3)
	st.MomentumEnergy()
	p := st.P
	var fx, fy, fz, fscale float64
	for i := 0; i < p.N; i++ {
		fx += p.M[i] * p.AX[i]
		fy += p.M[i] * p.AY[i]
		fz += p.M[i] * p.AZ[i]
		fscale += p.M[i] * (math.Abs(p.AX[i]) + math.Abs(p.AY[i]) + math.Abs(p.AZ[i]))
	}
	if fscale == 0 {
		t.Skip("no forces generated")
	}
	for d, f := range map[string]float64{"x": fx, "y": fy, "z": fz} {
		if math.Abs(f)/fscale > 1e-3 {
			t.Errorf("net force in %s: %v (scale %v) — momentum not conserved", d, f, fscale)
		}
	}
}

func TestUniformFieldHasSmallDivergence(t *testing.T) {
	st := latticeState(8, t)
	for i := 0; i < st.P.N; i++ {
		st.P.VX[i], st.P.VY[i], st.P.VZ[i] = 0.5, -0.2, 0.1
	}
	runDensityPipeline(st)
	st.IADVelocityDivCurl()
	p := st.P
	for i := 0; i < p.N; i++ {
		if math.Abs(p.DivV[i]) > 0.05 {
			t.Fatalf("uniform flow: divv[%d] = %v, want ~0", i, p.DivV[i])
		}
		if p.CurlV[i] > 0.05 {
			t.Fatalf("uniform flow: curlv[%d] = %v, want ~0", i, p.CurlV[i])
		}
	}
}

func TestIADDetectsLinearDivergence(t *testing.T) {
	st := latticeState(8, t)
	// Hubble-like flow v = 0.3 (x - 0.5) has divv = 0.3 (periodic box
	// wrap-around pollutes edge particles; check interior ones).
	for i := 0; i < st.P.N; i++ {
		st.P.VX[i] = 0.3 * (st.P.X[i] - 0.5)
	}
	runDensityPipeline(st)
	st.IADVelocityDivCurl()
	p := st.P
	checked := 0
	for i := 0; i < p.N; i++ {
		if p.X[i] < 0.3 || p.X[i] > 0.7 {
			continue
		}
		checked++
		if math.Abs(p.DivV[i]-0.3) > 0.05 {
			t.Fatalf("interior particle %d: divv = %v, want 0.3", i, p.DivV[i])
		}
	}
	if checked == 0 {
		t.Fatal("no interior particles checked")
	}
}

func TestInvertSym3(t *testing.T) {
	// Invert a known SPD matrix and verify A * A^{-1} = I.
	xx, xy, xz, yy, yz, zz := 4.0, 1.0, 0.5, 3.0, 0.2, 5.0
	c11, c12, c13, c22, c23, c33, ok := invertSym3(xx, xy, xz, yy, yz, zz)
	if !ok {
		t.Fatal("SPD matrix reported singular")
	}
	// Row 1 of A times columns of C.
	i11 := xx*c11 + xy*c12 + xz*c13
	i12 := xx*c12 + xy*c22 + xz*c23
	i13 := xx*c13 + xy*c23 + xz*c33
	if math.Abs(i11-1) > 1e-12 || math.Abs(i12) > 1e-12 || math.Abs(i13) > 1e-12 {
		t.Errorf("A*Ainv row 1 = (%v, %v, %v)", i11, i12, i13)
	}
}

func TestInvertSym3Singular(t *testing.T) {
	if _, _, _, _, _, _, ok := invertSym3(1, 1, 1, 1, 1, 1); ok {
		t.Error("rank-1 matrix reported invertible")
	}
	if _, _, _, _, _, _, ok := invertSym3(0, 0, 0, 0, 0, 0); ok {
		t.Error("zero matrix reported invertible")
	}
}

func TestTimestepPositiveAndCFL(t *testing.T) {
	st := latticeState(8, t)
	runDensityPipeline(st)
	st.IADVelocityDivCurl()
	st.AVSwitches(1e-3)
	st.MomentumEnergy()
	dt := st.Timestep()
	if dt <= 0 {
		t.Fatalf("dt = %v", dt)
	}
	// dt must respect the sound-crossing bound for every particle.
	p := st.P
	for i := 0; i < p.N; i++ {
		bound := st.Opt.CFL * p.H[i] / (p.C[i] * (1 + 1.2*p.Alpha[i]))
		if dt > bound*1.0001 {
			t.Fatalf("dt %v exceeds CFL bound %v of particle %d", dt, bound, i)
		}
	}
}

func TestTimestepGrowthBounded(t *testing.T) {
	st := latticeState(6, t)
	runDensityPipeline(st)
	st.MomentumEnergy()
	first := st.Timestep()
	second := st.Timestep()
	if second > first*st.Opt.MaxDtGrowth*1.0001 {
		t.Errorf("dt grew from %v to %v, exceeding growth bound", first, second)
	}
}

func TestUpdateQuantitiesWrapsPositions(t *testing.T) {
	st := latticeState(4, t)
	p := st.P
	p.X[0] = 0.999
	p.VX[0] = 10 // will cross the boundary
	st.UpdateQuantities(0.01)
	if p.X[0] < 0 || p.X[0] >= 1 {
		t.Errorf("position not wrapped: %v", p.X[0])
	}
	if st.Step != 1 {
		t.Errorf("step counter = %d", st.Step)
	}
}

func TestInternalEnergyFloor(t *testing.T) {
	st := latticeState(4, t)
	p := st.P
	p.U[0] = 1e-13
	p.DU[0] = -1
	st.UpdateQuantities(0.1)
	if p.U[0] <= 0 {
		t.Errorf("internal energy went non-positive: %v", p.U[0])
	}
}

func TestAVSwitchesRiseOnCompressionDecayOtherwise(t *testing.T) {
	st := latticeState(6, t)
	runDensityPipeline(st)
	p := st.P
	// Compression on particle 0, quiescence on particle 1.
	p.DivV[0] = -10
	p.DivV[1] = 0
	p.Alpha[0], p.Alpha[1] = 0.3, 0.8
	st.AVSwitches(1e-3)
	if p.Alpha[0] <= 0.3 {
		t.Errorf("alpha did not rise under compression: %v", p.Alpha[0])
	}
	if p.Alpha[1] >= 0.8 {
		t.Errorf("alpha did not decay in quiescence: %v", p.Alpha[1])
	}
	if p.Alpha[0] > st.Opt.AlphaMax || p.Alpha[1] < st.Opt.AlphaMin {
		t.Error("alpha left its configured bounds")
	}
}

func TestReorderPermutesConsistently(t *testing.T) {
	st := latticeState(4, t)
	p := st.P
	x0, m0 := p.X[5], p.M[5]
	perm := make([]int, p.N)
	for i := range perm {
		perm[i] = (i + 5) % p.N
	}
	p.Reorder(perm)
	if p.X[0] != x0 || p.M[0] != m0 {
		t.Error("reorder did not move fields consistently")
	}
}

func TestValidateCatchesBadState(t *testing.T) {
	p := NewParticles(2)
	p.M[0], p.M[1] = 1, 1
	p.H[0], p.H[1] = 0.1, 0.1
	if err := p.Validate(); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	p.H[1] = 0
	if p.Validate() == nil {
		t.Error("zero smoothing length accepted")
	}
	p.H[1] = 0.1
	p.M[0] = -1
	if p.Validate() == nil {
		t.Error("negative mass accepted")
	}
	p.M[0] = 1
	p.X[0] = math.NaN()
	if p.Validate() == nil {
		t.Error("NaN position accepted")
	}
}

func TestEnergiesAccounting(t *testing.T) {
	st := latticeState(4, t)
	p := st.P
	for i := 0; i < p.N; i++ {
		p.VX[i] = 2
	}
	e := st.ComputeEnergies(nil)
	if math.Abs(e.Mass-1) > 1e-12 {
		t.Errorf("total mass %v", e.Mass)
	}
	if math.Abs(e.Kinetic-0.5*1*4) > 1e-12 {
		t.Errorf("kinetic %v, want 2", e.Kinetic)
	}
	if math.Abs(e.MomX-2) > 1e-12 {
		t.Errorf("momentum %v, want 2", e.MomX)
	}
	if math.Abs(e.Internal-1) > 1e-12 {
		t.Errorf("internal %v, want 1", e.Internal)
	}
}

func TestMachRMS(t *testing.T) {
	st := latticeState(4, t)
	p := st.P
	runDensityPipeline(st) // sets sound speed
	for i := 0; i < p.N; i++ {
		p.VX[i] = 0.3 * p.C[i]
	}
	m := st.MachRMS()
	if math.Abs(m-0.3) > 1e-6 {
		t.Errorf("MachRMS = %v, want 0.3", m)
	}
}

func TestVolumeElementsExponent(t *testing.T) {
	st := latticeState(6, t)
	st.Opt.VEExponent = 0.5
	st.Opt.Kernel = kernel.NewTable(kernel.WendlandC2{}, 2000)
	runDensityPipeline(st)
	p := st.P
	for i := 0; i < p.N; i++ {
		if p.XM[i] <= 0 {
			t.Fatalf("volume element mass %v", p.XM[i])
		}
		if math.Abs(p.Rho[i]-1) > 0.15 {
			t.Fatalf("VE density %v far from 1", p.Rho[i])
		}
	}
}

func TestTreeSearchBackendMatchesGrid(t *testing.T) {
	// The full density pipeline produces identical results under both
	// neighbor-search backends.
	gridState := latticeState(8, t)
	runDensityPipeline(gridState)

	treeState := latticeState(8, t)
	treeState.Opt.TreeSearch = true
	runDensityPipeline(treeState)

	for i := 0; i < gridState.P.N; i++ {
		if math.Abs(gridState.P.Rho[i]-treeState.P.Rho[i]) > 1e-12 {
			t.Fatalf("particle %d: grid rho %v != tree rho %v",
				i, gridState.P.Rho[i], treeState.P.Rho[i])
		}
		if gridState.P.NC[i] != treeState.P.NC[i] {
			t.Fatalf("particle %d: neighbor counts differ (%d vs %d)",
				i, gridState.P.NC[i], treeState.P.NC[i])
		}
	}
}

func TestStepHelperMatchesManualPipeline(t *testing.T) {
	manual := latticeState(6, t)
	helper := latticeState(6, t)
	for i := 0; i < 3; i++ {
		manual.FindNeighbors()
		manual.XMass()
		manual.NormalizationGradh()
		manual.EquationOfState()
		manual.IADVelocityDivCurl()
		manual.AVSwitches(manual.Dt)
		manual.MomentumEnergy()
		manual.UpdateQuantities(manual.Timestep())

		helper.RunStep(nil)
	}
	if manual.Time != helper.Time || manual.Step != helper.Step {
		t.Errorf("clocks diverged: %v/%d vs %v/%d", manual.Time, manual.Step, helper.Time, helper.Step)
	}
	for i := 0; i < manual.P.N; i++ {
		if manual.P.X[i] != helper.P.X[i] || manual.P.U[i] != helper.P.U[i] {
			t.Fatalf("particle %d diverged between manual pipeline and Step", i)
		}
	}
}

func TestStepExtraAccel(t *testing.T) {
	st := latticeState(4, t)
	called := false
	st.RunStep(func(p *Particles) {
		called = true
		for i := 0; i < p.N; i++ {
			p.AX[i] += 1 // uniform push
		}
	})
	if !called {
		t.Fatal("extraAccel not invoked")
	}
	var vx float64
	for i := 0; i < st.P.N; i++ {
		vx += st.P.VX[i]
	}
	if vx <= 0 {
		t.Error("extra acceleration did not reach the integrator")
	}
}
