package sph

import (
	"math"
	"sort"
	"sync"

	"sphenergy/internal/neighbors"
	"sphenergy/internal/par"
)

// Verlet-skin neighbor-list reuse. The candidate list is built once at the
// inflated cutoff (1+Skin)·2·hGrowthCap·h and reused across steps: between
// rebuilds a streaming refresh recomputes the cached pairs' displacements
// and re-filters them by the current cutoff, producing a NeighborList
// bit-identical to what a fresh gather over the same pair set would have
// built. A rebuild is forced when accumulated drift could let an unseen
// pair enter some support sphere (skinValid), when the RebuildEvery cadence
// expires, when a refresh overflows ngmax, or when an SFC reorder has
// invalidated the indices.

// skinActive reports whether FindNeighbors runs the Verlet-skin path.
// Skin=0 and RebuildEvery=1 both select the legacy rebuild-every-step list
// build, byte for byte.
func (s *State) skinActive() bool {
	return s.Opt.Skin > 0 && s.Opt.RebuildEvery != 1 && !s.Opt.ClosureWalk
}

// skinValid reports whether the cached candidate list still covers every
// support sphere at the current positions. Particle i's candidates were
// gathered out to R_i = (1+Skin)·2·hGrowthCap·RefH_i around its reference
// position; this step's gather needs every j within B_i = 2·hGrowthCap·h_i
// of the current position. Writing d_i for i's minimum-image drift from its
// reference, a pair now within B_i satisfied |ref_i - ref_j| <= B_i + d_i +
// d_j at build time, so the cache is complete while
//
//	max_i (d_i + B_i - R_i) + max_j d_j <= 0
//
// evaluated here with a small negative slack absorbing the rounding of the
// drift computation. Smoothing-length growth beyond (1+Skin)·RefH_i makes
// B_i - R_i positive and forces a rebuild through the same expression.
func (s *State) skinValid(maxH float64) bool {
	p := s.P
	nl := s.List
	box := s.Opt.Box
	lx, ly, lz := box.Lx(), box.Ly(), box.Lz()
	pbx, pby, pbz := box.PBCx, box.PBCy, box.PBCz
	sk := 1 + s.Opt.Skin

	var mu sync.Mutex
	maxDrift, maxExcess := math.Inf(-1), math.Inf(-1)
	par.ForChunked(p.N, func(lo, hi int) {
		localDrift, localExcess := math.Inf(-1), math.Inf(-1)
		for i := lo; i < hi; i++ {
			dx := neighbors.MinImage(p.X[i]-nl.RefX[i], lx, pbx)
			dy := neighbors.MinImage(p.Y[i]-nl.RefY[i], ly, pby)
			dz := neighbors.MinImage(p.Z[i]-nl.RefZ[i], lz, pbz)
			d := math.Sqrt(dx*dx + dy*dy + dz*dz)
			if d > localDrift {
				localDrift = d
			}
			// B_i - R_i = 2·hGrowthCap·(h_i - (1+Skin)·RefH_i)
			if e := d + 2*hGrowthCap*(p.H[i]-sk*nl.RefH[i]); e > localExcess {
				localExcess = e
			}
		}
		mu.Lock()
		if localDrift > maxDrift {
			maxDrift = localDrift
		}
		if localExcess > maxExcess {
			maxExcess = localExcess
		}
		mu.Unlock()
	})
	return maxExcess+maxDrift <= -1e-12*(2*hGrowthCap*maxH)
}

// rebuildSkin builds the neighbor list and the inflated candidate cache in
// one grid traversal: the gather runs out to (1+Skin)·2·hGrowthCap·h_old,
// every gathered pair is recorded as a candidate, and the subset within the
// un-inflated 2·hGrowthCap·h_old feeds the exact count/update/filter
// sequence of the every-step build. Returns the post-update maximum
// smoothing length.
func (s *State) rebuildSkin(maxH float64) float64 {
	p := s.P
	n := p.N
	if s.List == nil {
		s.List = &NeighborList{}
	}
	nl := s.List
	nl.Ngmax = s.Opt.ngmax()
	ng := float64(s.Opt.NgTarget)
	sk := 1 + s.Opt.Skin

	// Snapshot the reference state before the smoothing-length update; the
	// candidate list is a pure function of this snapshot (and the box), so
	// checkpoints persist only the snapshot.
	nl.RefX = ensureF64(nl.RefX, n)
	nl.RefY = ensureF64(nl.RefY, n)
	nl.RefZ = ensureF64(nl.RefZ, n)
	nl.RefH = ensureF64(nl.RefH, n)
	copy(nl.RefX, p.X)
	copy(nl.RefY, p.Y)
	copy(nl.RefZ, p.Z)
	copy(nl.RefH, p.H)

	s.Grid = s.buildSearcher(p.X, p.Y, p.Z, sk*(2*maxH*hGrowthCap))

	if s.Opt.CellSlab {
		if newMax, ok := s.rebuildSkinSlab(maxH); ok {
			nl.BuildStep = s.Step
			nl.refsOK, nl.candsOK = true, true
			s.buildDerived()
			return newMax
		}
	}

	var mu sync.Mutex
	chunks := make([]*listChunk, 0, par.MaxWorkers())
	newMax := par.Reduce(n, func(lo, hi int) float64 {
		cb := listChunkPool.Get().(*listChunk)
		cb.reset(lo)
		localMax := 0.0
		for i := lo; i < hi; i++ {
			hOld := p.H[i]
			start := len(cb.idx)
			candStart := len(cb.cand)
			bound := 2 * hGrowthCap * hOld
			s.Grid.ForEachNeighbor(i, sk*bound, func(j int, dx, dy, dz, dist float64) {
				cb.cand = append(cb.cand, int32(j))
				if dist < bound {
					cb.idx = append(cb.idx, int32(j))
					cb.dx = append(cb.dx, dx)
					cb.dy = append(cb.dy, dy)
					cb.dz = append(cb.dz, dz)
					cb.dist = append(cb.dist, dist)
				}
			})
			cb.candCounts = append(cb.candCounts, int32(len(cb.cand)-candStart))
			if h := finishParticle(p, cb, i, start, nl.Ngmax, hOld, ng, maxH); h > localMax {
				localMax = h
			}
		}
		mu.Lock()
		chunks = append(chunks, cb)
		mu.Unlock()
		return localMax
	}, math.Max)

	nl.mergeChunks(chunks, n, true)
	nl.BuildStep = s.Step
	nl.refsOK, nl.candsOK = true, true
	s.buildDerived()
	return newMax
}

// refreshSkin re-derives the step's neighbor list from the cached candidate
// pairs: displacements are recomputed with the grid's minimum-image
// arithmetic, pairs are re-admitted by the same r² bound the grid gather
// uses, and the shared count/update/filter sequence finishes each particle.
// Returns (maxH', true) on success. If any particle overflows ngmax the
// pass restores H and NC and returns false so the caller falls back to a
// full rebuild — the skin gather sees pairs the capped candidate segment
// may not hold, so truncation semantics are only honest on a build step.
func (s *State) refreshSkin(maxH float64) (float64, bool) {
	p := s.P
	n := p.N
	nl := s.List
	ng := float64(s.Opt.NgTarget)
	geo := s.geom()
	px, py, pz := p.X, p.Y, p.Z
	candOff, candIdx := nl.CandOffsets, nl.CandIdx

	// Back up the fields the finishing pass mutates so an overflow can
	// abort into a rebuild without double-applying the h update.
	s.hBackup = ensureF64(s.hBackup, n)
	s.ncBackup = ensureInt32(s.ncBackup, n)
	copy(s.hBackup, p.H)
	copy(s.ncBackup, p.NC)

	var mu sync.Mutex
	chunks := make([]*listChunk, 0, par.MaxWorkers())
	newMax := par.Reduce(n, func(lo, hi int) float64 {
		cb := listChunkPool.Get().(*listChunk)
		cb.reset(lo)
		blk := candBlockPool.Get().(*candBlock)
		localMax := 0.0
		for i := lo; i < hi; i++ {
			hOld := p.H[i]
			start := len(cb.idx)
			bound := 2 * hGrowthCap * hOld
			b2 := bound * bound
			// Blocked re-filter: the candidate segment streams through the
			// dense distance kernel (computeRow inlines the minimum-image
			// fold term for term the arithmetic of neighbors.MinImage, so
			// refreshed displacements stay bit-identical to a fresh grid
			// gather over the same pairs), then compare-and-compact admits
			// the survivors by the same r² bound the grid gather uses.
			cand := candIdx[candOff[i]:candOff[i+1]]
			blk.computeRow(px, py, pz, px[i], py[i], pz[i], cand, geo)
			for k := range cand {
				r2 := blk.r2[k]
				if r2 >= b2 {
					continue
				}
				cb.idx = append(cb.idx, cand[k])
				cb.dx = append(cb.dx, blk.dx[k])
				cb.dy = append(cb.dy, blk.dy[k])
				cb.dz = append(cb.dz, blk.dz[k])
				cb.dist = append(cb.dist, math.Sqrt(r2))
			}
			if h := finishParticle(p, cb, i, start, nl.Ngmax, hOld, ng, maxH); h > localMax {
				localMax = h
			}
		}
		candBlockPool.Put(blk)
		mu.Lock()
		chunks = append(chunks, cb)
		mu.Unlock()
		return localMax
	}, math.Max)

	nl.mergeChunks(chunks, n, false)
	if nl.Overflow > 0 {
		copy(p.H, s.hBackup)
		copy(p.NC, s.ncBackup)
		return 0, false
	}
	s.buildDerived()
	return newMax, true
}

// regenCandidates rebuilds the candidate CSR from the checkpointed
// reference snapshot. The grid construction and gather are pure functions
// of the references, so the regenerated candidates are bit-identical to the
// ones the original build captured and a restarted run replays the same
// refresh/rebuild sequence.
func (s *State) regenCandidates() {
	nl := s.List
	n := s.P.N
	maxRefH := 0.0
	for i := 0; i < n; i++ {
		if nl.RefH[i] > maxRefH {
			maxRefH = nl.RefH[i]
		}
	}
	sk := 1 + s.Opt.Skin
	grid := s.buildSearcher(nl.RefX, nl.RefY, nl.RefZ, sk*(2*maxRefH*hGrowthCap))

	var mu sync.Mutex
	chunks := make([]*listChunk, 0, par.MaxWorkers())
	par.ForChunked(n, func(lo, hi int) {
		cb := listChunkPool.Get().(*listChunk)
		cb.reset(lo)
		for i := lo; i < hi; i++ {
			candStart := len(cb.cand)
			grid.ForEachNeighbor(i, sk*(2*hGrowthCap*nl.RefH[i]), func(j int, _, _, _, _ float64) {
				cb.cand = append(cb.cand, int32(j))
			})
			cb.candCounts = append(cb.candCounts, int32(len(cb.cand)-candStart))
		}
		mu.Lock()
		chunks = append(chunks, cb)
		mu.Unlock()
	})

	sort.Slice(chunks, func(a, b int) bool { return chunks[a].lo < chunks[b].lo })
	nl.CandOffsets = ensureInt32(nl.CandOffsets, n+1)
	off := int32(0)
	for _, cb := range chunks {
		for t, c := range cb.candCounts {
			nl.CandOffsets[cb.lo+t] = off
			off += c
		}
	}
	nl.CandOffsets[n] = off
	nl.CandIdx = ensureInt32(nl.CandIdx, int(off))
	for _, cb := range chunks {
		copy(nl.CandIdx[nl.CandOffsets[cb.lo]:], cb.cand)
		listChunkPool.Put(cb)
	}
	nl.candsOK = true
}

// rebuildDue mirrors FindNeighbors' rebuild decision without mutating
// anything: true when the next FindNeighbors will rebuild the candidate
// list anyway (or reuse is disabled entirely). RunStep keys the SFC reorder
// cadence to it so a reorder — which invalidates the cached indices — rides
// along with a step that was going to rebuild regardless.
func (s *State) rebuildDue() bool {
	if !s.skinActive() {
		return true
	}
	nl := s.List
	if nl == nil || !nl.refsOK {
		return true
	}
	if re := s.Opt.RebuildEvery; re > 0 && s.Step-nl.BuildStep >= re {
		return true
	}
	return !s.skinValid(s.P.MaxH())
}
