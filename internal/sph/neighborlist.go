package sph

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"sphenergy/internal/par"
)

// hGrowthCap bounds per-step smoothing-length growth (the 1.3 clamp of the
// h update). The neighbor grid and the candidate-gather radius are sized
// for it, so one traversal covers both the old-h neighbor count and the
// post-update support.
const hGrowthCap = 1.3

// NeighborList is the persistent per-step neighbor structure of the SPH
// pipeline, SPH-EXA style: FindNeighbors builds it in a single traversal of
// the search grid, and XMass, NormalizationGradh, IADVelocityDivCurl and
// MomentumEnergy stream over the flat slices instead of re-traversing the
// grid with a per-neighbor callback.
type NeighborList struct {
	// Offsets has length N+1; the neighbors of particle i — every j != i
	// with |x_i - x_j| < 2*h_i after the step's smoothing-length update —
	// occupy entries [Offsets[i], Offsets[i+1]) of Idx, Dx, Dy, Dz and
	// Dist. Dx/Dy/Dz hold the minimum-image displacement x_i - x_j, Dist
	// its norm. Entries appear in grid traversal order, which the CSR cell
	// grid makes deterministic.
	Offsets []int32
	Idx     []int32
	Dx      []float64
	Dy      []float64
	Dz      []float64
	Dist    []float64

	// Ext* is the asymmetric-support complement consumed by
	// MomentumEnergy: pairs with 2*h_i <= dist < 2*h_j, where j's kernel
	// support covers i but not vice versa. Layout mirrors the main list;
	// displacements are already expressed from i's side (x_i - x_j), and
	// each per-particle segment is sorted by neighbor index so the
	// momentum sum order is deterministic. Built by transposing the main
	// list, so arbitrary smoothing-length contrasts are covered without
	// widening any gather radius.
	ExtOffsets []int32
	ExtIdx     []int32
	ExtDx      []float64
	ExtDy      []float64
	ExtDz      []float64
	ExtDist    []float64

	// Ngmax is the per-particle capacity cap (SPH-EXA's ngmax); Overflow
	// counts how many particles had their neighbor set truncated at the
	// cap during the last build.
	Ngmax    int
	Overflow int

	// Verlet-skin candidate cache: CandOffsets/CandIdx hold, in the same
	// CSR layout as the main list, every particle within the inflated
	// radius (1+Skin)·2·1.3·refH_i of particle i at the positions the list
	// was last built from. Refresh steps recompute displacements for these
	// pairs only. RefX/RefY/RefZ/RefH snapshot the build-time positions and
	// (pre-update) smoothing lengths that drift is measured against, and
	// BuildStep the step the build ran on. The candidate arrays are a pure
	// function of the references, so checkpoints persist only the
	// references and restarts regenerate CandIdx bit-identically.
	CandOffsets []int32
	CandIdx     []int32
	RefX        []float64
	RefY        []float64
	RefZ        []float64
	RefH        []float64
	BuildStep   int

	// Pair* is the folded symmetric pair list (Options.SymmetricPairs):
	// every unordered interacting pair {a, b} appears exactly once, in the
	// segment [PairOffsets[a], PairOffsets[a+1]) of the endpoint a that
	// owns it — the smaller index when both directed edges exist, the only
	// endpoint whose support covers the pair otherwise. PairIdx holds the
	// other endpoint, PairDx/Dy/Dz the owner-side displacement
	// x_owner - x_other (copied from the owner's main segment, so the
	// arithmetic matches the asymmetric passes bit for bit), and PairBoth
	// is 1 when the reverse directed edge also exists in the main list.
	// Records inherit the owner's CSR order, so the scatter targets of
	// consecutive pairs stay cache-adjacent under SFC ordering. Built by
	// buildPairs; replaces the Ext transpose in symmetric mode.
	PairOffsets []int32
	PairIdx     []int32
	PairBoth    []uint8
	PairDx      []float64
	PairDy      []float64
	PairDz      []float64
	PairDist    []float64

	refsOK  bool // reference snapshot is valid
	candsOK bool // candidate CSR matches the reference snapshot
	pairsOK bool // folded pair list matches the current main list

	extCnt   []int32 // scratch: per-particle extras count, then fill cursor
	pairCnt  []int32 // scratch: per-owner folded pair count
	pairDisp []uint8 // scratch: per-edge pair disposition
}

// Count returns the stored neighbor count of particle i.
func (nl *NeighborList) Count(i int) int {
	return int(nl.Offsets[i+1] - nl.Offsets[i])
}

// listChunk is the worker-local gather buffer of one contiguous particle
// range; after the parallel gather the chunks are concatenated in range
// order, so the merged list is identical to a serial build.
type listChunk struct {
	lo       int
	counts   []int32
	idx      []int32
	dx       []float64
	dy       []float64
	dz       []float64
	dist     []float64
	overflow int

	// Skin builds additionally capture the inflated-radius candidate set.
	cand       []int32
	candCounts []int32
}

var listChunkPool = sync.Pool{New: func() interface{} { return new(listChunk) }}

// extend grows the chunk's list arrays to capacity n (contents preserved),
// letting a caller that knows a row's admission bound write through cursors
// instead of per-element appends.
func (cb *listChunk) extend(n int) {
	// The arrays grow through different paths (appends round capacity to
	// byte size classes, so int32 and float64 slices of equal length can
	// diverge in capacity); every one is checked, not just idx.
	if cap(cb.idx) >= n && cap(cb.dx) >= n && cap(cb.dy) >= n &&
		cap(cb.dz) >= n && cap(cb.dist) >= n {
		return
	}
	// Amortized geometric growth: extend is called once per row with a
	// monotonically growing bound, so exact-fit allocation would recopy the
	// accumulated prefix once per row — quadratic on a cold chunk.
	if c := 2*cap(cb.idx) + 64; n < c {
		n = c
	}
	idx := make([]int32, len(cb.idx), n)
	copy(idx, cb.idx)
	cb.idx = idx
	dx := make([]float64, len(cb.dx), n)
	copy(dx, cb.dx)
	cb.dx = dx
	dy := make([]float64, len(cb.dy), n)
	copy(dy, cb.dy)
	cb.dy = dy
	dz := make([]float64, len(cb.dz), n)
	copy(dz, cb.dz)
	cb.dz = dz
	dist := make([]float64, len(cb.dist), n)
	copy(dist, cb.dist)
	cb.dist = dist
}

func (cb *listChunk) reset(lo int) {
	cb.lo = lo
	cb.counts = cb.counts[:0]
	cb.idx = cb.idx[:0]
	cb.dx = cb.dx[:0]
	cb.dy = cb.dy[:0]
	cb.dz = cb.dz[:0]
	cb.dist = cb.dist[:0]
	cb.overflow = 0
	cb.cand = cb.cand[:0]
	cb.candCounts = cb.candCounts[:0]
}

func ensureInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func ensureF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func ensureU8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

// updateH applies the n^(1/3) smoothing-length iteration toward the target
// neighbor count, clamped to ±30% per step and bounded relative to the
// pre-update global maximum so the search grid stays valid for this step.
func updateH(h float64, n int, ng, maxH float64) float64 {
	c := math.Cbrt(ng / float64(n+1))
	nh := 0.5 * h * (1 + c)
	if nh > hGrowthCap*h {
		nh = hGrowthCap * h
	}
	if nh < 0.7*h {
		nh = 0.7 * h
	}
	if nh > maxH*hGrowthCap {
		nh = maxH * hGrowthCap
	}
	return nh
}

// buildNeighborList performs the per-step neighbor search in one traversal
// of the search structure: each particle's candidates are gathered out to
// the maximum post-update support 2*hGrowthCap*h_old, the old-h count
// drives the smoothing-length update (recorded in NC, matching the
// closure-walk pipeline), and the survivors within the new 2*h — capped at
// Ngmax — are compacted in place and merged into the CSR list. Returns the
// post-update maximum smoothing length, folded as a reduction so no extra
// O(n) scan is needed.
func (s *State) buildNeighborList(maxH float64) float64 {
	p := s.P
	n := p.N
	if s.List == nil {
		s.List = &NeighborList{}
	}
	nl := s.List
	nl.Ngmax = s.Opt.ngmax()
	ng := float64(s.Opt.NgTarget)

	if s.Opt.CellSlab {
		if newMax, ok := s.buildListSlab(maxH); ok {
			nl.refsOK, nl.candsOK = false, false
			s.buildDerived()
			return newMax
		}
	}

	var mu sync.Mutex
	chunks := make([]*listChunk, 0, par.MaxWorkers())
	newMax := par.Reduce(n, func(lo, hi int) float64 {
		cb := listChunkPool.Get().(*listChunk)
		cb.reset(lo)
		localMax := 0.0
		for i := lo; i < hi; i++ {
			hOld := p.H[i]
			start := len(cb.idx)
			s.Grid.ForEachNeighbor(i, 2*hGrowthCap*hOld, func(j int, dx, dy, dz, dist float64) {
				cb.idx = append(cb.idx, int32(j))
				cb.dx = append(cb.dx, dx)
				cb.dy = append(cb.dy, dy)
				cb.dz = append(cb.dz, dz)
				cb.dist = append(cb.dist, dist)
			})
			if h := finishParticle(p, cb, i, start, nl.Ngmax, hOld, ng, maxH); h > localMax {
				localMax = h
			}
		}
		mu.Lock()
		chunks = append(chunks, cb)
		mu.Unlock()
		return localMax
	}, math.Max)

	nl.mergeChunks(chunks, n, false)
	nl.refsOK, nl.candsOK = false, false
	s.buildDerived()
	return newMax
}

// finishParticle turns particle i's gathered entries — chunk positions
// [start, len) — into its final neighbor segment: the old-h count drives the
// smoothing-length update (recorded in NC, matching the closure-walk
// pipeline), and the survivors within the new 2*h — capped at ngmax — are
// compacted in place. Returns the updated smoothing length. Shared verbatim
// by the every-step build, the skin rebuild and the skin refresh so all
// three produce bit-identical lists from the same gathered pairs.
func finishParticle(p *Particles, cb *listChunk, i, start, ngmax int, hOld, ng, maxH float64) float64 {
	cnt := 0
	for k := start; k < len(cb.dist); k++ {
		if cb.dist[k] < 2*hOld {
			cnt++
		}
	}
	p.NC[i] = int32(cnt)
	h := updateH(hOld, cnt, ng, maxH)
	p.H[i] = h
	r := 2 * h
	w := start
	for k := start; k < len(cb.idx); k++ {
		if cb.dist[k] >= r {
			continue
		}
		if w-start >= ngmax {
			cb.overflow++
			break
		}
		cb.idx[w] = cb.idx[k]
		cb.dx[w] = cb.dx[k]
		cb.dy[w] = cb.dy[k]
		cb.dz[w] = cb.dz[k]
		cb.dist[w] = cb.dist[k]
		w++
	}
	cb.idx = cb.idx[:w]
	cb.dx = cb.dx[:w]
	cb.dy = cb.dy[:w]
	cb.dz = cb.dz[:w]
	cb.dist = cb.dist[:w]
	cb.counts = append(cb.counts, int32(w-start))
	return h
}

// mergeChunks concatenates the worker chunk buffers in range order into the
// CSR arrays. Each worker owned a contiguous particle range, so its buffer
// is a contiguous segment of the final arrays and the merged list is
// identical to a serial build. withCands additionally merges the captured
// candidate segments of a skin build.
func (nl *NeighborList) mergeChunks(chunks []*listChunk, n int, withCands bool) {
	nl.pairsOK = false // main list changes; buildDerived re-folds it
	sort.Slice(chunks, func(a, b int) bool { return chunks[a].lo < chunks[b].lo })
	nl.Offsets = ensureInt32(nl.Offsets, n+1)
	if withCands {
		nl.CandOffsets = ensureInt32(nl.CandOffsets, n+1)
	}
	off, candOff := int32(0), int32(0)
	nl.Overflow = 0
	for _, cb := range chunks {
		for t, c := range cb.counts {
			nl.Offsets[cb.lo+t] = off
			off += c
		}
		if withCands {
			for t, c := range cb.candCounts {
				nl.CandOffsets[cb.lo+t] = candOff
				candOff += c
			}
		}
		nl.Overflow += cb.overflow
	}
	nl.Offsets[n] = off
	if withCands {
		nl.CandOffsets[n] = candOff
	}
	// Single-chunk fast path: one worker owned the whole particle range, so
	// its buffer already IS the finished list — swap the backing arrays
	// instead of copying them. The chunk inherits the list's previous
	// arrays, so the pool's steady-state capacity is preserved.
	if len(chunks) == 1 && chunks[0].lo == 0 {
		cb := chunks[0]
		nl.Overflow = cb.overflow
		nl.Idx, cb.idx = cb.idx, nl.Idx[:0]
		nl.Dx, cb.dx = cb.dx, nl.Dx[:0]
		nl.Dy, cb.dy = cb.dy, nl.Dy[:0]
		nl.Dz, cb.dz = cb.dz, nl.Dz[:0]
		nl.Dist, cb.dist = cb.dist, nl.Dist[:0]
		if withCands {
			nl.CandIdx, cb.cand = cb.cand, nl.CandIdx[:0]
		}
		listChunkPool.Put(cb)
		return
	}
	total := int(off)
	nl.Idx = ensureInt32(nl.Idx, total)
	nl.Dx = ensureF64(nl.Dx, total)
	nl.Dy = ensureF64(nl.Dy, total)
	nl.Dz = ensureF64(nl.Dz, total)
	nl.Dist = ensureF64(nl.Dist, total)
	if withCands {
		nl.CandIdx = ensureInt32(nl.CandIdx, int(candOff))
	}
	for _, cb := range chunks {
		at := nl.Offsets[cb.lo]
		copy(nl.Idx[at:], cb.idx)
		copy(nl.Dx[at:], cb.dx)
		copy(nl.Dy[at:], cb.dy)
		copy(nl.Dz[at:], cb.dz)
		copy(nl.Dist[at:], cb.dist)
		if withCands {
			copy(nl.CandIdx[nl.CandOffsets[cb.lo]:], cb.cand)
		}
		listChunkPool.Put(cb)
	}
}

// buildDerived derives the per-step secondary pair structure from the
// freshly merged main list: the folded symmetric pair list when
// Options.SymmetricPairs is set, the Ext transpose otherwise. Exactly one
// of the two is live at a time; the passes dispatch on the same option.
func (s *State) buildDerived() {
	if s.Opt.SymmetricPairs {
		s.buildPairs()
		return
	}
	s.buildExtras()
}

// buildExtras derives the asymmetric-support segments by transposing the
// main list: an entry (j -> i) with dist >= 2*h_i marks a pair that i's own
// support misses but j's covers, which MomentumEnergy must still integrate
// from i's side. All smoothing lengths are final before this runs.
func (s *State) buildExtras() {
	p := s.P
	n := p.N
	nl := s.List
	nl.extCnt = ensureInt32(nl.extCnt, n)
	for i := range nl.extCnt {
		nl.extCnt[i] = 0
	}
	par.ForChunked(n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			for k := nl.Offsets[j]; k < nl.Offsets[j+1]; k++ {
				i := nl.Idx[k]
				if nl.Dist[k] >= 2*p.H[i] {
					atomic.AddInt32(&nl.extCnt[i], 1)
				}
			}
		}
	})
	nl.ExtOffsets = ensureInt32(nl.ExtOffsets, n+1)
	off := int32(0)
	for i := 0; i < n; i++ {
		nl.ExtOffsets[i] = off
		off += nl.extCnt[i]
		nl.extCnt[i] = nl.ExtOffsets[i] // becomes the fill cursor
	}
	nl.ExtOffsets[n] = off
	total := int(off)
	nl.ExtIdx = ensureInt32(nl.ExtIdx, total)
	nl.ExtDx = ensureF64(nl.ExtDx, total)
	nl.ExtDy = ensureF64(nl.ExtDy, total)
	nl.ExtDz = ensureF64(nl.ExtDz, total)
	nl.ExtDist = ensureF64(nl.ExtDist, total)
	par.ForChunked(n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			for k := nl.Offsets[j]; k < nl.Offsets[j+1]; k++ {
				i := nl.Idx[k]
				if nl.Dist[k] >= 2*p.H[i] {
					pos := atomic.AddInt32(&nl.extCnt[i], 1) - 1
					nl.ExtIdx[pos] = int32(j)
					// The stored displacement is x_j - x_i; flip to i's view.
					nl.ExtDx[pos] = -nl.Dx[k]
					nl.ExtDy[pos] = -nl.Dy[k]
					nl.ExtDz[pos] = -nl.Dz[k]
					nl.ExtDist[pos] = nl.Dist[k]
				}
			}
		}
	})
	// Concurrent fill order is scheduling-dependent; sort each (tiny)
	// segment by neighbor index so the momentum sum order is deterministic.
	par.For(n, func(i int) {
		lo, hi := int(nl.ExtOffsets[i]), int(nl.ExtOffsets[i+1])
		for a := lo + 1; a < hi; a++ {
			for b := a; b > lo && nl.ExtIdx[b] < nl.ExtIdx[b-1]; b-- {
				nl.ExtIdx[b], nl.ExtIdx[b-1] = nl.ExtIdx[b-1], nl.ExtIdx[b]
				nl.ExtDx[b], nl.ExtDx[b-1] = nl.ExtDx[b-1], nl.ExtDx[b]
				nl.ExtDy[b], nl.ExtDy[b-1] = nl.ExtDy[b-1], nl.ExtDy[b]
				nl.ExtDz[b], nl.ExtDz[b-1] = nl.ExtDz[b-1], nl.ExtDz[b]
				nl.ExtDist[b], nl.ExtDist[b-1] = nl.ExtDist[b-1], nl.ExtDist[b]
			}
		}
	})
}
