package sph_test

// Equivalence and structure tests for the folded symmetric pair path
// (Options.SymmetricPairs): the pair list must cover every interaction of
// the asymmetric CSR+Ext layout exactly once, the folded passes must match
// the asymmetric list and the closure walk to 1e-9 over multi-step runs
// (skin on and off, with and without gravity), checkpoint resume must stay
// bit-identical, and the Float32Eval satellite must demonstrably fail the
// 1e-9 gate while staying physically faithful.

import (
	"bytes"
	"math"
	"runtime"
	"sort"
	"testing"

	"sphenergy/internal/initcond"
	"sphenergy/internal/sph"
)

// runSym advances a fresh state through the full pipeline for the given
// number of steps and returns it.
func runSym(t *testing.T, mk func() *sph.State, steps int, withGravity bool) *sph.State {
	t.Helper()
	st := mk()
	var pot []float64
	if withGravity {
		pot = make([]float64, st.P.N)
	}
	for s := 0; s < steps; s++ {
		stepManual(st, withGravity, pot)
	}
	return st
}

// compareStates asserts the physics fields of two pipeline variants agree
// within tol after identical trajectories.
func compareStates(t *testing.T, label string, a, b *sph.State, tol float64) {
	t.Helper()
	pa, pb := a.P, b.P
	for i := range pa.NC {
		if pa.NC[i] != pb.NC[i] {
			t.Fatalf("%s: particle %d neighbor count %d != %d", label, i, pa.NC[i], pb.NC[i])
		}
	}
	fields := []struct {
		name string
		x, y []float64
	}{
		{"rho", pa.Rho, pb.Rho},
		{"gradh", pa.Gradh, pb.Gradh},
		{"divv", pa.DivV, pb.DivV},
		{"curlv", pa.CurlV, pb.CurlV},
		{"u", pa.U, pb.U},
		{"h", pa.H, pb.H},
		{"ax", pa.AX, pb.AX},
		{"ay", pa.AY, pb.AY},
		{"az", pa.AZ, pb.AZ},
		{"x", pa.X, pb.X},
		{"vx", pa.VX, pb.VX},
	}
	for _, f := range fields {
		if dev := maxRelDev(f.x, f.y); dev > tol {
			t.Errorf("%s: %s deviates by %.3g (> %g)", label, f.name, dev, tol)
		}
	}
}

// TestSymmetricMatchesAsymmetricTurbulence runs the three-way comparison
// on periodic turbulence with the Verlet skin both on and off: the folded
// passes must track the asymmetric list and the legacy closure walk to
// 1e-9 over several steps (only float summation order differs).
func TestSymmetricMatchesAsymmetricTurbulence(t *testing.T) {
	for _, skin := range []struct {
		name string
		val  float64
	}{{"skin", -1}, {"noskin", 0}} {
		t.Run(skin.name, func(t *testing.T) {
			mk := func(symmetric, walk bool) func() *sph.State {
				return func() *sph.State {
					p, opt := initcond.Turbulence(initcond.DefaultTurbulence(10))
					opt.NgTarget = 32
					opt.ReorderEvery = 0
					opt.ClosureWalk = walk
					opt.SymmetricPairs = symmetric
					if skin.val >= 0 {
						opt.Skin = skin.val
					}
					return sph.NewState(p, opt)
				}
			}
			const steps = 4
			sym := runSym(t, mk(true, false), steps, false)
			asym := runSym(t, mk(false, false), steps, false)
			walk := runSym(t, mk(false, true), steps, false)
			if sym.List == nil || len(sym.List.PairOffsets) != sym.P.N+1 {
				t.Fatal("symmetric run did not build the folded pair list")
			}
			compareStates(t, "sym-vs-asym", sym, asym, 1e-9)
			compareStates(t, "sym-vs-walk", sym, walk, 1e-9)
		})
	}
}

// TestSymmetricMatchesAsymmetricEvrard is the same comparison on the
// non-periodic gravity-coupled Evrard collapse, whose smoothing-length
// contrasts produce one-way pairs (the Ext semantics the folded list must
// reproduce through its dist >= 2h far-endpoint rule).
func TestSymmetricMatchesAsymmetricEvrard(t *testing.T) {
	mk := func(symmetric bool) func() *sph.State {
		return func() *sph.State {
			p, opt := initcond.Evrard(initcond.DefaultEvrard(10))
			opt.NgTarget = 32
			opt.ReorderEvery = 0
			opt.SymmetricPairs = symmetric
			return sph.NewState(p, opt)
		}
	}
	const steps = 3
	sym := runSym(t, mk(true), steps, true)
	asym := runSym(t, mk(false), steps, true)
	compareStates(t, "sym-vs-asym", sym, asym, 1e-9)
}

// TestSymmetricPairListCoverage checks the fold structurally against an
// asymmetric twin built from identical initial conditions: for every
// particle, the pair records that scatter into it must reproduce exactly
// its main-CSR row (density-type passes) and exactly main ∪ Ext (momentum).
func TestSymmetricPairListCoverage(t *testing.T) {
	build := func(symmetric bool) *sph.State {
		p, opt := initcond.Evrard(initcond.DefaultEvrard(8))
		opt.NgTarget = 32
		opt.SymmetricPairs = symmetric
		st := sph.NewState(p, opt)
		st.FindNeighbors()
		return st
	}
	sym, asym := build(true), build(false)
	nl, al := sym.List, asym.List
	n := sym.P.N

	// The main lists must be identical — the fold rides on top.
	for i := 0; i <= n; i++ {
		if nl.Offsets[i] != al.Offsets[i] {
			t.Fatal("main CSR offsets differ between symmetric and asymmetric builds")
		}
	}

	density := make([][]int32, n) // indices scattering into i for density-type passes
	momentum := make([][]int32, n)
	for a := 0; a < n; a++ {
		for k := nl.PairOffsets[a]; k < nl.PairOffsets[a+1]; k++ {
			b := nl.PairIdx[k]
			both := nl.PairBoth[k] != 0
			// Owner side always integrates the pair.
			density[a] = append(density[a], b)
			momentum[a] = append(momentum[a], b)
			if both {
				density[b] = append(density[b], int32(a))
			}
			if both || nl.PairDist[k] >= 2*sym.P.H[b] {
				momentum[b] = append(momentum[b], int32(a))
			}
		}
	}
	rowOf := func(off, idx []int32, i int) []int32 {
		seg := idx[off[i]:off[i+1]]
		out := append([]int32(nil), seg...)
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	equal := func(a, b []int32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	oneWay := 0
	for i := 0; i < n; i++ {
		sort.Slice(density[i], func(a, b int) bool { return density[i][a] < density[i][b] })
		sort.Slice(momentum[i], func(a, b int) bool { return momentum[i][a] < momentum[i][b] })
		wantDensity := rowOf(al.Offsets, al.Idx, i)
		if !equal(density[i], wantDensity) {
			t.Fatalf("particle %d: density coverage %v != main row %v", i, density[i], wantDensity)
		}
		wantMomentum := append(wantDensity, rowOf(al.ExtOffsets, al.ExtIdx, i)...)
		sort.Slice(wantMomentum, func(a, b int) bool { return wantMomentum[a] < wantMomentum[b] })
		if !equal(momentum[i], wantMomentum) {
			t.Fatalf("particle %d: momentum coverage %v != main+ext %v", i, momentum[i], wantMomentum)
		}
		oneWay += len(wantMomentum) - len(wantDensity)
	}
	if oneWay == 0 {
		t.Error("setup produced no one-way pairs; the Ext-equivalence branch went untested")
	}
}

// TestSymmetricNgmaxTruncation drives every row to the ngmax cap, forcing
// the fold's truncation-aware reverse-edge scan, and checks the folded
// pipeline still matches the asymmetric list exactly.
func TestSymmetricNgmaxTruncation(t *testing.T) {
	mk := func(symmetric bool) func() *sph.State {
		return func() *sph.State {
			p, opt := initcond.Turbulence(initcond.DefaultTurbulence(8))
			opt.NgTarget = 32
			opt.NgMax = 8
			opt.Skin = 0
			opt.ReorderEvery = 0
			opt.SymmetricPairs = symmetric
			return sph.NewState(p, opt)
		}
	}
	const steps = 2
	sym := runSym(t, mk(true), steps, false)
	asym := runSym(t, mk(false), steps, false)
	if sym.List.Overflow == 0 {
		t.Fatal("cap did not overflow; the truncation path went untested")
	}
	compareStates(t, "sym-vs-asym-truncated", sym, asym, 1e-9)
}

// TestSymmetricSkinCheckpointMidIntervalResume is the symmetric-mode twin
// of TestSkinCheckpointMidIntervalResume: a checkpoint taken between
// rebuilds must resume bit-identically — the folded pair list is derived
// from the regenerated candidate snapshot, not persisted.
func TestSymmetricSkinCheckpointMidIntervalResume(t *testing.T) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(8))
	opt.NgTarget = 32
	opt.ReorderEvery = 3
	opt.SymmetricPairs = true

	orig := sph.NewState(p, opt)
	const pre, post = 5, 6
	for s := 0; s < pre; s++ {
		orig.RunStep(nil)
	}
	if orig.List == nil || len(orig.List.PairOffsets) != orig.P.N+1 {
		t.Fatal("no folded pair list after warm-up")
	}
	if orig.List.BuildStep >= orig.Step {
		t.Fatalf("checkpoint is not mid-interval: BuildStep %d, Step %d",
			orig.List.BuildStep, orig.Step)
	}

	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := sph.ReadCheckpoint(&buf, opt)
	if err != nil {
		t.Fatal(err)
	}

	refreshes := 0
	for s := 0; s < post; s++ {
		origPrev, resumedPrev := orig.NbrStats, resumed.NbrStats
		orig.RunStep(nil)
		resumed.RunStep(nil)
		or := orig.NbrStats.Rebuilds - origPrev.Rebuilds
		rr := resumed.NbrStats.Rebuilds - resumedPrev.Rebuilds
		if or != rr {
			t.Fatalf("step %d: rebuild schedules diverged after resume (deltas %d vs %d)", orig.Step, or, rr)
		}
		refreshes += resumed.NbrStats.Refreshes - resumedPrev.Refreshes
		po, pr := orig.P, resumed.P
		for i := 0; i < po.N; i++ {
			if po.X[i] != pr.X[i] || po.VX[i] != pr.VX[i] || po.U[i] != pr.U[i] ||
				po.H[i] != pr.H[i] || po.NC[i] != pr.NC[i] {
				t.Fatalf("step %d: particle %d diverged after resume", orig.Step, i)
			}
		}
		if orig.Dt != resumed.Dt {
			t.Fatalf("step %d: dt diverged: %.17g vs %.17g", orig.Step, orig.Dt, resumed.Dt)
		}
	}
	if refreshes == 0 {
		t.Fatalf("resumed run never refreshed (stats %+v); the derived pair list went untested on refresh steps", resumed.NbrStats)
	}
}

// TestFloat32EvalFailsEquivalenceGate records the ROADMAP verdict: float32
// kernel-table evaluation with float64 accumulation does NOT hold the
// pipeline's 1e-9 equivalence bar — float32 quantization contributes
// ~1e-7 relative error per evaluation — while remaining physically
// faithful (well under 1e-3 after several steps). If either bound breaks,
// the documented verdict in the README needs updating.
func TestFloat32EvalFailsEquivalenceGate(t *testing.T) {
	mk := func(f32 bool) func() *sph.State {
		return func() *sph.State {
			p, opt := initcond.Turbulence(initcond.DefaultTurbulence(10))
			opt.NgTarget = 32
			opt.ReorderEvery = 0
			opt.SymmetricPairs = true
			opt.Float32Eval = f32
			return sph.NewState(p, opt)
		}
	}
	const steps = 3
	exact := runSym(t, mk(false), steps, false)
	quant := runSym(t, mk(true), steps, false)
	worst := 0.0
	for _, pair := range [][2][]float64{
		{exact.P.Rho, quant.P.Rho},
		{exact.P.AX, quant.P.AX},
		{exact.P.U, quant.P.U},
	} {
		if dev := maxRelDev(pair[0], pair[1]); dev > worst {
			worst = dev
		}
	}
	if worst <= 1e-9 {
		t.Errorf("float32 evaluation unexpectedly holds the 1e-9 gate (max dev %.3g) — the documented verdict is stale", worst)
	}
	if worst > 1e-3 {
		t.Errorf("float32 evaluation deviates by %.3g — beyond quantization noise, something is broken", worst)
	}
	if math.IsNaN(worst) {
		t.Error("float32 run produced NaNs")
	}
}

// TestSymmetricPassesSteadyStateAllocFree pins the allocation-free steady
// state of the folded passes: once the scatter accumulators and scratch
// are warm, a full density→momentum sweep performs no data-dependent
// allocation. A small constant number of allocations per sweep remains —
// escaping closure headers in the par layer, shared with the asymmetric
// path — so the test asserts the count is tiny AND independent of problem
// size (no per-particle or per-pair allocation).
func TestSymmetricPassesSteadyStateAllocFree(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	sweepAllocs := func(nside int) float64 {
		p, opt := initcond.Turbulence(initcond.DefaultTurbulence(nside))
		opt.NgTarget = 32
		opt.SymmetricPairs = true
		st := sph.NewState(p, opt)
		for s := 0; s < 2; s++ {
			st.RunStep(nil)
		}
		st.FindNeighbors()
		return testing.AllocsPerRun(5, func() {
			st.XMass()
			st.NormalizationGradh()
			st.EquationOfState()
			st.IADVelocityDivCurl()
			st.AVSwitches(st.Dt)
			st.MomentumEnergy()
		})
	}
	small, large := sweepAllocs(8), sweepAllocs(12)
	if small != large {
		t.Errorf("steady-state sweep allocations scale with problem size: %.0f at 8³ vs %.0f at 12³", small, large)
	}
	if large > 24 {
		t.Errorf("steady-state sweep allocates %.0f times, want a small constant (≤ 24 closure headers)", large)
	}
}
