package sph

import (
	"math"

	"sphenergy/internal/kernel"
	"sphenergy/internal/par"
)

// Symmetric (Newton's third law) pair path: the folded pair list visits
// every interacting pair exactly once, computes the shared per-pair terms —
// distances, artificial viscosity, kernel derivatives at both smoothing
// lengths — a single time, and scatters contributions to both endpoints
// through par.Scatter's per-worker private accumulators. The pair set and
// the per-contribution arithmetic reproduce the asymmetric list exactly
// (including ngmax truncation and asymmetric-support Ext semantics), so the
// only deviation from xmassList/gradhList/iadList/momentumList is float
// summation order: ~1e-15 relative, deterministic for a fixed GOMAXPROCS.

// Pair-record dispositions written by the first buildPairs sweep, one byte
// per directed main-list edge.
const (
	pairSkip = 0 // the mirror edge owns this pair
	pairOne  = 1 // record owned here; only this direction exists
	pairTwo  = 2 // record owned here; mirror edge exists too (PairBoth=1)
)

// useSym reports whether the passes stream over the folded symmetric pair
// list. buildDerived keeps it in lockstep with the main list whenever
// SymmetricPairs is set, so after any FindNeighbors this is simply the
// option; the pairsOK guard protects manually assembled states.
func (s *State) useSym() bool {
	return s.Opt.SymmetricPairs && s.useList() && s.List.pairsOK
}

// symKernel returns the kernel the symmetric passes evaluate: the
// configured kernel, or its float32-quantized table when Float32Eval is
// set. Non-tabulated kernels keep float64 evaluation — the flag answers a
// question about tabulated evaluation precision.
func (s *State) symKernel() kernel.Kernel {
	if !s.Opt.Float32Eval {
		return s.Opt.Kernel
	}
	if s.kern32 == nil || s.kern32base != s.Opt.Kernel {
		if t, ok := s.Opt.Kernel.(*kernel.Table); ok {
			s.kern32 = kernel.Quantize32(t)
		} else {
			s.kern32 = s.Opt.Kernel
		}
		s.kern32base = s.Opt.Kernel
	}
	return s.kern32
}

// rowHas reports whether row j of the main list contains index i. Rows are
// in grid traversal order (unsorted), so this is a linear scan; it only
// runs for rows truncated at ngmax, which are rare by construction.
func (nl *NeighborList) rowHas(j int32, i int32) bool {
	for k := nl.Offsets[j]; k < nl.Offsets[j+1]; k++ {
		if nl.Idx[k] == i {
			return true
		}
	}
	return false
}

// buildPairs folds the main CSR list into the symmetric pair list. For a
// directed edge a→b the reverse edge b→a exists iff dist < 2·h_b and b's
// row was not truncated: the h-growth clamp guarantees b's gather radius
// 2·hGrowthCap·h_old_b covers 2·h_new_b (and the skin refresh re-admits
// from a candidate set skinValid proved complete), so the only way a
// sub-support pair can be missing from b's row is the ngmax cap — checked
// by scanning the (full-length) row. Two parallel sweeps — disposition +
// count, then fill — with a serial prefix sum in between; no atomics, no
// per-segment sorts, deterministic output independent of worker count.
func (s *State) buildPairs() {
	p := s.P
	n := p.N
	nl := s.List
	total := int(nl.Offsets[n])
	nl.pairDisp = ensureU8(nl.pairDisp, total)
	nl.pairCnt = ensureInt32(nl.pairCnt, n)
	ngmax := int32(nl.Ngmax)

	par.ForChunked(n, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			cnt := int32(0)
			for k := nl.Offsets[a]; k < nl.Offsets[a+1]; k++ {
				b := nl.Idx[k]
				rev := nl.Dist[k] < 2*p.H[b]
				if rev && nl.Offsets[b+1]-nl.Offsets[b] == ngmax {
					rev = nl.rowHas(b, int32(a))
				}
				switch {
				case int(b) > a:
					if rev {
						nl.pairDisp[k] = pairTwo
					} else {
						nl.pairDisp[k] = pairOne
					}
					cnt++
				case !rev:
					// b's support misses a (or b's row is capped): this
					// edge is the pair's only representation.
					nl.pairDisp[k] = pairOne
					cnt++
				default:
					nl.pairDisp[k] = pairSkip
				}
			}
			nl.pairCnt[a] = cnt
		}
	})

	nl.PairOffsets = ensureInt32(nl.PairOffsets, n+1)
	off := int32(0)
	for a := 0; a < n; a++ {
		nl.PairOffsets[a] = off
		off += nl.pairCnt[a]
	}
	nl.PairOffsets[n] = off
	np := int(off)
	nl.PairIdx = ensureInt32(nl.PairIdx, np)
	nl.PairBoth = ensureU8(nl.PairBoth, np)
	nl.PairDx = ensureF64(nl.PairDx, np)
	nl.PairDy = ensureF64(nl.PairDy, np)
	nl.PairDz = ensureF64(nl.PairDz, np)
	nl.PairDist = ensureF64(nl.PairDist, np)

	f32 := s.Opt.Float32Eval
	par.ForChunked(n, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			w := nl.PairOffsets[a]
			for k := nl.Offsets[a]; k < nl.Offsets[a+1]; k++ {
				d := nl.pairDisp[k]
				if d == pairSkip {
					continue
				}
				nl.PairIdx[w] = nl.Idx[k]
				nl.PairBoth[w] = d - pairOne
				if f32 {
					nl.PairDx[w] = float64(float32(nl.Dx[k]))
					nl.PairDy[w] = float64(float32(nl.Dy[k]))
					nl.PairDz[w] = float64(float32(nl.Dz[k]))
					nl.PairDist[w] = float64(float32(nl.Dist[k]))
				} else {
					nl.PairDx[w] = nl.Dx[k]
					nl.PairDy[w] = nl.Dy[k]
					nl.PairDz[w] = nl.Dz[k]
					nl.PairDist[w] = nl.Dist[k]
				}
				w++
			}
		}
	})
	nl.pairsOK = true
	// The per-pair kernel cache indexes the old fold; the fused XMass
	// sweep of the next step rebuilds it.
	s.symCacheOK = false
	s.symDsumOK = false
}

// wdwFunc returns a combined W/DW evaluator for k, using the kernel's
// fused table lookup (kernel.PairEvaluator) when it has one; the fallback
// calls W and DW separately, producing the same values.
func wdwFunc(k kernel.Kernel) func(r, h float64) (float64, float64) {
	if pe, ok := k.(kernel.PairEvaluator); ok {
		return pe.WDW
	}
	return func(r, h float64) (float64, float64) {
		return k.W(r, h), k.DW(r, h)
	}
}

// ensurePairKernels fills the per-pair kernel-value cache (W and dW/dr at
// both endpoints' smoothing lengths) when the fused XMass sweep has not
// already done so this step — the safety net for callers that drive the
// passes out of pipeline order.
func (s *State) ensurePairKernels() {
	if s.symCacheOK {
		return
	}
	p := s.P
	nl := s.List
	n := p.N
	np := int(nl.PairOffsets[n])
	s.symWa = ensureF64(s.symWa, np)
	s.symWb = ensureF64(s.symWb, np)
	s.symDwa = ensureF64(s.symDwa, np)
	s.symDwb = ensureF64(s.symDwb, np)
	wa, wb, dwa, dwb := s.symWa, s.symWb, s.symDwa, s.symDwb
	wdw := wdwFunc(s.symKernel())
	par.ForChunked(n, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			ha := p.H[a]
			for t := nl.PairOffsets[a]; t < nl.PairOffsets[a+1]; t++ {
				d := nl.PairDist[t]
				wa[t], dwa[t] = wdw(d, ha)
				wb[t], dwb[t] = wdw(d, p.H[nl.PairIdx[t]])
			}
		}
	})
	s.symCacheOK = true
}

// xmassSym is the fused folded density sweep — the only pass that touches
// the kernel tables in symmetric mode. For every pair it evaluates W and
// dW/dr at both smoothing lengths through one fused lookup per endpoint,
// caches the four values for the downstream IAD and momentum passes, and
// accumulates the XMass and NormalizationGradh sums together (stride-2
// scatter), so the gradh pass reduces to its O(n) finalization. Each
// contribution is float-identical to the asymmetric per-direction
// arithmetic; only summation order differs.
func (s *State) xmassSym() {
	p := s.P
	k := s.symKernel()
	nl := s.List
	n := p.N
	np := int(nl.PairOffsets[n])
	s.symWa = ensureF64(s.symWa, np)
	s.symWb = ensureF64(s.symWb, np)
	s.symDwa = ensureF64(s.symDwa, np)
	s.symDwb = ensureF64(s.symDwb, np)
	s.symDsum = ensureF64(s.symDsum, n)
	wa, wb, dwa, dwb := s.symWa, s.symWb, s.symDwa, s.symDwb
	wdw := wdwFunc(k)
	bufs := s.scat.Run(n, n, 2, func(lo, hi int, acc []float64) {
		for a := lo; a < hi; a++ {
			ha := p.H[a]
			xma := p.XM[a]
			sum, dsum := 0.0, 0.0
			for t := nl.PairOffsets[a]; t < nl.PairOffsets[a+1]; t++ {
				b := nl.PairIdx[t]
				d := nl.PairDist[t]
				hb := p.H[b]
				w1, dw1 := wdw(d, ha)
				w2, dw2 := wdw(d, hb)
				wa[t], dwa[t] = w1, dw1
				wb[t], dwb[t] = w2, dw2
				xmb := p.XM[b]
				sum += xmb * w1
				dsum += xmb * (-(3*w1 + d*dw1) / ha)
				if nl.PairBoth[t] != 0 {
					o := int(b) * 2
					acc[o] += xma * w2
					acc[o+1] += xma * (-(3*w2 + d*dw2) / hb)
				}
			}
			o := a * 2
			acc[o] += sum
			acc[o+1] += dsum
		}
	})
	dsums := s.symDsum
	par.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			h := p.H[i]
			w0 := k.W(0, h)
			sum := p.XM[i] * w0
			dsum := -3 * p.XM[i] * w0 / h
			for _, b := range bufs {
				sum += b[2*i]
				dsum += b[2*i+1]
			}
			p.Kx[i] = sum
			p.Rho[i] = sum * p.M[i] / p.XM[i]
			dsums[i] = dsum
		}
	})
	s.symCacheOK = true
	s.symDsumOK = true
}

// gradhSym finalizes the NormalizationGradh pass from the sums the fused
// XMass sweep accumulated; when those are missing (passes driven out of
// pipeline order) it falls back to the asymmetric list pass, which needs
// only the main CSR rows.
func (s *State) gradhSym() {
	if !s.symDsumOK {
		s.gradhList()
		return
	}
	p := s.P
	dsums := s.symDsum
	par.ForChunked(p.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			omega := 1 + p.H[i]/(3*p.Kx[i])*dsums[i]
			if omega < 0.2 || math.IsNaN(omega) {
				omega = 0.2
			}
			p.Gradh[i] = omega
		}
	})
}

// iadSym is the folded IAD pass: kernel values come from the per-pair
// cache filled by the fused XMass sweep (no table lookups here), the
// tensor loop shares the six dyadic products (dx·dx … dz·dz) between the
// two endpoints and reads precomputed volume elements V = m/ρ instead of
// dividing per pair, and the gradient loop accumulates the divergence and
// the three curl components directly (4 accumulator slots instead of the
// 9 g-tensor entries — only those four combinations are ever consumed).
func (s *State) iadSym() {
	s.ensurePairKernels()
	p := s.P
	nl := s.List
	n := p.N
	kwa, kwb := s.symWa, s.symWb
	s.symV = ensureF64(s.symV, n)
	v := s.symV
	par.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] = p.M[i] / p.Rho[i]
		}
	})

	bufs := s.scat.Run(n, n, 6, func(lo, hi int, acc []float64) {
		for a := lo; a < hi; a++ {
			va := v[a]
			var txx, txy, txz, tyy, tyz, tzz float64
			for t := nl.PairOffsets[a]; t < nl.PairOffsets[a+1]; t++ {
				b := nl.PairIdx[t]
				dx, dy, dz := nl.PairDx[t], nl.PairDy[t], nl.PairDz[t]
				xx, xy, xz := dx*dx, dx*dy, dx*dz
				yy, yz, zz := dy*dy, dy*dz, dz*dz
				wa := kwa[t] * v[b]
				txx += xx * wa
				txy += xy * wa
				txz += xz * wa
				tyy += yy * wa
				tyz += yz * wa
				tzz += zz * wa
				if nl.PairBoth[t] != 0 {
					wb := kwb[t] * va
					o := int(b) * 6
					acc[o] += xx * wb
					acc[o+1] += xy * wb
					acc[o+2] += xz * wb
					acc[o+3] += yy * wb
					acc[o+4] += yz * wb
					acc[o+5] += zz * wb
				}
			}
			o := a * 6
			acc[o] += txx
			acc[o+1] += txy
			acc[o+2] += txz
			acc[o+3] += tyy
			acc[o+4] += tyz
			acc[o+5] += tzz
		}
	})
	par.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			o := i * 6
			var t6 [6]float64
			for _, b := range bufs {
				t6[0] += b[o]
				t6[1] += b[o+1]
				t6[2] += b[o+2]
				t6[3] += b[o+3]
				t6[4] += b[o+4]
				t6[5] += b[o+5]
			}
			s.storeIADTensor(i, t6[0], t6[1], t6[2], t6[3], t6[4], t6[5])
		}
	})

	bufs = s.scat.Run(n, n, 4, func(lo, hi int, acc []float64) {
		for a := lo; a < hi; a++ {
			va := v[a]
			c11a, c12a, c13a := p.C11[a], p.C12[a], p.C13[a]
			c22a, c23a, c33a := p.C22[a], p.C23[a], p.C33[a]
			var divA, cxA, cyA, czA float64
			for t := nl.PairOffsets[a]; t < nl.PairOffsets[a+1]; t++ {
				b := nl.PairIdx[t]
				// r_b - r_a = -(dx, dy, dz); dv = v_b - v_a, both from a's
				// side, exactly as iadList writes them.
				rx, ry, rz := -nl.PairDx[t], -nl.PairDy[t], -nl.PairDz[t]
				dvx := p.VX[b] - p.VX[a]
				dvy := p.VY[b] - p.VY[a]
				dvz := p.VZ[b] - p.VZ[a]
				wa := kwa[t] * v[b]
				ax := c11a*rx + c12a*ry + c13a*rz
				ay := c12a*rx + c22a*ry + c23a*rz
				az := c13a*rx + c23a*ry + c33a*rz
				divA += (dvx*ax + dvy*ay + dvz*az) * wa
				cxA += (dvz*ay - dvy*az) * wa
				cyA += (dvx*az - dvz*ax) * wa
				czA += (dvy*ax - dvx*ay) * wa
				if nl.PairBoth[t] != 0 {
					// From b's side every factor flips sign: r_a - r_b =
					// +(dx,dy,dz) and dv_b = -dv, so div and curl keep the
					// same formulas with b's tensor A_b = C_b·(dx,dy,dz).
					wb := kwb[t] * va
					bx := p.C11[b]*rx + p.C12[b]*ry + p.C13[b]*rz
					by := p.C12[b]*rx + p.C22[b]*ry + p.C23[b]*rz
					bz := p.C13[b]*rx + p.C23[b]*ry + p.C33[b]*rz
					o := int(b) * 4
					acc[o] += (dvx*bx + dvy*by + dvz*bz) * wb
					acc[o+1] += (dvz*by - dvy*bz) * wb
					acc[o+2] += (dvx*bz - dvz*bx) * wb
					acc[o+3] += (dvy*bx - dvx*by) * wb
				}
			}
			o := a * 4
			acc[o] += divA
			acc[o+1] += cxA
			acc[o+2] += cyA
			acc[o+3] += czA
		}
	})
	par.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			o := i * 4
			var div, cx, cy, cz float64
			for _, b := range bufs {
				div += b[o]
				cx += b[o+1]
				cy += b[o+2]
				cz += b[o+3]
			}
			p.DivV[i] = div
			p.CurlV[i] = math.Sqrt(cx*cx + cy*cy + cz*cz)
		}
	})
}

// momentumSym is the folded MomentumEnergy pass — the big win of the
// symmetric path: the artificial viscosity, both kernel derivatives
// (cached by the fused XMass sweep, no table lookups here) and the
// symmetrized pressure bracket are computed once per pair instead of
// once per direction, and P/(Ω ρ²) and the Balsara factor are hoisted to
// per-particle precomputations (the asymmetric path re-derives both for
// the far particle on every visit). The far endpoint of a one-way record
// still integrates the pair when the distance reaches its own support
// boundary — exactly the Ext-transpose condition dist >= 2·h.
func (s *State) momentumSym() {
	s.ensurePairKernels()
	p := s.P
	nl := s.List
	n := p.N
	kdwa, kdwb := s.symDwa, s.symDwb
	s.symPrho = ensureF64(s.symPrho, n)
	s.symF = ensureF64(s.symF, n)
	prho, f := s.symPrho, s.symF
	par.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rho := p.Rho[i]
			prho[i] = p.P[i] / (p.Gradh[i] * rho * rho)
			f[i] = balsara(p.DivV[i], p.CurlV[i], p.C[i], p.H[i])
		}
	})
	avBeta := s.Opt.AVBeta
	bufs := s.scat.Run(n, n, 4, func(lo, hi int, acc []float64) {
		for a := lo; a < hi; a++ {
			ha := p.H[a]
			var axA, ayA, azA, duA float64
			for t := nl.PairOffsets[a]; t < nl.PairOffsets[a+1]; t++ {
				b := nl.PairIdx[t]
				dx, dy, dz, dist := nl.PairDx[t], nl.PairDy[t], nl.PairDz[t], nl.PairDist[t]
				hb := p.H[b]
				dwa := kdwa[t]
				dwb := kdwb[t]
				invr := 1 / (dist + 1e-30)
				ex, ey, ez := dx*invr, dy*invr, dz*invr
				dvx := p.VX[a] - p.VX[b]
				dvy := p.VY[a] - p.VY[b]
				dvz := p.VZ[a] - p.VZ[b]
				vdotr := dvx*dx + dvy*dy + dvz*dz
				var piij float64
				if vdotr < 0 {
					hij := 0.5 * (ha + hb)
					cij := 0.5 * (p.C[a] + p.C[b])
					rhoij := 0.5 * (p.Rho[a] + p.Rho[b])
					muij := hij * vdotr / (dist*dist + 0.01*hij*hij)
					alphaij := 0.5 * (p.Alpha[a] + p.Alpha[b])
					fij := 0.5 * (f[a] + f[b])
					piij = fij * alphaij * (-cij*muij + avBeta*muij*muij) / rhoij
				}
				gradA := prho[a] * dwa
				gradB := prho[b] * dwb
				avdw := piij * 0.5 * (dwa + dwb)
				bracket := gradA + gradB + avdw
				// vdotgrad and the bracket are invariant under swapping the
				// pair's sides (both dv and e flip sign), so one evaluation
				// serves both endpoints.
				vdotgrad := dvx*ex + dvy*ey + dvz*ez
				accA := p.M[b] * bracket
				axA -= accA * ex
				ayA -= accA * ey
				azA -= accA * ez
				duA += p.M[b] * (gradA + 0.5*avdw) * vdotgrad
				if nl.PairBoth[t] != 0 || dist >= 2*hb {
					accB := p.M[a] * bracket
					o := int(b) * 4
					acc[o] += accB * ex
					acc[o+1] += accB * ey
					acc[o+2] += accB * ez
					acc[o+3] += p.M[a] * (gradB + 0.5*avdw) * vdotgrad
				}
			}
			o := a * 4
			acc[o] += axA
			acc[o+1] += ayA
			acc[o+2] += azA
			acc[o+3] += duA
		}
	})
	par.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			o := i * 4
			var ax, ay, az, du float64
			for _, b := range bufs {
				ax += b[o]
				ay += b[o+1]
				az += b[o+2]
				du += b[o+3]
			}
			p.AX[i] = ax
			p.AY[i] = ay
			p.AZ[i] = az
			p.DU[i] = du
		}
	})
}
