package sph

import "math"

// EOS is an equation of state mapping (density, specific internal energy)
// to (pressure, sound speed).
type EOS interface {
	PressureSoundSpeed(rho, u float64) (p, c float64)
	Name() string
}

// IdealGas is the gamma-law equation of state P = (gamma-1) rho u, the EOS
// used by the Evrard collapse test (gamma = 5/3).
type IdealGas struct {
	Gamma float64
}

// Name implements EOS.
func (g IdealGas) Name() string { return "ideal-gas" }

// PressureSoundSpeed implements EOS.
func (g IdealGas) PressureSoundSpeed(rho, u float64) (float64, float64) {
	if rho <= 0 {
		return 0, 0
	}
	p := (g.Gamma - 1) * rho * u
	c := math.Sqrt(g.Gamma * p / rho)
	return p, c
}

// Isothermal is the isothermal EOS P = cs^2 rho used by driven-turbulence
// setups such as the Subsonic Turbulence test.
type Isothermal struct {
	Cs float64 // constant sound speed
}

// Name implements EOS.
func (iso Isothermal) Name() string { return "isothermal" }

// PressureSoundSpeed implements EOS.
func (iso Isothermal) PressureSoundSpeed(rho, _ float64) (float64, float64) {
	return iso.Cs * iso.Cs * rho, iso.Cs
}

// Polytropic is P = K rho^gamma, provided for completeness (e.g. simple
// stellar structure setups).
type Polytropic struct {
	K, Gamma float64
}

// Name implements EOS.
func (pt Polytropic) Name() string { return "polytropic" }

// PressureSoundSpeed implements EOS.
func (pt Polytropic) PressureSoundSpeed(rho, _ float64) (float64, float64) {
	if rho <= 0 {
		return 0, 0
	}
	p := pt.K * math.Pow(rho, pt.Gamma)
	return p, math.Sqrt(pt.Gamma * p / rho)
}
