package experiments

import (
	"fmt"
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/report"
	"sphenergy/internal/slurm"
	"sphenergy/internal/textplot"
)

// Fig3Point is one allocation size's PMT-vs-Slurm comparison.
type Fig3Point struct {
	GPUs      int
	SlurmJ    float64
	PMTJ      float64
	LoopTimeS float64
	// Normalized values (to the largest allocation's Slurm energy).
	SlurmNorm, PMTNorm float64
}

// Fig3Series is one system's scaling series.
type Fig3Series struct {
	System string
	Points []Fig3Point
}

// Fig3Data validates PMT-instrumented energy against Slurm-reported energy
// for Subsonic Turbulence weak scaling (150 M particles per GPU) on the two
// production systems, 8–48 GPUs on CSCS-A100 and up to 96 GCDs on LUMI-G.
type Fig3Data struct {
	Series []Fig3Series
}

// Fig3 runs the weak-scaling validation campaign through the Slurm model so
// that the ConsumedEnergy accounting includes the job setup phase PMT does
// not observe.
func Fig3(scale float64) (*Fig3Data, error) {
	d := &Fig3Data{}
	campaigns := []struct {
		spec  cluster.NodeSpec
		sizes []int
	}{
		{cluster.CSCSA100(), []int{8, 16, 24, 32, 40, 48}},
		{cluster.LUMIG(), []int{16, 32, 48, 64, 80, 96}},
	}
	nsteps := steps(scale)
	for _, c := range campaigns {
		mgr := slurm.NewManager()
		series := Fig3Series{System: c.spec.Name}
		for _, gpus := range c.sizes {
			job, err := mgr.Submit(core.Config{
				System:           c.spec,
				Ranks:            gpus,
				Sim:              core.Turbulence,
				ParticlesPerRank: 150e6,
				Steps:            nsteps,
			}, slurm.SubmitOptions{
				JobName:       fmt.Sprintf("turb-%dgpu", gpus),
				SetupS:        45 * scale,
				TRES:          slurm.ParseTRES("billing,cpu,energy,gres/gpu"),
				EnergyBackend: "pm_counters",
			})
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, Fig3Point{
				GPUs:      gpus,
				SlurmJ:    job.ConsumedEnergyJ,
				PMTJ:      job.LoopEnergyJ,
				LoopTimeS: job.LoopTimeS,
			})
		}
		// Normalize to the largest allocation, as in the figure.
		ref := series.Points[len(series.Points)-1].SlurmJ
		for i := range series.Points {
			series.Points[i].SlurmNorm = series.Points[i].SlurmJ / ref
			series.Points[i].PMTNorm = series.Points[i].PMTJ / ref
		}
		d.Series = append(d.Series, series)
	}
	return d, nil
}

// MaxRelativeGap returns the largest |Slurm-PMT|/Slurm across a series.
func (s Fig3Series) MaxRelativeGap() float64 {
	maxGap := 0.0
	for _, p := range s.Points {
		gap := (p.SlurmJ - p.PMTJ) / p.SlurmJ
		if gap < 0 {
			gap = -gap
		}
		if gap > maxGap {
			maxGap = gap
		}
	}
	return maxGap
}

// Render implements Renderable.
func (d *Fig3Data) Render() string {
	var b strings.Builder
	b.WriteString("FIG. 3 — PMT-measured vs Slurm-reported energy (weak scaling, normalized)\n\n")
	for _, s := range d.Series {
		xs := make([]string, len(s.Points))
		slurmRow := textplot.Series{Name: "Slurm"}
		pmtRow := textplot.Series{Name: "PMT"}
		gapRow := textplot.Series{Name: "gap %"}
		for i, p := range s.Points {
			xs[i] = fmt.Sprintf("%d", p.GPUs)
			slurmRow.Values = append(slurmRow.Values, p.SlurmNorm)
			pmtRow.Values = append(pmtRow.Values, p.PMTNorm)
			gapRow.Values = append(gapRow.Values, 100*(p.SlurmJ-p.PMTJ)/p.SlurmJ)
		}
		b.WriteString(textplot.SeriesTable(s.System, "GPUs", xs, []textplot.Series{slurmRow, pmtRow, gapRow}))
		fmt.Fprintf(&b, "max relative gap: %.2f%% (PMT excludes the job-setup phase)\n", 100*s.MaxRelativeGap())
		// Weak-scaling efficiency from the PMT loop measurements.
		ranks := make([]int, len(s.Points))
		ts := make([]float64, len(s.Points))
		es := make([]float64, len(s.Points))
		for i, p := range s.Points {
			ranks[i], ts[i], es[i] = p.GPUs, p.LoopTimeS, p.PMTJ
		}
		ws := report.WeakScaling(ranks, ts, es)
		fmt.Fprintf(&b, "weak-scaling efficiency at %d GPUs: %.3f, energy/GPU ratio: %.3f\n\n",
			ws[len(ws)-1].Ranks, ws[len(ws)-1].Efficiency,
			ws[len(ws)-1].EnergyPerRank/ws[0].EnergyPerRank)
	}
	return b.String()
}
