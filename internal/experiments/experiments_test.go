package experiments

import (
	"fmt"
	"strings"
	"testing"

	"sphenergy/internal/core"
)

// testScale shrinks step counts for test runtime; shapes are invariant.
const testScale = 0.1

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			r, err := Run(name, testScale)
			if err != nil {
				t.Fatal(err)
			}
			out := r.Render()
			if len(out) < 40 {
				t.Errorf("suspiciously short render:\n%s", out)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableIContent(t *testing.T) {
	data := TableI()
	if len(data.Simulations) != 2 || len(data.Systems) != 3 {
		t.Fatal("Table I dimensions")
	}
	out := data.Render()
	for _, want := range []string{
		"Subsonic Turbulence", "Evrard Collapse",
		"LUMI-G", "CSCS-A100", "miniHPC",
		"150 M particles/GPU", "80 M particles/GPU",
		"1410", "1700", "1593", "1600",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	// Rank counts: 14.7 B turbulence particles at 150 M/GPU = 98 GPUs.
	if got := data.Simulations[0].RanksFor(14.7); got != 98 {
		t.Errorf("RanksFor(14.7B) = %d, want 98", got)
	}
}

func TestFig1Shape(t *testing.T) {
	d := Fig1()
	if len(d.Points) < 5 {
		t.Fatal("too few implementations")
	}
	// CUDA is both fastest and most energy-efficient (the figure's point).
	first := d.Points[0]
	if !strings.Contains(first.Implementation, "CUDA") {
		t.Errorf("fastest implementation %q, want CUDA", first.Implementation)
	}
	for _, p := range d.Points[1:] {
		if p.EnergyKWh <= first.EnergyKWh {
			t.Errorf("%s should consume more energy than CUDA", p.Implementation)
		}
	}
}

func TestFig2TunedFrequencies(t *testing.T) {
	d, err := Fig2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 10 {
		t.Fatalf("%d rows", len(d.Rows))
	}
	me := d.BestFor(core.FnMomentum)
	iad := d.BestFor(core.FnIAD)
	xm := d.BestFor(core.FnXMass)
	if me < 1350 {
		t.Errorf("MomentumEnergy tuned to %d MHz, want >= 1350 (most compute-bound)", me)
	}
	if iad < 1300 {
		t.Errorf("IAD tuned to %d MHz, want >= 1300", iad)
	}
	if xm > 1110 {
		t.Errorf("XMass tuned to %d MHz, want <= 1110 (paper: light kernels tune low)", xm)
	}
	for _, r := range d.Rows {
		if r.BestMHz < d.MinMHz || r.BestMHz > d.MaxMHz {
			t.Errorf("%s tuned outside the search range: %d", r.Function, r.BestMHz)
		}
		if len(r.Sweep) == 0 {
			t.Errorf("%s has no sweep data", r.Function)
		}
	}
}

func TestFig3PMTvsSlurm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-allocation campaign")
	}
	d, err := Fig3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 2 {
		t.Fatal("want CSCS and LUMI series")
	}
	for _, s := range d.Series {
		if len(s.Points) != 6 {
			t.Errorf("%s: %d points", s.System, len(s.Points))
		}
		for _, p := range s.Points {
			if p.PMTJ >= p.SlurmJ {
				t.Errorf("%s %d GPUs: PMT %.0f >= Slurm %.0f (PMT must exclude setup)",
					s.System, p.GPUs, p.PMTJ, p.SlurmJ)
			}
		}
		// Strong match: the gap stays below 15% even at this reduced scale
		// (at full scale it is a few percent).
		if gap := s.MaxRelativeGap(); gap > 0.15 {
			t.Errorf("%s: max PMT/Slurm gap %.3f too large", s.System, gap)
		}
		// Weak scaling: energy grows with allocation size.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].SlurmJ <= s.Points[i-1].SlurmJ {
				t.Errorf("%s: energy not increasing with GPUs", s.System)
			}
		}
	}
}

func TestFig6SmallProblemsBenefitMore(t *testing.T) {
	if testing.Short() {
		t.Skip("frequency x size sweep")
	}
	d, err := Fig6(testScale)
	if err != nil {
		t.Fatal(err)
	}
	small, ok1 := d.SeriesFor(200)
	large, ok2 := d.SeriesFor(450)
	if !ok1 || !ok2 {
		t.Fatal("missing series")
	}
	// At the lowest frequency the small problem gains more EDP than the
	// large one (underutilized GPU, §IV-C).
	sLast := small.Points[len(small.Points)-1].EDPNorm
	lLast := large.Points[len(large.Points)-1].EDPNorm
	if sLast >= lLast {
		t.Errorf("200^3 EDP at 1005 (%.4f) should be below 450^3's (%.4f)", sLast, lLast)
	}
	if small.BestMHz > large.BestMHz {
		t.Errorf("200^3 best %d MHz should not exceed 450^3 best %d MHz", small.BestMHz, large.BestMHz)
	}
	// EDP at the best frequency is below baseline for every size.
	for _, s := range d.Series {
		for _, p := range s.Points {
			if p.MHz == s.BestMHz && p.EDPNorm >= 1 {
				t.Errorf("%d^3: best frequency does not improve EDP", s.NSide)
			}
		}
	}
}

func TestFig7StrategyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("full strategy sweep")
	}
	d, err := Fig7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	md, ok := d.Row("mandyn")
	if !ok {
		t.Fatal("mandyn row missing")
	}
	if md.TimeNorm > 1.055 || md.TimeNorm < 1.0 {
		t.Errorf("ManDyn time %.4f, want (1.0, 1.055] (paper: 1.0295)", md.TimeNorm)
	}
	if md.EnergyNorm > 0.96 || md.EnergyNorm < 0.88 {
		t.Errorf("ManDyn energy %.4f, want [0.88, 0.96] (paper: ~0.92)", md.EnergyNorm)
	}
	st, _ := d.Row("static-1005")
	if md.EDPNorm >= st.EDPNorm {
		t.Errorf("ManDyn EDP %.4f should beat static-1005 %.4f", md.EDPNorm, st.EDPNorm)
	}
	dv, _ := d.Row("dvfs")
	if dv.EnergyNorm <= 1.0 {
		t.Errorf("DVFS energy %.4f, want > 1", dv.EnergyNorm)
	}
	if dv.TimeNorm > 1.06 {
		t.Errorf("DVFS time %.4f, want ~1", dv.TimeNorm)
	}
	// Static series: time increases monotonically as frequency drops.
	prev := 1.0
	for _, mhz := range []int{1380, 1335, 1275, 1230, 1170, 1110, 1050, 1005} {
		row, ok := d.Row(fmt.Sprintf("static-%d", mhz))
		if !ok {
			t.Fatalf("missing static-%d", mhz)
		}
		if row.TimeNorm < prev {
			t.Errorf("static-%d time %.4f below the previous frequency's", mhz, row.TimeNorm)
		}
		prev = row.TimeNorm
	}
}

func TestFig8PerFunctionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("frequency sweep per function")
	}
	d, err := Fig8(testScale)
	if err != nil {
		t.Fatal(err)
	}
	me, ok := d.CellFor(core.FnMomentum, 1005)
	if !ok {
		t.Fatal("MomentumEnergy@1005 missing")
	}
	if me.TimeNorm < 1.20 {
		t.Errorf("ME time at 1005 = %.3f, want > 1.20", me.TimeNorm)
	}
	if me.EnergyNorm < 0.80 || me.EnergyNorm > 0.92 {
		t.Errorf("ME energy at 1005 = %.3f, want [0.80, 0.92]", me.EnergyNorm)
	}
	xm, _ := d.CellFor(core.FnXMass, 1005)
	if xm.EDPNorm > 0.95 {
		t.Errorf("XMass EDP at 1005 = %.3f, want <= 0.95", xm.EDPNorm)
	}
	// Baseline column is exactly 1.
	for _, fn := range d.Functions {
		c := fn.Cells[0]
		if c.MHz != 1410 || c.TimeNorm != 1 || c.EnergyNorm != 1 {
			t.Errorf("%s baseline cell not normalized: %+v", fn.Name, c)
		}
	}
}

func TestFig9DVFSTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("10-step trace run")
	}
	d, err := Fig9(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Trace.Len() == 0 {
		t.Fatal("empty trace")
	}
	if len(d.StepBoundariesS) != 10 {
		t.Errorf("%d step boundaries, want 10", len(d.StepBoundariesS))
	}
	me := d.MeanClockMHz[core.FnMomentum]
	dd := d.MeanClockMHz[core.FnDomainDecomp]
	if me < 1380 {
		t.Errorf("MomentumEnergy mean clock %.0f, want ~1410 (boosts to max)", me)
	}
	if dd > me-150 {
		t.Errorf("DomainDecompAndSync mean clock %.0f should sit well below MomentumEnergy's %.0f", dd, me)
	}
	if dd < 1000 || dd > 1300 {
		t.Errorf("DomainDecompAndSync mean clock %.0f, want ~1200 (paper Fig. 9)", dd)
	}
	// Step-boundary communication lets the clock dip below 1000 MHz.
	if d.MinClockMHz >= 1000 {
		t.Errorf("min clock %d, want dips below 1000 MHz", d.MinClockMHz)
	}
	if d.MaxClockMHz != 1410 {
		t.Errorf("max clock %d, want 1410", d.MaxClockMHz)
	}
}

func TestExtAMDManDynWins(t *testing.T) {
	if testing.Short() {
		t.Skip("8-GCD node runs")
	}
	d, err := ExtAMD(testScale)
	if err != nil {
		t.Fatal(err)
	}
	md, ok := d.Row("mandyn")
	if !ok {
		t.Fatal("mandyn row missing")
	}
	if md.EnergyNorm >= 1 {
		t.Errorf("ManDyn on AMD energy %.4f, want < 1", md.EnergyNorm)
	}
	if md.EDPNorm >= 1 {
		t.Errorf("ManDyn on AMD EDP %.4f, want < 1", md.EDPNorm)
	}
	st, _ := d.Row("static-1000")
	if md.EDPNorm >= st.EDPNorm {
		t.Error("ManDyn should beat deep static down-scaling on AMD too")
	}
	// The AMD pipeline is heavily compute-bound (low code maturity), so
	// MomentumEnergy must tune to the maximum clock.
	if d.Table[core.FnMomentum] != 1700 {
		t.Errorf("ME tuned to %d on MI250X, want 1700", d.Table[core.FnMomentum])
	}
}

func TestFig4Fig5Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("32-rank cross-system runs")
	}
	f4, err := Fig4(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Breakdowns) != 4 {
		t.Fatal("want 4 breakdowns")
	}
	for _, b := range f4.Breakdowns {
		if s := b.GPUShare(); s < 0.65 || s > 0.85 {
			t.Errorf("%s GPU share %.3f, want [0.65, 0.85]", b.Label, s)
		}
		if strings.HasPrefix(b.Label, "LUMI") && !b.MemorySeparate {
			t.Errorf("%s should report memory separately", b.Label)
		}
		if strings.HasPrefix(b.Label, "CSCS") && b.MemorySeparate {
			t.Errorf("%s should fold memory into Other (§IV-B)", b.Label)
		}
	}

	f5, err := Fig5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	lumi := f5.ShareOf("LUMI-Turb", core.FnMomentum)
	cscs := f5.ShareOf("CSCS-A100-Turb", core.FnMomentum)
	if lumi <= cscs+0.10 {
		t.Errorf("ME share LUMI %.3f vs CSCS %.3f, want LUMI larger by >= 10pp", lumi, cscs)
	}
	for _, b := range f5.Breakdowns {
		top := b.TopConsumers(2)
		if top[0] != core.FnMomentum {
			t.Errorf("%s: top consumer %q, want MomentumEnergy", b.Label, top[0])
		}
	}
}

func TestExtPowerCapManDynWins(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy sweep")
	}
	d, err := ExtPowerCap(testScale)
	if err != nil {
		t.Fatal(err)
	}
	md, ok := d.Row("mandyn")
	if !ok {
		t.Fatal("mandyn row missing")
	}
	for _, r := range d.Rows {
		if !strings.HasPrefix(r.Name, "powercap-") {
			continue
		}
		if md.EDPNorm >= r.EDPNorm {
			t.Errorf("ManDyn EDP %.4f should beat %s EDP %.4f (targeted vs uniform derating)",
				md.EDPNorm, r.Name, r.EDPNorm)
		}
		// Tighter caps slow the run.
		if r.TimeNorm < 1.0 {
			t.Errorf("%s time %.4f below baseline", r.Name, r.TimeNorm)
		}
	}
}

func TestFig7ParetoFront(t *testing.T) {
	if testing.Short() {
		t.Skip("full strategy sweep")
	}
	d, err := Fig7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	front := d.ParetoOptimal()
	onFront := func(name string) bool {
		for _, n := range front {
			if n == name {
				return true
			}
		}
		return false
	}
	if !onFront("mandyn") {
		t.Errorf("ManDyn not Pareto-optimal: front = %v", front)
	}
	if !onFront("baseline-1410") {
		t.Errorf("the fastest configuration must be on the front: %v", front)
	}
	if onFront("dvfs") {
		t.Errorf("DVFS (slower AND more energy) should be dominated: %v", front)
	}
}
