// Package experiments contains one driver per table and figure of the
// paper's evaluation. Every driver runs the full pipeline on the simulated
// systems and renders the same rows/series the paper reports; EXPERIMENTS.md
// records paper-vs-measured values.
//
// Drivers accept a Scale knob: 1.0 reproduces the paper's step counts
// (100 time-steps); smaller values shrink step counts proportionally for
// quick runs and tests. Because time and energy are virtual, scaling steps
// changes absolute magnitudes but not the normalized shapes.
package experiments

import (
	"fmt"
	"sort"
)

// Renderable is an experiment result that can print itself.
type Renderable interface {
	Render() string
}

// Runner executes one experiment at a given scale.
type Runner func(scale float64) (Renderable, error)

// registry maps experiment ids ("table1", "fig2", ...) to runners.
var registry = map[string]Runner{
	"table1": func(s float64) (Renderable, error) { return TableI(), nil },
	"fig1":   func(s float64) (Renderable, error) { return Fig1(), nil },
	"fig2":   func(s float64) (Renderable, error) { return Fig2(s) },
	"fig3":   func(s float64) (Renderable, error) { return Fig3(s) },
	"fig4":   func(s float64) (Renderable, error) { return Fig4(s) },
	"fig5":   func(s float64) (Renderable, error) { return Fig5(s) },
	"fig6":   func(s float64) (Renderable, error) { return Fig6(s) },
	"fig7":   func(s float64) (Renderable, error) { return Fig7(s) },
	"fig8":   func(s float64) (Renderable, error) { return Fig8(s) },
	"fig9":   func(s float64) (Renderable, error) { return Fig9(s) },
	// ext-amd realizes the paper's §V future work: the method on AMD GPUs.
	"ext-amd": func(s float64) (Renderable, error) { return ExtAMD(s) },
	// ext-powercap compares the frequency knob against power capping.
	"ext-powercap": func(s float64) (Renderable, error) { return ExtPowerCap(s) },
}

// Names lists the available experiment ids in order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes an experiment by id.
func Run(name string, scale float64) (Renderable, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	if scale <= 0 {
		scale = 1
	}
	return r(scale)
}

// steps converts the paper's 100-step runs to a scaled step count (>= 2).
func steps(scale float64) int {
	n := int(100*scale + 0.5)
	if n < 2 {
		n = 2
	}
	return n
}
