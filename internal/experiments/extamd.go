package experiments

import (
	"fmt"
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/report"
	"sphenergy/internal/tuner"
)

// ExtAMDData is the paper's §V future-work experiment realized: the ManDyn
// method applied to AMD GPUs (LUMI-G MI250X GCDs) — per-kernel frequency
// tuning through the ROCm-SMI control path and the strategy comparison on
// an 8-GCD node.
type ExtAMDData struct {
	Table map[string]int
	Rows  []Fig7Row
}

// ExtAMD tunes the Turbulence pipeline on an MI250X GCD (EDP objective,
// 1000 MHz up to the 1700 MHz maximum) and compares baseline, static
// down-scaling, DVFS and ManDyn on one LUMI-G node.
func ExtAMD(scale float64) (*ExtAMDData, error) {
	spec := cluster.LUMIG()
	d := &ExtAMDData{Table: map[string]int{}}

	cfg := tuner.Config{
		Spec:      spec.GPUSpec,
		Params:    tuner.Params{MinMHz: 1000, MaxMHz: spec.GPUSpec.MaxSMClockMHz},
		Objective: tuner.EDP,
		Cache:     sessionCache,
	}
	for _, fn := range core.TurbulencePipeline() {
		res, err := tuner.TuneKernel(fn.Name, fn.Kernel(80e6, 150, spec.GPUSpec.Vendor), cfg)
		if err != nil {
			return nil, err
		}
		d.Table[fn.Name] = res.Best.MHz
	}

	type sc struct {
		name string
		mk   func() freqctl.Strategy
	}
	table := d.Table
	cfgs := []sc{
		{"baseline-1700", func() freqctl.Strategy { return freqctl.Baseline{} }},
		{"static-1000", func() freqctl.Strategy { return freqctl.Static{MHz: 1000} }},
		{"dvfs", func() freqctl.Strategy { return freqctl.DVFS{} }},
		{"mandyn", func() freqctl.Strategy { return &freqctl.ManDyn{Table: table} }},
	}
	var baseT, baseE float64
	for _, c := range cfgs {
		res, err := core.Run(core.Config{
			System:           spec,
			Ranks:            8, // one full LUMI-G node
			Sim:              core.Turbulence,
			ParticlesPerRank: 80e6,
			Steps:            steps(scale),
			NewStrategy:      c.mk,
		})
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Name: c.name, TimeS: res.WallTimeS, GPUJ: res.GPUEnergyJ()}
		if c.name == "baseline-1700" {
			baseT, baseE = row.TimeS, row.GPUJ
		}
		row.TimeNorm = row.TimeS / baseT
		row.EnergyNorm = row.GPUJ / baseE
		row.EDPNorm = row.TimeNorm * row.EnergyNorm
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Row returns a named configuration's results.
func (d *ExtAMDData) Row(name string) (Fig7Row, bool) {
	for _, r := range d.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return Fig7Row{}, false
}

// Render implements Renderable.
func (d *ExtAMDData) Render() string {
	var b strings.Builder
	b.WriteString("EXTENSION — ManDyn on AMD MI250X (LUMI-G, one node, 8 GCDs; the paper's §V future work)\n\n")
	b.WriteString("tuned per-function clocks (ROCm-SMI control path):\n")
	for _, fn := range core.PipelineFunctionNames(core.Turbulence) {
		fmt.Fprintf(&b, "  %-22s %4d MHz\n", fn, d.Table[fn])
	}
	rows := make([]report.Normalized, 0, len(d.Rows))
	for _, r := range d.Rows {
		rows = append(rows, report.Normalized{
			Name: r.Name, TimeRatio: r.TimeNorm, EnergyRatio: r.EnergyNorm, EDPRatio: r.EDPNorm,
		})
	}
	b.WriteString("\n" + report.RenderNormalizedTable("", rows))
	return b.String()
}
