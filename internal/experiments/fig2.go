package experiments

import (
	"fmt"
	"strings"

	"sphenergy/internal/core"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/textplot"
	"sphenergy/internal/tuner"
)

// particles450Cubed is the paper's per-GPU tuning problem size.
const particles450Cubed = 450 * 450 * 450

// Fig2Row is one function's tuning outcome.
type Fig2Row struct {
	Function string
	BestMHz  int
	// Beta is the kernel's measured frequency sensitivity, kept for
	// interpretation: compute-bound kernels tune to high clocks.
	Beta float64
	// Sweep holds the full measured EDP curve (descending MHz).
	Sweep []tuner.Measurement
}

// Fig2Data is the per-function best-EDP frequency table of Fig. 2.
type Fig2Data struct {
	Rows           []Fig2Row
	Spec           gpusim.Spec
	MinMHz, MaxMHz int
}

// Fig2 runs the KernelTuner-style frequency search for every SPH-EXA
// function of the Subsonic Turbulence pipeline at 450³ particles on a
// single A100, optimizing EDP over 1005–1410 MHz (§III-C).
func Fig2(scale float64) (*Fig2Data, error) {
	spec := gpusim.A100PCIE40GB()
	d := &Fig2Data{Spec: spec, MinMHz: 1005, MaxMHz: 1410}
	cfg := tuner.Config{
		Spec:       spec,
		Params:     tuner.Params{MinMHz: d.MinMHz, MaxMHz: d.MaxMHz},
		Objective:  tuner.EDP,
		Strategy:   tuner.BruteForce,
		Iterations: 3,
		Cache:      sessionCache,
	}
	for _, fn := range core.TurbulencePipeline() {
		kernel := fn.Kernel(particles450Cubed, 150, spec.Vendor)
		res, err := tuner.TuneKernel(fn.Name, kernel, cfg)
		if err != nil {
			return nil, err
		}
		d.Rows = append(d.Rows, Fig2Row{
			Function: fn.Name,
			BestMHz:  res.Best.MHz,
			Beta:     kernel.FrequencySensitivity(spec),
			Sweep:    res.All,
		})
	}
	return d, nil
}

// Table returns the ManDyn frequency table this tuning produces.
func (d *Fig2Data) Table() map[string]int {
	out := make(map[string]int, len(d.Rows))
	for _, r := range d.Rows {
		out[r.Function] = r.BestMHz
	}
	return out
}

// BestFor returns the tuned frequency of one function (0 when absent).
func (d *Fig2Data) BestFor(fn string) int {
	for _, r := range d.Rows {
		if r.Function == fn {
			return r.BestMHz
		}
	}
	return 0
}

// Render implements Renderable.
func (d *Fig2Data) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG. 2 — best-EDP GPU compute frequency per function (450^3 particles, %d-%d MHz)\n\n",
		d.MinMHz, d.MaxMHz)
	bars := make([]textplot.Bar, 0, len(d.Rows))
	for _, r := range d.Rows {
		bars = append(bars, textplot.Bar{Label: r.Function, Value: float64(r.BestMHz), Annotation: "MHz"})
	}
	b.WriteString(textplot.BarChart("", bars, 40))
	b.WriteString("\nfrequency sensitivity (beta): compute-bound kernels tune high\n")
	for _, r := range d.Rows {
		fmt.Fprintf(&b, "  %-22s beta=%.2f -> %d MHz\n", r.Function, r.Beta, r.BestMHz)
	}
	return b.String()
}
