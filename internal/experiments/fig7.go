package experiments

import (
	"fmt"
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/report"
	"sphenergy/internal/tuner"
)

// Fig7Row is one configuration of the strategy comparison.
type Fig7Row struct {
	Name  string
	TimeS float64
	GPUJ  float64
	// Normalized to the 1410 MHz baseline.
	TimeNorm, EnergyNorm, EDPNorm float64
}

// Fig7Data compares time-to-solution, energy and EDP of the baseline,
// static down-scaling, hardware DVFS, and ManDyn (the paper's per-function
// dynamic frequency setting) for Subsonic Turbulence at 450³ particles on a
// single A100.
type Fig7Data struct {
	Rows []Fig7Row
	// ManDynTable is the tuned per-function frequency table used (from the
	// Fig. 2 tuning pass).
	ManDynTable map[string]int
}

// Fig7 runs the strategy comparison. The ManDyn table comes from the same
// KernelTuner-style pass that generates Fig. 2 — the paper's workflow.
func Fig7(scale float64) (*Fig7Data, error) {
	tuned, err := Fig2(scale)
	if err != nil {
		return nil, err
	}
	table := tuned.Table()
	d := &Fig7Data{ManDynTable: table}

	type cfg struct {
		name string
		mk   func() freqctl.Strategy
	}
	var cfgs []cfg
	cfgs = append(cfgs, cfg{"baseline-1410", func() freqctl.Strategy { return freqctl.Baseline{} }})
	for _, mhz := range []int{1380, 1335, 1275, 1230, 1170, 1110, 1050, 1005} {
		mhz := mhz
		cfgs = append(cfgs, cfg{fmt.Sprintf("static-%d", mhz), func() freqctl.Strategy { return freqctl.Static{MHz: mhz} }})
	}
	cfgs = append(cfgs, cfg{"dvfs", func() freqctl.Strategy { return freqctl.DVFS{} }})
	cfgs = append(cfgs, cfg{"mandyn", func() freqctl.Strategy { return &freqctl.ManDyn{Table: table} }})

	nsteps := steps(scale)
	var baseT, baseE float64
	for _, c := range cfgs {
		res, err := core.Run(core.Config{
			System:           cluster.MiniHPC(),
			Ranks:            1,
			Sim:              core.Turbulence,
			ParticlesPerRank: particles450Cubed,
			Steps:            nsteps,
			NewStrategy:      c.mk,
		})
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Name: c.name, TimeS: res.WallTimeS, GPUJ: res.GPUEnergyJ()}
		if c.name == "baseline-1410" {
			baseT, baseE = row.TimeS, row.GPUJ
		}
		row.TimeNorm = row.TimeS / baseT
		row.EnergyNorm = row.GPUJ / baseE
		row.EDPNorm = row.TimeNorm * row.EnergyNorm
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// ParetoOptimal returns the names of the strategies on the (time, energy)
// Pareto front — §IV-D frames dynamic frequency setting as identifying
// exactly these configurations.
func (d *Fig7Data) ParetoOptimal() []string {
	ms := make([]tuner.Measurement, len(d.Rows))
	for i, r := range d.Rows {
		ms[i] = tuner.Measurement{MHz: i, TimeS: r.TimeS, EnergyJ: r.GPUJ}
	}
	front := tuner.ParetoFront(ms)
	names := make([]string, len(front))
	for i, m := range front {
		names[i] = d.Rows[m.MHz].Name
	}
	return names
}

// Row returns a named configuration's results.
func (d *Fig7Data) Row(name string) (Fig7Row, bool) {
	for _, r := range d.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return Fig7Row{}, false
}

// Render implements Renderable.
func (d *Fig7Data) Render() string {
	var b strings.Builder
	b.WriteString("FIG. 7 — time / energy / EDP vs frequency strategy (450^3, single A100, normalized)\n\n")
	rows := make([]report.Normalized, 0, len(d.Rows))
	for _, r := range d.Rows {
		rows = append(rows, report.Normalized{
			Name: r.Name, TimeRatio: r.TimeNorm, EnergyRatio: r.EnergyNorm, EDPRatio: r.EDPNorm,
		})
	}
	b.WriteString(report.RenderNormalizedTable("", rows))
	if md, ok := d.Row("mandyn"); ok {
		fmt.Fprintf(&b, "\nManDyn: %+.2f%% time, %+.2f%% energy, %+.2f%% EDP vs baseline\n",
			100*(md.TimeNorm-1), 100*(md.EnergyNorm-1), 100*(md.EDPNorm-1))
	}
	fmt.Fprintf(&b, "Pareto-optimal configurations (time vs energy): %s\n",
		strings.Join(d.ParetoOptimal(), ", "))
	return b.String()
}
