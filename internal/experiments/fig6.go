package experiments

import (
	"fmt"
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/textplot"
)

// fig6Freqs are the static frequencies swept in Figs. 6-8 (MHz, descending).
var fig6Freqs = []int{1410, 1380, 1335, 1275, 1230, 1170, 1110, 1050, 1005}

// fig6Sizes are the per-GPU lattice sizes of Fig. 6.
var fig6Sizes = []int{200, 250, 300, 350, 400, 450}

// Fig6Point is one (size, frequency) cell: EDP normalized to 1410 MHz.
type Fig6Point struct {
	MHz      int
	EDPNorm  float64
	TimeNorm float64
}

// Fig6Series is the frequency sweep of one problem size.
type Fig6Series struct {
	NSide   int
	Points  []Fig6Point
	BestMHz int // frequency with the lowest EDP
}

// Fig6Data shows how statically down-scaling the GPU frequency changes EDP
// for different problem sizes on a single A100 (miniHPC): small problems
// leave the GPU underutilized and tolerate (indeed prefer) lower clocks.
type Fig6Data struct {
	Series []Fig6Series
}

// Fig6 sweeps GPU frequency × problem size on a single miniHPC A100.
func Fig6(scale float64) (*Fig6Data, error) {
	d := &Fig6Data{}
	nsteps := steps(scale)
	for _, nside := range fig6Sizes {
		ppr := float64(nside) * float64(nside) * float64(nside)
		series := Fig6Series{NSide: nside}
		var baseEDP, baseTime float64
		for _, mhz := range fig6Freqs {
			mhz := mhz
			res, err := core.Run(core.Config{
				System:           cluster.MiniHPC(),
				Ranks:            1,
				Sim:              core.Turbulence,
				ParticlesPerRank: ppr,
				Steps:            nsteps,
				NewStrategy:      func() freqctl.Strategy { return freqctl.Static{MHz: mhz} },
			})
			if err != nil {
				return nil, err
			}
			edp := res.GPUEDP()
			if mhz == fig6Freqs[0] {
				baseEDP, baseTime = edp, res.WallTimeS
			}
			series.Points = append(series.Points, Fig6Point{
				MHz:      mhz,
				EDPNorm:  edp / baseEDP,
				TimeNorm: res.WallTimeS / baseTime,
			})
		}
		best := series.Points[0]
		for _, p := range series.Points[1:] {
			if p.EDPNorm < best.EDPNorm {
				best = p
			}
		}
		series.BestMHz = best.MHz
		d.Series = append(d.Series, series)
	}
	return d, nil
}

// SeriesFor returns the sweep of one lattice size.
func (d *Fig6Data) SeriesFor(nside int) (Fig6Series, bool) {
	for _, s := range d.Series {
		if s.NSide == nside {
			return s, true
		}
	}
	return Fig6Series{}, false
}

// Render implements Renderable.
func (d *Fig6Data) Render() string {
	var b strings.Builder
	b.WriteString("FIG. 6 — EDP vs static GPU frequency by problem size (single A100, normalized to 1410 MHz)\n\n")
	xs := make([]string, len(fig6Freqs))
	for i, f := range fig6Freqs {
		xs[i] = fmt.Sprintf("%d", f)
	}
	var rows []textplot.Series
	for _, s := range d.Series {
		row := textplot.Series{Name: fmt.Sprintf("%d^3", s.NSide)}
		for _, p := range s.Points {
			row.Values = append(row.Values, p.EDPNorm)
		}
		rows = append(rows, row)
	}
	b.WriteString(textplot.SeriesTable("normalized EDP", "MHz", xs, rows))
	b.WriteString("\nbest-EDP frequency per size:\n")
	for _, s := range d.Series {
		fmt.Fprintf(&b, "  %d^3 -> %d MHz\n", s.NSide, s.BestMHz)
	}
	return b.String()
}
