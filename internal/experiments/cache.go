package experiments

import "sphenergy/internal/tuner"

// sessionCache memoizes tuner measurements for the lifetime of the process.
// Several drivers repeat the same sweep — Fig. 7 and the power-cap extension
// each re-run Fig. 2's per-function tuning to obtain the ManDyn table — and
// with `-run all` every repeat would otherwise re-measure 28 clocks per
// pipeline function. Cached replays are bit-identical to fresh measurements
// (see tuner.Cache), so figure outputs are unchanged.
var sessionCache = tuner.NewCache()
