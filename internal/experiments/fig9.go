package experiments

import (
	"fmt"
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/textplot"
)

// Fig9Data is the DVFS frequency trace of a 10-time-step Subsonic
// Turbulence run on a single A100 under governor control (§IV-E).
type Fig9Data struct {
	Trace           *gpusim.Trace
	StepBoundariesS []float64
	// Per-kernel mean clocks, the quantities the paper reads off the trace.
	MeanClockMHz map[string]float64
	MinClockMHz  int
	MaxClockMHz  int
}

// Fig9 records the frequencies the DVFS governor sets during 10 time-steps.
func Fig9(scale float64) (*Fig9Data, error) {
	res, err := core.Run(core.Config{
		System:           cluster.MiniHPC(),
		Ranks:            1,
		Sim:              core.Turbulence,
		ParticlesPerRank: particles450Cubed,
		Steps:            10,
		NewStrategy:      func() freqctl.Strategy { return freqctl.DVFS{} },
		Trace:            true,
	})
	if err != nil {
		return nil, err
	}
	d := &Fig9Data{
		Trace:           res.Trace,
		StepBoundariesS: res.StepBoundariesS,
		MeanClockMHz:    map[string]float64{},
	}
	for _, fn := range core.PipelineFunctionNames(core.Turbulence) {
		if m, ok := res.Trace.ClockOfKernel(fn); ok {
			d.MeanClockMHz[fn] = m
		}
	}
	d.MinClockMHz, d.MaxClockMHz = res.Trace.MinMaxClock()
	return d, nil
}

// Render implements Renderable.
func (d *Fig9Data) Render() string {
	var b strings.Builder
	b.WriteString("FIG. 9 — DVFS-set device frequencies during 10 time-steps (450^3, single A100)\n\n")
	pts := d.Trace.Points()
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.TimeS
		ys[i] = float64(p.ClockMHz)
	}
	b.WriteString(textplot.LinePlot("SM clock (MHz) vs time (s)", xs, ys, 90, 14))
	b.WriteString("\nmean clock while executing each function:\n")
	for _, fn := range core.PipelineFunctionNames(core.Turbulence) {
		if m, ok := d.MeanClockMHz[fn]; ok {
			fmt.Fprintf(&b, "  %-22s %6.0f MHz\n", fn, m)
		}
	}
	fmt.Fprintf(&b, "observed clock range: %d - %d MHz\n", d.MinClockMHz, d.MaxClockMHz)
	return b.String()
}
