package experiments

import (
	"fmt"
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/report"
)

// ExtPowerCapData compares the paper's frequency-scaling knob against
// power capping on the 450³ single-A100 workload: both derate the device,
// but frequency scaling is workload-targeted (ManDyn) while a cap derates
// every kernel uniformly through the governor.
type ExtPowerCapData struct {
	Rows []Fig7Row
}

// ExtPowerCap sweeps power caps alongside the frequency strategies.
func ExtPowerCap(scale float64) (*ExtPowerCapData, error) {
	tuned, err := Fig2(scale)
	if err != nil {
		return nil, err
	}
	table := tuned.Table()

	type sc struct {
		name string
		mk   func() freqctl.Strategy
	}
	cfgs := []sc{
		{"baseline-1410", func() freqctl.Strategy { return freqctl.Baseline{} }},
		{"static-1005", func() freqctl.Strategy { return freqctl.Static{MHz: 1005} }},
		{"mandyn", func() freqctl.Strategy { return &freqctl.ManDyn{Table: table} }},
	}
	for _, w := range []float64{220, 190, 160} {
		w := w
		cfgs = append(cfgs, sc{fmt.Sprintf("powercap-%.0f", w),
			func() freqctl.Strategy { return freqctl.PowerCap{Watts: w} }})
	}

	d := &ExtPowerCapData{}
	var baseT, baseE float64
	for _, c := range cfgs {
		res, err := core.Run(core.Config{
			System:           cluster.MiniHPC(),
			Ranks:            1,
			Sim:              core.Turbulence,
			ParticlesPerRank: particles450Cubed,
			Steps:            steps(scale),
			NewStrategy:      c.mk,
		})
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Name: c.name, TimeS: res.WallTimeS, GPUJ: res.GPUEnergyJ()}
		if c.name == "baseline-1410" {
			baseT, baseE = row.TimeS, row.GPUJ
		}
		row.TimeNorm = row.TimeS / baseT
		row.EnergyNorm = row.GPUJ / baseE
		row.EDPNorm = row.TimeNorm * row.EnergyNorm
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// Row returns a named configuration's results.
func (d *ExtPowerCapData) Row(name string) (Fig7Row, bool) {
	for _, r := range d.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return Fig7Row{}, false
}

// Render implements Renderable.
func (d *ExtPowerCapData) Render() string {
	var b strings.Builder
	b.WriteString("EXTENSION — frequency scaling vs power capping (450^3, single A100, normalized)\n\n")
	rows := make([]report.Normalized, 0, len(d.Rows))
	for _, r := range d.Rows {
		rows = append(rows, report.Normalized{
			Name: r.Name, TimeRatio: r.TimeNorm, EnergyRatio: r.EnergyNorm, EDPRatio: r.EDPNorm,
		})
	}
	b.WriteString(report.RenderNormalizedTable("", rows))
	b.WriteString("\npower caps derate every kernel uniformly; ManDyn's per-kernel clocks\n")
	b.WriteString("target only the kernels whose EDP benefits — the paper's argument for\n")
	b.WriteString("application-level control.\n")
	return b.String()
}
