package experiments

import (
	"fmt"
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/instr"
	"sphenergy/internal/textplot"
)

// Fig8Cell is one (function, frequency) measurement, normalized to the
// function's 1410 MHz baseline.
type Fig8Cell struct {
	MHz        int
	TimeNorm   float64
	EnergyNorm float64
	EDPNorm    float64
}

// Fig8Function is the sweep of one function.
type Fig8Function struct {
	Name  string
	Cells []Fig8Cell
}

// Fig8Data holds the per-function effect of static frequency down-scaling
// on (a) execution time, (b) energy, (c) EDP for the 450³ Turbulence run.
type Fig8Data struct {
	Functions []Fig8Function
	Freqs     []int
}

// Fig8 sweeps static frequencies and attributes time and GPU energy per
// instrumented function.
func Fig8(scale float64) (*Fig8Data, error) {
	freqs := []int{1410, 1380, 1335, 1275, 1230, 1170, 1110, 1050, 1005}
	d := &Fig8Data{Freqs: freqs}
	nsteps := steps(scale)

	reports := make(map[int]*instr.Report, len(freqs))
	for _, mhz := range freqs {
		mhz := mhz
		res, err := core.Run(core.Config{
			System:           cluster.MiniHPC(),
			Ranks:            1,
			Sim:              core.Turbulence,
			ParticlesPerRank: particles450Cubed,
			Steps:            nsteps,
			NewStrategy:      func() freqctl.Strategy { return freqctl.Static{MHz: mhz} },
		})
		if err != nil {
			return nil, err
		}
		reports[mhz] = res.Report
	}

	base := reports[freqs[0]]
	for _, name := range base.FunctionNames() {
		bst := base.FunctionTotal(name)
		fn := Fig8Function{Name: name}
		for _, mhz := range freqs {
			st := reports[mhz].FunctionTotal(name)
			cell := Fig8Cell{MHz: mhz}
			if bst.TimeS > 0 {
				cell.TimeNorm = st.TimeS / bst.TimeS
			}
			if bst.GPUJ > 0 {
				cell.EnergyNorm = st.GPUJ / bst.GPUJ
			}
			cell.EDPNorm = cell.TimeNorm * cell.EnergyNorm
			fn.Cells = append(fn.Cells, cell)
		}
		d.Functions = append(d.Functions, fn)
	}
	return d, nil
}

// CellFor returns the measurement of one function at one frequency.
func (d *Fig8Data) CellFor(fn string, mhz int) (Fig8Cell, bool) {
	for _, f := range d.Functions {
		if f.Name != fn {
			continue
		}
		for _, c := range f.Cells {
			if c.MHz == mhz {
				return c, true
			}
		}
	}
	return Fig8Cell{}, false
}

// Render implements Renderable.
func (d *Fig8Data) Render() string {
	var b strings.Builder
	b.WriteString("FIG. 8 — per-function effect of static frequency down-scaling (450^3, normalized to 1410 MHz)\n")
	xs := make([]string, len(d.Freqs))
	for i, f := range d.Freqs {
		xs[i] = fmt.Sprintf("%d", f)
	}
	for _, metric := range []struct {
		title string
		get   func(Fig8Cell) float64
	}{
		{"(a) execution time", func(c Fig8Cell) float64 { return c.TimeNorm }},
		{"(b) energy", func(c Fig8Cell) float64 { return c.EnergyNorm }},
		{"(c) EDP", func(c Fig8Cell) float64 { return c.EDPNorm }},
	} {
		var rows []textplot.Series
		for _, fn := range d.Functions {
			row := textplot.Series{Name: fn.Name}
			for _, c := range fn.Cells {
				row.Values = append(row.Values, metric.get(c))
			}
			rows = append(rows, row)
		}
		b.WriteString("\n" + textplot.SeriesTable(metric.title, "MHz", xs, rows))
	}
	return b.String()
}
