package experiments

import (
	"fmt"
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
)

// SimulationParams is one row of Table I's simulation half.
type SimulationParams struct {
	Name            string
	Kind            core.SimKind
	ParticleCountsB []float64 // total particle counts in billions (-n)
	Steps           int       // -s
	ParticlesPerGPU float64
}

// TableIData is the full Table I content: the simulation campaigns and the
// three system descriptions.
type TableIData struct {
	Simulations []SimulationParams
	Systems     []cluster.NodeSpec
}

// TableI returns the paper's Table I, generated from the same cluster specs
// and simulation configurations every experiment uses (so the table cannot
// drift from the code).
func TableI() *TableIData {
	return &TableIData{
		Simulations: []SimulationParams{
			{
				Name:            "Subsonic Turbulence",
				Kind:            core.Turbulence,
				ParticleCountsB: []float64{0.6, 1.2, 2.4, 4.9, 7.4, 9.2, 14.7},
				Steps:           100,
				ParticlesPerGPU: 150e6,
			},
			{
				Name:            "Evrard Collapse",
				Kind:            core.Evrard,
				ParticleCountsB: []float64{0.6, 1.2, 2.4, 3.2, 4.8, 7.7},
				Steps:           100,
				ParticlesPerGPU: 80e6,
			},
		},
		Systems: []cluster.NodeSpec{cluster.LUMIG(), cluster.CSCSA100(), cluster.MiniHPC()},
	}
}

// RanksFor returns the rank count a campaign size needs on a system.
func (s SimulationParams) RanksFor(totalParticlesB float64) int {
	return int(totalParticlesB*1e9/s.ParticlesPerGPU + 0.5)
}

// Render implements Renderable.
func (t *TableIData) Render() string {
	var b strings.Builder
	b.WriteString("TABLE I — Simulation and computing system parameters\n\n")
	fmt.Fprintf(&b, "%-22s %-38s %s\n", "Simulation", "Parameters", "Info")
	for _, s := range t.Simulations {
		counts := make([]string, len(s.ParticleCountsB))
		for i, c := range s.ParticleCountsB {
			counts[i] = fmt.Sprintf("%.1f", c)
		}
		fmt.Fprintf(&b, "%-22s -n %s B particles -s %d      %.0f M particles/GPU | %d steps\n",
			s.Name, strings.Join(counts, " | "), s.Steps, s.ParticlesPerGPU/1e6, s.Steps)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s %-58s %s\n", "System", "Hardware of each Node", "GPU Frequencies")
	for _, sys := range t.Systems {
		hw := fmt.Sprintf("%d x %d-core %s, %.0f GB mem, %d x %s",
			sys.NumCPUs, sys.CPUModel.Cores, sys.CPUModel.Name,
			sys.MemModel.SizeGB, sys.NumGPUDies/sys.DiesPerCard, sys.GPUSpec.Name)
		if sys.DiesPerCard > 1 {
			hw += fmt.Sprintf(" (%d dies/card)", sys.DiesPerCard)
		}
		freq := fmt.Sprintf("compute %d MHz, memory %d MHz",
			sys.GPUSpec.MaxSMClockMHz, sys.GPUSpec.MemClockMHz)
		fmt.Fprintf(&b, "%-12s %-58s %s\n", sys.Name, hw, freq)
	}
	return b.String()
}
