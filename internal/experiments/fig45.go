package experiments

import (
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/report"
)

// fig45Case is one of the four runs shared by Figs. 4 and 5.
type fig45Case struct {
	label string
	spec  cluster.NodeSpec
	sim   core.SimKind
	ppr   float64
}

func fig45Cases() []fig45Case {
	return []fig45Case{
		{"LUMI-Turb", cluster.LUMIG(), core.Turbulence, 150e6},
		{"LUMI-Evr", cluster.LUMIG(), core.Evrard, 80e6},
		{"CSCS-A100-Turb", cluster.CSCSA100(), core.Turbulence, 150e6},
		{"CSCS-A100-Evr", cluster.CSCSA100(), core.Evrard, 80e6},
	}
}

func runFig45Case(c fig45Case, scale float64) (*core.Result, error) {
	return core.Run(core.Config{
		System:           c.spec,
		Ranks:            32,
		Sim:              c.sim,
		ParticlesPerRank: c.ppr,
		Steps:            steps(scale),
	})
}

// Fig4Data is the per-device energy breakdown of the four 32-rank runs.
type Fig4Data struct {
	Breakdowns []report.DeviceBreakdown
}

// Fig4 measures energy consumption per device class for Subsonic
// Turbulence and Evrard Collapse on LUMI-G and CSCS-A100 with 32 ranks.
func Fig4(scale float64) (*Fig4Data, error) {
	d := &Fig4Data{}
	for _, c := range fig45Cases() {
		res, err := runFig45Case(c, scale)
		if err != nil {
			return nil, err
		}
		d.Breakdowns = append(d.Breakdowns, report.NewDeviceBreakdown(res.Report, c.spec, c.label))
	}
	return d, nil
}

// Render implements Renderable.
func (d *Fig4Data) Render() string {
	var b strings.Builder
	b.WriteString("FIG. 4 — energy breakdown by device (32 ranks, 100 steps at scale 1.0)\n\n")
	for _, br := range d.Breakdowns {
		b.WriteString(br.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// Fig5Data is the per-function energy breakdown of the same four runs.
type Fig5Data struct {
	Breakdowns []report.FunctionBreakdown
}

// Fig5 measures per-function energy consumption for the four Fig. 4 runs,
// the level of detail normally unavailable to system-monitoring users.
func Fig5(scale float64) (*Fig5Data, error) {
	d := &Fig5Data{}
	for _, c := range fig45Cases() {
		res, err := runFig45Case(c, scale)
		if err != nil {
			return nil, err
		}
		d.Breakdowns = append(d.Breakdowns, report.NewFunctionBreakdown(res.Report, c.label))
	}
	return d, nil
}

// ShareOf returns the GPU-energy share of a function in a labeled run.
func (d *Fig5Data) ShareOf(label, fn string) float64 {
	for _, br := range d.Breakdowns {
		if br.Label == label {
			return br.Share(fn)
		}
	}
	return 0
}

// Render implements Renderable.
func (d *Fig5Data) Render() string {
	var b strings.Builder
	b.WriteString("FIG. 5 — energy breakdown by SPH-EXA function\n\n")
	for _, br := range d.Breakdowns {
		b.WriteString(br.Render())
		b.WriteString("top GPU-energy consumers: " + strings.Join(br.TopConsumers(3), ", ") + "\n\n")
	}
	return b.String()
}
