package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Fig1Point is one implementation in the energy-vs-runtime landscape.
type Fig1Point struct {
	Implementation string
	TimeToSolution float64 // normalized, CUDA GPU = 1
	EnergyKWh      float64 // normalized energy to solution
}

// Fig1Data reproduces the background figure the paper includes from
// Portegies Zwart (Nature Astronomy 2020): programming-language /
// implementation efficiency for N-body production codes. This is a
// background reproduction (the paper itself reprints the figure); the
// values here are an analytic model of the published landscape — compiled
// GPU implementations are roughly an order of magnitude more
// energy-efficient than CPU C++/Fortran, which are orders of magnitude
// ahead of interpreted Python.
type Fig1Data struct {
	Points []Fig1Point
}

// Fig1 builds the landscape from relative implementation efficiency
// factors (speed vs a CUDA baseline, and sustained node power).
func Fig1() *Fig1Data {
	type impl struct {
		name     string
		slowdown float64 // time vs CUDA GPU implementation
		powerW   float64 // sustained power of the platform used
	}
	impls := []impl{
		{"CUDA (GPU)", 1, 350},
		{"C++ (multicore)", 8, 280},
		{"Fortran (multicore)", 9, 280},
		{"Java", 25, 260},
		{"Python+numba", 40, 250},
		{"Python (interpreted)", 900, 240},
	}
	d := &Fig1Data{}
	for _, im := range impls {
		d.Points = append(d.Points, Fig1Point{
			Implementation: im.name,
			TimeToSolution: im.slowdown,
			EnergyKWh:      im.slowdown * im.powerW / (350), // normalized: CUDA = 1
		})
	}
	sort.Slice(d.Points, func(a, b int) bool { return d.Points[a].TimeToSolution < d.Points[b].TimeToSolution })
	return d
}

// Render implements Renderable.
func (d *Fig1Data) Render() string {
	var b strings.Builder
	b.WriteString("FIG. 1 (background) — implementation efficiency vs time to solution\n")
	b.WriteString("(normalized to the CUDA GPU implementation; model of Portegies Zwart 2020)\n\n")
	fmt.Fprintf(&b, "%-24s %16s %16s\n", "implementation", "time (rel)", "energy (rel)")
	for _, p := range d.Points {
		fmt.Fprintf(&b, "%-24s %16.1f %16.1f\n", p.Implementation, p.TimeToSolution, p.EnergyKWh)
	}
	return b.String()
}
