package freqctl

import (
	"strings"
	"testing"

	"sphenergy/internal/gpusim"
)

func nvidiaSetter(t *testing.T) (Setter, *gpusim.Device) {
	t.Helper()
	dev := gpusim.NewDevice(gpusim.A100SXM480GB(), 0)
	s, err := SetterFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func amdSetter(t *testing.T) (Setter, *gpusim.Device) {
	t.Helper()
	dev := gpusim.NewDevice(gpusim.MI250XGCD(), 0)
	s, err := SetterFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func TestSetterForBothVendors(t *testing.T) {
	sN, devN := nvidiaSetter(t)
	if sN.MaxSMClock() != 1410 {
		t.Errorf("nvidia max clock %d", sN.MaxSMClock())
	}
	applied, err := sN.SetSMClock(1005)
	if err != nil || applied != 1005 {
		t.Errorf("nvidia set: %d, %v", applied, err)
	}
	if devN.SMClockMHz() != 1005 {
		t.Error("nvidia device clock not applied")
	}

	sA, devA := amdSetter(t)
	if sA.MaxSMClock() != 1700 {
		t.Errorf("amd max clock %d", sA.MaxSMClock())
	}
	applied, err = sA.SetSMClock(1210)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1200 { // snapped to the 50 MHz table
		t.Errorf("amd applied %d, want 1200", applied)
	}
	if devA.SMClockMHz() != 1200 {
		t.Error("amd device clock not applied")
	}
	if err := sA.ResetClocks(); err != nil {
		t.Fatal(err)
	}
	if devA.Mode() != gpusim.ModeAuto {
		t.Error("amd reset did not restore auto")
	}
}

func TestBaselineLocksMax(t *testing.T) {
	s, dev := nvidiaSetter(t)
	var strat Strategy = Baseline{}
	if err := strat.Setup(s); err != nil {
		t.Fatal(err)
	}
	if dev.SMClockMHz() != 1410 || dev.Mode() != gpusim.ModeLocked {
		t.Errorf("baseline: clock %d mode %v", dev.SMClockMHz(), dev.Mode())
	}
	if err := strat.Apply(s, "MomentumEnergy"); err != nil {
		t.Fatal(err)
	}
	if dev.SMClockMHz() != 1410 {
		t.Error("baseline Apply changed the clock")
	}
	if strat.Name() != "baseline" {
		t.Error("name")
	}
}

func TestStaticLocksRequested(t *testing.T) {
	s, dev := nvidiaSetter(t)
	strat := Static{MHz: 1110}
	strat.Setup(s)
	if dev.SMClockMHz() != 1110 {
		t.Errorf("static clock %d", dev.SMClockMHz())
	}
	if strat.Name() != "static-1110" {
		t.Errorf("name %q", strat.Name())
	}
}

func TestDVFSLeavesGovernor(t *testing.T) {
	s, dev := nvidiaSetter(t)
	// Lock first, then hand to DVFS.
	s.SetSMClock(1005)
	var strat Strategy = DVFS{}
	strat.Setup(s)
	if dev.Mode() != gpusim.ModeAuto {
		t.Error("DVFS strategy left clocks locked")
	}
	if strat.Name() != "dvfs" {
		t.Error("name")
	}
}

func TestManDynSwitchesPerFunction(t *testing.T) {
	s, dev := nvidiaSetter(t)
	strat := &ManDyn{Table: map[string]int{
		"MomentumEnergy": 1410,
		"XMass":          1005,
	}}
	if err := strat.Setup(s); err != nil {
		t.Fatal(err)
	}
	strat.Apply(s, "XMass")
	if dev.SMClockMHz() != 1005 {
		t.Errorf("XMass clock %d", dev.SMClockMHz())
	}
	strat.Apply(s, "MomentumEnergy")
	if dev.SMClockMHz() != 1410 {
		t.Errorf("MomentumEnergy clock %d", dev.SMClockMHz())
	}
	// Unknown function falls back to the default (max when 0).
	strat.Apply(s, "SomethingNew")
	if dev.SMClockMHz() != 1410 {
		t.Errorf("default clock %d", dev.SMClockMHz())
	}
}

func TestManDynExplicitDefault(t *testing.T) {
	s, dev := nvidiaSetter(t)
	strat := &ManDyn{Table: map[string]int{"XMass": 1005}, Default: 1200}
	strat.Setup(s)
	if dev.SMClockMHz() != 1200 {
		t.Errorf("setup default clock %d, want 1200", dev.SMClockMHz())
	}
	strat.Apply(s, "unknown")
	if dev.SMClockMHz() != 1200 {
		t.Errorf("apply default clock %d", dev.SMClockMHz())
	}
}

// countingSetter wraps a Setter and counts SetSMClock calls.
type countingSetter struct {
	Setter
	calls int
}

func (c *countingSetter) SetSMClock(mhz int) (int, error) {
	c.calls++
	return c.Setter.SetSMClock(mhz)
}

func TestManDynSuppressesRedundantSets(t *testing.T) {
	inner, _ := nvidiaSetter(t)
	s := &countingSetter{Setter: inner}
	strat := &ManDyn{Table: map[string]int{"a": 1005, "b": 1005, "c": 1410}}
	strat.Setup(s)
	base := s.calls
	strat.Apply(s, "a") // 1410 -> 1005: one call
	strat.Apply(s, "b") // already 1005: no call
	strat.Apply(s, "a") // still 1005: no call
	strat.Apply(s, "c") // 1005 -> 1410: one call
	if got := s.calls - base; got != 2 {
		t.Errorf("SetSMClock called %d times, want 2 (redundant switches suppressed)", got)
	}
}

func TestManDynString(t *testing.T) {
	strat := &ManDyn{Table: map[string]int{"b": 2, "a": 1}}
	s := strat.String()
	if !strings.Contains(s, "a:1") || !strings.Contains(s, "b:2") {
		t.Errorf("String() = %q", s)
	}
	if strings.Index(s, "a:1") > strings.Index(s, "b:2") {
		t.Error("table not sorted in String()")
	}
}

func TestPowerCapStrategy(t *testing.T) {
	s, dev := nvidiaSetter(t)
	strat := PowerCap{Watts: 250}
	if strat.Name() != "powercap-250" {
		t.Errorf("name %q", strat.Name())
	}
	if err := strat.Setup(s); err != nil {
		t.Fatal(err)
	}
	if dev.Mode() != gpusim.ModeAuto {
		t.Error("power cap should leave the governor in control")
	}
	if dev.PowerLimitW() != 250 {
		t.Errorf("limit %v", dev.PowerLimitW())
	}
	if err := strat.Apply(s, "fn"); err != nil {
		t.Fatal(err)
	}
}

func TestSetterPowerLimitBothVendors(t *testing.T) {
	sN, devN := nvidiaSetter(t)
	if err := sN.SetPowerLimitW(300); err != nil {
		t.Fatal(err)
	}
	if devN.PowerLimitW() != 300 {
		t.Errorf("nvidia limit %v", devN.PowerLimitW())
	}
	if err := sN.SetPowerLimitW(0); err != nil {
		t.Fatal(err)
	}
	if devN.PowerLimitW() != devN.Spec().TDPW {
		t.Error("nvidia reset failed")
	}

	sA, devA := amdSetter(t)
	if err := sA.SetPowerLimitW(200); err != nil {
		t.Fatal(err)
	}
	if devA.PowerLimitW() != 200 {
		t.Errorf("amd limit %v", devA.PowerLimitW())
	}
	if err := sA.SetPowerLimitW(0); err != nil {
		t.Fatal(err)
	}
	if devA.PowerLimitW() != devA.Spec().TDPW {
		t.Error("amd reset failed")
	}
}

func TestMediatedPowerLimitAudited(t *testing.T) {
	inner, dev := agentSetter(t)
	a := NewAgent(Policy{MinMHz: 1005, MaxMHz: 1410})
	med := MediatedSetter{Agent: a, User: "alice", Inner: inner}
	if err := med.SetPowerLimitW(250); err != nil {
		t.Fatal(err)
	}
	if dev.PowerLimitW() != 250 {
		t.Error("mediated power limit not applied")
	}
	log := a.Audit()
	if len(log) != 1 || log[0].Op != "power-limit" {
		t.Errorf("audit %v", log)
	}
	// Failed requests are audited too.
	if err := med.SetPowerLimitW(5); err == nil {
		t.Error("absurd limit accepted")
	}
	log = a.Audit()
	if len(log) != 2 || log[1].Err == "" {
		t.Errorf("failed op not audited: %v", log)
	}
}
