package freqctl

import (
	"fmt"
	"math"
	"sync"

	"sphenergy/internal/rng"
)

// ResilienceConfig tunes the retry/breaker behaviour of a ResilientSetter.
// The zero value is usable: sensible defaults are substituted on first use.
type ResilienceConfig struct {
	// MaxRetries is how many times a failed operation is retried before it
	// is absorbed (default 2, i.e. up to 3 attempts).
	MaxRetries int
	// BackoffS is the base (virtual-time) backoff before the first retry;
	// it doubles per retry with deterministic jitter (default 1 ms).
	BackoffS float64
	// BreakerThreshold is the number of consecutive exhausted set failures
	// that latches the circuit breaker (default 3).
	BreakerThreshold int
	// SafeMHz is the clock the breaker latches the device to; 0 means the
	// maximum application clock (the paper's baseline — energy-suboptimal
	// but never performance-degrading).
	SafeMHz int
	// Seed drives the jitter stream; runs with equal seeds back off
	// identically, preserving bit-identical chaos runs.
	Seed uint64
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.BackoffS == 0 {
		c.BackoffS = 1e-3
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	return c
}

// ResilienceStats is a snapshot of a ResilientSetter's counters.
type ResilienceStats struct {
	// Sets counts successful clock applications.
	Sets uint64
	// Retries counts re-attempts after a failed operation.
	Retries uint64
	// Absorbed counts operations that exhausted their retries and were
	// swallowed (the run continues on the previous clock).
	Absorbed uint64
	// Clamped counts sets whose achieved clock differed from the request
	// (platform clamp or nearest-supported snap).
	Clamped uint64
	// ShortCircuits counts sets skipped because the breaker was latched.
	ShortCircuits uint64
	// BreakerTrips counts breaker latch events (at most 1 per run today).
	BreakerTrips uint64
	// BackoffS is the total virtual-time backoff delay accrued.
	BackoffS float64
	// Broken reports whether the breaker is currently latched.
	Broken bool
	// LastApplied is the most recent clock known to be applied (0 before
	// any successful set).
	LastApplied int
}

// ResilientSetter wraps a Setter with the degradation behaviour a
// production DVFS client needs (Calore et al. note production nodes
// routinely reject or clamp user clock requests):
//
//   - requests are validated (positive MHz only);
//   - failed operations are retried with exponential backoff and
//     deterministic jitter, bounded by MaxRetries;
//   - exhausted failures are absorbed, not propagated — the run continues
//     on the previous clock and the failure is counted, because a missed
//     frequency switch costs some energy while an aborted simulation
//     costs all of it;
//   - repeated exhausted failures latch a circuit breaker that pins the
//     device to a safe clock and short-circuits further set attempts;
//   - the achieved clock is verified against the request, so clamped sets
//     are observable (Stats().Clamped, OnEvent) instead of silent.
//
// It is safe for concurrent use; in the runner each rank owns one.
type ResilientSetter struct {
	Inner Setter
	// OnEvent, when set, observes retries/absorbs/trips for telemetry.
	OnEvent func(ev ResilientEvent)

	cfg  ResilienceConfig
	once sync.Once

	mu      sync.Mutex
	jit     *rng.Rand
	consec  int
	broken  bool
	stats   ResilienceStats
	backoff float64 // scratch: next delay
}

// ResilientEvent describes one resilience action for telemetry sinks.
type ResilientEvent struct {
	// Kind is "retry", "absorb", "clamp", "breaker-trip" or
	// "short-circuit".
	Kind string
	// Op is the operation ("set", "reset").
	Op string
	// MHz is the requested clock for sets.
	MHz int
	// Err is the triggering error, when there is one.
	Err error
}

// NewResilientSetter wraps inner with the given config.
func NewResilientSetter(inner Setter, cfg ResilienceConfig) *ResilientSetter {
	return &ResilientSetter{Inner: inner, cfg: cfg}
}

func (r *ResilientSetter) init() {
	r.once.Do(func() {
		r.cfg = r.cfg.withDefaults()
		r.jit = rng.New(r.cfg.Seed ^ 0xDEC1C1B0)
	})
}

func (r *ResilientSetter) emit(ev ResilientEvent) {
	if r.OnEvent != nil {
		r.OnEvent(ev)
	}
}

// ValidMHz rejects clock requests that cannot be a physical frequency:
// NaN, ±Inf, zero and negative values. It returns the validated integer
// MHz for callers converting from float inputs (config files, flags).
func ValidMHz(mhz float64) (int, error) {
	if math.IsNaN(mhz) || math.IsInf(mhz, 0) {
		return 0, fmt.Errorf("freqctl: non-finite clock request %v MHz", mhz)
	}
	i := int(mhz)
	if i <= 0 {
		return 0, fmt.Errorf("freqctl: non-positive clock request %v MHz", mhz)
	}
	return i, nil
}

// SetSMClock implements Setter with retry, absorption and the breaker.
// After the breaker latches it returns the safe clock without touching the
// device. An absorbed failure returns the last applied clock and no error;
// callers needing the failure count read Stats().
func (r *ResilientSetter) SetSMClock(mhz int) (int, error) {
	r.init()
	if _, err := ValidMHz(float64(mhz)); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken {
		r.stats.ShortCircuits++
		r.emit(ResilientEvent{Kind: "short-circuit", Op: "set", MHz: mhz})
		return r.stats.LastApplied, nil
	}
	applied, err := r.attempt("set", mhz, func() (int, error) {
		return r.Inner.SetSMClock(mhz)
	})
	if err != nil {
		return r.absorb("set", mhz, err), nil
	}
	r.consec = 0
	r.stats.Sets++
	r.stats.LastApplied = applied
	if applied != mhz {
		r.stats.Clamped++
		r.emit(ResilientEvent{Kind: "clamp", Op: "set", MHz: mhz})
	}
	return applied, nil
}

// attempt runs op with bounded retries and exponential backoff +
// deterministic jitter. Caller holds r.mu.
func (r *ResilientSetter) attempt(op string, mhz int, f func() (int, error)) (int, error) {
	delay := r.cfg.BackoffS
	var applied int
	var err error
	for try := 0; ; try++ {
		applied, err = f()
		if err == nil || try >= r.cfg.MaxRetries {
			return applied, err
		}
		// Jittered exponential backoff in virtual time: the delay is
		// accounted (Stats().BackoffS) rather than slept, since the
		// simulation clock only advances through device activity.
		d := delay * (1 + 0.5*r.jit.Float64())
		r.stats.BackoffS += d
		delay *= 2
		r.stats.Retries++
		r.emit(ResilientEvent{Kind: "retry", Op: op, MHz: mhz, Err: err})
	}
}

// absorb swallows an exhausted failure, possibly latching the breaker.
// Caller holds r.mu. Returns the clock the device is believed to run at.
func (r *ResilientSetter) absorb(op string, mhz int, err error) int {
	r.stats.Absorbed++
	r.consec++
	r.emit(ResilientEvent{Kind: "absorb", Op: op, MHz: mhz, Err: err})
	if !r.broken && r.consec >= r.cfg.BreakerThreshold {
		r.broken = true
		r.stats.Broken = true
		r.stats.BreakerTrips++
		safe := r.cfg.SafeMHz
		if safe == 0 {
			safe = r.Inner.MaxSMClock()
		}
		// Best-effort latch to the safe clock; if even this fails the
		// device keeps whatever clock it has and we stop asking.
		if applied, serr := r.Inner.SetSMClock(safe); serr == nil {
			r.stats.LastApplied = applied
		}
		r.emit(ResilientEvent{Kind: "breaker-trip", Op: op, MHz: safe, Err: err})
	}
	return r.stats.LastApplied
}

// ResetClocks implements Setter with the same retry/absorb semantics.
func (r *ResilientSetter) ResetClocks() error {
	r.init()
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.attempt("reset", 0, func() (int, error) {
		return 0, r.Inner.ResetClocks()
	})
	if err != nil {
		r.absorb("reset", 0, err)
		return nil
	}
	r.consec = 0
	r.stats.LastApplied = 0
	return nil
}

// MaxSMClock implements Setter.
func (r *ResilientSetter) MaxSMClock() int { return r.Inner.MaxSMClock() }

// SetPowerLimitW implements Setter (pass-through: power caps are not on
// the per-function hot path the resilience layer protects).
func (r *ResilientSetter) SetPowerLimitW(watts float64) error {
	return r.Inner.SetPowerLimitW(watts)
}

// Stats returns a snapshot of the resilience counters.
func (r *ResilientSetter) Stats() ResilienceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Broken reports whether the breaker has latched.
func (r *ResilientSetter) Broken() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.broken
}

// ResilientState is a ResilientSetter's checkpointable state: jitter
// stream position, breaker state, and counters. Inited distinguishes a
// setter that never performed an operation (jitter stream not yet seeded).
type ResilientState struct {
	Inited bool
	RNG    [4]uint64
	Consec int
	Broken bool
	Stats  ResilienceStats
}

// State captures the setter's checkpointable state.
func (r *ResilientSetter) State() ResilientState {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ResilientState{Consec: r.consec, Broken: r.broken, Stats: r.stats}
	if r.jit != nil {
		st.Inited = true
		st.RNG = r.jit.State()
	}
	return st
}

// RestoreState installs a state captured by State. A restored setter
// retries, backs off, and trips its breaker exactly as the original
// would have.
func (r *ResilientSetter) RestoreState(st ResilientState) {
	if st.Inited {
		r.init()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st.Inited {
		r.jit.SetState(st.RNG)
	}
	r.consec = st.Consec
	r.broken = st.Broken
	r.stats = st.Stats
}

// AttachFaultHook installs a back-end fault hook underneath a Setter,
// unwrapping the resilience/mediation/instrumentation layers to reach the
// vendor library. Returns false when the chain bottoms out in a setter
// with no known back-end (test fakes).
func AttachFaultHook(s Setter, hook func(op string, arg int) (int, error)) bool {
	switch st := s.(type) {
	case NVMLSetter:
		st.Dev.SetFaultHook(hook)
		return true
	case RSMISetter:
		st.Lib.SetFaultHook(hook)
		return true
	case *ResilientSetter:
		return AttachFaultHook(st.Inner, hook)
	case MediatedSetter:
		return AttachFaultHook(st.Inner, hook)
	case InstrumentedSetter:
		return AttachFaultHook(st.Inner, hook)
	}
	return false
}
