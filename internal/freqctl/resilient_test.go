package freqctl

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"sphenergy/internal/faults"
	"sphenergy/internal/gpusim"
)

// flakySetter fails SetSMClock according to a script: entry i is the error
// for call i (nil = success). Past the script everything succeeds. Safe
// for concurrent use.
type flakySetter struct {
	mu     sync.Mutex
	script []error
	calls  int
	resets int
	mhz    int
	max    int
	clamp  int // when >0, successful sets are clamped to this
}

func (f *flakySetter) SetSMClock(mhz int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i := f.calls
	f.calls++
	if i < len(f.script) && f.script[i] != nil {
		return 0, f.script[i]
	}
	if f.clamp > 0 && mhz > f.clamp {
		mhz = f.clamp
	}
	f.mhz = mhz
	return mhz, nil
}

func (f *flakySetter) ResetClocks() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resets++
	return nil
}

func (f *flakySetter) MaxSMClock() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.max == 0 {
		return 1410
	}
	return f.max
}

func (f *flakySetter) SetPowerLimitW(float64) error { return nil }

func (f *flakySetter) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

var errFlaky = errors.New("flaky")

func TestResilientSetterRetriesThroughTransients(t *testing.T) {
	inner := &flakySetter{script: []error{errFlaky, errFlaky, nil}}
	r := NewResilientSetter(inner, ResilienceConfig{MaxRetries: 2})
	applied, err := r.SetSMClock(1005)
	if err != nil || applied != 1005 {
		t.Fatalf("SetSMClock = (%d, %v), want (1005, nil)", applied, err)
	}
	st := r.Stats()
	if st.Retries != 2 || st.Sets != 1 || st.Absorbed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BackoffS <= 0 {
		t.Fatal("no backoff accrued")
	}
}

func TestResilientSetterAbsorbsExhaustedFailure(t *testing.T) {
	inner := &flakySetter{script: []error{nil, errFlaky, errFlaky, errFlaky}}
	r := NewResilientSetter(inner, ResilienceConfig{MaxRetries: 2, BreakerThreshold: 5})
	if _, err := r.SetSMClock(1200); err != nil {
		t.Fatal(err)
	}
	applied, err := r.SetSMClock(900)
	if err != nil {
		t.Fatalf("exhausted failure must be absorbed, got %v", err)
	}
	if applied != 1200 {
		t.Fatalf("absorbed set returned %d, want last applied 1200", applied)
	}
	st := r.Stats()
	if st.Absorbed != 1 || st.Broken {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResilientSetterBreakerLatchesSafeClock(t *testing.T) {
	// The first 6 calls fail — 3 sets × 2 attempts each — so every set
	// exhausts its retries; after BreakerThreshold consecutive exhaustions
	// the breaker trips and pins the safe clock (call 7, which succeeds).
	script := make([]error, 6)
	for i := range script {
		script[i] = errFlaky
	}
	inner := &flakySetter{script: script}
	r := NewResilientSetter(inner, ResilienceConfig{MaxRetries: 1, BreakerThreshold: 3, SafeMHz: 1095})
	for i := 0; i < 3; i++ {
		if _, err := r.SetSMClock(900); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Broken() {
		t.Fatal("breaker should be latched after 3 exhausted failures")
	}
	if inner.mhz != 1095 {
		t.Fatalf("device clock %d, want safe 1095", inner.mhz)
	}
	before := inner.callCount()
	applied, err := r.SetSMClock(600)
	if err != nil || applied != 1095 {
		t.Fatalf("post-latch set = (%d, %v), want (1095, nil)", applied, err)
	}
	if inner.callCount() != before {
		t.Fatal("latched breaker still reached the device")
	}
	st := r.Stats()
	if st.BreakerTrips != 1 || st.ShortCircuits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResilientSetterRejectsInvalidMHz(t *testing.T) {
	r := NewResilientSetter(&flakySetter{}, ResilienceConfig{})
	for _, mhz := range []int{0, -5} {
		if _, err := r.SetSMClock(mhz); err == nil {
			t.Errorf("SetSMClock(%d) accepted", mhz)
		}
	}
	if _, err := ValidMHz(math.NaN()); err == nil {
		t.Error("ValidMHz(NaN) accepted")
	}
	if _, err := ValidMHz(math.Inf(1)); err == nil {
		t.Error("ValidMHz(+Inf) accepted")
	}
	if v, err := ValidMHz(1005.9); err != nil || v != 1005 {
		t.Errorf("ValidMHz(1005.9) = (%d, %v)", v, err)
	}
}

func TestResilientSetterVerifiesAchievedClock(t *testing.T) {
	inner := &flakySetter{clamp: 801}
	r := NewResilientSetter(inner, ResilienceConfig{})
	applied, err := r.SetSMClock(1005)
	if err != nil || applied != 801 {
		t.Fatalf("clamped set = (%d, %v), want (801, nil)", applied, err)
	}
	if st := r.Stats(); st.Clamped != 1 || st.LastApplied != 801 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResilientSetterDeterministicBackoff(t *testing.T) {
	run := func() float64 {
		inner := &flakySetter{script: []error{errFlaky, errFlaky, nil}}
		r := NewResilientSetter(inner, ResilienceConfig{MaxRetries: 2, Seed: 7})
		if _, err := r.SetSMClock(1005); err != nil {
			t.Fatal(err)
		}
		return r.Stats().BackoffS
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("backoff not deterministic: %v vs %v", a, b)
	}
}

func TestManDynConvergesUnderClamp(t *testing.T) {
	// Regression for the clamp-thrash bug: when the platform clamps the
	// table clock, elision must key on the requested clock, or every
	// Apply re-issues the same doomed set.
	inner := &flakySetter{clamp: 801}
	m := &ManDyn{Table: map[string]int{"momentum": 1005}, Default: 1410}
	if err := m.Setup(inner); err != nil {
		t.Fatal(err)
	}
	setsAfterSetup := inner.callCount()
	for i := 0; i < 5; i++ {
		if err := m.Apply(inner, "momentum"); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.callCount() - setsAfterSetup; got != 1 {
		t.Fatalf("clamped table clock issued %d sets over 5 applies, want 1", got)
	}
	if m.LastApplied() != 801 {
		t.Fatalf("LastApplied = %d, want achieved 801", m.LastApplied())
	}
	// Switching to another function and back must still re-issue.
	if err := m.Apply(inner, "other"); err != nil { // default 1410 → clamped 801
		t.Fatal(err)
	}
	if err := m.Apply(inner, "momentum"); err != nil {
		t.Fatal(err)
	}
	if got := inner.callCount() - setsAfterSetup; got != 3 {
		t.Fatalf("function switches issued %d sets, want 3", got)
	}
}

func TestManDynWithResilientSetterUnderFaultPlan(t *testing.T) {
	// End-to-end: ManDyn through a ResilientSetter over a real NVML-backed
	// device with an injected clamped-clock window. The strategy must
	// converge (no set storm) and report the achieved clock.
	dev := gpusim.NewDevice(gpusim.A100SXM480GB(), 0)
	s, err := SetterFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Seed: 3, Rules: []faults.Rule{
		{Kind: faults.ClampedClock, Target: faults.TargetClock, MHz: 900},
	}}
	if !AttachFaultHook(s, plan.Injector(faults.TargetClock, 0).ClockHook(dev.Now)) {
		t.Fatal("AttachFaultHook failed on NVML setter")
	}
	r := NewResilientSetter(s, ResilienceConfig{})
	m := &ManDyn{Table: map[string]int{"momentum": 1005}}
	if err := m.Setup(r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.Apply(r, "momentum"); err != nil {
			t.Fatal(err)
		}
	}
	// 900 is not in the A100 table; the device snaps to the nearest
	// supported application clock at or below the injector's ceiling.
	if m.LastApplied() >= 1005 || m.LastApplied() <= 0 {
		t.Fatalf("LastApplied = %d, want clamped below request", m.LastApplied())
	}
	if dev.SMClockMHz() != m.LastApplied() {
		t.Fatalf("device at %d MHz but strategy reports %d", dev.SMClockMHz(), m.LastApplied())
	}
	if st := r.Stats(); st.Clamped == 0 {
		t.Fatalf("clamp not observed: %+v", st)
	}
}

func TestAgentRejectsNonPhysicalMHz(t *testing.T) {
	agent := NewAgent(Policy{})
	inner := &flakySetter{}
	for _, mhz := range []int{0, -100} {
		if _, err := agent.RequestSet("user", inner, mhz); err == nil {
			t.Errorf("RequestSet(%d) accepted", mhz)
		}
	}
	if inner.callCount() != 0 {
		t.Fatal("invalid requests reached the device")
	}
	audit := agent.Audit()
	if len(audit) != 2 || audit[0].Err == "" {
		t.Fatalf("invalid requests not audited: %+v", audit)
	}
}

func TestMediatedSettersConcurrent(t *testing.T) {
	// Many ranks hammer one agent through mediated setters while another
	// goroutine reads the audit log — the satellite's -race policy test.
	agent := NewAgent(Policy{MinMHz: 500, MaxMHz: 1400})
	const ranks = 8
	setters := make([]MediatedSetter, ranks)
	inners := make([]*flakySetter, ranks)
	for i := range setters {
		inners[i] = &flakySetter{}
		setters[i] = MediatedSetter{Agent: agent, User: fmt.Sprintf("rank%d", i), Inner: inners[i]}
	}
	var wg sync.WaitGroup
	for i := range setters {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				mhz := 600 + 10*(j%40)
				if _, err := setters[i].SetSMClock(mhz); err != nil {
					t.Errorf("rank %d: %v", i, err)
					return
				}
				if _, err := setters[i].SetSMClock(-1); err == nil {
					t.Errorf("rank %d: negative MHz accepted", i)
					return
				}
				if _, err := setters[i].SetSMClock(5000); err == nil {
					t.Errorf("rank %d: out-of-policy MHz accepted", i)
					return
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			agent.Audit()
		}
	}()
	wg.Wait()
	<-done
	audit := agent.Audit()
	if len(audit) != ranks*50*3 {
		t.Fatalf("audit entries = %d, want %d", len(audit), ranks*50*3)
	}
	denied := 0
	for _, e := range audit {
		if e.Err != "" {
			denied++
		}
	}
	if denied != ranks*50*2 {
		t.Fatalf("denied = %d, want %d", denied, ranks*50*2)
	}
}
