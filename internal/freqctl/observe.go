package freqctl

import "time"

// DecisionSink receives the outcome of each strategy Apply call — the
// telemetry layer turns these into trace events without the strategies
// themselves knowing about observability.
type DecisionSink interface {
	// StrategyDecision reports one Apply: the function about to run, the
	// clock the strategy requested and the clock the device applied.
	// requestedMHz is -1 when the strategy left the clock alone (the
	// redundant-switch elision ManDyn performs).
	StrategyDecision(function string, requestedMHz, appliedMHz int)
}

// Traced wraps a Strategy, reporting every Apply decision to the sink. The
// wrapped strategy is unaware: Traced intercepts the Setter to capture what
// the strategy actually did. Like every Strategy, a Traced serves one rank:
// Apply reuses an internal capture buffer and must not be called
// concurrently on the same instance.
type Traced struct {
	Inner Strategy
	Sink  DecisionSink

	cap captureSetter // reused across Apply calls to keep the hot path allocation-free
}

// Name implements Strategy.
func (t *Traced) Name() string { return t.Inner.Name() }

// Setup implements Strategy.
func (t *Traced) Setup(s Setter) error { return t.Inner.Setup(s) }

// Apply implements Strategy, capturing the clock decision.
func (t *Traced) Apply(s Setter, function string) error {
	t.cap = captureSetter{Setter: s, requested: -1, applied: -1}
	err := t.Inner.Apply(&t.cap, function)
	if t.Sink != nil {
		t.Sink.StrategyDecision(function, t.cap.requested, t.cap.applied)
	}
	return err
}

// captureSetter records the last SetSMClock call passing through it.
type captureSetter struct {
	Setter
	requested, applied int
}

func (c *captureSetter) SetSMClock(mhz int) (int, error) {
	c.requested = mhz
	applied, err := c.Setter.SetSMClock(mhz)
	c.applied = applied
	return applied, err
}

// InstrumentedSetter wraps a Setter, timing every clock-control operation
// with the wall clock and reporting it through the hooks — the data behind
// the freq_switches_total and freq_switch_latency_s metrics. Nil hooks are
// skipped; reads (MaxSMClock) pass through unobserved.
type InstrumentedSetter struct {
	Inner   Setter
	OnSet   func(requestedMHz, appliedMHz int, latencyS float64, err error)
	OnReset func(latencyS float64, err error)
}

// SetSMClock implements Setter.
func (i InstrumentedSetter) SetSMClock(mhz int) (int, error) {
	start := time.Now()
	applied, err := i.Inner.SetSMClock(mhz)
	if i.OnSet != nil {
		i.OnSet(mhz, applied, time.Since(start).Seconds(), err)
	}
	return applied, err
}

// ResetClocks implements Setter.
func (i InstrumentedSetter) ResetClocks() error {
	start := time.Now()
	err := i.Inner.ResetClocks()
	if i.OnReset != nil {
		i.OnReset(time.Since(start).Seconds(), err)
	}
	return err
}

// MaxSMClock implements Setter.
func (i InstrumentedSetter) MaxSMClock() int { return i.Inner.MaxSMClock() }

// SetPowerLimitW implements Setter.
func (i InstrumentedSetter) SetPowerLimitW(watts float64) error {
	return i.Inner.SetPowerLimitW(watts)
}
