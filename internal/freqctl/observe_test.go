package freqctl

import (
	"testing"

	"sphenergy/internal/gpusim"
)

// decisionLog collects StrategyDecision callbacks.
type decisionLog struct {
	fns       []string
	requested []int
	applied   []int
}

func (d *decisionLog) StrategyDecision(fn string, requestedMHz, appliedMHz int) {
	d.fns = append(d.fns, fn)
	d.requested = append(d.requested, requestedMHz)
	d.applied = append(d.applied, appliedMHz)
}

func testSetter(t *testing.T) Setter {
	t.Helper()
	dev := gpusim.NewDevice(gpusim.A100SXM480GB(), 0)
	s, err := SetterFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTracedReportsManDynDecisions(t *testing.T) {
	s := testSetter(t)
	log := &decisionLog{}
	st := &Traced{
		Inner: &ManDyn{Table: map[string]int{"iad": 1005}},
		Sink:  log,
	}
	if err := st.Setup(s); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(s, "iad"); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(s, "iad"); err != nil { // same clock: no switch
		t.Fatal(err)
	}
	if err := st.Apply(s, "momentum"); err != nil { // back to default (max)
		t.Fatal(err)
	}
	if len(log.fns) != 3 {
		t.Fatalf("got %d decisions, want 3", len(log.fns))
	}
	if log.requested[0] != 1005 || log.applied[0] != 1005 {
		t.Errorf("first decision %d/%d, want 1005/1005", log.requested[0], log.applied[0])
	}
	// Second apply left the clock alone — ManDyn's redundant-switch elision.
	if log.requested[1] != -1 {
		t.Errorf("elided decision requested = %d, want -1", log.requested[1])
	}
	if log.requested[2] != 1410 {
		t.Errorf("default decision requested = %d, want 1410", log.requested[2])
	}
	if st.Name() != "mandyn" {
		t.Errorf("Name = %q", st.Name())
	}
}

func TestInstrumentedSetterHooks(t *testing.T) {
	s := testSetter(t)
	var sets, resets int
	var lastRequested, lastApplied int
	is := InstrumentedSetter{
		Inner: s,
		OnSet: func(requestedMHz, appliedMHz int, latencyS float64, err error) {
			sets++
			lastRequested, lastApplied = requestedMHz, appliedMHz
			if latencyS < 0 {
				t.Error("negative latency")
			}
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		},
		OnReset: func(latencyS float64, err error) { resets++ },
	}
	if _, err := is.SetSMClock(1200); err != nil {
		t.Fatal(err)
	}
	if err := is.ResetClocks(); err != nil {
		t.Fatal(err)
	}
	if sets != 1 || resets != 1 {
		t.Errorf("sets=%d resets=%d", sets, resets)
	}
	if lastRequested != 1200 || lastApplied != 1200 {
		t.Errorf("hook saw %d/%d", lastRequested, lastApplied)
	}
	if is.MaxSMClock() != 1410 {
		t.Errorf("MaxSMClock = %d", is.MaxSMClock())
	}
	// Nil hooks must be safe.
	bare := InstrumentedSetter{Inner: s}
	if _, err := bare.SetSMClock(1005); err != nil {
		t.Fatal(err)
	}
	if err := bare.ResetClocks(); err != nil {
		t.Fatal(err)
	}
}
