package freqctl

import (
	"fmt"
	"sync"
)

// Policy is a site's rules for user-level clock control. The paper's
// systems normally require superuser privileges for GPU clock changes; the
// agent grants mediated access within site-configured bounds (the
// "user-level GPU frequency adjustment" contribution of §I).
type Policy struct {
	// MinMHz/MaxMHz bound the clocks users may request. Zero values mean
	// no bound in that direction.
	MinMHz, MaxMHz int
	// AllowReset permits returning devices to governor control.
	AllowReset bool
	// AllowedUsers restricts access; empty means any user.
	AllowedUsers []string
}

// permits reports whether the policy allows user to set mhz.
func (p Policy) permits(user string, mhz int) error {
	if len(p.AllowedUsers) > 0 {
		ok := false
		for _, u := range p.AllowedUsers {
			if u == user {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("freqctl: user %q not authorized for clock control", user)
		}
	}
	if p.MinMHz > 0 && mhz < p.MinMHz {
		return fmt.Errorf("freqctl: %d MHz below site minimum %d MHz", mhz, p.MinMHz)
	}
	if p.MaxMHz > 0 && mhz > p.MaxMHz {
		return fmt.Errorf("freqctl: %d MHz above site maximum %d MHz", mhz, p.MaxMHz)
	}
	return nil
}

// AuditEntry records one mediated clock operation.
type AuditEntry struct {
	User    string
	Op      string // "set" or "reset"
	MHz     int    // requested (set only)
	Applied int    // actually applied (set only)
	Err     string // non-empty when denied/failed
}

// Agent is the site daemon that performs privileged clock operations on
// behalf of unprivileged users, enforcing Policy and keeping an audit log.
// It is safe for concurrent use (many ranks request clock changes).
type Agent struct {
	policy Policy
	mu     sync.Mutex
	log    []AuditEntry
}

// NewAgent creates an agent with the given site policy.
func NewAgent(policy Policy) *Agent {
	return &Agent{policy: policy}
}

// RequestSet asks the agent to lock a device's SM clock for a user.
// Non-physical requests (zero, negative, or float inputs that were NaN
// before conversion — see ValidMHz) are denied and audited before policy
// is consulted.
func (a *Agent) RequestSet(user string, s Setter, mhz int) (int, error) {
	entry := AuditEntry{User: user, Op: "set", MHz: mhz}
	defer a.record(&entry)
	if _, err := ValidMHz(float64(mhz)); err != nil {
		entry.Err = err.Error()
		return 0, err
	}
	if err := a.policy.permits(user, mhz); err != nil {
		entry.Err = err.Error()
		return 0, err
	}
	applied, err := s.SetSMClock(mhz)
	if err != nil {
		entry.Err = err.Error()
		return 0, err
	}
	entry.Applied = applied
	return applied, nil
}

// RequestReset asks the agent to return a device to governor control.
func (a *Agent) RequestReset(user string, s Setter) error {
	entry := AuditEntry{User: user, Op: "reset"}
	defer a.record(&entry)
	if !a.policy.AllowReset {
		err := fmt.Errorf("freqctl: site policy forbids resetting to governor control")
		entry.Err = err.Error()
		return err
	}
	if len(a.policy.AllowedUsers) > 0 {
		if err := a.policy.permits(user, a.policy.MinMHz); err != nil {
			entry.Err = err.Error()
			return err
		}
	}
	if err := s.ResetClocks(); err != nil {
		entry.Err = err.Error()
		return err
	}
	return nil
}

func (a *Agent) record(e *AuditEntry) {
	a.mu.Lock()
	a.log = append(a.log, *e)
	a.mu.Unlock()
}

// Audit returns a copy of the audit log.
func (a *Agent) Audit() []AuditEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AuditEntry, len(a.log))
	copy(out, a.log)
	return out
}

// MediatedSetter wraps a Setter so that every operation goes through an
// agent as a given user — strategies then work unmodified on restricted
// systems.
type MediatedSetter struct {
	Agent *Agent
	User  string
	Inner Setter
}

// SetSMClock implements Setter through the agent.
func (m MediatedSetter) SetSMClock(mhz int) (int, error) {
	return m.Agent.RequestSet(m.User, m.Inner, mhz)
}

// ResetClocks implements Setter through the agent.
func (m MediatedSetter) ResetClocks() error {
	return m.Agent.RequestReset(m.User, m.Inner)
}

// MaxSMClock implements Setter; reads need no mediation.
func (m MediatedSetter) MaxSMClock() int { return m.Inner.MaxSMClock() }

// SetPowerLimitW implements Setter. Power caps only ever lower consumption,
// so sites expose them without the clock policy's bounds; the operation is
// still audited.
func (m MediatedSetter) SetPowerLimitW(watts float64) error {
	entry := AuditEntry{User: m.User, Op: "power-limit", MHz: int(watts)}
	err := m.Inner.SetPowerLimitW(watts)
	if err != nil {
		entry.Err = err.Error()
	}
	m.Agent.record(&entry)
	return err
}
