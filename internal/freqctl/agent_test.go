package freqctl

import (
	"strings"
	"sync"
	"testing"

	"sphenergy/internal/gpusim"
)

func agentSetter(t *testing.T) (Setter, *gpusim.Device) {
	t.Helper()
	dev := gpusim.NewDevice(gpusim.A100SXM480GB(), 0)
	s, err := SetterFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func TestAgentAllowsWithinPolicy(t *testing.T) {
	s, dev := agentSetter(t)
	a := NewAgent(Policy{MinMHz: 1005, MaxMHz: 1410, AllowReset: true})
	applied, err := a.RequestSet("alice", s, 1110)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1110 || dev.SMClockMHz() != 1110 {
		t.Errorf("applied %d, device %d", applied, dev.SMClockMHz())
	}
	if err := a.RequestReset("alice", s); err != nil {
		t.Fatal(err)
	}
	if dev.Mode() != gpusim.ModeAuto {
		t.Error("reset not applied")
	}
}

func TestAgentDeniesOutOfRange(t *testing.T) {
	s, dev := agentSetter(t)
	a := NewAgent(Policy{MinMHz: 1005, MaxMHz: 1410})
	if _, err := a.RequestSet("alice", s, 600); err == nil {
		t.Error("below-minimum clock accepted")
	}
	if _, err := a.RequestSet("alice", s, 1500); err == nil {
		t.Error("above-maximum clock accepted")
	}
	if dev.Mode() == gpusim.ModeLocked {
		t.Error("denied request still changed the device")
	}
}

func TestAgentDeniesUnauthorizedUser(t *testing.T) {
	s, _ := agentSetter(t)
	a := NewAgent(Policy{AllowedUsers: []string{"alice"}, MinMHz: 1005, MaxMHz: 1410})
	if _, err := a.RequestSet("mallory", s, 1110); err == nil {
		t.Error("unauthorized user accepted")
	}
	if _, err := a.RequestSet("alice", s, 1110); err != nil {
		t.Errorf("authorized user denied: %v", err)
	}
}

func TestAgentResetPolicy(t *testing.T) {
	s, _ := agentSetter(t)
	a := NewAgent(Policy{}) // AllowReset false
	if err := a.RequestReset("alice", s); err == nil {
		t.Error("reset allowed against policy")
	}
}

func TestAuditLog(t *testing.T) {
	s, _ := agentSetter(t)
	a := NewAgent(Policy{MinMHz: 1005, MaxMHz: 1410, AllowReset: true})
	a.RequestSet("alice", s, 1110)
	a.RequestSet("alice", s, 400) // denied
	a.RequestReset("bob", s)
	log := a.Audit()
	if len(log) != 3 {
		t.Fatalf("audit has %d entries", len(log))
	}
	if log[0].Op != "set" || log[0].Applied != 1110 || log[0].Err != "" {
		t.Errorf("entry 0: %+v", log[0])
	}
	if log[1].Err == "" || !strings.Contains(log[1].Err, "below site minimum") {
		t.Errorf("entry 1: %+v", log[1])
	}
	if log[2].User != "bob" || log[2].Op != "reset" {
		t.Errorf("entry 2: %+v", log[2])
	}
}

func TestMediatedSetterWithStrategies(t *testing.T) {
	inner, dev := agentSetter(t)
	a := NewAgent(Policy{MinMHz: 1005, MaxMHz: 1410, AllowReset: true})
	med := MediatedSetter{Agent: a, User: "alice", Inner: inner}

	// ManDyn works through the mediated path unmodified.
	strat := &ManDyn{Table: map[string]int{"XMass": 1005, "MomentumEnergy": 1410}}
	if err := strat.Setup(med); err != nil {
		t.Fatal(err)
	}
	if err := strat.Apply(med, "XMass"); err != nil {
		t.Fatal(err)
	}
	if dev.SMClockMHz() != 1005 {
		t.Errorf("mediated clock %d", dev.SMClockMHz())
	}
	if len(a.Audit()) < 2 {
		t.Error("mediated operations not audited")
	}
	if med.MaxSMClock() != 1410 {
		t.Error("MaxSMClock read broken")
	}
}

func TestAgentConcurrentAudit(t *testing.T) {
	s, _ := agentSetter(t)
	a := NewAgent(Policy{MinMHz: 1005, MaxMHz: 1410})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a.RequestSet("alice", s, 1110)
			}
		}()
	}
	wg.Wait()
	if len(a.Audit()) != 800 {
		t.Errorf("audit entries %d, want 800", len(a.Audit()))
	}
}
