// Package freqctl implements the GPU frequency management strategies the
// paper compares (§IV-C/D): locked baseline clocks, static down-scaling,
// the hardware DVFS governor, and ManDyn — per-function application-clock
// switching driven by code instrumentation with a tuned frequency table.
//
// Strategies act through a Setter, the narrow clock-control surface that
// both the NVML and ROCm-SMI back-ends provide; this is the user-level,
// no-superuser-required control path the paper establishes.
package freqctl

import (
	"fmt"
	"sort"
	"strings"

	"sphenergy/internal/gpusim"
	"sphenergy/internal/nvml"
	"sphenergy/internal/rsmi"
)

// Setter is the clock- and power-control surface of one GPU.
type Setter interface {
	// SetSMClock locks the SM application clock, returning the applied MHz.
	SetSMClock(mhz int) (int, error)
	// ResetClocks returns the device to DVFS governor control.
	ResetClocks() error
	// MaxSMClock returns the highest supported application clock.
	MaxSMClock() int
	// SetPowerLimitW caps the board power (0 restores the default limit).
	SetPowerLimitW(watts float64) error
}

// NVMLSetter adapts an NVML device handle to the Setter interface.
type NVMLSetter struct {
	Dev nvml.Device
}

// SetSMClock implements Setter via nvmlDeviceSetApplicationsClocks.
func (s NVMLSetter) SetSMClock(mhz int) (int, error) {
	return s.Dev.SetApplicationsClocks(0, mhz)
}

// ResetClocks implements Setter.
func (s NVMLSetter) ResetClocks() error { return s.Dev.ResetApplicationsClocks() }

// MaxSMClock implements Setter.
func (s NVMLSetter) MaxSMClock() int {
	clocks := s.Dev.SupportedGraphicsClocks()
	return clocks[0]
}

// SetPowerLimitW implements Setter via nvmlDeviceSetPowerManagementLimit.
func (s NVMLSetter) SetPowerLimitW(watts float64) error {
	if watts == 0 {
		s.Dev.Sim().ResetPowerLimit()
		return nil
	}
	return s.Dev.SetPowerManagementLimit(int(watts * 1000))
}

// RSMISetter adapts a rocm-smi device index to the Setter interface.
type RSMISetter struct {
	Lib *rsmi.Library
	Idx int
}

// SetSMClock implements Setter via rsmi_dev_gpu_clk_freq_set.
func (s RSMISetter) SetSMClock(mhz int) (int, error) {
	table, _, err := s.Lib.DevGPUClkFreqGet(s.Idx)
	if err != nil {
		return 0, err
	}
	best, bestD := 0, 1<<30
	for i, f := range table {
		d := f - mhz
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return s.Lib.DevGPUClkFreqSet(s.Idx, best)
}

// ResetClocks implements Setter.
func (s RSMISetter) ResetClocks() error { return s.Lib.DevPerfLevelSetAuto(s.Idx) }

// MaxSMClock implements Setter.
func (s RSMISetter) MaxSMClock() int {
	table, _, err := s.Lib.DevGPUClkFreqGet(s.Idx)
	if err != nil || len(table) == 0 {
		return 0
	}
	return table[0]
}

// SetPowerLimitW implements Setter via rsmi_dev_power_cap_set.
func (s RSMISetter) SetPowerLimitW(watts float64) error {
	if watts == 0 {
		return s.Lib.DevPowerCapReset(s.Idx)
	}
	return s.Lib.DevPowerCapSet(s.Idx, int64(watts*1e6))
}

// SetterFor builds the right Setter for a simulated device through its
// vendor management library.
func SetterFor(dev *gpusim.Device) (Setter, error) {
	switch dev.Spec().Vendor {
	case gpusim.Nvidia:
		lib, err := nvml.New([]*gpusim.Device{dev})
		if err != nil {
			return nil, err
		}
		if err := lib.Init(); err != nil {
			return nil, err
		}
		h, err := lib.DeviceGetHandleByIndex(0)
		if err != nil {
			return nil, err
		}
		return NVMLSetter{Dev: h}, nil
	case gpusim.AMD:
		lib, err := rsmi.New([]*gpusim.Device{dev})
		if err != nil {
			return nil, err
		}
		return RSMISetter{Lib: lib, Idx: 0}, nil
	}
	return nil, fmt.Errorf("freqctl: unknown vendor for device %q", dev.Spec().Name)
}

// Strategy decides the GPU clock policy of a run. Implementations must be
// cheap: Apply runs before every instrumented function on every rank.
type Strategy interface {
	// Name labels the strategy in reports ("baseline", "static-1005", ...).
	Name() string
	// Setup is called once per rank before the time-stepping loop.
	Setup(s Setter) error
	// Apply is called before each instrumented function.
	Apply(s Setter, function string) error
}

// Baseline locks clocks at the maximum application clock — the paper's
// normalization reference (1410 MHz on A100).
type Baseline struct{}

// Name implements Strategy.
func (Baseline) Name() string { return "baseline" }

// Setup implements Strategy.
func (Baseline) Setup(s Setter) error {
	_, err := s.SetSMClock(s.MaxSMClock())
	return err
}

// Apply implements Strategy.
func (Baseline) Apply(Setter, string) error { return nil }

// Static locks clocks at a fixed value for the whole run (§IV-C).
type Static struct {
	MHz int
}

// Name implements Strategy.
func (st Static) Name() string { return fmt.Sprintf("static-%d", st.MHz) }

// Setup implements Strategy.
func (st Static) Setup(s Setter) error {
	_, err := s.SetSMClock(st.MHz)
	return err
}

// Apply implements Strategy.
func (Static) Apply(Setter, string) error { return nil }

// DVFS leaves the hardware governor in control (§IV-E).
type DVFS struct{}

// Name implements Strategy.
func (DVFS) Name() string { return "dvfs" }

// Setup implements Strategy.
func (DVFS) Setup(s Setter) error { return s.ResetClocks() }

// Apply implements Strategy.
func (DVFS) Apply(Setter, string) error { return nil }

// ManDyn is the paper's contribution: before each instrumented function the
// application sets the function's tuned frequency through the management
// API; functions missing from the table run at Default (the max clock when
// Default is 0).
type ManDyn struct {
	// Table maps function name to its tuned application clock in MHz.
	Table map[string]int
	// Default applies to functions not in the table; 0 means max clock.
	Default int

	// Redundant-set elision keys on the *requested* clock, not the applied
	// one: when the platform clamps a request (a table entry above a
	// fault-injected ceiling, or between supported steps), applied != mhz
	// forever, and eliding on applied would re-issue the same doomed set
	// before every function call instead of converging.
	lastReq int
	last    int // last applied clock, for reporting
}

// Name implements Strategy.
func (m *ManDyn) Name() string { return "mandyn" }

// LastApplied returns the clock most recently reported applied by the
// setter — the achieved frequency, which under clamping differs from the
// table entry.
func (m *ManDyn) LastApplied() int { return m.last }

// Setup implements Strategy.
func (m *ManDyn) Setup(s Setter) error {
	m.lastReq, m.last = 0, 0
	def := m.Default
	if def == 0 {
		def = s.MaxSMClock()
	}
	applied, err := s.SetSMClock(def)
	if err != nil {
		return err
	}
	m.lastReq, m.last = def, applied
	return nil
}

// Apply implements Strategy.
func (m *ManDyn) Apply(s Setter, function string) error {
	mhz, ok := m.Table[function]
	if !ok {
		mhz = m.Default
		if mhz == 0 {
			mhz = s.MaxSMClock()
		}
	}
	if mhz == m.lastReq {
		return nil
	}
	applied, err := s.SetSMClock(mhz)
	if err != nil {
		m.lastReq = 0 // unknown state: do not elide the next set
		return err
	}
	m.lastReq, m.last = mhz, applied
	return nil
}

// State returns ManDyn's elision state (last requested and last applied
// clock), for checkpointing.
func (m *ManDyn) State() (lastReqMHz, lastAppliedMHz int) { return m.lastReq, m.last }

// SetState restores elision state captured by State. A restored ManDyn
// elides or issues exactly the sets the uninterrupted run would have.
func (m *ManDyn) SetState(lastReqMHz, lastAppliedMHz int) {
	m.lastReq, m.last = lastReqMHz, lastAppliedMHz
}

// UnwrapStrategy strips observability wrappers (Traced) off a strategy,
// returning the underlying policy object — the one carrying restorable
// state.
func UnwrapStrategy(s Strategy) Strategy {
	for {
		t, ok := s.(*Traced)
		if !ok {
			return s
		}
		s = t.Inner
	}
}

// PowerCap is the alternative control knob: leave clocks to the governor
// but cap board power, letting the device derate itself. Sites prefer this
// when they distrust per-application clock settings; the ext-powercap
// experiment compares it against the paper's frequency scaling.
type PowerCap struct {
	Watts float64
}

// Name implements Strategy.
func (p PowerCap) Name() string { return fmt.Sprintf("powercap-%.0f", p.Watts) }

// Setup implements Strategy.
func (p PowerCap) Setup(s Setter) error {
	if err := s.ResetClocks(); err != nil {
		return err
	}
	return s.SetPowerLimitW(p.Watts)
}

// Apply implements Strategy.
func (PowerCap) Apply(Setter, string) error { return nil }

// String renders the tuned table for logs and reports.
func (m *ManDyn) String() string {
	names := make([]string, 0, len(m.Table))
	for n := range m.Table {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("mandyn{")
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", n, m.Table[n])
	}
	b.WriteString("}")
	return b.String()
}
