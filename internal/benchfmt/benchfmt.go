// Package benchfmt defines the JSON schema of the tracked SPH benchmark
// results (BENCH_sph.json): the shared contract between cmd/sphbench,
// which writes it, and cmd/perfgate, which diffs a fresh run against the
// committed baseline. Field additions are backward-compatible; renames are
// schema breaks and need a coordinated baseline refresh.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"

	"sphenergy/internal/atomicio"
)

// PassNames fixes the order and JSON keys of the timed pipeline passes
// (mirrors sph.PassNames; kept here as the schema's own vocabulary so the
// gate does not need the compute layer).
var PassNames = []string{
	"find_neighbors",
	"xmass",
	"gradh",
	"eos",
	"iad",
	"av_switches",
	"momentum_energy",
	"timestep",
	"update",
}

// TotalKey is the synthetic "pass" holding the whole-step cost.
const TotalKey = "total"

// FoldedPasses are the pair-interaction passes that the symmetric
// neighbor-list mode folds to visit each pair once; the symmetric speedup
// targets are expressed over their summed cost.
var FoldedPasses = []string{"xmass", "gradh", "iad", "momentum_energy"}

// FoldedNs sums the folded pair-interaction passes of a per-pass timing
// map, in ns per particle per step.
func FoldedNs(ns map[string]float64) float64 {
	sum := 0.0
	for _, p := range FoldedPasses {
		sum += ns[p]
	}
	return sum
}

// ModeResult is one pipeline variant's timing at one problem size.
type ModeResult struct {
	// NsPerParticleStep maps each pass (plus "total") to nanoseconds per
	// particle per step, averaged over the measured steps. For the skin
	// mode find_neighbors is the amortized cost across rebuild and refresh
	// steps.
	NsPerParticleStep map[string]float64 `json:"ns_per_particle_step"`
	StepMs            float64            `json:"step_ms"`
	// AllocsPerStep is the mean heap allocation count per measured step
	// (runtime.MemStats.Mallocs delta), the 0-alloc hot-loop regression
	// tripwire.
	AllocsPerStep float64 `json:"allocs_per_step,omitempty"`
	// Skin-mode extras: how often the candidate list was rebuilt over the
	// measured steps, the mean steps between rebuilds, and the
	// find_neighbors cost split by step kind.
	Skin                 float64 `json:"skin,omitempty"`
	Rebuilds             int     `json:"rebuilds,omitempty"`
	Refreshes            int     `json:"refreshes,omitempty"`
	RebuildIntervalSteps float64 `json:"rebuild_interval_steps,omitempty"`
	RebuildNsPerParticle float64 `json:"find_neighbors_rebuild_ns_per_particle,omitempty"`
	RefreshNsPerParticle float64 `json:"find_neighbors_refresh_ns_per_particle,omitempty"`
	// Cell-slab extras (neighbor_list_cellslab mode only): the rebuild cost
	// split into the slab candidate gather and the blocked re-filter, per
	// particle per rebuild.
	GatherNsPerParticle float64 `json:"find_neighbors_gather_ns_per_particle,omitempty"`
	FilterNsPerParticle float64 `json:"find_neighbors_filter_ns_per_particle,omitempty"`
}

// SweepPoint is one GOMAXPROCS setting of the multicore sweep, run on the
// skin-mode pipeline.
type SweepPoint struct {
	Procs             int                `json:"procs"`
	NsPerParticleStep map[string]float64 `json:"ns_per_particle_step"`
	StepMs            float64            `json:"step_ms"`
	// SpeedupVs1 is the 1-proc step time over this point's step time.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	// Efficiency maps each pass (plus "total") to its parallel efficiency
	// t1/(P·tP) against the sweep's 1-proc point — 1.0 is perfect scaling.
	Efficiency map[string]float64 `json:"parallel_efficiency"`
	// Skipped marks sweep points whose worker count exceeds the machine's
	// logical CPUs: running them would measure oversubscription, not
	// scaling, so sphbench records the point without timings instead.
	Skipped bool `json:"skipped,omitempty"`
}

// SizeResult is one problem size's before/after measurement.
type SizeResult struct {
	NSide    int                   `json:"n_side"`
	N        int                   `json:"n"`
	NgTarget int                   `json:"ng_target"`
	Warmup   int                   `json:"warmup_steps"`
	Steps    int                   `json:"measured_steps"`
	Modes    map[string]ModeResult `json:"modes"`
	// SpeedupTotal is closure_walk step time over neighbor_list step time.
	SpeedupTotal float64 `json:"speedup_total"`
	// SpeedupSkin is neighbor_list step time over neighbor_list_skin step
	// time, and SpeedupFindNeighborsSkin the same ratio for the
	// find_neighbors pass alone (the amortization the skin buys).
	SpeedupSkin              float64 `json:"speedup_skin"`
	SpeedupFindNeighborsSkin float64 `json:"speedup_find_neighbors_skin"`
	// SpeedupSymFolded is the summed folded-pass cost (see FoldedPasses) of
	// neighbor_list_skin over neighbor_list_symmetric — the win from
	// visiting each pair once. SpeedupSymTotal is the same ratio on whole
	// steps.
	SpeedupSymFolded float64 `json:"speedup_symmetric_folded,omitempty"`
	SpeedupSymTotal  float64 `json:"speedup_symmetric_total,omitempty"`
	// SpeedupCellSlabRebuild is the find_neighbors rebuild-step cost of
	// neighbor_list_symmetric over neighbor_list_cellslab — the win of the
	// cell-slab folded gather on the candidate rebuild itself.
	SpeedupCellSlabRebuild float64 `json:"speedup_cellslab_rebuild,omitempty"`
	// Sweep holds the optional GOMAXPROCS sweep (-gomaxprocs), ascending
	// by Procs. SweepMode names the pipeline mode the sweep ran on
	// (neighbor_list_symmetric once the symmetric path became the default
	// sweep subject; empty means the historical neighbor_list_skin).
	Sweep     []SweepPoint `json:"gomaxprocs_sweep,omitempty"`
	SweepMode string       `json:"sweep_mode,omitempty"`
}

// Output is the whole benchmark file.
type Output struct {
	Benchmark  string `json:"benchmark"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// NumCPU records the machine's logical CPU count at measurement time;
	// the gate uses it to skip multicore-efficiency assertions on hosts
	// that cannot run the sweep's worker counts in parallel.
	NumCPU int          `json:"num_cpu,omitempty"`
	Sizes  []SizeResult `json:"sizes"`
}

// Size returns the result for one lattice side, nil when absent.
func (o *Output) Size(nSide int) *SizeResult {
	for i := range o.Sizes {
		if o.Sizes[i].NSide == nSide {
			return &o.Sizes[i]
		}
	}
	return nil
}

// ReadFile loads and validates a benchmark file.
func ReadFile(path string) (*Output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	var o Output
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("benchfmt: parse %s: %w", path, err)
	}
	if o.Benchmark == "" || len(o.Sizes) == 0 {
		return nil, fmt.Errorf("benchfmt: %s is not a benchmark file (empty benchmark/sizes)", path)
	}
	return &o, nil
}

// WriteFile writes the benchmark as indented JSON.
func (o *Output) WriteFile(path string) error {
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	data = append(data, '\n')
	if err := atomicio.WriteFileBytes(path, data); err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	return nil
}
