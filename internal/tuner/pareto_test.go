package tuner

import (
	"testing"
	"testing/quick"

	"sphenergy/internal/rng"
)

func TestParetoFrontFiltersDominated(t *testing.T) {
	ms := []Measurement{
		{MHz: 1410, TimeS: 1.0, EnergyJ: 100},
		{MHz: 1200, TimeS: 1.1, EnergyJ: 90},
		{MHz: 1100, TimeS: 1.2, EnergyJ: 95}, // dominated by 1200
		{MHz: 1005, TimeS: 1.3, EnergyJ: 80},
		{MHz: 900, TimeS: 1.5, EnergyJ: 85}, // dominated by 1005
	}
	front := ParetoFront(ms)
	if len(front) != 3 {
		t.Fatalf("front size %d, want 3: %+v", len(front), front)
	}
	for i, want := range []int{1410, 1200, 1005} {
		if front[i].MHz != want {
			t.Errorf("front[%d] = %d MHz, want %d", i, front[i].MHz, want)
		}
	}
}

func TestParetoFrontProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(40)
		ms := make([]Measurement, n)
		for i := range ms {
			ms[i] = Measurement{MHz: 1000 + i, TimeS: 1 + r.Float64(), EnergyJ: 50 + 100*r.Float64()}
		}
		front := ParetoFront(ms)
		if len(front) == 0 || len(front) > n {
			return false
		}
		// No front member dominates another; every non-front member is
		// dominated by some front member.
		for i := range front {
			for j := range front {
				if i != j && Dominates(front[i], front[j]) {
					return false
				}
			}
		}
		inFront := func(m Measurement) bool {
			for _, fm := range front {
				if fm == m {
					return true
				}
			}
			return false
		}
		for _, m := range ms {
			if inFront(m) {
				continue
			}
			dominated := false
			for _, fm := range front {
				if Dominates(fm, m) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKneePoint(t *testing.T) {
	front := []Measurement{
		{MHz: 1410, TimeS: 1.0, EnergyJ: 100},
		{MHz: 1230, TimeS: 1.03, EnergyJ: 85}, // big energy win for small time cost
		{MHz: 1005, TimeS: 1.3, EnergyJ: 80},
	}
	knee, ok := KneePoint(front)
	if !ok || knee.MHz != 1230 {
		t.Errorf("knee = %d MHz, want 1230", knee.MHz)
	}
}

func TestKneePointDegenerate(t *testing.T) {
	if _, ok := KneePoint(nil); ok {
		t.Error("empty front should report !ok")
	}
	one := []Measurement{{MHz: 1410, TimeS: 1, EnergyJ: 1}}
	if k, ok := KneePoint(one); !ok || k.MHz != 1410 {
		t.Error("single-point knee")
	}
	two := []Measurement{
		{MHz: 1410, TimeS: 1, EnergyJ: 100},
		{MHz: 1005, TimeS: 2, EnergyJ: 40},
	}
	if k, _ := KneePoint(two); k.MHz != 1005 {
		t.Errorf("two-point knee picked %d (want the lower-EDP one)", k.MHz)
	}
}

func TestParetoOnRealSweep(t *testing.T) {
	// The front of a real frequency sweep is non-trivial and includes both
	// extremes' neighborhoods.
	res, err := TuneKernel("k", computeBound(), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(res.All)
	if len(front) < 2 {
		t.Fatalf("front too small: %d", len(front))
	}
	// The fastest configuration (max clock) is always on the front.
	if front[0].MHz != 1410 {
		t.Errorf("fastest front member %d, want 1410", front[0].MHz)
	}
	if _, ok := KneePoint(front); !ok {
		t.Error("no knee on a real front")
	}
}
