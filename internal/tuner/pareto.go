package tuner

import "sort"

// Pareto analysis over tuning measurements: §IV-D frames dynamic frequency
// selection as identifying Pareto-optimal (time, energy) configurations.
// ParetoFront filters the measurements to the non-dominated set; KneePoint
// picks the balanced trade-off on that front.

// ParetoFront returns the measurements not dominated in (TimeS, EnergyJ):
// a configuration is dominated if another is at least as good on both axes
// and strictly better on one. The result is sorted by increasing time.
func ParetoFront(ms []Measurement) []Measurement {
	if len(ms) == 0 {
		return nil
	}
	sorted := append([]Measurement(nil), ms...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].TimeS != sorted[b].TimeS {
			return sorted[a].TimeS < sorted[b].TimeS
		}
		return sorted[a].EnergyJ < sorted[b].EnergyJ
	})
	var front []Measurement
	bestE := 0.0
	for _, m := range sorted {
		if len(front) == 0 || m.EnergyJ < bestE {
			front = append(front, m)
			bestE = m.EnergyJ
		}
	}
	return front
}

// KneePoint returns the front member with the largest normalized distance
// from the line connecting the front's extremes — the conventional "knee"
// of the trade-off curve. For fronts with fewer than three points the
// lowest-EDP member is returned. ok is false for empty input.
func KneePoint(front []Measurement) (Measurement, bool) {
	switch len(front) {
	case 0:
		return Measurement{}, false
	case 1:
		return front[0], true
	case 2:
		if front[0].TimeS*front[0].EnergyJ <= front[1].TimeS*front[1].EnergyJ {
			return front[0], true
		}
		return front[1], true
	}
	first, last := front[0], front[len(front)-1]
	dt := last.TimeS - first.TimeS
	de := last.EnergyJ - first.EnergyJ
	if dt == 0 && de == 0 {
		return front[0], true
	}
	// Normalize axes so neither unit dominates the distance.
	nt := func(t float64) float64 {
		if dt == 0 {
			return 0
		}
		return (t - first.TimeS) / dt
	}
	ne := func(e float64) float64 {
		if de == 0 {
			return 0
		}
		return (e - first.EnergyJ) / de
	}
	best := front[0]
	bestD := -1.0
	for _, m := range front {
		// Distance from the (0,0)-(1,1) line in normalized space:
		// |x - y| / sqrt(2); the constant factor cancels.
		x, y := nt(m.TimeS), ne(m.EnergyJ)
		d := x - y
		if d < 0 {
			d = -d
		}
		if d > bestD {
			bestD = d
			best = m
		}
	}
	return best, true
}

// Dominates reports whether a dominates b in the (time, energy) plane.
func Dominates(a, b Measurement) bool {
	return a.TimeS <= b.TimeS && a.EnergyJ <= b.EnergyJ &&
		(a.TimeS < b.TimeS || a.EnergyJ < b.EnergyJ)
}
