package tuner

import (
	"math"
	"sync"

	"sphenergy/internal/gpusim"
)

// Cache memoizes device measurements across tuning sessions. The figure
// drivers re-tune the same pipeline repeatedly — Fig. 2's sweep feeds the
// ManDyn tables Figs. 6–8 replay — so a session-scoped cache collapses those
// identical sweeps into one set of device measurements.
//
// The key covers everything measure() depends on: the device spec (by
// name — specs are the named presets of gpusim), the full kernel
// descriptor (name, problem size, per-item work), the locked clock, the
// iteration count, and the exact pre-drawn noise factors (which fold in
// Seed and NoiseRel). A hit therefore returns bit-identical time/energy to
// the measurement it replaced, and results with caching on are
// indistinguishable from caching off. Safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	m      map[cacheKey]Measurement
	hits   int64
	misses int64
}

type cacheKey struct {
	spec       string
	kernel     gpusim.KernelDesc
	mhz        int
	iterations int
	noiseRel   float64
	noiseSig   uint64 // FNV-1a over the pre-drawn noise bits (0 when noiseless)
}

// NewCache returns an empty measurement cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]Measurement)}
}

// noiseSignature folds the exact bit patterns of the pre-drawn noise factors
// into one value, so two measurements share a key only when they would
// consume identical noise.
func noiseSignature(vals []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range vals {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

func (c *Cache) key(spec gpusim.Spec, kernel gpusim.KernelDesc, mhz, iterations int, noiseRel float64, noiseVals []float64) cacheKey {
	return cacheKey{
		spec:       spec.Name,
		kernel:     kernel,
		mhz:        mhz,
		iterations: iterations,
		noiseRel:   noiseRel,
		noiseSig:   noiseSignature(noiseVals),
	}
}

func (c *Cache) get(k cacheKey) (Measurement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.m[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return m, ok
}

func (c *Cache) put(k cacheKey, m Measurement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = m
}

// Stats returns the cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached measurements.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
