package tuner

import (
	"bytes"
	"strings"
	"testing"

	"sphenergy/internal/gpusim"
	"sphenergy/internal/telemetry"
)

func TestTuneKernelRecordsSweepMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	spec := gpusim.A100SXM480GB()
	kernel := gpusim.KernelDesc{Items: 10e6, FlopsPerItem: 2000, BytesPerItem: 400, EffFactor: 0.5}
	res, err := TuneKernel("iad", kernel, Config{
		Spec:    spec,
		Params:  Params{FrequenciesMHz: []int{1410, 1200, 1005}},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`tuner_evaluations_total{kernel="iad"} 3`,
		`tuner_candidate_score{kernel="iad",mhz="1410"}`,
		`tuner_candidate_score{kernel="iad",mhz="1005"}`,
		`tuner_candidate_time_s{kernel="iad",mhz="1200"}`,
		`tuner_best_mhz{kernel="iad"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	if res.Evaluations != 3 {
		t.Errorf("evaluations = %d", res.Evaluations)
	}
}

func TestTuneKernelNilRegistryIsFine(t *testing.T) {
	spec := gpusim.A100SXM480GB()
	kernel := gpusim.KernelDesc{Items: 10e6, FlopsPerItem: 2000, BytesPerItem: 400, EffFactor: 0.5}
	if _, err := TuneKernel("iad", kernel, Config{
		Spec:   spec,
		Params: Params{FrequenciesMHz: []int{1410, 1005}},
	}); err != nil {
		t.Fatal(err)
	}
}
