package tuner

import (
	"reflect"
	"testing"

	"sphenergy/internal/gpusim"
)

// The cache must be invisible in the results: a cached sweep is bit-identical
// to an uncached one, and a repeat sweep answers from the cache alone.
func TestCacheBitIdenticalToUncached(t *testing.T) {
	for _, noise := range []float64{0, 0.02} {
		cfg := baseCfg()
		cfg.NoiseRel = noise
		cfg.Seed = 42

		cold, err := TuneKernel("k", computeBound(), cfg)
		if err != nil {
			t.Fatal(err)
		}

		cached := cfg
		cached.Cache = NewCache()
		warm1, err := TuneKernel("k", computeBound(), cached)
		if err != nil {
			t.Fatal(err)
		}
		warm2, err := TuneKernel("k", computeBound(), cached)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(cold, warm1) {
			t.Errorf("noise=%v: first cached sweep differs from uncached", noise)
		}
		if !reflect.DeepEqual(cold, warm2) {
			t.Errorf("noise=%v: repeat cached sweep differs from uncached", noise)
		}
		hits, misses := cached.Cache.Stats()
		if misses != int64(len(cold.All)) {
			t.Errorf("noise=%v: misses = %d, want %d (one per clock on the cold sweep)",
				noise, misses, len(cold.All))
		}
		if hits != int64(len(cold.All)) {
			t.Errorf("noise=%v: hits = %d, want %d (the repeat sweep should be all hits)",
				noise, hits, len(cold.All))
		}
		if warm2.Evaluations != cold.Evaluations {
			t.Errorf("noise=%v: cached Evaluations = %d, want %d",
				noise, warm2.Evaluations, cold.Evaluations)
		}
	}
}

// Changing any keyed input — kernel shape, seed (via the noise stream), or
// objective — must not cross-contaminate results through the cache.
func TestCacheKeySeparatesInputs(t *testing.T) {
	c := NewCache()

	cfg := baseCfg()
	cfg.NoiseRel = 0.02
	cfg.Seed = 1
	cfg.Cache = c
	a, err := TuneKernel("k", computeBound(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Different kernel shape: all misses, different result.
	b, err := TuneKernel("k", memoryBound(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.All, b.All) {
		t.Error("different kernels returned identical measurements")
	}

	// Different seed → different noise stream → no hits.
	_, missesBefore := c.Stats()
	cfg2 := cfg
	cfg2.Seed = 2
	if _, err := TuneKernel("k", computeBound(), cfg2); err != nil {
		t.Fatal(err)
	}
	_, missesAfter := c.Stats()
	if missesAfter-missesBefore != int64(len(a.All)) {
		t.Errorf("seed change produced %d misses, want %d", missesAfter-missesBefore, len(a.All))
	}

	// Objective is not part of the key: a hit-only re-sweep under a new
	// objective must still rescore the cached time/energy pairs.
	cfg3 := cfg
	cfg3.Objective = TimeToSolution
	c2, err := TuneKernel("k", computeBound(), cfg3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.All {
		if c2.All[i].TimeS != a.All[i].TimeS || c2.All[i].EnergyJ != a.All[i].EnergyJ {
			t.Fatalf("objective change altered cached time/energy at %d MHz", a.All[i].MHz)
		}
		if c2.All[i].Score != TimeToSolution(a.All[i].TimeS, a.All[i].EnergyJ) {
			t.Fatalf("cached measurement not rescored under new objective at %d MHz", a.All[i].MHz)
		}
	}
}

// The cache must be safe under the brute-force worker pool and under
// concurrent TuneKernel calls sharing one cache (the parallel experiment
// driver does exactly this).
func TestCacheConcurrentSharedUse(t *testing.T) {
	c := NewCache()
	cfg := baseCfg()
	cfg.NoiseRel = 0.01
	cfg.Seed = 7
	cfg.Cache = c

	ref, err := TuneKernel("k", computeBound(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	results := make([]*Result, workers)
	errs := make([]error, workers)
	done := make(chan int)
	for w := 0; w < workers; w++ {
		go func(w int) {
			results[w], errs[w] = TuneKernel("k", computeBound(), cfg)
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatal(errs[w])
		}
		if !reflect.DeepEqual(results[w], ref) {
			t.Errorf("worker %d: concurrent cached sweep differs from reference", w)
		}
	}
}

func TestNoiseSignatureDistinguishesStreams(t *testing.T) {
	a := noiseSignature([]float64{1.0, 2.0})
	b := noiseSignature([]float64{2.0, 1.0})
	if a == b {
		t.Error("order-swapped noise streams collide")
	}
	if noiseSignature(nil) != noiseSignature([]float64{}) {
		t.Error("empty stream signatures differ")
	}
	if noiseSignature([]float64{0}) == noiseSignature(nil) {
		t.Error("zero-valued draw collides with empty stream")
	}
	spec := gpusim.A100PCIE40GB()
	k1 := (&Cache{}).key(spec, computeBound(), 1200, 3, 0.02, nil)
	k2 := (&Cache{}).key(spec, memoryBound(), 1200, 3, 0.02, nil)
	if k1 == k2 {
		t.Error("distinct kernels share a cache key")
	}
}
