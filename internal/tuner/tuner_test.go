package tuner

import (
	"testing"

	"sphenergy/internal/gpusim"
)

func computeBound() gpusim.KernelDesc {
	return gpusim.KernelDesc{Items: 50e6, FlopsPerItem: 30000, BytesPerItem: 600, EffFactor: 0.5}
}

func memoryBound() gpusim.KernelDesc {
	return gpusim.KernelDesc{Items: 50e6, FlopsPerItem: 100, BytesPerItem: 4000, EffFactor: 0.5}
}

func baseCfg() Config {
	return Config{
		Spec:   gpusim.A100PCIE40GB(),
		Params: Params{MinMHz: 1005, MaxMHz: 1410},
	}
}

func TestBruteForceCoversSpace(t *testing.T) {
	res, err := TuneKernel("k", computeBound(), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 1005..1410 in 15 MHz steps = 28 clocks.
	if len(res.All) != 28 {
		t.Errorf("evaluated %d configurations, want 28", len(res.All))
	}
	if res.Evaluations != 28 {
		t.Errorf("Evaluations = %d", res.Evaluations)
	}
	// Results sorted by descending frequency.
	for i := 1; i < len(res.All); i++ {
		if res.All[i].MHz >= res.All[i-1].MHz {
			t.Fatal("All not sorted by descending MHz")
		}
	}
}

func TestBestIsGlobalMinimum(t *testing.T) {
	res, err := TuneKernel("k", memoryBound(), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.All {
		if m.Score < res.Best.Score {
			t.Fatalf("Best %v not the minimum (found %v at %d MHz)", res.Best.Score, m.Score, m.MHz)
		}
	}
}

func TestEDPObjectiveSeparatesKernelClasses(t *testing.T) {
	// The Fig. 2 result: compute-bound kernels tune to high clocks,
	// memory-bound kernels to low clocks.
	cb, err := TuneKernel("compute", computeBound(), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	mb, err := TuneKernel("memory", memoryBound(), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cb.Best.MHz < 1300 {
		t.Errorf("compute-bound best %d MHz, want >= 1300", cb.Best.MHz)
	}
	if mb.Best.MHz > 1110 {
		t.Errorf("memory-bound best %d MHz, want <= 1110", mb.Best.MHz)
	}
}

func TestTimeObjectivePicksMaxClock(t *testing.T) {
	cfg := baseCfg()
	cfg.Objective = TimeToSolution
	res, err := TuneKernel("k", computeBound(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.MHz != 1410 {
		t.Errorf("time objective best %d, want 1410", res.Best.MHz)
	}
}

func TestEnergyObjectivePicksLowerClockThanEDP(t *testing.T) {
	cfgEDP := baseCfg()
	cfgE := baseCfg()
	cfgE.Objective = EnergyToSolution
	k := computeBound()
	edp, _ := TuneKernel("k", k, cfgEDP)
	energy, _ := TuneKernel("k", k, cfgE)
	if energy.Best.MHz > edp.Best.MHz {
		t.Errorf("energy objective (%d) should tune at or below EDP objective (%d)",
			energy.Best.MHz, edp.Best.MHz)
	}
}

func TestExplicitFrequencyList(t *testing.T) {
	cfg := baseCfg()
	cfg.Params = Params{FrequenciesMHz: []int{1410, 1110, 1005}}
	res, err := TuneKernel("k", memoryBound(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 3 {
		t.Errorf("evaluated %d, want 3", len(res.All))
	}
}

func TestRandomSampleSubset(t *testing.T) {
	cfg := baseCfg()
	cfg.Strategy = RandomSample
	cfg.SampleFraction = 0.25
	cfg.Seed = 42
	res, err := TuneKernel("k", memoryBound(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 7 { // 28 * 0.25
		t.Errorf("sampled %d configurations, want 7", len(res.All))
	}
}

func TestHillClimbStopsEarly(t *testing.T) {
	cfg := baseCfg()
	cfg.Strategy = HillClimb
	// Compute-bound kernels have their optimum near the top, so the walk
	// terminates after a few evaluations.
	res, err := TuneKernel("k", computeBound(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations >= 28 {
		t.Errorf("hill climb evaluated the whole space (%d)", res.Evaluations)
	}
	// Its answer must be close to the brute-force answer for this unimodal
	// objective.
	bf, _ := TuneKernel("k", computeBound(), baseCfg())
	if diff := res.Best.MHz - bf.Best.MHz; diff > 30 || diff < -30 {
		t.Errorf("hill climb best %d vs brute force %d", res.Best.MHz, bf.Best.MHz)
	}
}

func TestUnknownStrategy(t *testing.T) {
	cfg := baseCfg()
	cfg.Strategy = "simulated_annealing"
	if _, err := TuneKernel("k", computeBound(), cfg); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestEmptySearchSpace(t *testing.T) {
	cfg := baseCfg()
	cfg.Params = Params{MinMHz: 2000, MaxMHz: 3000}
	if _, err := TuneKernel("k", computeBound(), cfg); err == nil {
		t.Error("empty space accepted")
	}
}

func TestTuneTable(t *testing.T) {
	kernels := map[string]gpusim.KernelDesc{
		"compute": computeBound(),
		"memory":  memoryBound(),
	}
	table, results, err := TuneTable(kernels, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 2 || len(results) != 2 {
		t.Fatalf("table size %d", len(table))
	}
	if table["compute"] <= table["memory"] {
		t.Errorf("table ordering: compute %d should exceed memory %d",
			table["compute"], table["memory"])
	}
}

func TestNoiseRobustness(t *testing.T) {
	// With realistic measurement noise and several iterations, the tuner's
	// pick stays close to the noiseless optimum.
	clean, err := TuneKernel("k", computeBound(), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg()
	cfg.NoiseRel = 0.02
	cfg.Iterations = 7
	cfg.Seed = 5
	noisy, err := TuneKernel("k", computeBound(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff := noisy.Best.MHz - clean.Best.MHz
	if diff < 0 {
		diff = -diff
	}
	if diff > 60 {
		t.Errorf("noisy best %d vs clean %d: drifted more than 4 clock steps", noisy.Best.MHz, clean.Best.MHz)
	}
}

func TestNoiseIsDeterministicPerSeed(t *testing.T) {
	cfg := baseCfg()
	cfg.NoiseRel = 0.05
	cfg.Seed = 11
	a, _ := TuneKernel("k", memoryBound(), cfg)
	b, _ := TuneKernel("k", memoryBound(), cfg)
	if a.Best.MHz != b.Best.MHz || a.Best.Score != b.Best.Score {
		t.Error("same seed produced different noisy tuning results")
	}
}

func TestMeasurementFieldsPopulated(t *testing.T) {
	res, err := TuneKernel("named", computeBound(), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelName != "named" {
		t.Error("kernel name lost")
	}
	for _, m := range res.All {
		if m.TimeS <= 0 || m.EnergyJ <= 0 || m.Score <= 0 {
			t.Fatalf("empty measurement at %d MHz: %+v", m.MHz, m)
		}
	}
}
