package tuner

import (
	"runtime"
	"testing"

	"sphenergy/internal/gpusim"
)

// TestBruteForceConcurrentMatchesSerial pins the determinism contract of
// the concurrent sweep: with measurement noise enabled, a brute-force run
// under real parallelism must be bit-identical to the single-worker run,
// because noise sequences are pre-drawn in candidate order.
func TestBruteForceConcurrentMatchesSerial(t *testing.T) {
	k := computeBound()
	cfg := Config{
		Spec:       gpusim.A100PCIE40GB(),
		Params:     Params{MinMHz: 1005, MaxMHz: 1410},
		Strategy:   BruteForce,
		Iterations: 5,
		Seed:       11,
		NoiseRel:   0.03,
	}

	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	conc, err := TuneKernel("mom", k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(1)
	serial, err := TuneKernel("mom", k, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(conc.All) != len(serial.All) {
		t.Fatalf("evaluated %d configs concurrently vs %d serially", len(conc.All), len(serial.All))
	}
	for i := range conc.All {
		if conc.All[i] != serial.All[i] {
			t.Errorf("candidate %d differs: concurrent %+v serial %+v", i, conc.All[i], serial.All[i])
		}
	}
	if conc.Best != serial.Best {
		t.Errorf("best differs: concurrent %+v serial %+v", conc.Best, serial.Best)
	}
	if conc.Evaluations != serial.Evaluations {
		t.Errorf("evaluation counts differ: %d vs %d", conc.Evaluations, serial.Evaluations)
	}
}
