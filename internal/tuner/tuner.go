// Package tuner reimplements the KernelTuner workflow the paper uses in
// §III-C: run one GPU kernel repeatedly over a search space of tunable
// parameters — here the device-wise GPU compute frequency — measuring
// time-to-solution and energy, and pick the configuration that optimizes a
// chosen objective (EDP by default).
//
// The entry point mirrors KernelTuner's tune_kernel(kernel_name,
// kernel_source, problem_size, params): the kernel "source" is a
// gpusim.KernelDesc generator, the problem size fixes the work items, and
// params carries the candidate frequency list.
package tuner

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"sphenergy/internal/events"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/par"
	"sphenergy/internal/rng"
	"sphenergy/internal/telemetry"
)

// Objective scores one measured configuration; lower is better.
type Objective func(timeS, energyJ float64) float64

// Built-in objectives.
var (
	// TimeToSolution minimizes kernel duration.
	TimeToSolution Objective = func(t, _ float64) float64 { return t }
	// EnergyToSolution minimizes kernel energy.
	EnergyToSolution Objective = func(_, e float64) float64 { return e }
	// EDP minimizes the energy-delay product, the paper's tuning metric.
	EDP Objective = func(t, e float64) float64 { return t * e }
	// ED2P minimizes energy × delay², biased further toward performance.
	ED2P Objective = func(t, e float64) float64 { return t * t * e }
)

// StrategyKind selects the search strategy, as KernelTuner's `strategy=`.
type StrategyKind string

// Search strategies.
const (
	// BruteForce evaluates the entire search space (KernelTuner's default).
	BruteForce StrategyKind = "brute_force"
	// RandomSample evaluates a random subset of the space.
	RandomSample StrategyKind = "random_sample"
	// HillClimb starts at the maximum clock and walks downhill greedily.
	HillClimb StrategyKind = "greedy_ils"
)

// Params is the tunable-parameter dictionary. Frequency is the only
// device-wise parameter the paper tunes; the struct leaves room for the
// usual kernel parameters without implementing dead code.
type Params struct {
	// FrequenciesMHz is the candidate application-clock list. Empty means
	// all supported clocks in [MinMHz, MaxMHz].
	FrequenciesMHz []int
	// MinMHz/MaxMHz bound the default candidate list (the paper uses
	// 1005–1410 MHz, having found lower clocks unprofitable).
	MinMHz, MaxMHz int
}

// Config configures a tuning session.
type Config struct {
	Spec      gpusim.Spec
	Params    Params
	Objective Objective
	Strategy  StrategyKind
	// Iterations is the number of times each configuration is measured
	// (KernelTuner benchmarks each configuration several times); the
	// simulated device is deterministic, so this mainly exercises the
	// averaging path. Default 3.
	Iterations int
	// SampleFraction for RandomSample (default 0.5).
	SampleFraction float64
	// Seed for RandomSample and measurement noise.
	Seed uint64
	// NoiseRel injects relative Gaussian measurement noise (e.g. 0.02 for
	// 2%) into each time/energy sample, modeling the run-to-run variation
	// real KernelTuner measurements face; Iterations averages it out.
	NoiseRel float64
	// Metrics, when non-nil, receives the sweep's progress: evaluation
	// counts and per-candidate time/energy/score gauges labeled by kernel
	// and frequency, live-scrapable while a long tuning session runs.
	Metrics *telemetry.Registry
	// Cache, when non-nil, memoizes device measurements across tuning
	// sessions keyed by (spec, kernel descriptor, MHz, iterations, noise
	// stream); repeat sweeps replay cached time/energy bit-identically
	// instead of re-measuring. Evaluations still counts every logical
	// evaluation, so a Result is byte-identical with or without a cache.
	Cache *Cache
	// Events, when non-nil, receives one tuner-measure event per evaluated
	// candidate (measured time/energy/score, cache-hit flag) and one
	// tuner-select event per kernel — the decision ledger's record of why
	// ManDyn's table says what it says. Concurrent sweeps emit measure
	// events in completion order; consumers must key on (kernel, MHz), not
	// arrival order.
	Events *events.Ledger
}

// Measurement is one evaluated configuration.
type Measurement struct {
	MHz     int
	TimeS   float64
	EnergyJ float64
	Score   float64
}

// Result is the outcome of TuneKernel.
type Result struct {
	KernelName string
	Best       Measurement
	// All contains every evaluated configuration, sorted by descending MHz
	// (the Fig. 2 table rows).
	All []Measurement
	// Evaluations counts device measurements performed.
	Evaluations int
}

// candidates resolves the candidate frequency list.
func (c Config) candidates() []int {
	if len(c.Params.FrequenciesMHz) > 0 {
		out := append([]int(nil), c.Params.FrequenciesMHz...)
		sort.Sort(sort.Reverse(sort.IntSlice(out)))
		return out
	}
	min, max := c.Params.MinMHz, c.Params.MaxMHz
	if max == 0 {
		max = c.Spec.MaxSMClockMHz
	}
	if min == 0 {
		min = c.Spec.MinSMClockMHz
	}
	var out []int
	for _, f := range c.Spec.SupportedClocksMHz() {
		if f >= min && f <= max {
			out = append(out, f)
		}
	}
	return out
}

// measure runs the kernel at a locked clock on a fresh device and returns
// the averaged time and energy. noiseVals, when non-nil, supplies the
// 2*iterations pre-drawn Gaussian factors for per-sample measurement noise
// (time then energy, per iteration); pre-drawing decouples the noise
// stream's consumption order from the measurement schedule, so candidates
// can be measured concurrently without perturbing rng-seeded results.
func measure(spec gpusim.Spec, kernel gpusim.KernelDesc, mhz, iterations int, noiseRel float64, noiseVals []float64) Measurement {
	dev := gpusim.NewDevice(spec, 0)
	if _, err := dev.SetApplicationClocks(0, mhz); err != nil {
		panic(fmt.Sprintf("tuner: %v", err))
	}
	var timeS, energy float64
	for i := 0; i < iterations; i++ {
		e0 := dev.EnergyJ()
		dt := dev.Execute(kernel)
		de := dev.EnergyJ() - e0
		if noiseRel > 0 && noiseVals != nil {
			dt *= 1 + noiseRel*noiseVals[2*i]
			de *= 1 + noiseRel*noiseVals[2*i+1]
		}
		timeS += dt
		energy += de
	}
	n := float64(iterations)
	return Measurement{MHz: mhz, TimeS: timeS / n, EnergyJ: energy / n}
}

// TuneKernel searches the frequency space for the kernel's best
// configuration under the configured objective.
func TuneKernel(kernelName string, kernel gpusim.KernelDesc, cfg Config) (*Result, error) {
	if cfg.Objective == nil {
		cfg.Objective = EDP
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 3
	}
	if cfg.Strategy == "" {
		cfg.Strategy = BruteForce
	}
	cands := cfg.candidates()
	if len(cands) == 0 {
		return nil, fmt.Errorf("tuner: empty frequency search space")
	}
	kernel.Name = kernelName

	res := &Result{KernelName: kernelName}
	var noise *rng.Rand
	if cfg.NoiseRel > 0 {
		noise = rng.New(cfg.Seed + 0x9E37)
	}
	evals := cfg.Metrics.Counter("tuner_evaluations_total",
		"frequency configurations measured", telemetry.L("kernel", kernelName))
	// drawNoise hands out the next 2*Iterations factors of the shared noise
	// stream. Callers draw in candidate order, so seeded results stay
	// bit-identical whether candidates are then measured serially or
	// concurrently.
	drawNoise := func() []float64 {
		if noise == nil {
			return nil
		}
		out := make([]float64, 2*cfg.Iterations)
		for i := range out {
			out[i] = noise.Norm()
		}
		return out
	}
	var evalCount int64
	evalWith := func(mhz int, noiseVals []float64) Measurement {
		var m Measurement
		fromCache := false
		if cfg.Cache != nil {
			k := cfg.Cache.key(cfg.Spec, kernel, mhz, cfg.Iterations, cfg.NoiseRel, noiseVals)
			cached, ok := cfg.Cache.get(k)
			if ok {
				m, fromCache = cached, true
			} else {
				m = measure(cfg.Spec, kernel, mhz, cfg.Iterations, cfg.NoiseRel, noiseVals)
				cfg.Cache.put(k, m)
			}
		} else {
			m = measure(cfg.Spec, kernel, mhz, cfg.Iterations, cfg.NoiseRel, noiseVals)
		}
		m.Score = cfg.Objective(m.TimeS, m.EnergyJ)
		atomic.AddInt64(&evalCount, 1)
		evals.Inc()
		if cfg.Events != nil {
			cfg.Events.Emit(events.Event{
				Step: -1, Rank: -1, Type: events.TunerMeasure,
				Subject: kernelName, AppliedMHz: mhz,
				PredTimeS: m.TimeS, PredEnergyJ: m.EnergyJ,
				PredPowerW: powerW(m), PredEDPJs: m.TimeS * m.EnergyJ,
				Value: m.Score, Cached: fromCache,
			})
		}
		if cfg.Metrics != nil {
			labels := []telemetry.Label{
				telemetry.L("kernel", kernelName),
				telemetry.L("mhz", strconv.Itoa(mhz)),
			}
			cfg.Metrics.Gauge("tuner_candidate_time_s",
				"measured kernel time per candidate clock", labels...).Set(m.TimeS)
			cfg.Metrics.Gauge("tuner_candidate_energy_j",
				"measured kernel energy per candidate clock", labels...).Set(m.EnergyJ)
			cfg.Metrics.Gauge("tuner_candidate_score",
				"objective score per candidate clock (lower is better)", labels...).Set(m.Score)
		}
		return m
	}
	eval := func(mhz int) Measurement { return evalWith(mhz, drawNoise()) }

	switch cfg.Strategy {
	case BruteForce:
		// The sweep's candidates are independent measurements on fresh
		// simulated devices, so evaluate them with a worker pool. Noise
		// sequences are pre-drawn in candidate order and each result lands
		// at its candidate's index, keeping result ordering and rng-seeded
		// values identical to a serial sweep.
		all := make([]Measurement, len(cands))
		seqs := make([][]float64, len(cands))
		for i := range cands {
			seqs[i] = drawNoise()
		}
		workers := par.MaxWorkers()
		if workers > len(cands) {
			workers = len(cands)
		}
		if workers <= 1 {
			for i, f := range cands {
				all[i] = evalWith(f, seqs[i])
			}
		} else {
			var wg sync.WaitGroup
			next := int64(-1)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(atomic.AddInt64(&next, 1))
						if i >= len(cands) {
							return
						}
						all[i] = evalWith(cands[i], seqs[i])
					}
				}()
			}
			wg.Wait()
		}
		res.All = all
	case RandomSample:
		frac := cfg.SampleFraction
		if frac <= 0 || frac > 1 {
			frac = 0.5
		}
		n := int(float64(len(cands))*frac + 0.5)
		if n < 1 {
			n = 1
		}
		r := rng.New(cfg.Seed + 1)
		perm := r.Perm(len(cands))
		picked := perm[:n]
		sort.Sort(sort.Reverse(sort.IntSlice(picked)))
		for _, i := range picked {
			res.All = append(res.All, eval(cands[i]))
		}
	case HillClimb:
		// Walk down from the maximum clock while the objective improves.
		i := 0
		cur := eval(cands[i])
		res.All = append(res.All, cur)
		for i+1 < len(cands) {
			next := eval(cands[i+1])
			res.All = append(res.All, next)
			if next.Score >= cur.Score {
				break
			}
			cur = next
			i++
		}
	default:
		return nil, fmt.Errorf("tuner: unknown strategy %q", cfg.Strategy)
	}

	res.Evaluations = int(evalCount)
	if len(res.All) == 0 {
		return nil, fmt.Errorf("tuner: no configurations evaluated")
	}
	best := res.All[0]
	for _, m := range res.All[1:] {
		if m.Score < best.Score {
			best = m
		}
	}
	res.Best = best
	if cfg.Events != nil {
		cfg.Events.Emit(events.Event{
			Step: -1, Rank: -1, Type: events.TunerSelect,
			Subject: kernelName, AppliedMHz: best.MHz,
			PredTimeS: best.TimeS, PredEnergyJ: best.EnergyJ,
			PredPowerW: powerW(best), PredEDPJs: best.TimeS * best.EnergyJ,
			Value: best.Score,
		})
	}
	cfg.Metrics.Gauge("tuner_best_mhz",
		"winning application clock per kernel", telemetry.L("kernel", kernelName)).
		Set(float64(best.MHz))
	// Keep All sorted by descending frequency for reporting.
	sort.Slice(res.All, func(a, b int) bool { return res.All[a].MHz > res.All[b].MHz })
	return res, nil
}

// powerW derives the mean power of a measurement (0 when time is zero).
func powerW(m Measurement) float64 {
	if m.TimeS <= 0 {
		return 0
	}
	return m.EnergyJ / m.TimeS
}

// PredictionTable folds per-kernel sweep results into the ledger's
// prediction lookup, so frequency-decision events carry the model's
// expected time/energy/EDP at the clock they applied.
func PredictionTable(results map[string]*Result) events.Predictions {
	preds := make(events.Predictions, len(results))
	for name, r := range results {
		byClock := make(map[int]events.Prediction, len(r.All))
		for _, m := range r.All {
			byClock[m.MHz] = events.Prediction{
				TimeS:   m.TimeS,
				EnergyJ: m.EnergyJ,
				PowerW:  powerW(m),
				EDPJs:   m.TimeS * m.EnergyJ,
			}
		}
		preds[name] = byClock
	}
	return preds
}

// TuneTable tunes every kernel in a named set and returns the
// function→frequency table that ManDyn consumes, plus the per-kernel
// results. This is the paper's Fig. 2 workflow: fixed problem size, EDP
// objective, frequency range 1005–1410 MHz.
func TuneTable(kernels map[string]gpusim.KernelDesc, cfg Config) (map[string]int, map[string]*Result, error) {
	table := make(map[string]int, len(kernels))
	results := make(map[string]*Result, len(kernels))
	names := make([]string, 0, len(kernels))
	for n := range kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		r, err := TuneKernel(name, kernels[name], cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("tuner: %s: %w", name, err)
		}
		table[name] = r.Best.MHz
		results[name] = r
	}
	return table, results, nil
}
