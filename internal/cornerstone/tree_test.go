package cornerstone

import (
	"sort"
	"testing"
	"testing/quick"

	"sphenergy/internal/rng"
	"sphenergy/internal/sfc"
)

// randomKeys generates n sorted keys, clustered to force deep subdivision.
func randomKeys(n int, seed uint64) []sfc.Key {
	r := rng.New(seed)
	box := sfc.NewCube(0, 1)
	keys := make([]sfc.Key, n)
	for i := range keys {
		// Half the points cluster in one corner for an uneven tree.
		if i%2 == 0 {
			keys[i] = box.KeyOf(r.Float64(), r.Float64(), r.Float64())
		} else {
			keys[i] = box.KeyOf(0.1*r.Float64(), 0.1*r.Float64(), 0.1*r.Float64())
		}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

func TestMakeRootTree(t *testing.T) {
	root := MakeRootTree()
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
	if root.NumLeaves() != 1 {
		t.Errorf("root tree has %d leaves", root.NumLeaves())
	}
	if root.LeafLevel(0) != 0 {
		t.Errorf("root leaf level = %d", root.LeafLevel(0))
	}
}

func TestBuildInvariants(t *testing.T) {
	keys := randomKeys(5000, 1)
	tree := Build(keys, 64)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := tree.NodeCounts(keys)
	total := 0
	for i, c := range counts {
		total += c
		if c > 64 && tree.LeafLevel(i) < sfc.MaxLevel {
			t.Errorf("leaf %d holds %d > bucket size without being at max level", i, c)
		}
	}
	if total != len(keys) {
		t.Errorf("counts sum to %d, want %d", total, len(keys))
	}
}

func TestBuildConverged(t *testing.T) {
	keys := randomKeys(2000, 2)
	tree := Build(keys, 32)
	counts := tree.NodeCounts(keys)
	next, converged := tree.Rebalance(counts, 32)
	if !converged {
		t.Error("Build result was not a fixed point of Rebalance")
	}
	if len(next) != len(tree) {
		t.Error("converged rebalance changed the tree size")
	}
}

func TestBuildEmptyAndSmall(t *testing.T) {
	tree := Build(nil, 16)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Errorf("empty input should keep the root tree, got %d leaves", tree.NumLeaves())
	}
	one := Build([]sfc.Key{12345}, 16)
	if err := one.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceSplitsOverfullLeaf(t *testing.T) {
	tree := MakeRootTree()
	next, converged := tree.Rebalance([]int{100}, 10)
	if converged {
		t.Error("overfull root should split")
	}
	if next.NumLeaves() != 8 {
		t.Errorf("root split into %d leaves, want 8", next.NumLeaves())
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceMergesEmptyOctet(t *testing.T) {
	tree := MakeRootTree()
	tree, _ = tree.Rebalance([]int{100}, 10)
	// All children nearly empty: should merge back.
	merged, converged := tree.Rebalance(make([]int, 8), 10)
	if converged {
		t.Error("empty octet should merge")
	}
	if merged.NumLeaves() != 1 {
		t.Errorf("merged tree has %d leaves, want 1", merged.NumLeaves())
	}
}

func TestFindLeaf(t *testing.T) {
	keys := randomKeys(3000, 3)
	tree := Build(keys, 64)
	for _, k := range []sfc.Key{0, keys[100], keys[2999], sfc.KeyEnd - 1} {
		i := tree.FindLeaf(k)
		if i < 0 || i >= tree.NumLeaves() {
			t.Fatalf("FindLeaf(%d) = %d out of range", k, i)
		}
		lo, hi := tree.Leaf(i)
		if k < lo || k >= hi {
			t.Errorf("key %d not inside leaf %d [%d, %d)", k, i, lo, hi)
		}
	}
}

func TestNodeCountsBinarySearchAgainstBruteForce(t *testing.T) {
	keys := randomKeys(1000, 4)
	tree := Build(keys, 100)
	counts := tree.NodeCounts(keys)
	for i := 0; i < tree.NumLeaves(); i++ {
		lo, hi := tree.Leaf(i)
		want := 0
		for _, k := range keys {
			if k >= lo && k < hi {
				want++
			}
		}
		if counts[i] != want {
			t.Fatalf("leaf %d count = %d, want %d", i, counts[i], want)
		}
	}
}

func TestBuildPropertyQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint16, bucketRaw uint8) bool {
		n := int(nRaw%2000) + 1
		bucket := int(bucketRaw%100) + 1
		keys := randomKeys(n, seed)
		tree := Build(keys, bucket)
		if tree.Validate() != nil {
			return false
		}
		counts := tree.NodeCounts(keys)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	bad := []Tree{
		{0},                         // too short
		{1, sfc.KeyEnd},             // does not start at 0
		{0, 100},                    // does not end at KeyEnd
		{0, 3, sfc.KeyEnd},          // size 3 not power of eight
		{0, sfc.KeyEnd, sfc.KeyEnd}, // non-increasing
	}
	for i, tree := range bad {
		if tree.Validate() == nil {
			t.Errorf("bad tree %d passed validation", i)
		}
	}
}

func TestMaxDepth(t *testing.T) {
	keys := randomKeys(4000, 5)
	shallow := Build(keys, 1000)
	deep := Build(keys, 8)
	if deep.MaxDepth() <= shallow.MaxDepth() {
		t.Errorf("smaller buckets should deepen the tree: %d vs %d",
			deep.MaxDepth(), shallow.MaxDepth())
	}
}
