package cornerstone

import (
	"fmt"
	"sort"

	"sphenergy/internal/sfc"
)

// OctreeNode is one node of the fully-linked octree derived from a
// cornerstone leaf array: leaves plus every internal node up to the root,
// with parent/child links for top-down traversal (the second structure of
// the Cornerstone paper, used for tree walks such as MAC evaluation and
// collision detection).
type OctreeNode struct {
	// Start and End delimit the node's SFC key range.
	Start, End sfc.Key
	// Level is the octree subdivision depth (0 = root).
	Level int
	// Parent indexes the parent node, -1 for the root.
	Parent int
	// Children indexes up to eight children; nil for leaves.
	Children []int
	// LeafIndex is the node's index in the originating cornerstone array,
	// or -1 for internal nodes.
	LeafIndex int
}

// IsLeaf reports whether the node is a leaf of the cornerstone array.
func (n OctreeNode) IsLeaf() bool { return n.LeafIndex >= 0 }

// LinkedOctree is the traversable octree over a cornerstone leaf array.
// Nodes are stored in breadth-first order: Nodes[0] is the root.
type LinkedOctree struct {
	Nodes []OctreeNode
	// Counts holds per-node particle counts when built with counts
	// (internal nodes aggregate their subtree).
	Counts []int
}

// BuildLinked constructs the linked octree from a valid cornerstone tree.
// counts may be nil; when given it must be the tree's leaf counts and the
// result carries aggregated per-node counts.
func BuildLinked(t Tree, counts []int) (*LinkedOctree, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if counts != nil && len(counts) != t.NumLeaves() {
		return nil, fmt.Errorf("cornerstone: counts length %d != %d leaves", len(counts), t.NumLeaves())
	}
	lo := &LinkedOctree{}
	root := OctreeNode{Start: 0, End: sfc.KeyEnd, Level: 0, Parent: -1, LeafIndex: -1}
	if t.NumLeaves() == 1 {
		root.LeafIndex = 0
	}
	lo.Nodes = append(lo.Nodes, root)

	// Breadth-first expansion: for each node that is not itself a leaf of
	// the cornerstone array, find the leaves inside it and group them by
	// child octant.
	for i := 0; i < len(lo.Nodes); i++ {
		n := lo.Nodes[i]
		if n.IsLeaf() {
			continue
		}
		childSize := (n.End - n.Start) / 8
		for c := sfc.Key(0); c < 8; c++ {
			cs := n.Start + c*childSize
			ce := cs + childSize
			child := OctreeNode{
				Start: cs, End: ce, Level: n.Level + 1,
				Parent: i, LeafIndex: -1,
			}
			// A child is a leaf of the cornerstone array iff [cs, ce)
			// exactly matches one leaf.
			li := t.FindLeaf(cs)
			ls, le := t.Leaf(li)
			if ls == cs && le == ce {
				child.LeafIndex = li
			} else if ls == cs && le > ce {
				// The cornerstone leaf is coarser than this child: the
				// parent itself should have been that leaf. This cannot
				// happen for a valid tree.
				return nil, fmt.Errorf("cornerstone: leaf %d coarser than octree child at key %d", li, cs)
			}
			idx := len(lo.Nodes)
			lo.Nodes = append(lo.Nodes, child)
			lo.Nodes[i].Children = append(lo.Nodes[i].Children, idx)
		}
	}

	if counts != nil {
		lo.Counts = make([]int, len(lo.Nodes))
		// Children appear after parents (BFS), so a reverse sweep
		// aggregates bottom-up.
		for i := len(lo.Nodes) - 1; i >= 0; i-- {
			n := lo.Nodes[i]
			if n.IsLeaf() {
				lo.Counts[i] = counts[n.LeafIndex]
			}
			if n.Parent >= 0 {
				lo.Counts[n.Parent] += lo.Counts[i]
			}
		}
	}
	return lo, nil
}

// NumInternal returns the number of internal (non-leaf) nodes. For a tree
// whose every internal node has all eight children materialized this is
// (numLeaves - 1) / 7.
func (lo *LinkedOctree) NumInternal() int {
	n := 0
	for _, node := range lo.Nodes {
		if !node.IsLeaf() {
			n++
		}
	}
	return n
}

// NumLeaves returns the number of leaf nodes.
func (lo *LinkedOctree) NumLeaves() int { return len(lo.Nodes) - lo.NumInternal() }

// Walk traverses top-down. visit is called for every reached node; return
// true to descend into its children. The walk order is deterministic
// (children in key order).
func (lo *LinkedOctree) Walk(visit func(idx int, n OctreeNode) bool) {
	var rec func(i int)
	rec = func(i int) {
		n := lo.Nodes[i]
		if !visit(i, n) {
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	if len(lo.Nodes) > 0 {
		rec(0)
	}
}

// Locate descends from the root to the leaf containing key k, returning
// the node index (O(depth) instead of the leaf array's binary search).
func (lo *LinkedOctree) Locate(k sfc.Key) int {
	i := 0
	for {
		n := lo.Nodes[i]
		if n.IsLeaf() || len(n.Children) == 0 {
			return i
		}
		childSize := (n.End - n.Start) / 8
		c := int((k - n.Start) / childSize)
		if c > 7 {
			c = 7
		}
		i = n.Children[c]
	}
}

// Depth returns the maximum node level.
func (lo *LinkedOctree) Depth() int {
	d := 0
	for _, n := range lo.Nodes {
		if n.Level > d {
			d = n.Level
		}
	}
	return d
}

// LeavesInRange returns the leaf-node indices whose ranges intersect
// [start, end), using a pruned walk.
func (lo *LinkedOctree) LeavesInRange(start, end sfc.Key) []int {
	var out []int
	lo.Walk(func(idx int, n OctreeNode) bool {
		if n.End <= start || n.Start >= end {
			return false
		}
		if n.IsLeaf() {
			out = append(out, idx)
			return false
		}
		return true
	})
	sort.Ints(out)
	return out
}
