package cornerstone

import (
	"fmt"
	"math"

	"sphenergy/internal/sfc"
)

// KeyRange is a half-open SFC key interval assigned to one rank.
type KeyRange struct {
	Start, End sfc.Key
}

// Contains reports whether key k falls in the range.
func (r KeyRange) Contains(k sfc.Key) bool { return k >= r.Start && k < r.End }

// Partition splits the global tree into numRanks contiguous SFC ranges with
// approximately equal particle counts. Every range boundary coincides with a
// leaf boundary of the tree, so ranges are unions of whole octree nodes —
// exactly the assignment scheme SPH-EXA/Cornerstone uses for domain
// decomposition.
func Partition(t Tree, counts []int, numRanks int) []KeyRange {
	if numRanks < 1 {
		panic("cornerstone: numRanks must be >= 1")
	}
	if len(counts) != t.NumLeaves() {
		panic("cornerstone: counts length mismatch")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	ranges := make([]KeyRange, numRanks)
	leaf := 0
	assigned := 0
	for r := 0; r < numRanks; r++ {
		start := t[leaf]
		// Target cumulative count at the end of this rank.
		target := (total * (r + 1)) / numRanks
		for leaf < t.NumLeaves() && (assigned < target || r == numRanks-1) {
			// The last rank absorbs all remaining leaves.
			if r < numRanks-1 && assigned+counts[leaf] > target &&
				// Prefer the closer boundary to the target.
				assigned+counts[leaf]-target > target-assigned {
				break
			}
			assigned += counts[leaf]
			leaf++
		}
		// Ensure at least one leaf when any remain and ranks still follow.
		if t[leaf] == start && leaf < t.NumLeaves() && numRanks-r > t.NumLeaves()-leaf {
			// More ranks than remaining leaves: allow empty range.
			ranges[r] = KeyRange{Start: start, End: start}
			continue
		}
		ranges[r] = KeyRange{Start: start, End: t[leaf]}
	}
	ranges[numRanks-1].End = sfc.KeyEnd
	// Fix up any empty trailing starts so ranges stay contiguous.
	for r := 1; r < numRanks; r++ {
		if ranges[r].Start < ranges[r-1].End {
			ranges[r].Start = ranges[r-1].End
		}
		if ranges[r].End < ranges[r].Start {
			ranges[r].End = ranges[r].Start
		}
	}
	return ranges
}

// RankOf returns the rank whose range contains key k.
func RankOf(ranges []KeyRange, k sfc.Key) int {
	for i, r := range ranges {
		if r.Contains(k) {
			return i
		}
	}
	return len(ranges) - 1
}

// NodeBounds returns the axis-aligned bounding box of the octree node with
// the given key range within box b.
func NodeBounds(b sfc.Box, start, end sfc.Key) (lo, hi [3]float64) {
	return nodeAABB(b, start, end)
}

// SphereOverlapsBounds reports whether a sphere (under the box's periodic
// boundaries) intersects an AABB.
func SphereOverlapsBounds(b sfc.Box, cx, cy, cz, radius float64, lo, hi [3]float64) bool {
	return overlaps(b, [3]float64{cx, cy, cz}, [3]float64{cx, cy, cz}, radius, lo, hi)
}

// nodeAABB returns the axis-aligned bounding box of the octree node with the
// given key range within box b.
func nodeAABB(b sfc.Box, start, end sfc.Key) (lo, hi [3]float64) {
	level := sfc.TreeLevel(end - start)
	if level < 0 {
		// Non-aligned range: fall back to the enclosing node.
		level = sfc.CommonPrefixLevel(start, end-1)
		start, _ = sfc.NodeRange(start, level)
	}
	ix, iy, iz := sfc.Decode3D(start)
	cells := uint32(1) << uint(sfc.MaxLevel-level) // node edge length in grid cells
	inv := 1.0 / float64(uint64(1)<<sfc.BitsPerDim)
	lo[0] = b.Xmin + float64(ix)*inv*b.Lx()
	lo[1] = b.Ymin + float64(iy)*inv*b.Ly()
	lo[2] = b.Zmin + float64(iz)*inv*b.Lz()
	hi[0] = lo[0] + float64(cells)*inv*b.Lx()
	hi[1] = lo[1] + float64(cells)*inv*b.Ly()
	hi[2] = lo[2] + float64(cells)*inv*b.Lz()
	return
}

// overlaps reports whether two AABBs, the first inflated by radius, overlap,
// honoring periodic boundaries of the box.
func overlaps(b sfc.Box, alo, ahi [3]float64, radius float64, blo, bhi [3]float64) bool {
	period := [3]float64{0, 0, 0}
	if b.PBCx {
		period[0] = b.Lx()
	}
	if b.PBCy {
		period[1] = b.Ly()
	}
	if b.PBCz {
		period[2] = b.Lz()
	}
	for d := 0; d < 3; d++ {
		gap := axisGap(alo[d]-radius, ahi[d]+radius, blo[d], bhi[d], period[d])
		if gap > 0 {
			return false
		}
	}
	return true
}

// axisGap returns the 1-D separation between intervals [a0,a1] and [b0,b1];
// <= 0 means they overlap. With a non-zero period the minimum-image distance
// applies.
func axisGap(a0, a1, b0, b1, period float64) float64 {
	gap := math.Max(b0-a1, a0-b1)
	if period > 0 && gap > 0 {
		// Try shifting b by ±period.
		g1 := math.Max(b0+period-a1, a0-(b1+period))
		g2 := math.Max(b0-period-a1, a0-(b1-period))
		gap = math.Min(gap, math.Min(g1, g2))
	}
	return gap
}

// Halos identifies, for the rank owning `own`, the leaves of the global tree
// that lie outside the rank's range but within `radius` (typically 2h) of
// its boundary. Returned indices refer to leaves of t.
func Halos(t Tree, b sfc.Box, own KeyRange, radius float64) []int {
	var halos []int
	// Collect the AABBs of the rank's own leaves once.
	type aabb struct{ lo, hi [3]float64 }
	var ownBoxes []aabb
	for i := 0; i < t.NumLeaves(); i++ {
		if own.Contains(t[i]) {
			lo, hi := nodeAABB(b, t[i], t[i+1])
			ownBoxes = append(ownBoxes, aabb{lo, hi})
		}
	}
	for i := 0; i < t.NumLeaves(); i++ {
		if own.Contains(t[i]) {
			continue
		}
		blo, bhi := nodeAABB(b, t[i], t[i+1])
		for _, ob := range ownBoxes {
			if overlaps(b, ob.lo, ob.hi, radius, blo, bhi) {
				halos = append(halos, i)
				break
			}
		}
	}
	return halos
}

// String implements fmt.Stringer for debugging.
func (r KeyRange) String() string {
	return fmt.Sprintf("[%d, %d)", r.Start, r.End)
}
