package cornerstone

import (
	"testing"

	"sphenergy/internal/sfc"
)

func TestPartitionCoversKeySpace(t *testing.T) {
	keys := randomKeys(8000, 10)
	tree := Build(keys, 64)
	counts := tree.NodeCounts(keys)
	for _, ranks := range []int{1, 2, 4, 7, 16} {
		ranges := Partition(tree, counts, ranks)
		if len(ranges) != ranks {
			t.Fatalf("%d ranks: got %d ranges", ranks, len(ranges))
		}
		if ranges[0].Start != 0 {
			t.Errorf("%d ranks: first range starts at %d", ranks, ranges[0].Start)
		}
		if ranges[ranks-1].End != sfc.KeyEnd {
			t.Errorf("%d ranks: last range ends at %d", ranks, ranges[ranks-1].End)
		}
		for i := 1; i < ranks; i++ {
			if ranges[i].Start != ranges[i-1].End {
				t.Errorf("%d ranks: gap between range %d and %d", ranks, i-1, i)
			}
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	keys := randomKeys(20000, 11)
	tree := Build(keys, 64)
	counts := tree.NodeCounts(keys)
	const ranks = 8
	ranges := Partition(tree, counts, ranks)
	perRank := make([]int, ranks)
	for _, k := range keys {
		perRank[RankOf(ranges, k)]++
	}
	want := len(keys) / ranks
	for r, c := range perRank {
		if c < want/2 || c > want*2 {
			t.Errorf("rank %d holds %d particles, want ~%d (poor balance)", r, c, want)
		}
	}
}

func TestPartitionBoundariesAreLeafBoundaries(t *testing.T) {
	keys := randomKeys(5000, 12)
	tree := Build(keys, 64)
	counts := tree.NodeCounts(keys)
	ranges := Partition(tree, counts, 5)
	isBoundary := map[sfc.Key]bool{}
	for _, b := range tree {
		isBoundary[b] = true
	}
	for i, r := range ranges {
		if !isBoundary[r.Start] || !isBoundary[r.End] {
			t.Errorf("range %d %v not aligned to leaf boundaries", i, r)
		}
	}
}

func TestRankOf(t *testing.T) {
	ranges := []KeyRange{{0, 100}, {100, 200}, {200, sfc.KeyEnd}}
	cases := []struct {
		k    sfc.Key
		want int
	}{{0, 0}, {99, 0}, {100, 1}, {199, 1}, {200, 2}, {sfc.KeyEnd - 1, 2}}
	for _, c := range cases {
		if got := RankOf(ranges, c.k); got != c.want {
			t.Errorf("RankOf(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestHalosAreOutsideOwnRange(t *testing.T) {
	keys := randomKeys(10000, 13)
	box := sfc.NewCube(0, 1)
	tree := Build(keys, 64)
	counts := tree.NodeCounts(keys)
	ranges := Partition(tree, counts, 4)
	own := ranges[1]
	halos := Halos(tree, box, own, 0.05)
	if len(halos) == 0 {
		t.Fatal("expected some halo nodes for an interior rank")
	}
	for _, leaf := range halos {
		if own.Contains(tree[leaf]) {
			t.Errorf("halo leaf %d is inside the rank's own range", leaf)
		}
	}
}

func TestHalosGrowWithRadius(t *testing.T) {
	keys := randomKeys(10000, 14)
	box := sfc.NewCube(0, 1)
	tree := Build(keys, 64)
	counts := tree.NodeCounts(keys)
	ranges := Partition(tree, counts, 4)
	small := Halos(tree, box, ranges[2], 0.01)
	large := Halos(tree, box, ranges[2], 0.2)
	if len(large) < len(small) {
		t.Errorf("halo set shrank with radius: %d -> %d", len(small), len(large))
	}
}

func TestHalosPeriodicWrapAround(t *testing.T) {
	keys := randomKeys(8000, 15)
	open := sfc.NewCube(0, 1)
	periodic := sfc.NewPeriodicCube(0, 1)
	tree := Build(keys, 64)
	counts := tree.NodeCounts(keys)
	ranges := Partition(tree, counts, 8)
	// The first rank's halos can wrap around to the end of the curve under
	// periodic boundaries; at minimum they cannot be fewer.
	ho := Halos(tree, open, ranges[0], 0.04)
	hp := Halos(tree, periodic, ranges[0], 0.04)
	if len(hp) < len(ho) {
		t.Errorf("periodic halos (%d) fewer than open-box halos (%d)", len(hp), len(ho))
	}
}

func TestAxisGap(t *testing.T) {
	// Overlapping intervals -> gap <= 0.
	if g := axisGap(0, 1, 0.5, 2, 0); g > 0 {
		t.Errorf("overlap gap = %v", g)
	}
	// Disjoint -> positive gap equal to the separation.
	if g := axisGap(0, 1, 3, 4, 0); g != 2 {
		t.Errorf("gap = %v, want 2", g)
	}
	// Periodic: interval near 0 and interval near period end are close.
	if g := axisGap(0, 0.1, 9.8, 9.9, 10); g > 0.2 {
		t.Errorf("periodic gap = %v, want <= 0.2", g)
	}
}

func TestKeyRangeString(t *testing.T) {
	if got := (KeyRange{1, 5}).String(); got != "[1, 5)" {
		t.Errorf("String() = %q", got)
	}
}
