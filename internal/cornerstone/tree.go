// Package cornerstone implements octree construction on top of
// space-filling-curve keys in the style of the Cornerstone library used by
// SPH-EXA (Keller et al., PASC'23).
//
// The central data structure is the *cornerstone array*: a sorted slice of
// Morton keys t[0..n] with t[0] = 0 and t[n] = sfc.KeyEnd, where each
// consecutive pair (t[i], t[i+1]) delimits one octree leaf. Every leaf is a
// valid octree node, i.e. its key range is a power of eight and aligned to
// its size. The tree is built iteratively: leaves holding more particles
// than the bucket size split into eight children, and sibling octets whose
// combined count falls below the bucket size merge, until a fixed point is
// reached.
package cornerstone

import (
	"fmt"
	"sort"

	"sphenergy/internal/sfc"
)

// Tree is a cornerstone array of leaf boundaries.
type Tree []sfc.Key

// MakeRootTree returns the minimal tree consisting of the root node only.
func MakeRootTree() Tree {
	return Tree{0, sfc.KeyEnd}
}

// NumLeaves returns the number of leaves in the tree.
func (t Tree) NumLeaves() int { return len(t) - 1 }

// Leaf returns the key range [start, end) of leaf i.
func (t Tree) Leaf(i int) (sfc.Key, sfc.Key) { return t[i], t[i+1] }

// LeafLevel returns the octree level of leaf i.
func (t Tree) LeafLevel(i int) int {
	return sfc.TreeLevel(t[i+1] - t[i])
}

// Validate checks the cornerstone invariants: full coverage of the key
// space, strictly increasing boundaries, and power-of-eight aligned leaves.
func (t Tree) Validate() error {
	if len(t) < 2 {
		return fmt.Errorf("cornerstone: tree has %d boundaries, need >= 2", len(t))
	}
	if t[0] != 0 {
		return fmt.Errorf("cornerstone: tree does not start at key 0")
	}
	if t[len(t)-1] != sfc.KeyEnd {
		return fmt.Errorf("cornerstone: tree does not end at KeyEnd")
	}
	for i := 0; i+1 < len(t); i++ {
		if t[i] >= t[i+1] {
			return fmt.Errorf("cornerstone: non-increasing boundary at leaf %d", i)
		}
		size := t[i+1] - t[i]
		level := sfc.TreeLevel(size)
		if level < 0 {
			return fmt.Errorf("cornerstone: leaf %d size %d is not a power of eight", i, size)
		}
		if t[i]%size != 0 {
			return fmt.Errorf("cornerstone: leaf %d start %d misaligned for size %d", i, t[i], size)
		}
	}
	return nil
}

// NodeCounts returns, for each leaf, the number of particle keys that fall
// inside it. keys must be sorted ascending.
func (t Tree) NodeCounts(keys []sfc.Key) []int {
	counts := make([]int, t.NumLeaves())
	for i := range counts {
		lo := sort.Search(len(keys), func(j int) bool { return keys[j] >= t[i] })
		hi := sort.Search(len(keys), func(j int) bool { return keys[j] >= t[i+1] })
		counts[i] = hi - lo
	}
	return counts
}

// Rebalance performs one split/merge pass. Leaves with count > bucketSize
// split into eight children (until the maximum level); complete sibling
// octets whose total count <= bucketSize merge into their parent. It returns
// the new tree and whether the tree was already converged (unchanged).
func (t Tree) Rebalance(counts []int, bucketSize int) (Tree, bool) {
	if len(counts) != t.NumLeaves() {
		panic("cornerstone: counts length mismatch")
	}
	newTree := make(Tree, 0, len(t))
	converged := true
	for i := 0; i < t.NumLeaves(); {
		start, end := t.Leaf(i)
		size := end - start
		level := sfc.TreeLevel(size)
		switch {
		case counts[i] > bucketSize && level < sfc.MaxLevel:
			// Split into eight children.
			child := size / 8
			for c := sfc.Key(0); c < 8; c++ {
				newTree = append(newTree, start+c*child)
			}
			converged = false
			i++
		case canMergeOctet(t, counts, i, bucketSize):
			// Merge the octet starting at i into the parent node.
			newTree = append(newTree, start)
			converged = false
			i += 8
		default:
			newTree = append(newTree, start)
			i++
		}
	}
	newTree = append(newTree, sfc.KeyEnd)
	return newTree, converged
}

// canMergeOctet reports whether leaves [i, i+8) form a complete sibling
// octet whose combined count allows merging.
func canMergeOctet(t Tree, counts []int, i, bucketSize int) bool {
	if i+8 > t.NumLeaves() {
		return false
	}
	start, _ := t.Leaf(i)
	size := t[i+1] - t[i]
	// All eight siblings must exist with equal size and the parent range must
	// be aligned.
	parentSize := size * 8
	if sfc.TreeLevel(size) <= 0 || start%parentSize != 0 {
		return false
	}
	total := 0
	for c := 0; c < 8; c++ {
		if t[i+c+1]-t[i+c] != size {
			return false
		}
		total += counts[i+c]
	}
	return total <= bucketSize
}

// Build constructs a converged cornerstone tree for the given sorted
// particle keys and bucket size. The iteration count is bounded by the
// maximum tree depth plus a safety margin.
func Build(keys []sfc.Key, bucketSize int) Tree {
	if bucketSize < 1 {
		panic("cornerstone: bucketSize must be >= 1")
	}
	t := MakeRootTree()
	for iter := 0; iter < sfc.MaxLevel+8; iter++ {
		counts := t.NodeCounts(keys)
		next, converged := t.Rebalance(counts, bucketSize)
		t = next
		if converged {
			break
		}
	}
	return t
}

// FindLeaf returns the index of the leaf containing key k.
func (t Tree) FindLeaf(k sfc.Key) int {
	// Upper bound, then step back: t[i] <= k < t[i+1].
	i := sort.Search(len(t), func(j int) bool { return t[j] > k })
	return i - 1
}

// MaxDepth returns the deepest leaf level present in the tree.
func (t Tree) MaxDepth() int {
	d := 0
	for i := 0; i < t.NumLeaves(); i++ {
		if l := t.LeafLevel(i); l > d {
			d = l
		}
	}
	return d
}
