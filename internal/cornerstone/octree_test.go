package cornerstone

import (
	"testing"

	"sphenergy/internal/sfc"
)

func linkedFixture(t *testing.T, n int, bucket int, seed uint64) (*LinkedOctree, Tree, []int) {
	t.Helper()
	keys := randomKeys(n, seed)
	tree := Build(keys, bucket)
	counts := tree.NodeCounts(keys)
	lo, err := BuildLinked(tree, counts)
	if err != nil {
		t.Fatal(err)
	}
	return lo, tree, counts
}

func TestBuildLinkedRootOnly(t *testing.T) {
	lo, err := BuildLinked(MakeRootTree(), []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(lo.Nodes) != 1 || !lo.Nodes[0].IsLeaf() {
		t.Fatalf("root-only tree: %+v", lo.Nodes)
	}
	if lo.Counts[0] != 5 {
		t.Errorf("root count %d", lo.Counts[0])
	}
}

func TestLinkedStructureInvariants(t *testing.T) {
	lo, tree, _ := linkedFixture(t, 5000, 64, 1)
	if lo.Nodes[0].Parent != -1 {
		t.Error("root has a parent")
	}
	leafSeen := map[int]bool{}
	for i, n := range lo.Nodes {
		if n.End <= n.Start {
			t.Fatalf("node %d has empty range", i)
		}
		// Children partition the parent's range exactly.
		if !n.IsLeaf() {
			if len(n.Children) != 8 {
				t.Fatalf("internal node %d has %d children", i, len(n.Children))
			}
			cursor := n.Start
			for _, c := range n.Children {
				ch := lo.Nodes[c]
				if ch.Start != cursor {
					t.Fatalf("node %d: child gap at key %d", i, cursor)
				}
				if ch.Parent != i {
					t.Fatalf("child %d has wrong parent", c)
				}
				if ch.Level != n.Level+1 {
					t.Fatalf("child %d wrong level", c)
				}
				cursor = ch.End
			}
			if cursor != n.End {
				t.Fatalf("node %d: children do not cover the range", i)
			}
		} else {
			if leafSeen[n.LeafIndex] {
				t.Fatalf("leaf %d appears twice", n.LeafIndex)
			}
			leafSeen[n.LeafIndex] = true
			ls, le := tree.Leaf(n.LeafIndex)
			if ls != n.Start || le != n.End {
				t.Fatalf("leaf node %d range mismatch", i)
			}
		}
	}
	if len(leafSeen) != tree.NumLeaves() {
		t.Errorf("linked tree exposes %d leaves, want %d", len(leafSeen), tree.NumLeaves())
	}
}

func TestLinkedNodeCountRelation(t *testing.T) {
	lo, tree, _ := linkedFixture(t, 8000, 32, 2)
	// Every internal node has exactly 8 children, so
	// internal = (leaves - 1) / 7 and leaves = tree leaves.
	leaves := lo.NumLeaves()
	if leaves != tree.NumLeaves() {
		t.Errorf("leaves %d != cornerstone %d", leaves, tree.NumLeaves())
	}
	if want := (leaves - 1) / 7; lo.NumInternal() != want {
		t.Errorf("internal nodes %d, want %d", lo.NumInternal(), want)
	}
}

func TestLinkedCountsAggregate(t *testing.T) {
	lo, _, counts := linkedFixture(t, 3000, 64, 3)
	total := 0
	for _, c := range counts {
		total += c
	}
	if lo.Counts[0] != total {
		t.Errorf("root count %d, want %d", lo.Counts[0], total)
	}
	// Every internal node's count equals the sum of its children's.
	for i, n := range lo.Nodes {
		if n.IsLeaf() {
			continue
		}
		sum := 0
		for _, c := range n.Children {
			sum += lo.Counts[c]
		}
		if sum != lo.Counts[i] {
			t.Fatalf("node %d count %d != children sum %d", i, lo.Counts[i], sum)
		}
	}
}

func TestLocateMatchesFindLeaf(t *testing.T) {
	lo, tree, _ := linkedFixture(t, 4000, 64, 4)
	keys := randomKeys(200, 99)
	for _, k := range keys {
		idx := lo.Locate(k)
		n := lo.Nodes[idx]
		if !n.IsLeaf() {
			t.Fatalf("Locate(%d) returned internal node", k)
		}
		if n.LeafIndex != tree.FindLeaf(k) {
			t.Fatalf("Locate(%d) leaf %d, FindLeaf %d", k, n.LeafIndex, tree.FindLeaf(k))
		}
	}
}

func TestWalkPrunes(t *testing.T) {
	lo, _, _ := linkedFixture(t, 4000, 64, 5)
	visited := 0
	lo.Walk(func(idx int, n OctreeNode) bool {
		visited++
		return false // never descend
	})
	if visited != 1 {
		t.Errorf("pruned walk visited %d nodes, want 1 (root)", visited)
	}
	all := 0
	lo.Walk(func(int, OctreeNode) bool { all++; return true })
	if all != len(lo.Nodes) {
		t.Errorf("full walk visited %d of %d nodes", all, len(lo.Nodes))
	}
}

func TestLeavesInRange(t *testing.T) {
	lo, tree, _ := linkedFixture(t, 4000, 64, 6)
	// A mid-space window.
	start := sfc.KeyEnd / 3
	end := sfc.KeyEnd / 2
	got := lo.LeavesInRange(start, end)
	if len(got) == 0 {
		t.Fatal("no leaves in a wide range")
	}
	// Cross-check against a scan of the cornerstone array.
	want := 0
	for i := 0; i < tree.NumLeaves(); i++ {
		ls, le := tree.Leaf(i)
		if le > start && ls < end {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("LeavesInRange found %d leaves, scan found %d", len(got), want)
	}
	for _, idx := range got {
		n := lo.Nodes[idx]
		if n.End <= start || n.Start >= end {
			t.Fatalf("leaf %d outside the window", idx)
		}
	}
}

func TestLinkedDepth(t *testing.T) {
	shallow, _, _ := linkedFixture(t, 2000, 1000, 7)
	deep, _, _ := linkedFixture(t, 2000, 8, 7)
	if deep.Depth() <= shallow.Depth() {
		t.Errorf("deep %d <= shallow %d", deep.Depth(), shallow.Depth())
	}
}

func TestBuildLinkedRejectsInvalidTree(t *testing.T) {
	if _, err := BuildLinked(Tree{0, 100}, nil); err == nil {
		t.Error("invalid tree accepted")
	}
	tree := Build(randomKeys(100, 8), 16)
	if _, err := BuildLinked(tree, []int{1}); err == nil {
		t.Error("wrong counts length accepted")
	}
}

func TestBuildLinkedWithoutCounts(t *testing.T) {
	tree := Build(randomKeys(500, 9), 32)
	lo, err := BuildLinked(tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Counts != nil {
		t.Error("counts allocated without input")
	}
}
