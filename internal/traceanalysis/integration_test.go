package traceanalysis

import (
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/faults"
	"sphenergy/internal/telemetry"
)

// TestCoreRunStragglerCriticalPath is the acceptance check for the trace
// pipeline end to end: a full core.Run with an internal/faults straggler
// rule on rank 2, traced, exported, re-parsed, analyzed — the straggler
// must come out as the critical-path rank with ≥90% of the added barrier
// wait attributed to it.
func TestCoreRunStragglerCriticalPath(t *testing.T) {
	run := func(plan *faults.Plan) *Analysis {
		cfg := core.Config{
			System:           cluster.MiniHPC(),
			Ranks:            4,
			Sim:              core.Turbulence,
			ParticlesPerRank: 10e6,
			Steps:            4,
			Faults:           plan,
		}
		cfg.Tracer = telemetry.NewTracer(cfg.Ranks)
		if _, err := core.Run(cfg); err != nil {
			t.Fatal(err)
		}
		return Analyze(FromSpanEvents(cfg.Tracer.Spans()), Options{})
	}

	healthy := run(nil)
	slowed := run(&faults.Plan{
		Name: "straggler-rank2",
		Seed: 11,
		Rules: []faults.Rule{
			{Kind: faults.Straggler, Target: faults.TargetRank, Ranks: []int{2}, Factor: 3},
		},
	})

	if len(slowed.Barriers) == 0 {
		t.Fatal("no barriers reconstructed from core.Run trace")
	}
	addedWait := slowed.TotalWaitS - healthy.TotalWaitS
	if addedWait <= 0 {
		t.Fatalf("straggler did not add wait: healthy %g, slowed %g",
			healthy.TotalWaitS, slowed.TotalWaitS)
	}
	addedCaused := slowed.CausedWaitS(2) - healthy.CausedWaitS(2)
	if frac := addedCaused / addedWait; frac < 0.9 {
		t.Errorf("attributed %.1f%% of added wait to rank 2, want >= 90%% "+
			"(added %.4fs, attributed %.4fs)", 100*frac, addedWait, addedCaused)
	}
	if slowed.Stragglers[0].Rank != 2 {
		t.Errorf("top straggler = %d, want 2", slowed.Stragglers[0].Rank)
	}
}
