// Package traceanalysis computes critical-path and straggler diagnostics
// from the repository's Chrome trace_event exports (telemetry.Tracer) or
// directly from in-process span read-backs.
//
// The analysis keys on the bulk-synchronous structure mpisim records: every
// barrier emits one "mpi"/"barrier-wait" span per waiting rank, and all
// waits of the same barrier share an end time — the barrier's virtual time.
// A rank that imposed the barrier (the straggler of that phase) has no wait
// span there; it is identified as a barrier participant — a rank with any
// span ending inside the inter-barrier window — that did not wait. Each
// barrier's total wait is then attributed to its critical rank(s), yielding
// the per-rank "wait caused" ranking and the step-by-step critical path:
// the sequence of ranks the run's wall time actually depended on.
package traceanalysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"sphenergy/internal/telemetry"
)

// GlobalRank marks spans recorded on the whole-run ("sim") track rather
// than a rank track.
const GlobalRank = -1

// Span is one complete span of the trace, times in virtual seconds.
type Span struct {
	// Rank is the rank track the span was recorded on, GlobalRank for the
	// global track.
	Rank   int
	Cat    string
	Name   string
	StartS float64
	DurS   float64
}

// EndS returns the span's end time.
func (s Span) EndS() float64 { return s.StartS + s.DurS }

// isWait reports whether the span is an mpisim barrier wait.
func (s Span) isWait() bool { return s.Cat == "mpi" && s.Name == "barrier-wait" }

// Options tunes the analysis.
type Options struct {
	// EpsS is the end-time tolerance when grouping wait spans into
	// barriers, absorbing the µs-granularity round-trip of the trace JSON.
	// Default 1e-6 (one trace tick).
	EpsS float64
	// TopK bounds the straggler ranking (default 3).
	TopK int
}

func (o Options) defaulted() Options {
	if o.EpsS <= 0 {
		o.EpsS = 1e-6
	}
	if o.TopK <= 0 {
		o.TopK = 3
	}
	return o
}

// Barrier is one reconstructed synchronization point.
type Barrier struct {
	// TimeS is the barrier's virtual time (the shared wait end time).
	TimeS float64 `json:"time_s"`
	// WaitS is the total wait the barrier imposed, summed over waiters.
	WaitS float64 `json:"wait_s"`
	// MaxWaitS is the longest single rank wait.
	MaxWaitS float64 `json:"max_wait_s"`
	// Waiters lists the ranks that recorded a wait span at this barrier.
	Waiters []int `json:"waiters"`
	// Critical lists the participants that did not wait — the rank(s) the
	// barrier's time was determined by. Empty when the trace carries no
	// non-wait spans to identify the participant set.
	Critical []int `json:"critical"`
}

// RankStat aggregates one rank's standing across the run.
type RankStat struct {
	Rank int `json:"rank"`
	// BusyS is the interval-union extent of the rank's non-wait spans.
	BusyS float64 `json:"busy_s"`
	// WaitS is the total time the rank spent in barrier waits.
	WaitS float64 `json:"wait_s"`
	// CausedWaitS is the barrier wait attributed to this rank: the summed
	// waits of every barrier where it was critical (split on ties).
	CausedWaitS float64 `json:"caused_wait_s"`
	// CriticalCount is the number of barriers this rank was critical for.
	CriticalCount int `json:"critical_count"`
}

// Segment is one stretch of the critical path between consecutive barriers.
type Segment struct {
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	// Rank is the critical rank of the barrier closing the segment, or
	// GlobalRank when it could not be identified (or was tied).
	Rank int `json:"rank"`
}

// Analysis is the full diagnostic result.
type Analysis struct {
	// WallS is the span extent of the trace (max end over all spans).
	WallS float64 `json:"wall_s"`
	// Barriers lists the reconstructed synchronization points in time order.
	Barriers []Barrier `json:"barriers"`
	// Ranks holds per-rank statistics in rank order.
	Ranks []RankStat `json:"ranks"`
	// TotalWaitS sums all barrier waits.
	TotalWaitS float64 `json:"total_wait_s"`
	// AttributedWaitS is the portion of TotalWaitS assigned to identified
	// critical ranks. The gap to TotalWaitS measures how much of the wait
	// the trace did not carry enough context to attribute.
	AttributedWaitS float64 `json:"attributed_wait_s"`
	// CriticalPath is the barrier-to-barrier segment chain.
	CriticalPath []Segment `json:"critical_path"`
	// Stragglers ranks the TopK ranks by CausedWaitS, descending.
	Stragglers []RankStat `json:"stragglers"`
}

// CausedWaitS returns the wait attributed to one rank, 0 for unknown ranks.
func (a *Analysis) CausedWaitS(rank int) float64 {
	for _, r := range a.Ranks {
		if r.Rank == rank {
			return r.CausedWaitS
		}
	}
	return 0
}

// Analyze reconstructs barriers, attribution and the critical path from a
// span set. Spans on the global track contribute to WallS but are excluded
// from the rank participant logic.
func Analyze(spans []Span, opt Options) *Analysis {
	opt = opt.defaulted()
	a := &Analysis{}

	var waits []Span
	perRank := map[int][]Span{} // non-wait rank-track spans
	ranks := map[int]*RankStat{}
	stat := func(r int) *RankStat {
		st, ok := ranks[r]
		if !ok {
			st = &RankStat{Rank: r}
			ranks[r] = st
		}
		return st
	}
	for _, s := range spans {
		if e := s.EndS(); e > a.WallS {
			a.WallS = e
		}
		if s.Rank == GlobalRank {
			continue
		}
		if s.isWait() {
			waits = append(waits, s)
			stat(s.Rank).WaitS += s.DurS
			continue
		}
		perRank[s.Rank] = append(perRank[s.Rank], s)
		stat(s.Rank)
	}
	for r, ss := range perRank {
		stat(r).BusyS = intervalUnionS(ss)
	}

	// Group wait spans into barriers by shared end time.
	sort.Slice(waits, func(i, j int) bool { return waits[i].EndS() < waits[j].EndS() })
	// Rank-track span end times, sorted per rank for the participant probe.
	ends := map[int][]float64{}
	for r, ss := range perRank {
		es := make([]float64, len(ss))
		for i, s := range ss {
			es[i] = s.EndS()
		}
		sort.Float64s(es)
		ends[r] = es
	}

	prevT := math.Inf(-1)
	for i := 0; i < len(waits); {
		j := i + 1
		barrierT := waits[i].EndS()
		for j < len(waits) && waits[j].EndS()-barrierT <= opt.EpsS {
			if e := waits[j].EndS(); e > barrierT {
				barrierT = e
			}
			j++
		}
		b := Barrier{TimeS: barrierT}
		waiting := map[int]bool{}
		for _, w := range waits[i:j] {
			b.WaitS += w.DurS
			if w.DurS > b.MaxWaitS {
				b.MaxWaitS = w.DurS
			}
			if !waiting[w.Rank] {
				waiting[w.Rank] = true
				b.Waiters = append(b.Waiters, w.Rank)
			}
		}
		sort.Ints(b.Waiters)
		// Participants: ranks with any span ending inside (prevT, barrierT].
		// The critical rank's own work span ends at the barrier; dead ranks
		// have nothing in the window and drop out.
		for r, es := range ends {
			if waiting[r] {
				continue
			}
			if hasEndIn(es, prevT, barrierT+opt.EpsS) {
				b.Critical = append(b.Critical, r)
			}
		}
		sort.Ints(b.Critical)
		if len(b.Critical) > 0 {
			share := b.WaitS / float64(len(b.Critical))
			for _, r := range b.Critical {
				st := stat(r)
				st.CausedWaitS += share
				st.CriticalCount++
			}
			a.AttributedWaitS += b.WaitS
		}
		a.TotalWaitS += b.WaitS

		seg := Segment{StartS: prevT, EndS: barrierT, Rank: GlobalRank}
		if math.IsInf(prevT, -1) {
			seg.StartS = 0
		}
		if len(b.Critical) == 1 {
			seg.Rank = b.Critical[0]
		}
		a.CriticalPath = append(a.CriticalPath, seg)
		a.Barriers = append(a.Barriers, b)
		prevT = barrierT
		i = j
	}

	for _, st := range ranks {
		a.Ranks = append(a.Ranks, *st)
	}
	sort.Slice(a.Ranks, func(i, j int) bool { return a.Ranks[i].Rank < a.Ranks[j].Rank })

	a.Stragglers = append([]RankStat(nil), a.Ranks...)
	sort.SliceStable(a.Stragglers, func(i, j int) bool {
		return a.Stragglers[i].CausedWaitS > a.Stragglers[j].CausedWaitS
	})
	if len(a.Stragglers) > opt.TopK {
		a.Stragglers = a.Stragglers[:opt.TopK]
	}
	return a
}

// hasEndIn reports whether the sorted end-time slice has a value in (lo, hi].
func hasEndIn(es []float64, lo, hi float64) bool {
	i := sort.SearchFloat64s(es, math.Nextafter(lo, math.Inf(1)))
	return i < len(es) && es[i] <= hi
}

// intervalUnionS returns the total extent covered by the spans' intervals,
// overlaps counted once (function spans contain their kernel spans).
func intervalUnionS(ss []Span) float64 {
	if len(ss) == 0 {
		return 0
	}
	sorted := append([]Span(nil), ss...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].StartS < sorted[j].StartS })
	total := 0.0
	curStart, curEnd := sorted[0].StartS, sorted[0].EndS()
	for _, s := range sorted[1:] {
		if s.StartS > curEnd {
			total += curEnd - curStart
			curStart, curEnd = s.StartS, s.EndS()
			continue
		}
		if e := s.EndS(); e > curEnd {
			curEnd = e
		}
	}
	return total + (curEnd - curStart)
}

// FromSpanEvents converts a tracer read-back into the analysis span form,
// dropping instant events (they carry no duration).
func FromSpanEvents(events []telemetry.SpanEvent) []Span {
	out := make([]Span, 0, len(events))
	for _, e := range events {
		if e.Instant {
			continue
		}
		r := e.Track
		if r == telemetry.GlobalTrack {
			r = GlobalRank
		}
		out = append(out, Span{Rank: r, Cat: e.Category, Name: e.Name,
			StartS: e.StartS, DurS: e.DurS})
	}
	return out
}

// traceFile mirrors the Chrome trace_event "JSON object format".
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	TS   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	TID  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

// Load parses Chrome trace_event JSON into analysis spans. Track identity
// follows the exporter's convention: thread_name metadata names rank tracks
// "rank N" and the global track "sim"; tracks named "sim" map to
// GlobalRank, every other tid is taken as the rank number directly.
func Load(data []byte) ([]Span, error) {
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("traceanalysis: parse trace: %w", err)
	}
	return spansFromEvents(tf.TraceEvents), nil
}

// LoadLenient parses a trace that may have been cut off mid-write — a
// killed run, a full disk, a signal-flushed partial export. When the strict
// parse fails it recovers every complete event from the valid prefix of the
// traceEvents array and reports truncated=true; the error is non-nil only
// when not even a prefix could be recovered.
func LoadLenient(data []byte) (spans []Span, truncated bool, err error) {
	if spans, err = Load(data); err == nil {
		return spans, false, nil
	}
	// Token-stream the prefix: { "traceEvents": [ ev, ev, ... and keep
	// every event that decodes whole; the first decode error is the
	// truncation point.
	dec := json.NewDecoder(bytes.NewReader(data))
	if !nextDelim(dec, '{') {
		return nil, true, err
	}
	var evs []traceEvent
scan:
	for {
		tok, terr := dec.Token()
		if terr != nil {
			break
		}
		key, ok := tok.(string)
		if !ok {
			break
		}
		if key != "traceEvents" {
			var skip json.RawMessage
			if dec.Decode(&skip) != nil {
				break
			}
			continue
		}
		if !nextDelim(dec, '[') {
			break
		}
		for dec.More() {
			var e traceEvent
			if dec.Decode(&e) != nil {
				break scan
			}
			evs = append(evs, e)
		}
		break
	}
	if len(evs) == 0 {
		return nil, true, err
	}
	return spansFromEvents(evs), true, nil
}

// nextDelim consumes one token and reports whether it is the delimiter.
func nextDelim(dec *json.Decoder, d json.Delim) bool {
	tok, err := dec.Token()
	if err != nil {
		return false
	}
	got, ok := tok.(json.Delim)
	return ok && got == d
}

// spansFromEvents converts decoded trace events into analysis spans,
// resolving the global track from thread_name metadata.
func spansFromEvents(events []traceEvent) []Span {
	globalTIDs := map[int]bool{}
	for _, e := range events {
		if e.Ph == "M" && e.Name == "thread_name" {
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(e.Args, &args); err == nil && args.Name == "sim" {
				globalTIDs[e.TID] = true
			}
		}
	}
	var out []Span
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		r := e.TID
		if globalTIDs[e.TID] {
			r = GlobalRank
		}
		out = append(out, Span{Rank: r, Cat: e.Cat, Name: e.Name,
			StartS: e.TS / 1e6, DurS: e.Dur / 1e6})
	}
	return out
}

// LoadFile reads and parses a trace file.
func LoadFile(path string) ([]Span, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("traceanalysis: %w", err)
	}
	return Load(data)
}

// LoadFileLenient reads and parses a possibly-truncated trace file.
func LoadFileLenient(path string) ([]Span, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("traceanalysis: %w", err)
	}
	return LoadLenient(data)
}

// Render formats the analysis as a human-readable report.
func Render(a *Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %.3f s wall, %d barriers, %d ranks\n",
		a.WallS, len(a.Barriers), len(a.Ranks))
	fmt.Fprintf(&b, "barrier wait: %.4f s total", a.TotalWaitS)
	if a.TotalWaitS > 0 {
		fmt.Fprintf(&b, " (%.1f%% attributed to critical ranks)",
			100*a.AttributedWaitS/a.TotalWaitS)
	}
	b.WriteString("\n\n")

	if len(a.Stragglers) > 0 && a.Stragglers[0].CausedWaitS > 0 {
		b.WriteString("top straggler ranks (by wait imposed on others):\n")
		fmt.Fprintf(&b, "  %-6s %12s %10s %12s %10s\n",
			"rank", "caused-wait", "critical", "own-wait", "busy")
		for _, s := range a.Stragglers {
			if s.CausedWaitS == 0 {
				break
			}
			fmt.Fprintf(&b, "  %-6d %11.4fs %10d %11.4fs %9.3fs\n",
				s.Rank, s.CausedWaitS, s.CriticalCount, s.WaitS, s.BusyS)
		}
		b.WriteString("\n")
	}

	if n := len(a.CriticalPath); n > 0 {
		onPath := map[int]float64{}
		for _, seg := range a.CriticalPath {
			if seg.Rank != GlobalRank {
				onPath[seg.Rank] += seg.EndS - seg.StartS
			}
		}
		type share struct {
			rank int
			s    float64
		}
		var shares []share
		for r, s := range onPath {
			shares = append(shares, share{r, s})
		}
		sort.Slice(shares, func(i, j int) bool { return shares[i].s > shares[j].s })
		b.WriteString("critical path (time each rank set the pace):\n")
		for _, sh := range shares {
			fmt.Fprintf(&b, "  rank %-4d %9.4fs across %d segment(s)\n",
				sh.rank, sh.s, countSegments(a.CriticalPath, sh.rank))
		}
	}
	return b.String()
}

func countSegments(path []Segment, rank int) int {
	n := 0
	for _, seg := range path {
		if seg.Rank == rank {
			n++
		}
	}
	return n
}
