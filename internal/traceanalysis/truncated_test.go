package traceanalysis

import (
	"strings"
	"testing"
)

// truncTestTrace is a minimal well-formed export: global-track metadata,
// two rank spans and one global span.
const truncTestTrace = `{"traceEvents":[
{"name":"thread_name","ph":"M","tid":9,"args":{"name":"sim"}},
{"name":"step 0","cat":"step","ph":"X","ts":0,"dur":20,"tid":9},
{"name":"k1","cat":"kernel","ph":"X","ts":0,"dur":10,"tid":0},
{"name":"k2","cat":"kernel","ph":"X","ts":5,"dur":12,"tid":1}
]}`

// TestLoadLenientCompleteTrace pins that a well-formed trace parses
// identically through both loaders, with no truncation reported.
func TestLoadLenientCompleteTrace(t *testing.T) {
	strict, err := Load([]byte(truncTestTrace))
	if err != nil {
		t.Fatal(err)
	}
	lenient, truncated, err := LoadLenient([]byte(truncTestTrace))
	if err != nil || truncated {
		t.Fatalf("complete trace reported truncated=%v err=%v", truncated, err)
	}
	if len(lenient) != len(strict) {
		t.Fatalf("lenient %d spans vs strict %d", len(lenient), len(strict))
	}
	for i := range strict {
		if lenient[i] != strict[i] {
			t.Errorf("span %d differs: %+v vs %+v", i, lenient[i], strict[i])
		}
	}
	// The metadata resolved the global track in both.
	if strict[0].Rank != GlobalRank {
		t.Errorf("sim-track span mapped to rank %d, want GlobalRank", strict[0].Rank)
	}
}

// TestLoadLenientTruncatedTrace cuts the export at every byte position and
// checks the lenient loader never panics, never errors once at least one
// whole event is present, and always recovers a prefix of the full parse.
func TestLoadLenientTruncatedTrace(t *testing.T) {
	full, err := Load([]byte(truncTestTrace))
	if err != nil {
		t.Fatal(err)
	}
	sawRecovery := false
	for cut := 0; cut < len(truncTestTrace); cut++ {
		data := []byte(truncTestTrace[:cut])
		spans, truncated, err := LoadLenient(data)
		if err != nil {
			continue // nothing recoverable this early
		}
		if !truncated {
			t.Fatalf("cut at %d parsed clean — strict Load should have failed first", cut)
		}
		if len(spans) > len(full) {
			t.Fatalf("cut at %d recovered %d spans, more than the full %d", cut, len(spans), len(full))
		}
		for i := range spans {
			if spans[i] != full[i] {
				t.Fatalf("cut at %d: span %d = %+v, full parse has %+v", cut, i, spans[i], full[i])
			}
		}
		if len(spans) > 0 {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Error("no truncation point recovered any spans")
	}
}

// TestLoadLenientGarbage pins the failure mode: input that holds no
// recoverable prefix surfaces the strict parse error.
func TestLoadLenientGarbage(t *testing.T) {
	for _, bad := range []string{"", "not json at all", `[1,2,3]`} {
		if spans, _, err := LoadLenient([]byte(bad)); err == nil {
			t.Errorf("LoadLenient(%q) = %d spans, want error", bad, len(spans))
		}
	}
	// Valid JSON without events is a legal empty trace, not an error.
	for _, empty := range []string{`{"traceEvents":[]}`, `{"other":true}`} {
		if _, truncated, err := LoadLenient([]byte(empty)); err != nil || truncated {
			t.Errorf("LoadLenient(%q): truncated=%v err=%v, want clean empty parse", empty, truncated, err)
		}
	}
}

// TestLoadLenientSkipsOtherKeys checks prefix recovery still works when
// traceEvents is not the first key.
func TestLoadLenientSkipsOtherKeys(t *testing.T) {
	doc := `{"displayTimeUnit":"ms","traceEvents":[` +
		`{"name":"k1","cat":"kernel","ph":"X","ts":0,"dur":10,"tid":0},` +
		`{"name":"k2","cat":"kernel","ph":"X","ts":5,"dur"` // cut mid-event
	spans, truncated, err := LoadLenient([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(spans) != 1 || spans[0].Name != "k1" {
		t.Fatalf("recovered truncated=%v spans=%+v, want the one whole k1 span", truncated, spans)
	}
	if !strings.Contains(doc, "displayTimeUnit") {
		t.Fatal("test doc lost its leading key")
	}
}
