package traceanalysis

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sphenergy/internal/mpisim"
	"sphenergy/internal/telemetry"
)

// syntheticTrace builds a 3-rank, 2-barrier trace with rank 2 as the known
// straggler: every phase, ranks 0 and 1 finish at 1.0/1.2 into the phase
// while rank 2 takes 2.0, so each barrier imposes 1.0+0.8 s of wait, all
// caused by rank 2.
func syntheticTrace() []Span {
	var spans []Span
	t := 0.0
	for phase := 0; phase < 2; phase++ {
		durs := []float64{1.0, 1.2, 2.0}
		barrier := t + 2.0
		for r, d := range durs {
			spans = append(spans, Span{Rank: r, Cat: "kernel", Name: "work", StartS: t, DurS: d})
			if wait := barrier - (t + d); wait > 0 {
				spans = append(spans, Span{Rank: r, Cat: "mpi", Name: "barrier-wait",
					StartS: t + d, DurS: wait})
			}
		}
		t = barrier
	}
	// A global-track step span must not join the participant logic.
	spans = append(spans, Span{Rank: GlobalRank, Cat: "step", Name: "step 0", StartS: 0, DurS: t})
	return spans
}

func TestAnalyzeSyntheticStraggler(t *testing.T) {
	a := Analyze(syntheticTrace(), Options{})
	if len(a.Barriers) != 2 {
		t.Fatalf("barriers = %d, want 2", len(a.Barriers))
	}
	for i, b := range a.Barriers {
		if len(b.Critical) != 1 || b.Critical[0] != 2 {
			t.Errorf("barrier %d critical = %v, want [2]", i, b.Critical)
		}
		if want := []int{0, 1}; len(b.Waiters) != 2 || b.Waiters[0] != want[0] || b.Waiters[1] != want[1] {
			t.Errorf("barrier %d waiters = %v, want %v", i, b.Waiters, want)
		}
		if math.Abs(b.WaitS-1.8) > 1e-9 {
			t.Errorf("barrier %d wait = %g, want 1.8", i, b.WaitS)
		}
		if math.Abs(b.MaxWaitS-1.0) > 1e-9 {
			t.Errorf("barrier %d max wait = %g, want 1.0", i, b.MaxWaitS)
		}
	}
	if math.Abs(a.TotalWaitS-3.6) > 1e-9 || math.Abs(a.AttributedWaitS-3.6) > 1e-9 {
		t.Errorf("wait totals = %g attributed %g, want 3.6 both", a.TotalWaitS, a.AttributedWaitS)
	}
	if got := a.CausedWaitS(2); math.Abs(got-3.6) > 1e-9 {
		t.Errorf("rank 2 caused wait = %g, want 3.6", got)
	}
	if a.Stragglers[0].Rank != 2 {
		t.Errorf("top straggler = %d, want 2", a.Stragglers[0].Rank)
	}
	for _, seg := range a.CriticalPath {
		if seg.Rank != 2 {
			t.Errorf("critical path segment %+v not on rank 2", seg)
		}
	}
	if a.WallS != 4.0 {
		t.Errorf("wall = %g, want 4", a.WallS)
	}
	// Busy union: rank 2 worked the whole time, rank 0 half of it.
	if got := a.Ranks[2].BusyS; math.Abs(got-4.0) > 1e-9 {
		t.Errorf("rank 2 busy = %g, want 4", got)
	}
	if got := a.Ranks[0].WaitS; math.Abs(got-2.0) > 1e-9 {
		t.Errorf("rank 0 wait = %g, want 2", got)
	}
}

func TestAnalyzeJSONRoundTrip(t *testing.T) {
	// The same trace through the Chrome JSON exporter and Load must yield
	// the same verdict — this is the cmd/tracetool input path.
	tr := telemetry.NewTracer(3)
	for r := 0; r < 3; r++ {
		tr.SetTrackName(r, "rank "+string(rune('0'+r)))
	}
	tr.SetTrackName(telemetry.GlobalTrack, "sim")
	for _, s := range syntheticTrace() {
		track := s.Rank
		if track == GlobalRank {
			track = telemetry.GlobalTrack
		}
		tr.Complete(track, s.Cat, s.Name, s.StartS, s.DurS)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := Load(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(spans, Options{})
	if len(a.Barriers) != 2 || a.CausedWaitS(2) < 3.6-1e-6 {
		t.Fatalf("round-tripped analysis degraded: %d barriers, caused=%g",
			len(a.Barriers), a.CausedWaitS(2))
	}
	// Global-track spans must have been excluded from rank stats.
	for _, r := range a.Ranks {
		if r.Rank == GlobalRank {
			t.Error("global track leaked into rank stats")
		}
	}
}

func TestAnalyzeDeadRankExcluded(t *testing.T) {
	// Rank 1 dies after the first barrier: it must not be counted critical
	// for the second barrier it never reached.
	spans := []Span{
		{Rank: 0, Cat: "kernel", Name: "w", StartS: 0, DurS: 1},
		{Rank: 1, Cat: "kernel", Name: "w", StartS: 0, DurS: 2},
		{Rank: 0, Cat: "mpi", Name: "barrier-wait", StartS: 1, DurS: 1},
		// Second phase: rank 1 is dead; rank 0 runs alone, no wait spans.
		{Rank: 0, Cat: "kernel", Name: "w", StartS: 2, DurS: 1},
	}
	a := Analyze(spans, Options{})
	if len(a.Barriers) != 1 {
		t.Fatalf("barriers = %d, want 1", len(a.Barriers))
	}
	if len(a.Barriers[0].Critical) != 1 || a.Barriers[0].Critical[0] != 1 {
		t.Errorf("critical = %v, want [1]", a.Barriers[0].Critical)
	}
}

func TestAnalyzeEmptyAndWaitOnly(t *testing.T) {
	a := Analyze(nil, Options{})
	if a.TotalWaitS != 0 || len(a.Barriers) != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
	// Wait spans without any work spans: the barrier is reconstructed but
	// no critical rank can be identified; attribution stays at 0.
	a = Analyze([]Span{
		{Rank: 0, Cat: "mpi", Name: "barrier-wait", StartS: 0, DurS: 1},
	}, Options{})
	if len(a.Barriers) != 1 || len(a.Barriers[0].Critical) != 0 {
		t.Fatalf("wait-only barriers = %+v", a.Barriers)
	}
	if a.AttributedWaitS != 0 || a.TotalWaitS != 1 {
		t.Errorf("attribution = %g/%g, want 0/1", a.AttributedWaitS, a.TotalWaitS)
	}
}

// TestMpisimStragglerAttribution validates the engine against a real mpisim
// run: rank 1 is slowed 4× through the world's fault hook, and the analysis
// must attribute at least 90% of the added barrier wait (vs. the healthy
// run) to that rank.
func TestMpisimStragglerAttribution(t *testing.T) {
	run := func(slow bool) *Analysis {
		const ranks, phases = 4, 20
		net := mpisim.DefaultNetwork(ranks)
		w := mpisim.NewWorld(ranks, net, 7)
		defer w.Close()
		tr := telemetry.NewTracer(ranks)
		w.SetRecorder(tr)
		if slow {
			w.SetRankFaultHook(func(rank int, nowS float64) mpisim.RankFault {
				if rank == 1 {
					return mpisim.RankFault{SlowFactor: 4}
				}
				return mpisim.RankFault{}
			})
		}
		for p := 0; p < phases; p++ {
			starts := make([]float64, ranks)
			durs := w.Execute(func(r int) float64 {
				starts[r] = w.Clock(r)
				return 0.1 * w.Jitter(r, 0.05)
			})
			// Record each rank's work span the way the runner's kernel
			// observer does: start at the rank's clock, own duration.
			for r, d := range durs {
				tr.RecordSpan(r, "kernel", "work", starts[r], d)
			}
			w.Synchronize(durs)
		}
		return Analyze(FromSpanEvents(tr.Spans()), Options{})
	}

	healthy := run(false)
	slowed := run(true)

	addedWait := slowed.TotalWaitS - healthy.TotalWaitS
	if addedWait <= 0 {
		t.Fatalf("straggler did not add wait: healthy %g, slowed %g",
			healthy.TotalWaitS, slowed.TotalWaitS)
	}
	addedCaused := slowed.CausedWaitS(1) - healthy.CausedWaitS(1)
	if frac := addedCaused / addedWait; frac < 0.9 {
		t.Errorf("attributed %.1f%% of added wait to rank 1, want >= 90%% "+
			"(added %.4fs, attributed %.4fs)", 100*frac, addedWait, addedCaused)
	}
	if slowed.Stragglers[0].Rank != 1 {
		t.Errorf("top straggler = %d, want 1", slowed.Stragglers[0].Rank)
	}
	// Every barrier in the slowed run should be critical on rank 1.
	crit := 0
	for _, b := range slowed.Barriers {
		if len(b.Critical) == 1 && b.Critical[0] == 1 {
			crit++
		}
	}
	if frac := float64(crit) / float64(len(slowed.Barriers)); frac < 0.9 {
		t.Errorf("rank 1 critical at %.0f%% of barriers, want >= 90%%", 100*frac)
	}
}

func TestRender(t *testing.T) {
	a := Analyze(syntheticTrace(), Options{})
	out := Render(a)
	for _, want := range []string{
		"2 barriers", "3 ranks",
		"100.0% attributed",
		"top straggler ranks",
		"rank 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
