// Package rapl simulates the Intel/AMD Running Average Power Limit energy
// counters: per-package MSR-style accumulators with a fixed energy unit and
// 32-bit wrap-around, which is how the PMT CPU back-end reads CPU energy on
// non-Cray systems.
package rapl

import (
	"errors"
	"math"
)

// EnergyUnitJ is the default RAPL energy status unit (2^-14 J ≈ 61 µJ).
const EnergyUnitJ = 1.0 / 16384

// counterBits is the width of MSR_PKG_ENERGY_STATUS.
const counterBits = 32

// Source supplies the ground-truth cumulative energy of a package in
// joules; cluster.CPU implements it.
type Source interface {
	EnergyJ() float64
}

// ErrNoSuchPackage is returned for out-of-range package ids.
var ErrNoSuchPackage = errors.New("rapl: no such package")

// FaultHook intercepts MSR reads for fault injection, sharing the shape of
// nvml.FaultHook ("energy-read" with the package id as arg). Production
// paths leave the hook nil.
type FaultHook func(op string, arg int) (int, error)

// Interface is a simulated RAPL MSR interface over one node's CPU packages.
type Interface struct {
	packages []Source
	unitJ    float64
	hook     FaultHook
}

// SetFaultHook installs (or clears, with nil) the fault-injection hook.
func (r *Interface) SetFaultHook(h FaultHook) { r.hook = h }

// New creates a RAPL interface with the default energy unit.
func New(packages ...Source) *Interface {
	return &Interface{packages: packages, unitJ: EnergyUnitJ}
}

// NumPackages returns the number of CPU packages.
func (r *Interface) NumPackages() int { return len(r.packages) }

// EnergyUnit returns the joules-per-count unit from MSR_RAPL_POWER_UNIT.
func (r *Interface) EnergyUnit() float64 { return r.unitJ }

// ReadEnergyStatus returns the raw 32-bit wrapped counter of a package,
// exactly as MSR_PKG_ENERGY_STATUS would.
func (r *Interface) ReadEnergyStatus(pkg int) (uint32, error) {
	if pkg < 0 || pkg >= len(r.packages) {
		return 0, ErrNoSuchPackage
	}
	if r.hook != nil {
		if _, err := r.hook("energy-read", pkg); err != nil {
			return 0, err
		}
	}
	counts := uint64(r.packages[pkg].EnergyJ() / r.unitJ)
	return uint32(counts & (1<<counterBits - 1)), nil
}

// Reader accumulates unwrapped energy from the wrapped counter of one
// package. Poll at least once per wrap period (~2^32 * 61 µJ ≈ 262 kJ, i.e.
// ~20 minutes at 200 W) for correct unwrapping — the same constraint real
// RAPL consumers face.
type Reader struct {
	iface   *Interface
	pkg     int
	last    uint32
	totalJ  float64
	started bool
}

// NewReader creates a reader for one package.
func (r *Interface) NewReader(pkg int) (*Reader, error) {
	if pkg < 0 || pkg >= len(r.packages) {
		return nil, ErrNoSuchPackage
	}
	return &Reader{iface: r, pkg: pkg}, nil
}

// Poll samples the counter and returns the cumulative unwrapped energy in
// joules since the first poll.
func (rd *Reader) Poll() (float64, error) {
	raw, err := rd.iface.ReadEnergyStatus(rd.pkg)
	if err != nil {
		return 0, err
	}
	if !rd.started {
		rd.started = true
		rd.last = raw
		return 0, nil
	}
	delta := uint64(raw - rd.last) // wrap-safe unsigned subtraction
	rd.last = raw
	rd.totalJ += float64(delta) * rd.iface.unitJ
	return rd.totalJ, nil
}

// TotalJ returns the energy accumulated so far without re-polling.
func (rd *Reader) TotalJ() float64 { return rd.totalJ }

// MaxCounterJoules returns the wrap period in joules, for sizing poll rates.
func (r *Interface) MaxCounterJoules() float64 {
	return math.Exp2(counterBits) * r.unitJ
}
