package rapl

import (
	"math"
	"testing"
	"testing/quick"
)

// fakeSource is a controllable energy source.
type fakeSource struct{ j float64 }

func (f *fakeSource) EnergyJ() float64 { return f.j }

func TestReadEnergyStatusUnits(t *testing.T) {
	src := &fakeSource{j: 1.0}
	r := New(src)
	raw, err := r.ReadEnergyStatus(0)
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(1.0 / EnergyUnitJ)
	if raw != want {
		t.Errorf("raw counter %d, want %d", raw, want)
	}
}

func TestNoSuchPackage(t *testing.T) {
	r := New(&fakeSource{})
	if _, err := r.ReadEnergyStatus(1); err != ErrNoSuchPackage {
		t.Errorf("err = %v", err)
	}
	if _, err := r.NewReader(-1); err != ErrNoSuchPackage {
		t.Errorf("NewReader err = %v", err)
	}
}

func TestReaderAccumulates(t *testing.T) {
	src := &fakeSource{}
	r := New(src)
	rd, err := r.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := rd.Poll(); j != 0 {
		t.Errorf("first poll = %v, want 0", j)
	}
	src.j = 100
	j, _ := rd.Poll()
	if math.Abs(j-100) > 2*EnergyUnitJ {
		t.Errorf("after 100 J: %v", j)
	}
	src.j = 250.5
	j, _ = rd.Poll()
	if math.Abs(j-250.5) > 3*EnergyUnitJ {
		t.Errorf("after 250.5 J: %v", j)
	}
	if rd.TotalJ() != j {
		t.Error("TotalJ inconsistent with Poll result")
	}
}

func TestWrapAround(t *testing.T) {
	// The 32-bit counter wraps every ~262 kJ; the reader must survive it.
	src := &fakeSource{}
	r := New(src)
	rd, _ := r.NewReader(0)
	rd.Poll()
	wrap := r.MaxCounterJoules()
	// Step across the wrap boundary in increments below the wrap period.
	total := 0.0
	step := wrap * 0.4
	for i := 0; i < 6; i++ {
		total += step
		src.j = total
		rd.Poll()
	}
	if math.Abs(rd.TotalJ()-total) > 1e-3*total {
		t.Errorf("unwrapped %v, want %v (6 polls across ~2.4 wraps)", rd.TotalJ(), total)
	}
}

func TestWrapAroundProperty(t *testing.T) {
	f := func(stepsRaw []uint32) bool {
		src := &fakeSource{}
		r := New(src)
		rd, _ := r.NewReader(0)
		rd.Poll()
		total := 0.0
		for _, s := range stepsRaw {
			// Steps below half the wrap period are always unwrappable.
			delta := float64(s%100000) * EnergyUnitJ * 10
			if delta > r.MaxCounterJoules()/2 {
				continue
			}
			total += delta
			src.j = total
			rd.Poll()
		}
		return math.Abs(rd.TotalJ()-total) < 1e-6*total+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMultiplePackages(t *testing.T) {
	a, b := &fakeSource{j: 10}, &fakeSource{j: 20}
	r := New(a, b)
	if r.NumPackages() != 2 {
		t.Fatalf("NumPackages = %d", r.NumPackages())
	}
	ra, _ := r.ReadEnergyStatus(0)
	rb, _ := r.ReadEnergyStatus(1)
	if ra >= rb {
		t.Error("package counters not independent")
	}
}

func TestEnergyUnit(t *testing.T) {
	r := New(&fakeSource{})
	if r.EnergyUnit() != EnergyUnitJ {
		t.Error("unexpected energy unit")
	}
	if math.Abs(r.MaxCounterJoules()-math.Exp2(32)*EnergyUnitJ) > 1 {
		t.Error("wrap period mismatch")
	}
}

// TestReaderMultipleWraps walks the true energy across several full
// 32-bit counter wraps (~262 kJ each at the default unit), polling twice
// per wrap period; the unwrapped total must track ground truth to within
// quantization error the whole way.
func TestReaderMultipleWraps(t *testing.T) {
	src := &fakeSource{}
	r := New(src)
	rd, err := r.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	rd.Poll()
	wrapJ := r.MaxCounterJoules()
	if math.Abs(wrapJ-math.Exp2(32)*EnergyUnitJ) > 1e-9 {
		t.Fatalf("wrap period %v J", wrapJ)
	}
	// 3.5 wraps in half-wrap steps: 7 polls, each within the Nyquist bound.
	var got float64
	for step := 1; step <= 7; step++ {
		src.j = float64(step) * wrapJ / 2
		got, err = rd.Poll()
		if err != nil {
			t.Fatal(err)
		}
		// Each poll quantizes to one counter unit; errors accumulate.
		tol := float64(step+1) * EnergyUnitJ
		if math.Abs(got-src.j) > tol {
			t.Fatalf("after %.0f J (%d polls): unwrapped %.6f J (off by %g)",
				src.j, step, got, got-src.j)
		}
	}
	if got < 3*wrapJ {
		t.Fatalf("total %v J never crossed 3 wraps (%v J)", got, 3*wrapJ)
	}
}

// TestReaderSlowPollUndercounts is the regression contract for the
// documented constraint on Reader.Poll: polling slower than the wrap
// period loses exactly the wrapped multiples of MaxCounterJoules. The
// failure mode must be a silent undercount of k*wrapJ — never a negative
// delta or an error — matching real RAPL consumers.
func TestReaderSlowPollUndercounts(t *testing.T) {
	src := &fakeSource{}
	r := New(src)
	rd, _ := r.NewReader(0)
	rd.Poll()
	wrapJ := r.MaxCounterJoules()

	// 2.25 wraps between two polls: the reader can only see the 0.25.
	src.j = 2.25 * wrapJ
	got, err := rd.Poll()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25 * wrapJ
	if math.Abs(got-want) > 2*EnergyUnitJ {
		t.Fatalf("slow poll accumulated %v J, want the aliased %v J", got, want)
	}
	if got < 0 {
		t.Fatal("unwrapped energy went negative")
	}

	// Subsequent in-bound polling resumes exact tracking of new energy.
	src.j += 100
	got2, _ := rd.Poll()
	if math.Abs(got2-(want+100)) > 3*EnergyUnitJ {
		t.Fatalf("post-alias poll %v J, want %v J", got2, want+100)
	}
}
