package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

func kernels() []Kernel {
	return []Kernel{CubicSpline{}, WendlandC2{}, WendlandC6{}, NewSinc(5), NewSinc(6)}
}

// volumeIntegral numerically integrates W over its support in 3-D.
func volumeIntegral(k Kernel, h float64) float64 {
	const steps = 2000
	rmax := k.SupportRadius() * h
	dr := rmax / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		r := (float64(i) + 0.5) * dr
		sum += k.W(r, h) * 4 * math.Pi * r * r * dr
	}
	return sum
}

func TestNormalization(t *testing.T) {
	for _, k := range kernels() {
		for _, h := range []float64{0.5, 1, 2.5} {
			got := volumeIntegral(k, h)
			if math.Abs(got-1) > 2e-3 {
				t.Errorf("%s: integral W dV = %v at h=%v, want 1", k.Name(), got, h)
			}
		}
	}
}

func TestCompactSupport(t *testing.T) {
	for _, k := range kernels() {
		if k.W(2.0, 1.0) != 0 {
			t.Errorf("%s: W(2h) = %v, want 0", k.Name(), k.W(2.0, 1.0))
		}
		if k.W(5.0, 1.0) != 0 || k.DW(5.0, 1.0) != 0 {
			t.Errorf("%s: support leaks beyond 2h", k.Name())
		}
	}
}

func TestPositivityInsideSupport(t *testing.T) {
	for _, k := range kernels() {
		for q := 0.0; q < 1.99; q += 0.05 {
			if w := k.W(q, 1); w <= 0 {
				t.Errorf("%s: W(%v) = %v, want > 0", k.Name(), q, w)
			}
		}
	}
}

func TestDerivativeMatchesNumeric(t *testing.T) {
	const eps = 1e-6
	for _, k := range kernels() {
		for _, r := range []float64{0.1, 0.5, 1.0, 1.5, 1.9} {
			numeric := (k.W(r+eps, 1) - k.W(r-eps, 1)) / (2 * eps)
			got := k.DW(r, 1)
			scale := math.Max(math.Abs(numeric), 1e-3)
			if math.Abs(got-numeric)/scale > 1e-3 {
				t.Errorf("%s: DW(%v) = %v, numeric %v", k.Name(), r, got, numeric)
			}
		}
	}
}

func TestDerivativeNonPositive(t *testing.T) {
	// SPH kernels decrease monotonically with distance.
	for _, k := range kernels() {
		for q := 0.01; q < 2; q += 0.01 {
			if dw := k.DW(q, 1); dw > 1e-12 {
				t.Errorf("%s: DW(%v) = %v > 0", k.Name(), q, dw)
			}
		}
	}
}

func TestScalingWithH(t *testing.T) {
	// W(r, h) = W(r/h, 1)/h^3 for every kernel.
	f := func(rRaw, hRaw float64) bool {
		r := math.Mod(math.Abs(rRaw), 2)
		h := 0.5 + math.Mod(math.Abs(hRaw), 3)
		for _, k := range kernels() {
			want := k.W(r, 1) / (h * h * h)
			got := k.W(r*h, h)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInvalidH(t *testing.T) {
	for _, k := range kernels() {
		if k.W(0.5, 0) != 0 || k.W(0.5, -1) != 0 {
			t.Errorf("%s: non-positive h should yield 0", k.Name())
		}
	}
}

func TestTableAccuracy(t *testing.T) {
	for _, base := range kernels() {
		tab := NewTable(base, 4000)
		maxErrW, maxErrD := 0.0, 0.0
		for q := 0.0; q < 2; q += 0.001 {
			ew := math.Abs(tab.W(q, 1) - base.W(q, 1))
			ed := math.Abs(tab.DW(q, 1) - base.DW(q, 1))
			maxErrW = math.Max(maxErrW, ew)
			maxErrD = math.Max(maxErrD, ed)
		}
		if maxErrW > 1e-5 {
			t.Errorf("%s table: max W error %v", base.Name(), maxErrW)
		}
		if maxErrD > 1e-4 {
			t.Errorf("%s table: max DW error %v", base.Name(), maxErrD)
		}
	}
}

func TestTableScaling(t *testing.T) {
	tab := NewTable(WendlandC2{}, 1000)
	base := WendlandC2{}
	for _, h := range []float64{0.3, 1, 4} {
		got := tab.W(0.5*h, h)
		want := base.W(0.5*h, h)
		if math.Abs(got-want) > 1e-5/h/h/h {
			t.Errorf("table at h=%v: %v vs %v", h, got, want)
		}
	}
}

func TestTablePanicsOnTooFewPoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTable(.., 1) did not panic")
		}
	}()
	NewTable(CubicSpline{}, 1)
}

func TestSincExponentEffect(t *testing.T) {
	// Higher exponent concentrates the kernel: larger central value.
	s5, s6 := NewSinc(5), NewSinc(6)
	if s6.W(0, 1) <= s5.W(0, 1) {
		t.Errorf("sinc6 center %v should exceed sinc5 center %v", s6.W(0, 1), s5.W(0, 1))
	}
}

func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range kernels() {
		n := k.Name()
		if n == "" {
			t.Error("empty kernel name")
		}
		seen[n] = true
	}
	tab := NewTable(CubicSpline{}, 100)
	if tab.Name() != "cubic-spline-table" {
		t.Errorf("table name = %q", tab.Name())
	}
}
