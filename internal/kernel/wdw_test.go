package kernel

import "testing"

// TestWDWBitIdenticalToSeparateCalls pins the PairEvaluator contract the
// symmetric SPH path relies on: the fused lookup must return exactly the
// floats of separate W and DW calls, for the float64 table and its
// float32 quantization, across the support (including the out-of-support
// and degenerate-h edges).
func TestWDWBitIdenticalToSeparateCalls(t *testing.T) {
	tab := NewTable(WendlandC2{}, 512)
	t32 := Quantize32(tab)
	kernels := []struct {
		name string
		k    Kernel
		pe   PairEvaluator
	}{
		{"table", tab, tab},
		{"table32", t32, t32},
	}
	hs := []float64{0.37, 1, 2.5, 0, -1}
	for _, kn := range kernels {
		for _, h := range hs {
			for i := 0; i <= 400; i++ {
				r := float64(i) * 0.0151 // runs past the 2h support at every h
				w, dw := kn.pe.WDW(r, h)
				if ws, dws := kn.k.W(r, h), kn.k.DW(r, h); w != ws || dw != dws {
					t.Fatalf("%s: WDW(%g, %g) = (%g, %g), separate calls give (%g, %g)",
						kn.name, r, h, w, dw, ws, dws)
				}
			}
		}
	}
}
