package kernel

import "testing"

// TestCheckedTableMeetsAccuracyGate pins the documented tabulation
// contract: at DefaultTablePoints every kernel family stays within
// TableRelTol of its analytic form, and NewCheckedTable accepts it.
func TestCheckedTableMeetsAccuracyGate(t *testing.T) {
	for _, base := range []Kernel{CubicSpline{}, WendlandC2{}, WendlandC6{}, NewSinc(5), NewSinc(6)} {
		tab := NewCheckedTable(base, DefaultTablePoints)
		wErr, dwErr := tab.MaxRelError()
		if wErr > TableRelTol || dwErr > TableRelTol {
			t.Errorf("%s: wErr=%.3g dwErr=%.3g exceed gate %g", base.Name(), wErr, dwErr, TableRelTol)
		}
		if wErr == 0 && dwErr == 0 {
			t.Errorf("%s: zero interpolation error is implausible; gate test is vacuous", base.Name())
		}
		if tab.Base() != base {
			t.Errorf("%s: Base() does not round-trip", base.Name())
		}
	}
}

// TestCheckedTablePanicsBelowGate ensures the gate actually rejects
// under-resolved tables.
func TestCheckedTablePanicsBelowGate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCheckedTable accepted a 16-point table")
		}
	}()
	NewCheckedTable(WendlandC2{}, 16)
}
