package kernel

import (
	"math"
	"testing"
)

// TestTable32TracksFloat64Table pins the float32 quantization error band:
// close enough to be a faithful kernel (well under 1e-4 relative), but far
// outside float64 round-off — which is why the pipeline-level Float32Eval
// flag cannot hold a 1e-9 equivalence gate.
func TestTable32TracksFloat64Table(t *testing.T) {
	tab := NewCheckedTable(WendlandC2{}, DefaultTablePoints)
	t32 := Quantize32(tab)
	var maxW, maxDW float64
	wScale := tab.W(0, 1)
	dwScale := 0.0
	for i := 0; i <= 4000; i++ {
		q := float64(i) * 2.0 / 4000
		if v := math.Abs(tab.DW(q, 1)); v > dwScale {
			dwScale = v
		}
	}
	for i := 0; i <= 4000; i++ {
		q := float64(i) * 2.0 / 4000 * 0.9999
		if d := math.Abs(t32.W(q, 1) - tab.W(q, 1)); d > maxW {
			maxW = d
		}
		if d := math.Abs(t32.DW(q, 1) - tab.DW(q, 1)); d > maxDW {
			maxDW = d
		}
	}
	relW, relDW := maxW/wScale, maxDW/dwScale
	if relW > 1e-4 || relDW > 1e-4 {
		t.Errorf("float32 table too far from float64: wErr=%.3g dwErr=%.3g", relW, relDW)
	}
	if relW < 1e-9 && relDW < 1e-9 {
		t.Errorf("float32 table suspiciously exact (wErr=%.3g dwErr=%.3g) — quantization not happening?", relW, relDW)
	}
}

func TestTable32SupportAndInvalidH(t *testing.T) {
	t32 := Quantize32(NewCheckedTable(CubicSpline{}, DefaultTablePoints))
	if v := t32.W(2.1, 1); v != 0 {
		t.Errorf("W outside support = %v", v)
	}
	if v := t32.DW(2.0, 1); v != 0 {
		t.Errorf("DW at support edge = %v", v)
	}
	if v := t32.W(0.5, 0); v != 0 {
		t.Errorf("W with h=0 = %v", v)
	}
	if t32.Name() != "cubic-spline-table-f32" {
		t.Errorf("Name = %q", t32.Name())
	}
	if t32.SupportRadius() != 2 {
		t.Errorf("SupportRadius = %v", t32.SupportRadius())
	}
}

func TestTable32ScalingWithH(t *testing.T) {
	// W scales as 1/h³ and DW as 1/h⁴ (within float32 rounding of the
	// scale factors themselves).
	t32 := Quantize32(NewCheckedTable(WendlandC6{}, DefaultTablePoints))
	for _, h := range []float64{0.05, 0.5, 2} {
		w1 := t32.W(0.3, 1)
		wh := t32.W(0.3*h, h)
		if math.Abs(wh-w1/(h*h*h)) > 1e-6*math.Abs(w1/(h*h*h)) {
			t.Errorf("h=%v: W scaling off: %v vs %v", h, wh, w1/(h*h*h))
		}
	}
}
