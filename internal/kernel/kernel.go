// Package kernel implements the smoothing kernels used by the SPH solver:
// the cubic B-spline, the Wendland C2 and C6 kernels, and the sinc-family
// kernel used by SPH-EXA (Cabezón et al.), all in three dimensions with
// compact support of 2h.
//
// The Kernel interface exposes the normalized value W(r, h) and the radial
// derivative dW/dr. For performance-critical loops a tabulated variant with
// linear interpolation is provided; its accuracy is validated in the tests
// against the analytic forms.
package kernel

import (
	"fmt"
	"math"
)

// Kernel is a 3-D SPH smoothing kernel with compact support radius 2h.
type Kernel interface {
	// Name identifies the kernel in reports.
	Name() string
	// W evaluates the kernel at distance r for smoothing length h.
	W(r, h float64) float64
	// DW evaluates dW/dr at distance r for smoothing length h.
	DW(r, h float64) float64
	// SupportRadius returns the compact support in units of h (always 2 here).
	SupportRadius() float64
}

// normalizedEval maps (r, h) to the dimensionless q = r/h and the 1/h³
// normalization, handling out-of-support distances.
func normalizedEval(r, h float64) (q, norm float64, ok bool) {
	if h <= 0 {
		return 0, 0, false
	}
	q = r / h
	if q >= 2 {
		return q, 0, false
	}
	return q, 1 / (h * h * h), true
}

// CubicSpline is the classic M4 cubic B-spline kernel.
type CubicSpline struct{}

// Name implements Kernel.
func (CubicSpline) Name() string { return "cubic-spline" }

// SupportRadius implements Kernel.
func (CubicSpline) SupportRadius() float64 { return 2 }

const cubicSigma = 1 / math.Pi

// W implements Kernel.
func (CubicSpline) W(r, h float64) float64 {
	q, norm, ok := normalizedEval(r, h)
	if !ok {
		return 0
	}
	var w float64
	if q < 1 {
		w = 1 - 1.5*q*q*(1-q/2)
	} else {
		d := 2 - q
		w = 0.25 * d * d * d
	}
	return cubicSigma * norm * w
}

// DW implements Kernel.
func (CubicSpline) DW(r, h float64) float64 {
	q, norm, ok := normalizedEval(r, h)
	if !ok {
		return 0
	}
	var dw float64
	if q < 1 {
		dw = -3*q + 2.25*q*q
	} else {
		d := 2 - q
		dw = -0.75 * d * d
	}
	return cubicSigma * norm / h * dw
}

// WendlandC2 is the Wendland C2 kernel (Dehnen & Aly 2012 normalization for
// support 2h).
type WendlandC2 struct{}

// Name implements Kernel.
func (WendlandC2) Name() string { return "wendland-c2" }

// SupportRadius implements Kernel.
func (WendlandC2) SupportRadius() float64 { return 2 }

const wc2Sigma = 21 / (16 * math.Pi)

// W implements Kernel.
func (WendlandC2) W(r, h float64) float64 {
	q, norm, ok := normalizedEval(r, h)
	if !ok {
		return 0
	}
	u := 1 - q/2
	u2 := u * u
	return wc2Sigma * norm * u2 * u2 * (2*q + 1)
}

// DW implements Kernel.
func (WendlandC2) DW(r, h float64) float64 {
	q, norm, ok := normalizedEval(r, h)
	if !ok {
		return 0
	}
	u := 1 - q/2
	return wc2Sigma * norm / h * (-5 * q * u * u * u)
}

// WendlandC6 is the Wendland C6 kernel, the smoother default for large
// neighbor counts.
type WendlandC6 struct{}

// Name implements Kernel.
func (WendlandC6) Name() string { return "wendland-c6" }

// SupportRadius implements Kernel.
func (WendlandC6) SupportRadius() float64 { return 2 }

const wc6Sigma = 1365 / (512 * math.Pi)

// W implements Kernel.
func (WendlandC6) W(r, h float64) float64 {
	q, norm, ok := normalizedEval(r, h)
	if !ok {
		return 0
	}
	u := 1 - q/2
	u2 := u * u
	u4 := u2 * u2
	u8 := u4 * u4
	poly := 1 + 4*q + 6.25*q*q + 4*q*q*q
	return wc6Sigma * norm * u8 * poly
}

// DW implements Kernel.
func (WendlandC6) DW(r, h float64) float64 {
	q, norm, ok := normalizedEval(r, h)
	if !ok {
		return 0
	}
	u := 1 - q/2
	u2 := u * u
	u4 := u2 * u2
	u7 := u4 * u2 * u
	// d/dq [u^8 * poly] with u = 1 - q/2:
	// = u^7 * (-4*poly + u*dpoly)
	poly := 1 + 4*q + 6.25*q*q + 4*q*q*q
	dpoly := 4 + 12.5*q + 12*q*q
	return wc6Sigma * norm / h * u7 * (u*dpoly - 4*poly)
}

// Sinc is the sinc-family kernel S_n(q) = sigma_n * (sin(pi q / 2)/(pi q / 2))^n
// used by SPH-EXA; n is typically 5 or 6. The normalization constant is
// computed numerically at construction.
type Sinc struct {
	n     float64
	sigma float64
}

// NewSinc constructs a sinc kernel of exponent n (n >= 3 recommended).
func NewSinc(n float64) *Sinc {
	s := &Sinc{n: n}
	s.sigma = 1 / s.volumeIntegral()
	return s
}

// volumeIntegral computes ∫ S(q) 4π q² dq over [0, 2] with the unnormalized
// sinc shape, via composite Simpson.
func (s *Sinc) volumeIntegral() float64 {
	const steps = 4096
	h := 2.0 / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		q := float64(i) * h
		w := s.shape(q) * 4 * math.Pi * q * q
		switch {
		case i == 0 || i == steps:
			sum += w
		case i%2 == 1:
			sum += 4 * w
		default:
			sum += 2 * w
		}
	}
	return sum * h / 3
}

func (s *Sinc) shape(q float64) float64 {
	if q >= 2 {
		return 0
	}
	if q < 1e-12 {
		return 1
	}
	x := math.Pi * q / 2
	return math.Pow(math.Sin(x)/x, s.n)
}

// Name implements Kernel.
func (s *Sinc) Name() string { return "sinc" }

// SupportRadius implements Kernel.
func (s *Sinc) SupportRadius() float64 { return 2 }

// W implements Kernel.
func (s *Sinc) W(r, h float64) float64 {
	q, norm, ok := normalizedEval(r, h)
	if !ok {
		return 0
	}
	return s.sigma * norm * s.shape(q)
}

// DW implements Kernel.
func (s *Sinc) DW(r, h float64) float64 {
	q, norm, ok := normalizedEval(r, h)
	if !ok {
		return 0
	}
	if q < 1e-9 {
		return 0
	}
	x := math.Pi * q / 2
	sinc := math.Sin(x) / x
	dsinc := (math.Cos(x) - sinc) / q // d/dq [sin(x)/x] with x = πq/2 → (π/2)(cos x/x - sin x/x²) = (cos x - sinc)/q
	return s.sigma * norm / h * s.n * math.Pow(sinc, s.n-1) * dsinc
}

// Table is a tabulated kernel with linear interpolation, trading a small
// accuracy loss for branch-free evaluation in hot loops.
type Table struct {
	base   Kernel
	w, dw  []float64
	invDq  float64
	points int
}

// NewTable tabulates base over q in [0, 2] with the given number of points
// (>= 2).
func NewTable(base Kernel, points int) *Table {
	if points < 2 {
		panic("kernel: table needs at least 2 points")
	}
	t := &Table{base: base, points: points}
	t.w = make([]float64, points+1)
	t.dw = make([]float64, points+1)
	dq := 2.0 / float64(points)
	t.invDq = 1 / dq
	for i := 0; i <= points; i++ {
		q := float64(i) * dq
		// Tabulate at h=1; W(r,h) = W1(q)/h³, DW(r,h) = DW1(q)/h⁴.
		t.w[i] = base.W(q, 1)
		t.dw[i] = base.DW(q, 1)
	}
	return t
}

// Name implements Kernel.
func (t *Table) Name() string { return t.base.Name() + "-table" }

// SupportRadius implements Kernel.
func (t *Table) SupportRadius() float64 { return 2 }

func (t *Table) lookup(tab []float64, q float64) float64 {
	if q >= 2 || q < 0 {
		return 0
	}
	f := q * t.invDq
	i := int(f)
	if i >= t.points {
		return 0
	}
	frac := f - float64(i)
	return tab[i]*(1-frac) + tab[i+1]*frac
}

// W implements Kernel.
func (t *Table) W(r, h float64) float64 {
	if h <= 0 {
		return 0
	}
	return t.lookup(t.w, r/h) / (h * h * h)
}

// DW implements Kernel.
func (t *Table) DW(r, h float64) float64 {
	if h <= 0 {
		return 0
	}
	return t.lookup(t.dw, r/h) / (h * h * h * h)
}

// Base returns the analytic kernel the table was built from.
func (t *Table) Base() Kernel { return t.base }

// PairEvaluator is implemented by kernels that can evaluate W and dW/dr
// together, sharing the q normalization and interpolation index between
// the two lookups. Hot loops that need both values should type-assert for
// it; the results are bit-identical to separate W and DW calls.
type PairEvaluator interface {
	WDW(r, h float64) (w, dw float64)
}

// WDW implements PairEvaluator: one q computation and interpolation index
// serve both tables. Bit-identical to calling W and DW separately.
func (t *Table) WDW(r, h float64) (w, dw float64) {
	if h <= 0 {
		return 0, 0
	}
	q := r / h
	if q >= 2 || q < 0 {
		return 0, 0
	}
	f := q * t.invDq
	i := int(f)
	if i >= t.points {
		return 0, 0
	}
	frac := f - float64(i)
	h3 := h * h * h
	w = (t.w[i]*(1-frac) + t.w[i+1]*frac) / h3
	dw = (t.dw[i]*(1-frac) + t.dw[i+1]*frac) / (h3 * h)
	return w, dw
}

// MaxRelError returns the maximum interpolation error of the table's W and
// DW against the analytic base kernel, sampled at the bin midpoints (the
// worst case for linear interpolation) and normalized by the respective
// peak magnitude so near-zero tails don't inflate the ratio.
func (t *Table) MaxRelError() (wErr, dwErr float64) {
	dq := 2.0 / float64(t.points)
	var wScale, dwScale, wMax, dwMax float64
	for i := 0; i < t.points; i++ {
		q := (float64(i) + 0.5) * dq
		w := t.base.W(q, 1)
		dw := t.base.DW(q, 1)
		if v := math.Abs(w); v > wScale {
			wScale = v
		}
		if v := math.Abs(dw); v > dwScale {
			dwScale = v
		}
		if d := math.Abs(t.W(q, 1) - w); d > wMax {
			wMax = d
		}
		if d := math.Abs(t.DW(q, 1) - dw); d > dwMax {
			dwMax = d
		}
	}
	if v := math.Abs(t.base.W(0, 1)); v > wScale {
		wScale = v
	}
	if wScale > 0 {
		wErr = wMax / wScale
	}
	if dwScale > 0 {
		dwErr = dwMax / dwScale
	}
	return wErr, dwErr
}

// Table32 is the float32-evaluation variant of Table: float32 table
// entries, float32 q and interpolation arithmetic, float64 only at the
// call boundary. It exists to answer the mixed-precision question of the
// frequency-scaling study — whether float32 kernel evaluation with float64
// accumulation holds the pipeline's 1e-9 equivalence gate (it does not;
// the quantization alone contributes ~1e-7 relative error, see
// sph.Options.Float32Eval).
type Table32 struct {
	base   *Table
	w, dw  []float32
	invDq  float32
	points int
}

// Quantize32 converts a float64 kernel table to its float32 twin.
func Quantize32(t *Table) *Table32 {
	q := &Table32{base: t, points: t.points, invDq: float32(t.invDq)}
	q.w = make([]float32, len(t.w))
	q.dw = make([]float32, len(t.dw))
	for i := range t.w {
		q.w[i] = float32(t.w[i])
		q.dw[i] = float32(t.dw[i])
	}
	return q
}

// Name implements Kernel.
func (t *Table32) Name() string { return t.base.Name() + "-f32" }

// SupportRadius implements Kernel.
func (t *Table32) SupportRadius() float64 { return 2 }

func (t *Table32) lookup(tab []float32, q float32) float32 {
	if q >= 2 || q < 0 {
		return 0
	}
	f := q * t.invDq
	i := int(f)
	if i >= t.points {
		return 0
	}
	frac := f - float32(i)
	return tab[i]*(1-frac) + tab[i+1]*frac
}

// W implements Kernel.
func (t *Table32) W(r, h float64) float64 {
	if h <= 0 {
		return 0
	}
	h32 := float32(h)
	return float64(t.lookup(t.w, float32(r)/h32) / (h32 * h32 * h32))
}

// DW implements Kernel.
func (t *Table32) DW(r, h float64) float64 {
	if h <= 0 {
		return 0
	}
	h32 := float32(h)
	return float64(t.lookup(t.dw, float32(r)/h32) / (h32 * h32 * h32 * h32))
}

// WDW implements PairEvaluator with float32 interpolation, bit-identical
// to separate Table32.W and Table32.DW calls.
func (t *Table32) WDW(r, h float64) (w, dw float64) {
	if h <= 0 {
		return 0, 0
	}
	h32 := float32(h)
	q := float32(r) / h32
	if q >= 2 || q < 0 {
		return 0, 0
	}
	f := q * t.invDq
	i := int(f)
	if i >= t.points {
		return 0, 0
	}
	frac := f - float32(i)
	h3 := h32 * h32 * h32
	w = float64((t.w[i]*(1-frac) + t.w[i+1]*frac) / h3)
	dw = float64((t.dw[i]*(1-frac) + t.dw[i+1]*frac) / (h3 * h32))
	return w, dw
}

// Base returns the float64 table this was quantized from.
func (t *Table32) Base() *Table { return t.base }

// TableRelTol is the documented accuracy contract of checked tables: at
// DefaultTablePoints resolution, linear interpolation stays within this
// relative error of the analytic kernel for every kernel family in this
// package (relative to the peak magnitude of W and DW respectively).
const TableRelTol = 5e-6

// DefaultTablePoints is the table resolution used by the solver defaults.
const DefaultTablePoints = 2000

// NewCheckedTable tabulates base and enforces the TableRelTol accuracy
// gate, panicking when the resolution misses it — a misconfigured table
// fails loudly at startup instead of silently degrading the physics.
func NewCheckedTable(base Kernel, points int) *Table {
	t := NewTable(base, points)
	if wErr, dwErr := t.MaxRelError(); wErr > TableRelTol || dwErr > TableRelTol {
		panic(fmt.Sprintf("kernel: %s table with %d points misses accuracy gate: wErr=%.3g dwErr=%.3g > %g",
			base.Name(), points, wErr, dwErr, TableRelTol))
	}
	return t
}
