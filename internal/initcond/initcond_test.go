package initcond

import (
	"math"
	"testing"
	"testing/quick"

	"sphenergy/internal/sfc"
	"sphenergy/internal/sph"
)

func TestLatticeInBox(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	p := sph.NewParticles(8 * 8 * 8)
	Lattice(p, box, 8, 0.3, 1)
	for i := 0; i < p.N; i++ {
		if p.X[i] < 0 || p.X[i] >= 1 || p.Y[i] < 0 || p.Y[i] >= 1 || p.Z[i] < 0 || p.Z[i] >= 1 {
			t.Fatalf("particle %d at (%v,%v,%v) outside box", i, p.X[i], p.Y[i], p.Z[i])
		}
	}
}

func TestLatticeZeroJitterIsRegular(t *testing.T) {
	box := sfc.NewCube(0, 1)
	p := sph.NewParticles(4 * 4 * 4)
	Lattice(p, box, 4, 0, 1)
	if math.Abs(p.X[0]-0.125) > 1e-12 {
		t.Errorf("first lattice point x = %v, want 0.125", p.X[0])
	}
}

func TestTurbulenceMachTarget(t *testing.T) {
	spec := DefaultTurbulence(12)
	spec.Mach = 0.4
	p, opt := Turbulence(spec)
	var sum float64
	for i := 0; i < p.N; i++ {
		sum += p.VX[i]*p.VX[i] + p.VY[i]*p.VY[i] + p.VZ[i]*p.VZ[i]
	}
	vrms := math.Sqrt(sum / float64(p.N))
	// Bulk-motion removal perturbs the RMS slightly.
	if math.Abs(vrms/spec.Cs-0.4) > 0.05 {
		t.Errorf("Mach rms = %v, want ~0.4", vrms/spec.Cs)
	}
	if _, ok := opt.EOS.(sph.Isothermal); !ok {
		t.Error("turbulence should use the isothermal EOS")
	}
}

func TestTurbulenceZeroNetMomentum(t *testing.T) {
	p, _ := Turbulence(DefaultTurbulence(10))
	var px, py, pz float64
	for i := 0; i < p.N; i++ {
		px += p.M[i] * p.VX[i]
		py += p.M[i] * p.VY[i]
		pz += p.M[i] * p.VZ[i]
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-12 {
		t.Errorf("net momentum (%v, %v, %v), want 0", px, py, pz)
	}
}

func TestTurbulenceReproducible(t *testing.T) {
	a, _ := Turbulence(DefaultTurbulence(8))
	b, _ := Turbulence(DefaultTurbulence(8))
	for i := 0; i < a.N; i++ {
		if a.X[i] != b.X[i] || a.VX[i] != b.VX[i] {
			t.Fatal("same spec produced different initial conditions")
		}
	}
}

func TestSolenoidalFieldDivergenceFree(t *testing.T) {
	field := NewSolenoidalField(1, 3, 99)
	// Field amplitude scale for relative comparison.
	vx, vy, vz := field.At(0.3, 0.7, 0.2)
	scale := math.Sqrt(vx*vx+vy*vy+vz*vz) + 1e-12
	f := func(x, y, z float64) bool {
		// Map arbitrary floats into the unit box.
		x = math.Mod(math.Abs(x), 1)
		y = math.Mod(math.Abs(y), 1)
		z = math.Mod(math.Abs(z), 1)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return true
		}
		div := field.Divergence(x, y, z)
		return math.Abs(div)/scale < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolenoidalFieldPeriodic(t *testing.T) {
	field := NewSolenoidalField(1, 2, 5)
	ax, ay, az := field.At(0.25, 0.5, 0.75)
	bx, by, bz := field.At(1.25, 0.5, 0.75)
	if math.Abs(ax-bx) > 1e-9 || math.Abs(ay-by) > 1e-9 || math.Abs(az-bz) > 1e-9 {
		t.Error("velocity field not periodic with the unit box")
	}
}

func TestEvrardDensityProfile(t *testing.T) {
	p, opt := Evrard(DefaultEvrard(20))
	if !opt.Gravity {
		t.Error("Evrard must enable gravity")
	}
	// Bin particles radially; mass in shell / shell volume should follow
	// rho ~ 1/r, i.e. r*rho ~ const = M/(2 pi R^2).
	const bins = 5
	shellMass := make([]float64, bins)
	for i := 0; i < p.N; i++ {
		r := math.Sqrt(p.X[i]*p.X[i] + p.Y[i]*p.Y[i] + p.Z[i]*p.Z[i])
		b := int(r * bins)
		if b >= bins {
			b = bins - 1
		}
		shellMass[b] += p.M[i]
	}
	// For rho = M/(2 pi R^2 r), shell [r1, r2] holds M*(r2^2 - r1^2)/R^2.
	for b := 1; b < bins-1; b++ { // edge bins suffer discreteness
		r1 := float64(b) / bins
		r2 := float64(b+1) / bins
		want := r2*r2 - r1*r1
		if math.Abs(shellMass[b]-want)/want > 0.2 {
			t.Errorf("shell %d mass %v, want %v (1/r profile)", b, shellMass[b], want)
		}
	}
}

func TestEvrardColdStart(t *testing.T) {
	p, _ := Evrard(DefaultEvrard(10))
	for i := 0; i < p.N; i++ {
		if p.VX[i] != 0 || p.VY[i] != 0 || p.VZ[i] != 0 {
			t.Fatal("Evrard must start at rest")
		}
		if p.U[i] != 0.05 {
			t.Fatalf("u = %v, want 0.05", p.U[i])
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSedovEnergyInjection(t *testing.T) {
	spec := SedovSpec{NSide: 12, E0: 1.0, Rho0: 1.0, Seed: 3}
	p, _ := Sedov(spec)
	var total float64
	for i := 0; i < p.N; i++ {
		total += p.M[i] * p.U[i]
	}
	// Total internal energy = E0 + background.
	if math.Abs(total-1.0) > 0.01 {
		t.Errorf("injected energy %v, want ~1.0", total)
	}
	// Energy concentrates at the center.
	var maxU float64
	var maxI int
	for i := 0; i < p.N; i++ {
		if p.U[i] > maxU {
			maxU, maxI = p.U[i], i
		}
	}
	dx, dy, dz := p.X[maxI]-0.5, p.Y[maxI]-0.5, p.Z[maxI]-0.5
	if math.Sqrt(dx*dx+dy*dy+dz*dz) > 0.2 {
		t.Error("hottest particle is far from the blast center")
	}
}

func TestMassConservation(t *testing.T) {
	p, _ := Turbulence(DefaultTurbulence(10))
	var m float64
	for i := 0; i < p.N; i++ {
		m += p.M[i]
	}
	if math.Abs(m-1) > 1e-9 {
		t.Errorf("turbulence total mass %v, want 1", m)
	}
	pe, _ := Evrard(DefaultEvrard(12))
	m = 0
	for i := 0; i < pe.N; i++ {
		m += pe.M[i]
	}
	if math.Abs(m-1) > 1e-9 {
		t.Errorf("Evrard total mass %v, want 1", m)
	}
}
