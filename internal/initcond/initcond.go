// Package initcond generates the initial conditions for the paper's two
// workloads — Subsonic Turbulence and Evrard Collapse — plus a Sedov blast
// wave used by an extra example.
//
// Particle counts are expressed as n³ lattices ("450³ particles" in the
// paper). Turbulence starts from a periodic glass-like lattice with a
// solenoidal large-scale velocity field at a prescribed RMS Mach number;
// Evrard is the classic cold 1/r-density gas sphere that collapses under
// self-gravity.
package initcond

import (
	"math"

	"sphenergy/internal/rng"
	"sphenergy/internal/sfc"
	"sphenergy/internal/sph"
)

// Lattice fills positions with an n³ cubic lattice in the box, jittered by
// `jitter` fractions of the spacing to avoid pathological symmetry.
func Lattice(p *sph.Particles, box sfc.Box, n int, jitter float64, seed uint64) {
	r := rng.New(seed)
	dx := box.Lx() / float64(n)
	dy := box.Ly() / float64(n)
	dz := box.Lz() / float64(n)
	idx := 0
	for iz := 0; iz < n && idx < p.N; iz++ {
		for iy := 0; iy < n && idx < p.N; iy++ {
			for ix := 0; ix < n && idx < p.N; ix++ {
				p.X[idx] = box.Xmin + (float64(ix)+0.5+jitter*(r.Float64()-0.5))*dx
				p.Y[idx] = box.Ymin + (float64(iy)+0.5+jitter*(r.Float64()-0.5))*dy
				p.Z[idx] = box.Zmin + (float64(iz)+0.5+jitter*(r.Float64()-0.5))*dz
				p.X[idx], p.Y[idx], p.Z[idx] = box.Wrap(p.X[idx], p.Y[idx], p.Z[idx])
				idx++
			}
		}
	}
}

// TurbulenceSpec configures the Subsonic Turbulence initial condition.
type TurbulenceSpec struct {
	NSide int     // particles per dimension (N = NSide³)
	Mach  float64 // target RMS Mach number (subsonic: < 1)
	Cs    float64 // isothermal sound speed
	Rho0  float64 // mean density
	KMin  int     // smallest driven wavenumber
	KMax  int     // largest driven wavenumber
	Seed  uint64
}

// DefaultTurbulence returns the spec used by the examples: Mach 0.3
// solenoidal velocity field driven on the largest scales.
func DefaultTurbulence(nSide int) TurbulenceSpec {
	return TurbulenceSpec{NSide: nSide, Mach: 0.3, Cs: 1.0, Rho0: 1.0, KMin: 1, KMax: 3, Seed: 42}
}

// Turbulence builds the particle set and SPH options for a Subsonic
// Turbulence run in a unit periodic box.
func Turbulence(spec TurbulenceSpec) (*sph.Particles, sph.Options) {
	n := spec.NSide * spec.NSide * spec.NSide
	box := sfc.NewPeriodicCube(0, 1)
	p := sph.NewParticles(n)
	Lattice(p, box, spec.NSide, 0.2, spec.Seed)

	totalMass := spec.Rho0 * box.Volume()
	mass := totalMass / float64(n)
	h0 := 1.2 * math.Cbrt(3.0/(4*math.Pi)*64) / (2 * float64(spec.NSide)) // ~64 neighbors in 2h
	for i := 0; i < n; i++ {
		p.M[i] = mass
		p.H[i] = h0
		p.U[i] = spec.Cs * spec.Cs // nominal for ideal-gas fallback
		p.Alpha[i] = 0.05
		p.Rho[i] = spec.Rho0
	}

	// Solenoidal velocity field: superpose a few large-scale Fourier modes
	// with divergence-free polarization, then rescale to the target Mach.
	field := NewSolenoidalField(spec.KMin, spec.KMax, spec.Seed+1)
	for i := 0; i < n; i++ {
		vx, vy, vz := field.At(p.X[i], p.Y[i], p.Z[i])
		p.VX[i], p.VY[i], p.VZ[i] = vx, vy, vz
	}
	// Rescale to target RMS velocity = Mach * cs.
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.VX[i]*p.VX[i] + p.VY[i]*p.VY[i] + p.VZ[i]*p.VZ[i]
	}
	vrms := math.Sqrt(sum / float64(n))
	scale := spec.Mach * spec.Cs / (vrms + 1e-30)
	for i := 0; i < n; i++ {
		p.VX[i] *= scale
		p.VY[i] *= scale
		p.VZ[i] *= scale
	}
	// Remove net momentum so the box does not drift.
	removeBulkMotion(p)

	opt := sph.DefaultOptions(box)
	opt.EOS = sph.Isothermal{Cs: spec.Cs}
	return p, opt
}

func removeBulkMotion(p *sph.Particles) {
	var mx, my, mz, m float64
	for i := 0; i < p.N; i++ {
		mx += p.M[i] * p.VX[i]
		my += p.M[i] * p.VY[i]
		mz += p.M[i] * p.VZ[i]
		m += p.M[i]
	}
	for i := 0; i < p.N; i++ {
		p.VX[i] -= mx / m
		p.VY[i] -= my / m
		p.VZ[i] -= mz / m
	}
}

// SolenoidalField is a divergence-free random velocity field composed of a
// small number of Fourier modes, the standard turbulence seed/driving
// pattern (cf. stirring modules in astro hydro codes).
type SolenoidalField struct {
	modes []fieldMode
}

type fieldMode struct {
	kx, ky, kz float64
	ax, ay, az float64 // polarization (perpendicular to k)
	phase, amp float64
}

// NewSolenoidalField creates a field with all integer wave vectors k with
// kmin <= |k| <= kmax, amplitudes following a k^-2 (Burgers-like) spectrum.
func NewSolenoidalField(kmin, kmax int, seed uint64) *SolenoidalField {
	r := rng.New(seed)
	f := &SolenoidalField{}
	for kx := -kmax; kx <= kmax; kx++ {
		for ky := -kmax; ky <= kmax; ky++ {
			for kz := -kmax; kz <= kmax; kz++ {
				k2 := kx*kx + ky*ky + kz*kz
				if k2 == 0 || k2 < kmin*kmin || k2 > kmax*kmax {
					continue
				}
				kv := [3]float64{float64(kx), float64(ky), float64(kz)}
				// Random vector projected perpendicular to k (solenoidal).
				rx, ry, rz := r.Norm(), r.Norm(), r.Norm()
				kn := math.Sqrt(kv[0]*kv[0] + kv[1]*kv[1] + kv[2]*kv[2])
				dot := (rx*kv[0] + ry*kv[1] + rz*kv[2]) / (kn * kn)
				ax := rx - dot*kv[0]
				ay := ry - dot*kv[1]
				az := rz - dot*kv[2]
				an := math.Sqrt(ax*ax+ay*ay+az*az) + 1e-30
				amp := math.Pow(float64(k2), -1) // k^-2 energy => k^-1 amplitude per mode
				f.modes = append(f.modes, fieldMode{
					kx: kv[0], ky: kv[1], kz: kv[2],
					ax: ax / an, ay: ay / an, az: az / an,
					phase: 2 * math.Pi * r.Float64(),
					amp:   amp,
				})
			}
		}
	}
	return f
}

// At evaluates the velocity field at a position in the unit box.
func (f *SolenoidalField) At(x, y, z float64) (vx, vy, vz float64) {
	for _, m := range f.modes {
		ph := 2*math.Pi*(m.kx*x+m.ky*y+m.kz*z) + m.phase
		s := m.amp * math.Sin(ph)
		vx += m.ax * s
		vy += m.ay * s
		vz += m.az * s
	}
	return
}

// Divergence numerically evaluates the field divergence at a point (used by
// tests to verify the solenoidal property).
func (f *SolenoidalField) Divergence(x, y, z float64) float64 {
	const e = 1e-5
	vxp, _, _ := f.At(x+e, y, z)
	vxm, _, _ := f.At(x-e, y, z)
	_, vyp, _ := f.At(x, y+e, z)
	_, vym, _ := f.At(x, y-e, z)
	_, _, vzp := f.At(x, y, z+e)
	_, _, vzm := f.At(x, y, z-e)
	return (vxp-vxm)/(2*e) + (vyp-vym)/(2*e) + (vzp-vzm)/(2*e)
}

// EvrardSpec configures the Evrard collapse initial condition.
type EvrardSpec struct {
	NSide int     // nominal lattice resolution before radial stretching
	R     float64 // sphere radius
	M     float64 // total mass
	U0    float64 // initial specific internal energy (0.05 GM/R classic)
	Seed  uint64
}

// DefaultEvrard returns the classic Evrard setup: R = 1, M = 1, u0 = 0.05
// in G = 1 units.
func DefaultEvrard(nSide int) EvrardSpec {
	return EvrardSpec{NSide: nSide, R: 1, M: 1, U0: 0.05, Seed: 7}
}

// Evrard builds the particle set and options for an Evrard collapse run.
// Particles sample the rho(r) = M/(2 pi R^2 r) profile by radially
// stretching a uniform lattice ball: r_new = R * (r_old/R)^(3/2) maps a
// uniform ball onto the 1/r profile.
func Evrard(spec EvrardSpec) (*sph.Particles, sph.Options) {
	// Collect lattice points inside the unit ball.
	type pt struct{ x, y, z float64 }
	var pts []pt
	n := spec.NSide
	d := 2.0 / float64(n)
	for ix := 0; ix < n; ix++ {
		for iy := 0; iy < n; iy++ {
			for iz := 0; iz < n; iz++ {
				x := -1 + (float64(ix)+0.5)*d
				y := -1 + (float64(iy)+0.5)*d
				z := -1 + (float64(iz)+0.5)*d
				if x*x+y*y+z*z <= 1 {
					pts = append(pts, pt{x, y, z})
				}
			}
		}
	}
	N := len(pts)
	p := sph.NewParticles(N)
	mass := spec.M / float64(N)
	// Radial stretch: uniform ball -> 1/r density.
	for i, q := range pts {
		r := math.Sqrt(q.x*q.x + q.y*q.y + q.z*q.z)
		if r < 1e-12 {
			p.X[i], p.Y[i], p.Z[i] = 0, 0, 0
		} else {
			rnew := spec.R * math.Pow(r, 1.5)
			s := rnew / r
			p.X[i], p.Y[i], p.Z[i] = q.x*s, q.y*s, q.z*s
		}
		p.M[i] = mass
		p.U[i] = spec.U0
		p.Alpha[i] = 0.05
		p.Rho[i] = spec.M / (2 * math.Pi * spec.R * spec.R * math.Max(math.Sqrt(p.X[i]*p.X[i]+p.Y[i]*p.Y[i]+p.Z[i]*p.Z[i]), 0.05*spec.R))
		// Local smoothing length from the local density.
		p.H[i] = 1.2 * math.Cbrt(3*64*mass/(4*math.Pi*p.Rho[i])) / 2
	}
	// Open box 4x the sphere radius; collapse stays well inside.
	box := sfc.NewCube(-2*spec.R, 2*spec.R)
	opt := sph.DefaultOptions(box)
	opt.EOS = sph.IdealGas{Gamma: 5.0 / 3.0}
	opt.Gravity = true
	opt.GravG = 1
	opt.GravEps = 0.05 * spec.R / math.Cbrt(float64(N)/1000)
	return p, opt
}

// SedovSpec configures a Sedov–Taylor point explosion (extra example).
type SedovSpec struct {
	NSide int
	E0    float64 // injected energy
	Rho0  float64
	Seed  uint64
}

// Sedov builds a Sedov blast initial condition in a periodic unit box:
// uniform density, cold background, with E0 deposited in the central
// smoothing volume.
func Sedov(spec SedovSpec) (*sph.Particles, sph.Options) {
	n := spec.NSide * spec.NSide * spec.NSide
	box := sfc.NewPeriodicCube(0, 1)
	p := sph.NewParticles(n)
	Lattice(p, box, spec.NSide, 0.05, spec.Seed)
	mass := spec.Rho0 / float64(n)
	h0 := 1.2 * math.Cbrt(3.0/(4*math.Pi)*64) / (2 * float64(spec.NSide))
	ubg := 1e-6
	for i := 0; i < n; i++ {
		p.M[i] = mass
		p.H[i] = h0
		p.U[i] = ubg
		p.Alpha[i] = 0.5
		p.Rho[i] = spec.Rho0
	}
	// Deposit energy in particles within 2h of the center, kernel-weighted.
	cx, cy, cz := 0.5, 0.5, 0.5
	var wsum float64
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		dx, dy, dz := p.X[i]-cx, p.Y[i]-cy, p.Z[i]-cz
		r := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if r < 2*h0 {
			w := math.Exp(-r * r / (h0 * h0))
			weights[i] = w
			wsum += w
		}
	}
	if wsum > 0 {
		for i := 0; i < n; i++ {
			if weights[i] > 0 {
				p.U[i] += spec.E0 * weights[i] / (wsum * mass)
			}
		}
	}
	opt := sph.DefaultOptions(box)
	opt.EOS = sph.IdealGas{Gamma: 5.0 / 3.0}
	return p, opt
}
