package report

import (
	"fmt"
	"strings"

	"sphenergy/internal/attrib"
)

// RenderAttribution prints the sampler-joined energy attribution: the
// top-n kernels aggregated across ranks (all when n <= 0) with their
// sampled-vs-model error and EDP, followed by per-rank totals and the
// two-gate verdict. Unresolvable rows — mean call shorter than the
// sampler can resolve — are marked with '~' so the rate/resolution
// trade-off stays visible in the output.
func RenderAttribution(a *attrib.Attribution, n int) string {
	if a == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Per-kernel energy attribution (sampled @ %.4g Hz)\n", a.Opts.RateHz)
	fmt.Fprintf(&sb, "%-24s %8s %10s %12s %12s %8s %14s\n",
		"kernel", "calls", "time[s]", "model[J]", "sampled[J]", "err[%]", "EDP[J*s]")
	for _, r := range a.TopKernels(n) {
		name := r.Name
		if !r.Resolvable {
			name += " ~"
		}
		fmt.Fprintf(&sb, "%-24s %8d %10.4f %12.1f %12.1f %8.3f %14.4g\n",
			name, r.Calls, r.TimeS, r.ModelJ, r.SampledJ, r.ErrPct, r.EDPJs)
	}
	if hasUnresolvable(a.Kernels) {
		sb.WriteString("  (~ below sampler resolution; excluded from the per-row gate)\n")
	}
	fmt.Fprintf(&sb, "%-24s %8s %10s %12s %12s %8s\n",
		"rank", "", "samples", "model[J]", "sampled[J]", "err[%]")
	for _, rs := range a.Ranks {
		fmt.Fprintf(&sb, "%-24d %8s %10d %12.1f %12.1f %8.3f\n",
			rs.Rank, "", rs.Samples, rs.ModelJ, rs.SampledJ, rs.ErrPct)
	}
	verdict := "PASS"
	if !a.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "%s: aggregate err %.3f%%, worst resolvable err %.3f%% (tolerance %.3g%%)\n",
		verdict, a.AggErrPct, a.MaxResolvableErrPct, a.Opts.TolerancePct)
	return sb.String()
}

func hasUnresolvable(rows []attrib.Row) bool {
	for _, r := range rows {
		if !r.Resolvable {
			return true
		}
	}
	return false
}

// RenderValidation prints the cross-source energy comparison as a table
// against the model reference, with the Fig. 3-style informational rows
// marked, closing with the one-line verdict.
func RenderValidation(v *attrib.Validation) string {
	if v == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cross-source energy validation (reference %.1f J)\n", v.ReferenceJ)
	fmt.Fprintf(&sb, "%-18s %14s %10s %8s\n", "source", "energy[J]", "err[%]", "verdict")
	for _, s := range v.Sources {
		verdict := "ok"
		switch {
		case s.Informational:
			verdict = "info"
		case !s.Pass:
			verdict = "FAIL"
		}
		fmt.Fprintf(&sb, "%-18s %14.1f %10.3f %8s\n", s.Name, s.EnergyJ, s.RelErrPct, verdict)
	}
	sb.WriteString(v.Summary() + "\n")
	return sb.String()
}
