package report

import (
	"fmt"
	"strings"

	"sphenergy/internal/attrib"
	"sphenergy/internal/faults"
)

// RenderAttribution prints the sampler-joined energy attribution: the
// top-n kernels aggregated across ranks (all when n <= 0) with their
// sampled-vs-model error, achieved clock and EDP, followed by per-rank
// totals and the two-gate verdict. Unresolvable rows — mean call shorter
// than the sampler can resolve — are marked with '~', and rows whose
// energy rests on estimated (failed-over) sampler intervals with '!',
// so the rate/resolution trade-off and any sensor degradation stay
// visible in the output.
func RenderAttribution(a *attrib.Attribution, n int) string {
	if a == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Per-kernel energy attribution (sampled @ %.4g Hz)\n", a.Opts.RateHz)
	fmt.Fprintf(&sb, "%-24s %8s %10s %12s %12s %8s %9s %14s\n",
		"kernel", "calls", "time[s]", "model[J]", "sampled[J]", "err[%]", "clk[MHz]", "EDP[J*s]")
	for _, r := range a.TopKernels(n) {
		name := r.Name
		if !r.Resolvable {
			name += " ~"
		}
		if r.Degraded {
			name += " !"
		}
		clk := "-"
		if r.ClockMHz > 0 {
			clk = fmt.Sprintf("%.0f", r.ClockMHz)
		}
		fmt.Fprintf(&sb, "%-24s %8d %10.4f %12.1f %12.1f %8.3f %9s %14.4g\n",
			name, r.Calls, r.TimeS, r.ModelJ, r.SampledJ, r.ErrPct, clk, r.EDPJs)
	}
	if hasUnresolvable(a.Kernels) {
		sb.WriteString("  (~ below sampler resolution; excluded from the per-row gate)\n")
	}
	if a.Degraded {
		fmt.Fprintf(&sb, "  (! overlaps estimated sensor intervals; %d rows, %.1f J classified unresolvable)\n",
			a.DegradedRows, a.DegradedEnergyJ)
	}
	fmt.Fprintf(&sb, "%-24s %8s %10s %12s %12s %8s\n",
		"rank", "", "samples", "model[J]", "sampled[J]", "err[%]")
	for _, rs := range a.Ranks {
		fmt.Fprintf(&sb, "%-24d %8s %10d %12.1f %12.1f %8.3f\n",
			rs.Rank, "", rs.Samples, rs.ModelJ, rs.SampledJ, rs.ErrPct)
	}
	verdict := "PASS"
	if !a.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "%s: aggregate err %.3f%%, worst resolvable err %.3f%% (tolerance %.3g%%)\n",
		verdict, a.AggErrPct, a.MaxResolvableErrPct, a.Opts.TolerancePct)
	return sb.String()
}

func hasUnresolvable(rows []attrib.Row) bool {
	for _, r := range rows {
		if !r.Resolvable {
			return true
		}
	}
	return false
}

// RenderValidation prints the cross-source energy comparison as a table
// against the model reference, with the Fig. 3-style informational rows
// marked, closing with the one-line verdict.
func RenderValidation(v *attrib.Validation) string {
	if v == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cross-source energy validation (reference %.1f J)\n", v.ReferenceJ)
	fmt.Fprintf(&sb, "%-18s %14s %10s %8s\n", "source", "energy[J]", "err[%]", "verdict")
	for _, s := range v.Sources {
		verdict := "ok"
		switch {
		case s.Degraded:
			verdict = "degraded"
		case s.Informational:
			verdict = "info"
		case !s.Pass:
			verdict = "FAIL"
		}
		fmt.Fprintf(&sb, "%-18s %14.1f %10.3f %8s\n", s.Name, s.EnergyJ, s.RelErrPct, verdict)
	}
	sb.WriteString(v.Summary() + "\n")
	return sb.String()
}

// RenderFaults prints the run's fault-injection and resilience summary:
// what was injected per stream, how the clock-control layer coped, which
// ranks died, and whether the sampler served estimated data.
func RenderFaults(f *faults.Report) string {
	if f == nil {
		return ""
	}
	var sb strings.Builder
	name := f.Plan
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&sb, "Fault injection: plan %s, degradation policy %s\n", name, f.Degradation)
	if len(f.Injected) > 0 {
		fmt.Fprintf(&sb, "%-28s %-14s %8s\n", "stream", "kind", "count")
		for _, ic := range f.Injected {
			fmt.Fprintf(&sb, "%-28s %-14s %8d\n", ic.Stream, ic.Kind, ic.Count)
		}
	}
	if f.Retries+f.Absorbed+f.Clamped+f.ShortCircuits+f.BreakerTrips > 0 {
		fmt.Fprintf(&sb, "clock control: %d retries, %d absorbed, %d clamped, %d short-circuited, %d breaker trips (%d ranks latched safe)\n",
			f.Retries, f.Absorbed, f.Clamped, f.ShortCircuits, f.BreakerTrips, f.BrokenRanks)
	}
	if f.SamplerDegraded {
		sb.WriteString("sampler: DEGRADED — some intervals are estimated, not measured\n")
	}
	for _, rf := range f.Failures {
		fmt.Fprintf(&sb, "rank %d failed at step %d (t=%.3f s)\n", rf.Rank, rf.Step, rf.TimeS)
	}
	return sb.String()
}
