// Package report implements the paper's analysis-script layer: it turns raw
// instrumentation reports into per-device and per-function energy
// breakdowns, taking the system's hardware configuration and MPI
// rank-to-GPU assignment into account (§III-B) — in particular the LUMI-G
// case where pm_counters report per MI250X card while two ranks each drive
// one GCD of it.
package report

import (
	"fmt"
	"sort"
	"strings"

	"sphenergy/internal/cluster"
	"sphenergy/internal/instr"
	"sphenergy/internal/textplot"
)

// DeviceBreakdown is the Fig. 4 view: energy by device class.
type DeviceBreakdown struct {
	System string
	Label  string
	GPUJ   float64
	CPUJ   float64
	MemJ   float64
	OtherJ float64
	// MemorySeparate is false on systems (like CSCS-A100) that cannot meter
	// DRAM separately; their memory energy folds into Other.
	MemorySeparate bool
}

// TotalJ returns total energy.
func (d DeviceBreakdown) TotalJ() float64 { return d.GPUJ + d.CPUJ + d.MemJ + d.OtherJ }

// GPUShare returns the GPU fraction of total energy.
func (d DeviceBreakdown) GPUShare() float64 {
	t := d.TotalJ()
	if t == 0 {
		return 0
	}
	return d.GPUJ / t
}

// NewDeviceBreakdown derives the Fig. 4 breakdown from a run report. On
// systems without separate memory metering the memory energy is folded into
// Other, exactly as the paper describes for CSCS-A100.
func NewDeviceBreakdown(r *instr.Report, spec cluster.NodeSpec, label string) DeviceBreakdown {
	d := DeviceBreakdown{
		System:         spec.Name,
		Label:          label,
		GPUJ:           r.GPUEnergyJ,
		CPUJ:           r.CPUEnergyJ,
		MemorySeparate: memorySeparatelyMetered(spec),
	}
	if d.MemorySeparate {
		d.MemJ = r.MemEnergyJ
		d.OtherJ = r.OtherEnergyJ
	} else {
		d.OtherJ = r.OtherEnergyJ + r.MemEnergyJ
	}
	return d
}

// memorySeparatelyMetered reports whether the system's pm interface exposes
// a distinct memory_energy counter. LUMI-G does; the CSCS-A100 and miniHPC
// systems do not (§IV-B).
func memorySeparatelyMetered(spec cluster.NodeSpec) bool {
	return spec.Name == "LUMI-G"
}

// Render prints the breakdown as a percent-stacked bar.
func (d DeviceBreakdown) Render() string {
	parts := []textplot.Bar{
		{Label: "GPU", Value: d.GPUJ, Annotation: "J"},
		{Label: "CPU", Value: d.CPUJ, Annotation: "J"},
	}
	if d.MemorySeparate {
		parts = append(parts, textplot.Bar{Label: "Memory", Value: d.MemJ, Annotation: "J"})
	}
	parts = append(parts, textplot.Bar{Label: "Other", Value: d.OtherJ, Annotation: "J"})
	title := fmt.Sprintf("%s %s — total %.1f MJ", d.System, d.Label, d.TotalJ()/1e6)
	return textplot.PercentStack(title, parts, 60)
}

// FunctionBreakdown is the Fig. 5 view: per-function energy by device.
type FunctionBreakdown struct {
	Label     string
	Functions []FunctionShare
	GPUTotalJ float64
	CPUTotalJ float64
}

// FunctionShare is one function's share of device energy.
type FunctionShare struct {
	Name     string
	GPUJ     float64
	CPUJ     float64
	GPUShare float64 // of total GPU energy
	CPUShare float64
	TimeS    float64
}

// NewFunctionBreakdown aggregates a report into the Fig. 5 structure.
func NewFunctionBreakdown(r *instr.Report, label string) FunctionBreakdown {
	fb := FunctionBreakdown{Label: label}
	for _, name := range r.FunctionNames() {
		st := r.FunctionTotal(name)
		fb.Functions = append(fb.Functions, FunctionShare{
			Name:  name,
			GPUJ:  st.GPUJ,
			CPUJ:  st.CPUJ,
			TimeS: st.TimeS,
		})
		fb.GPUTotalJ += st.GPUJ
		fb.CPUTotalJ += st.CPUJ
	}
	for i := range fb.Functions {
		if fb.GPUTotalJ > 0 {
			fb.Functions[i].GPUShare = fb.Functions[i].GPUJ / fb.GPUTotalJ
		}
		if fb.CPUTotalJ > 0 {
			fb.Functions[i].CPUShare = fb.Functions[i].CPUJ / fb.CPUTotalJ
		}
	}
	return fb
}

// TopConsumers returns the n functions with the highest GPU energy — the
// boxed names of Fig. 5's legend.
func (fb FunctionBreakdown) TopConsumers(n int) []string {
	sorted := append([]FunctionShare(nil), fb.Functions...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].GPUJ > sorted[b].GPUJ })
	if n > len(sorted) {
		n = len(sorted)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = sorted[i].Name
	}
	return out
}

// Share returns the GPU-energy share of a function, 0 when absent.
func (fb FunctionBreakdown) Share(name string) float64 {
	for _, f := range fb.Functions {
		if f.Name == name {
			return f.GPUShare
		}
	}
	return 0
}

// Render prints the function breakdown as a bar chart over GPU energy.
func (fb FunctionBreakdown) Render() string {
	bars := make([]textplot.Bar, 0, len(fb.Functions))
	for _, f := range fb.Functions {
		bars = append(bars, textplot.Bar{Label: f.Name, Value: 100 * f.GPUShare, Annotation: "% of GPU energy"})
	}
	return textplot.BarChart(fmt.Sprintf("%s — per-function GPU energy", fb.Label), bars, 40)
}

// Normalized compares a set of runs against a baseline run on the
// time/energy/EDP axes — the normalization used in Figs. 6-8.
type Normalized struct {
	Name        string
	TimeRatio   float64
	EnergyRatio float64
	EDPRatio    float64
}

// Normalize computes ratios of (time, energy) pairs against a baseline.
func Normalize(name string, timeS, energyJ, baseTimeS, baseEnergyJ float64) Normalized {
	n := Normalized{Name: name}
	if baseTimeS > 0 {
		n.TimeRatio = timeS / baseTimeS
	}
	if baseEnergyJ > 0 {
		n.EnergyRatio = energyJ / baseEnergyJ
	}
	if baseTimeS > 0 && baseEnergyJ > 0 {
		n.EDPRatio = (timeS * energyJ) / (baseTimeS * baseEnergyJ)
	}
	return n
}

// RenderNormalizedTable prints normalized rows in a fixed-width table.
func RenderNormalizedTable(title string, rows []Normalized) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s\n", "configuration", "time", "energy", "EDP")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %10.4f %10.4f %10.4f\n", r.Name, r.TimeRatio, r.EnergyRatio, r.EDPRatio)
	}
	return sb.String()
}

// WeakScalingPoint is one allocation size of a weak-scaling campaign.
type WeakScalingPoint struct {
	Ranks   int
	TimeS   float64
	EnergyJ float64
	// Efficiency is T(1 unit)/T(n units) for fixed per-rank work (1.0 is
	// perfect weak scaling); EnergyPerRank normalizes the energy.
	Efficiency    float64
	EnergyPerRank float64
}

// WeakScaling derives efficiency and per-rank energy for a campaign of
// (ranks, time, energy) samples, using the smallest allocation as the
// reference. Samples must be ordered by increasing rank count.
func WeakScaling(ranks []int, timeS, energyJ []float64) []WeakScalingPoint {
	if len(ranks) == 0 || len(ranks) != len(timeS) || len(ranks) != len(energyJ) {
		return nil
	}
	out := make([]WeakScalingPoint, len(ranks))
	refT := timeS[0]
	for i := range ranks {
		out[i] = WeakScalingPoint{
			Ranks:   ranks[i],
			TimeS:   timeS[i],
			EnergyJ: energyJ[i],
		}
		if timeS[i] > 0 {
			out[i].Efficiency = refT / timeS[i]
		}
		if ranks[i] > 0 {
			out[i].EnergyPerRank = energyJ[i] / float64(ranks[i])
		}
	}
	return out
}

// RankGPUAttribution resolves measurement granularity mismatches between
// MPI ranks and power counters: given per-card energies and the
// dies-per-card binding, it attributes card energy to ranks. On LUMI-G (two
// GCDs per card) two ranks share one reading; the split assumption is
// proportional to each rank's busy time. This is the "analysis scripts take
// the hardware configuration and rank-to-GPU assignment into consideration"
// logic of §III-B.
func RankGPUAttribution(cardEnergyJ []float64, diesPerCard int, rankBusyS []float64) []float64 {
	out := make([]float64, len(rankBusyS))
	for card, e := range cardEnergyJ {
		lo := card * diesPerCard
		hi := lo + diesPerCard
		if hi > len(rankBusyS) {
			hi = len(rankBusyS)
		}
		if lo >= hi {
			continue
		}
		busy := 0.0
		for r := lo; r < hi; r++ {
			busy += rankBusyS[r]
		}
		for r := lo; r < hi; r++ {
			if busy > 0 {
				out[r] = e * rankBusyS[r] / busy
			} else {
				out[r] = e / float64(hi-lo)
			}
		}
	}
	return out
}
