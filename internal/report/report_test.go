package report

import (
	"math"
	"strings"
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/instr"
)

func sampleReport() *instr.Report {
	r := &instr.Report{
		Simulation: "turbulence", System: "LUMI-G", WallTimeS: 100,
		GPUEnergyJ: 7500, CPUEnergyJ: 1000, MemEnergyJ: 500, OtherEnergyJ: 1000,
	}
	r.TotalEnergyJ = 10000
	p := instr.NewRankProfile(0)
	p.Record("MomentumEnergy", 40, 4000, 400, 200, 400, 0)
	p.Record("XMass", 20, 2000, 300, 150, 300, 0)
	p.Record("EOS", 5, 1500, 300, 150, 300, 0)
	r.Ranks = append(r.Ranks, p)
	return r
}

func TestDeviceBreakdownLUMISeparatesMemory(t *testing.T) {
	d := NewDeviceBreakdown(sampleReport(), cluster.LUMIG(), "Turb")
	if !d.MemorySeparate {
		t.Fatal("LUMI-G should meter memory separately")
	}
	if d.MemJ != 500 || d.OtherJ != 1000 {
		t.Errorf("mem %v other %v", d.MemJ, d.OtherJ)
	}
	if math.Abs(d.TotalJ()-10000) > 1e-9 {
		t.Errorf("total %v", d.TotalJ())
	}
	if math.Abs(d.GPUShare()-0.75) > 1e-9 {
		t.Errorf("GPU share %v", d.GPUShare())
	}
}

func TestDeviceBreakdownCSCSFoldsMemoryIntoOther(t *testing.T) {
	d := NewDeviceBreakdown(sampleReport(), cluster.CSCSA100(), "Turb")
	if d.MemorySeparate {
		t.Fatal("CSCS-A100 has no separate memory metering")
	}
	if d.MemJ != 0 {
		t.Error("memory should be folded")
	}
	if d.OtherJ != 1500 {
		t.Errorf("other %v, want mem+other = 1500", d.OtherJ)
	}
	if math.Abs(d.TotalJ()-10000) > 1e-9 {
		t.Error("folding changed the total")
	}
}

func TestDeviceBreakdownRender(t *testing.T) {
	d := NewDeviceBreakdown(sampleReport(), cluster.LUMIG(), "Turb")
	out := d.Render()
	for _, want := range []string{"GPU", "CPU", "Memory", "Other", "75.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFunctionBreakdownShares(t *testing.T) {
	fb := NewFunctionBreakdown(sampleReport(), "Turb")
	if len(fb.Functions) != 3 {
		t.Fatalf("%d functions", len(fb.Functions))
	}
	me := fb.Share("MomentumEnergy")
	if math.Abs(me-4000.0/7500) > 1e-9 {
		t.Errorf("ME share %v", me)
	}
	if fb.Share("nope") != 0 {
		t.Error("missing function share should be 0")
	}
	var total float64
	for _, f := range fb.Functions {
		total += f.GPUShare
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
}

func TestTopConsumers(t *testing.T) {
	fb := NewFunctionBreakdown(sampleReport(), "Turb")
	top := fb.TopConsumers(2)
	if len(top) != 2 || top[0] != "MomentumEnergy" || top[1] != "XMass" {
		t.Errorf("top = %v", top)
	}
	all := fb.TopConsumers(10)
	if len(all) != 3 {
		t.Errorf("TopConsumers over-requested: %v", all)
	}
}

func TestNormalize(t *testing.T) {
	n := Normalize("mandyn", 103, 92, 100, 100)
	if math.Abs(n.TimeRatio-1.03) > 1e-12 {
		t.Errorf("time %v", n.TimeRatio)
	}
	if math.Abs(n.EnergyRatio-0.92) > 1e-12 {
		t.Errorf("energy %v", n.EnergyRatio)
	}
	if math.Abs(n.EDPRatio-1.03*0.92) > 1e-12 {
		t.Errorf("edp %v", n.EDPRatio)
	}
	zero := Normalize("x", 1, 1, 0, 0)
	if zero.TimeRatio != 0 || zero.EDPRatio != 0 {
		t.Error("zero baseline should yield zero ratios, not Inf")
	}
}

func TestRenderNormalizedTable(t *testing.T) {
	rows := []Normalized{{Name: "static-1005", TimeRatio: 1.16, EnergyRatio: 0.83, EDPRatio: 0.96}}
	out := RenderNormalizedTable("title", rows)
	if !strings.Contains(out, "title") || !strings.Contains(out, "static-1005") ||
		!strings.Contains(out, "1.1600") {
		t.Errorf("table:\n%s", out)
	}
}

func TestRankGPUAttributionSingleDie(t *testing.T) {
	// A100-style: one die per card — attribution is the identity.
	got := RankGPUAttribution([]float64{100, 200}, 1, []float64{10, 10})
	if got[0] != 100 || got[1] != 200 {
		t.Errorf("attribution = %v", got)
	}
}

func TestRankGPUAttributionGCDSplit(t *testing.T) {
	// LUMI-style: two GCDs per card; card energy splits by busy time.
	got := RankGPUAttribution([]float64{300}, 2, []float64{10, 20})
	if math.Abs(got[0]-100) > 1e-9 || math.Abs(got[1]-200) > 1e-9 {
		t.Errorf("attribution = %v, want [100, 200]", got)
	}
	// Zero busy time: equal split.
	eq := RankGPUAttribution([]float64{300}, 2, []float64{0, 0})
	if eq[0] != 150 || eq[1] != 150 {
		t.Errorf("equal split = %v", eq)
	}
}

func TestRankGPUAttributionShortRankList(t *testing.T) {
	// More cards than ranks: extra cards ignored without panicking.
	got := RankGPUAttribution([]float64{100, 100}, 2, []float64{5})
	if got[0] != 100 {
		t.Errorf("attribution = %v", got)
	}
}

func TestWeakScaling(t *testing.T) {
	ws := WeakScaling(
		[]int{8, 16, 32},
		[]float64{100, 102, 105},
		[]float64{800, 1640, 3400},
	)
	if len(ws) != 3 {
		t.Fatalf("%d points", len(ws))
	}
	if ws[0].Efficiency != 1 {
		t.Errorf("reference efficiency %v", ws[0].Efficiency)
	}
	if math.Abs(ws[2].Efficiency-100.0/105) > 1e-12 {
		t.Errorf("efficiency at 32 = %v", ws[2].Efficiency)
	}
	if math.Abs(ws[1].EnergyPerRank-102.5) > 1e-12 {
		t.Errorf("energy/rank at 16 = %v", ws[1].EnergyPerRank)
	}
	// Mismatched inputs yield nil.
	if WeakScaling([]int{1}, []float64{1, 2}, []float64{1}) != nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestFunctionBreakdownRender(t *testing.T) {
	fb := NewFunctionBreakdown(sampleReport(), "Turb")
	out := fb.Render()
	if !strings.Contains(out, "MomentumEnergy") || !strings.Contains(out, "% of GPU energy") {
		t.Errorf("render:\n%s", out)
	}
}
