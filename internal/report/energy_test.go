package report

import (
	"strings"
	"testing"

	"sphenergy/internal/attrib"
)

func sampleAttribution() *attrib.Attribution {
	return &attrib.Attribution{
		Opts: attrib.Options{RateHz: 100, TolerancePct: 2, MinResolvablePeriods: 5},
		Kernels: []attrib.Row{
			{Rank: 0, Name: "MomentumEnergy", Calls: 3, TimeS: 1.2, MeanCallS: 0.4,
				ModelJ: 600, SampledJ: 598, ErrPct: -0.333, EDPJs: 717.6, Resolvable: true},
			{Rank: 0, Name: "EOS", Calls: 3, TimeS: 0.006, MeanCallS: 0.002,
				ModelJ: 2, SampledJ: 1, ErrPct: -50, EDPJs: 0.006, Resolvable: false},
			{Rank: 1, Name: "MomentumEnergy", Calls: 3, TimeS: 1.3, MeanCallS: 0.433,
				ModelJ: 620, SampledJ: 619, ErrPct: -0.161, EDPJs: 804.7, Resolvable: true},
		},
		Ranks: []attrib.RankSummary{
			{Rank: 0, ModelJ: 602, SampledJ: 599, ErrPct: -0.498, Samples: 120},
			{Rank: 1, ModelJ: 620, SampledJ: 619, ErrPct: -0.161, Samples: 130},
		},
		AggErrPct:           0.41,
		MaxResolvableErrPct: 0.333,
		Pass:                true,
	}
}

func TestRenderAttribution(t *testing.T) {
	out := RenderAttribution(sampleAttribution(), 10)
	for _, want := range []string{
		"Per-kernel energy attribution (sampled @ 100 Hz)",
		"MomentumEnergy",
		"EOS ~", // unresolvable marker
		"below sampler resolution",
		"PASS: aggregate err 0.410%",
		"worst resolvable err 0.333%",
		"tolerance 2%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cross-rank aggregation: one MomentumEnergy line, 6 calls total.
	if strings.Count(out, "MomentumEnergy") != 1 {
		t.Errorf("TopKernels should merge ranks:\n%s", out)
	}
	// Both rank summary lines present.
	for _, want := range []string{"120", "130"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing rank samples %q in:\n%s", want, out)
		}
	}
	if RenderAttribution(nil, 5) != "" {
		t.Error("nil attribution should render empty")
	}
}

func TestRenderAttributionFailVerdict(t *testing.T) {
	a := sampleAttribution()
	a.Pass = false
	a.AggErrPct = 4.2
	out := RenderAttribution(a, 0)
	if !strings.Contains(out, "FAIL: aggregate err 4.200%") {
		t.Errorf("missing FAIL verdict:\n%s", out)
	}
}

func TestRenderValidation(t *testing.T) {
	v := attrib.NewValidation(1000, 2)
	v.Add("sampled-sensors", 995, false)
	v.Add("pm_counters", 1004, false)
	v.Add("slurm-consumed", 1000, false)
	v.Add("pmt-loop-only", 900, true)
	out := RenderValidation(v)
	for _, want := range []string{
		"Cross-source energy validation (reference 1000.0 J)",
		"sampled-sensors",
		"pm_counters",
		"slurm-consumed",
		"pmt-loop-only",
		"info", // informational marker
		"PASS: 3/3 sources within 2% of model reference",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// A failing source flips the verdict and gets a FAIL cell.
	v2 := attrib.NewValidation(1000, 2)
	v2.Add("sampled-sensors", 900, false)
	out2 := RenderValidation(v2)
	if !strings.Contains(out2, "FAIL") || !strings.Contains(out2, "0/1 sources") {
		t.Errorf("missing failure rendering:\n%s", out2)
	}

	if RenderValidation(nil) != "" {
		t.Error("nil validation should render empty")
	}
}
