package events

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// readSSE consumes the stream until n event ids have been seen (or the
// stream ends), returning the ids in arrival order.
func readSSE(t *testing.T, resp *http.Response, n int) []uint64 {
	t.Helper()
	var ids []uint64
	sc := bufio.NewScanner(resp.Body)
	for len(ids) < n && sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "id: ") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
		if err != nil {
			t.Errorf("bad SSE id line %q: %v", line, err)
			return ids
		}
		ids = append(ids, id)
	}
	return ids
}

// waitSubscribers polls until the ledger has exactly n live subscriptions.
func waitSubscribers(t *testing.T, l *Ledger, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for l.Subscribers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %d, want %d after 5s", l.Subscribers(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSSEConcurrentSubscribers is the -race gate for the streaming path: a
// writer goroutine emits while two subscribers stream; both must observe
// every event exactly once, in order, with no gaps, and disconnecting must
// cleanly unsubscribe both.
func TestSSEConcurrentSubscribers(t *testing.T) {
	const total = 400
	l := NewLedger(4 * total)
	srv := httptest.NewServer(l.SSEHandler())
	defer srv.Close()

	subscribe := func() *http.Response {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1, r2 := subscribe(), subscribe()
	waitSubscribers(t, l, 2)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			l.FreqDecision(float64(i), i, i%2, "MomentumEnergy", 1110, 1110)
		}
	}()

	var wg sync.WaitGroup
	check := func(resp *http.Response, label string) {
		defer wg.Done()
		ids := readSSE(t, resp, total)
		if len(ids) != total {
			t.Errorf("%s: received %d events, want %d", label, len(ids), total)
			return
		}
		for i, id := range ids {
			if want := uint64(i + 1); id != want {
				t.Errorf("%s: event %d has seq %d, want %d (gap or reorder)", label, i, id, want)
				return
			}
		}
	}
	wg.Add(2)
	go check(r1, "subscriber 1")
	go check(r2, "subscriber 2")
	wg.Wait()
	<-done

	// Client disconnect must tear the subscription down.
	r1.Body.Close()
	r2.Body.Close()
	// The handler only notices the closed context at its next wakeup.
	l.Emit(Event{Type: StepDone})
	waitSubscribers(t, l, 0)
}

func TestSSELastEventIDResume(t *testing.T) {
	l := NewLedger(0)
	for i := 0; i < 10; i++ {
		l.FreqDecision(float64(i), i, 0, "IAD", 1005, 1005)
	}
	srv := httptest.NewServer(l.SSEHandler())
	defer srv.Close()

	req, err := http.NewRequest("GET", srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ids := readSSE(t, resp, 5)
	want := []uint64{6, 7, 8, 9, 10}
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Errorf("resumed ids = %v, want %v", ids, want)
	}
}

func TestSSEGapCommentAfterOverflow(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Type: StepDone, Step: i})
	}
	srv := httptest.NewServer(l.SSEHandler())
	defer srv.Close()
	req, _ := http.NewRequest("GET", srv.URL, nil)
	req.Header.Set("Last-Event-ID", "2") // rotated out: oldest retained is 7
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sawGap := false
	var first uint64
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ": gap") {
			sawGap = true
		}
		if strings.HasPrefix(line, "id: ") {
			first, _ = strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			break
		}
	}
	if !sawGap {
		t.Error("no gap comment despite resuming past the ring horizon")
	}
	if first != 7 {
		t.Errorf("first resumed seq = %d, want 7 (oldest retained)", first)
	}
}

func TestStatusHandler(t *testing.T) {
	l := NewLedger(0)
	l.BeginRun("turbulence", "minihpc", "mandyn", 2, 5)
	l.StepDone(1.5, 0, 100)
	srv := httptest.NewServer(l.StatusHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
	}
	body := sb.String()
	for _, want := range []string{`"running": true`, `"strategy": "mandyn"`, `"step": 0`, `"energy_j": 100`} {
		if !strings.Contains(body, want) {
			t.Errorf("status JSON missing %s in %s", want, body)
		}
	}
}
