package events

import (
	"bytes"
	"strings"
	"testing"
)

func TestLedgerSequenceAndRing(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Type: StepDone, Step: i})
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
	sum := l.Summary()
	if sum.Emitted != 10 || sum.Dropped != 6 {
		t.Errorf("summary = %+v, want emitted 10 dropped 6", sum)
	}
	if sum.ByType[StepDone] != 10 {
		t.Errorf("ByType[step] = %d, want 10", sum.ByType[StepDone])
	}
	if _, gap := l.ReadSince(0, nil); !gap {
		t.Error("ReadSince(0) on an overflowed ring must report a gap")
	}
	if out, gap := l.ReadSince(8, nil); gap || len(out) != 2 {
		t.Errorf("ReadSince(8) = %d events gap=%v, want 2 events no gap", len(out), gap)
	}
}

func TestNilLedgerIsNoOp(t *testing.T) {
	var l *Ledger
	l.Emit(Event{Type: StepDone})
	l.FreqDecision(0, 0, 0, "IAD", 1110, 1110)
	l.BeginRun("turbulence", "minihpc", "mandyn", 2, 3)
	l.StepDone(1, 0, 10)
	l.EndRun(2)
	l.SetPredictions(nil)
	if l.Len() != 0 || l.Emitted() != 0 || l.Summary() != nil || l.Events() != nil {
		t.Error("nil ledger must be inert")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	if st := l.Status(); st.Step != -1 {
		t.Errorf("nil status step = %d, want -1", st.Step)
	}
}

func TestFreqDecisionCarriesPrediction(t *testing.T) {
	l := NewLedger(0)
	l.SetPredictions(Predictions{
		"MomentumEnergy": {1110: {TimeS: 0.5, EnergyJ: 100, PowerW: 200, EDPJs: 50}},
	})
	l.FreqDecision(1.5, 3, 1, "MomentumEnergy", 1110, 1110)
	l.FreqDecision(1.6, 3, 1, "IAD", 1005, 1005) // no prediction known
	evs := l.Events()
	if evs[0].PredTimeS != 0.5 || evs[0].PredEnergyJ != 100 || evs[0].PredEDPJs != 50 {
		t.Errorf("prediction not attached: %+v", evs[0])
	}
	if evs[1].PredTimeS != 0 || evs[1].PredEDPJs != 0 {
		t.Errorf("unknown kernel must carry no prediction: %+v", evs[1])
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := NewLedger(0)
	l.BeginRun("turbulence", "minihpc", "mandyn", 2, 2)
	l.FreqDecision(0.1, 0, 0, "IAD", 1005, 1005)
	l.StepDone(1.0, 0, 42.5)
	l.EndRun(2.0)

	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	evs, truncated, err := ReadJSONL(&buf)
	if err != nil || truncated {
		t.Fatalf("ReadJSONL: err=%v truncated=%v", err, truncated)
	}
	if len(evs) != 4 {
		t.Fatalf("read %d events, want 4", len(evs))
	}
	if evs[1].Type != FreqDecision || evs[1].Subject != "IAD" || evs[1].AppliedMHz != 1005 {
		t.Errorf("freq decision mangled: %+v", evs[1])
	}
	if evs[2].Value != 42.5 {
		t.Errorf("step energy mangled: %+v", evs[2])
	}
}

func TestReadJSONLTruncatedTail(t *testing.T) {
	l := NewLedger(0)
	l.FreqDecision(0.1, 0, 0, "IAD", 1005, 1005)
	l.FreqDecision(0.2, 0, 0, "MomentumEnergy", 1110, 1110)
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// A run killed mid-write leaves a half-line tail.
	full := buf.String()
	cut := full[:len(full)-20]
	evs, truncated, err := ReadJSONL(strings.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("truncated export not flagged")
	}
	if len(evs) != 1 || evs[0].Subject != "IAD" {
		t.Errorf("valid prefix not recovered: %d events %+v", len(evs), evs)
	}
}

func TestStatusTracksRun(t *testing.T) {
	l := NewLedger(0)
	l.BeginRun("turbulence", "minihpc", "mandyn", 2, 3)
	st := l.Status()
	if !st.Running || st.Strategy != "mandyn" || len(st.RankClocksMHz) != 2 {
		t.Fatalf("post-BeginRun status = %+v", st)
	}
	l.FreqDecision(0.1, 0, 1, "IAD", 1005, 1005)
	l.StepDone(1.0, 0, 100)
	l.StepDone(2.5, 1, 150)
	l.Emit(Event{Type: SamplerDegraded, Rank: 0, Subject: "rank0:nvml"})
	l.Emit(Event{Type: RankFail, Rank: 1, Step: 1})
	st = l.Status()
	if st.Step != 1 || st.TimeS != 2.5 || st.EnergyJ != 250 {
		t.Errorf("step accounting wrong: %+v", st)
	}
	if want := 250 * 2.5; st.EDPJs != want {
		t.Errorf("rolling EDP = %v, want %v", st.EDPJs, want)
	}
	if st.RankClocksMHz[1] != 1005 {
		t.Errorf("rank clocks = %v", st.RankClocksMHz)
	}
	if st.DegradedChannels != 1 || len(st.FailedRanks) != 1 || st.FailedRanks[0] != 1 {
		t.Errorf("degradation state wrong: %+v", st)
	}
	l.Emit(Event{Type: SamplerRecovered, Rank: 0, Subject: "rank0:nvml"})
	l.EndRun(3.0)
	st = l.Status()
	if st.Running || st.DegradedChannels != 0 {
		t.Errorf("post-EndRun status = %+v", st)
	}
}

func TestEmitSteadyStateAllocationFree(t *testing.T) {
	l := NewLedger(1024)
	l.BeginRun("turbulence", "minihpc", "mandyn", 2, 100)
	l.SetPredictions(Predictions{"IAD": {1005: {TimeS: 1, EnergyJ: 2, EDPJs: 2}}})
	// Warm the ring to capacity so appends are over.
	for i := 0; i < 2048; i++ {
		l.FreqDecision(float64(i), i, 0, "IAD", 1005, 1005)
	}
	avg := testing.AllocsPerRun(1000, func() {
		l.FreqDecision(1, 1, 0, "IAD", 1005, 1005)
		l.Emit(Event{Type: StepDone, Step: 1, TimeS: 1, Value: 10})
	})
	if avg != 0 {
		t.Errorf("steady-state emit allocates %.1f allocs/op, want 0", avg)
	}
}

// BenchmarkEmit is the acceptance gate for the emit path: one mutexed ring
// store, no allocation.
func BenchmarkEmit(b *testing.B) {
	l := NewLedger(1 << 12)
	l.SetPredictions(Predictions{"IAD": {1005: {TimeS: 1, EnergyJ: 2, EDPJs: 2}}})
	for i := 0; i < 1<<13; i++ {
		l.FreqDecision(float64(i), i, 0, "IAD", 1005, 1005)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.FreqDecision(float64(i), i, 0, "IAD", 1005, 1005)
	}
}
