// Package events is the run's decision ledger: a bounded in-memory ring of
// typed, sequence-numbered records for every consequential runtime decision
// — frequency requests and outcomes, resilient-setter actions, tuner sweep
// and cache choices, sampler degradation transitions, neighbor-list
// rebuild/refresh triggers, rank failures — exportable as JSONL and
// streamable live over SSE (see http.go).
//
// The ledger exists to make frequency control explainable after the fact:
// each frequency event carries the model's *predicted* time/energy/EDP at
// the applied clock (from the tuner sweep), so a ledger can later be joined
// against internal/attrib achieved rows to ask "what did this decision cost
// or save?" — the cmd/declog workflow.
//
// Non-perturbation contract (the same one internal/telemetry holds): a nil
// *Ledger is a valid no-op, every emit is a pure observation with no effect
// on simulation state, and the steady-state emit path performs no heap
// allocation. Emit serializes on one short mutex — decision events are
// per-phase, not per-particle, so the ring never sits on a per-item hot
// loop.
package events

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"sphenergy/internal/atomicio"
)

// Type names a decision-event kind.
type Type string

// Event types. The freq-* family mirrors freqctl: a decision is one
// strategy Apply that touched the clock; retry/absorb/clamp/breaker-trip/
// short-circuit mirror freqctl.ResilientEvent kinds.
const (
	RunStart Type = "run-start"
	RunEnd   Type = "run-end"
	StepDone Type = "step"

	FreqDecision     Type = "freq-decision"
	FreqRetry        Type = "freq-retry"
	FreqAbsorb       Type = "freq-absorb"
	FreqClamp        Type = "freq-clamp"
	FreqBreakerTrip  Type = "freq-breaker-trip"
	FreqShortCircuit Type = "freq-short-circuit"

	TunerMeasure Type = "tuner-measure"
	TunerSelect  Type = "tuner-select"

	SamplerDegraded  Type = "sampler-degraded"
	SamplerRecovered Type = "sampler-recovered"

	RankFail    Type = "rank-fail"
	Degradation Type = "degradation"

	NbrRebuild Type = "nbr-rebuild"
	NbrRefresh Type = "nbr-refresh"

	// Recovery family: one event per supervision decision, so cmd/declog
	// can audit an interrupted run's full restart/budget timeline.
	CheckpointSave    Type = "checkpoint-save"
	CheckpointRestore Type = "checkpoint-restore"
	Restart           Type = "restart"
	WatchdogStall     Type = "watchdog-stall"
	BudgetStop        Type = "budget-stop"
)

// builtinTypes pre-seeds the per-type counters so steady-state emits never
// insert a new map key (the allocation-free contract).
var builtinTypes = []Type{
	RunStart, RunEnd, StepDone,
	FreqDecision, FreqRetry, FreqAbsorb, FreqClamp, FreqBreakerTrip,
	FreqShortCircuit, TunerMeasure, TunerSelect,
	SamplerDegraded, SamplerRecovered, RankFail, Degradation,
	NbrRebuild, NbrRefresh,
	CheckpointSave, CheckpointRestore, Restart, WatchdogStall, BudgetStop,
}

// Event is one ledger record. Fields are a flat union across the event
// types so records stay fixed-size values (emit copies them into the ring
// without allocating); unused fields marshal away under omitempty.
type Event struct {
	// Seq is the monotonic sequence id, starting at 1. Assigned by Emit.
	Seq uint64 `json:"seq"`
	// TimeS is the virtual time of the decision (0 for pre-run events).
	TimeS float64 `json:"t_s"`
	// Step is the simulation step, -1 outside the stepping loop.
	Step int `json:"step"`
	// Rank is the deciding rank, -1 for global/coordinator events.
	Rank int  `json:"rank"`
	Type Type `json:"type"`
	// Subject is what the decision is about: a function/kernel name for
	// frequency and tuner events, a sensor name for sampler events.
	Subject string `json:"subject,omitempty"`
	// Detail carries the cause or sub-kind: the resilient op, the rebuild
	// trigger ("cadence", "drift", ...), the degradation policy.
	Detail string `json:"detail,omitempty"`
	// RequestedMHz / AppliedMHz are the strategy's target and the achieved
	// clock (post-clamp) for frequency events; AppliedMHz doubles as the
	// candidate clock on tuner events.
	RequestedMHz int `json:"requested_mhz,omitempty"`
	AppliedMHz   int `json:"applied_mhz,omitempty"`
	// Pred* are the model's expectations at AppliedMHz — per kernel
	// invocation — filled from the tuner sweep (SetPredictions). On
	// tuner-measure events they are the sweep measurement itself.
	PredTimeS   float64 `json:"pred_time_s,omitempty"`
	PredEnergyJ float64 `json:"pred_energy_j,omitempty"`
	PredPowerW  float64 `json:"pred_power_w,omitempty"`
	PredEDPJs   float64 `json:"pred_edp_js,omitempty"`
	// Value is a generic numeric payload: step energy (J) on step events,
	// objective score on tuner events, load factor on degradation events.
	Value float64 `json:"value,omitempty"`
	// Cached marks tuner measurements served from the memoizing cache.
	Cached bool `json:"cached,omitempty"`
	// Err carries the triggering error text on resilience events.
	Err string `json:"err,omitempty"`
}

// Prediction is the model's expectation for one kernel at one clock.
type Prediction struct {
	TimeS   float64
	EnergyJ float64
	PowerW  float64
	EDPJs   float64
}

// Predictions maps kernel/function name → clock MHz → expectation.
type Predictions map[string]map[int]Prediction

// Summary is the ledger roll-up attached to core.Result.
type Summary struct {
	// Emitted counts all events ever emitted; Dropped counts those rotated
	// out of the bounded ring (Emitted - retained).
	Emitted uint64 `json:"emitted"`
	Dropped uint64 `json:"dropped"`
	// ByType breaks Emitted down per event type (zero entries omitted).
	ByType map[Type]uint64 `json:"by_type"`
}

// DefaultCap is the default ring capacity: at the paper's ~100 steps a
// ManDyn run emits a few thousand decision events, so the full run is
// retained with room to spare.
const DefaultCap = 1 << 15

// Ledger is the bounded decision-event ring. Safe for concurrent use; a
// nil *Ledger is a valid no-op on every method.
type Ledger struct {
	mu     sync.Mutex
	buf    []Event // ring storage, len == cap once warm
	capN   int
	next   uint64 // total emitted; the next event gets Seq next+1
	counts map[Type]uint64
	preds  Predictions
	status Status
	subs   []chan struct{}
}

// NewLedger creates a ledger retaining the last capacity events
// (DefaultCap when <= 0).
func NewLedger(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	l := &Ledger{
		capN:   capacity,
		buf:    make([]Event, 0, capacity),
		counts: make(map[Type]uint64, len(builtinTypes)),
	}
	for _, t := range builtinTypes {
		l.counts[t] = 0
	}
	l.status.Step = -1
	return l
}

// SetPredictions installs the tuner's per-kernel per-clock expectations;
// subsequent FreqDecision emits carry the matching prediction. Call before
// the run starts.
func (l *Ledger) SetPredictions(p Predictions) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.preds = p
	l.mu.Unlock()
}

// Emit appends one event, assigning its sequence id. The event value is
// copied into the ring; steady-state emits do not allocate.
func (l *Ledger) Emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.emitLocked(ev)
	l.mu.Unlock()
}

// emitLocked is Emit's body; caller holds l.mu.
func (l *Ledger) emitLocked(ev Event) {
	l.next++
	ev.Seq = l.next
	if len(l.buf) < l.capN {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[int((ev.Seq-1)%uint64(l.capN))] = ev
	}
	l.counts[ev.Type]++
	l.status.apply(ev)
	for _, ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// FreqDecision records one strategy Apply that touched the clock,
// attaching the model's prediction at the applied clock when one is known.
func (l *Ledger) FreqDecision(timeS float64, step, rank int, function string, requestedMHz, appliedMHz int) {
	if l == nil {
		return
	}
	ev := Event{
		TimeS: timeS, Step: step, Rank: rank, Type: FreqDecision,
		Subject: function, RequestedMHz: requestedMHz, AppliedMHz: appliedMHz,
	}
	l.mu.Lock()
	if byClock, ok := l.preds[function]; ok {
		if p, ok := byClock[appliedMHz]; ok {
			ev.PredTimeS = p.TimeS
			ev.PredEnergyJ = p.EnergyJ
			ev.PredPowerW = p.PowerW
			ev.PredEDPJs = p.EDPJs
		}
	}
	l.emitLocked(ev)
	l.mu.Unlock()
}

// Emitted returns the total number of events emitted so far.
func (l *Ledger) Emitted() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Len returns the number of retained events.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Summary returns the ledger roll-up (only non-zero type counts).
func (l *Ledger) Summary() *Summary {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &Summary{Emitted: l.next, ByType: make(map[Type]uint64)}
	if n := uint64(len(l.buf)); l.next > n {
		s.Dropped = l.next - n
	}
	for t, c := range l.counts {
		if c > 0 {
			s.ByType[t] = c
		}
	}
	return s
}

// ReadSince appends to dst every retained event with Seq > after, in
// sequence order, and reports whether a gap precedes them (events after
// `after` already rotated out of the ring).
func (l *Ledger) ReadSince(after uint64, dst []Event) ([]Event, bool) {
	if l == nil {
		return dst, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	oldest := uint64(1)
	if n := uint64(len(l.buf)); l.next > n {
		oldest = l.next - n + 1
	}
	from := after + 1
	gap := false
	if from < oldest {
		from = oldest
		gap = true
	}
	for seq := from; seq <= l.next; seq++ {
		dst = append(dst, l.buf[int((seq-1)%uint64(l.capN))])
	}
	return dst, gap
}

// Events returns a copy of all retained events in sequence order.
func (l *Ledger) Events() []Event {
	out, _ := l.ReadSince(0, nil)
	return out
}

// Subscribe registers a notification channel that receives (at least) one
// token after every Emit; pair with ReadSince to stream without polling.
func (l *Ledger) Subscribe() chan struct{} {
	if l == nil {
		return nil
	}
	ch := make(chan struct{}, 1)
	l.mu.Lock()
	l.subs = append(l.subs, ch)
	l.mu.Unlock()
	return ch
}

// Unsubscribe removes a channel registered by Subscribe.
func (l *Ledger) Unsubscribe(ch chan struct{}) {
	if l == nil {
		return
	}
	l.mu.Lock()
	for i, s := range l.subs {
		if s == ch {
			l.subs = append(l.subs[:i], l.subs[i+1:]...)
			break
		}
	}
	l.mu.Unlock()
}

// Subscribers returns the number of live subscriptions (test hook for the
// clean-unsubscribe contract).
func (l *Ledger) Subscribers() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.subs)
}

// WriteJSONL writes every retained event as one JSON object per line, in
// sequence order.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range l.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("events: encode: %w", err)
		}
	}
	return bw.Flush()
}

// WriteFile writes the JSONL export to path atomically: a crash mid-write
// never leaves a truncated ledger under the final name.
func (l *Ledger) WriteFile(path string) error {
	if l == nil {
		return nil
	}
	return atomicio.WriteFile(path, l.WriteJSONL)
}

// ReadJSONL parses a ledger export. A malformed tail (a run killed
// mid-write) stops the parse at the last valid line and reports
// truncated=true rather than erroring — interrupted runs must stay
// auditable.
func ReadJSONL(r io.Reader) (evs []Event, truncated bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if uerr := json.Unmarshal(line, &ev); uerr != nil {
			return evs, true, nil
		}
		evs = append(evs, ev)
	}
	if serr := sc.Err(); serr != nil {
		return evs, true, fmt.Errorf("events: read: %w", serr)
	}
	return evs, false, nil
}

// ReadFile parses a JSONL ledger export from path.
func ReadFile(path string) ([]Event, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("events: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f)
}
