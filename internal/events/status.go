package events

// Status is the compact live-run summary served at GET /status: where the
// run is, what the clocks are, the rolling EDP, and the degradation state.
// The ledger maintains it incrementally from the events themselves.
type Status struct {
	Running    bool   `json:"running"`
	Simulation string `json:"simulation,omitempty"`
	System     string `json:"system,omitempty"`
	Strategy   string `json:"strategy,omitempty"`
	// Steps is the configured step count; Step the last completed step
	// (-1 before the first).
	Steps int `json:"steps,omitempty"`
	Step  int `json:"step"`
	// TimeS and EnergyJ accumulate over the stepping loop; EDPJs is their
	// rolling product (the paper's objective, live).
	TimeS   float64 `json:"t_s"`
	EnergyJ float64 `json:"energy_j"`
	EDPJs   float64 `json:"edp_js"`
	// RankClocksMHz is the last applied SM clock per rank (0 = untouched).
	RankClocksMHz []int `json:"rank_clocks_mhz,omitempty"`
	// DegradedChannels counts sampler channels currently running on
	// estimated (failover/model) data.
	DegradedChannels int `json:"degraded_channels,omitempty"`
	// FailedRanks lists dead ranks; LoadFactor is the survivor load
	// multiplier under redistribution (1 when healthy).
	FailedRanks []int   `json:"failed_ranks,omitempty"`
	LoadFactor  float64 `json:"load_factor,omitempty"`
	// Emitted mirrors Summary.Emitted for stream consumers.
	Emitted uint64 `json:"events_emitted"`
}

// apply folds one event into the live status; caller holds the ledger
// mutex.
func (s *Status) apply(ev Event) {
	s.Emitted = ev.Seq
	switch ev.Type {
	case RunStart:
		s.Running = true
		s.Step = -1
	case RunEnd:
		s.Running = false
		s.TimeS = ev.TimeS
		s.EDPJs = s.EnergyJ * s.TimeS
	case StepDone:
		s.Step = ev.Step
		s.TimeS = ev.TimeS
		s.EnergyJ += ev.Value
		s.EDPJs = s.EnergyJ * s.TimeS
	case FreqDecision:
		if ev.Rank >= 0 {
			for len(s.RankClocksMHz) <= ev.Rank {
				s.RankClocksMHz = append(s.RankClocksMHz, 0)
			}
			s.RankClocksMHz[ev.Rank] = ev.AppliedMHz
		}
	case SamplerDegraded:
		s.DegradedChannels++
	case SamplerRecovered:
		if s.DegradedChannels > 0 {
			s.DegradedChannels--
		}
	case RankFail:
		s.FailedRanks = append(s.FailedRanks, ev.Rank)
	case Degradation:
		s.LoadFactor = ev.Value
	}
}

// BeginRun stamps the run's identity into the live status and emits the
// run-start event. RankClocksMHz is pre-sized so steady-state frequency
// events never grow it.
func (l *Ledger) BeginRun(sim, system, strategy string, ranks, steps int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.status.Simulation = sim
	l.status.System = system
	l.status.Strategy = strategy
	l.status.Steps = steps
	l.status.LoadFactor = 1
	if ranks > 0 {
		l.status.RankClocksMHz = make([]int, ranks)
	}
	l.emitLocked(Event{Step: -1, Rank: -1, Type: RunStart,
		Subject: sim, Detail: strategy, Value: float64(steps)})
	l.mu.Unlock()
}

// StepDone closes one simulation step: stepEnergyJ is the step's
// allocation energy, timeS the loop virtual time at the step boundary.
func (l *Ledger) StepDone(timeS float64, step int, stepEnergyJ float64) {
	if l == nil {
		return
	}
	l.Emit(Event{TimeS: timeS, Step: step, Rank: -1, Type: StepDone,
		Value: stepEnergyJ})
}

// EndRun emits the run-end event and freezes the status.
func (l *Ledger) EndRun(timeS float64) {
	if l == nil {
		return
	}
	l.Emit(Event{TimeS: timeS, Step: -1, Rank: -1, Type: RunEnd})
}

// Status returns a snapshot of the live run summary.
func (l *Ledger) Status() Status {
	if l == nil {
		return Status{Step: -1}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.status
	st.RankClocksMHz = append([]int(nil), l.status.RankClocksMHz...)
	st.FailedRanks = append([]int(nil), l.status.FailedRanks...)
	return st
}
