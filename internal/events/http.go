package events

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// SSEHandler streams the ledger as Server-Sent Events: one message per
// event with the sequence id as the SSE id, so a client reconnecting with
// Last-Event-ID resumes exactly where it stopped (or at the oldest
// retained event, flagged by a "gap" comment, when the ring has rotated
// past it). Without Last-Event-ID the stream replays the retained history
// and then follows the run live until the client disconnects.
func (l *Ledger) SSEHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "events: streaming unsupported", http.StatusInternalServerError)
			return
		}
		var after uint64
		if id := req.Header.Get("Last-Event-ID"); id != "" {
			v, err := strconv.ParseUint(id, 10, 64)
			if err != nil {
				http.Error(w, "events: bad Last-Event-ID", http.StatusBadRequest)
				return
			}
			after = v
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		fl.Flush()

		// Subscribe before the first read so an emit between the read and
		// the wait cannot be missed (the token is buffered).
		notify := l.Subscribe()
		defer l.Unsubscribe(notify)

		enc := json.NewEncoder(w)
		buf := make([]Event, 0, 256)
		cursor := after
		for {
			evs, gap := l.ReadSince(cursor, buf[:0])
			if gap {
				fmt.Fprintf(w, ": gap after seq %d\n\n", cursor)
			}
			for _, ev := range evs {
				fmt.Fprintf(w, "id: %d\nevent: %s\ndata: ", ev.Seq, ev.Type)
				if err := enc.Encode(ev); err != nil {
					return
				}
				fmt.Fprint(w, "\n")
				cursor = ev.Seq
			}
			if len(evs) > 0 {
				fl.Flush()
			}
			select {
			case <-req.Context().Done():
				return
			case <-notify:
			}
		}
	})
}

// StatusHandler serves the live run summary as JSON.
func (l *Ledger) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		st := l.Status()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}
