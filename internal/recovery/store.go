// Package recovery makes long runs durable and self-healing: a Store
// persists periodic checkpoints with integrity checking and retention, a
// Controller drives autosave/watchdog/budget decisions at step boundaries,
// and a Supervisor wraps the runner with bounded restarts so a crashed,
// hung, or preempted run resumes from the newest valid snapshot instead of
// losing every joule spent so far.
//
// The Store is payload-agnostic: callers hand it an opaque byte stream
// (the runner's model checkpoint, or an SPH checkpoint-v2 blob) plus a
// small Meta describing where in the run it was taken. Each snapshot file
// carries a checksummed header — magic, format version, the Meta clocks,
// payload length, and a SHA-256 digest of the payload — so corruption and
// truncation are detected on read, and Latest falls back to the newest
// snapshot that still verifies.
package recovery

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sphenergy/internal/atomicio"
)

// Envelope format constants. The header is fixed-size, little-endian, and
// protected by its own CRC32 so a damaged header is distinguishable from a
// damaged payload; the payload is protected by the SHA-256 digest carried
// in the header.
const (
	storeMagic   = "SPRC"
	storeVersion = 1
	headerSize   = 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 32 + 4 // magic..crc
	snapPrefix   = "ckpt-"
	snapSuffix   = ".sprc"
)

// Meta identifies where in the run a snapshot was taken. The clock fields
// mirror the determinism-relevant counters of the producer: Step is the
// next step to execute after restore; RNGClock, RebuildStep and
// ReorderStep carry producer-specific stream/cadence positions (the SPH
// layer uses the latter two for its skin-rebuild and Morton-reorder
// cadence; the core runner records its seed in RNGClock).
type Meta struct {
	Step        int
	TimeS       float64
	RNGClock    uint64
	RebuildStep int
	ReorderStep int
}

// Snapshot describes one snapshot file found in a Store.
type Snapshot struct {
	Path string
	Meta Meta
}

// Store is a directory of rotated, integrity-checked snapshot files.
// Saves are atomic (write-temp-fsync-rename), so a crash mid-save never
// damages earlier snapshots.
type Store struct {
	dir  string
	keep int
}

// DefaultKeep is the retention depth when the caller passes keep <= 0.
const DefaultKeep = 3

// Open creates (if needed) and opens a snapshot directory keeping the
// last keep snapshots (DefaultKeep when keep <= 0).
func Open(dir string, keep int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("recovery: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: open store: %w", err)
	}
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func snapName(step int) string {
	return fmt.Sprintf("%s%012d%s", snapPrefix, step, snapSuffix)
}

// snapStep parses the step out of a snapshot filename; ok is false for
// foreign files.
func snapStep(name string) (int, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix))
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeHeader serializes the envelope header (without payload).
func encodeHeader(m Meta, payloadLen int, digest [32]byte) []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:4], storeMagic)
	le := binary.LittleEndian
	le.PutUint32(buf[4:8], storeVersion)
	le.PutUint64(buf[8:16], uint64(m.Step))
	le.PutUint64(buf[16:24], uint64(int64(m.RebuildStep)))
	le.PutUint64(buf[24:32], uint64(int64(m.ReorderStep)))
	le.PutUint64(buf[32:40], m.RNGClock)
	le.PutUint64(buf[40:48], math.Float64bits(m.TimeS))
	le.PutUint64(buf[48:56], uint64(payloadLen))
	copy(buf[56:88], digest[:])
	le.PutUint32(buf[88:92], crc32.ChecksumIEEE(buf[:88]))
	return buf
}

// decodeHeader validates and parses an envelope header.
func decodeHeader(buf []byte) (Meta, int, [32]byte, error) {
	var digest [32]byte
	var m Meta
	if len(buf) < headerSize {
		return m, 0, digest, fmt.Errorf("recovery: truncated header (%d of %d bytes)", len(buf), headerSize)
	}
	if string(buf[0:4]) != storeMagic {
		return m, 0, digest, errors.New("recovery: bad magic (not a snapshot file)")
	}
	le := binary.LittleEndian
	if got, want := crc32.ChecksumIEEE(buf[:88]), le.Uint32(buf[88:92]); got != want {
		return m, 0, digest, fmt.Errorf("recovery: header checksum mismatch (got %08x, want %08x)", got, want)
	}
	if v := le.Uint32(buf[4:8]); v != storeVersion {
		return m, 0, digest, fmt.Errorf("recovery: unsupported snapshot version %d (this build reads version %d)", v, storeVersion)
	}
	m.Step = int(int64(le.Uint64(buf[8:16])))
	m.RebuildStep = int(int64(le.Uint64(buf[16:24])))
	m.ReorderStep = int(int64(le.Uint64(buf[24:32])))
	m.RNGClock = le.Uint64(buf[32:40])
	m.TimeS = math.Float64frombits(le.Uint64(buf[40:48]))
	payloadLen := int(le.Uint64(buf[48:56]))
	copy(digest[:], buf[56:88])
	return m, payloadLen, digest, nil
}

// Save durably writes a snapshot whose payload is produced by encode, then
// rotates out snapshots beyond the retention depth. It returns the final
// snapshot path. Saving an existing step replaces that snapshot.
func (s *Store) Save(m Meta, encode func(w io.Writer) error) (string, error) {
	var payload bytes.Buffer
	if err := encode(&payload); err != nil {
		return "", fmt.Errorf("recovery: encode snapshot: %w", err)
	}
	digest := sha256.Sum256(payload.Bytes())
	path := filepath.Join(s.dir, snapName(m.Step))
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		if _, err := w.Write(encodeHeader(m, payload.Len(), digest)); err != nil {
			return err
		}
		_, err := w.Write(payload.Bytes())
		return err
	})
	if err != nil {
		return "", err
	}
	s.rotate()
	return path, nil
}

// rotate removes the oldest snapshots beyond the retention depth.
// Best-effort: rotation failures never fail a save.
func (s *Store) rotate() {
	steps := s.steps()
	for len(steps) > s.keep {
		os.Remove(filepath.Join(s.dir, snapName(steps[0])))
		steps = steps[1:]
	}
}

// steps lists the snapshot steps present on disk, ascending.
func (s *Store) steps() []int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var steps []int
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if n, ok := snapStep(e.Name()); ok {
			steps = append(steps, n)
		}
	}
	sort.Ints(steps)
	return steps
}

// Snapshots returns the snapshots present on disk, oldest first, without
// verifying payload integrity (use Load for that).
func (s *Store) Snapshots() []Snapshot {
	var out []Snapshot
	for _, step := range s.steps() {
		path := filepath.Join(s.dir, snapName(step))
		m, _, _, err := readHeader(path)
		if err != nil {
			// Keep the entry with what the filename tells us; Load will
			// report the precise corruption.
			m = Meta{Step: step}
		}
		out = append(out, Snapshot{Path: path, Meta: m})
	}
	return out
}

func readHeader(path string) (Meta, int, [32]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, 0, [32]byte{}, err
	}
	defer f.Close()
	buf := make([]byte, headerSize)
	if _, err := io.ReadFull(f, buf); err != nil {
		return Meta{}, 0, [32]byte{}, fmt.Errorf("recovery: read header of %s: %w", filepath.Base(path), err)
	}
	return decodeHeader(buf)
}

// Load reads and fully verifies the snapshot at path: header magic,
// version, header CRC, payload length, and payload SHA-256. Any mismatch
// returns an error and no payload.
func Load(path string) (Meta, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("recovery: %w", err)
	}
	m, payloadLen, digest, err := decodeHeader(raw)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("recovery: %s: %w", filepath.Base(path), err)
	}
	payload := raw[headerSize:]
	if len(payload) != payloadLen {
		return Meta{}, nil, fmt.Errorf("recovery: %s: truncated payload (%d of %d bytes)",
			filepath.Base(path), len(payload), payloadLen)
	}
	if got := sha256.Sum256(payload); got != digest {
		return Meta{}, nil, fmt.Errorf("recovery: %s: payload digest mismatch (corrupt snapshot)", filepath.Base(path))
	}
	return m, payload, nil
}

// Latest returns the newest snapshot that passes full verification,
// scanning newest-to-oldest and skipping corrupt or truncated files. It
// returns ok=false when no valid snapshot exists. Snapshots that failed
// verification are reported through skipped (path -> error) so callers
// can surface the fallback.
func (s *Store) Latest() (snap Snapshot, payload []byte, skipped map[string]error, ok bool) {
	steps := s.steps()
	skipped = map[string]error{}
	for i := len(steps) - 1; i >= 0; i-- {
		path := filepath.Join(s.dir, snapName(steps[i]))
		m, data, err := Load(path)
		if err != nil {
			skipped[path] = err
			continue
		}
		return Snapshot{Path: path, Meta: m}, data, skipped, true
	}
	return Snapshot{}, nil, skipped, false
}
