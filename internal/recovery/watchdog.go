package recovery

import (
	"math"
	"sync"
	"time"

	"sphenergy/internal/telemetry"
)

// WatchdogConfig tunes hung-step detection. The watchdog compares the real
// time since the last step-boundary heartbeat against a per-step deadline
// derived from a rolling estimate of real step duration: deadline =
// max(MinDeadlineS, Mult × estimate). The estimate is an EWMA of observed
// step wall times, seeded from the shared telemetry histogram
// (recovery_step_wall_seconds) when earlier attempts already populated it.
type WatchdogConfig struct {
	// Enabled turns stall detection on; off, the supervisor only reacts to
	// crashes and budget stops.
	Enabled bool
	// Mult scales the rolling step-time estimate into a deadline
	// (default 16 — simulation steps are uniform, a 16x outlier is a hang).
	Mult float64
	// MinDeadlineS floors the deadline so cold starts (no estimate yet)
	// and fast steps do not false-positive (default 30 s).
	MinDeadlineS float64
	// PollS is the supervisor's stall-poll interval (default 50 ms).
	PollS float64
}

func (c WatchdogConfig) defaulted() WatchdogConfig {
	if c.Mult <= 0 {
		c.Mult = 16
	}
	if c.MinDeadlineS <= 0 {
		c.MinDeadlineS = 30
	}
	if c.PollS <= 0 {
		c.PollS = 0.05
	}
	return c
}

// watchdog tracks step-boundary heartbeats and the rolling real-time
// estimate behind the per-step deadline.
type watchdog struct {
	cfg  WatchdogConfig
	hist *telemetry.Histogram // shared across attempts via the registry; nil ok

	mu       sync.Mutex
	lastBeat time.Time
	ewma     float64 // seconds; 0 = no local observation yet
}

func newWatchdog(cfg WatchdogConfig, hist *telemetry.Histogram) *watchdog {
	return &watchdog{cfg: cfg.defaulted(), hist: hist, lastBeat: time.Now()}
}

// beat records a step boundary, folding the elapsed real time into the
// rolling estimate and the shared histogram.
func (w *watchdog) beat(now time.Time) {
	w.mu.Lock()
	dur := now.Sub(w.lastBeat).Seconds()
	w.lastBeat = now
	const alpha = 0.2
	if w.ewma == 0 {
		w.ewma = dur
	} else {
		w.ewma = alpha*dur + (1-alpha)*w.ewma
	}
	w.mu.Unlock()
	if w.hist != nil {
		w.hist.Observe(dur)
	}
}

// deadlineS returns the current per-step deadline in seconds.
func (w *watchdog) deadlineS() float64 {
	w.mu.Lock()
	est := w.ewma
	w.mu.Unlock()
	if est == 0 && w.hist != nil && w.hist.Count() > 0 {
		// A previous attempt's observations live in the shared histogram;
		// use its tail as the cold-start estimate.
		est = w.hist.Quantile(0.99)
	}
	return math.Max(w.cfg.MinDeadlineS, w.cfg.Mult*est)
}

// stalled reports whether the time since the last heartbeat exceeds the
// per-step deadline.
func (w *watchdog) stalled(now time.Time) (sinceS float64, hit bool) {
	w.mu.Lock()
	last := w.lastBeat
	w.mu.Unlock()
	sinceS = now.Sub(last).Seconds()
	return sinceS, sinceS > w.deadlineS()
}
