package recovery

import (
	"fmt"
	"math"
	"time"

	"sphenergy/internal/events"
	"sphenergy/internal/rng"
)

// Status classifies how a supervised run ended.
type Status string

const (
	// StatusCompleted: the run finished every step.
	StatusCompleted Status = "completed"
	// StatusStopped: the run stopped gracefully early — budget exhausted
	// or an external stop request (signal) — with a final checkpoint.
	StatusStopped Status = "stopped"
	// StatusRestartsExhausted: every allowed attempt failed.
	StatusRestartsExhausted Status = "restarts-exhausted"
)

// Outcome summarizes a supervised run for callers and reports.
type Outcome struct {
	Status   Status `json:"status"`
	Attempts int    `json:"attempts"`
	Restarts int    `json:"restarts"`
	// WatchdogStalls counts attempts abandoned for missing their step
	// deadline.
	WatchdogStalls int `json:"watchdog_stalls"`
	// StopCause is why a StatusStopped run stopped (StopWalltimeBudget,
	// StopEnergyBudget, or the external cause passed to RequestStop).
	StopCause string `json:"stop_cause,omitempty"`
	// Resumed/ResumeStep describe the last restore (ResumeStep is the
	// next step executed after restoring).
	Resumed    bool `json:"resumed,omitempty"`
	ResumeStep int  `json:"resume_step,omitempty"`
	// CorruptSkipped counts snapshots that failed verification and were
	// skipped on the way to a valid one.
	CorruptSkipped int `json:"corrupt_skipped,omitempty"`
	// AttemptErrors records each failed attempt's error text, in order.
	AttemptErrors []string `json:"attempt_errors,omitempty"`
}

// Resume hands an attempt the snapshot to restore from.
type Resume struct {
	Snapshot Snapshot
	Payload  []byte
	// Skipped lists snapshots that failed verification during the scan
	// (path -> error); non-empty means this resume fell back past
	// corruption.
	Skipped map[string]error
}

// AttemptFunc runs one attempt. resume is nil for a fresh start; ctl must
// receive the attempt's step-boundary StepDone calls for autosave,
// watchdog, and budget enforcement to work.
type AttemptFunc[T any] func(resume *Resume, ctl *Controller) (T, error)

// Supervise runs attempt under the full supervision loop: restore the
// newest valid snapshot, run, and on a crash (error or panic) or a
// watchdog stall restart from disk with seeded exponential backoff, up to
// MaxRestarts restarts. A graceful controller stop (budget/signal) is a
// success with Outcome.Status = StatusStopped. The returned error is
// non-nil only when restarts are exhausted or the store cannot be opened.
func Supervise[T any](cfg Config, attempt AttemptFunc[T]) (T, *Outcome, error) {
	cfg = cfg.defaulted()
	var zero T
	out := &Outcome{Status: StatusCompleted}
	var store *Store
	if cfg.Dir != "" {
		var err error
		store, err = Open(cfg.Dir, cfg.Keep)
		if err != nil {
			return zero, out, err
		}
	}
	mets := newMetricsHooks(cfg.Metrics)
	backoff := rng.New(cfg.Seed ^ 0xBAC0FF5EED)
	poll := time.Duration(cfg.Watchdog.PollS * float64(time.Second))

	for attemptN := 0; ; attemptN++ {
		out.Attempts = attemptN + 1
		var resume *Resume
		if store != nil {
			if snap, payload, skipped, ok := store.Latest(); ok {
				resume = &Resume{Snapshot: snap, Payload: payload, Skipped: skipped}
				out.Resumed = true
				out.ResumeStep = snap.Meta.Step
				out.CorruptSkipped += len(skipped)
				mets.restoredStep.Set(float64(snap.Meta.Step))
				detail := "restore"
				if len(skipped) > 0 {
					detail = fmt.Sprintf("restore-fallback:%d-corrupt-skipped", len(skipped))
				}
				cfg.Events.Emit(events.Event{
					Type: events.CheckpointRestore, TimeS: snap.Meta.TimeS,
					Step: snap.Meta.Step, Rank: -1, Detail: detail,
				})
			}
		}

		ctl := NewController(cfg, store)
		if cfg.OnAttempt != nil {
			cfg.OnAttempt(ctl)
		}
		type result struct {
			v   T
			err error
		}
		done := make(chan result, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					done <- result{err: fmt.Errorf("recovery: attempt panicked: %v", r)}
				}
			}()
			v, err := attempt(resume, ctl)
			done <- result{v, err}
		}()

		var ar result
		stalled := false
	wait:
		for {
			select {
			case ar = <-done:
				break wait
			case <-time.After(poll):
				if sinceS, hit := ctl.stalledNow(); hit {
					// Abandon the hung attempt: it can no longer save or
					// emit, and is wound down at its next step boundary (a
					// truly wedged step leaks its goroutine — restarting in
					// place is still better than hanging the whole run).
					ctl.Abandon()
					mets.stalls.Inc()
					out.WatchdogStalls++
					cfg.Events.Emit(events.Event{
						Type: events.WatchdogStall, Step: -1, Rank: -1,
						Detail: fmt.Sprintf("no step-boundary heartbeat for %.2fs", sinceS),
						Value:  sinceS,
					})
					ar = result{err: fmt.Errorf(
						"recovery: watchdog: no step-boundary heartbeat for %.2f s (deadline %.2f s)",
						sinceS, ctl.wd.deadlineS())}
					stalled = true
					break wait
				}
			}
		}

		if !stalled && ar.err == nil {
			if cause := ctl.StopCause(); cause != "" {
				out.Status = StatusStopped
				out.StopCause = cause
			} else {
				out.Status = StatusCompleted
			}
			return ar.v, out, nil
		}

		out.AttemptErrors = append(out.AttemptErrors, ar.err.Error())
		if attemptN >= cfg.MaxRestarts {
			out.Status = StatusRestartsExhausted
			return zero, out, fmt.Errorf("recovery: restarts exhausted after %d attempt(s): %w",
				attemptN+1, ar.err)
		}
		out.Restarts++
		mets.restarts.Inc()
		d := cfg.BackoffS * math.Pow(2, float64(attemptN)) * (0.5 + backoff.Float64())
		if d > cfg.MaxBackoffS {
			d = cfg.MaxBackoffS
		}
		cfg.Events.Emit(events.Event{
			Type: events.Restart, Step: -1, Rank: -1,
			Detail: ar.err.Error(), Value: d,
		})
		time.Sleep(time.Duration(d * float64(time.Second)))
	}
}
