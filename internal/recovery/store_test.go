package recovery

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testPayload(n int, tag byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + tag
	}
	return b
}

func savePayload(t *testing.T, s *Store, m Meta, payload []byte) string {
	t.Helper()
	path, err := s.Save(m, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	})
	if err != nil {
		t.Fatalf("save step %d: %v", m.Step, err)
	}
	return path
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{Step: 42, TimeS: 17.25e-3, RNGClock: 0xdeadbeefcafe, RebuildStep: 40, ReorderStep: 36}
	payload := testPayload(513, 1)
	path := savePayload(t, s, meta, payload)

	m, got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m != meta {
		t.Fatalf("meta round-trip: got %+v want %+v", m, meta)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload round-trip mismatch")
	}

	snaps := s.Snapshots()
	if len(snaps) != 1 || snaps[0].Meta != meta || snaps[0].Path != path {
		t.Fatalf("Snapshots: %+v", snaps)
	}
}

func TestStoreRotationKeepsNewest(t *testing.T) {
	s, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 7; step++ {
		savePayload(t, s, Meta{Step: step}, testPayload(64, byte(step)))
	}
	snaps := s.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("kept %d snapshots, want 3", len(snaps))
	}
	for i, want := range []int{5, 6, 7} {
		if snaps[i].Meta.Step != want {
			t.Fatalf("snapshot %d is step %d, want %d", i, snaps[i].Meta.Step, want)
		}
	}
	// Saving the same step again replaces in place, not grows.
	savePayload(t, s, Meta{Step: 7}, testPayload(64, 99))
	if got := len(s.Snapshots()); got != 3 {
		t.Fatalf("re-save grew store to %d", got)
	}
}

// TestStoreBitFlipDetectedAndFallsBack flips one byte at a sweep of
// offsets covering every header field and the payload, and asserts each
// flip (a) fails Load with a recovery error and (b) makes Latest fall
// back to the previous valid snapshot while reporting the corrupt one.
func TestStoreBitFlipDetectedAndFallsBack(t *testing.T) {
	offsets := []struct {
		off  int
		want string // substring of the Load error
	}{
		{1, "bad magic"},                 // magic
		{5, "header checksum mismatch"},  // version (CRC trips first)
		{10, "header checksum mismatch"}, // step
		{44, "header checksum mismatch"}, // time
		{50, "header checksum mismatch"}, // payload length
		{60, "header checksum mismatch"}, // digest
		{89, "header checksum mismatch"}, // the CRC itself
		{headerSize + 0, "payload digest mismatch"},
		{headerSize + 100, "payload digest mismatch"},
		{headerSize + 255, "payload digest mismatch"},
	}
	for _, tc := range offsets {
		t.Run(fmt.Sprintf("off%d", tc.off), func(t *testing.T) {
			s, err := Open(t.TempDir(), 3)
			if err != nil {
				t.Fatal(err)
			}
			oldPayload := testPayload(256, 1)
			savePayload(t, s, Meta{Step: 3, TimeS: 1}, oldPayload)
			newPath := savePayload(t, s, Meta{Step: 5, TimeS: 2}, testPayload(256, 2))

			raw, err := os.ReadFile(newPath)
			if err != nil {
				t.Fatal(err)
			}
			raw[tc.off] ^= 0x40
			if err := os.WriteFile(newPath, raw, 0o644); err != nil {
				t.Fatal(err)
			}

			if _, _, err := Load(newPath); err == nil {
				t.Fatalf("Load accepted snapshot with byte %d flipped", tc.off)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("flip at %d: error %q, want substring %q", tc.off, err, tc.want)
			}

			snap, payload, skipped, ok := s.Latest()
			if !ok || snap.Meta.Step != 3 {
				t.Fatalf("Latest did not fall back: ok=%v snap=%+v", ok, snap)
			}
			if !bytes.Equal(payload, oldPayload) {
				t.Fatal("fallback payload mismatch")
			}
			if err, reported := skipped[newPath]; !reported {
				t.Fatalf("corrupt snapshot not reported in skipped: %v", skipped)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("skipped error %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestStoreTruncationAtEveryByte cuts a snapshot file at every possible
// length and asserts no cut is ever accepted as valid — the same
// byte-by-byte technique traceanalysis uses for lenient trace loading,
// here proving the strict side.
func TestStoreTruncationAtEveryByte(t *testing.T) {
	s, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(128, 7)
	path := savePayload(t, s, Meta{Step: 9, TimeS: 3}, payload)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cut := filepath.Join(dir, "cut.sprc")
	for n := 0; n < len(raw); n++ {
		if err := os.WriteFile(cut, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Load(cut)
		if err == nil {
			t.Fatalf("cut at %d of %d bytes loaded successfully", n, len(raw))
		}
		var want string
		switch {
		case n < headerSize:
			want = "truncated header"
		default:
			want = "truncated payload"
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("cut at %d: error %q, want substring %q", n, err, want)
		}
	}
	// The uncut file still loads.
	if _, got, err := Load(path); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("uncut snapshot broken: %v", err)
	}
}

// TestStoreVersionMismatch hand-crafts a version-2 header with a valid
// CRC so the version check itself (not the checksum) rejects it with the
// documented message.
func TestStoreVersionMismatch(t *testing.T) {
	s, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	path := savePayload(t, s, Meta{Step: 2}, testPayload(32, 4))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	le.PutUint32(raw[4:8], 2)                              // future format version
	le.PutUint32(raw[88:92], crc32.ChecksumIEEE(raw[:88])) // keep header CRC valid
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Load(path)
	if err == nil {
		t.Fatal("Load accepted a version-2 snapshot")
	}
	want := "unsupported snapshot version 2 (this build reads version 1)"
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q, want substring %q", err, want)
	}
}

func TestStoreLatestEmptyAndAllCorrupt(t *testing.T) {
	s, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := s.Latest(); ok {
		t.Fatal("Latest on empty store reported a snapshot")
	}

	// Every snapshot corrupt: Latest must report all of them and no payload.
	p1 := savePayload(t, s, Meta{Step: 1}, testPayload(16, 1))
	p2 := savePayload(t, s, Meta{Step: 2}, testPayload(16, 2))
	for _, p := range []string{p1, p2} {
		raw, _ := os.ReadFile(p)
		raw[len(raw)-1] ^= 0xff
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, skipped, ok := s.Latest()
	if ok {
		t.Fatal("Latest accepted a corrupt snapshot")
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped %d snapshots, want 2: %v", len(skipped), skipped)
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"notes.txt", "ckpt-abc.sprc", "ckpt-000000000001.bak"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	savePayload(t, s, Meta{Step: 1}, testPayload(8, 1))
	if got := len(s.Snapshots()); got != 1 {
		t.Fatalf("foreign files counted as snapshots: %d", got)
	}
	snap, _, _, ok := s.Latest()
	if !ok || snap.Meta.Step != 1 {
		t.Fatalf("Latest: ok=%v %+v", ok, snap)
	}
}
