package recovery

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"sphenergy/internal/events"
	"sphenergy/internal/telemetry"
)

// Config tunes run supervision: durability (Dir/AutosaveEvery/Keep),
// restart policy (MaxRestarts/BackoffS/Seed), budgets, and the watchdog.
// Events and Metrics are optional observability sinks shared across
// restart attempts, so the full recovery timeline of an interrupted run
// lands in one ledger and one registry.
type Config struct {
	// Dir is the snapshot directory; empty disables durability (budgets
	// and the watchdog still work, restarts then replay from step 0).
	Dir string
	// AutosaveEvery saves a checkpoint every N completed steps (0 = only
	// the final checkpoint).
	AutosaveEvery int
	// Keep is the snapshot retention depth (DefaultKeep when <= 0).
	Keep int
	// MaxRestarts bounds supervisor restarts; a run that fails more than
	// MaxRestarts+1 times total is abandoned with StatusRestartsExhausted.
	MaxRestarts int
	// BackoffS is the base of the seeded exponential restart backoff in
	// real seconds (default 0.05); MaxBackoffS caps it (default 5).
	BackoffS    float64
	MaxBackoffS float64
	// Seed drives the deterministic backoff jitter.
	Seed uint64
	// WalltimeBudgetS stops the run gracefully once the virtual wall
	// clock passes the budget (0 = unlimited).
	WalltimeBudgetS float64
	// EnergyBudgetJ stops the run gracefully once total allocation energy
	// passes the budget (0 = unlimited).
	EnergyBudgetJ float64
	// Watchdog tunes hung-step detection.
	Watchdog WatchdogConfig

	// Events receives typed checkpoint/restart/watchdog/budget records.
	Events *events.Ledger
	// Metrics receives the recovery metric families.
	Metrics *telemetry.Registry

	// OnAttempt observes each attempt's controller just before the attempt
	// starts. Signal handlers use it to route RequestStop to whichever
	// attempt is currently live.
	OnAttempt func(*Controller)
}

func (c Config) defaulted() Config {
	if c.Keep <= 0 {
		c.Keep = DefaultKeep
	}
	if c.BackoffS <= 0 {
		c.BackoffS = 0.05
	}
	if c.MaxBackoffS <= 0 {
		c.MaxBackoffS = 5
	}
	c.Watchdog = c.Watchdog.defaulted()
	return c
}

// Stop causes (Controller.StopCause, Outcome.StopCause).
const (
	StopWalltimeBudget = "budget-walltime"
	StopEnergyBudget   = "budget-energy"
)

// Directive is the Controller's verdict at a step boundary.
type Directive int

const (
	// Continue runs the next step.
	Continue Directive = iota
	// Stop ends the run gracefully now: a final checkpoint has already
	// been written (when a store is configured) and the runner should
	// return its partial result.
	Stop
)

// metricsHooks bundles the recovery metric families (all nil-safe).
type metricsHooks struct {
	ckptSeconds  *telemetry.Histogram
	stepWall     *telemetry.Histogram
	ckptTotal    *telemetry.Counter
	restarts     *telemetry.Counter
	stalls       *telemetry.Counter
	budgetStops  *telemetry.Counter
	wallLimit    *telemetry.Gauge
	wallUsed     *telemetry.Gauge
	energyLimit  *telemetry.Gauge
	energyUsed   *telemetry.Gauge
	restoredStep *telemetry.Gauge
}

func newMetricsHooks(reg *telemetry.Registry) *metricsHooks {
	return &metricsHooks{
		ckptSeconds: reg.Histogram("recovery_checkpoint_write_seconds",
			"real time spent writing one durable checkpoint", telemetry.ExpBuckets(1e-4, 2, 14)),
		stepWall: reg.Histogram("recovery_step_wall_seconds",
			"real (host) time per simulation step, the watchdog's deadline source",
			telemetry.ExpBuckets(1e-3, 2, 16)),
		ckptTotal:   reg.Counter("recovery_checkpoints_saved_total", "durable checkpoints written"),
		restarts:    reg.Counter("recovery_restarts_total", "supervisor restarts after a crashed or stalled attempt"),
		stalls:      reg.Counter("recovery_watchdog_stalls_total", "watchdog deadline hits"),
		budgetStops: reg.Counter("recovery_budget_stops_total", "graceful stops triggered by a budget"),
		wallLimit:   reg.Gauge("recovery_walltime_budget_s", "configured wall-clock budget (0 = unlimited)"),
		wallUsed:    reg.Gauge("recovery_walltime_used_s", "virtual wall clock consumed so far"),
		energyLimit: reg.Gauge("recovery_energy_budget_j", "configured energy budget (0 = unlimited)"),
		energyUsed:  reg.Gauge("recovery_energy_used_j", "total allocation energy consumed so far"),
		restoredStep: reg.Gauge("recovery_restored_step",
			"step the latest restart resumed from (unset until a restore happens)"),
	}
}

// Controller drives one run attempt's recovery decisions at step
// boundaries: autosave cadence, watchdog heartbeats, budget checks, and
// externally requested graceful stops (signals). The runner calls StepDone
// after every completed step and Final once the loop ends; the supervisor
// abandons a stalled controller so a zombie attempt can no longer write
// snapshots or events.
type Controller struct {
	cfg   Config
	store *Store // nil when durability is off
	mets  *metricsHooks
	wd    *watchdog

	abandoned atomic.Bool
	extStop   atomic.Pointer[string] // externally requested stop cause

	mu        sync.Mutex
	saves     int
	lastPath  string
	stopCause string
}

// NewController builds a controller for one attempt. The store may be nil.
func NewController(cfg Config, store *Store) *Controller {
	cfg = cfg.defaulted()
	mets := newMetricsHooks(cfg.Metrics)
	c := &Controller{cfg: cfg, store: store, mets: mets}
	c.wd = newWatchdog(cfg.Watchdog, mets.stepWall)
	mets.wallLimit.Set(cfg.WalltimeBudgetS)
	mets.energyLimit.Set(cfg.EnergyBudgetJ)
	return c
}

// RequestStop asks for a graceful stop at the next step boundary (the
// SIGINT/SIGTERM path): the runner will write a final checkpoint and
// return its partial result. Safe from any goroutine.
func (c *Controller) RequestStop(cause string) {
	c.extStop.Store(&cause)
}

// Abandon turns the controller into a no-op: a stalled attempt that later
// unblocks can no longer save snapshots or emit events over the
// replacement attempt.
func (c *Controller) Abandon() { c.abandoned.Store(true) }

// Abandoned reports whether the supervisor gave up on this attempt.
func (c *Controller) Abandoned() bool { return c.abandoned.Load() }

// StepDone is the runner's step-boundary hook. step is the completed step
// index, wallS/energyJ the run's virtual wall clock and total allocation
// energy so far, and encode serializes the model state after this step.
// It autosaves on cadence, feeds the watchdog, enforces budgets and
// external stop requests, and returns whether to continue.
func (c *Controller) StepDone(step int, wallS, energyJ float64, m Meta, encode func(io.Writer) error) Directive {
	if c == nil {
		return Continue
	}
	c.wd.beat(time.Now())
	if c.abandoned.Load() {
		// The supervisor moved on; quietly wind the zombie attempt down.
		return Stop
	}
	c.mets.wallUsed.Set(wallS)
	c.mets.energyUsed.Set(energyJ)

	cause := ""
	switch {
	case c.cfg.WalltimeBudgetS > 0 && wallS >= c.cfg.WalltimeBudgetS:
		cause = StopWalltimeBudget
	case c.cfg.EnergyBudgetJ > 0 && energyJ >= c.cfg.EnergyBudgetJ:
		cause = StopEnergyBudget
	case c.extStop.Load() != nil:
		cause = *c.extStop.Load()
	}
	if cause != "" {
		c.finalSave(m, wallS, encode, cause)
		if cause == StopWalltimeBudget || cause == StopEnergyBudget {
			c.mets.budgetStops.Inc()
			c.emit(events.Event{
				Type: events.BudgetStop, TimeS: wallS, Step: step, Rank: -1,
				Detail: cause, Value: energyJ,
			})
		}
		c.mu.Lock()
		c.stopCause = cause
		c.mu.Unlock()
		return Stop
	}

	if c.store != nil && c.cfg.AutosaveEvery > 0 && (step+1)%c.cfg.AutosaveEvery == 0 {
		c.save(m, wallS, encode, "autosave")
	}
	return Continue
}

// Final persists the end-of-run checkpoint (normal completion). No-op
// without a store or after abandonment.
func (c *Controller) Final(m Meta, wallS float64, encode func(w io.Writer) error) {
	if c == nil || c.abandoned.Load() {
		return
	}
	c.finalSave(m, wallS, encode, "final")
}

func (c *Controller) finalSave(m Meta, wallS float64, encode func(io.Writer) error, cause string) {
	if c.store == nil {
		return
	}
	c.save(m, wallS, encode, "final:"+cause)
}

// save writes one snapshot, recording duration and ledger visibility.
// Save failures are surfaced as events (detail "save-failed") but do not
// abort the run — a run with a full disk should still finish.
func (c *Controller) save(m Meta, wallS float64, encode func(io.Writer) error, detail string) {
	start := time.Now()
	path, err := c.store.Save(m, encode)
	durS := time.Since(start).Seconds()
	if err != nil {
		c.emit(events.Event{
			Type: events.CheckpointSave, TimeS: wallS, Step: m.Step - 1, Rank: -1,
			Detail: "save-failed:" + detail, Err: err.Error(),
		})
		return
	}
	c.mets.ckptSeconds.Observe(durS)
	c.mets.ckptTotal.Inc()
	c.mu.Lock()
	c.saves++
	c.lastPath = path
	c.mu.Unlock()
	c.emit(events.Event{
		Type: events.CheckpointSave, TimeS: wallS, Step: m.Step - 1, Rank: -1,
		Detail: detail, Value: durS,
	})
}

func (c *Controller) emit(ev events.Event) {
	if c.abandoned.Load() {
		return
	}
	c.cfg.Events.Emit(ev)
}

// Saves returns how many snapshots this attempt wrote and the path of the
// most recent one.
func (c *Controller) Saves() (n int, lastPath string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saves, c.lastPath
}

// StopCause returns why StepDone returned Stop ("" when the run was not
// stopped by the controller).
func (c *Controller) StopCause() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopCause
}

// stalledNow exposes the watchdog check to the supervisor.
func (c *Controller) stalledNow() (sinceS float64, hit bool) {
	if !c.cfg.Watchdog.Enabled {
		return 0, false
	}
	return c.wd.stalled(time.Now())
}

// String implements fmt.Stringer for debug logs.
func (c *Controller) String() string {
	n, last := c.Saves()
	return fmt.Sprintf("recovery.Controller{saves:%d last:%s}", n, last)
}
