package cluster

import (
	"math"
	"testing"

	"sphenergy/internal/gpusim"
)

func TestTableISpecs(t *testing.T) {
	lumi := LUMIG()
	if lumi.NumGPUDies != 8 || lumi.DiesPerCard != 2 {
		t.Error("LUMI-G should have 8 GCDs on 4 cards")
	}
	if lumi.GPUSpec.Vendor != gpusim.AMD {
		t.Error("LUMI-G GPUs should be AMD")
	}
	if lumi.GPUSpec.MaxSMClockMHz != 1700 || lumi.GPUSpec.MemClockMHz != 1600 {
		t.Error("LUMI-G clock spec mismatch with Table I")
	}

	cscs := CSCSA100()
	if cscs.NumGPUDies != 4 || cscs.DiesPerCard != 1 {
		t.Error("CSCS-A100 should have 4 single-die cards")
	}
	if cscs.GPUSpec.MaxSMClockMHz != 1410 || cscs.GPUSpec.MemClockMHz != 1593 {
		t.Error("CSCS-A100 clock spec mismatch with Table I")
	}

	mini := MiniHPC()
	if mini.NumCPUs != 2 || mini.CPUModel.Cores != 28 {
		t.Error("miniHPC should have 2x 28-core CPUs")
	}
	if mini.NumGPUDies != 2 {
		t.Error("miniHPC should have 2 GPUs")
	}
	if mini.GPUSpec.MemSizeGB != 40 {
		t.Error("miniHPC A100s are the 40 GB PCIe variant")
	}
}

func TestSystemByName(t *testing.T) {
	for _, name := range []string{"lumi-g", "cscs-a100", "minihpc"} {
		if _, err := SystemByName(name); err != nil {
			t.Errorf("SystemByName(%q): %v", name, err)
		}
	}
	if _, err := SystemByName("summit"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestNodeConstruction(t *testing.T) {
	n := NewNode(LUMIG(), 3)
	if n.Index != 3 {
		t.Error("node index")
	}
	if len(n.Devices) != 8 || len(n.CPUs) != 1 {
		t.Error("component counts")
	}
	if n.NumCards() != 4 {
		t.Errorf("NumCards = %d", n.NumCards())
	}
}

func TestEnergyMeterIntegration(t *testing.T) {
	var m EnergyMeter
	m.Advance(2, 100)
	m.Advance(3, 50)
	if math.Abs(m.EnergyJ()-350) > 1e-12 {
		t.Errorf("energy %v, want 350", m.EnergyJ())
	}
	if math.Abs(m.NowS()-5) > 1e-12 {
		t.Errorf("time %v, want 5", m.NowS())
	}
	if m.PowerW() != 50 {
		t.Errorf("last power %v", m.PowerW())
	}
	m.Advance(-1, 100) // ignored
	if m.NowS() != 5 {
		t.Error("negative window advanced the meter")
	}
}

func TestCPUUtilizationClamping(t *testing.T) {
	c := &CPU{Model: CPUModel{IdleW: 100, MaxW: 200}}
	c.Advance(1, 2.0) // clamped to 1
	if math.Abs(c.EnergyJ()-200) > 1e-12 {
		t.Errorf("clamped-high energy %v", c.EnergyJ())
	}
	c2 := &CPU{Model: CPUModel{IdleW: 100, MaxW: 200}}
	c2.Advance(1, -1) // clamped to 0
	if math.Abs(c2.EnergyJ()-100) > 1e-12 {
		t.Errorf("clamped-low energy %v", c2.EnergyJ())
	}
}

func TestAdvanceHostTouchesAllComponents(t *testing.T) {
	n := NewNode(CSCSA100(), 0)
	n.AdvanceHost(2, 0.5, 0.5)
	if n.CPUEnergyJ() <= 0 || n.Mem.Meter.EnergyJ() <= 0 || n.Aux.EnergyJ() <= 0 {
		t.Error("host advance missed a component")
	}
	if n.GPUEnergyJ() != 0 {
		t.Error("host advance must not touch GPUs")
	}
}

func TestTotalEnergyIsSum(t *testing.T) {
	n := NewNode(LUMIG(), 0)
	n.AdvanceHost(1, 0.3, 0.2)
	for _, d := range n.Devices {
		d.Idle(1)
	}
	sum := n.CPUEnergyJ() + n.Mem.Meter.EnergyJ() + n.GPUEnergyJ() + n.Aux.EnergyJ()
	if math.Abs(n.TotalEnergyJ()-sum) > 1e-9 {
		t.Errorf("TotalEnergyJ %v != sum %v", n.TotalEnergyJ(), sum)
	}
}

func TestCardEnergyGroupsGCDs(t *testing.T) {
	n := NewNode(LUMIG(), 0)
	n.Devices[0].Idle(1)
	n.Devices[1].Idle(2)
	want := n.Devices[0].EnergyJ() + n.Devices[1].EnergyJ()
	if math.Abs(n.CardEnergyJ(0)-want) > 1e-9 {
		t.Errorf("card 0 energy %v, want %v", n.CardEnergyJ(0), want)
	}
	if n.CardEnergyJ(1) != 0 {
		t.Error("untouched card reports energy")
	}
}

func TestDeviceForRank(t *testing.T) {
	sys := NewSystem(LUMIG(), 2) // 16 ranks
	if sys.TotalRanks() != 16 {
		t.Fatalf("TotalRanks = %d", sys.TotalRanks())
	}
	node, dev, err := sys.DeviceForRank(9)
	if err != nil {
		t.Fatal(err)
	}
	if node.Index != 1 || dev.Index() != 1 {
		t.Errorf("rank 9 -> node %d dev %d, want node 1 dev 1", node.Index, dev.Index())
	}
	if _, _, err := sys.DeviceForRank(16); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestNodesForRanks(t *testing.T) {
	spec := CSCSA100() // 4 dies per node
	cases := map[int]int{1: 1, 4: 1, 5: 2, 32: 8, 48: 12}
	for ranks, want := range cases {
		if got := spec.NodesForRanks(ranks); got != want {
			t.Errorf("NodesForRanks(%d) = %d, want %d", ranks, got, want)
		}
	}
}

func TestSystemTotalEnergy(t *testing.T) {
	sys := NewSystem(CSCSA100(), 2)
	for _, n := range sys.Nodes {
		n.AdvanceHost(1, 0.1, 0.1)
	}
	if sys.TotalEnergyJ() <= 0 {
		t.Error("system energy not accumulated")
	}
	if math.Abs(sys.TotalEnergyJ()-2*sys.Nodes[0].TotalEnergyJ()) > 1e-9 {
		t.Error("identical nodes should contribute equally")
	}
}
