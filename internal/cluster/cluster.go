// Package cluster models the compute-node architectures of Table I —
// LUMI-G, CSCS-A100 and miniHPC — including CPU/memory/auxiliary power,
// GPU population, and the MPI-rank-to-GPU binding rules that the paper's
// analysis scripts must understand (one rank drives one GPU *die*, while
// pm_counters report per GPU *card*).
package cluster

import (
	"fmt"
	"sync"

	"sphenergy/internal/gpusim"
)

// CPUModel is the power model of one CPU package.
type CPUModel struct {
	Name  string
	Cores int
	IdleW float64 // package power with all cores idle
	MaxW  float64 // package power with all cores active
}

// MemModel is the power model of node DRAM.
type MemModel struct {
	SizeGB float64
	IdleW  float64
	MaxW   float64
}

// EnergyMeter integrates power over virtual time for one node component.
// It implements rapl.Source.
type EnergyMeter struct {
	mu      sync.Mutex
	nowS    float64
	energyJ float64
	lastW   float64
}

// Advance accrues `watts` for `seconds` of virtual time.
func (m *EnergyMeter) Advance(seconds, watts float64) {
	if seconds <= 0 {
		return
	}
	m.mu.Lock()
	m.nowS += seconds
	m.energyJ += watts * seconds
	m.lastW = watts
	m.mu.Unlock()
}

// EnergyJ returns cumulative energy in joules.
func (m *EnergyMeter) EnergyJ() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.energyJ
}

// NowS returns the component's virtual time.
func (m *EnergyMeter) NowS() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nowS
}

// PowerW returns the last applied power.
func (m *EnergyMeter) PowerW() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastW
}

// CPU is one CPU package instance with its meter.
type CPU struct {
	Model CPUModel
	Meter EnergyMeter
}

// Advance accrues CPU energy for a window at the given utilization in [0,1].
func (c *CPU) Advance(seconds, util float64) {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	c.Meter.Advance(seconds, c.Model.IdleW+(c.Model.MaxW-c.Model.IdleW)*util)
}

// EnergyJ implements rapl.Source.
func (c *CPU) EnergyJ() float64 { return c.Meter.EnergyJ() }

// Mem is the node DRAM instance with its meter.
type Mem struct {
	Model MemModel
	Meter EnergyMeter
}

// Advance accrues memory energy for a window at the given traffic level.
func (m *Mem) Advance(seconds, util float64) {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	m.Meter.Advance(seconds, m.Model.IdleW+(m.Model.MaxW-m.Model.IdleW)*util)
}

// NodeSpec describes a node architecture.
type NodeSpec struct {
	Name        string
	CPUModel    CPUModel
	NumCPUs     int
	MemModel    MemModel
	GPUSpec     gpusim.Spec
	NumGPUDies  int     // addressable devices per node (GCDs on LUMI-G)
	DiesPerCard int     // dies per physical card (2 on MI250X, 1 on A100)
	AuxW        float64 // NIC, fans, VRM losses, SSD — the "other" of Fig. 4
}

// Node is one instantiated compute node.
type Node struct {
	Spec    NodeSpec
	Index   int
	CPUs    []*CPU
	Mem     *Mem
	Aux     EnergyMeter
	Devices []*gpusim.Device
}

// NewNode instantiates a node from its spec.
func NewNode(spec NodeSpec, index int) *Node {
	n := &Node{Spec: spec, Index: index}
	for i := 0; i < spec.NumCPUs; i++ {
		n.CPUs = append(n.CPUs, &CPU{Model: spec.CPUModel})
	}
	n.Mem = &Mem{Model: spec.MemModel}
	for i := 0; i < spec.NumGPUDies; i++ {
		n.Devices = append(n.Devices, gpusim.NewDevice(spec.GPUSpec, i))
	}
	return n
}

// AdvanceHost accrues CPU, memory and auxiliary energy for a window; the
// GPUs advance separately through their own Execute/Idle calls.
func (n *Node) AdvanceHost(seconds, cpuUtil, memUtil float64) {
	for _, c := range n.CPUs {
		c.Advance(seconds, cpuUtil)
	}
	n.Mem.Advance(seconds, memUtil)
	n.Aux.Advance(seconds, n.Spec.AuxW)
}

// CardEnergyJ returns the energy of physical GPU card `card`, summing its
// dies — the granularity at which Cray pm_counters report accelerator
// energy. On LUMI-G one card covers two MPI ranks' devices.
func (n *Node) CardEnergyJ(card int) float64 {
	sum := 0.0
	for die := 0; die < n.Spec.DiesPerCard; die++ {
		idx := card*n.Spec.DiesPerCard + die
		if idx < len(n.Devices) {
			sum += n.Devices[idx].EnergyJ()
		}
	}
	return sum
}

// NumCards returns the number of physical GPU cards.
func (n *Node) NumCards() int {
	return n.Spec.NumGPUDies / n.Spec.DiesPerCard
}

// CPUEnergyJ returns total CPU package energy.
func (n *Node) CPUEnergyJ() float64 {
	sum := 0.0
	for _, c := range n.CPUs {
		sum += c.EnergyJ()
	}
	return sum
}

// GPUEnergyJ returns total GPU energy across all dies.
func (n *Node) GPUEnergyJ() float64 {
	sum := 0.0
	for _, d := range n.Devices {
		sum += d.EnergyJ()
	}
	return sum
}

// TotalEnergyJ returns whole-node energy: CPU + memory + GPU + auxiliary.
func (n *Node) TotalEnergyJ() float64 {
	return n.CPUEnergyJ() + n.Mem.Meter.EnergyJ() + n.GPUEnergyJ() + n.Aux.EnergyJ()
}

// MeterState is an EnergyMeter's checkpointable state.
type MeterState struct {
	NowS    float64
	EnergyJ float64
	LastW   float64
}

// State captures the meter's checkpointable state.
func (m *EnergyMeter) State() MeterState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MeterState{NowS: m.nowS, EnergyJ: m.energyJ, LastW: m.lastW}
}

// Restore installs a state captured by State.
func (m *EnergyMeter) Restore(st MeterState) {
	m.mu.Lock()
	m.nowS = st.NowS
	m.energyJ = st.EnergyJ
	m.lastW = st.LastW
	m.mu.Unlock()
}

// NodeState is a node's checkpointable state: every component meter and
// every GPU die's device state.
type NodeState struct {
	CPUs    []MeterState
	Mem     MeterState
	Aux     MeterState
	Devices []gpusim.DeviceState
}

// State captures the node's checkpointable state.
func (n *Node) State() NodeState {
	st := NodeState{Mem: n.Mem.Meter.State(), Aux: n.Aux.State()}
	for _, c := range n.CPUs {
		st.CPUs = append(st.CPUs, c.Meter.State())
	}
	for _, d := range n.Devices {
		st.Devices = append(st.Devices, d.State())
	}
	return st
}

// Restore installs a state captured by State on a node of the same spec.
func (n *Node) Restore(st NodeState) error {
	if len(st.CPUs) != len(n.CPUs) || len(st.Devices) != len(n.Devices) {
		return fmt.Errorf("cluster: restore shape mismatch on node %d: %d/%d CPUs, %d/%d devices",
			n.Index, len(st.CPUs), len(n.CPUs), len(st.Devices), len(n.Devices))
	}
	for i, c := range n.CPUs {
		c.Meter.Restore(st.CPUs[i])
	}
	n.Mem.Meter.Restore(st.Mem)
	n.Aux.Restore(st.Aux)
	for i, d := range n.Devices {
		d.Restore(st.Devices[i])
	}
	return nil
}

// System is a multi-node allocation.
type System struct {
	Spec  NodeSpec
	Nodes []*Node
}

// NewSystem allocates numNodes nodes of the given spec.
func NewSystem(spec NodeSpec, numNodes int) *System {
	s := &System{Spec: spec}
	for i := 0; i < numNodes; i++ {
		s.Nodes = append(s.Nodes, NewNode(spec, i))
	}
	return s
}

// RanksPerNode returns how many MPI ranks a node hosts under the
// one-rank-per-GPU-die rule.
func (s *System) RanksPerNode() int { return s.Spec.NumGPUDies }

// TotalRanks returns the rank count of the allocation.
func (s *System) TotalRanks() int { return len(s.Nodes) * s.RanksPerNode() }

// DeviceForRank resolves the GPU die that a global MPI rank drives, plus
// its node. Ranks are laid out node-major, matching block rank placement.
func (s *System) DeviceForRank(rank int) (*Node, *gpusim.Device, error) {
	rpn := s.RanksPerNode()
	node := rank / rpn
	local := rank % rpn
	if node >= len(s.Nodes) {
		return nil, nil, fmt.Errorf("cluster: rank %d exceeds allocation of %d ranks", rank, s.TotalRanks())
	}
	return s.Nodes[node], s.Nodes[node].Devices[local], nil
}

// TotalEnergyJ sums node energies across the allocation.
func (s *System) TotalEnergyJ() float64 {
	sum := 0.0
	for _, n := range s.Nodes {
		sum += n.TotalEnergyJ()
	}
	return sum
}

// NodesForRanks returns how many nodes an allocation of `ranks` ranks needs.
func (s NodeSpec) NodesForRanks(ranks int) int {
	rpn := s.NumGPUDies
	return (ranks + rpn - 1) / rpn
}

// LUMIG returns the LUMI-G node of Table I: 1× AMD EPYC 7A53 64-core,
// 512 GB, 4× MI250X cards = 8 GCDs.
func LUMIG() NodeSpec {
	return NodeSpec{
		Name:        "LUMI-G",
		CPUModel:    CPUModel{Name: "AMD EPYC 7A53", Cores: 64, IdleW: 120, MaxW: 300},
		NumCPUs:     1,
		MemModel:    MemModel{SizeGB: 512, IdleW: 90, MaxW: 140},
		GPUSpec:     gpusim.MI250XGCD(),
		NumGPUDies:  8,
		DiesPerCard: 2,
		AuxW:        400,
	}
}

// CSCSA100 returns the CSCS-A100 node of Table I: 1× AMD EPYC 64-core,
// 4× A100-SXM4 80 GB.
func CSCSA100() NodeSpec {
	return NodeSpec{
		Name:        "CSCS-A100",
		CPUModel:    CPUModel{Name: "AMD EPYC 7713", Cores: 64, IdleW: 100, MaxW: 240},
		NumCPUs:     1,
		MemModel:    MemModel{SizeGB: 512, IdleW: 45, MaxW: 80},
		GPUSpec:     gpusim.A100SXM480GB(),
		NumGPUDies:  4,
		DiesPerCard: 1,
		AuxW:        210,
	}
}

// MiniHPC returns the miniHPC GPU node of Table I: 2× Intel Xeon Gold
// 6258R 28-core, 1.5 TB, 2× A100-PCIe 40 GB.
func MiniHPC() NodeSpec {
	return NodeSpec{
		Name:        "miniHPC",
		CPUModel:    CPUModel{Name: "Intel Xeon Gold 6258R", Cores: 28, IdleW: 60, MaxW: 205},
		NumCPUs:     2,
		MemModel:    MemModel{SizeGB: 1536, IdleW: 45, MaxW: 90},
		GPUSpec:     gpusim.A100PCIE40GB(),
		NumGPUDies:  2,
		DiesPerCard: 1,
		AuxW:        120,
	}
}

// SystemByName resolves the Table I systems by name.
func SystemByName(name string) (NodeSpec, error) {
	switch name {
	case "lumi-g", "LUMI-G", "lumi":
		return LUMIG(), nil
	case "cscs-a100", "CSCS-A100", "cscs":
		return CSCSA100(), nil
	case "minihpc", "miniHPC":
		return MiniHPC(), nil
	}
	return NodeSpec{}, fmt.Errorf("cluster: unknown system %q (want lumi-g, cscs-a100 or minihpc)", name)
}
