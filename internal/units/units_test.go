package units

import (
	"strings"
	"testing"
	"time"
)

func TestEnergyConversions(t *testing.T) {
	e := 2.5 * Megajoule
	if got := e.Joules(); got != 2.5e6 {
		t.Errorf("Joules() = %g, want 2.5e6", got)
	}
	if got := e.Megajoules(); got != 2.5 {
		t.Errorf("Megajoules() = %g, want 2.5", got)
	}
}

func TestEnergyString(t *testing.T) {
	cases := []struct {
		e    Energy
		want string
	}{
		{12.5 * Megajoule, "12.500 MJ"},
		{3 * Kilojoule, "3.000 kJ"},
		{42 * Joule, "42.000 J"},
		{-2 * Megajoule, "-2.000 MJ"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.e), got, c.want)
		}
	}
}

func TestPowerTimesDuration(t *testing.T) {
	p := 250 * Watt
	e := p.Times(4 * time.Second)
	if e != 1000*Joule {
		t.Errorf("250W * 4s = %v, want 1000 J", e)
	}
}

func TestPowerString(t *testing.T) {
	if got := (Power(123.45)).String(); got != "123.5 W" {
		t.Errorf("String() = %q", got)
	}
}

func TestFrequencyMHz(t *testing.T) {
	f := MHz(1410)
	if f.Hz() != 1410e6 {
		t.Errorf("MHz(1410).Hz() = %g", f.Hz())
	}
	if f.MHzI() != 1410 {
		t.Errorf("MHzI() = %d", f.MHzI())
	}
	if got := f.String(); got != "1410 MHz" {
		t.Errorf("String() = %q", got)
	}
}

func TestFrequencyRounding(t *testing.T) {
	f := Frequency(1409.6e6)
	if f.MHzI() != 1410 {
		t.Errorf("1409.6 MHz rounds to %d, want 1410", f.MHzI())
	}
}

func TestEnergyDelayProduct(t *testing.T) {
	edp := EnergyDelayProduct(100*Joule, 2*time.Second)
	if edp != 200 {
		t.Errorf("EDP = %g, want 200", edp)
	}
	ed2p := EnergyDelaySquared(100*Joule, 2*time.Second)
	if ed2p != 400 {
		t.Errorf("ED2P = %g, want 400", ed2p)
	}
}

func TestEDPOrderingUnderTradeoff(t *testing.T) {
	// A configuration that is 20% slower but 30% more energy-frugal must
	// win on EDP — the core reasoning of the paper's metric.
	baseE, baseT := 1000*Joule, 10*time.Second
	cfgE, cfgT := 700*Joule, 12*time.Second
	if EnergyDelayProduct(cfgE, cfgT) >= EnergyDelayProduct(baseE, baseT) {
		t.Error("frugal configuration should have lower EDP")
	}
	// But ED2P penalizes the slowdown more.
	if EnergyDelaySquared(cfgE, cfgT) >= EnergyDelaySquared(baseE, baseT) {
		t.Skip("ED2P crossover depends on magnitudes; not asserted here")
	}
}

func TestStringsContainUnits(t *testing.T) {
	if !strings.HasSuffix((5 * Megajoule).String(), "MJ") {
		t.Error("energy string missing MJ suffix")
	}
	if !strings.HasSuffix(MHz(900).String(), "MHz") {
		t.Error("frequency string missing MHz suffix")
	}
}

func TestKWhConversion(t *testing.T) {
	e := Energy(3.6e6) // exactly 1 kWh
	if e.KWh() != 1 {
		t.Errorf("KWh = %v", e.KWh())
	}
}

func TestCO2Grams(t *testing.T) {
	e := Energy(7.2e6) // 2 kWh
	if got := e.CO2Grams(GridSwiss); got != 200 {
		t.Errorf("CO2 = %v g, want 200", got)
	}
}

func TestCarbonReport(t *testing.T) {
	// The paper's LUMI-Turb run: 24.4 MJ on a hydro-dominated grid.
	r := NewCarbonReport(24.4*Megajoule, GridHydro)
	if r.KWh < 6.7 || r.KWh > 6.9 {
		t.Errorf("KWh = %v, want ~6.78", r.KWh)
	}
	if r.CO2Kg < 0.2 || r.CO2Kg > 0.21 {
		t.Errorf("CO2 = %v kg, want ~0.203", r.CO2Kg)
	}
	if !strings.Contains(r.String(), "kg CO2e") {
		t.Errorf("String() = %q", r.String())
	}
	// The same job on a coal grid emits ~23x more.
	coal := NewCarbonReport(24.4*Megajoule, GridCoalHeavy)
	if coal.CO2Kg/r.CO2Kg < 20 {
		t.Error("grid intensity ratio lost")
	}
}
