package units

import "fmt"

// Carbon accounting: the Astronet roadmap the paper's introduction cites
// asks researchers to track the environmental cost of their simulations.
// These helpers convert measured energy into CO2-equivalent emissions under
// a grid carbon intensity.

// CarbonIntensity is grid emission intensity in gCO2e per kWh.
type CarbonIntensity float64

// Representative grid intensities (gCO2e/kWh), order-of-magnitude values
// for the regions hosting the paper's systems.
const (
	// GridHydro approximates hydro/nuclear-dominated grids (e.g. the
	// Nordic grid powering LUMI).
	GridHydro CarbonIntensity = 30
	// GridSwiss approximates the Swiss mix (CSCS).
	GridSwiss CarbonIntensity = 100
	// GridEUAverage approximates the EU average mix.
	GridEUAverage CarbonIntensity = 250
	// GridCoalHeavy approximates coal-dominated grids.
	GridCoalHeavy CarbonIntensity = 700
)

// joulesPerKWh converts between the SI and billing energy units.
const joulesPerKWh = 3.6e6

// KWh returns the energy in kilowatt-hours.
func (e Energy) KWh() float64 { return float64(e) / joulesPerKWh }

// CO2Grams returns the CO2-equivalent emissions of consuming the energy
// under the given grid intensity.
func (e Energy) CO2Grams(g CarbonIntensity) float64 {
	return e.KWh() * float64(g)
}

// CarbonReport summarizes a run's footprint.
type CarbonReport struct {
	EnergyJ   float64
	Intensity CarbonIntensity
	KWh       float64
	CO2Kg     float64
}

// NewCarbonReport builds the footprint summary for an energy total.
func NewCarbonReport(e Energy, g CarbonIntensity) CarbonReport {
	return CarbonReport{
		EnergyJ:   e.Joules(),
		Intensity: g,
		KWh:       e.KWh(),
		CO2Kg:     e.CO2Grams(g) / 1000,
	}
}

// String implements fmt.Stringer.
func (c CarbonReport) String() string {
	return fmt.Sprintf("%.2f kWh at %.0f gCO2e/kWh -> %.3f kg CO2e",
		c.KWh, float64(c.Intensity), c.CO2Kg)
}
