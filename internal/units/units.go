// Package units defines the physical quantities and unit conventions used
// throughout the library.
//
// All simulated hardware state is kept in SI units: seconds for (virtual)
// time, joules for energy, watts for power and hertz for frequencies.
// GPU clocks are conventionally quoted in MHz, so dedicated helpers convert
// between Hz-typed values and the MHz integers that appear in user interfaces
// such as `nvidia-smi` or Slurm's --gpu-freq flag.
package units

import (
	"fmt"
	"time"
)

// Energy is an amount of energy in joules.
type Energy float64

// Common energy magnitudes.
const (
	Joule     Energy = 1
	Kilojoule Energy = 1e3
	Megajoule Energy = 1e6
)

// Joules returns the energy as a plain float64 joule count.
func (e Energy) Joules() float64 { return float64(e) }

// Megajoules returns the energy expressed in MJ.
func (e Energy) Megajoules() float64 { return float64(e) / 1e6 }

// String formats the energy with an auto-selected magnitude suffix.
func (e Energy) String() string {
	switch {
	case e >= Megajoule || e <= -Megajoule:
		return fmt.Sprintf("%.3f MJ", e.Megajoules())
	case e >= Kilojoule || e <= -Kilojoule:
		return fmt.Sprintf("%.3f kJ", float64(e)/1e3)
	default:
		return fmt.Sprintf("%.3f J", float64(e))
	}
}

// Power is a power draw in watts.
type Power float64

// Common power magnitudes.
const (
	Watt     Power = 1
	Kilowatt Power = 1e3
)

// Watts returns the power as a plain float64 watt count.
func (p Power) Watts() float64 { return float64(p) }

// String formats the power in watts.
func (p Power) String() string { return fmt.Sprintf("%.1f W", float64(p)) }

// Times integrates the power over a duration, yielding energy.
func (p Power) Times(d time.Duration) Energy {
	return Energy(float64(p) * d.Seconds())
}

// Frequency is a clock frequency in hertz.
type Frequency float64

// Common frequency magnitudes.
const (
	Hertz     Frequency = 1
	Kilohertz Frequency = 1e3
	Megahertz Frequency = 1e6
	Gigahertz Frequency = 1e9
)

// MHz constructs a Frequency from an integer MHz count, the unit used by GPU
// management interfaces.
func MHz(mhz int) Frequency { return Frequency(mhz) * Megahertz }

// MHzI returns the frequency rounded to an integer number of MHz.
func (f Frequency) MHzI() int { return int(float64(f)/1e6 + 0.5) }

// Hz returns the frequency as a plain float64 hertz count.
func (f Frequency) Hz() float64 { return float64(f) }

// String formats the frequency in MHz, the conventional GPU clock unit.
func (f Frequency) String() string { return fmt.Sprintf("%d MHz", f.MHzI()) }

// EnergyDelayProduct combines energy and time-to-solution into the EDP metric
// used throughout the paper (J·s).
func EnergyDelayProduct(e Energy, d time.Duration) float64 {
	return e.Joules() * d.Seconds()
}

// EnergyDelaySquared is the ED²P metric (J·s²), more latency-biased than EDP.
func EnergyDelaySquared(e Energy, d time.Duration) float64 {
	s := d.Seconds()
	return e.Joules() * s * s
}
