// Package faults is a seeded, deterministic fault-injection framework for
// the measurement stack. Real deployments of the paper's pipeline do not
// run on perfectly healthy nodes: pm_counters go stale and sensors skip
// collection windows (Simsek et al., arXiv:2312.05102 §IV), DVFS requests
// are rejected or clamped by the platform (Calore et al., arXiv:1703.02788
// §5), and ranks straggle or die. A Plan describes such misbehaviour as a
// set of Rules — each with a fault Kind, an activation probability, a burst
// length and a virtual-time window — and Injectors evaluate the rules for
// one target instance (one rank's sensor, one node's pm_counters view, one
// clock-control path, one rank's execution).
//
// Determinism is the load-bearing property: every injector derives its
// random stream from (plan seed, target, instance), so two runs of the same
// simulation with the same plan inject byte-identical fault sequences
// regardless of goroutine scheduling — which is what lets `make chaos-smoke`
// assert bit-identical degraded output across repeated runs.
//
// The package deliberately depends only on internal/rng. The sensor
// back-ends (nvml, rsmi, rapl, pmcounters) expose a FaultHook of the shared
// shape func(op string, arg int) (int, error); SensorHook and ClockHook
// adapt an Injector to that shape, returning the sentinel errors below that
// the pmt layer translates into stuck or invalid readings.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"sphenergy/internal/rng"
)

// Sentinel errors carried through the back-end fault hooks. The pmt sensor
// layer inspects them with errors.Is to decide what a failed read looks
// like to the sampler.
var (
	// ErrTransient marks a one-off read/operation failure; pmt sensors
	// surface it as a NaN reading the sampler counts and discards.
	ErrTransient = errors.New("faults: injected transient error")
	// ErrStuck marks a stale/stuck reading; pmt sensors replay their last
	// good state so consumers see a frozen value, and pm_counters skip
	// their collection tick (the staleness failure mode of the measurement
	// paper).
	ErrStuck = errors.New("faults: injected stuck reading")
	// ErrRejected marks a clock-control request the platform refused — the
	// production failure mode of user-level DVFS requests.
	ErrRejected = errors.New("faults: injected rejected clock set")
)

// Kind enumerates the fault behaviours a Rule can inject.
type Kind string

// Fault kinds.
const (
	// Transient fails one operation (sensor read error, spurious EIO).
	Transient Kind = "transient"
	// Stuck freezes a sensor at its last value for the burst duration.
	Stuck Kind = "stuck"
	// Latency delays a reading by one collection window — observationally a
	// short stale stretch, the sensor-rate gap of arXiv:2312.05102.
	Latency Kind = "latency"
	// ClampedClock caps clock-set requests at Rule.MHz, the platform
	// clamping production DVFS requests silently hit.
	ClampedClock Kind = "clamped-clock"
	// RejectedSet refuses clock-set requests outright.
	RejectedSet Kind = "rejected-set"
	// Straggler multiplies a rank's phase duration by Rule.Factor.
	Straggler Kind = "straggler"
	// RankCrash kills a rank (at Rule.Step when set, otherwise
	// probabilistically inside the window).
	RankCrash Kind = "rank-crash"
)

// Target selects which injection point a rule applies to.
type Target string

// Injection targets.
const (
	// TargetSensor is the in-band per-rank GPU/CPU sensor read path
	// (NVML, ROCm-SMI, RAPL).
	TargetSensor Target = "sensor"
	// TargetNodeSensor is the out-of-band node path (pm_counters/BMC).
	TargetNodeSensor Target = "node-sensor"
	// TargetClock is the clock-control path (application-clock sets).
	TargetClock Target = "clock"
	// TargetRank is rank execution (stragglers, crashes).
	TargetRank Target = "rank"
)

// Rule is one fault behaviour. Zero Probability means "always fire while
// the window/step matches" — rules that should never fire are simply
// omitted from the plan.
type Rule struct {
	Kind   Kind   `json:"kind"`
	Target Target `json:"target"`
	// Probability is the per-operation activation chance in [0,1];
	// 0 means always (window/step-scoped rules).
	Probability float64 `json:"probability,omitempty"`
	// Burst keeps the fault active for this many consecutive operations
	// once activated (default 1).
	Burst int `json:"burst,omitempty"`
	// StartS/EndS bound the activation window in virtual time; EndS 0
	// leaves the window open-ended.
	StartS float64 `json:"start_s,omitempty"`
	EndS   float64 `json:"end_s,omitempty"`
	// Ranks restricts the rule to specific ranks (or node indices for
	// node-sensor rules); empty applies everywhere.
	Ranks []int `json:"ranks,omitempty"`
	// MHz is the clamped-clock ceiling.
	MHz int `json:"mhz,omitempty"`
	// Factor is the straggler slowdown multiplier (> 1).
	Factor float64 `json:"factor,omitempty"`
	// Step pins a rank-crash to one simulation step (deterministic crash).
	Step int `json:"step,omitempty"`
}

// matches reports whether the rule applies to a target instance.
func (r Rule) matches(target Target, instance int) bool {
	if r.Target != target {
		return false
	}
	if len(r.Ranks) == 0 || instance < 0 {
		return true
	}
	for _, x := range r.Ranks {
		if x == instance {
			return true
		}
	}
	return false
}

// inWindow reports whether nowS lies in the rule's activation window.
func (r Rule) inWindow(nowS float64) bool {
	if nowS < r.StartS {
		return false
	}
	return r.EndS == 0 || nowS < r.EndS
}

// Validate rejects malformed rules.
func (r Rule) Validate() error {
	switch r.Kind {
	case Transient, Stuck, Latency, ClampedClock, RejectedSet, Straggler, RankCrash:
	default:
		return fmt.Errorf("faults: unknown kind %q", r.Kind)
	}
	switch r.Target {
	case TargetSensor, TargetNodeSensor, TargetClock, TargetRank:
	default:
		return fmt.Errorf("faults: unknown target %q", r.Target)
	}
	if r.Probability < 0 || r.Probability > 1 {
		return fmt.Errorf("faults: probability %g outside [0,1]", r.Probability)
	}
	if r.EndS != 0 && r.EndS <= r.StartS {
		return fmt.Errorf("faults: empty window [%g,%g)", r.StartS, r.EndS)
	}
	if r.Kind == ClampedClock && r.MHz <= 0 {
		return fmt.Errorf("faults: clamped-clock needs a positive mhz ceiling")
	}
	if r.Kind == Straggler && r.Factor <= 1 {
		return fmt.Errorf("faults: straggler needs factor > 1, got %g", r.Factor)
	}
	return nil
}

// Plan is a named, seeded set of fault rules — the unit the -fault-plan
// flag loads and the chaos harness sweeps.
type Plan struct {
	// Name labels the plan in reports.
	Name string `json:"name,omitempty"`
	// Seed drives every injector stream; two runs with equal seed and rules
	// inject identical fault sequences.
	Seed  uint64 `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Validate rejects malformed plans.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}

// Active reports whether the plan injects anything.
func (p *Plan) Active() bool { return p != nil && len(p.Rules) > 0 }

// ParsePlan decodes a plan from JSON and validates it.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPlan reads a plan from a JSON file (or inline JSON when the argument
// starts with '{', the convenience the -fault-plan flag documents).
func LoadPlan(pathOrJSON string) (*Plan, error) {
	if strings.HasPrefix(strings.TrimSpace(pathOrJSON), "{") {
		return ParsePlan([]byte(pathOrJSON))
	}
	data, err := os.ReadFile(pathOrJSON)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	return ParsePlan(data)
}

// Injector evaluates a plan's rules for one target instance. Each injector
// owns an independent deterministic stream derived from (seed, target,
// instance), so injection sequences do not depend on the order injectors
// are created or scheduled. An injector is safe for concurrent use, though
// per-rank injection points are single-goroutine in practice.
type Injector struct {
	stream string

	mu    sync.Mutex
	rng   *rng.Rand
	rules []Rule
	burst []int  // remaining burst per rule
	fired []bool // step-pinned rules fire once
	count map[Kind]uint64
}

// Injector builds the evaluator for one target instance (rank index, node
// index, or -1 for a singleton). A nil plan returns a nil injector, and a
// nil *Injector is a valid never-fires no-op.
func (p *Plan) Injector(target Target, instance int) *Injector {
	if !p.Active() {
		return nil
	}
	in := &Injector{
		stream: fmt.Sprintf("%s/%d", target, instance),
		count:  map[Kind]uint64{},
	}
	for _, r := range p.Rules {
		if r.matches(target, instance) {
			in.rules = append(in.rules, r)
		}
	}
	in.burst = make([]int, len(in.rules))
	in.fired = make([]bool, len(in.rules))
	// Stream seed: SplitMix-style hash of the plan seed and stream name so
	// distinct targets get decorrelated streams from the same plan seed.
	h := p.Seed ^ 0x9E3779B97F4A7C15
	for _, b := range []byte(in.stream) {
		h = (h ^ uint64(b)) * 0x100000001B3
	}
	in.rng = rng.New(h)
	return in
}

// Decision is the outcome of evaluating the active rules for one
// operation: the fired rule, or Kind "" when no fault applies.
type Decision struct {
	Kind Kind
	Rule Rule
}

// None reports whether no fault fired.
func (d Decision) None() bool { return d.Kind == "" }

// Evaluate draws the injector's rules for one operation at virtual time
// nowS (step -1 outside the stepping loop) restricted to the given kinds
// (all when empty). Every matching in-window rule consumes exactly one
// state transition per call, so the stream stays aligned whichever rule
// fires; the first firing rule in plan order wins.
func (in *Injector) Evaluate(nowS float64, step int, kinds ...Kind) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var out Decision
	for i, r := range in.rules {
		if len(kinds) > 0 {
			ok := false
			for _, k := range kinds {
				if k == r.Kind {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		fire := false
		switch {
		case r.Kind == RankCrash && r.Step > 0:
			// Step-pinned crash: deterministic, fires exactly once.
			fire = step == r.Step && !in.fired[i]
			if fire {
				in.fired[i] = true
			}
		case in.burst[i] > 0:
			in.burst[i]--
			fire = true
		case !r.inWindow(nowS):
			// Outside the window the rule is dormant and draws nothing.
		case r.Probability == 0 || in.rng.Float64() < r.Probability:
			fire = true
			if r.Burst > 1 {
				in.burst[i] = r.Burst - 1
			}
		}
		if fire && out.None() {
			out = Decision{Kind: r.Kind, Rule: r}
			in.count[r.Kind]++
		}
	}
	return out
}

// InjectorState is an injector's checkpointable state: the RNG stream
// position, per-rule burst/fired latches, and injection counts. The rule
// set itself is rebuilt from the plan, so State carries only what a
// restored run needs to continue the exact same fault sequence.
type InjectorState struct {
	Stream string
	RNG    [4]uint64
	Burst  []int
	Fired  []bool
	Counts map[Kind]uint64
}

// State captures the injector's checkpointable state. Nil injectors
// return a zero state (Stream "").
func (in *Injector) State() InjectorState {
	if in == nil {
		return InjectorState{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := InjectorState{
		Stream: in.stream,
		RNG:    in.rng.State(),
		Burst:  append([]int(nil), in.burst...),
		Fired:  append([]bool(nil), in.fired...),
		Counts: make(map[Kind]uint64, len(in.count)),
	}
	for k, v := range in.count {
		st.Counts[k] = v
	}
	return st
}

// Restore installs a state captured by State on an injector built from
// the same plan (same stream, same rule count). Restoring a nil injector
// with a zero state is a no-op.
func (in *Injector) Restore(st InjectorState) error {
	if in == nil {
		if st.Stream == "" {
			return nil
		}
		return fmt.Errorf("faults: restore stream %q onto nil injector", st.Stream)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st.Stream != in.stream {
		return fmt.Errorf("faults: restore stream mismatch: injector %q, state %q", in.stream, st.Stream)
	}
	if len(st.Burst) != len(in.rules) || len(st.Fired) != len(in.rules) {
		return fmt.Errorf("faults: restore rule-count mismatch on %q: injector has %d rules, state %d/%d",
			in.stream, len(in.rules), len(st.Burst), len(st.Fired))
	}
	in.rng.SetState(st.RNG)
	copy(in.burst, st.Burst)
	copy(in.fired, st.Fired)
	for k := range in.count {
		delete(in.count, k)
	}
	for k, v := range st.Counts {
		in.count[k] = v
	}
	return nil
}

// DisarmPinnedCrashes marks every step-pinned rank-crash rule as already
// fired and returns how many it disarmed. The supervisor calls it after a
// restore: a step-pinned crash models a transient rank death, and the
// restarted process replaying past the crash step must not die again to
// the same injection — otherwise recovery could never make progress.
// Probabilistic crash rules are unaffected (and remain bounded by the
// supervisor's restart budget).
func (in *Injector) DisarmPinnedCrashes() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for i, r := range in.rules {
		if r.Kind == RankCrash && r.Step > 0 && !in.fired[i] {
			in.fired[i] = true
			n++
		}
	}
	return n
}

// Counts returns the per-kind injection counts so far.
func (in *Injector) Counts() map[Kind]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]uint64, len(in.count))
	for k, v := range in.count {
		out[k] = v
	}
	return out
}

// Stream identifies the injector's target instance ("sensor/0", "clock/3").
func (in *Injector) Stream() string {
	if in == nil {
		return ""
	}
	return in.stream
}

// SensorHook adapts the injector to the back-end FaultHook shape for a
// sensor read path: transient faults become ErrTransient, stuck and
// latency faults become ErrStuck. now supplies the component's virtual
// clock for window evaluation.
func (in *Injector) SensorHook(now func() float64) func(op string, arg int) (int, error) {
	if in == nil {
		return nil
	}
	return func(op string, arg int) (int, error) {
		d := in.Evaluate(now(), -1, Transient, Stuck, Latency)
		switch d.Kind {
		case Transient:
			return arg, fmt.Errorf("%w (%s)", ErrTransient, op)
		case Stuck, Latency:
			return arg, fmt.Errorf("%w (%s)", ErrStuck, op)
		}
		return arg, nil
	}
}

// ClockHook adapts the injector to the back-end FaultHook shape for the
// clock-control path: clamped-clock rules cap the requested MHz at the
// rule ceiling, rejected-set rules fail the request with ErrRejected.
func (in *Injector) ClockHook(now func() float64) func(op string, mhz int) (int, error) {
	if in == nil {
		return nil
	}
	return func(op string, mhz int) (int, error) {
		d := in.Evaluate(now(), -1, ClampedClock, RejectedSet)
		switch d.Kind {
		case RejectedSet:
			return mhz, fmt.Errorf("%w (%s %d MHz)", ErrRejected, op, mhz)
		case ClampedClock:
			if d.Rule.MHz > 0 && mhz > d.Rule.MHz {
				return d.Rule.MHz, nil
			}
		}
		return mhz, nil
	}
}

// RankFailure records one injected rank death at step granularity.
type RankFailure struct {
	Rank  int     `json:"rank"`
	TimeS float64 `json:"time_s"`
	Step  int     `json:"step"`
}

// Report summarizes what a fault plan did to one run: injections per
// target stream, the resilience layer's reactions, and the rank failures
// the degradation policy handled. The runner assembles it; the chaos
// harness asserts on it.
type Report struct {
	Plan        string           `json:"plan,omitempty"`
	Degradation string           `json:"degradation"`
	Injected    []InjectionCount `json:"injected,omitempty"`
	// Aggregated resilience counters across all rank clock setters.
	Retries       uint64 `json:"retries,omitempty"`
	Absorbed      uint64 `json:"absorbed,omitempty"`
	Clamped       uint64 `json:"clamped,omitempty"`
	ShortCircuits uint64 `json:"short_circuits,omitempty"`
	BreakerTrips  uint64 `json:"breaker_trips,omitempty"`
	BrokenRanks   int    `json:"broken_ranks,omitempty"`
	// SamplerDegraded reports whether any sampling channel served
	// estimated or discarded readings.
	SamplerDegraded bool          `json:"sampler_degraded,omitempty"`
	Failures        []RankFailure `json:"failures,omitempty"`
}

// InjectionCount is one (stream, kind) injection tally — the
// deterministic, sortable unit fault summaries are built from.
type InjectionCount struct {
	Stream string `json:"stream"`
	Kind   Kind   `json:"kind"`
	Count  uint64 `json:"count"`
}

// CollectCounts folds a set of injectors into a deterministic, sorted
// tally (nil injectors and zero counts are skipped).
func CollectCounts(injectors ...*Injector) []InjectionCount {
	var out []InjectionCount
	for _, in := range injectors {
		if in == nil {
			continue
		}
		for k, v := range in.Counts() {
			if v > 0 {
				out = append(out, InjectionCount{Stream: in.stream, Kind: k, Count: v})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Stream != out[b].Stream {
			return out[a].Stream < out[b].Stream
		}
		return out[a].Kind < out[b].Kind
	})
	return out
}
