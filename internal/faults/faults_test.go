package faults

import (
	"errors"
	"reflect"
	"testing"
)

func TestParsePlanValidates(t *testing.T) {
	good := []byte(`{"seed": 42, "rules": [
		{"kind": "transient", "target": "sensor", "probability": 0.1, "burst": 2},
		{"kind": "clamped-clock", "target": "clock", "start_s": 1, "end_s": 2, "mhz": 900}
	]}`)
	p, err := ParsePlan(good)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 42 || len(p.Rules) != 2 {
		t.Fatalf("unexpected plan %+v", p)
	}

	bad := []struct {
		name string
		json string
	}{
		{"unknown kind", `{"seed":1,"rules":[{"kind":"meltdown","target":"sensor"}]}`},
		{"unknown target", `{"seed":1,"rules":[{"kind":"stuck","target":"moon"}]}`},
		{"probability range", `{"seed":1,"rules":[{"kind":"stuck","target":"sensor","probability":1.5}]}`},
		{"empty window", `{"seed":1,"rules":[{"kind":"stuck","target":"sensor","start_s":5,"end_s":3}]}`},
		{"clamp without mhz", `{"seed":1,"rules":[{"kind":"clamped-clock","target":"clock"}]}`},
		{"straggler factor", `{"seed":1,"rules":[{"kind":"straggler","target":"rank","factor":0.5}]}`},
		{"unknown field", `{"seed":1,"rules":[{"kind":"stuck","target":"sensor","typo_field":1}]}`},
	}
	for _, tc := range bad {
		if _, err := ParsePlan([]byte(tc.json)); err == nil {
			t.Errorf("%s: ParsePlan accepted invalid plan", tc.name)
		}
	}
}

func TestLoadPlanInlineJSON(t *testing.T) {
	p, err := LoadPlan(` {"seed": 7, "rules": [{"kind": "stuck", "target": "node-sensor"}]}`)
	if err != nil {
		t.Fatalf("LoadPlan inline: %v", err)
	}
	if p.Seed != 7 {
		t.Fatalf("seed = %d, want 7", p.Seed)
	}
	if _, err := LoadPlan("/definitely/not/a/file.json"); err == nil {
		t.Fatal("LoadPlan accepted a missing file")
	}
}

// drawSequence records which operations fire for a fresh injector.
func drawSequence(p *Plan, target Target, instance, n int) []Kind {
	in := p.Injector(target, instance)
	out := make([]Kind, n)
	for i := 0; i < n; i++ {
		out[i] = in.Evaluate(float64(i)*0.1, -1).Kind
	}
	return out
}

func TestInjectorDeterministicPerTarget(t *testing.T) {
	p := &Plan{Seed: 99, Rules: []Rule{
		{Kind: Transient, Target: TargetSensor, Probability: 0.3},
	}}
	a := drawSequence(p, TargetSensor, 0, 200)
	b := drawSequence(p, TargetSensor, 0, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, target, instance) produced different sequences")
	}
	c := drawSequence(p, TargetSensor, 1, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct instances produced identical sequences (streams correlated)")
	}
	fired := 0
	for _, k := range a {
		if k == Transient {
			fired++
		}
	}
	if fired < 30 || fired > 90 {
		t.Fatalf("0.3 probability fired %d/200 times; stream looks broken", fired)
	}
}

func TestInjectorBurst(t *testing.T) {
	p := &Plan{Seed: 1, Rules: []Rule{
		// Fires on every in-window evaluation, then the burst keeps it
		// active outside the window too.
		{Kind: Stuck, Target: TargetSensor, Burst: 3, StartS: 0, EndS: 0.05},
	}}
	in := p.Injector(TargetSensor, 0)
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, !in.Evaluate(float64(i)*0.04, -1).None())
	}
	// t=0.00 fires (burst=3 armed, 2 left), t=0.04 burst, t=0.08 burst,
	// t=0.12.. outside window and burst exhausted.
	want := []bool{true, true, true, false, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("burst sequence = %v, want %v", got, want)
	}
	if in.Counts()[Stuck] != 3 {
		t.Fatalf("count = %d, want 3", in.Counts()[Stuck])
	}
}

func TestInjectorWindowAndAlwaysFire(t *testing.T) {
	p := &Plan{Seed: 5, Rules: []Rule{
		{Kind: ClampedClock, Target: TargetClock, StartS: 1.0, EndS: 2.0, MHz: 900},
	}}
	in := p.Injector(TargetClock, 2)
	for _, tc := range []struct {
		now  float64
		want bool
	}{{0.5, false}, {1.0, true}, {1.9, true}, {2.0, false}, {3.0, false}} {
		if fired := !in.Evaluate(tc.now, -1).None(); fired != tc.want {
			t.Errorf("t=%.1f fired=%v, want %v", tc.now, fired, tc.want)
		}
	}
}

func TestInjectorRankFilter(t *testing.T) {
	p := &Plan{Seed: 3, Rules: []Rule{
		{Kind: Straggler, Target: TargetRank, Ranks: []int{1}, Factor: 4},
	}}
	if in := p.Injector(TargetRank, 0); !in.Evaluate(0, 0).None() {
		t.Fatal("rank 0 matched a rule scoped to rank 1")
	}
	in := p.Injector(TargetRank, 1)
	d := in.Evaluate(0, 0)
	if d.Kind != Straggler || d.Rule.Factor != 4 {
		t.Fatalf("rank 1 decision = %+v", d)
	}
}

func TestStepPinnedCrashFiresOnce(t *testing.T) {
	p := &Plan{Seed: 8, Rules: []Rule{
		{Kind: RankCrash, Target: TargetRank, Step: 3},
	}}
	in := p.Injector(TargetRank, 0)
	var fired []int
	for step := 0; step < 6; step++ {
		if !in.Evaluate(float64(step), step).None() {
			fired = append(fired, step)
		}
		// A second evaluation in the same step must not re-fire.
		if !in.Evaluate(float64(step), step).None() {
			t.Fatalf("step %d fired twice", step)
		}
	}
	if !reflect.DeepEqual(fired, []int{3}) {
		t.Fatalf("crash fired at steps %v, want [3]", fired)
	}
}

func TestSensorHookErrorMapping(t *testing.T) {
	p := &Plan{Seed: 2, Rules: []Rule{
		{Kind: Transient, Target: TargetSensor, StartS: 0, EndS: 1},
		{Kind: Stuck, Target: TargetSensor, StartS: 1, EndS: 2},
	}}
	now := 0.5
	hook := p.Injector(TargetSensor, 0).SensorHook(func() float64 { return now })
	if _, err := hook("energy-read", 0); !errors.Is(err, ErrTransient) {
		t.Fatalf("in transient window: err = %v, want ErrTransient", err)
	}
	now = 1.5
	if _, err := hook("energy-read", 0); !errors.Is(err, ErrStuck) {
		t.Fatalf("in stuck window: err = %v, want ErrStuck", err)
	}
	now = 2.5
	if _, err := hook("energy-read", 0); err != nil {
		t.Fatalf("outside windows: err = %v, want nil", err)
	}
}

func TestClockHookClampAndReject(t *testing.T) {
	p := &Plan{Seed: 4, Rules: []Rule{
		{Kind: ClampedClock, Target: TargetClock, StartS: 0, EndS: 1, MHz: 900},
		{Kind: RejectedSet, Target: TargetClock, StartS: 1, EndS: 2},
	}}
	now := 0.5
	hook := p.Injector(TargetClock, 0).ClockHook(func() float64 { return now })
	if mhz, err := hook("clock-set", 1200); err != nil || mhz != 900 {
		t.Fatalf("clamp: (%d, %v), want (900, nil)", mhz, err)
	}
	if mhz, err := hook("clock-set", 800); err != nil || mhz != 800 {
		t.Fatalf("below ceiling: (%d, %v), want (800, nil)", mhz, err)
	}
	now = 1.5
	if _, err := hook("clock-set", 1200); !errors.Is(err, ErrRejected) {
		t.Fatalf("reject window: err = %v, want ErrRejected", err)
	}
	now = 5
	if mhz, err := hook("clock-set", 1200); err != nil || mhz != 1200 {
		t.Fatalf("healthy: (%d, %v), want (1200, nil)", mhz, err)
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if !in.Evaluate(0, 0).None() {
		t.Fatal("nil injector fired")
	}
	if in.SensorHook(nil) != nil || in.ClockHook(nil) != nil {
		t.Fatal("nil injector produced non-nil hooks")
	}
	var p *Plan
	if p.Injector(TargetSensor, 0) != nil {
		t.Fatal("nil plan produced an injector")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("nil plan Validate: %v", err)
	}
}

func TestCollectCountsSortedDeterministic(t *testing.T) {
	p := &Plan{Seed: 11, Rules: []Rule{
		{Kind: Transient, Target: TargetSensor, Probability: 0.5},
		{Kind: Stuck, Target: TargetNodeSensor},
	}}
	s0 := p.Injector(TargetSensor, 0)
	s1 := p.Injector(TargetSensor, 1)
	n0 := p.Injector(TargetNodeSensor, 0)
	for i := 0; i < 50; i++ {
		s0.Evaluate(float64(i), -1)
		s1.Evaluate(float64(i), -1)
		n0.Evaluate(float64(i), -1)
	}
	a := CollectCounts(s0, nil, s1, n0)
	b := CollectCounts(s0, nil, s1, n0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("CollectCounts not deterministic")
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Stream > a[i].Stream {
			t.Fatalf("counts not sorted: %v", a)
		}
	}
	var nodeStuck uint64
	for _, c := range a {
		if c.Stream == "node-sensor/0" && c.Kind == Stuck {
			nodeStuck = c.Count
		}
	}
	if nodeStuck != 50 {
		t.Fatalf("node-sensor stuck count = %d, want 50", nodeStuck)
	}
}
