package telemetry

import (
	"strings"
	"testing"
)

func TestPassHistogramHook(t *testing.T) {
	r := NewRegistry()
	hook := PassHistogramHook(r, "pass_seconds", "pass latency")
	for i := 0; i < 5; i++ {
		hook("momentum_energy", 0.002)
		hook("find_neighbors", 0.004)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`pass_seconds_count{pass="momentum_energy"} 5`,
		`pass_seconds_count{pass="find_neighbors"} 5`,
		`pass_seconds_quantile{pass="find_neighbors",quantile="0.95"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
	// A second hook on the same registry must land in the same series.
	hook2 := PassHistogramHook(r, "pass_seconds", "pass latency")
	hook2("momentum_energy", 0.002)
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `pass_seconds_count{pass="momentum_energy"} 6`) {
		t.Errorf("second hook did not merge into the same series:\n%s", sb.String())
	}
	if PassHistogramHook(nil, "x", "") != nil {
		t.Error("nil registry must yield a nil hook")
	}
}
