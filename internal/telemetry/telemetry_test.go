package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Complete(0, "function", "momentum", 0, 1)
	tr.Instant(0, "freq", "clock-change", 0.5)
	tr.Counter(0, "gpu", 0.5, Float("power_w", 250))
	tr.SetTrackName(0, "rank 0")
	if tr.Len() != 0 {
		t.Fatalf("nil tracer Len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil tracer emits invalid JSON: %v", err)
	}
}

func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer(2)
	tr.SetTrackName(0, "rank 0")
	tr.SetTrackName(GlobalTrack, "sim")
	tr.Complete(0, "function", "momentumEnergy", 1.0, 0.5, Int("clock_mhz", 1410))
	tr.Complete(1, "kernel", "iadKernel", 1.0, 0.25)
	tr.Instant(0, "freq", "freq-change", 1.2, Int("mhz", 1005))
	tr.Counter(0, "gpu", 1.3, Float("power_w", 300))
	tr.Complete(GlobalTrack, "step", "step 0", 0, 2)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(doc.TraceEvents))
	}
	byName := map[string]map[string]any{}
	for _, e := range doc.TraceEvents {
		byName[e["name"].(string)] = e
	}
	span := byName["momentumEnergy"]
	if span["ph"] != "X" || span["ts"].(float64) != 1e6 || span["dur"].(float64) != 0.5e6 {
		t.Errorf("span rendered wrong: %v", span)
	}
	if span["cat"] != "function" {
		t.Errorf("span category = %v", span["cat"])
	}
	args := span["args"].(map[string]any)
	if args["clock_mhz"].(float64) != 1410 {
		t.Errorf("span args = %v", args)
	}
	if byName["freq-change"]["ph"] != "i" {
		t.Errorf("instant phase = %v", byName["freq-change"]["ph"])
	}
	if byName["gpu"]["ph"] != "C" {
		t.Errorf("counter phase = %v", byName["gpu"]["ph"])
	}
	// Global track sits one past the last rank.
	if tid := byName["step 0"]["tid"].(float64); tid != 2 {
		t.Errorf("global track tid = %v, want 2", tid)
	}
	if byName["iadKernel"]["tid"].(float64) != 1 {
		t.Errorf("rank 1 tid = %v", byName["iadKernel"]["tid"])
	}
}

func TestTracerOutOfRangeRankGoesToGlobal(t *testing.T) {
	tr := NewTracer(1)
	tr.Complete(99, "x", "overflow", 0, 1)
	tr.Complete(-5, "x", "negative", 0, 1)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"tid":1`) {
		t.Error("out-of-range events not on global track")
	}
}

func TestRecordSpanMatchesComplete(t *testing.T) {
	tr := NewTracer(1)
	tr.RecordSpan(0, "mpi", "barrier-wait", 2.0, 0.1)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "barrier-wait") {
		t.Error("RecordSpan event missing from export")
	}
}

func TestInternedSpans(t *testing.T) {
	tr := NewTracer(2)
	kernel := tr.Intern("kernel", "densityKernel", "clock_mhz", "energy_j")
	if again := tr.Intern("kernel", "densityKernel", "clock_mhz", "energy_j"); again != kernel {
		t.Errorf("re-interning the same identity gave %d, want %d", again, kernel)
	}
	bare := tr.Intern("mpi", "barrier-wait")
	if bare == kernel {
		t.Error("distinct identities share a ref")
	}
	tr.CompleteRef(1, kernel, 1.5, 0.25, 1005, 3.5)
	tr.InstantRef(0, bare, 2.0, 0, 0)
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string             `json:"name"`
			Cat  string             `json:"cat"`
			Ph   string             `json:"ph"`
			TID  int                `json:"tid"`
			Ts   float64            `json:"ts"`
			Dur  float64            `json:"dur"`
			Args map[string]float64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	byName := map[string]int{}
	for i, e := range doc.TraceEvents {
		byName[e.Name] = i
	}
	k := doc.TraceEvents[byName["densityKernel"]]
	if k.Cat != "kernel" || k.Ph != "X" || k.TID != 1 {
		t.Errorf("kernel event rendered as %+v", k)
	}
	if k.Ts != 1.5e6 || k.Dur != 0.25e6 {
		t.Errorf("kernel times ts=%v dur=%v, want µs conversion", k.Ts, k.Dur)
	}
	if k.Args["clock_mhz"] != 1005 || k.Args["energy_j"] != 3.5 {
		t.Errorf("kernel args = %v", k.Args)
	}
	w := doc.TraceEvents[byName["barrier-wait"]]
	if w.Ph != "i" || w.TID != 0 || len(w.Args) != 0 {
		t.Errorf("instant event rendered as %+v", w)
	}

	// Reset drops events but interned identities survive for the next run.
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("Len after Reset = %d", tr.Len())
	}
	tr.CompleteRef(0, kernel, 9, 1, 1410, 7)
	buf.Reset()
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "densityKernel") {
		t.Error("ref unusable after Reset")
	}
}

func TestInternNilTracer(t *testing.T) {
	var tr *Tracer
	ref := tr.Intern("a", "b", "k")
	tr.CompleteRef(0, ref, 0, 1, 2, 3) // must not panic
	tr.InstantRef(0, ref, 0, 0, 0)
}

func TestSpansReadBack(t *testing.T) {
	tr := NewTracer(2)
	kernel := tr.Intern("kernel", "densityKernel", "clock_mhz", "energy_j")
	tr.CompleteRef(1, kernel, 1.5, 0.25, 1005, 3.5)
	tr.Complete(0, "function", "Domain::sync", 0.5, 0.4,
		Float("gpu_j", 12), Float("comm_s", 0.1))
	tr.Instant(0, "comm", "barrier-wait", 2.0)
	tr.Complete(GlobalTrack, "step", "step 0", 0, 3)
	tr.Counter(0, "clock", 1.0, Float("mhz", 1410)) // must be skipped
	tr.SetTrackName(0, "rank 0")                    // must be skipped

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4 (counter/meta skipped)", len(spans))
	}
	byName := map[string]SpanEvent{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	k := byName["densityKernel"]
	if k.Track != 1 || k.Category != "kernel" || k.StartS != 1.5 || k.DurS != 0.25 {
		t.Errorf("kernel span = %+v", k)
	}
	if v, ok := k.Arg("energy_j"); !ok || v != 3.5 {
		t.Errorf("kernel energy_j = %v (ok=%v)", v, ok)
	}
	if v, ok := k.Arg("clock_mhz"); !ok || v != 1005 {
		t.Errorf("kernel clock_mhz = %v (ok=%v)", v, ok)
	}
	fn := byName["Domain::sync"]
	if fn.Track != 0 || len(fn.Args) != 2 {
		t.Errorf("function span = %+v", fn)
	}
	if fn.EndS() != 0.9 {
		t.Errorf("EndS = %v, want 0.9", fn.EndS())
	}
	if !byName["barrier-wait"].Instant {
		t.Error("instant flag lost")
	}
	if byName["step 0"].Track != GlobalTrack {
		t.Errorf("global span track = %d", byName["step 0"].Track)
	}

	var nilT *Tracer
	if nilT.Spans() != nil {
		t.Error("nil tracer Spans should be nil")
	}
}

func TestAttrValue(t *testing.T) {
	if v := String("k", "x").Value(); v != "x" {
		t.Errorf("string Value = %v", v)
	}
	if v := Int("k", 3).Value(); v != int64(3) {
		t.Errorf("int Value = %v", v)
	}
	if v := Float("k", 2.5).Float64(); v != 2.5 {
		t.Errorf("float Float64 = %v", v)
	}
	if v := String("k", "x").Float64(); v != 0 {
		t.Errorf("string Float64 = %v, want 0", v)
	}
}
