package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("kernel_launches_total", "help")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("gpu_clock_mhz", "help")
	g.Set(1410)
	if g.Value() != 0 {
		t.Error("nil gauge stored")
	}
	h := r.Histogram("step_energy_j", "help", LinearBuckets(1, 1, 3))
	h.Observe(2)
	if h.Count() != 0 {
		t.Error("nil histogram observed")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("kernel_launches_total", "kernels launched")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if c.Value() != 3.5 {
		t.Errorf("counter = %v, want 3.5", c.Value())
	}
	// Same name+labels returns the same instance.
	if r.Counter("kernel_launches_total", "kernels launched") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("gpu_clock_mhz", "clock", L("rank", "0"))
	g.Set(1410)
	g.Add(-405)
	if g.Value() != 1005 {
		t.Errorf("gauge = %v", g.Value())
	}
	// Different labels → different instance.
	g2 := r.Gauge("gpu_clock_mhz", "clock", L("rank", "1"))
	if g2 == g {
		t.Error("label sets share an instance")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("freq_switch_latency_s", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	upper, cum, sum, total := h.snapshot()
	if len(upper) != 3 || total != 4 {
		t.Fatalf("snapshot upper=%v total=%d", upper, total)
	}
	// le=0.001 catches 0.0005 and 0.001 (le semantics), le=0.01 adds none,
	// le=0.1 adds 0.05; 5 lands in +Inf only.
	if cum[0] != 2 || cum[1] != 2 || cum[2] != 3 {
		t.Errorf("cumulative = %v", cum)
	}
	if sum != 0.0005+0.001+0.05+5 {
		t.Errorf("sum = %v", sum)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total", "completed steps").Add(100)
	r.Gauge("gpu_clock_mhz", "current clock", L("rank", "0")).Set(1005)
	h := r.Histogram("step_time_s", "step duration", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(30)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP steps_total completed steps",
		"# TYPE steps_total counter",
		"steps_total 100",
		"# TYPE gpu_clock_mhz gauge",
		`gpu_clock_mhz{rank="0"} 1005`,
		"# TYPE step_time_s histogram",
		`step_time_s_bucket{le="1"} 1`,
		`step_time_s_bucket{le="10"} 2`,
		`step_time_s_bucket{le="+Inf"} 3`,
		"step_time_s_sum 33.5",
		"step_time_s_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total", "steps").Add(7)
	r.Histogram("step_energy_j", "energy", []float64{10, 100}).Observe(42)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid snapshot JSON: %v", err)
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d families", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "steps_total" || doc.Metrics[0].Samples[0].Value != 7 {
		t.Errorf("counter snapshot = %+v", doc.Metrics[0])
	}
	hist := doc.Metrics[1]
	if hist.Type != "histogram" || hist.Samples[0].Count != 1 || hist.Samples[0].Buckets["100"] != 1 {
		t.Errorf("histogram snapshot = %+v", hist)
	}
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kernel_launches_total", "launches").Add(12)
	srv, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "kernel_launches_total 12") {
		t.Errorf("/metrics body:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	resp, err = http.Get("http://" + srv.Addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Errorf("/metrics.json invalid: %v", err)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 10, 4)
	if exp[0] != 1 || exp[3] != 1000 {
		t.Errorf("ExpBuckets = %v", exp)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "")
}
