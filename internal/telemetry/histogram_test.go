package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewRegistry().Histogram("lat_s", "", LinearBuckets(10, 10, 10)) // 10..100
	// Uniform 1..100: pN should land near N (linear interpolation inside
	// 10-wide buckets is exact for uniform data).
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.95, 95}, {0.99, 99},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1 {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantileEdgeCases pins the degenerate inputs to defined,
// finite values: empty, nil, NaN-q, single-observation and all-in-overflow
// histograms must never produce NaN (which would fail JSON encoding) or
// panic.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Errorf("NaN-q quantile = %v, want 0", got)
	}
	h.Observe(500) // +Inf bucket only
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("all-overflow quantile = %v, want clamp to highest bound 10", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}

	// A single observation: every quantile lands in its bucket, finite.
	one := newHistogram([]float64{1, 10})
	one.Observe(5)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := one.Quantile(q)
		if math.IsNaN(got) || got < 1 || got > 10 {
			t.Errorf("single-observation Quantile(%v) = %v, want within (1,10]", q, got)
		}
	}

	// No finite buckets at all: defined, not NaN.
	if got := bucketQuantile(0.5, nil, []uint64{3}, 3); got != 0 {
		t.Errorf("bucketless quantile = %v, want 0", got)
	}
}

// TestEmptyHistogramSurvivesJSON is the regression the edge cases guard: a
// registry holding a never-observed histogram must still marshal (NaN
// quantiles would make encoding/json error out).
func TestEmptyHistogramSurvivesJSON(t *testing.T) {
	r := NewRegistry()
	r.Histogram("never_observed_s", "", LinearBuckets(10, 10, 3))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("empty histogram broke the JSON snapshot: %v", err)
	}
	if !strings.Contains(buf.String(), "never_observed_s") {
		t.Error("empty histogram missing from the snapshot")
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewRegistry().Histogram("lat_s", "", LatencyBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(3.5e-4)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f objects/op, want 0", allocs)
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-6, 1, 4)
	if b[0] != 1e-6 || b[len(b)-1] != 1 {
		t.Errorf("LogBuckets endpoints = %v, %v", b[0], b[len(b)-1])
	}
	if len(b) != 25 { // 6 decades * 4 + final bound
		t.Errorf("LogBuckets len = %d, want 25 (%v)", len(b), b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("LogBuckets not increasing at %d: %v", i, b)
		}
	}
	if got := LogBuckets(0, 1, 4); len(got) != 2 {
		t.Errorf("degenerate LogBuckets = %v", got)
	}
}

func TestHistogramExpositionQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pass_s", "pass latency", LinearBuckets(10, 10, 10), L("pass", "momentum_energy"))
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		`pass_s_quantile{pass="momentum_energy",quantile="0.5"} 50`,
		`pass_s_quantile{pass="momentum_energy",quantile="0.95"} 95`,
		`pass_s_quantile{pass="momentum_energy",quantile="0.99"} 99`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus exposition missing %q in:\n%s", want, text)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	qs := doc.Metrics[0].Samples[0].Quantiles
	if qs == nil {
		t.Fatalf("JSON snapshot has no quantiles: %+v", doc.Metrics[0].Samples[0])
	}
	for q, want := range map[string]float64{"0.5": 50, "0.95": 95, "0.99": 99} {
		if math.Abs(qs[q]-want) > 1 {
			t.Errorf("JSON quantile %s = %v, want ~%v", q, qs[q], want)
		}
	}
}

// TestHistogramConcurrentRecordScrape hammers one histogram from parallel
// recorders while a scraper loops over both exposition formats — run under
// -race this is the lock-free record path's safety proof, and the final
// counts must be exact (atomic adds lose nothing).
func TestHistogramConcurrentRecordScrape(t *testing.T) {
	const (
		writers = 8
		perW    = 5000
	)
	r := NewRegistry()
	h := r.Histogram("conc_s", "", LatencyBuckets())

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			var buf bytes.Buffer
			_ = r.WritePrometheus(&buf)
			_ = r.Snapshot()
			h.Quantile(0.95)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(1e-6 * float64(w*perW+i%997))
			}
		}(w)
	}
	wg.Wait()
	<-done

	if got := h.Count(); got != writers*perW {
		t.Errorf("lost observations: count = %d, want %d", got, writers*perW)
	}
	_, cum, _, total := h.snapshot()
	if total != writers*perW || cum[len(cum)-1] != writers*perW {
		t.Errorf("bucket totals inconsistent: total=%d cum=%d", total, cum[len(cum)-1])
	}
}
