package telemetry

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler manages runtime/pprof CPU and heap profile output for a run.
// A nil Profiler (or one constructed with empty paths) is a no-op, keeping
// the usual telemetry contract: uninstrumented runs pay only nil checks.
type Profiler struct {
	cpuFile  *os.File
	heapPath string
}

// StartProfiler opens the requested profile outputs. cpuPath starts a CPU
// profile immediately; heapPath records where to write the heap profile at
// Close time (after a forced GC, so the snapshot reflects live objects).
// Either path may be empty to skip that profile.
func StartProfiler(cpuPath, heapPath string) (*Profiler, error) {
	p := &Profiler{heapPath: heapPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("telemetry: start cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	return p, nil
}

// Close stops the CPU profile and writes the heap profile, if requested.
// Safe to call on a nil Profiler.
func (p *Profiler) Close() error {
	if p == nil {
		return nil
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return fmt.Errorf("telemetry: close cpu profile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.heapPath != "" {
		f, err := os.Create(p.heapPath)
		if err != nil {
			return fmt.Errorf("telemetry: create heap profile: %w", err)
		}
		runtime.GC() // get up-to-date live-object statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("telemetry: write heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("telemetry: close heap profile: %w", err)
		}
		p.heapPath = ""
	}
	return nil
}

// DoLabeled runs fn with a pprof label attached to the goroutine, so CPU
// profile samples taken inside fn are attributable per SPH pass (or any
// other region) in `go tool pprof -tags`. When enabled is false it calls
// fn directly — pprof.Do allocates a label set per call, which is too
// expensive to leave on unconditionally in the per-pass hot path.
func DoLabeled(enabled bool, key, value string, fn func()) {
	if !enabled {
		fn()
		return
	}
	pprof.Do(context.Background(), pprof.Labels(key, value), func(context.Context) { fn() })
}
