package telemetry_test

import (
	"io"
	"strconv"
	"sync"
	"testing"

	"sphenergy/internal/instr"
	tele "sphenergy/internal/telemetry"
)

// TestConcurrentTelemetry hammers the telemetry hot paths — span emission,
// counter/gauge/histogram updates — together with instr.RankProfile.Record
// from many goroutines while readers export concurrently. Run under
// `go test -race` (the `make check` target does) this proves the
// measurement substrate itself is data-race free, the precondition for
// instrumenting the multi-rank runner.
func TestConcurrentTelemetry(t *testing.T) {
	const (
		ranks      = 8
		perRankOps = 200
	)
	tr := tele.NewTracer(ranks)
	reg := tele.NewRegistry()
	profile := instr.NewRankProfile(0)
	profile.SeriesEnabled = true

	launches := reg.Counter("kernel_launches_total", "launches")
	hist := reg.Histogram("step_energy_j", "energy", tele.ExpBuckets(1, 10, 6))

	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			clock := reg.Gauge("gpu_clock_mhz", "clock", tele.L("rank", strconv.Itoa(r)))
			// Interning races with other ranks interning the same and
			// different identities; recording through the ref races with
			// the generic path on the same shard.
			kernelRef := tr.Intern("kernel", "rank-kernel-"+strconv.Itoa(r%3), "clock_mhz", "energy_j")
			for i := 0; i < perRankOps; i++ {
				ts := float64(i)
				tr.Complete(r, "function", "momentumEnergy", ts, 0.5,
					tele.Int("clock_mhz", 1410), tele.Float("gpu_j", 12.5))
				tr.Instant(r, "freq", "freq-change", ts+0.1, tele.Int("mhz", 1005))
				tr.Counter(r, "gpu", ts+0.2, tele.Float("power_w", 250))
				tr.CompleteRef(r, kernelRef, ts, 0.4, 1410, 9.5)
				tr.RecordSpan(r, "mpi", "barrier-wait", ts+0.6, 0.05)
				launches.Inc()
				clock.Set(float64(1005 + i%405))
				hist.Observe(float64(i))
				profile.Record("momentumEnergy", 0.01, 1, 0.1, 0.05, 0.02, 0.001)
			}
		}(r)
	}
	// Concurrent readers: exporters must tolerate in-flight writers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_ = tr.WriteJSON(io.Discard)
				_ = reg.WritePrometheus(io.Discard)
				_ = reg.WriteJSON(io.Discard)
				_ = profile.FunctionNames()
				_ = profile.TotalTimeS()
			}
		}()
	}
	wg.Wait()

	if got := tr.Len(); got != ranks*perRankOps*5 {
		t.Errorf("tracer recorded %d events, want %d", got, ranks*perRankOps*5)
	}
	if got := launches.Value(); got != ranks*perRankOps {
		t.Errorf("launch counter = %v, want %d", got, ranks*perRankOps)
	}
	if got := hist.Count(); got != ranks*perRankOps {
		t.Errorf("histogram count = %d, want %d", got, ranks*perRankOps)
	}
	st := profile.Get("momentumEnergy")
	if st == nil || st.Calls != ranks*perRankOps {
		t.Errorf("profile calls = %+v, want %d", st, ranks*perRankOps)
	}
}
